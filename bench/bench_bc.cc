// Figure 1 "Betweenness Centrality" (paper §7): edges/s per place across
// place counts, including the paper's instance switch to a larger graph at
// the threshold (their 2,048-place switch from 2^18/2^21 to 2^20/2^23 causes
// the visible drop), plus the static-vs-GLB comparison from [43].
#include "bench_common.h"
#include "kernels/bc/bc.h"
#include "runtime/api.h"

int main() {
  using namespace apgas;
  bench::header("Figure 1 / Betweenness Centrality — weak scaling");
  bench::row("%8s %8s %12s %16s %18s", "places", "scale", "Medges/s",
             "Medges/s/place", "mode");
  constexpr int kSwitch = 8;  // paper switches instances at 2,048 places
  for (bool use_glb : {false, true}) {
    for (int places : bench::sweep_places()) {
      Config cfg;
      cfg.places = places;
      cfg.places_per_node = 8;
      Runtime::run(cfg, [&] {
        kernels::BcParams p;
        p.graph.scale = places < kSwitch ? 9 : 11;
        p.graph.edge_factor = 8;
        p.sources = 64;  // fixed source budget: per-place work shrinks as
                         // places grow, exposing imbalance (paper §7)
        p.use_glb = use_glb;
        auto r = kernels::bc_run(p);
        bench::row("%8d %8d %12.3f %16.4f %18s", places, p.graph.scale,
                   r.medges_per_sec, r.medges_per_sec_per_place,
                   use_glb ? "GLB [43]" : "static");
      });
    }
  }
  bench::row("(paper: 11.59 Medges/s/place at 32 places -> 10.67 at 2,048;"
             " instance switch drops it to 6.23, 5.21 at 47,040 = 45%% raw /"
             " 77%% corrected efficiency; GLB variant improves it)");
  return 0;
}
