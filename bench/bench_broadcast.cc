// §3.2 (scalable broadcast): the naive sequential spawn loop versus the
// PlaceGroup spawning tree with nested FINISH_SPMD. The paper's claim is the
// flat loop "wastes valuable time and floods the network" at the root; the
// tree distributes task-creation overhead. We report wall time and the
// number of task messages the root itself must send.
#include "bench_common.h"
#include "runtime/api.h"
#include "runtime/place_group.h"

using namespace apgas;

int main() {
  bench::header("§3.2 — PlaceGroup broadcast: flat loop vs spawning tree");
  bench::row("%8s %10s %12s %18s", "places", "variant", "time (s)",
             "root task msgs");
  for (int places : bench::sweep_places(32)) {
    for (bool tree : {false, true}) {
      Config cfg;
      cfg.places = places;
      cfg.places_per_node = 8;
      cfg.count_pairs = true;
      Runtime::run(cfg, [&] {
        auto& tr = Runtime::get().transport();
        tr.reset_stats();
        const auto t0 = std::chrono::steady_clock::now();
        for (int round = 0; round < 20; ++round) {
          if (tree) {
            PlaceGroup::world().broadcast([] {}, /*fanout=*/2);
          } else {
            PlaceGroup::world().broadcast_flat([] {});
          }
        }
        const auto t1 = std::chrono::steady_clock::now();
        std::uint64_t root_sent = 0;
        for (int d = 1; d < num_places(); ++d) root_sent += tr.pair_count(0, d);
        bench::row("%8d %10s %12.4f %18llu", places, tree ? "tree" : "flat",
                   std::chrono::duration<double>(t1 - t0).count(),
                   static_cast<unsigned long long>(root_sent));
      });
    }
  }
  return 0;
}
