// §3.3 (high-performance interconnects): emulated (point-to-point) versus
// native ("hardware") Team collectives, and RDMA versus FIFO asyncCopy.
// The paper: hardware collectives "offer performance that cannot be matched
// by point-to-point messages"; RDMA transfers bypass the destination CPU.
#include "bench_common.h"
#include "runtime/api.h"
#include "runtime/dist_rail.h"
#include "runtime/place_group.h"
#include "runtime/team.h"

using namespace apgas;

namespace {

void collective_bench(int places, TeamMode mode, double& barrier_us,
                      double& allreduce_us, double& alltoall_us,
                      std::uint64_t& msgs) {
  Config cfg;
  cfg.places = places;
  cfg.places_per_node = 8;
  Runtime::run(cfg, [&] {
    auto& tr = Runtime::get().transport();
    tr.reset_stats();
    constexpr int kRounds = 50;
    std::vector<double> timings(3, 0.0);
    std::mutex mu;
    PlaceGroup::world().broadcast([&, mode] {
      Team t = Team::world(mode);
      t.barrier();
      auto time_op = [&](auto op) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kRounds; ++i) op();
        const auto t1 = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(t1 - t0).count() / kRounds * 1e6;
      };
      const double b = time_op([&] { t.barrier(); });
      std::vector<double> v(64, 1.0);
      const double ar =
          time_op([&] { t.allreduce(v.data(), v.size(), ReduceOp::kSum); });
      std::vector<double> send(static_cast<std::size_t>(t.size()) * 16, 1.0);
      std::vector<double> recv(send.size());
      const double aa =
          time_op([&] { t.alltoall(send.data(), recv.data(), 16); });
      if (here() == 0) {
        std::scoped_lock lock(mu);
        timings = {b, ar, aa};
      }
    });
    barrier_us = timings[0];
    allreduce_us = timings[1];
    alltoall_us = timings[2];
    msgs = tr.count(x10rt::MsgType::kCollective);
  });
}

}  // namespace

int main() {
  bench::header("§3.3 — Team collectives: emulated vs native (us/op)");
  bench::row("%8s %10s %12s %12s %12s %12s", "places", "mode", "barrier",
             "allreduce", "alltoall", "coll msgs");
  for (int places : bench::sweep_places(16)) {
    for (TeamMode mode : {TeamMode::kEmulated, TeamMode::kNative}) {
      double b, ar, aa;
      std::uint64_t msgs;
      collective_bench(places, mode, b, ar, aa, msgs);
      bench::row("%8d %10s %12.1f %12.1f %12.1f %12llu", places,
                 mode == TeamMode::kEmulated ? "emulated" : "native", b, ar,
                 aa, static_cast<unsigned long long>(msgs));
    }
  }

  bench::header("§3.3 — asyncCopy: RDMA (registered) vs FIFO (serialized)");
  bench::row("%10s %10s %14s %14s", "KiB", "path", "GB/s", "data msgs");
  for (std::size_t kib : {64u, 512u, 4096u}) {
    for (bool rdma : {true, false}) {
      Config cfg;
      cfg.places = 2;
      cfg.congruent_bytes = 32u << 20;
      Runtime::run(cfg, [&] {
        auto& tr = Runtime::get().transport();
        const std::size_t n = kib * 1024 / sizeof(double);
        auto& space = Runtime::get().congruent();
        auto arr = space.alloc<double>(n);
        std::vector<double> heap_src(n, 1.5), heap_dst(n);
        double* src = rdma ? space.at_place(0, arr) : heap_src.data();
        GlobalRail<double> dst =
            rdma ? global_rail(arr, 1)
                 : GlobalRail<double>{1, heap_dst.data(), n};
        tr.reset_stats();
        constexpr int kRounds = 20;
        const auto t0 = std::chrono::steady_clock::now();
        finish([&] {
          for (int i = 0; i < kRounds; ++i) async_copy(src, dst, 0, n);
        });
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        bench::row("%10zu %10s %14.3f %14llu", kib, rdma ? "rdma" : "fifo",
                   static_cast<double>(n) * sizeof(double) * kRounds / secs /
                       1e9,
                   static_cast<unsigned long long>(
                       tr.count(x10rt::MsgType::kData)));
      });
    }
  }
  return 0;
}
