// §3.3 (high-performance interconnects): emulated (point-to-point) versus
// native ("hardware") versus hierarchical (topology-aware tree) Team
// collectives, and RDMA versus FIFO asyncCopy.
// The paper: hardware collectives "offer performance that cannot be matched
// by point-to-point messages"; RDMA transfers bypass the destination CPU.
//
// Two collective probes:
//   (a) small ops     — barrier / 64-double allreduce / 16-double alltoall
//                       latency across a place sweep, all three Team modes.
//   (b) payload sweep — 4KB..4MB bcast and allreduce at a fixed place count
//                       (default 32, BENCH_COLLECTIVES_PLACES overrides);
//                       the hierarchical win comes from the single-copy
//                       in-group fan-out: one mail delivery per leaf group
//                       instead of one per member.
// Honors the bench_common observability env (APGAS_TRACE / APGAS_METRICS /
// APGAS_* knobs incl. APGAS_PLACES_PER_NODE and APGAS_TEAM_*). Writes
// machine-readable JSON (BENCH_collectives.json, override with
// APGAS_BENCH_OUT).
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/api.h"
#include "runtime/dist_rail.h"
#include "runtime/place_group.h"
#include "runtime/team.h"

using namespace apgas;

namespace {

const char* mode_name(TeamMode mode) {
  switch (mode) {
    case TeamMode::kEmulated: return "emulated";
    case TeamMode::kNative: return "native";
    case TeamMode::kHierarchical: return "hierarchical";
  }
  return "?";
}

/// Bench config: observability env + APGAS_* knobs (incl.
/// APGAS_PLACES_PER_NODE, which sizes the hierarchical leaf groups), then
/// the sweep's place count — the sweep owns `places`, the env owns the rest.
apgas::Config bench_cfg(int places) {
  Config cfg;
  bench::observe(cfg);
  cfg.places = places;
  return cfg;
}

void small_op_bench(int places, TeamMode mode, double& barrier_us,
                    double& allreduce_us, double& alltoall_us,
                    std::uint64_t& msgs) {
  Config cfg = bench_cfg(places);
  Runtime::run(cfg, [&] {
    auto& tr = Runtime::get().transport();
    tr.reset_stats();
    constexpr int kRounds = 50;
    std::vector<double> timings(3, 0.0);
    std::mutex mu;
    PlaceGroup::world().broadcast([&, mode] {
      Team t = Team::world(mode);
      t.barrier();
      auto time_op = [&](auto op) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kRounds; ++i) op();
        const auto t1 = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(t1 - t0).count() / kRounds * 1e6;
      };
      const double b = time_op([&] { t.barrier(); });
      std::vector<double> v(64, 1.0);
      const double ar =
          time_op([&] { t.allreduce(v.data(), v.size(), ReduceOp::kSum); });
      std::vector<double> send(static_cast<std::size_t>(t.size()) * 16, 1.0);
      std::vector<double> recv(send.size());
      const double aa =
          time_op([&] { t.alltoall(send.data(), recv.data(), 16); });
      if (here() == 0) {
        std::scoped_lock lock(mu);
        timings = {b, ar, aa};
      }
    });
    barrier_us = timings[0];
    allreduce_us = timings[1];
    alltoall_us = timings[2];
    msgs = tr.count(x10rt::MsgType::kCollective);
  });
  bench::maybe_emit_metrics(std::string("collectives.small.") +
                            mode_name(mode) + ".p" + std::to_string(places));
}

struct PayloadRow {
  std::string op;    // "bcast" | "allreduce"
  std::string mode;  // mode_name(...)
  std::size_t bytes = 0;
  double usec = 0;   // per-op wall time at rank 0
  double mbps = 0;   // payload MB per second
};

/// One (op, mode, payload) cell: SPMD loop at `places` places, `rounds`
/// timed repetitions after one warm-up op (the warm-up also builds and
/// caches the leader tree), rank 0's wall clock. Rounds shrink as payloads
/// grow so the sweep stays O(seconds) end to end.
double payload_bench(int places, TeamMode mode, bool bcast_op,
                     std::size_t bytes) {
  Config cfg = bench_cfg(places);
  const int rounds = bytes >= (1u << 20) ? 4 : 10;
  double usec = 0;
  Runtime::run(cfg, [&] {
    std::mutex mu;
    PlaceGroup::world().broadcast([&] {
      Team t = Team::world(mode);
      const std::size_t n = bytes / sizeof(double);
      std::vector<double> v(n, static_cast<double>(here() + 1));
      t.barrier();
      if (bcast_op) {
        t.bcast(0, v.data(), n);
      } else {
        t.allreduce(v.data(), n, ReduceOp::kSum);
      }
      t.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < rounds; ++i) {
        if (bcast_op) {
          t.bcast(0, v.data(), n);
        } else {
          t.allreduce(v.data(), n, ReduceOp::kSum);
        }
      }
      const auto t1 = std::chrono::steady_clock::now();
      if (here() == 0) {
        std::scoped_lock lock(mu);
        usec = std::chrono::duration<double>(t1 - t0).count() / rounds * 1e6;
      }
    });
  });
  bench::maybe_emit_metrics(std::string("collectives.payload.") +
                            (bcast_op ? "bcast." : "allreduce.") +
                            mode_name(mode) + "." + std::to_string(bytes));
  return usec;
}

}  // namespace

int main() {
  const TeamMode kModes[] = {TeamMode::kEmulated, TeamMode::kNative,
                             TeamMode::kHierarchical};

  bench::header(
      "§3.3 — Team collectives: emulated vs native vs hierarchical (us/op)");
  bench::row("%8s %14s %12s %12s %12s %12s", "places", "mode", "barrier",
             "allreduce", "alltoall", "coll msgs");
  struct SmallRow {
    int places;
    std::string mode;
    double barrier_us, allreduce_us, alltoall_us;
    std::uint64_t msgs;
  };
  std::vector<SmallRow> small;
  for (int places : bench::sweep_places(16)) {
    for (TeamMode mode : kModes) {
      double b, ar, aa;
      std::uint64_t msgs;
      small_op_bench(places, mode, b, ar, aa, msgs);
      small.push_back({places, mode_name(mode), b, ar, aa, msgs});
      bench::row("%8d %14s %12.1f %12.1f %12.1f %12llu", places,
                 mode_name(mode), b, ar, aa,
                 static_cast<unsigned long long>(msgs));
    }
  }

  int sweep_places = 32;
  if (const char* p = std::getenv("BENCH_COLLECTIVES_PLACES")) {
    sweep_places = std::atoi(p);
  }
  bench::header("§3.3 — large-payload bcast/allreduce at " +
                std::to_string(sweep_places) + " places (us/op)");
  bench::row("%10s %10s %14s %14s %14s %10s", "op", "KiB", "emulated",
             "native", "hierarchical", "hier_x");
  std::vector<PayloadRow> payload;
  double bcast_1mb_speedup = 0;
  for (bool bcast_op : {true, false}) {
    for (std::size_t kib : {4u, 32u, 256u, 1024u, 4096u}) {
      const std::size_t bytes = kib * 1024;
      // Interleaved min-of-reps (same rationale as bench_transport): on a
      // loaded single-core host the noise has longer periods than one cell,
      // so the modes alternate within each rep and each reports its best —
      // the ratio of bests is the stable signal.
      constexpr int kReps = 3;
      double cell[3] = {1e30, 1e30, 1e30};
      for (int rep = 0; rep < kReps; ++rep) {
        for (int m = 0; m < 3; ++m) {
          cell[m] = std::min(
              cell[m], payload_bench(sweep_places, kModes[m], bcast_op, bytes));
        }
      }
      for (int m = 0; m < 3; ++m) {
        payload.push_back({bcast_op ? "bcast" : "allreduce",
                           mode_name(kModes[m]), bytes, cell[m],
                           static_cast<double>(bytes) / cell[m]});
      }
      const double hier_x = cell[0] / cell[2];
      if (bcast_op && kib == 1024) bcast_1mb_speedup = hier_x;
      bench::row("%10s %10zu %14.1f %14.1f %14.1f %9.2fx",
                 bcast_op ? "bcast" : "allreduce", kib, cell[0], cell[1],
                 cell[2], hier_x);
    }
  }

  bench::header("§3.3 — asyncCopy: RDMA (registered) vs FIFO (serialized)");
  bench::row("%10s %10s %14s %14s", "KiB", "path", "GB/s", "data msgs");
  for (std::size_t kib : {64u, 512u, 4096u}) {
    for (bool rdma : {true, false}) {
      Config cfg;
      cfg.places = 2;
      cfg.congruent_bytes = 32u << 20;
      Runtime::run(cfg, [&] {
        auto& tr = Runtime::get().transport();
        const std::size_t n = kib * 1024 / sizeof(double);
        auto& space = Runtime::get().congruent();
        auto arr = space.alloc<double>(n);
        std::vector<double> heap_src(n, 1.5), heap_dst(n);
        double* src = rdma ? space.at_place(0, arr) : heap_src.data();
        GlobalRail<double> dst =
            rdma ? global_rail(arr, 1)
                 : GlobalRail<double>{1, heap_dst.data(), n};
        tr.reset_stats();
        constexpr int kRounds = 20;
        const auto t0 = std::chrono::steady_clock::now();
        finish([&] {
          for (int i = 0; i < kRounds; ++i) async_copy(src, dst, 0, n);
        });
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        bench::row("%10zu %10s %14.3f %14llu", kib, rdma ? "rdma" : "fifo",
                   static_cast<double>(n) * sizeof(double) * kRounds / secs /
                       1e9,
                   static_cast<unsigned long long>(
                       tr.count(x10rt::MsgType::kData)));
      });
    }
  }

  const char* out = std::getenv("APGAS_BENCH_OUT");
  const std::string path = out != nullptr ? out : "BENCH_collectives.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"collectives\",\n  \"small_ops\": [\n");
  for (std::size_t i = 0; i < small.size(); ++i) {
    const auto& r = small[i];
    std::fprintf(f,
                 "    {\"places\": %d, \"mode\": \"%s\", \"barrier_us\": "
                 "%.1f, \"allreduce_us\": %.1f, \"alltoall_us\": %.1f, "
                 "\"coll_msgs\": %llu}%s\n",
                 r.places, r.mode.c_str(), r.barrier_us, r.allreduce_us,
                 r.alltoall_us, static_cast<unsigned long long>(r.msgs),
                 i + 1 < small.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"payload_places\": %d,\n  \"payload_sweep\": [\n",
               sweep_places);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    const auto& r = payload[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"mode\": \"%s\", \"bytes\": %zu, "
                 "\"usec\": %.1f, \"mb_per_s\": %.1f}%s\n",
                 r.op.c_str(), r.mode.c_str(), r.bytes, r.usec, r.mbps,
                 i + 1 < payload.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"bcast_1mb_hier_speedup\": %.2f\n}\n",
               bcast_1mb_speedup);
  std::fclose(f);
  std::printf("\n[wrote %s]\n", path.c_str());
  return 0;
}
