// Shared helpers for the reproduction benches. Each bench binary regenerates
// one table or figure of the paper (see DESIGN.md §5) by sweeping place
// counts and printing the same rows/series the paper reports.
//
// Scale note: the paper sweeps 1..55,680 cores of a Power 775; we sweep
// 1..N places (threads) on one machine. Wall-clock columns reflect
// oversubscription beyond the core count; protocol columns (message counts,
// out-degree, balance quality) are exact and hardware-independent.
#pragma once

#include <cstdarg>
#include <thread>
#include <cstdio>
#include <string>
#include <vector>

namespace bench {

inline std::vector<int> sweep_places(int max_places = 16) {
  std::vector<int> out;
  for (int p = 1; p <= max_places; p *= 2) out.push_back(p);
  return out;
}

inline void header(const std::string& title) {
  static bool printed_machine = false;
  if (!printed_machine) {
    printed_machine = true;
    std::printf("[machine: %u hardware threads — wall-clock columns degrade "
                "once places exceed cores; message/balance columns are "
                "exact]\n",
                std::thread::hardware_concurrency());
  }
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace bench
