// Shared helpers for the reproduction benches. Each bench binary regenerates
// one table or figure of the paper (see DESIGN.md §5) by sweeping place
// counts and printing the same rows/series the paper reports.
//
// Scale note: the paper sweeps 1..55,680 cores of a Power 775; we sweep
// 1..N places (threads) on one machine. Wall-clock columns reflect
// oversubscription beyond the core count; protocol columns (message counts,
// out-degree, balance quality) are exact and hardware-independent.
#pragma once

#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/config.h"
#include "runtime/metrics.h"

namespace bench {

/// Inserts ".rN" before the extension of `path` (after the last '/'), so
/// successive runs of one bench process don't overwrite each other's dumps:
/// "uts.trace.json" -> "uts.r0.trace.json", "out/metrics" -> "out/metrics.r0".
inline std::string per_run_path(const std::string& path, int run) {
  const std::string tag = ".r" + std::to_string(run);
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot =
      path.find('.', slash == std::string::npos ? 0 : slash + 1);
  if (dot == std::string::npos) return path + tag;
  return path.substr(0, dot) + tag + path.substr(dot);
}

/// Applies the observability environment to a bench Config:
///   APGAS_TRACE=<path>     write a Chrome trace_event JSON after the run
///                          (also enables the flight recorder)
///   APGAS_TRACE_CAP=<n>    per-place ring capacity in events (default 2^16)
///   APGAS_METRICS=<path>   write metrics at teardown (.json => JSON,
///                          anything else => key=value text)
/// plus the APGAS_* perf knobs (poll_batch, coalesce_bytes/msgs, places,
/// workers_per_place) via Config::apply_env — note benches that sweep
/// `cfg.places` themselves overwrite an APGAS_PLACES override afterwards.
///
/// Trace/metrics paths get a per-run ".rN" suffix (see per_run_path): benches
/// construct one Config per sweep point, so the Nth observe() call in a
/// process maps to run N and each run keeps its own dump files.
///
/// When any of APGAS_TRACE / APGAS_METRICS / APGAS_HIST is set, latency
/// histograms are armed too (a metrics dump without hist.* percentiles is
/// rarely what anyone wants); APGAS_HIST=0 still wins because apply_env runs
/// last. Returns the config so call sites can wrap construction inline.
inline apgas::Config& observe(apgas::Config& cfg) {
  static int run = 0;
  const int r = run++;
  if (const char* p = std::getenv("APGAS_TRACE")) {
    cfg.trace = true;
    cfg.trace_path = per_run_path(p, r);
    cfg.histograms = true;
  }
  if (const char* p = std::getenv("APGAS_TRACE_CAP")) {
    cfg.trace_capacity = std::strtoull(p, nullptr, 10);
  }
  if (const char* p = std::getenv("APGAS_METRICS")) {
    cfg.metrics_path = per_run_path(p, r);
    cfg.histograms = true;
  }
  if (std::getenv("APGAS_HIST") != nullptr) cfg.histograms = true;
  apgas::Config::apply_env(cfg);
  return cfg;
}

/// Prints machine-readable `label key=value` lines for the previous
/// Runtime::run, skipping the per-place scheduler counters (noise at bench
/// granularity; use APGAS_METRICS for the full dump).
inline void emit_metrics(const std::string& label) {
  for (const auto& [key, value] : apgas::last_run_metrics()) {
    if (key.rfind("sched.p", 0) == 0) continue;
    std::printf("[metrics] %s %s=%llu\n", label.c_str(), key.c_str(),
                static_cast<unsigned long long>(value));
  }
  std::fflush(stdout);
}

/// True when either env knob asks for per-run metric lines on stdout.
inline bool metrics_requested() {
  return std::getenv("APGAS_METRICS_STDOUT") != nullptr;
}

/// emit_metrics gated on APGAS_METRICS_STDOUT — the benches call this after
/// every run so tables stay clean unless the user opts in.
inline void maybe_emit_metrics(const std::string& label) {
  if (metrics_requested()) emit_metrics(label);
}

inline std::vector<int> sweep_places(int max_places = 16) {
  std::vector<int> out;
  for (int p = 1; p <= max_places; p *= 2) out.push_back(p);
  return out;
}

inline void header(const std::string& title) {
  static bool printed_machine = false;
  if (!printed_machine) {
    printed_machine = true;
    std::printf("[machine: %u hardware threads — wall-clock columns degrade "
                "once places exceed cores; message/balance columns are "
                "exact]\n",
                std::thread::hardware_concurrency());
  }
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace bench
