// Shared helpers for the reproduction benches. Each bench binary regenerates
// one table or figure of the paper (see DESIGN.md §5) by sweeping place
// counts and printing the same rows/series the paper reports.
//
// Scale note: the paper sweeps 1..55,680 cores of a Power 775; we sweep
// 1..N places (threads) on one machine. Wall-clock columns reflect
// oversubscription beyond the core count; protocol columns (message counts,
// out-degree, balance quality) are exact and hardware-independent.
#pragma once

#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/config.h"
#include "runtime/metrics.h"

namespace bench {

/// Applies the observability environment to a bench Config:
///   APGAS_TRACE=<path>     write a Chrome trace_event JSON after the run
///                          (also enables the flight recorder)
///   APGAS_TRACE_CAP=<n>    per-place ring capacity in events (default 2^16)
///   APGAS_METRICS=<path>   write metrics at teardown (.json => JSON,
///                          anything else => key=value text)
/// plus the APGAS_* perf knobs (poll_batch, coalesce_bytes/msgs, places,
/// workers_per_place) via Config::apply_env — note benches that sweep
/// `cfg.places` themselves overwrite an APGAS_PLACES override afterwards.
/// Returns the config so call sites can wrap construction inline.
inline apgas::Config& observe(apgas::Config& cfg) {
  if (const char* p = std::getenv("APGAS_TRACE")) {
    cfg.trace = true;
    cfg.trace_path = p;
  }
  if (const char* p = std::getenv("APGAS_TRACE_CAP")) {
    cfg.trace_capacity = std::strtoull(p, nullptr, 10);
  }
  if (const char* p = std::getenv("APGAS_METRICS")) {
    cfg.metrics_path = p;
  }
  apgas::Config::apply_env(cfg);
  return cfg;
}

/// Prints machine-readable `label key=value` lines for the previous
/// Runtime::run, skipping the per-place scheduler counters (noise at bench
/// granularity; use APGAS_METRICS for the full dump).
inline void emit_metrics(const std::string& label) {
  for (const auto& [key, value] : apgas::last_run_metrics()) {
    if (key.rfind("sched.p", 0) == 0) continue;
    std::printf("[metrics] %s %s=%llu\n", label.c_str(), key.c_str(),
                static_cast<unsigned long long>(value));
  }
  std::fflush(stdout);
}

/// True when either env knob asks for per-run metric lines on stdout.
inline bool metrics_requested() {
  return std::getenv("APGAS_METRICS_STDOUT") != nullptr;
}

/// emit_metrics gated on APGAS_METRICS_STDOUT — the benches call this after
/// every run so tables stay clean unless the user opts in.
inline void maybe_emit_metrics(const std::string& label) {
  if (metrics_requested()) emit_metrics(label);
}

inline std::vector<int> sweep_places(int max_places = 16) {
  std::vector<int> out;
  for (int p = 1; p <= max_places; p *= 2) out.push_back(p);
  return out;
}

inline void header(const std::string& title) {
  static bool printed_machine = false;
  if (!printed_machine) {
    printed_machine = true;
    std::printf("[machine: %u hardware threads — wall-clock columns degrade "
                "once places exceed cores; message/balance columns are "
                "exact]\n",
                std::thread::hardware_concurrency());
  }
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace bench
