// §3.3 congruent memory allocator: symmetric allocation cost and the
// large-page TLB-entry accounting ("The Torrent, even more than the CPU, is
// very sensitive to TLB misses ... essential for RandomAccess").
#include "bench_common.h"
#include "runtime/api.h"

using namespace apgas;

int main() {
  bench::header("§3.3 — congruent allocator: TLB entries by page size");
  bench::row("%14s %12s %16s", "arena used", "page size", "TLB entries");
  for (bool large : {false, true}) {
    Config cfg;
    cfg.places = 2;
    cfg.congruent_bytes = 256u << 20;
    cfg.congruent_large_pages = large;
    Runtime::run(cfg, [large] {
      auto& space = Runtime::get().congruent();
      space.alloc<std::byte>(200u << 20);  // a RandomAccess-sized table
      bench::row("%11zu MB %12s %16zu", space.used() >> 20,
                 large ? "16 MiB" : "4 KiB", space.tlb_entries());
    });
  }
  bench::row("(the Power 775 backs registered segments with large pages so"
             " the Torrent's TLB holds the whole table)");

  bench::header("§3.3 — symmetric allocation: same offsets at every place");
  Config cfg;
  cfg.places = 8;
  cfg.congruent_bytes = 8u << 20;
  Runtime::run(cfg, [] {
    auto& space = Runtime::get().congruent();
    constexpr int kAllocs = 10000;
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t first = 0, last = 0;
    for (int i = 0; i < kAllocs; ++i) {
      auto c = space.alloc<double>(16);
      if (i == 0) first = c.offset;
      last = c.offset;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kAllocs;
    bench::row("%d symmetric allocations, %.0f ns each, offsets %zu..%zu "
               "valid at all %d places",
               kAllocs, ns, first, last, num_places());
  });
  return 0;
}
