// Figure 1 "Global FFT" + Table 1 row 3 (paper §5): weak-scaling Gflop/s of
// the transpose-method distributed FFT (local shuffle + All-To-All + local
// shuffle), verified by a distributed inverse round trip.
#include "bench_common.h"
#include "kernels/fft/fft.h"
#include "runtime/api.h"

int main() {
  using namespace apgas;
  bench::header("Figure 1 / Global FFT — weak scaling");
  bench::row("%8s %8s %10s %12s %16s %12s %10s", "places", "log2N", "mode",
             "Gflop/s", "Gflop/s/place", "efficiency", "verified");
  double base = 0;
  for (bool overlap : {false, true}) {
    for (int places : bench::sweep_places(8)) {
      Config cfg;
      cfg.places = places;
      cfg.places_per_node = 8;
      cfg.congruent_bytes = 32u << 20;
      Runtime::run(cfg, [&] {
        kernels::FftParams p;
        // Weak scaling: constant elements per place.
        int log2p = 0;
        while ((1 << log2p) < places) ++log2p;
        p.log2_size = 16 + log2p;
        p.overlap = overlap;
        auto r = kernels::fft_run(p);
        if (places == 1 && !overlap) base = r.gflops_per_place;
        bench::row("%8d %8d %10s %12.4f %16.5f %11.0f%% %10s", places,
                   p.log2_size, overlap ? "overlap" : "phased", r.gflops,
                   r.gflops_per_place, 100.0 * r.gflops_per_place / base,
                   r.verified ? "yes" : "NO");
      });
    }
  }
  bench::row("(paper: 0.99 Gflop/s 1 core -> 0.88 Gflop/s/core at scale; "
             "mid-range dip from cross-section bandwidth)");
  return 0;
}
