// §3.1 (no figure, load-bearing claims): control-message cost of each finish
// implementation. The paper: specialized finishes "start to make a
// difference with hundreds of places and become critical with thousands";
// FINISH_DENSE shapes traffic through node masters, bounding out-degree.
// Message counts are exact and hardware-independent.
#include <algorithm>

#include "bench_common.h"
#include "runtime/api.h"

using namespace apgas;

namespace {

struct Pattern {
  const char* name;
  Pragma pragma;
};

// SPMD-style fan-out: one activity per place (the FINISH_SPMD use case).
void run_fanout(Pragma pragma, int places, std::uint64_t& ctrl_msgs,
                std::uint64_t& ctrl_bytes, double& secs) {
  Config cfg;
  cfg.places = places;
  cfg.places_per_node = 8;
  Runtime::run(cfg, [&] {
    auto& tr = Runtime::get().transport();
    tr.reset_stats();
    const auto t0 = std::chrono::steady_clock::now();
    for (int round = 0; round < 20; ++round) {
      finish(pragma, [&] {
        for (int p = 1; p < num_places(); ++p) asyncAt(p, [] {});
      });
    }
    const auto t1 = std::chrono::steady_clock::now();
    ctrl_msgs = tr.count(x10rt::MsgType::kControl);
    ctrl_bytes = tr.bytes(x10rt::MsgType::kControl);
    secs = std::chrono::duration<double>(t1 - t0).count();
  });
}

void run_dense_pattern(Pragma pragma, int places, std::uint64_t& ctrl_msgs,
                       int& out_degree) {
  Config cfg;
  cfg.places = places;
  cfg.places_per_node = 8;
  cfg.count_pairs = true;
  Runtime::run(cfg, [&] {
    auto& tr = Runtime::get().transport();
    tr.reset_stats();
    // The paper's FINISH_DENSE example verbatim (§3.1): nested finishes,
    // one homed at every place, with direct communication between any two
    // places — so under DEFAULT every place sends termination snapshots to
    // every other place's finish home.
    finish(pragma, [&, pragma] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [pragma] {
          finish(pragma, [pragma] {
            for (int q = 0; q < num_places(); ++q) {
              asyncAt(q, [] {});
            }
          });
        });
      }
    });
    ctrl_msgs = tr.count(x10rt::MsgType::kControl);
    out_degree = tr.max_ctrl_out_degree();
  });
}

}  // namespace

int main() {
  bench::header("§3.1 — finish implementations: SPMD fan-out, 20 rounds");
  bench::row("%8s %14s %12s %12s %10s", "places", "finish", "ctrl msgs",
             "ctrl bytes", "time (s)");
  const Pattern patterns[] = {
      {"DEFAULT", Pragma::kDefault},
      {"FINISH_SPMD", Pragma::kSpmd},
      {"FINISH_DENSE", Pragma::kDense},
  };
  for (int places : bench::sweep_places(32)) {
    for (const auto& pat : patterns) {
      std::uint64_t msgs = 0, bytes = 0;
      double secs = 0;
      run_fanout(pat.pragma, places, msgs, bytes, secs);
      bench::row("%8d %14s %12llu %12llu %10.3f", places, pat.name,
                 static_cast<unsigned long long>(msgs),
                 static_cast<unsigned long long>(bytes), secs);
    }
  }

  bench::header(
      "§3.1 — FINISH_DENSE software routing: all-to-all spawn graph");
  bench::row("%8s %14s %12s %14s", "places", "finish", "ctrl msgs",
             "ctrl out-degree");
  // FINISH_SPMD is excluded here: remote activities spawning under the
  // governing finish is exactly the pattern SPMD forbids (the runtime
  // asserts); dense irregular graphs are what DEFAULT vs DENSE is about.
  const Pattern dense_patterns[] = {
      {"DEFAULT", Pragma::kDefault},
      {"FINISH_DENSE", Pragma::kDense},
  };
  for (int places : {8, 16, 32}) {
    for (const auto& pat : dense_patterns) {
      std::uint64_t msgs = 0;
      int deg = 0;
      run_dense_pattern(pat.pragma, places, msgs, deg);
      bench::row("%8d %14s %12llu %14d", places, pat.name,
                 static_cast<unsigned long long>(msgs), deg);
    }
  }
  bench::row("(paper: default finish is O(n^2) space and floods the root;"
             " specialized finishes are exact-count; DENSE routes via one"
             " master per node — b places per node, here 8)");

  bench::header(
      "§3.1 — dynamic optimization: plain finish assumes locality");
  bench::row("%8s %12s %12s %12s", "places", "mode", "ctrl msgs", "time (s)");
  for (int places : {4, 16}) {
    for (Pragma pragma : {Pragma::kAuto, Pragma::kDefault}) {
      Config cfg;
      cfg.places = places;
      cfg.places_per_node = 8;
      std::uint64_t msgs = 0;
      double secs = 0;
      Runtime::run(cfg, [&] {
        auto& tr = Runtime::get().transport();
        tr.reset_stats();
        const auto t0 = std::chrono::steady_clock::now();
        // A purely local workload: the optimistic kAuto finish never pays
        // for distribution; forcing the general protocol allocates the
        // matrix every time (no messages either, but heavier state).
        for (int round = 0; round < 2000; ++round) {
          finish(pragma, [] {
            for (int i = 0; i < 4; ++i) async([] {});
          });
        }
        const auto t1 = std::chrono::steady_clock::now();
        msgs = tr.count(x10rt::MsgType::kControl);
        secs = std::chrono::duration<double>(t1 - t0).count();
      });
      bench::row("%8d %12s %12llu %12.4f", places,
                 pragma == Pragma::kAuto ? "kAuto" : "kDefault",
                 static_cast<unsigned long long>(msgs), secs);
    }
  }
  return 0;
}
