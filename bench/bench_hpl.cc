// Figure 1 "Global HPL" + Table 1 row 1 (paper §5): weak-scaling LU
// factorization Gflop/s on the 2D block-cyclic distribution. Matrix memory
// per place is held constant (n grows with sqrt(P)), as HPCC prescribes.
#include <cmath>

#include "bench_common.h"
#include "kernels/hpl/hpl.h"
#include "runtime/api.h"

int main() {
  using namespace apgas;
  bench::header("Figure 1 / Global HPL — weak scaling");
  bench::row("%8s %6s %6s %12s %16s %12s %12s", "places", "n", "grid",
             "Gflop/s", "Gflop/s/place", "efficiency", "residual");
  double base = 0;
  for (int places : bench::sweep_places(8)) {
    Config cfg;
    cfg.places = places;
    cfg.places_per_node = 8;
    Runtime::run(cfg, [&] {
      kernels::HplParams p;
      p.nb = 32;
      // Constant memory per place: n scales with sqrt(P), rounded to nb.
      const int base_n = 256;
      p.n = static_cast<int>(base_n * std::sqrt(static_cast<double>(places)));
      p.n = (p.n + p.nb - 1) / p.nb * p.nb;
      auto r = kernels::hpl_run(p);
      if (places == 1) base = r.gflops_per_place;
      bench::row("%8d %6d %3dx%-3d %12.4f %16.5f %11.0f%% %12.3f", places,
                 p.n, r.pr, r.pc, r.gflops, r.gflops_per_place,
                 100.0 * r.gflops_per_place / base, r.residual);
    });
  }
  bench::row("(paper: 22.38 Gflop/s 1 core -> 17.98 Gflop/s/core at 32,768"
             " cores, 80%% relative efficiency; seesaw from n*n vs 2n*n"
             " block-cyclic grids)");
  return 0;
}
