// Figure 1 "K-Means" (paper §7): weak-scaling time for 5 Lloyd iterations
// with a constant number of points per place, plus parallel efficiency
// versus one place — the paper's panel plots exactly these two series.
#include "bench_common.h"
#include "kernels/kmeans/kmeans.h"
#include "runtime/api.h"

int main() {
  using namespace apgas;
  bench::header("Figure 1 / K-Means — weak scaling (5 iterations)");
  bench::row("%8s %12s %14s %12s %10s", "places", "time (s)", "efficiency",
             "inertia", "verified");
  double base = 0;
  for (int places : bench::sweep_places()) {
    Config cfg;
    cfg.places = places;
    cfg.places_per_node = 8;
    Runtime::run(cfg, [&] {
      kernels::KmeansParams p;
      p.points_per_place = 2000;
      p.clusters = 64;
      p.dim = 12;
      p.iterations = 5;
      auto r = kernels::kmeans_run(p);
      if (places == 1) base = r.seconds;
      bench::row("%8d %12.3f %13.0f%% %12.1f %10s", places, r.seconds,
                 100.0 * base / r.seconds, r.inertia_per_iter.back(),
                 r.verified ? "yes" : "NO");
    });
  }
  bench::row("(paper: 6.13s at 1 core -> 6.27s at 47,040 cores; efficiency"
             " never below 97%%)");
  return 0;
}
