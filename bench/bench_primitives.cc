// Runtime-primitive microbenchmarks (google-benchmark): the per-operation
// costs behind every kernel — task spawn, finish variants, remote spawn,
// blocking at, team barrier. Run inside a live 4-place runtime; the main
// activity at place 0 drives the benchmark loop.
#include <benchmark/benchmark.h>

#include "runtime/api.h"
#include "runtime/team.h"

using namespace apgas;

namespace {

void BM_LocalFinishAsync(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    finish(Pragma::kLocal, [&] {
      for (int i = 0; i < n; ++i) async([] {});
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LocalFinishAsync)->Arg(1)->Arg(16)->Arg(256);

void BM_AutoFinishLocalOnly(benchmark::State& state) {
  for (auto _ : state) {
    finish([] { async([] {}); });
  }
}
BENCHMARK(BM_AutoFinishLocalOnly);

void BM_FinishAsyncRemote(benchmark::State& state) {
  for (auto _ : state) {
    finish(Pragma::kAsync, [] { asyncAt(1, [] {}); });
  }
}
BENCHMARK(BM_FinishAsyncRemote);

void BM_DefaultFinishRemote(benchmark::State& state) {
  for (auto _ : state) {
    finish(Pragma::kDefault, [] { asyncAt(1, [] {}); });
  }
}
BENCHMARK(BM_DefaultFinishRemote);

void BM_FinishSpmdFanout(benchmark::State& state) {
  for (auto _ : state) {
    finish(Pragma::kSpmd, [] {
      for (int p = 1; p < num_places(); ++p) asyncAt(p, [] {});
    });
  }
}
BENCHMARK(BM_FinishSpmdFanout);

void BM_BlockingAtRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(at(1, [] { return 42; }));
  }
}
BENCHMARK(BM_BlockingAtRoundTrip);

void BM_GupsRemoteXor(benchmark::State& state) {
  auto& space = Runtime::get().congruent();
  static auto word = space.alloc<std::uint64_t>(1);
  auto* addr = space.at_place(1, word);
  auto& tr = Runtime::get().transport();
  for (auto _ : state) {
    tr.remote_xor64(0, 1, addr, 0x1234);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GupsRemoteXor);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  Config cfg;
  cfg.places = 4;
  cfg.places_per_node = 4;
  Runtime::run(cfg, [&] {
    // The benchmark loop runs inside the place-0 main activity so that the
    // APGAS API is usable from benchmark bodies.
    benchmark::RunSpecifiedBenchmarks();
  });
  benchmark::Shutdown();
  return 0;
}
