// Figure 1 "Global RandomAccess" + Table 1 row 2 (paper §5): weak-scaling
// GUP/s over the congruent table via GUPS remote XOR, with the HPCC replay
// verification. Power-of-two place counts only, as in the paper.
#include "bench_common.h"
#include "kernels/ra/randomaccess.h"
#include "runtime/api.h"

int main() {
  using namespace apgas;
  bench::header("Figure 1 / Global RandomAccess — weak scaling");
  bench::row("%8s %12s %16s %12s %12s", "places", "GUP/s", "GUP/s/place",
             "efficiency", "err-frac");
  double base = 0;
  for (int places : bench::sweep_places()) {
    Config cfg;
    cfg.places = places;
    cfg.places_per_node = 8;
    cfg.congruent_bytes = 4u << 20;
    Runtime::run(cfg, [&] {
      kernels::RaParams p;
      p.log2_table_per_place = 15;
      auto r = kernels::randomaccess_run(p);
      if (places == 1) base = r.gups_per_place;
      bench::row("%8d %12.5f %16.6f %11.0f%% %12.4f", places, r.gups,
                 r.gups_per_place, 100.0 * r.gups_per_place / base,
                 r.error_fraction);
    });
  }
  bench::row("(paper: 0.82 GUP/s/host at both 8 and 1,024 hosts; dip "
             "in-between from cross-section bandwidth — see bench_topology)");
  return 0;
}
