// Scheduler + transport fast-path microbenchmarks (ISSUE 2 baseline +
// acceptance measurements). Three probes, each isolating one hot path the
// work-stealing overhaul targets:
//   (a) spawn  — spawn-to-completion throughput of empty tasks under one
//                finish at 1/2/4 workers per place (push/pop/notify cost);
//   (b) steal  — the same task count produced by a single worker so sibling
//                workers must steal everything they run (steal throughput
//                under imbalanced spawn);
//   (c) pump   — back-to-back send_am pairs through the raw transport
//                (per-message lock cost of the poll path), plus the batched
//                drain variant when the transport provides poll_batch.
// Writes machine-readable JSON (BENCH_scheduler.json, override with
// APGAS_BENCH_OUT) so before/after runs can be committed side by side.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/api.h"
#include "x10rt/transport.h"

using namespace apgas;

namespace {

double now_secs() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SpawnResult {
  int workers = 0;
  int tasks = 0;
  double secs = 0;
  double tasks_per_sec = 0;
  std::uint64_t steals = 0;
  std::uint64_t overflow = 0;
};

/// (a) Flat spawn burst: the finish body spawns `tasks` empty activities.
/// Every worker both produces (its stolen tasks spawn nothing) and consumes.
SpawnResult run_spawn(int workers, int tasks, int reps) {
  SpawnResult r;
  r.workers = workers;
  r.tasks = tasks;
  r.secs = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    Config cfg;
    cfg.places = 1;
    cfg.workers_per_place = workers;
    std::atomic<long> ran{0};
    double secs = 0;
    Runtime::run(cfg, [&] {
      const double t0 = now_secs();
      finish([&] {
        for (int i = 0; i < tasks; ++i) {
          async([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
      secs = now_secs() - t0;
    });
    if (ran.load() != tasks) {
      std::fprintf(stderr, "spawn bench lost tasks: %ld != %d\n", ran.load(),
                   tasks);
      std::exit(1);
    }
    r.secs = std::min(r.secs, secs);
    const auto& m = last_run_metrics();
    auto it = m.find("sched.p0.steals");
    if (it != m.end()) r.steals = it->second;
    it = m.find("sched.p0.overflow");
    if (it != m.end()) r.overflow = it->second;
  }
  r.tasks_per_sec = r.tasks / r.secs;
  return r;
}

/// (b) Imbalanced spawn: one producer activity owns all spawns; with W > 1
/// the siblings only make progress by stealing. Tasks carry a little work so
/// the producer cannot drain its own deque faster than thieves can steal.
SpawnResult run_steal(int workers, int tasks, int reps) {
  SpawnResult r;
  r.workers = workers;
  r.tasks = tasks;
  r.secs = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    Config cfg;
    cfg.places = 1;
    cfg.workers_per_place = workers;
    std::atomic<long> ran{0};
    double secs = 0;
    Runtime::run(cfg, [&] {
      const double t0 = now_secs();
      finish([&] {
        async([&ran, tasks = r.tasks] {
          for (int i = 0; i < tasks; ++i) {
            async([&ran] {
              // ~100ns of private work per task.
              volatile int sink = 0;
              for (int k = 0; k < 32; ++k) sink = sink + k;
              ran.fetch_add(1, std::memory_order_relaxed);
            });
          }
        });
      });
      secs = now_secs() - t0;
    });
    if (ran.load() != tasks) {
      std::fprintf(stderr, "steal bench lost tasks: %ld != %d\n", ran.load(),
                   tasks);
      std::exit(1);
    }
    r.secs = std::min(r.secs, secs);
    const auto& m = last_run_metrics();
    auto it = m.find("sched.p0.steals");
    if (it != m.end()) r.steals = std::max(r.steals, it->second);
    it = m.find("sched.p0.overflow");
    if (it != m.end()) r.overflow = std::max(r.overflow, it->second);
  }
  r.tasks_per_sec = r.tasks / r.secs;
  return r;
}

struct PumpResult {
  std::string mode;
  int pairs = 0;
  double secs = 0;
  double msgs_per_sec = 0;
};

/// (c) Message pump: place 0 sends an AM to place 1 whose handler replies to
/// place 0; the caller drains both inboxes. Each pair costs two send_am and
/// two poll operations — exactly the per-message transport overhead the
/// batched drain amortizes.
PumpResult run_pump(int pairs, int reps) {
  PumpResult r;
  r.mode = "poll";
  r.pairs = pairs;
  r.secs = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    x10rt::TransportConfig tc;
    tc.places = 2;
    tc.dma_threads = 0;
    x10rt::Transport tr(tc);
    long received = 0;
    const int echo = tr.register_am([&tr](x10rt::ByteBuffer&) {
      tr.send_am(1, 0, /*handler=*/1, x10rt::ByteBuffer{});
    });
    const int sink = tr.register_am([&received](x10rt::ByteBuffer&) {
      ++received;
    });
    (void)echo;
    (void)sink;
    const double t0 = now_secs();
    for (int i = 0; i < pairs; ++i) {
      tr.send_am(0, 1, 0, x10rt::ByteBuffer{});
      while (auto m = tr.poll(1)) m->run();
      while (auto m = tr.poll(0)) m->run();
    }
    const double secs = now_secs() - t0;
    if (received != pairs) {
      std::fprintf(stderr, "pump bench lost messages: %ld != %d\n", received,
                   pairs);
      std::exit(1);
    }
    r.secs = std::min(r.secs, secs);
  }
  r.msgs_per_sec = 2.0 * r.pairs / r.secs;
  return r;
}

#ifdef APGAS_HAVE_POLL_BATCH
/// Batched variant of (c): one-way flood of `n` AMs drained with
/// poll_batch, measuring the amortized per-message cost.
PumpResult run_pump_batch(int n, int reps) {
  PumpResult r;
  r.mode = "poll_batch";
  r.pairs = n;
  r.secs = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    x10rt::TransportConfig tc;
    tc.places = 2;
    tc.dma_threads = 0;
    x10rt::Transport tr(tc);
    long received = 0;
    tr.register_am([&received](x10rt::ByteBuffer&) { ++received; });
    const double t0 = now_secs();
    std::deque<x10rt::Message> batch;
    for (int i = 0; i < n; ++i) {
      tr.send_am(0, 1, 0, x10rt::ByteBuffer{});
      if ((i & 31) == 31) {
        tr.poll_batch(1, batch, 32);
        while (!batch.empty()) {
          batch.front().run();
          batch.pop_front();
        }
      }
    }
    for (;;) {
      if (tr.poll_batch(1, batch, 32) == 0) break;
      while (!batch.empty()) {
        batch.front().run();
        batch.pop_front();
      }
    }
    const double secs = now_secs() - t0;
    if (received != n) {
      std::fprintf(stderr, "pump_batch lost messages: %ld != %d\n", received,
                   n);
      std::exit(1);
    }
    r.secs = std::min(r.secs, secs);
  }
  r.msgs_per_sec = static_cast<double>(r.pairs) / r.secs;
  return r;
}

/// One-way flood drained one poll() per message — the direct comparand for
/// run_pump_batch (same message count, unbatched).
PumpResult run_pump_flood(int n, int reps) {
  PumpResult r;
  r.mode = "poll_flood";
  r.pairs = n;
  r.secs = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    x10rt::TransportConfig tc;
    tc.places = 2;
    tc.dma_threads = 0;
    x10rt::Transport tr(tc);
    long received = 0;
    tr.register_am([&received](x10rt::ByteBuffer&) { ++received; });
    const double t0 = now_secs();
    for (int i = 0; i < n; ++i) {
      tr.send_am(0, 1, 0, x10rt::ByteBuffer{});
      if ((i & 31) == 31) {
        while (auto m = tr.poll(1)) m->run();
      }
    }
    while (auto m = tr.poll(1)) m->run();
    const double secs = now_secs() - t0;
    if (received != n) {
      std::fprintf(stderr, "pump_flood lost messages: %ld != %d\n", received,
                   n);
      std::exit(1);
    }
    r.secs = std::min(r.secs, secs);
  }
  r.msgs_per_sec = static_cast<double>(r.pairs) / r.secs;
  return r;
}
#endif  // APGAS_HAVE_POLL_BATCH

}  // namespace

int main() {
  const int kTasks = 100000;
  const int kPairs = 100000;
  const int kReps = 3;

  bench::header("scheduler — spawn-to-completion throughput (empty tasks)");
  bench::row("%8s %10s %10s %14s %10s %10s", "workers", "tasks", "secs",
             "tasks/s", "steals", "overflow");
  std::vector<SpawnResult> spawn;
  for (int w : {1, 2, 4}) {
    spawn.push_back(run_spawn(w, kTasks, kReps));
    const auto& r = spawn.back();
    bench::row("%8d %10d %10.4f %14.0f %10llu %10llu", r.workers, r.tasks,
               r.secs, r.tasks_per_sec,
               static_cast<unsigned long long>(r.steals),
               static_cast<unsigned long long>(r.overflow));
  }

  bench::header("scheduler — steal throughput (single-producer spawn)");
  bench::row("%8s %10s %10s %14s %10s %10s", "workers", "tasks", "secs",
             "tasks/s", "steals", "overflow");
  std::vector<SpawnResult> steal;
  for (int w : {1, 2, 4}) {
    steal.push_back(run_steal(w, kTasks, kReps));
    const auto& r = steal.back();
    bench::row("%8d %10d %10.4f %14.0f %10llu %10llu", r.workers, r.tasks,
               r.secs, r.tasks_per_sec,
               static_cast<unsigned long long>(r.steals),
               static_cast<unsigned long long>(r.overflow));
  }

  bench::header("transport — message pump (send_am pairs)");
  bench::row("%12s %10s %10s %14s", "mode", "msgs", "secs", "msgs/s");
  std::vector<PumpResult> pump;
  pump.push_back(run_pump(kPairs, kReps));
#ifdef APGAS_HAVE_POLL_BATCH
  pump.push_back(run_pump_flood(2 * kPairs, kReps));
  pump.push_back(run_pump_batch(2 * kPairs, kReps));
#endif
  for (const auto& r : pump) {
    bench::row("%12s %10d %10.4f %14.0f", r.mode.c_str(), 2 * r.pairs, r.secs,
               r.msgs_per_sec);
  }

  const char* out = std::getenv("APGAS_BENCH_OUT");
  const std::string path = out != nullptr ? out : "BENCH_scheduler.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"scheduler\",\n  \"spawn\": [\n");
  for (std::size_t i = 0; i < spawn.size(); ++i) {
    const auto& r = spawn[i];
    std::fprintf(f,
                 "    {\"workers\": %d, \"tasks\": %d, \"secs\": %.6f, "
                 "\"tasks_per_sec\": %.0f, \"steals\": %llu, "
                 "\"overflow\": %llu}%s\n",
                 r.workers, r.tasks, r.secs, r.tasks_per_sec,
                 static_cast<unsigned long long>(r.steals),
                 static_cast<unsigned long long>(r.overflow),
                 i + 1 < spawn.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"steal\": [\n");
  for (std::size_t i = 0; i < steal.size(); ++i) {
    const auto& r = steal[i];
    std::fprintf(f,
                 "    {\"workers\": %d, \"tasks\": %d, \"secs\": %.6f, "
                 "\"tasks_per_sec\": %.0f, \"steals\": %llu, "
                 "\"overflow\": %llu}%s\n",
                 r.workers, r.tasks, r.secs, r.tasks_per_sec,
                 static_cast<unsigned long long>(r.steals),
                 static_cast<unsigned long long>(r.overflow),
                 i + 1 < steal.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"pump\": [\n");
  for (std::size_t i = 0; i < pump.size(); ++i) {
    const auto& r = pump[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"msgs\": %d, \"secs\": %.6f, "
                 "\"msgs_per_sec\": %.0f}%s\n",
                 r.mode.c_str(), 2 * r.pairs, r.secs, r.msgs_per_sec,
                 i + 1 < pump.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n[wrote %s]\n", path.c_str());
  return 0;
}
