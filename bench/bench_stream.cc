// Figure 1 "EP Stream (Triad)" + Table 1 row 4 (paper §5): weak-scaling
// sustainable memory bandwidth, GB/s total and GB/s per place, plus the
// relative efficiency at scale versus one place (Table 2 row 4).
#include "bench_common.h"
#include "kernels/stream/stream.h"
#include "runtime/api.h"

int main() {
  using namespace apgas;
  bench::header("Figure 1 / EP Stream (Triad) — weak scaling");
  bench::row("%8s %14s %16s %12s %10s", "places", "GB/s", "GB/s/place",
             "efficiency", "verified");
  double base_per_place = 0;
  for (int places : bench::sweep_places()) {
    Config cfg;
    cfg.places = places;
    cfg.places_per_node = 8;
    cfg.congruent_bytes = 8u << 20;
    Runtime::run(cfg, [&] {
      kernels::StreamParams p;
      p.elements_per_place = 1u << 18;
      p.iterations = 5;
      auto r = kernels::stream_run(p);
      if (places == 1) base_per_place = r.gb_per_sec_per_place;
      bench::row("%8d %14.2f %16.3f %11.0f%% %10s", places,
                 r.gb_per_sec_total, r.gb_per_sec_per_place,
                 100.0 * r.gb_per_sec_per_place / base_per_place,
                 r.verified ? "yes" : "NO");
    });
  }
  bench::row("(paper: 7.23 GB/s/core at 1 host -> 7.12 at 55,680 cores, 98%%"
             " relative efficiency)");
  return 0;
}
