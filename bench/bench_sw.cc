// Figure 1 "Smith-Waterman" (paper §7): weak-scaling time for aligning the
// short query against a long sequence that grows with the place count
// (overlapping fragments, best-of-bests All-Reduce).
#include "bench_common.h"
#include "kernels/sw/smith_waterman.h"
#include "runtime/api.h"

int main() {
  using namespace apgas;
  bench::header("Figure 1 / Smith-Waterman — weak scaling");
  bench::row("%8s %12s %14s %12s %14s", "places", "time (s)", "efficiency",
             "best", "Mcells/s");
  double base = 0;
  for (int places : bench::sweep_places()) {
    Config cfg;
    cfg.places = places;
    cfg.places_per_node = 8;
    Runtime::run(cfg, [&] {
      kernels::SwParams p;
      p.short_len = 200;
      p.long_per_place = 20000;
      auto r = kernels::smith_waterman_run(p);
      if (places == 1) base = r.seconds;
      bench::row("%8d %12.3f %13.0f%% %12d %14.1f", places, r.seconds,
                 100.0 * base / r.seconds, r.best_score,
                 r.cells_per_sec / 1e6);
    });
  }
  bench::row("(paper: 8.61s 1 place, 12.68s 1 host, 12.87s at 47,040 cores;"
             " only 2%% efficiency lost scaling hosts out)");
  return 0;
}
