// Table 1 (paper §5.2): X10 implementation vs the best achievable on the
// same machine. The paper compares against IBM's hand-tuned HPCC Class 1
// runs; our stand-in baseline is a "direct" implementation of each kernel —
// plain single-core loops with no runtime, no transport, no termination
// detection (DESIGN.md §2). Reported: per-place rate of the distributed
// run at scale as a fraction of the direct single-core rate.
#include <atomic>
#include <chrono>
#include <numeric>

#include <algorithm>
#include <thread>

#include "bench_common.h"
#include "kernels/fft/fft.h"
#include "kernels/hpl/hpl.h"
#include "kernels/ra/randomaccess.h"
#include "kernels/stream/stream.h"
#include "kernels/util/dgemm.h"
#include "kernels/util/fft1d.h"
#include "kernels/util/hpcc_rng.h"
#include "runtime/api.h"

using namespace apgas;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// --- direct (no-runtime) baselines ------------------------------------------

double direct_stream_gbs() {
  constexpr std::size_t kN = 1u << 18;
  constexpr int kIters = 5;
  std::vector<double> a(kN), b(kN, 1.0), c(kN, 2.0);
  const auto t0 = Clock::now();
  for (int it = 0; it < kIters; ++it) {
    for (std::size_t i = 0; i < kN; ++i) a[i] = b[i] + 3.0 * c[i];
  }
  const double secs = seconds_since(t0);
  return 3.0 * sizeof(double) * kN * kIters / secs / 1e9;
}

double direct_ra_gups() {
  // Comparable baseline: same *total* table as the 8-place distributed run
  // and atomic updates (the distributed path pays atomicity too).
  constexpr int kLog2 = 18;  // 8 places x 2^15
  constexpr std::uint64_t kTable = 1ull << kLog2;
  std::vector<std::uint64_t> table(kTable);
  std::iota(table.begin(), table.end(), 0);
  std::uint64_t ran = kernels::hpcc_starts(0);
  const std::uint64_t updates = 4 * kTable;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < updates; ++i) {
    ran = kernels::hpcc_next(ran);
    std::atomic_ref<std::uint64_t>(table[ran & (kTable - 1)])
        .fetch_xor(ran, std::memory_order_relaxed);
  }
  const double secs = seconds_since(t0);
  return static_cast<double>(updates) / secs / 1e9;
}

double direct_fft_gflops() {
  constexpr int kLog2 = 16;
  constexpr std::size_t kN = 1u << kLog2;
  std::vector<kernels::Complex> x(kN, kernels::Complex(0.5, -0.5));
  const auto t0 = Clock::now();
  kernels::fft_forward(x.data(), kN);
  const double secs = seconds_since(t0);
  return 5.0 * kN * kLog2 / secs / 1e9;
}

double direct_hpl_gflops() {
  // Plain sequential right-looking LU with partial pivoting.
  constexpr int kN = 256;
  std::vector<double> a(static_cast<std::size_t>(kN) * kN);
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      a[static_cast<std::size_t>(i) * kN + j] = kernels::hpl_entry(1, i, j);
    }
  }
  const auto t0 = Clock::now();
  for (int k = 0; k < kN; ++k) {
    int piv = k;
    for (int i = k + 1; i < kN; ++i) {
      if (std::abs(a[static_cast<std::size_t>(i) * kN + k]) >
          std::abs(a[static_cast<std::size_t>(piv) * kN + k])) {
        piv = i;
      }
    }
    if (piv != k) {
      for (int j = 0; j < kN; ++j) {
        std::swap(a[static_cast<std::size_t>(k) * kN + j],
                  a[static_cast<std::size_t>(piv) * kN + j]);
      }
    }
    const double d = a[static_cast<std::size_t>(k) * kN + k];
    for (int i = k + 1; i < kN; ++i) {
      a[static_cast<std::size_t>(i) * kN + k] /= d;
    }
    if (k + 1 < kN) {
      kernels::dgemm_sub(static_cast<std::size_t>(kN - k - 1),
                         static_cast<std::size_t>(kN - k - 1), 1,
                         &a[static_cast<std::size_t>(k + 1) * kN + k],
                         static_cast<std::size_t>(kN),
                         &a[static_cast<std::size_t>(k) * kN + k + 1],
                         static_cast<std::size_t>(kN),
                         &a[static_cast<std::size_t>(k + 1) * kN + k + 1],
                         static_cast<std::size_t>(kN));
    }
  }
  const double secs = seconds_since(t0);
  const double n = kN;
  return (2.0 / 3.0 * n * n * n + 1.5 * n * n) / secs / 1e9;
}

}  // namespace

int main() {
  constexpr int kPlaces = 8;
  bench::header("Table 1 — APGAS runs vs direct (no-runtime) baselines");
  const double cores = std::thread::hardware_concurrency();
  const double adj = kPlaces / std::min<double>(kPlaces, cores);
  bench::row("%-18s %10s %20s %22s %10s %10s", "benchmark", "places",
             "APGAS (per place)", "direct (single core)", "ratio",
             "core-adj");

  // Stream.
  {
    const double direct = direct_stream_gbs();
    double apgas_rate = 0;
    Config cfg;
    cfg.places = kPlaces;
    cfg.congruent_bytes = 16u << 20;
    Runtime::run(bench::observe(cfg), [&] {
      kernels::StreamParams p;
      p.elements_per_place = 1u << 18;
      p.iterations = 5;
      apgas_rate = kernels::stream_run(p).gb_per_sec_per_place;
    });
    bench::maybe_emit_metrics("stream");
    bench::row("%-18s %10d %17.2f GB/s %19.2f GB/s %9.0f%% %9.0f%%",
               "EP Stream", kPlaces, apgas_rate, direct,
               100 * apgas_rate / direct, 100 * adj * apgas_rate / direct);
  }
  // RandomAccess.
  {
    const double direct = direct_ra_gups();
    double apgas_rate = 0;
    Config cfg;
    cfg.places = kPlaces;
    cfg.congruent_bytes = 8u << 20;
    Runtime::run(bench::observe(cfg), [&] {
      kernels::RaParams p;
      p.log2_table_per_place = 15;
      apgas_rate = kernels::randomaccess_run(p).gups_per_place;
    });
    bench::maybe_emit_metrics("randomaccess");
    bench::row("%-18s %10d %16.4f GUP/s %18.4f GUP/s %9.0f%% %9.0f%%",
               "RandomAccess", kPlaces, apgas_rate, direct,
               100 * apgas_rate / direct, 100 * adj * apgas_rate / direct);
  }
  // FFT.
  {
    const double direct = direct_fft_gflops();
    double apgas_rate = 0;
    Config cfg;
    cfg.places = kPlaces;
    Runtime::run(bench::observe(cfg), [&] {
      kernels::FftParams p;
      p.log2_size = 19;  // same 2^16 elements per place
      apgas_rate = kernels::fft_run(p).gflops_per_place;
    });
    bench::maybe_emit_metrics("fft");
    bench::row("%-18s %10d %14.3f Gflop/s %16.3f Gflop/s %9.0f%% %9.0f%%",
               "Global FFT", kPlaces, apgas_rate, direct,
               100 * apgas_rate / direct, 100 * adj * apgas_rate / direct);
  }
  // HPL.
  {
    const double direct = direct_hpl_gflops();
    double apgas_rate = 0;
    Config cfg;
    cfg.places = kPlaces;
    Runtime::run(bench::observe(cfg), [&] {
      kernels::HplParams p;
      p.n = 512;
      p.nb = 32;
      apgas_rate = kernels::hpl_run(p).gflops_per_place;
    });
    bench::maybe_emit_metrics("hpl");
    bench::row("%-18s %10d %14.3f Gflop/s %16.3f Gflop/s %9.0f%% %9.0f%%",
               "Global HPL", kPlaces, apgas_rate, direct,
               100 * apgas_rate / direct, 100 * adj * apgas_rate / direct);
  }
  bench::row("(paper's Table 1 ratios vs hand-tuned Class 1 runs: HPL 85%%,"
             " RandomAccess 81%%, FFT 41%%, Stream 87%%)");
  return 0;
}
