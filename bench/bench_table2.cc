// Table 2 (paper §5.2): relative efficiency — per-place performance of the
// same implementation at scale versus at one place (one host in the paper),
// for all eight kernels. Wall-clock columns are affected by core
// oversubscription (see DESIGN.md §6); the UTS row also reports the exact
// work-balance quality, which is hardware-independent.
#include <algorithm>
#include <thread>

#include "bench_common.h"
#include "kernels/bc/bc.h"
#include "kernels/fft/fft.h"
#include "kernels/hpl/hpl.h"
#include "kernels/kmeans/kmeans.h"
#include "kernels/ra/randomaccess.h"
#include "kernels/stream/stream.h"
#include "kernels/sw/smith_waterman.h"
#include "kernels/uts/uts.h"
#include "runtime/api.h"

using namespace apgas;

namespace {

Config cfg_n(int places) {
  Config cfg;
  cfg.places = places;
  cfg.places_per_node = 8;
  cfg.congruent_bytes = 16u << 20;
  return bench::observe(cfg);
}

template <typename F>
double per_place_rate(int places, F kernel_rate) {
  double rate = 0;
  Runtime::run(cfg_n(places), [&] { rate = kernel_rate(); });
  bench::maybe_emit_metrics("places" + std::to_string(places));
  return rate;
}

double core_adjust() {
  const double cores = std::thread::hardware_concurrency();
  return 8.0 / std::min(8.0, cores);  // kScale places timeshare the cores
}

void report(const char* name, double at_one, double at_scale,
            const char* unit) {
  bench::row("%-22s %14.4f %14.4f %-12s %9.0f%% %9.0f%%", name, at_one,
             at_scale, unit, 100.0 * at_scale / at_one,
             100.0 * core_adjust() * at_scale / at_one);
}

}  // namespace

int main() {
  constexpr int kScale = 8;
  bench::header("Table 2 — relative efficiency: per-place rate, 1 place vs "
                "at scale");
  bench::row("%-22s %14s %14s %-12s %10s %10s", "benchmark", "1 place",
             "at scale", "unit", "rel. eff.", "core-adj");

  report("Global HPL",
         per_place_rate(1,
                        [] {
                          kernels::HplParams p;
                          p.n = 256;
                          return kernels::hpl_run(p).gflops_per_place;
                        }),
         per_place_rate(kScale,
                        [] {
                          kernels::HplParams p;
                          p.n = 512;
                          return kernels::hpl_run(p).gflops_per_place;
                        }),
         "Gflop/s");

  report("Global RandomAccess",
         per_place_rate(1,
                        [] {
                          kernels::RaParams p;
                          p.log2_table_per_place = 14;
                          return kernels::randomaccess_run(p).gups_per_place;
                        }),
         per_place_rate(kScale,
                        [] {
                          kernels::RaParams p;
                          p.log2_table_per_place = 14;
                          return kernels::randomaccess_run(p).gups_per_place;
                        }),
         "GUP/s");

  report("Global FFT",
         per_place_rate(1,
                        [] {
                          kernels::FftParams p;
                          p.log2_size = 16;
                          return kernels::fft_run(p).gflops_per_place;
                        }),
         per_place_rate(kScale,
                        [] {
                          kernels::FftParams p;
                          p.log2_size = 19;
                          return kernels::fft_run(p).gflops_per_place;
                        }),
         "Gflop/s");

  report("EP Stream (Triad)",
         per_place_rate(1,
                        [] {
                          kernels::StreamParams p;
                          p.elements_per_place = 1u << 17;
                          return kernels::stream_run(p).gb_per_sec_per_place;
                        }),
         per_place_rate(kScale,
                        [] {
                          kernels::StreamParams p;
                          p.elements_per_place = 1u << 17;
                          return kernels::stream_run(p).gb_per_sec_per_place;
                        }),
         "GB/s");

  report("UTS",
         per_place_rate(1,
                        [] {
                          kernels::UtsParams p;
                          p.depth = 10;
                          return kernels::uts_run(p).mnodes_per_sec_per_place;
                        }),
         per_place_rate(kScale,
                        [] {
                          kernels::UtsParams p;
                          p.depth = 11;
                          return kernels::uts_run(p).mnodes_per_sec_per_place;
                        }),
         "Mnodes/s");

  // K-Means and Smith-Waterman report run time (lower is better), so
  // efficiency is t1 / tP as in the paper.
  {
    double t1 = 0, tp = 0;
    Runtime::run(cfg_n(1), [&] {
      kernels::KmeansParams p;
      p.points_per_place = 2000;
      t1 = kernels::kmeans_run(p).seconds;
    });
    Runtime::run(cfg_n(kScale), [&] {
      kernels::KmeansParams p;
      p.points_per_place = 2000;
      tp = kernels::kmeans_run(p).seconds;
    });
    bench::row("%-22s %13.4fs %13.4fs %-12s %9.0f%% %9.0f%%", "K-Means", t1,
               tp, "run time", 100.0 * t1 / tp,
               100.0 * core_adjust() * t1 / tp);
  }
  {
    double t1 = 0, tp = 0;
    Runtime::run(cfg_n(1), [&] {
      kernels::SwParams p;
      p.long_per_place = 20000;
      t1 = kernels::smith_waterman_run(p).seconds;
    });
    Runtime::run(cfg_n(kScale), [&] {
      kernels::SwParams p;
      p.long_per_place = 20000;
      tp = kernels::smith_waterman_run(p).seconds;
    });
    bench::row("%-22s %13.4fs %13.4fs %-12s %9.0f%% %9.0f%%",
               "Smith-Waterman", t1, tp, "run time", 100.0 * t1 / tp,
               100.0 * core_adjust() * t1 / tp);
  }

  report("Betweenness Centrality",
         per_place_rate(1,
                        [] {
                          kernels::BcParams p;
                          p.graph.scale = 9;
                          p.sources = 32;
                          return kernels::bc_run(p).medges_per_sec_per_place;
                        }),
         per_place_rate(kScale,
                        [] {
                          kernels::BcParams p;
                          p.graph.scale = 11;  // the paper's instance switch
                          p.sources = 32;
                          return kernels::bc_run(p).medges_per_sec_per_place;
                        }),
         "Medges/s");

  bench::row("(paper's Table 2: HPL 87%%, RandomAccess 100%%, FFT 100%%,"
             " Stream 98%%, UTS 98%%, K-Means 98%%, SW 98%%, BC 45%%)");
  return 0;
}
