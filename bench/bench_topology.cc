// §4 (the Power 775 system): the analytic PERCS cross-section bandwidth
// model. Reproduces the paper's described phases: octant-limited within one
// supernode, a sharp All-To-All drop when going from one supernode to two,
// slow recovery as D-link capacity aggregates, then a plateau.
#include "bench_common.h"
#include "percs/bandwidth.h"

int main() {
  percs::MachineShape shape;
  shape.supernodes = 120;  // extend past the crossover to show the plateau
  percs::BandwidthModel bw(shape);

  bench::header("§4 — PERCS All-To-All bandwidth per octant (model)");
  bench::row("%10s %12s %22s", "octants", "supernodes", "GB/s per octant");
  for (int octants :
       {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 1792, 2560, 3584}) {
    const int sn = (octants + 31) / 32;
    bench::row("%10d %12d %22.2f", octants, sn,
               bw.alltoall_per_octant(octants));
  }
  bench::row("(paper: sharp drop one->two supernodes, slow recovery with"
             " more supernodes, then a plateau at the octant injection"
             " ceiling)");

  bench::header("§4 — link classification (hops between octants)");
  percs::Machine m{percs::MachineShape{}};
  bench::row("%12s %12s %8s", "octant A", "octant B", "hops");
  for (auto [a, b] : {std::pair<int, int>{0, 0}, {0, 5}, {0, 12}, {0, 31},
                      {0, 32}, {17, 1000}}) {
    bench::row("%12d %12d %8d", a, b, m.hops(a, b));
  }
  return 0;
}
