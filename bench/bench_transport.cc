// Transport coalescing probe (ISSUE 3 acceptance measurements).
//
// Measures the sender-side aggregation layer the way the paper reports its
// control-message coalescing (§3.1): the small-AM flood rate with the layer
// off vs on, and the achieved records-per-envelope factor. Two probes:
//   (a) flood    — place 0 floods N small AMs at place 1, receiver drains
//                  with poll_batch; run direct and coalesced. This is the
//                  per-message lock+alloc cost the envelope train amortizes.
//   (b) echo     — request/response pairs (the pattern finish control
//                  traffic follows), direct vs coalesced with an explicit
//                  idle-style flush after each burst.
//   (c) reliability — the same flood with the ack/retransmit sublayer
//                  armed: lossless (pure sublayer overhead: stamping,
//                  dedup bookkeeping, piggyback acks) and under 5% drop +
//                  2% dup chaos (what loss actually costs end to end).
// Writes machine-readable JSON (BENCH_coalescing.json, override with
// APGAS_BENCH_OUT). The committed BENCH_coalescing.json additionally carries
// the before/after kernel rows (bench_finish / bench_uts /
// bench_randomaccess) — see EXPERIMENTS.md for the exact commands.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/autotune.h"
#include "x10rt/transport.h"

namespace {

double now_secs() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct FloodResult {
  std::string mode;
  int msgs = 0;
  double secs = 0;
  double msgs_per_sec = 0;
  double records_per_envelope = 0;  // 0 when the layer is off
};

x10rt::TransportConfig probe_cfg(bool coalesce) {
  x10rt::TransportConfig tc;
  tc.places = 2;
  tc.dma_threads = 0;
  if (coalesce) {
    tc.coalesce_bytes = 4096;
    tc.coalesce_msgs = 128;
  }
  return tc;
}

/// One rep of (a): a one-way burst flood — all `n` 8-byte AMs are injected,
/// the partial tail envelope is flushed the way the scheduler's idle hook
/// would, then the destination drains in poll_batch chunks. Timing the
/// whole burst (rather than ping-ponging sender and receiver) exposes both
/// halves of the win: per-message injection overhead *and* the inbox
/// holding n queued messages vs n/records_per_envelope envelopes. Folds the
/// rep's time into `r.secs` (min).
void run_flood(bool coalesce, int n, FloodResult& r) {
  x10rt::Transport tr(probe_cfg(coalesce));
  long received = 0;
  tr.register_am([&received](x10rt::ByteBuffer&) { ++received; });
  std::deque<x10rt::Message> batch;
  const double t0 = now_secs();
  for (int i = 0; i < n; ++i) {
    x10rt::ByteBuffer b = tr.acquire_buffer();
    b.put(static_cast<std::uint64_t>(i));
    tr.send_am(0, 1, 0, std::move(b));
  }
  tr.flush_coalesced(0, x10rt::FlushReason::kIdle);
  while (tr.poll_batch(1, batch, 64) > 0) {
    while (!batch.empty()) {
      batch.front().run();
      batch.pop_front();
    }
  }
  const double secs = now_secs() - t0;
  if (received != n) {
    std::fprintf(stderr, "flood lost messages: %ld != %d\n", received, n);
    std::exit(1);
  }
  r.secs = std::min(r.secs, secs);
  if (tr.coalesce_envelopes() > 0) {
    r.records_per_envelope = static_cast<double>(tr.coalesce_records()) /
                             static_cast<double>(tr.coalesce_envelopes());
  }
}

/// One rep of (b): request/response bursts — 32 requests at a time, each
/// answered by the remote handler, then both sides flush + drain; the shape
/// of finish credit/completion traffic between two places.
void run_echo(bool coalesce, int pairs, FloodResult& r) {
  x10rt::Transport tr(probe_cfg(coalesce));
  long received = 0;
  const int kReply = 1;
  tr.register_am([&tr, kReply](x10rt::ByteBuffer& buf) {
    x10rt::ByteBuffer b = tr.acquire_buffer();
    b.put(buf.get<std::uint64_t>());
    tr.send_am(1, 0, kReply, std::move(b));
  });
  tr.register_am([&received](x10rt::ByteBuffer&) { ++received; });
  std::deque<x10rt::Message> batch;
  auto drain = [&tr, &batch](int place) {
    while (tr.poll_batch(place, batch, 64) > 0) {
      while (!batch.empty()) {
        batch.front().run();
        batch.pop_front();
      }
    }
  };
  const double t0 = now_secs();
  for (int i = 0; i < pairs; i += 32) {
    for (int j = 0; j < 32 && i + j < pairs; ++j) {
      x10rt::ByteBuffer b = tr.acquire_buffer();
      b.put(static_cast<std::uint64_t>(i + j));
      tr.send_am(0, 1, 0, std::move(b));
    }
    tr.flush_coalesced(0, x10rt::FlushReason::kIdle);
    drain(1);  // handlers enqueue replies (possibly parked at place 1)
    tr.flush_coalesced(1, x10rt::FlushReason::kIdle);
    drain(0);
  }
  const double secs = now_secs() - t0;
  if (received != pairs) {
    std::fprintf(stderr, "echo lost messages: %ld != %d\n", received, pairs);
    std::exit(1);
  }
  r.secs = std::min(r.secs, secs);
  if (tr.coalesce_envelopes() > 0) {
    r.records_per_envelope = static_cast<double>(tr.coalesce_records()) /
                             static_cast<double>(tr.coalesce_envelopes());
  }
}

/// One rep of (c): the flood of (a) with the reliability sublayer armed.
/// The sender drains both places every window of sends, the way the
/// scheduler's poll loop interleaves with injection — a fire-everything-
/// then-recover shape would stall the cumulative ack at the first dropped
/// sequence and measure a retransmit storm of its own making instead of
/// the protocol. Timeout is sized so only real drops retransmit (a window
/// is ~ms of wall time). The tail is recovered with the ack-first force-
/// pump loop `finalize_observability` runs, inside the timed region: the
/// recovery latency is the honest cost of loss.
void run_retx_flood(bool lossy, int n, FloodResult& r) {
  x10rt::TransportConfig tc;
  tc.places = 2;
  tc.dma_threads = 0;
  tc.retx_timeout_us = 20'000;
  if (lossy) {
    tc.chaos.drop_prob = 0.05;
    tc.chaos.dup_prob = 0.02;
  }
  x10rt::Transport tr(tc);
  long received = 0;
  tr.register_am([&received](x10rt::ByteBuffer&) { ++received; });
  std::deque<x10rt::Message> batch;
  auto drain = [&tr, &batch](int place) {
    while (tr.poll_batch(place, batch, 64) > 0) {
      while (!batch.empty()) {
        batch.front().run();
        batch.pop_front();
      }
    }
  };
  const double t0 = now_secs();
  for (int i = 0; i < n; ++i) {
    x10rt::ByteBuffer b = tr.acquire_buffer();
    b.put(static_cast<std::uint64_t>(i));
    tr.send_am(0, 1, 0, std::move(b));
    if ((i + 1) % 2048 == 0) {
      drain(1);
      tr.retx_pump(1, /*force=*/true);  // ship ack debt without the idle wait
      drain(0);  // process acks; timer pump retransmits real drops
    }
  }
  drain(1);
  for (;;) {
    // Ack side first: let place 0 process place 1's acks *before* any
    // force pump of the sender, or retained-but-delivered messages whose
    // ack is merely in flight would retransmit as a burst.
    tr.retx_pump(1, /*force=*/true);
    drain(0);
    if (tr.retx_quiescent()) break;
    tr.retx_pump(0, /*force=*/true);
    drain(1);
  }
  const double secs = now_secs() - t0;
  if (received != n) {
    std::fprintf(stderr, "retx flood lost messages: %ld != %d\n", received, n);
    std::exit(1);
  }
  r.secs = std::min(r.secs, secs);
}

// --- adaptive tuning probes (ISSUE 8) ---------------------------------------
//
// Three traffic shapes, each in three modes:
//   static_coalesce — the flood-tuned static config (4096-byte envelopes);
//   static_direct   — coalescing off (the latency-tuned static config);
//   adaptive        — the static_coalesce config plus an Autotune controller
//                     moving the per-pair flush threshold online.
// The shapes are chosen so each static mode wins one of the pure probes:
//   flood    — one-way small-AM burst: big envelopes win;
//   pingpong — window-1 round trips with idle-style flushes (a blocked
//              finish waiting on one remote child): every envelope carries
//              one record, so coalescing is pure overhead and direct wins;
//   mixed    — alternating flood bursts and pingpong trains in one run: any
//              static choice loses one phase, the controller re-converges
//              each phase and must beat both statics end to end.

enum class TuneMode { kStaticCoalesce, kStaticDirect, kAdaptive };

const char* tune_mode_name(TuneMode m) {
  switch (m) {
    case TuneMode::kStaticCoalesce: return "static_coalesce";
    case TuneMode::kStaticDirect: return "static_direct";
    case TuneMode::kAdaptive: return "adaptive";
  }
  return "?";
}

/// A bare transport plus (in adaptive mode) the controller, wired the way
/// Runtime wires them: flushes feed on_flush, poll_batch drives maybe_tick.
struct TuneHarness {
  std::unique_ptr<apgas::Autotune> at;
  std::unique_ptr<x10rt::Transport> tr;
  long flood_received = 0;
  long pong_received = 0;
  int am_flood = -1;
  int am_ping = -1;
  int am_pong = -1;

  explicit TuneHarness(TuneMode m) {
    x10rt::TransportConfig tc;
    tc.places = 2;
    tc.dma_threads = 0;
    if (m != TuneMode::kStaticDirect) {
      tc.coalesce_bytes = 4096;
      tc.coalesce_msgs = 128;
    }
    if (m == TuneMode::kAdaptive) {
      apgas::Autotune::Knobs kn;
      kn.coalesce_bytes_cap = tc.coalesce_bytes;
      at = std::make_unique<apgas::Autotune>(tc.places, kn);
      apgas::Autotune* a = at.get();
      tc.flush_hook = [a](int src, int dst, std::uint32_t records,
                          x10rt::FlushReason reason, std::uint64_t res_ns) {
        a->on_flush(src, dst, records, reason, res_ns);
      };
      tc.tick_hook = [a](int place) { a->maybe_tick(place); };
    }
    tr = std::make_unique<x10rt::Transport>(tc);
    if (at) at->attach_transport(tr.get());
    am_flood =
        tr->register_am([this](x10rt::ByteBuffer&) { ++flood_received; });
    am_ping = tr->register_am([this](x10rt::ByteBuffer& buf) {
      x10rt::ByteBuffer b = tr->acquire_buffer();
      b.put(buf.get<std::uint64_t>());
      tr->send_am(1, 0, am_pong, std::move(b));
    });
    am_pong = tr->register_am([this](x10rt::ByteBuffer&) { ++pong_received; });
  }

  /// Stands in for the sender-side scheduler tick a flooding place would get
  /// from its poll loop (the receiver side ticks through tc.tick_hook).
  void sender_tick(int place) {
    if (at) at->maybe_tick(place);
  }

  void drain(int place, std::deque<x10rt::Message>& batch) {
    while (tr->poll_batch(place, batch, 64) > 0) {
      while (!batch.empty()) {
        batch.front().run();
        batch.pop_front();
      }
    }
  }

  void flood_segment(int n, std::deque<x10rt::Message>& batch) {
    for (int i = 0; i < n; ++i) {
      x10rt::ByteBuffer b = tr->acquire_buffer();
      b.put(static_cast<std::uint64_t>(i));
      tr->send_am(0, 1, am_flood, std::move(b));
      if ((i + 1) % 256 == 0) sender_tick(0);
    }
    tr->flush_coalesced(0, x10rt::FlushReason::kIdle);
    drain(1, batch);
  }

  /// Window-1 round trips. The flushes are the idle-hook flushes a real
  /// place performs when it blocks on the reply — they run in every mode
  /// (no-ops when there is nothing parked), so the modes differ only in
  /// whether the record actually parked.
  void pingpong_segment(int n, std::deque<x10rt::Message>& batch) {
    for (int i = 0; i < n; ++i) {
      x10rt::ByteBuffer b = tr->acquire_buffer();
      b.put(static_cast<std::uint64_t>(i));
      tr->send_am(0, 1, am_ping, std::move(b));
      tr->flush_coalesced(0, x10rt::FlushReason::kIdle);
      drain(1, batch);  // handler enqueues (or parks) the reply
      tr->flush_coalesced(1, x10rt::FlushReason::kIdle);
      drain(0, batch);
      // No explicit sender_tick: both places are polled every round trip,
      // so the decimated poll-path hook drives the controller exactly as it
      // does for a runtime place blocked on a remote child.
    }
  }
};

void check_count(long got, long want, const char* what) {
  if (got != want) {
    std::fprintf(stderr, "%s lost messages: %ld != %ld\n", what, got, want);
    std::exit(1);
  }
}

void run_tune_flood(TuneMode m, int n, FloodResult& r) {
  TuneHarness h(m);
  std::deque<x10rt::Message> batch;
  const double t0 = now_secs();
  h.flood_segment(n, batch);
  const double secs = now_secs() - t0;
  check_count(h.flood_received, n, "tune flood");
  r.secs = std::min(r.secs, secs);
  if (h.tr->coalesce_envelopes() > 0) {
    r.records_per_envelope = static_cast<double>(h.tr->coalesce_records()) /
                             static_cast<double>(h.tr->coalesce_envelopes());
  }
}

void run_tune_pingpong(TuneMode m, int n, FloodResult& r) {
  TuneHarness h(m);
  std::deque<x10rt::Message> batch;
  const double t0 = now_secs();
  h.pingpong_segment(n, batch);
  const double secs = now_secs() - t0;
  check_count(h.pong_received, n, "tune pingpong");
  r.secs = std::min(r.secs, secs);
  if (h.tr->coalesce_envelopes() > 0) {
    r.records_per_envelope = static_cast<double>(h.tr->coalesce_records()) /
                             static_cast<double>(h.tr->coalesce_envelopes());
  }
}

/// Alternating phases in one timed run; counts one logical message per flood
/// AM and two per round trip.
void run_tune_mixed(TuneMode m, int cycles, int flood_n, int ping_n,
                    FloodResult& r, std::uint64_t* adjusts = nullptr) {
  TuneHarness h(m);
  std::deque<x10rt::Message> batch;
  const double t0 = now_secs();
  for (int c = 0; c < cycles; ++c) {
    h.flood_segment(flood_n, batch);
    h.pingpong_segment(ping_n, batch);
  }
  const double secs = now_secs() - t0;
  check_count(h.flood_received, static_cast<long>(cycles) * flood_n,
              "mixed flood");
  check_count(h.pong_received, static_cast<long>(cycles) * ping_n,
              "mixed pingpong");
  r.secs = std::min(r.secs, secs);
  if (h.tr->coalesce_envelopes() > 0) {
    r.records_per_envelope = static_cast<double>(h.tr->coalesce_records()) /
                             static_cast<double>(h.tr->coalesce_envelopes());
  }
  if (adjusts != nullptr && h.at) {
    *adjusts =
        std::max(*adjusts, h.at->adjust_up() + h.at->adjust_down());
  }
}

void print_rows(const std::vector<FloodResult>& rows) {
  bench::row("%12s %10s %10s %14s %12s", "mode", "msgs", "secs", "msgs/s",
             "recs/env");
  for (const auto& r : rows) {
    bench::row("%12s %10d %10.4f %14.0f %12.1f", r.mode.c_str(), r.msgs,
               r.secs, r.msgs_per_sec, r.records_per_envelope);
  }
}

void json_rows(std::FILE* f, const std::vector<FloodResult>& rows) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"msgs\": %d, \"secs\": %.6f, "
                 "\"msgs_per_sec\": %.0f, \"records_per_envelope\": %.2f}%s\n",
                 r.mode.c_str(), r.msgs, r.secs, r.msgs_per_sec,
                 r.records_per_envelope, i + 1 < rows.size() ? "," : "");
  }
}

}  // namespace

int main() {
  // Interleaved min-of-reps: on a loaded single-core host the noise has
  // longer periods than one whole probe, so direct and coalesced reps are
  // alternated (both modes sample every noise phase) and each mode reports
  // its best rep — the ratio of bests is the stable signal.
  const int kMsgs = 200000;
  const int kReps = 9;

  std::vector<FloodResult> flood(2);
  flood[0].mode = "direct";
  flood[1].mode = "coalesce";
  for (auto& r : flood) {
    r.msgs = kMsgs;
    r.secs = 1e30;
  }
  std::vector<FloodResult> echo(2);
  echo[0].mode = "direct";
  echo[1].mode = "coalesce";
  for (auto& r : echo) {
    r.msgs = kMsgs;
    r.secs = 1e30;
  }
  std::vector<FloodResult> retx(2);
  retx[0].mode = "retx";
  retx[1].mode = "retx+loss";
  for (auto& r : retx) {
    r.msgs = kMsgs;
    r.secs = 1e30;
  }
  for (int rep = 0; rep < kReps; ++rep) {
    run_flood(false, kMsgs, flood[0]);
    run_flood(true, kMsgs, flood[1]);
    run_echo(false, kMsgs / 2, echo[0]);
    run_echo(true, kMsgs / 2, echo[1]);
    run_retx_flood(false, kMsgs, retx[0]);
    run_retx_flood(true, kMsgs, retx[1]);
  }
  for (auto& r : flood) r.msgs_per_sec = static_cast<double>(r.msgs) / r.secs;
  for (auto& r : echo) r.msgs_per_sec = static_cast<double>(r.msgs) / r.secs;
  for (auto& r : retx) r.msgs_per_sec = static_cast<double>(r.msgs) / r.secs;

  bench::header("transport — small-AM flood (coalescing off vs on)");
  print_rows(flood);
  const double speedup = flood[1].msgs_per_sec / flood[0].msgs_per_sec;
  bench::row("%12s %.2fx", "speedup", speedup);

  bench::header("transport — request/response bursts (finish-shaped)");
  print_rows(echo);
  bench::row("%12s %.2fx", "speedup",
             echo[1].msgs_per_sec / echo[0].msgs_per_sec);

  bench::header("transport — flood with reliability sublayer (vs direct)");
  print_rows(retx);
  bench::row("%12s %.2fx overhead (lossless), %.2fx (5%% drop + 2%% dup)",
             "retx cost", flood[0].msgs_per_sec / retx[0].msgs_per_sec,
             flood[0].msgs_per_sec / retx[1].msgs_per_sec);

  // --- adaptive tuning (ISSUE 8) --------------------------------------------
  constexpr TuneMode kModes[] = {TuneMode::kStaticCoalesce,
                                 TuneMode::kStaticDirect, TuneMode::kAdaptive};
  const int kPings = 20000;
  const int kCycles = 3, kMixFlood = 20000, kMixPings = 2000;
  const int kMixMsgs = kCycles * (kMixFlood + 2 * kMixPings);
  std::vector<FloodResult> tflood(3), tping(3), tmix(3);
  for (int i = 0; i < 3; ++i) {
    tflood[i].mode = tping[i].mode = tmix[i].mode = tune_mode_name(kModes[i]);
    tflood[i].msgs = kMsgs;
    tping[i].msgs = 2 * kPings;  // a round trip is two logical messages
    tmix[i].msgs = kMixMsgs;
    tflood[i].secs = tping[i].secs = tmix[i].secs = 1e30;
  }
  std::uint64_t adaptive_adjusts = 0;
  // More reps than the coalescing section: the acceptance bar compares the
  // adaptive mode against the *better* static within 5%, so the min-of-reps
  // estimate has to be tight against scheduler jitter on a shared machine.
  const int kTuneReps = 21;
  for (int rep = 0; rep < kTuneReps; ++rep) {
    for (int i = 0; i < 3; ++i) {
      run_tune_flood(kModes[i], kMsgs, tflood[i]);
      run_tune_pingpong(kModes[i], kPings, tping[i]);
      run_tune_mixed(kModes[i], kCycles, kMixFlood, kMixPings, tmix[i],
                     kModes[i] == TuneMode::kAdaptive ? &adaptive_adjusts
                                                      : nullptr);
    }
  }
  for (auto& r : tflood) r.msgs_per_sec = static_cast<double>(r.msgs) / r.secs;
  for (auto& r : tping) r.msgs_per_sec = static_cast<double>(r.msgs) / r.secs;
  for (auto& r : tmix) r.msgs_per_sec = static_cast<double>(r.msgs) / r.secs;

  bench::header("transport — adaptive tuning: flood (coalesce-friendly)");
  print_rows(tflood);
  const double flood_frac = tflood[2].msgs_per_sec / tflood[0].msgs_per_sec;
  bench::row("%12s %.2f of static_coalesce", "adaptive", flood_frac);

  bench::header("transport — adaptive tuning: window-1 pingpong (direct-friendly)");
  print_rows(tping);
  const double ping_frac = tping[2].msgs_per_sec / tping[1].msgs_per_sec;
  bench::row("%12s %.2f of static_direct", "adaptive", ping_frac);

  bench::header("transport — adaptive tuning: mixed phases (nobody's static)");
  print_rows(tmix);
  const double mix_vs_coal = tmix[2].msgs_per_sec / tmix[0].msgs_per_sec;
  const double mix_vs_direct = tmix[2].msgs_per_sec / tmix[1].msgs_per_sec;
  bench::row("%12s %.2fx vs static_coalesce, %.2fx vs static_direct "
             "(%llu adjustments)",
             "adaptive", mix_vs_coal, mix_vs_direct,
             static_cast<unsigned long long>(adaptive_adjusts));

  const char* out = std::getenv("APGAS_BENCH_OUT");
  const std::string path = out != nullptr ? out : "BENCH_coalescing.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"coalescing\",\n  \"flood\": [\n");
  json_rows(f, flood);
  std::fprintf(f, "  ],\n  \"echo\": [\n");
  json_rows(f, echo);
  std::fprintf(f, "  ],\n  \"reliability\": [\n");
  json_rows(f, retx);
  std::fprintf(f, "  ],\n  \"flood_speedup\": %.2f\n}\n", speedup);
  std::fclose(f);
  std::printf("\n[wrote %s]\n", path.c_str());

  const char* out2 = std::getenv("APGAS_BENCH_OUT_AUTOTUNE");
  const std::string path2 = out2 != nullptr ? out2 : "BENCH_autotune.json";
  std::FILE* f2 = std::fopen(path2.c_str(), "w");
  if (f2 == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path2.c_str());
    return 1;
  }
  std::fprintf(f2, "{\n  \"bench\": \"autotune\",\n  \"flood\": [\n");
  json_rows(f2, tflood);
  std::fprintf(f2, "  ],\n  \"pingpong\": [\n");
  json_rows(f2, tping);
  std::fprintf(f2, "  ],\n  \"mixed\": [\n");
  json_rows(f2, tmix);
  std::fprintf(f2,
               "  ],\n"
               "  \"adaptive_fraction_of_best_static_flood\": %.3f,\n"
               "  \"adaptive_fraction_of_best_static_pingpong\": %.3f,\n"
               "  \"mixed_speedup_vs_static_coalesce\": %.3f,\n"
               "  \"mixed_speedup_vs_static_direct\": %.3f,\n"
               "  \"adaptive_adjustments\": %llu\n}\n",
               flood_frac, ping_frac, mix_vs_coal, mix_vs_direct,
               static_cast<unsigned long long>(adaptive_adjusts));
  std::fclose(f2);
  std::printf("[wrote %s]\n", path2.c_str());
  return 0;
}
