// Figure 1 "UTS" (paper §6.2): weak-scaling traversal rate of geometric
// trees (b0=4, r=19), depth growing with the place count as in the paper
// (14 at one place to 22 at 55,680). Also reports the load-balance quality
// (max/mean nodes per place), which is the hardware-independent shape of the
// paper's 98% parallel efficiency claim.
#include <algorithm>
#include <chrono>
#include <deque>

#include "bench_common.h"
#include "kernels/uts/uts.h"
#include "runtime/api.h"

namespace {

// --- socket-mode UTS (frame tasks) ------------------------------------------
//
// The GLB traversal above ships closures, which cannot cross a process
// boundary. Under APGAS_BACKEND=socket (apgas_launch) we run a frame-task
// variant instead: place 0 expands the tree breadth-first until the frontier
// is wide enough, then round-robins each frontier subtree to the places as a
// registered task (asyncAtFrame). Every place accumulates its traversal into
// the "uts.nodes" counter; the launcher's metrics aggregation sums the
// counter across place processes, and the parent verifies the total against
// the sequential count. Tree shape is a pure function of the root seed, so
// the partitioned traversal must count exactly the same nodes.

struct UtsFrontierNode {
  kernels::UtsNodeState state;
  int depth = 0;
};

std::uint64_t uts_count_subtree(const kernels::UtsNodeState& s, int depth,
                                double b0, int max_depth) {
  std::uint64_t nodes = 1;
  const int k = kernels::uts_geo_children(s, depth, b0, max_depth);
  for (int i = 0; i < k; ++i) {
    nodes += uts_count_subtree(s.spawn(static_cast<std::uint32_t>(i)),
                               depth + 1, b0, max_depth);
  }
  return nodes;
}

/// Frame: [state 20B][depth i32][b0 double][max_depth i32]
void uts_subtree_task(x10rt::ByteBuffer& args) {
  kernels::UtsNodeState s{};
  args.get_raw(s.digest.data(), s.digest.size());
  const auto depth = args.get<std::int32_t>();
  const auto b0 = args.get<double>();
  const auto max_depth = args.get<std::int32_t>();
  const std::uint64_t n = uts_count_subtree(s, depth, b0, max_depth);
  apgas::Runtime::get().metrics().counter("uts.nodes").fetch_add(
      n, std::memory_order_relaxed);
}

// Registered pre-main, hence pre-fork: every place process agrees on the id.
const int kUtsSubtreeTask = apgas::register_task_fn(&uts_subtree_task);

int run_socket_uts() {
  using namespace apgas;
  Config cfg;
  bench::observe(cfg);  // APGAS_PLACES/APGAS_BACKEND/chaos/metrics knobs

  kernels::UtsParams p;
  if (const char* d = std::getenv("APGAS_UTS_DEPTH")) {
    const int v = std::atoi(d);
    if (v > 0) p.depth = v;
  }
  p.glb.chunk = 128;
  // APGAS_UTS_GLB=1 runs the *real* lifeline GLB across place processes —
  // bags ride the wire through their Ser hooks (ISSUE 10) — instead of the
  // static frontier partitioning below.
  const char* glb_env = std::getenv("APGAS_UTS_GLB");
  const bool use_glb = glb_env != nullptr && glb_env[0] != '\0' &&
                       glb_env[0] != '0';
  const std::uint64_t expected = kernels::uts_sequential(p).nodes;

  const auto t0 = std::chrono::steady_clock::now();
  Runtime::run(cfg, [p, use_glb] {
    using namespace apgas;
    const int P = num_places();
    if (use_glb) {
      glb::Glb<kernels::UtsBag> balancer(p.glb);
      balancer.run(kernels::UtsBag(p, true));
      std::uint64_t nodes = 0;
      for (int q = 0; q < P; ++q) nodes += balancer.bag_at(q).nodes();
      // One counter bump at place 0 with the gathered total: the parent's
      // metrics aggregation then verifies it like the frontier path's.
      Runtime::get().metrics().counter("uts.nodes").fetch_add(
          nodes, std::memory_order_relaxed);
      return;
    }
    std::deque<UtsFrontierNode> frontier;
    frontier.push_back({kernels::UtsNodeState::root(p.seed), 0});
    std::uint64_t expanded = 0;
    while (!frontier.empty() &&
           frontier.size() < static_cast<std::size_t>(P) * 8) {
      const UtsFrontierNode node = frontier.front();
      frontier.pop_front();
      ++expanded;  // the expanded node itself is counted here at place 0
      const int k =
          kernels::uts_geo_children(node.state, node.depth, p.b0, p.depth);
      for (int i = 0; i < k; ++i) {
        frontier.push_back({node.state.spawn(static_cast<std::uint32_t>(i)),
                            node.depth + 1});
      }
    }
    Runtime::get().metrics().counter("uts.nodes").fetch_add(
        expanded, std::memory_order_relaxed);
    int rr = 0;
    for (const UtsFrontierNode& node : frontier) {
      x10rt::ByteBuffer args;
      args.put_raw(node.state.digest.data(), node.state.digest.size());
      args.put<std::int32_t>(node.depth);
      args.put<double>(p.b0);
      args.put<std::int32_t>(p.depth);
      asyncAtFrame(rr++ % P, kUtsSubtreeTask, std::move(args));
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  // This process is the supervising parent: last_run_metrics() holds the
  // summed per-place counters.
  const auto& m = last_run_metrics();
  const auto it = m.find("uts.nodes");
  const std::uint64_t nodes = it == m.end() ? 0 : it->second;
  const bool verified = nodes == expected;
  bench::header(use_glb
                    ? "UTS (geometric) — socket backend, lifeline GLB across "
                      "place processes"
                    : "UTS (geometric) — socket backend, one process per "
                      "place");
  bench::row("%8s %6s %14s %14s %10s", "places", "depth", "nodes", "Mnodes/s",
             "verified");
  bench::row("%8d %6d %14llu %14.3f %10s", cfg.places, p.depth,
             static_cast<unsigned long long>(nodes),
             static_cast<double>(nodes) / secs / 1e6, verified ? "yes" : "NO");
  if (!verified) {
    std::fprintf(stderr, "bench_uts: socket-mode count %llu != sequential "
                 "%llu\n",
                 static_cast<unsigned long long>(nodes),
                 static_cast<unsigned long long>(expected));
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  using namespace apgas;
  if (Config::from_env().backend == BackendKind::kSocket) {
    return run_socket_uts();
  }
  bench::header("Figure 1 / UTS on geometric trees — weak scaling");
  bench::row("%8s %6s %14s %14s %16s %12s %10s", "places", "depth", "nodes",
             "Mnodes/s", "Mnodes/s/place", "imbalance", "verified");
  for (int places : bench::sweep_places()) {
    Config cfg;
    cfg.places = places;
    cfg.places_per_node = 8;
    Runtime::run(bench::observe(cfg), [&] {
      kernels::UtsParams p;
      // Weak scaling: one extra depth level every 4x places (b0 = 4).
      int extra = 0;
      for (int q = places; q >= 4; q /= 4) ++extra;
      p.depth = 10 + extra;
      p.glb.chunk = 128;

      glb::Glb<kernels::UtsBag> balancer(p.glb);
      const auto t0 = std::chrono::steady_clock::now();
      balancer.run(kernels::UtsBag(p, true));
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();

      std::uint64_t nodes = 0;
      std::uint64_t max_nodes = 0;
      for (int q = 0; q < places; ++q) {
        const auto n = balancer.bag_at(q).nodes();
        nodes += n;
        max_nodes = std::max(max_nodes, n);
      }
      const double mean =
          static_cast<double>(nodes) / static_cast<double>(places);
      const bool verified = kernels::uts_sequential(p).nodes == nodes;
      bench::row("%8d %6d %14llu %14.3f %16.4f %11.2fx %10s", places, p.depth,
                 static_cast<unsigned long long>(nodes), nodes / secs / 1e6,
                 nodes / secs / 1e6 / places,
                 static_cast<double>(max_nodes) / mean,
                 verified ? "yes" : "NO");
    });
    bench::maybe_emit_metrics("uts.geometric.places" + std::to_string(places));
  }
  bench::row("(paper: 10.929 Mnodes/s/core at 1 core -> 10.712 at 55,680"
             " cores, 98%% efficiency; 69.3T nodes in 116s at scale)");

  bench::header("UTS on binomial trees (deep/narrow, §6.1's hard shape)");
  bench::row("%8s %14s %14s %12s %10s", "places", "nodes", "Mnodes/s",
             "imbalance", "verified");
  for (int places : {1, 4, 8}) {
    Config cfg;
    cfg.places = places;
    cfg.places_per_node = 8;
    Runtime::run(bench::observe(cfg), [&] {
      kernels::UtsParams p;
      p.shape = kernels::UtsShape::kBinomial;
      p.bin_root = 2000;
      p.bin_m = 4;
      p.bin_q = 0.246;  // expected size 2000/(1-mq) ~= 120k nodes
      p.glb.chunk = 128;
      glb::Glb<kernels::UtsBag> balancer(p.glb);
      const auto t0 = std::chrono::steady_clock::now();
      balancer.run(kernels::UtsBag(p, true));
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      std::uint64_t nodes = 0;
      std::uint64_t max_nodes = 0;
      for (int q = 0; q < places; ++q) {
        nodes += balancer.bag_at(q).nodes();
        max_nodes = std::max(max_nodes, balancer.bag_at(q).nodes());
      }
      const bool verified = kernels::uts_sequential(p).nodes == nodes;
      bench::row("%8d %14llu %14.3f %11.2fx %10s", places,
                 static_cast<unsigned long long>(nodes), nodes / secs / 1e6,
                 static_cast<double>(max_nodes) * places /
                     static_cast<double>(nodes),
                 verified ? "yes" : "NO");
    });
    bench::maybe_emit_metrics("uts.binomial.places" + std::to_string(places));
  }
  return 0;
}
