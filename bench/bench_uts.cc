// Figure 1 "UTS" (paper §6.2): weak-scaling traversal rate of geometric
// trees (b0=4, r=19), depth growing with the place count as in the paper
// (14 at one place to 22 at 55,680). Also reports the load-balance quality
// (max/mean nodes per place), which is the hardware-independent shape of the
// paper's 98% parallel efficiency claim.
#include <algorithm>

#include "bench_common.h"
#include "kernels/uts/uts.h"
#include "runtime/api.h"

int main() {
  using namespace apgas;
  bench::header("Figure 1 / UTS on geometric trees — weak scaling");
  bench::row("%8s %6s %14s %14s %16s %12s %10s", "places", "depth", "nodes",
             "Mnodes/s", "Mnodes/s/place", "imbalance", "verified");
  for (int places : bench::sweep_places()) {
    Config cfg;
    cfg.places = places;
    cfg.places_per_node = 8;
    Runtime::run(bench::observe(cfg), [&] {
      kernels::UtsParams p;
      // Weak scaling: one extra depth level every 4x places (b0 = 4).
      int extra = 0;
      for (int q = places; q >= 4; q /= 4) ++extra;
      p.depth = 10 + extra;
      p.glb.chunk = 128;

      glb::Glb<kernels::UtsBag> balancer(p.glb);
      const auto t0 = std::chrono::steady_clock::now();
      balancer.run(kernels::UtsBag(p, true));
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();

      std::uint64_t nodes = 0;
      std::uint64_t max_nodes = 0;
      for (int q = 0; q < places; ++q) {
        const auto n = balancer.bag_at(q).nodes();
        nodes += n;
        max_nodes = std::max(max_nodes, n);
      }
      const double mean =
          static_cast<double>(nodes) / static_cast<double>(places);
      const bool verified = kernels::uts_sequential(p).nodes == nodes;
      bench::row("%8d %6d %14llu %14.3f %16.4f %11.2fx %10s", places, p.depth,
                 static_cast<unsigned long long>(nodes), nodes / secs / 1e6,
                 nodes / secs / 1e6 / places,
                 static_cast<double>(max_nodes) / mean,
                 verified ? "yes" : "NO");
    });
    bench::maybe_emit_metrics("uts.geometric.places" + std::to_string(places));
  }
  bench::row("(paper: 10.929 Mnodes/s/core at 1 core -> 10.712 at 55,680"
             " cores, 98%% efficiency; 69.3T nodes in 116s at scale)");

  bench::header("UTS on binomial trees (deep/narrow, §6.1's hard shape)");
  bench::row("%8s %14s %14s %12s %10s", "places", "nodes", "Mnodes/s",
             "imbalance", "verified");
  for (int places : {1, 4, 8}) {
    Config cfg;
    cfg.places = places;
    cfg.places_per_node = 8;
    Runtime::run(bench::observe(cfg), [&] {
      kernels::UtsParams p;
      p.shape = kernels::UtsShape::kBinomial;
      p.bin_root = 2000;
      p.bin_m = 4;
      p.bin_q = 0.246;  // expected size 2000/(1-mq) ~= 120k nodes
      p.glb.chunk = 128;
      glb::Glb<kernels::UtsBag> balancer(p.glb);
      const auto t0 = std::chrono::steady_clock::now();
      balancer.run(kernels::UtsBag(p, true));
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      std::uint64_t nodes = 0;
      std::uint64_t max_nodes = 0;
      for (int q = 0; q < places; ++q) {
        nodes += balancer.bag_at(q).nodes();
        max_nodes = std::max(max_nodes, balancer.bag_at(q).nodes());
      }
      const bool verified = kernels::uts_sequential(p).nodes == nodes;
      bench::row("%8d %14llu %14.3f %11.2fx %10s", places,
                 static_cast<unsigned long long>(nodes), nodes / secs / 1e6,
                 static_cast<double>(max_nodes) * places /
                     static_cast<double>(nodes),
                 verified ? "yes" : "NO");
    });
    bench::maybe_emit_metrics("uts.binomial.places" + std::to_string(places));
  }
  return 0;
}
