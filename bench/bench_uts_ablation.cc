// §6.2 ablation: the paper's revised UTS scheduler vs the original [35]
// algorithm ("achieves its peak performance with a few thousand cores and
// slows to a crawl beyond that due to overwhelming termination detection
// overheads and network contention"). Legacy mode steals under the root
// finish with the default protocol and unbounded victim lists; new mode uses
// X10RT-level steal round trips, FINISH_DENSE, bounded victims, and interval
// work fragments.
#include "bench_common.h"
#include "kernels/uts/uts.h"
#include "runtime/api.h"

int main() {
  using namespace apgas;
  bench::header("§6.2 — UTS: revised scheduler vs legacy [35]");
  bench::row("%8s %10s %12s %14s %14s %14s", "places", "variant", "time (s)",
             "Mnodes/s", "ctrl+task msgs", "steal msgs");
  for (int places : bench::sweep_places(16)) {
    for (bool legacy : {false, true}) {
      Config cfg;
      cfg.places = places;
      cfg.places_per_node = 8;
      Runtime::run(cfg, [&] {
        auto& tr = Runtime::get().transport();
        kernels::UtsParams p;
        p.depth = 11;
        p.glb.legacy = legacy;
        p.glb.chunk = 256;
        tr.reset_stats();
        auto r = kernels::uts_run(p);
        const std::uint64_t finish_traffic =
            tr.count(x10rt::MsgType::kControl) +
            tr.count(x10rt::MsgType::kTask);
        bench::row("%8d %10s %12.3f %14.3f %14llu %14llu", places,
                   legacy ? "legacy" : "new", r.seconds, r.mnodes_per_sec,
                   static_cast<unsigned long long>(finish_traffic),
                   static_cast<unsigned long long>(
                       tr.count(x10rt::MsgType::kSteal)));
      });
    }
  }
  bench::row("(the finish-visible traffic is what overwhelmed [35] at scale;"
             " the new scheduler keeps the root finish oblivious to random"
             " steals)");
  return 0;
}
