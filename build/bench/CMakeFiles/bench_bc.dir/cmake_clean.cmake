file(REMOVE_RECURSE
  "CMakeFiles/bench_bc.dir/bench_bc.cc.o"
  "CMakeFiles/bench_bc.dir/bench_bc.cc.o.d"
  "bench_bc"
  "bench_bc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
