# Empty dependencies file for bench_bc.
# This may be replaced when dependencies are built.
