file(REMOVE_RECURSE
  "CMakeFiles/bench_congruent.dir/bench_congruent.cc.o"
  "CMakeFiles/bench_congruent.dir/bench_congruent.cc.o.d"
  "bench_congruent"
  "bench_congruent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_congruent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
