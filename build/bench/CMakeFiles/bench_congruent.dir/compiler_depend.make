# Empty compiler generated dependencies file for bench_congruent.
# This may be replaced when dependencies are built.
