file(REMOVE_RECURSE
  "CMakeFiles/bench_finish.dir/bench_finish.cc.o"
  "CMakeFiles/bench_finish.dir/bench_finish.cc.o.d"
  "bench_finish"
  "bench_finish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_finish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
