# Empty compiler generated dependencies file for bench_finish.
# This may be replaced when dependencies are built.
