file(REMOVE_RECURSE
  "CMakeFiles/bench_hpl.dir/bench_hpl.cc.o"
  "CMakeFiles/bench_hpl.dir/bench_hpl.cc.o.d"
  "bench_hpl"
  "bench_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
