# Empty dependencies file for bench_hpl.
# This may be replaced when dependencies are built.
