file(REMOVE_RECURSE
  "CMakeFiles/bench_randomaccess.dir/bench_randomaccess.cc.o"
  "CMakeFiles/bench_randomaccess.dir/bench_randomaccess.cc.o.d"
  "bench_randomaccess"
  "bench_randomaccess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_randomaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
