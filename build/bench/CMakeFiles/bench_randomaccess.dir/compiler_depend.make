# Empty compiler generated dependencies file for bench_randomaccess.
# This may be replaced when dependencies are built.
