file(REMOVE_RECURSE
  "CMakeFiles/bench_sw.dir/bench_sw.cc.o"
  "CMakeFiles/bench_sw.dir/bench_sw.cc.o.d"
  "bench_sw"
  "bench_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
