# Empty dependencies file for bench_sw.
# This may be replaced when dependencies are built.
