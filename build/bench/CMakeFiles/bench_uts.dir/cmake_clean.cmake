file(REMOVE_RECURSE
  "CMakeFiles/bench_uts.dir/bench_uts.cc.o"
  "CMakeFiles/bench_uts.dir/bench_uts.cc.o.d"
  "bench_uts"
  "bench_uts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
