# Empty compiler generated dependencies file for bench_uts.
# This may be replaced when dependencies are built.
