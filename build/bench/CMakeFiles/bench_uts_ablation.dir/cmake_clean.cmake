file(REMOVE_RECURSE
  "CMakeFiles/bench_uts_ablation.dir/bench_uts_ablation.cc.o"
  "CMakeFiles/bench_uts_ablation.dir/bench_uts_ablation.cc.o.d"
  "bench_uts_ablation"
  "bench_uts_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uts_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
