file(REMOVE_RECURSE
  "CMakeFiles/finish_advisor.dir/finish_advisor.cpp.o"
  "CMakeFiles/finish_advisor.dir/finish_advisor.cpp.o.d"
  "finish_advisor"
  "finish_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finish_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
