# Empty dependencies file for finish_advisor.
# This may be replaced when dependencies are built.
