file(REMOVE_RECURSE
  "CMakeFiles/histogram_gups.dir/histogram_gups.cpp.o"
  "CMakeFiles/histogram_gups.dir/histogram_gups.cpp.o.d"
  "histogram_gups"
  "histogram_gups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_gups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
