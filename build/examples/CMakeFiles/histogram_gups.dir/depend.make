# Empty dependencies file for histogram_gups.
# This may be replaced when dependencies are built.
