file(REMOVE_RECURSE
  "CMakeFiles/nqueens_glb.dir/nqueens_glb.cpp.o"
  "CMakeFiles/nqueens_glb.dir/nqueens_glb.cpp.o.d"
  "nqueens_glb"
  "nqueens_glb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nqueens_glb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
