# Empty compiler generated dependencies file for nqueens_glb.
# This may be replaced when dependencies are built.
