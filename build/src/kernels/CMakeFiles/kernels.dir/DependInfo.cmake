
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bc/bc.cc" "src/kernels/CMakeFiles/kernels.dir/bc/bc.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/bc/bc.cc.o.d"
  "/root/repo/src/kernels/fft/fft.cc" "src/kernels/CMakeFiles/kernels.dir/fft/fft.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/fft/fft.cc.o.d"
  "/root/repo/src/kernels/hpl/hpl.cc" "src/kernels/CMakeFiles/kernels.dir/hpl/hpl.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/hpl/hpl.cc.o.d"
  "/root/repo/src/kernels/kmeans/kmeans.cc" "src/kernels/CMakeFiles/kernels.dir/kmeans/kmeans.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/kmeans/kmeans.cc.o.d"
  "/root/repo/src/kernels/ra/randomaccess.cc" "src/kernels/CMakeFiles/kernels.dir/ra/randomaccess.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/ra/randomaccess.cc.o.d"
  "/root/repo/src/kernels/stream/stream.cc" "src/kernels/CMakeFiles/kernels.dir/stream/stream.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/stream/stream.cc.o.d"
  "/root/repo/src/kernels/sw/smith_waterman.cc" "src/kernels/CMakeFiles/kernels.dir/sw/smith_waterman.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/sw/smith_waterman.cc.o.d"
  "/root/repo/src/kernels/uts/uts.cc" "src/kernels/CMakeFiles/kernels.dir/uts/uts.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/uts/uts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/apgas_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/kernels_util.dir/DependInfo.cmake"
  "/root/repo/build/src/x10rt/CMakeFiles/x10rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
