file(REMOVE_RECURSE
  "CMakeFiles/kernels.dir/bc/bc.cc.o"
  "CMakeFiles/kernels.dir/bc/bc.cc.o.d"
  "CMakeFiles/kernels.dir/fft/fft.cc.o"
  "CMakeFiles/kernels.dir/fft/fft.cc.o.d"
  "CMakeFiles/kernels.dir/hpl/hpl.cc.o"
  "CMakeFiles/kernels.dir/hpl/hpl.cc.o.d"
  "CMakeFiles/kernels.dir/kmeans/kmeans.cc.o"
  "CMakeFiles/kernels.dir/kmeans/kmeans.cc.o.d"
  "CMakeFiles/kernels.dir/ra/randomaccess.cc.o"
  "CMakeFiles/kernels.dir/ra/randomaccess.cc.o.d"
  "CMakeFiles/kernels.dir/stream/stream.cc.o"
  "CMakeFiles/kernels.dir/stream/stream.cc.o.d"
  "CMakeFiles/kernels.dir/sw/smith_waterman.cc.o"
  "CMakeFiles/kernels.dir/sw/smith_waterman.cc.o.d"
  "CMakeFiles/kernels.dir/uts/uts.cc.o"
  "CMakeFiles/kernels.dir/uts/uts.cc.o.d"
  "libkernels.a"
  "libkernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
