
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/util/dgemm.cc" "src/kernels/CMakeFiles/kernels_util.dir/util/dgemm.cc.o" "gcc" "src/kernels/CMakeFiles/kernels_util.dir/util/dgemm.cc.o.d"
  "/root/repo/src/kernels/util/fft1d.cc" "src/kernels/CMakeFiles/kernels_util.dir/util/fft1d.cc.o" "gcc" "src/kernels/CMakeFiles/kernels_util.dir/util/fft1d.cc.o.d"
  "/root/repo/src/kernels/util/hpcc_rng.cc" "src/kernels/CMakeFiles/kernels_util.dir/util/hpcc_rng.cc.o" "gcc" "src/kernels/CMakeFiles/kernels_util.dir/util/hpcc_rng.cc.o.d"
  "/root/repo/src/kernels/util/rmat.cc" "src/kernels/CMakeFiles/kernels_util.dir/util/rmat.cc.o" "gcc" "src/kernels/CMakeFiles/kernels_util.dir/util/rmat.cc.o.d"
  "/root/repo/src/kernels/util/sha1.cc" "src/kernels/CMakeFiles/kernels_util.dir/util/sha1.cc.o" "gcc" "src/kernels/CMakeFiles/kernels_util.dir/util/sha1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
