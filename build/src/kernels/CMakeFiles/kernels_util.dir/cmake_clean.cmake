file(REMOVE_RECURSE
  "CMakeFiles/kernels_util.dir/util/dgemm.cc.o"
  "CMakeFiles/kernels_util.dir/util/dgemm.cc.o.d"
  "CMakeFiles/kernels_util.dir/util/fft1d.cc.o"
  "CMakeFiles/kernels_util.dir/util/fft1d.cc.o.d"
  "CMakeFiles/kernels_util.dir/util/hpcc_rng.cc.o"
  "CMakeFiles/kernels_util.dir/util/hpcc_rng.cc.o.d"
  "CMakeFiles/kernels_util.dir/util/rmat.cc.o"
  "CMakeFiles/kernels_util.dir/util/rmat.cc.o.d"
  "CMakeFiles/kernels_util.dir/util/sha1.cc.o"
  "CMakeFiles/kernels_util.dir/util/sha1.cc.o.d"
  "libkernels_util.a"
  "libkernels_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
