file(REMOVE_RECURSE
  "libkernels_util.a"
)
