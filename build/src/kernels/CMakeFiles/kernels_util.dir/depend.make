# Empty dependencies file for kernels_util.
# This may be replaced when dependencies are built.
