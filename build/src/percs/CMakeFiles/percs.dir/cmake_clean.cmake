file(REMOVE_RECURSE
  "CMakeFiles/percs.dir/bandwidth.cc.o"
  "CMakeFiles/percs.dir/bandwidth.cc.o.d"
  "CMakeFiles/percs.dir/topology.cc.o"
  "CMakeFiles/percs.dir/topology.cc.o.d"
  "libpercs.a"
  "libpercs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/percs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
