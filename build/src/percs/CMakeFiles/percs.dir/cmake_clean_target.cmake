file(REMOVE_RECURSE
  "libpercs.a"
)
