# Empty compiler generated dependencies file for percs.
# This may be replaced when dependencies are built.
