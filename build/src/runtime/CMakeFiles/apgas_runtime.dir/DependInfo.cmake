
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/clock.cc" "src/runtime/CMakeFiles/apgas_runtime.dir/clock.cc.o" "gcc" "src/runtime/CMakeFiles/apgas_runtime.dir/clock.cc.o.d"
  "/root/repo/src/runtime/congruent.cc" "src/runtime/CMakeFiles/apgas_runtime.dir/congruent.cc.o" "gcc" "src/runtime/CMakeFiles/apgas_runtime.dir/congruent.cc.o.d"
  "/root/repo/src/runtime/finish.cc" "src/runtime/CMakeFiles/apgas_runtime.dir/finish.cc.o" "gcc" "src/runtime/CMakeFiles/apgas_runtime.dir/finish.cc.o.d"
  "/root/repo/src/runtime/monitor.cc" "src/runtime/CMakeFiles/apgas_runtime.dir/monitor.cc.o" "gcc" "src/runtime/CMakeFiles/apgas_runtime.dir/monitor.cc.o.d"
  "/root/repo/src/runtime/place_group.cc" "src/runtime/CMakeFiles/apgas_runtime.dir/place_group.cc.o" "gcc" "src/runtime/CMakeFiles/apgas_runtime.dir/place_group.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/runtime/CMakeFiles/apgas_runtime.dir/runtime.cc.o" "gcc" "src/runtime/CMakeFiles/apgas_runtime.dir/runtime.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/runtime/CMakeFiles/apgas_runtime.dir/scheduler.cc.o" "gcc" "src/runtime/CMakeFiles/apgas_runtime.dir/scheduler.cc.o.d"
  "/root/repo/src/runtime/team.cc" "src/runtime/CMakeFiles/apgas_runtime.dir/team.cc.o" "gcc" "src/runtime/CMakeFiles/apgas_runtime.dir/team.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/x10rt/CMakeFiles/x10rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
