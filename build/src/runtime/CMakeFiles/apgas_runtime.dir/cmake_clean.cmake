file(REMOVE_RECURSE
  "CMakeFiles/apgas_runtime.dir/clock.cc.o"
  "CMakeFiles/apgas_runtime.dir/clock.cc.o.d"
  "CMakeFiles/apgas_runtime.dir/congruent.cc.o"
  "CMakeFiles/apgas_runtime.dir/congruent.cc.o.d"
  "CMakeFiles/apgas_runtime.dir/finish.cc.o"
  "CMakeFiles/apgas_runtime.dir/finish.cc.o.d"
  "CMakeFiles/apgas_runtime.dir/monitor.cc.o"
  "CMakeFiles/apgas_runtime.dir/monitor.cc.o.d"
  "CMakeFiles/apgas_runtime.dir/place_group.cc.o"
  "CMakeFiles/apgas_runtime.dir/place_group.cc.o.d"
  "CMakeFiles/apgas_runtime.dir/runtime.cc.o"
  "CMakeFiles/apgas_runtime.dir/runtime.cc.o.d"
  "CMakeFiles/apgas_runtime.dir/scheduler.cc.o"
  "CMakeFiles/apgas_runtime.dir/scheduler.cc.o.d"
  "CMakeFiles/apgas_runtime.dir/team.cc.o"
  "CMakeFiles/apgas_runtime.dir/team.cc.o.d"
  "libapgas_runtime.a"
  "libapgas_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apgas_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
