file(REMOVE_RECURSE
  "libapgas_runtime.a"
)
