# Empty dependencies file for apgas_runtime.
# This may be replaced when dependencies are built.
