file(REMOVE_RECURSE
  "CMakeFiles/x10rt.dir/transport.cc.o"
  "CMakeFiles/x10rt.dir/transport.cc.o.d"
  "libx10rt.a"
  "libx10rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x10rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
