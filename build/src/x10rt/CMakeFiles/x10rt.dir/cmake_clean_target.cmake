file(REMOVE_RECURSE
  "libx10rt.a"
)
