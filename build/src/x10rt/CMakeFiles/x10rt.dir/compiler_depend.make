# Empty compiler generated dependencies file for x10rt.
# This may be replaced when dependencies are built.
