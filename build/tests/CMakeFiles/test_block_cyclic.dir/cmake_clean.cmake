file(REMOVE_RECURSE
  "CMakeFiles/test_block_cyclic.dir/test_block_cyclic.cc.o"
  "CMakeFiles/test_block_cyclic.dir/test_block_cyclic.cc.o.d"
  "test_block_cyclic"
  "test_block_cyclic.pdb"
  "test_block_cyclic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_cyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
