file(REMOVE_RECURSE
  "CMakeFiles/test_finish_protocols.dir/test_finish_protocols.cc.o"
  "CMakeFiles/test_finish_protocols.dir/test_finish_protocols.cc.o.d"
  "test_finish_protocols"
  "test_finish_protocols.pdb"
  "test_finish_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_finish_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
