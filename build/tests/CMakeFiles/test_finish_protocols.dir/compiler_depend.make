# Empty compiler generated dependencies file for test_finish_protocols.
# This may be replaced when dependencies are built.
