file(REMOVE_RECURSE
  "CMakeFiles/test_glb.dir/test_glb.cc.o"
  "CMakeFiles/test_glb.dir/test_glb.cc.o.d"
  "test_glb"
  "test_glb.pdb"
  "test_glb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
