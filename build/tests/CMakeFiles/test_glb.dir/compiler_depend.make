# Empty compiler generated dependencies file for test_glb.
# This may be replaced when dependencies are built.
