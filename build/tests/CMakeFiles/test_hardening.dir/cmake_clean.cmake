file(REMOVE_RECURSE
  "CMakeFiles/test_hardening.dir/test_hardening.cc.o"
  "CMakeFiles/test_hardening.dir/test_hardening.cc.o.d"
  "test_hardening"
  "test_hardening.pdb"
  "test_hardening[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
