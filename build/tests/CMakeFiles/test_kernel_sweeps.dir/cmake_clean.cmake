file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_sweeps.dir/test_kernel_sweeps.cc.o"
  "CMakeFiles/test_kernel_sweeps.dir/test_kernel_sweeps.cc.o.d"
  "test_kernel_sweeps"
  "test_kernel_sweeps.pdb"
  "test_kernel_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
