# Empty dependencies file for test_kernel_sweeps.
# This may be replaced when dependencies are built.
