file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_utils.dir/test_kernel_utils.cc.o"
  "CMakeFiles/test_kernel_utils.dir/test_kernel_utils.cc.o.d"
  "test_kernel_utils"
  "test_kernel_utils.pdb"
  "test_kernel_utils[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
