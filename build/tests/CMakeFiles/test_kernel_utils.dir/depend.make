# Empty dependencies file for test_kernel_utils.
# This may be replaced when dependencies are built.
