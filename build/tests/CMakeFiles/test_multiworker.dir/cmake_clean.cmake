file(REMOVE_RECURSE
  "CMakeFiles/test_multiworker.dir/test_multiworker.cc.o"
  "CMakeFiles/test_multiworker.dir/test_multiworker.cc.o.d"
  "test_multiworker"
  "test_multiworker.pdb"
  "test_multiworker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiworker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
