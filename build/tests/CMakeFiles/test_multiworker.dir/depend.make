# Empty dependencies file for test_multiworker.
# This may be replaced when dependencies are built.
