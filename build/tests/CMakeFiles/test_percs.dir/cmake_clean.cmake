file(REMOVE_RECURSE
  "CMakeFiles/test_percs.dir/test_percs.cc.o"
  "CMakeFiles/test_percs.dir/test_percs.cc.o.d"
  "test_percs"
  "test_percs.pdb"
  "test_percs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_percs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
