# Empty dependencies file for test_percs.
# This may be replaced when dependencies are built.
