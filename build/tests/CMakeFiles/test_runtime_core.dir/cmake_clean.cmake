file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_core.dir/test_runtime_core.cc.o"
  "CMakeFiles/test_runtime_core.dir/test_runtime_core.cc.o.d"
  "test_runtime_core"
  "test_runtime_core.pdb"
  "test_runtime_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
