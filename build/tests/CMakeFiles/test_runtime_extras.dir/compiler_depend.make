# Empty compiler generated dependencies file for test_runtime_extras.
# This may be replaced when dependencies are built.
