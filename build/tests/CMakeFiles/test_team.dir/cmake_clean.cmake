file(REMOVE_RECURSE
  "CMakeFiles/test_team.dir/test_team.cc.o"
  "CMakeFiles/test_team.dir/test_team.cc.o.d"
  "test_team"
  "test_team.pdb"
  "test_team[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_team.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
