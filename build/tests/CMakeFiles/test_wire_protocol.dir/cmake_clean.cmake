file(REMOVE_RECURSE
  "CMakeFiles/test_wire_protocol.dir/test_wire_protocol.cc.o"
  "CMakeFiles/test_wire_protocol.dir/test_wire_protocol.cc.o.d"
  "test_wire_protocol"
  "test_wire_protocol.pdb"
  "test_wire_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
