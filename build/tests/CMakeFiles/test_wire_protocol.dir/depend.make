# Empty dependencies file for test_wire_protocol.
# This may be replaced when dependencies are built.
