# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_percs[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_core[1]_include.cmake")
include("/root/repo/build/tests/test_finish_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_team[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_extras[1]_include.cmake")
include("/root/repo/build/tests/test_glb[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_utils[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_block_cyclic[1]_include.cmake")
include("/root/repo/build/tests/test_hardening[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_wire_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_multiworker[1]_include.cmake")
