// Demo of §3.1 "implementation selection": profile a finish once, see which
// specialized termination-detection protocol its pattern matches, then
// annotate the hot path with that pragma.
//
//   build/examples/finish_advisor [places]
#include <cstdio>
#include <cstdlib>

#include "runtime/api.h"

using namespace apgas;

namespace {

const char* pragma_macro_name(Pragma p) {
  switch (p) {
    case Pragma::kLocal: return "FINISH_LOCAL";
    case Pragma::kAsync: return "FINISH_ASYNC";
    case Pragma::kHere: return "FINISH_HERE";
    case Pragma::kSpmd: return "FINISH_SPMD";
    case Pragma::kDense: return "FINISH_DENSE";
    default: return "DEFAULT";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.places = argc > 1 ? std::atoi(argv[1]) : 6;
  Runtime::run(cfg, [] {
    const int h = here();

    struct Case {
      const char* what;
      std::function<void()> body;
    };
    const Case cases[] = {
        {"local fan-out (finish { async S; ... })",
         [] {
           for (int i = 0; i < 8; ++i) async([] {});
         }},
        {"single remote activity (finish at(p) async S)",
         [] { asyncAt(1, [] {}); }},
        {"round trip (finish at(p) async { at(h) async S2 })",
         [h] {
           asyncAt(1, [h] { asyncAt(h, [] {}); });
         }},
        {"one activity per place, nested work under nested finishes",
         [] {
           for (int p = 1; p < num_places(); ++p) {
             asyncAt(p, [] {
               finish(Pragma::kLocal, [] { async([] {}); });
             });
           }
         }},
        {"all-to-all active messages",
         [] {
           for (int p = 0; p < num_places(); ++p) {
             asyncAt(p, [] {
               for (int q = 0; q < num_places(); ++q) asyncAt(q, [] {});
             });
           }
         }},
    };

    std::printf("%-60s -> %s\n", "pattern", "recommended pragma");
    for (const auto& c : cases) {
      const Pragma rec = profile_finish(c.body);
      std::printf("%-60s -> %s\n", c.what, pragma_macro_name(rec));
    }
  });
  return 0;
}
