// 1D heat-diffusion stencil: the SPMD + halo-exchange pattern (paper §2.2's
// clocked loops and asyncCopy overlap, §3.3's RDMA on congruent memory).
//
//   build/examples/heat_stencil [places] [cells-per-place] [steps]
//
// Each place owns a slab of the rod plus two ghost cells. Every step, ghost
// cells are exchanged with the neighbours via asyncCopy on the congruent
// arena (the RDMA path) under one finish — communication overlaps with the
// interior update — and a Team barrier aligns the iteration, exactly the
// bulk-synchronous shape the paper's regular kernels use.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runtime/api.h"
#include "runtime/dist_rail.h"
#include "runtime/place_group.h"
#include "runtime/team.h"

using namespace apgas;

int main(int argc, char** argv) {
  Config cfg;
  cfg.places = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t cells = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4096;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 200;
  cfg.congruent_bytes = 2 * (cells + 2) * sizeof(double) + (1u << 20);

  Runtime::run(cfg, [cells, steps] {
    auto& space = Runtime::get().congruent();
    // Two buffers per place: current and next, each with 2 ghost cells.
    auto cur = space.alloc<double>(cells + 2);
    auto nxt = space.alloc<double>(cells + 2);

    double checksum = 0.0;
    std::mutex mu;
    PlaceGroup::world().broadcast([&, cur, nxt] {
      Team team = Team::world();
      const int left = here() - 1;
      const int right = here() + 1;
      double* u = space.at_place(here(), cur);
      double* v = space.at_place(here(), nxt);
      // Initial condition: a hot spike at the global midpoint.
      for (std::size_t i = 0; i < cells + 2; ++i) u[i] = 0.0;
      if (here() == num_places() / 2) u[cells / 2 + 1] = 1000.0;
      team.barrier();

      auto cur_h = cur;
      auto nxt_h = nxt;
      for (int s = 0; s < steps; ++s) {
        // Halo exchange: write our boundary cells into the neighbours'
        // ghost slots (one-sided puts), overlapping the interior update.
        finish([&] {
          if (left >= 0) {
            async_copy(u + 1, global_rail(cur_h, left), cells + 1, 1);
          }
          if (right < num_places()) {
            async_copy(u + cells, global_rail(cur_h, right), 0, 1);
          }
          // Interior update needs no ghost cells: overlap it with the puts.
          for (std::size_t i = 2; i <= cells - 1; ++i) {
            v[i] = u[i] + 0.25 * (u[i - 1] - 2 * u[i] + u[i + 1]);
          }
        });
        team.barrier();  // ghosts delivered everywhere
        // Boundary cells use the freshly received ghosts.
        v[1] = u[1] + 0.25 * (u[0] - 2 * u[1] + u[2]);
        v[cells] = u[cells] + 0.25 * (u[cells - 1] - 2 * u[cells] + u[cells + 1]);
        if (here() == 0) v[1] = v[2];                    // insulated ends
        if (here() == num_places() - 1) v[cells] = v[cells - 1];
        team.barrier();  // everyone done reading u
        std::swap(u, v);
        std::swap(cur_h, nxt_h);
      }

      double local = 0.0;
      for (std::size_t i = 1; i <= cells; ++i) local += u[i];
      team.allreduce(&local, 1, ReduceOp::kSum);
      if (here() == 0) {
        std::scoped_lock lock(mu);
        checksum = local;
      }
    });

    // Diffusion with insulated ends conserves total heat.
    std::printf("total heat after %d steps: %.6f (expected 1000, %s)\n",
                steps, checksum,
                std::abs(checksum - 1000.0) < 1e-6 ? "conserved" : "WRONG");
  });
  return 0;
}
