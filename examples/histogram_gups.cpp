// Distributed histogram via remote atomic updates — the RandomAccess /
// "GUPS" pattern (paper §3.3, §5) applied to a Big-Data-ish job: every place
// scans its shard of records and fires one-sided atomic increments at
// whichever place owns the bucket. No receive-side code exists at all.
//
//   build/examples/histogram_gups [places] [records-per-place]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "runtime/api.h"
#include "runtime/dist_rail.h"
#include "runtime/place_group.h"
#include "runtime/team.h"

using namespace apgas;

namespace {
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.places = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t records =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

  Runtime::run(cfg, [records] {
    constexpr std::uint64_t kBucketsPerPlace = 64;
    auto& space = Runtime::get().congruent();
    auto hist = space.alloc<std::uint64_t>(kBucketsPerPlace);
    const std::uint64_t total_buckets = kBucketsPerPlace * num_places();

    PlaceGroup::world().broadcast([&, hist] {
      auto* mine = space.at_place(here(), hist);
      for (std::uint64_t i = 0; i < kBucketsPerPlace; ++i) mine[i] = 0;
      Team team = Team::world();
      team.barrier();

      // Scan this place's shard; each record lands in a pseudo-random global
      // bucket owned by some place — one remote_add per record, no
      // destination-side activity.
      std::vector<GlobalRail<std::uint64_t>> rails;
      for (int q = 0; q < num_places(); ++q) {
        rails.push_back(global_rail(hist, q));
      }
      for (std::uint64_t i = 0; i < records; ++i) {
        const std::uint64_t key =
            mix(static_cast<std::uint64_t>(here()) * records + i);
        const std::uint64_t bucket = key % total_buckets;
        remote_add(rails[static_cast<std::size_t>(bucket / kBucketsPerPlace)],
                   bucket % kBucketsPerPlace, 1);
      }
      team.barrier();
    });

    // All updates are atomic and complete: the counts must sum exactly.
    std::uint64_t sum = 0;
    std::uint64_t max_bucket = 0;
    for (int q = 0; q < num_places(); ++q) {
      const auto* h = space.at_place(q, hist);
      for (std::uint64_t i = 0; i < kBucketsPerPlace; ++i) {
        sum += h[i];
        max_bucket = std::max(max_bucket, h[i]);
      }
    }
    const std::uint64_t expected = records * num_places();
    std::printf("histogram: %" PRIu64 " records binned into %" PRIu64
                " buckets, hottest bucket %" PRIu64 " (%s)\n",
                sum, total_buckets, max_bucket,
                sum == expected ? "exact" : "LOST UPDATES");
  });
  return 0;
}
