// N-Queens over the lifeline GLB (paper §3.4): a classic irregular tree
// search — exactly the workload family the paper's UTS chapter motivates —
// balanced across places with no static partitioning at all.
//
//   build/examples/nqueens_glb [places] [board]
//
// The work bag holds partially-placed boards; thieves take fragments of the
// frontier. Every place reports how many solutions it personally counted —
// the spread shows the balancer at work.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "glb/glb.h"
#include "runtime/api.h"

using namespace apgas;

namespace {

/// A partial placement: queens in the first `row` rows at columns cols[i].
struct Board {
  std::uint32_t row = 0;
  std::uint32_t cols = 0;   // bitmask of used columns
  std::uint32_t diag1 = 0;  // "/" diagonals
  std::uint32_t diag2 = 0;  // "\" diagonals
};

class NQueensBag {
 public:
  NQueensBag() = default;
  NQueensBag(int n, bool with_root) : n_(n) {
    if (with_root) frontier_.push_back(Board{});
  }

  std::size_t process(std::size_t budget) {
    std::size_t done = 0;
    while (done < budget && !frontier_.empty()) {
      const Board b = frontier_.back();
      frontier_.pop_back();
      ++done;
      if (b.row == static_cast<std::uint32_t>(n_)) {
        ++solutions_;
        continue;
      }
      const std::uint32_t mask = (1u << n_) - 1;
      std::uint32_t free = mask & ~(b.cols | b.diag1 | b.diag2);
      while (free != 0) {
        const std::uint32_t bit = free & (0u - free);
        free ^= bit;
        frontier_.push_back(Board{b.row + 1, b.cols | bit,
                                  ((b.diag1 | bit) << 1) & mask,
                                  (b.diag2 | bit) >> 1});
      }
    }
    return done;
  }

  NQueensBag split() {
    NQueensBag stolen;
    stolen.n_ = n_;
    if (frontier_.size() < 2) return stolen;
    // Steal every other frame: mixes shallow (big) and deep (small) subtrees.
    std::vector<Board> keep;
    keep.reserve(frontier_.size());
    for (std::size_t i = 0; i < frontier_.size(); ++i) {
      (i % 2 == 0 ? keep : stolen.frontier_).push_back(frontier_[i]);
    }
    frontier_.swap(keep);
    return stolen;
  }

  void merge(NQueensBag&& other) {
    if (n_ == 0) n_ = other.n_;
    frontier_.insert(frontier_.end(), other.frontier_.begin(),
                     other.frontier_.end());
    solutions_ += other.solutions_;
    other.frontier_.clear();
    other.solutions_ = 0;
  }

  [[nodiscard]] bool empty() const { return frontier_.empty(); }
  [[nodiscard]] std::size_t size() const { return frontier_.size(); }
  [[nodiscard]] long solutions() const { return solutions_; }

  // Ser hooks (x10rt::Ser) so the bag can ride GLB frames.
  void ser_put(x10rt::ByteBuffer& b) const {
    b.put(n_);
    b.put_vector(frontier_);
    b.put(solutions_);
  }
  static NQueensBag ser_get(x10rt::ByteBuffer& b) {
    NQueensBag bag;
    bag.n_ = b.get<int>();
    bag.frontier_ = b.get_vector<Board>();
    bag.solutions_ = b.get<long>();
    return bag;
  }

 private:
  int n_ = 0;
  std::vector<Board> frontier_;
  long solutions_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.places = argc > 1 ? std::atoi(argv[1]) : 4;
  const int board = argc > 2 ? std::atoi(argv[2]) : 11;
  static const long known[] = {1,    1,     0,     0,     2,      10,
                               4,    40,    92,    352,   724,    2680,
                               14200, 73712, 365596};

  Runtime::run(cfg, [board] {
    glb::GlbConfig gcfg;
    gcfg.chunk = 128;
    glb::Glb<NQueensBag> balancer(gcfg);
    const auto t0 = std::chrono::steady_clock::now();
    balancer.run(NQueensBag(board, /*with_root=*/true));
    const auto t1 = std::chrono::steady_clock::now();

    long total = 0;
    std::printf("%-8s %14s %14s %14s\n", "place", "solutions", "processed",
                "steal hits");
    for (int p = 0; p < num_places(); ++p) {
      const auto& stats = balancer.stats_at(p);
      std::printf("%-8d %14ld %14llu %14llu\n", p,
                  balancer.bag_at(p).solutions(),
                  static_cast<unsigned long long>(stats.processed),
                  static_cast<unsigned long long>(stats.steal_hits));
      total += balancer.bag_at(p).solutions();
    }
    std::printf("N=%d: %ld solutions in %.3fs", board, total,
                std::chrono::duration<double>(t1 - t0).count());
    if (board < static_cast<int>(sizeof(known) / sizeof(known[0]))) {
      std::printf(" (expected %ld: %s)", known[board],
                  total == known[board] ? "correct" : "WRONG");
    }
    std::printf("\n");
  });
  return 0;
}
