// Quickstart: the APGAS programming model in one file (paper §2).
//
//   build/examples/quickstart [places]
//
// Walks through the core constructs — places, async, at, finish, GlobalRef,
// atomic, clocks, asyncCopy — using the paper's own §2.2 idioms.
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "runtime/api.h"
#include "runtime/clock.h"
#include "runtime/dist_rail.h"
#include "runtime/monitor.h"
#include "runtime/place_group.h"

using namespace apgas;

namespace {

// The paper's fib example: recursive parallel decomposition with
// finish/async.
int fib(int n) {
  if (n < 2) return n;
  int f1 = 0;
  int f2 = 0;
  finish([&] {
    async([&f1, n] { f1 = fib(n - 1); });
    f2 = fib(n - 2);
  });
  return f1 + f2;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.places = argc > 1 ? std::atoi(argv[1]) : 4;

  Runtime::run(cfg, [] {
    std::printf("main() runs at place %d of %d\n", here(), num_places());

    // --- 1. Startup idiom: one activity per place, finish works across
    //        places (§2.2). PlaceGroup::broadcast is the scalable variant.
    finish([] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [] { std::printf("  hello from place %d\n", here()); });
      }
    });

    // --- 2. Remote evaluation: blocking `at` expression.
    const int doubled = at(num_places() - 1, [] { return here() * 2; });
    std::printf("at(last place): %d\n", doubled);

    // --- 3. Fork-join recursion inside one place.
    std::printf("fib(15) = %d\n", fib(15));

    // --- 4. The §2.2 average-load idiom: GlobalRef + atomic updates home.
    double acc = 0.0;
    GlobalRef<double> ref(&acc);
    finish([ref] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [ref] {
          const double load = 0.5 + 0.1 * here();  // "system load" here
          asyncAt(ref.home(), [ref, load] {
            atomic_do([&] { *ref += load; });
          });
        });
      }
    });
    std::printf("average load = %.3f\n", acc / num_places());

    // --- 5. Clocked SPMD loop: iterations synchronized across places.
    auto clock = Clock::create(num_places());
    finish([clock] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [clock] {
          for (int iter = 0; iter < 3; ++iter) {
            // ... loop body would go here ...
            clock->advance();  // Clock.advanceAll(): global barrier
          }
        });
      }
    });
    std::printf("clocked loop done after phase %llu\n",
                static_cast<unsigned long long>(clock->phase()));

    // --- 6. Overlapping communication and computation with asyncCopy on
    //        congruent (registered) memory — the RDMA path.
    auto& space = Runtime::get().congruent();
    auto arr = space.alloc<double>(1 << 16);
    double* mine = space.at_place(here(), arr);
    std::iota(mine, mine + (1 << 16), 0.0);
    long local_sum = 0;
    finish([&] {
      async_copy(mine, global_rail(arr, num_places() - 1), 0, 1 << 16);
      for (int i = 0; i < 1000; ++i) local_sum += i;  // while sending
    });
    std::printf("asyncCopy overlapped with compute (sum=%ld), remote[42]=%g\n",
                local_sum, space.at_place(num_places() - 1, arr)[42]);
  });
  std::printf("job quiesced; all places terminated\n");
  return 0;
}
