// Observability demo: runs a small fan-out + team job with the flight
// recorder on, writes a Chrome trace and a metrics dump, and prints a few
// headline counters. Open trace_demo.trace.json in chrome://tracing or
// https://ui.perfetto.dev to see per-place activity/message/finish timelines.
//
//   ./trace_demo [places]
#include <cstdio>
#include <cstdlib>

#include "runtime/api.h"
#include "runtime/metrics.h"
#include "runtime/team.h"
#include "runtime/trace.h"

int main(int argc, char** argv) {
  using namespace apgas;
  const int places = argc > 1 ? std::atoi(argv[1]) : 4;

  Config cfg;
  cfg.places = places;
  cfg.trace = true;                          // flight recorder on
  cfg.trace_capacity = 1u << 14;             // per-place ring: 16k events
  cfg.trace_path = "trace_demo.trace.json";  // Chrome trace_event JSON
  cfg.metrics_path = "trace_demo.metrics.txt";  // key=value dump

  Runtime::run(cfg, [&] {
    // A two-level fan-out under the default (transit-matrix) protocol…
    finish([&] {
      for (int p = 0; p < places; ++p) {
        asyncAt(p, [places] {
          finish(Pragma::kLocal, [&] {
            for (int i = 0; i < 4; ++i) {
              async([] { /* leaf work */ });
            }
          });
        });
      }
    });
    // …then a world barrier + allreduce so the trace shows team phases.
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < places; ++p) {
        asyncAt(p, [] {
          Team world = Team::world();
          world.barrier();
          double x = 1.0;
          world.allreduce(&x, 1, ReduceOp::kSum);
        });
      }
    });
  });

  // Runtime::run already wrote the files; the snapshot survives teardown.
  const auto& metrics = apgas::last_run_metrics();
  auto show = [&](const char* key) {
    auto it = metrics.find(key);
    std::printf("  %-28s %llu\n", key,
                static_cast<unsigned long long>(it == metrics.end() ? 0
                                                                    : it->second));
  };
  std::printf("headline counters (full dump: trace_demo.metrics.txt):\n");
  show("finish.opened");
  show("runtime.tasks_shipped");
  show("sched.msgs.task");
  show("sched.msgs.collective");
  show("trace.events");
  std::printf("trace written to trace_demo.trace.json "
              "(open in chrome://tracing)\n");
  return 0;
}
