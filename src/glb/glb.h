// Lifeline-based global load balancing (paper §3.4, §6.1; [35], [43]).
//
// One worker activity per place processes a local TaskBag. An idle worker
// first makes a bounded number of *random* steal attempts (synchronous round
// trips over X10RT-level messages, the cheap accounting the paper derives
// from FINISH_HERE), then registers on its *lifelines* — a low-diameter,
// low-degree graph — and dies. A victim that later has work splits it among
// recorded lifeline requesters; the loot travels as a spawn under the single
// root finish, whose termination detection therefore covers exactly the
// initial distribution plus lifeline resuscitations, staying oblivious to
// the (much more frequent) random-steal traffic.
//
// Every GLB message is a *frame* (registered task id + Ser-serialized bag,
// ISSUE 10), so the whole protocol runs unchanged over the socket backend:
// work distribution and resuscitations ride asyncAtFrame, steal round trips
// and lifeline registrations ride immediateAtFrame. Per-place protocol state
// lives in a process-global Session keyed by a monotonically increasing run
// id that travels inside every frame — a straggler from a previous run
// (e.g. a fire-and-forget lifeline registration parked by chaos) is detected
// as stale and dropped instead of corrupting the next run's books.
//
// The paper's refinements over [35] are all here and switchable, so the
// bench can reproduce the §6.2 "legacy collapses at scale" comparison:
//   * bounded victim lists (<=1024; legacy: every place is a victim),
//   * steal round trips outside the root finish (legacy: each steal is a
//     pair of spawns governed by the root finish, flooding it),
//   * FINISH_DENSE for the root finish (legacy: the default protocol).
#pragma once

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>
#include <random>
#include <utility>
#include <vector>

#include "glb/lifeline_graph.h"
#include "glb/task_bag.h"
#include "runtime/api.h"
#include "runtime/metrics.h"
#include "runtime/trace.h"

namespace glb {

struct GlbConfig {
  std::size_t chunk = 256;     ///< units processed between steal services
  int random_attempts = 2;     ///< "w" random victims before lifelines
  int max_victims = 1024;      ///< paper §6.1: bound the out-degree
  LifelineKind lifelines = LifelineKind::kCyclic;
  std::uint64_t seed = 0x5eedULL;
  bool legacy = false;         ///< [35] baseline (see header comment)
};
static_assert(std::is_trivially_copyable_v<GlbConfig>,
              "GlbConfig travels raw inside every GLB frame");

struct GlbPlaceStats {
  std::uint64_t processed = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_hits = 0;
  std::uint64_t lifeline_requests = 0;
  std::uint64_t resuscitations = 0;
};

namespace detail {

template <TaskBag Bag>
struct WorkerState {
  Bag bag{};
  bool active = false;
  std::vector<int> lifelines;           // whom we beg
  std::vector<char> lifeline_requested; // outstanding request per lifeline
  std::vector<char> incoming;           // recorded requests, by thief place
  std::vector<int> incoming_queue;
  std::vector<int> victims;
  std::mt19937_64 rng;
  // Random-steal round-trip rendezvous.
  bool response_pending = false;
  bool response_had_loot = false;
  GlbPlaceStats stats;
  // glb.* registry counters, resolved once at state creation (the registry's
  // "resolve once, increment lock-free forever" contract): the hot steal
  // paths must not take the registry mutex per event.
  apgas::MetricsRegistry::Counter* c_processed = nullptr;
  apgas::MetricsRegistry::Counter* c_steal_attempts = nullptr;
  apgas::MetricsRegistry::Counter* c_steal_hits = nullptr;
  apgas::MetricsRegistry::Counter* c_lifeline_requests = nullptr;
  apgas::MetricsRegistry::Counter* c_resuscitations = nullptr;
  // Steal-to-work latency histogram (attempt launch -> loot merged).
  apgas::Histogram* h_steal_to_work = nullptr;
};

/// Process-global per-Bag protocol state. One instance per process: all
/// in-process places share it (indexed by place), a socket-backend place
/// process only ever touches its own slot. The run id is the epoch guard:
/// place 0 bumps it at the start of every Glb::run, every frame carries it,
/// and handlers drop frames from older epochs (only fire-and-forget lifeline
/// registrations can actually straggle across runs — everything else is
/// either finish-governed or a blocking rendezvous).
template <TaskBag Bag>
class Session {
 public:
  /// Place 0, start of a run: advance the epoch and reset all state.
  static std::uint64_t begin_run(const GlbConfig& cfg) {
    Session& s = instance();
    std::scoped_lock lock(s.mu_);
    ++s.run_id_;
    s.cfg_ = cfg;
    s.states_.clear();
    s.states_.resize(static_cast<std::size_t>(apgas::num_places()));
    return s.run_id_;
  }

  /// Frame handler entry: adopt a newer epoch (first frame of a run arriving
  /// at a peer process), drop a stale one (returns nullptr), and hand back
  /// this place's state (created on first touch).
  static WorkerState<Bag>* ensure(const GlbConfig& cfg, std::uint64_t rid) {
    Session& s = instance();
    std::scoped_lock lock(s.mu_);
    if (rid < s.run_id_) return nullptr;  // straggler from a finished run
    if (rid > s.run_id_) {
      s.run_id_ = rid;
      s.cfg_ = cfg;
      s.states_.clear();
      s.states_.resize(static_cast<std::size_t>(apgas::num_places()));
    }
    return s.state_for(apgas::here());
  }

  /// Exact-epoch lookup without creation (steal responses, result gather):
  /// nullptr when the epoch moved on or the place was never touched.
  static WorkerState<Bag>* find(std::uint64_t rid) {
    Session& s = instance();
    std::scoped_lock lock(s.mu_);
    if (rid != s.run_id_) return nullptr;
    return s.states_[static_cast<std::size_t>(apgas::here())].get();
  }

 private:
  static Session& instance() {
    static Session s;
    return s;
  }

  WorkerState<Bag>* state_for(int p) {
    auto& slot = states_[static_cast<std::size_t>(p)];
    if (!slot) {
      const int places = apgas::num_places();
      auto& metrics = apgas::Runtime::get().metrics();
      auto ws = std::make_unique<WorkerState<Bag>>();
      ws->c_processed = &metrics.counter("glb.processed");
      ws->c_steal_attempts = &metrics.counter("glb.steal_attempts");
      ws->c_steal_hits = &metrics.counter("glb.steal_hits");
      ws->c_lifeline_requests = &metrics.counter("glb.lifeline_requests");
      ws->c_resuscitations = &metrics.counter("glb.resuscitations");
      ws->h_steal_to_work = &metrics.histogram("glb.steal_to_work_ns");
      ws->lifelines = lifelines_of(p, places, cfg_.lifelines);
      ws->lifeline_requested.assign(ws->lifelines.size(), 0);
      ws->incoming.assign(static_cast<std::size_t>(places), 0);
      ws->rng.seed(cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
      ws->victims = pick_victims(p, places, ws->rng);
      slot = std::move(ws);
    }
    return slot.get();
  }

  static std::vector<int> pick_victims(int self, int places,
                                       std::mt19937_64& rng) {
    std::vector<int> all;
    all.reserve(static_cast<std::size_t>(places) - 1);
    for (int p = 0; p < places; ++p) {
      if (p != self) all.push_back(p);
    }
    std::shuffle(all.begin(), all.end(), rng);
    return all;  // callers bound by max_victims (legacy uses all)
  }

  std::mutex mu_;
  std::uint64_t run_id_ = 0;
  GlbConfig cfg_{};
  std::vector<std::unique_ptr<WorkerState<Bag>>> states_;
};

// Forward declarations for the handler <-> protocol mutual recursion.
template <TaskBag Bag>
void give_range(const GlbConfig& cfg, std::uint64_t rid, int lo, int hi,
                Bag bag);
template <TaskBag Bag>
void worker(const GlbConfig& cfg, std::uint64_t rid);

/// Every GLB frame starts [GlbConfig][run_id u64] so any process can
/// bootstrap (or epoch-check) its Session from the first frame it sees.
inline x10rt::ByteBuffer glb_frame(const GlbConfig& cfg, std::uint64_t rid) {
  x10rt::ByteBuffer b;
  b.put(cfg);
  b.put(rid);
  return b;
}

/// The registered frame tasks of the protocol, one set per Bag type. Ids are
/// static data members of a class template: initialized pre-main wherever
/// the Bag instantiation exists, and the launcher forks after static init,
/// so every place process agrees on them.
template <TaskBag Bag>
struct Fns {
  /// [cfg][rid][lo i32][hi i32][Ser<Bag>] — tree-distribution hop, governed
  /// by the root finish.
  static void give(x10rt::ByteBuffer& b) {
    const auto cfg = b.get<GlbConfig>();
    const auto rid = b.get<std::uint64_t>();
    const auto lo = b.get<std::int32_t>();
    const auto hi = b.get<std::int32_t>();
    Bag bag = x10rt::Ser<Bag>::get(b);
    if (Session<Bag>::ensure(cfg, rid) == nullptr) return;
    give_range<Bag>(cfg, rid, lo, hi, std::move(bag));
  }

  /// [cfg][rid][Ser<Bag>] — lifeline loot (the resuscitation), governed by
  /// the root finish.
  static void loot(x10rt::ByteBuffer& b) {
    const auto cfg = b.get<GlbConfig>();
    const auto rid = b.get<std::uint64_t>();
    Bag stolen = x10rt::Ser<Bag>::get(b);
    WorkerState<Bag>* ws = Session<Bag>::ensure(cfg, rid);
    if (ws == nullptr) return;
    ws->bag.merge(std::move(stolen));
    // Loot re-arms future lifeline registrations.
    std::fill(ws->lifeline_requested.begin(), ws->lifeline_requested.end(), 0);
    if (!ws->active) worker<Bag>(cfg, rid);
  }

  /// [cfg][rid][thief i32] — random-steal request. The paper flavour rides
  /// an immediate (invisible to the root finish); legacy rides asyncAtFrame
  /// so every attempt floods the finish, as [35] did.
  static void steal_req_impl(x10rt::ByteBuffer& b, bool legacy) {
    const auto cfg = b.get<GlbConfig>();
    const auto rid = b.get<std::uint64_t>();
    const auto thief = b.get<std::int32_t>();
    x10rt::ByteBuffer rsp;
    rsp.put(rid);
    WorkerState<Bag>* ws = Session<Bag>::ensure(cfg, rid);
    bool had = false;
    Bag stolen{};
    if (ws != nullptr) {
      stolen = ws->bag.split();
      had = !stolen.empty();
    }
    // A stale request still gets its (empty) response: the thief is blocked
    // in a rendezvous and must always be released.
    rsp.put<std::uint8_t>(had ? 1 : 0);
    if (had) x10rt::Ser<Bag>::put(rsp, stolen);
    if (legacy) {
      apgas::asyncAtFrame(thief, kStealRspLegacy, std::move(rsp));
    } else {
      apgas::immediateAtFrame(thief, kStealRsp, std::move(rsp),
                              x10rt::MsgType::kSteal);
    }
  }
  static void steal_req(x10rt::ByteBuffer& b) { steal_req_impl(b, false); }
  static void steal_req_legacy(x10rt::ByteBuffer& b) {
    steal_req_impl(b, true);
  }

  /// [rid][had u8][Ser<Bag> if had] — random-steal response, releasing the
  /// thief's rendezvous.
  static void steal_rsp(x10rt::ByteBuffer& b) {
    const auto rid = b.get<std::uint64_t>();
    const auto had = b.get<std::uint8_t>() != 0;
    WorkerState<Bag>* ws = Session<Bag>::find(rid);
    if (ws == nullptr) return;  // epoch moved on; nobody is waiting
    if (had) ws->bag.merge(x10rt::Ser<Bag>::get(b));
    ws->response_had_loot = had;
    ws->response_pending = false;
  }

  /// [cfg][rid][thief i32] — fire-and-forget lifeline registration (the only
  /// frame that can genuinely straggle across runs; the epoch guard drops
  /// stale ones).
  static void lifeline(x10rt::ByteBuffer& b) {
    const auto cfg = b.get<GlbConfig>();
    const auto rid = b.get<std::uint64_t>();
    const auto thief = b.get<std::int32_t>();
    WorkerState<Bag>* ws = Session<Bag>::ensure(cfg, rid);
    if (ws == nullptr) return;
    if (!ws->incoming[static_cast<std::size_t>(thief)]) {
      ws->incoming[static_cast<std::size_t>(thief)] = 1;
      ws->incoming_queue.push_back(thief);
    }
  }

  /// Post-run result gather (typed blocking get): moves the place's final
  /// bag out alongside its stats. Runs identically on both backends so the
  /// finish books stay structurally equal.
  static std::pair<GlbPlaceStats, Bag> collect(std::uint64_t rid) {
    WorkerState<Bag>* ws = Session<Bag>::find(rid);
    if (ws == nullptr) return {};
    return {ws->stats, std::move(ws->bag)};
  }

  inline static const int kGive = apgas::register_task_fn(&Fns::give);
  inline static const int kLoot = apgas::register_task_fn(&Fns::loot);
  inline static const int kStealReq =
      apgas::register_task_fn(&Fns::steal_req);
  inline static const int kStealReqLegacy =
      apgas::register_task_fn(&Fns::steal_req_legacy);
  inline static const int kStealRsp =
      apgas::register_task_fn(&Fns::steal_rsp);
  inline static const int kStealRspLegacy =
      apgas::register_task_fn(&Fns::steal_rsp);
  inline static const int kLifeline =
      apgas::register_task_fn(&Fns::lifeline);
  inline static const apgas::RemoteGet<std::pair<GlbPlaceStats, Bag>,
                                       std::uint64_t>
      kCollect{&Fns::collect};
};

/// Serve recorded lifeline requests from our bag: every requester gets a
/// split, shipped as a frame spawn under the root finish (the resuscitation).
template <TaskBag Bag>
void distribute(const GlbConfig& cfg, std::uint64_t rid,
                WorkerState<Bag>& ws) {
  while (!ws.incoming_queue.empty() && !ws.bag.empty()) {
    Bag stolen = ws.bag.split();
    if (stolen.empty()) return;
    const int thief = ws.incoming_queue.back();
    ws.incoming_queue.pop_back();
    ws.incoming[static_cast<std::size_t>(thief)] = 0;
    ++ws.stats.resuscitations;
    ws.c_resuscitations->fetch_add(1, std::memory_order_relaxed);
    x10rt::ByteBuffer f = glb_frame(cfg, rid);
    x10rt::Ser<Bag>::put(f, stolen);
    apgas::asyncAtFrame(thief, Fns<Bag>::kLoot, std::move(f));
  }
}

/// One synchronous random steal attempt; returns true if loot arrived.
template <TaskBag Bag>
bool random_steal(const GlbConfig& cfg, std::uint64_t rid,
                  WorkerState<Bag>& ws) {
  const int self = apgas::here();
  const int bound = cfg.legacy
                        ? static_cast<int>(ws.victims.size())
                        : std::min<int>(cfg.max_victims,
                                        static_cast<int>(ws.victims.size()));
  if (bound == 0) return false;
  std::uniform_int_distribution<int> pick(0, bound - 1);
  const int victim = ws.victims[static_cast<std::size_t>(pick(ws.rng))];
  ++ws.stats.steal_attempts;
  ws.c_steal_attempts->fetch_add(1, std::memory_order_relaxed);
  apgas::trace::emit(apgas::trace::Ev::kStealAttempt,
                     static_cast<std::uint64_t>(victim));
  const bool timed = apgas::hist::enabled();
  const std::uint64_t t0 = timed ? apgas::hist::now_ns() : 0;
  ws.response_pending = true;
  ws.response_had_loot = false;

  x10rt::ByteBuffer f = glb_frame(cfg, rid);
  f.put<std::int32_t>(self);
  if (cfg.legacy) {
    // [35]-style: the steal round trip is a pair of frame spawns under the
    // root finish — every attempt generates termination-detection traffic.
    apgas::asyncAtFrame(victim, Fns<Bag>::kStealReqLegacy, std::move(f));
  } else {
    // Paper-style: X10RT-level round trip, invisible to the root finish
    // (the thief activity stays live while waiting, so this is safe).
    apgas::immediateAtFrame(victim, Fns<Bag>::kStealReq, std::move(f),
                            x10rt::MsgType::kSteal);
  }
  apgas::Runtime::get().sched(self).run_until(
      [&ws] { return !ws.response_pending; });
  if (ws.response_had_loot) {
    ++ws.stats.steal_hits;
    ws.c_steal_hits->fetch_add(1, std::memory_order_relaxed);
    if (timed) ws.h_steal_to_work->record(apgas::hist::now_ns() - t0);
    apgas::trace::emit(apgas::trace::Ev::kStealSuccess,
                       static_cast<std::uint64_t>(victim));
  }
  return ws.response_had_loot;
}

/// Register on every lifeline not already holding our request.
template <TaskBag Bag>
void register_lifelines(const GlbConfig& cfg, std::uint64_t rid,
                        WorkerState<Bag>& ws) {
  const int self = apgas::here();
  for (std::size_t i = 0; i < ws.lifelines.size(); ++i) {
    if (ws.lifeline_requested[i]) continue;
    ws.lifeline_requested[i] = 1;
    ++ws.stats.lifeline_requests;
    ws.c_lifeline_requests->fetch_add(1, std::memory_order_relaxed);
    x10rt::ByteBuffer f = glb_frame(cfg, rid);
    f.put<std::int32_t>(self);
    apgas::immediateAtFrame(ws.lifelines[i], Fns<Bag>::kLifeline,
                            std::move(f), x10rt::MsgType::kSteal);
  }
}

/// The per-place worker: process, serve, steal, register, die (§6.1).
template <TaskBag Bag>
void worker(const GlbConfig& cfg, std::uint64_t rid) {
  WorkerState<Bag>* wsp = Session<Bag>::ensure(cfg, rid);
  if (wsp == nullptr) return;
  WorkerState<Bag>& ws = *wsp;
  assert(!ws.active);
  ws.active = true;
  auto& sched = apgas::Runtime::get().sched(apgas::here());
  for (;;) {
    std::size_t done;
    while ((done = ws.bag.process(cfg.chunk)) > 0) {
      ws.stats.processed += done;
      ws.c_processed->fetch_add(done, std::memory_order_relaxed);
      distribute<Bag>(cfg, rid, ws);  // serve lifelines promptly
      while (sched.step()) {
      }  // service steal requests between chunks
    }
    // Bag empty: random steals, re-checking the bag after each attempt
    // (loot may arrive via a lifeline while we wait).
    bool got = false;
    for (int a = 0; a < cfg.random_attempts && !got; ++a) {
      got = random_steal<Bag>(cfg, rid, ws);
      if (!ws.bag.empty()) got = true;
    }
    if (got || !ws.bag.empty()) continue;
    register_lifelines<Bag>(cfg, rid, ws);
    if (!ws.bag.empty()) continue;  // raced with a resuscitation
    break;  // die; a lifeline loot frame will resuscitate us
  }
  ws.active = false;
}

/// Initial one-wave tree distribution from the root worker (§6.1).
template <TaskBag Bag>
void give_range(const GlbConfig& cfg, std::uint64_t rid, int lo, int hi,
                Bag bag) {
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo + 1) / 2;
    Bag half = bag.split();
    x10rt::ByteBuffer f = glb_frame(cfg, rid);
    f.put<std::int32_t>(mid);
    f.put<std::int32_t>(hi);
    x10rt::Ser<Bag>::put(f, half);
    apgas::asyncAtFrame(mid, Fns<Bag>::kGive, std::move(f));
    hi = mid;
  }
  WorkerState<Bag>* ws = Session<Bag>::ensure(cfg, rid);
  assert(ws != nullptr && "a governed give cannot be stale");
  ws->bag.merge(std::move(bag));
  worker<Bag>(cfg, rid);
}

}  // namespace detail

template <TaskBag Bag>
class Glb {
 public:
  explicit Glb(GlbConfig cfg = {}) : cfg_(cfg) {}

  /// Runs the computation to global quiescence. Must be called from an
  /// activity at place 0; requires one worker thread per place.
  void run(Bag initial) {
    apgas::Runtime& rt = apgas::Runtime::get();
    assert(apgas::here() == 0 && "Glb::run starts at place 0");
    assert(rt.config().workers_per_place == 1 &&
           "GLB assumes one worker per place (as the paper's runs do)");
    const int places = rt.places();
    const std::uint64_t rid = detail::Session<Bag>::begin_run(cfg_);
    const GlbConfig cfg = cfg_;
    apgas::finish(cfg.legacy ? apgas::Pragma::kDefault : apgas::Pragma::kDense,
                  [&] {
                    detail::give_range<Bag>(cfg, rid, 0, places,
                                            std::move(initial));
                  });
    // Gather every place's final bag + stats with the typed blocking get.
    // Runs on both backends (q == 0 included) so the finish books stay
    // structurally identical in-process vs over sockets.
    bags_.clear();
    stats_.clear();
    bags_.reserve(static_cast<std::size_t>(places));
    stats_.reserve(static_cast<std::size_t>(places));
    for (int q = 0; q < places; ++q) {
      auto [st, bag] = apgas::atArgs(q, detail::Fns<Bag>::kCollect, rid);
      stats_.push_back(st);
      bags_.push_back(std::move(bag));
    }
  }

  /// Post-run access to each place's final bag (for result extraction) and
  /// stats, gathered to place 0 when run() returned.
  [[nodiscard]] const Bag& bag_at(int place) const {
    return bags_[static_cast<std::size_t>(place)];
  }
  [[nodiscard]] const GlbPlaceStats& stats_at(int place) const {
    return stats_[static_cast<std::size_t>(place)];
  }

 private:
  GlbConfig cfg_;
  std::vector<Bag> bags_;
  std::vector<GlbPlaceStats> stats_;
};

}  // namespace glb
