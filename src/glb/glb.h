// Lifeline-based global load balancing (paper §3.4, §6.1; [35], [43]).
//
// One worker activity per place processes a local TaskBag. An idle worker
// first makes a bounded number of *random* steal attempts (synchronous round
// trips over X10RT-level messages, the cheap accounting the paper derives
// from FINISH_HERE), then registers on its *lifelines* — a low-diameter,
// low-degree graph — and dies. A victim that later has work splits it among
// recorded lifeline requesters; the loot travels as an async under the single
// root finish, whose termination detection therefore covers exactly the
// initial distribution plus lifeline resuscitations, staying oblivious to
// the (much more frequent) random-steal traffic.
//
// The paper's refinements over [35] are all here and switchable, so the
// bench can reproduce the §6.2 "legacy collapses at scale" comparison:
//   * bounded victim lists (<=1024; legacy: every place is a victim),
//   * steal round trips outside the root finish (legacy: each steal is a
//     pair of asyncs governed by the root finish, flooding it),
//   * FINISH_DENSE for the root finish (legacy: the default protocol).
#pragma once

#include <algorithm>
#include <cassert>
#include <memory>
#include <random>
#include <vector>

#include "glb/lifeline_graph.h"
#include "glb/task_bag.h"
#include "runtime/api.h"
#include "runtime/metrics.h"
#include "runtime/trace.h"

namespace glb {

struct GlbConfig {
  std::size_t chunk = 256;     ///< units processed between steal services
  int random_attempts = 2;     ///< "w" random victims before lifelines
  int max_victims = 1024;      ///< paper §6.1: bound the out-degree
  LifelineKind lifelines = LifelineKind::kCyclic;
  std::uint64_t seed = 0x5eedULL;
  bool legacy = false;         ///< [35] baseline (see header comment)
};

struct GlbPlaceStats {
  std::uint64_t processed = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_hits = 0;
  std::uint64_t lifeline_requests = 0;
  std::uint64_t resuscitations = 0;
};

template <TaskBag Bag>
class Glb {
 public:
  explicit Glb(GlbConfig cfg = {}) : cfg_(cfg) {}

  /// Runs the computation to global quiescence. Must be called from an
  /// activity at place 0; requires one worker thread per place.
  void run(Bag initial) {
    apgas::Runtime& rt = apgas::Runtime::get();
    assert(apgas::here() == 0 && "Glb::run starts at place 0");
    assert(rt.config().workers_per_place == 1 &&
           "GLB assumes one worker per place (as the paper's runs do)");
    const int places = rt.places();
    auto& metrics = rt.metrics();
    auto* c_attempts = &metrics.counter("glb.steal_attempts");
    auto* c_hits = &metrics.counter("glb.steal_hits");
    auto* c_requests = &metrics.counter("glb.lifeline_requests");
    auto* c_resus = &metrics.counter("glb.resuscitations");
    auto* h_steal = &metrics.histogram("glb.steal_to_work_ns");
    states_ = std::make_shared<std::vector<std::unique_ptr<WorkerState>>>();
    states_->reserve(static_cast<std::size_t>(places));
    for (int p = 0; p < places; ++p) {
      auto ws = std::make_unique<WorkerState>();
      ws->c_steal_attempts = c_attempts;
      ws->c_steal_hits = c_hits;
      ws->c_lifeline_requests = c_requests;
      ws->c_resuscitations = c_resus;
      ws->h_steal_to_work = h_steal;
      ws->lifelines = lifelines_of(p, places, cfg_.lifelines);
      ws->lifeline_requested.assign(ws->lifelines.size(), 0);
      ws->incoming.assign(static_cast<std::size_t>(places), 0);
      ws->rng.seed(cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
      ws->victims = pick_victims(p, places, ws->rng);
      states_->push_back(std::move(ws));
    }
    auto states = states_;
    const GlbConfig cfg = cfg_;
    apgas::finish(cfg.legacy ? apgas::Pragma::kDefault : apgas::Pragma::kDense,
                  [&] {
                    give_range(states, cfg, 0, places, std::move(initial));
                  });
  }

  /// Post-run access to each place's final bag (for result extraction) and
  /// stats. Only valid after run() returned — the job is then quiescent.
  [[nodiscard]] const Bag& bag_at(int place) const {
    return (*states_)[static_cast<std::size_t>(place)]->bag;
  }
  [[nodiscard]] const GlbPlaceStats& stats_at(int place) const {
    return (*states_)[static_cast<std::size_t>(place)]->stats;
  }

 private:
  struct WorkerState {
    Bag bag{};
    bool active = false;
    std::vector<int> lifelines;           // whom we beg
    std::vector<char> lifeline_requested; // outstanding request per lifeline
    std::vector<char> incoming;           // recorded requests, by thief place
    std::vector<int> incoming_queue;
    std::vector<int> victims;
    std::mt19937_64 rng;
    // Random-steal round-trip rendezvous.
    bool response_pending = false;
    bool response_had_loot = false;
    GlbPlaceStats stats;
    // glb.* registry counters, resolved once at Glb::run (the registry's
    // "resolve once, increment lock-free forever" contract): the hot steal
    // paths must not take the registry mutex per event.
    apgas::MetricsRegistry::Counter* c_steal_attempts = nullptr;
    apgas::MetricsRegistry::Counter* c_steal_hits = nullptr;
    apgas::MetricsRegistry::Counter* c_lifeline_requests = nullptr;
    apgas::MetricsRegistry::Counter* c_resuscitations = nullptr;
    // Steal-to-work latency histogram (attempt launch -> loot merged).
    apgas::Histogram* h_steal_to_work = nullptr;
  };
  using States = std::shared_ptr<std::vector<std::unique_ptr<WorkerState>>>;

  static std::vector<int> pick_victims(int self, int places,
                                       std::mt19937_64& rng) {
    std::vector<int> all;
    all.reserve(static_cast<std::size_t>(places) - 1);
    for (int p = 0; p < places; ++p) {
      if (p != self) all.push_back(p);
    }
    std::shuffle(all.begin(), all.end(), rng);
    return all;  // callers bound by max_victims (legacy uses all)
  }

  /// Initial one-wave tree distribution from the root worker (§6.1).
  static void give_range(States states, const GlbConfig& cfg, int lo, int hi,
                         Bag bag) {
    while (hi - lo > 1) {
      const int mid = lo + (hi - lo + 1) / 2;
      Bag half = bag.split();
      auto half_ptr = std::make_shared<Bag>(std::move(half));
      apgas::asyncAt(mid, [states, cfg, mid, hi, half_ptr] {
        give_range(states, cfg, mid, hi, std::move(*half_ptr));
      });
      hi = mid;
    }
    auto& ws = *(*states)[static_cast<std::size_t>(apgas::here())];
    ws.bag.merge(std::move(bag));
    worker(states, cfg);
  }

  /// Serve recorded lifeline requests from our bag: every requester gets a
  /// split, shipped as an async under the root finish (the resuscitation).
  static void distribute(States states, const GlbConfig& cfg) {
    auto& ws = *(*states)[static_cast<std::size_t>(apgas::here())];
    while (!ws.incoming_queue.empty() && !ws.bag.empty()) {
      Bag loot = ws.bag.split();
      if (loot.empty()) return;
      const int thief = ws.incoming_queue.back();
      ws.incoming_queue.pop_back();
      ws.incoming[static_cast<std::size_t>(thief)] = 0;
      ++ws.stats.resuscitations;
      ws.c_resuscitations->fetch_add(1, std::memory_order_relaxed);
      auto loot_ptr = std::make_shared<Bag>(std::move(loot));
      apgas::asyncAt(thief, [states, cfg, loot_ptr] {
        auto& ts = *(*states)[static_cast<std::size_t>(apgas::here())];
        ts.bag.merge(std::move(*loot_ptr));
        // Loot re-arms future lifeline registrations.
        std::fill(ts.lifeline_requested.begin(), ts.lifeline_requested.end(),
                  0);
        if (!ts.active) worker(states, cfg);  // the resuscitation async
      });
    }
  }

  /// One synchronous random steal attempt; returns true if loot arrived.
  static bool random_steal(States states, const GlbConfig& cfg,
                           WorkerState& ws) {
    const int self = apgas::here();
    const int bound = cfg.legacy
                          ? static_cast<int>(ws.victims.size())
                          : std::min<int>(cfg.max_victims,
                                          static_cast<int>(ws.victims.size()));
    if (bound == 0) return false;
    std::uniform_int_distribution<int> pick(0, bound - 1);
    const int victim = ws.victims[static_cast<std::size_t>(pick(ws.rng))];
    ++ws.stats.steal_attempts;
    ws.c_steal_attempts->fetch_add(1, std::memory_order_relaxed);
    apgas::trace::emit(apgas::trace::Ev::kStealAttempt,
                       static_cast<std::uint64_t>(victim));
    const bool timed = apgas::hist::enabled();
    const std::uint64_t t0 = timed ? apgas::hist::now_ns() : 0;
    ws.response_pending = true;
    ws.response_had_loot = false;

    if (cfg.legacy) {
      // [35]-style: the steal round trip is a pair of asyncs under the root
      // finish — every attempt generates termination-detection traffic.
      apgas::asyncAt(victim, [states, self] {
        auto& vs = *(*states)[static_cast<std::size_t>(apgas::here())];
        Bag loot = vs.bag.split();
        const bool had = !loot.empty();
        auto loot_ptr = std::make_shared<Bag>(std::move(loot));
        apgas::asyncAt(self, [states, loot_ptr, had] {
          auto& ts = *(*states)[static_cast<std::size_t>(apgas::here())];
          if (had) ts.bag.merge(std::move(*loot_ptr));
          ts.response_had_loot = had;
          ts.response_pending = false;
        });
      });
    } else {
      // Paper-style: X10RT-level round trip, invisible to the root finish
      // (the thief activity stays live while waiting, so this is safe).
      apgas::immediate_at(
          victim,
          [states, self] {
            auto& vs = *(*states)[static_cast<std::size_t>(apgas::here())];
            Bag loot = vs.bag.split();
            const bool had = !loot.empty();
            auto loot_ptr = std::make_shared<Bag>(std::move(loot));
            apgas::immediate_at(
                self,
                [states, loot_ptr, had] {
                  auto& ts =
                      *(*states)[static_cast<std::size_t>(apgas::here())];
                  if (had) ts.bag.merge(std::move(*loot_ptr));
                  ts.response_had_loot = had;
                  ts.response_pending = false;
                },
                x10rt::MsgType::kSteal);
          },
          x10rt::MsgType::kSteal);
    }
    apgas::Runtime::get().sched(self).run_until(
        [&ws] { return !ws.response_pending; });
    if (ws.response_had_loot) {
      ++ws.stats.steal_hits;
      ws.c_steal_hits->fetch_add(1, std::memory_order_relaxed);
      if (timed) ws.h_steal_to_work->record(apgas::hist::now_ns() - t0);
      apgas::trace::emit(apgas::trace::Ev::kStealSuccess,
                         static_cast<std::uint64_t>(victim));
    }
    return ws.response_had_loot;
  }

  /// Register on every lifeline not already holding our request.
  static void register_lifelines(States states, WorkerState& ws) {
    const int self = apgas::here();
    for (std::size_t i = 0; i < ws.lifelines.size(); ++i) {
      if (ws.lifeline_requested[i]) continue;
      ws.lifeline_requested[i] = 1;
      ++ws.stats.lifeline_requests;
      ws.c_lifeline_requests->fetch_add(1, std::memory_order_relaxed);
      apgas::immediate_at(
          ws.lifelines[i],
          [states, self] {
            auto& vs = *(*states)[static_cast<std::size_t>(apgas::here())];
            if (!vs.incoming[static_cast<std::size_t>(self)]) {
              vs.incoming[static_cast<std::size_t>(self)] = 1;
              vs.incoming_queue.push_back(self);
            }
          },
          x10rt::MsgType::kSteal);
    }
  }

  /// The per-place worker: process, serve, steal, register, die (§6.1).
  static void worker(States states, const GlbConfig& cfg) {
    auto& ws = *(*states)[static_cast<std::size_t>(apgas::here())];
    assert(!ws.active);
    ws.active = true;
    auto& sched = apgas::Runtime::get().sched(apgas::here());
    for (;;) {
      std::size_t done;
      while ((done = ws.bag.process(cfg.chunk)) > 0) {
        ws.stats.processed += done;
        distribute(states, cfg);  // serve lifelines promptly
        while (sched.step()) {
        }  // service steal requests between chunks
      }
      // Bag empty: random steals, re-checking the bag after each attempt
      // (loot may arrive via a lifeline while we wait).
      bool got = false;
      for (int a = 0; a < cfg.random_attempts && !got; ++a) {
        got = random_steal(states, cfg, ws);
        if (!ws.bag.empty()) got = true;
      }
      if (got || !ws.bag.empty()) continue;
      register_lifelines(states, ws);
      if (!ws.bag.empty()) continue;  // raced with a resuscitation
      break;  // die; a lifeline loot async will resuscitate us
    }
    ws.active = false;
  }

  GlbConfig cfg_;
  States states_;
};

}  // namespace glb
