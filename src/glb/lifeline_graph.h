// Lifeline graphs (paper §3.4, §6.1; Saraswat et al. [35]).
//
// Lifeline edges form a low-diameter, low-degree graph so that work
// propagates to starving places in few hops while bounding the number of
// lifeline requests in flight. The paper uses hyper-cubes; we provide the
// binary hyper-cube (power-of-two place counts) and the cyclic variant
// p -> (p + 2^k) mod P that works for any P.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace glb {

enum class LifelineKind {
  kHypercube,       ///< binary hyper-cube (power-of-two place counts)
  kCyclic,          ///< p -> (p + 2^k) mod P, any P
  kHypercubeRadix,  ///< [35]'s z-dimensional hyper-cube of radix r: place
                    ///< ids as base-r digit vectors, one lifeline per digit
                    ///< increment — degree z, diameter z(r-1)
};

inline constexpr int kDefaultLifelineRadix = 4;

/// Outgoing lifelines of `place` among `places` places (whom `place` begs
/// for work when random stealing fails).
inline std::vector<int> lifelines_of(int place, int places, LifelineKind kind,
                                     int radix = kDefaultLifelineRadix) {
  std::vector<int> out;
  if (places <= 1) return out;
  if (kind == LifelineKind::kHypercubeRadix) {
    // Increment each base-r digit (wrapping within the digit), skipping
    // peers that fall outside [0, places).
    for (std::int64_t stride = 1; stride < places;
         stride *= radix) {
      const int digit = static_cast<int>(place / stride) % radix;
      const int next_digit = (digit + 1) % radix;
      const int peer =
          place + static_cast<int>((next_digit - digit) * stride);
      if (peer >= 0 && peer < places && peer != place) out.push_back(peer);
    }
    return out;
  }
  for (int k = 0; (1 << k) < places; ++k) {
    int peer;
    if (kind == LifelineKind::kHypercube) {
      peer = place ^ (1 << k);
      if (peer >= places) continue;  // degenerate for non-power-of-two
    } else {
      peer = (place + (1 << k)) % places;
    }
    if (peer != place) out.push_back(peer);
  }
  return out;
}

/// Diameter bound of the lifeline graph (hops for work to reach any place).
inline int lifeline_diameter(int places) {
  int d = 0;
  while ((1 << d) < places) ++d;
  return d;
}

}  // namespace glb
