// The TaskBag concept GLB balances (paper §3.4), plus a simple bag used by
// tests and examples.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "x10rt/serialization.h"

namespace glb {

/// What GLB requires of a work bag. Bags are moved between places inside
/// task closures, so they must be movable and self-contained.
template <typename B>
concept TaskBag = std::movable<B> && std::default_initializable<B> &&
    requires(B bag, B other, std::size_t n) {
      /// Process up to n units; returns the number actually processed
      /// (0 means the bag is empty).
      { bag.process(n) } -> std::convertible_to<std::size_t>;
      { bag.split() } -> std::same_as<B>;  // extract roughly half (may be empty)
      /// Absorb ALL of other's work. merge() can target a NON-empty bag
      /// (loot may arrive while processing, e.g. consecutive lifeline
      /// deliveries) — single-slot bags that only adopt-when-empty lose
      /// work. Hold a list of work fragments.
      { bag.merge(std::move(other)) };
      { bag.empty() } -> std::convertible_to<bool>;
      { bag.size() } -> std::convertible_to<std::size_t>;
    };

/// A bag of abstract work units held as index intervals — the compact
/// representation the paper adopts for UTS (§6.1). split() takes a fragment
/// of *every* interval, which is the paper's counter to depth-cutoff bias.
/// Optional per-unit synthetic spin creates imbalance for tests/benches.
class CounterBag {
 public:
  CounterBag() = default;
  CounterBag(std::uint64_t lo, std::uint64_t hi, int spin = 0) : spin_(spin) {
    if (lo < hi) ranges_.emplace_back(lo, hi);
  }

  std::size_t process(std::size_t n) {
    std::size_t done = 0;
    while (done < n && !ranges_.empty()) {
      auto& [lo, hi] = ranges_.back();
      volatile std::uint64_t sink = lo;
      for (int s = 0; s < spin_; ++s) sink = sink * 2862933555777941757ULL + 1;
      (void)sink;
      if (++lo >= hi) ranges_.pop_back();
      ++done;
    }
    processed_ += done;
    return done;
  }

  CounterBag split() {
    CounterBag stolen;
    stolen.spin_ = spin_;
    for (auto& [lo, hi] : ranges_) {
      const std::uint64_t len = hi - lo;
      if (len < 2) continue;
      const std::uint64_t take = len / 2;
      stolen.ranges_.emplace_back(hi - take, hi);
      hi -= take;
    }
    return stolen;
  }

  void merge(CounterBag&& other) {
    ranges_.insert(ranges_.end(), other.ranges_.begin(), other.ranges_.end());
    other.ranges_.clear();
  }

  [[nodiscard]] bool empty() const { return ranges_.empty(); }
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& [lo, hi] : ranges_) total += hi - lo;
    return total;
  }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  // Ser hooks (x10rt::Ser): lets the bag ride GLB frames across processes.
  void ser_put(x10rt::ByteBuffer& b) const {
    // std::pair is not trivially copyable; compose element-wise through Ser.
    x10rt::Ser<decltype(ranges_)>::put(b, ranges_);
    b.put(spin_);
    b.put(processed_);
  }
  static CounterBag ser_get(x10rt::ByteBuffer& b) {
    CounterBag bag;
    bag.ranges_ = x10rt::Ser<decltype(ranges_)>::get(b);
    bag.spin_ = b.get<int>();
    bag.processed_ = b.get<std::uint64_t>();
    return bag;
  }

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges_;
  int spin_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace glb
