#include "kernels/bc/bc.h"

#include <algorithm>
#include <chrono>
#include <random>

#include "runtime/api.h"
#include "runtime/place_group.h"
#include "runtime/team.h"

namespace kernels {

std::int64_t brandes_source(const CsrGraph& g, std::int32_t source,
                            std::vector<double>& centrality) {
  const auto v = static_cast<std::size_t>(g.num_vertices);
  std::vector<std::int64_t> sigma(v, 0);
  std::vector<std::int32_t> dist(v, -1);
  std::vector<double> delta(v, 0.0);
  std::vector<std::int32_t> order;
  order.reserve(v);

  sigma[static_cast<std::size_t>(source)] = 1;
  dist[static_cast<std::size_t>(source)] = 0;
  order.push_back(source);
  std::int64_t edges = 0;

  // Forward BFS: shortest-path counts.
  for (std::size_t head = 0; head < order.size(); ++head) {
    const std::int32_t u = order[head];
    const auto lo = static_cast<std::size_t>(g.offsets[static_cast<std::size_t>(u)]);
    const auto hi = static_cast<std::size_t>(g.offsets[static_cast<std::size_t>(u) + 1]);
    edges += static_cast<std::int64_t>(hi - lo);
    for (std::size_t e = lo; e < hi; ++e) {
      const std::int32_t w = g.adjacency[e];
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
        order.push_back(w);
      }
      if (dist[static_cast<std::size_t>(w)] ==
          dist[static_cast<std::size_t>(u)] + 1) {
        sigma[static_cast<std::size_t>(w)] += sigma[static_cast<std::size_t>(u)];
      }
    }
  }

  // Backward dependency accumulation.
  for (std::size_t i = order.size(); i-- > 1;) {
    const std::int32_t w = order[i];
    const auto lo = static_cast<std::size_t>(g.offsets[static_cast<std::size_t>(w)]);
    const auto hi = static_cast<std::size_t>(g.offsets[static_cast<std::size_t>(w) + 1]);
    for (std::size_t e = lo; e < hi; ++e) {
      const std::int32_t u = g.adjacency[e];
      if (dist[static_cast<std::size_t>(u)] + 1 ==
          dist[static_cast<std::size_t>(w)]) {
        delta[static_cast<std::size_t>(u)] +=
            static_cast<double>(sigma[static_cast<std::size_t>(u)]) /
            static_cast<double>(sigma[static_cast<std::size_t>(w)]) *
            (1.0 + delta[static_cast<std::size_t>(w)]);
      }
    }
    centrality[static_cast<std::size_t>(w)] += delta[static_cast<std::size_t>(w)];
  }
  return edges;
}

std::vector<double> bc_reference(const CsrGraph& g) {
  std::vector<double> centrality(static_cast<std::size_t>(g.num_vertices), 0.0);
  for (std::int32_t s = 0; s < g.num_vertices; ++s) {
    brandes_source(g, s, centrality);
  }
  return centrality;
}

namespace {

/// GLB work bag: intervals over the permuted source list; processing one
/// unit runs Brandes for one source into this place's accumulator.
class BcBag {
 public:
  struct Shared {
    const CsrGraph* graph = nullptr;
    const std::vector<std::int32_t>* sources = nullptr;
    std::vector<std::vector<double>>* acc = nullptr;  // per place
    std::vector<std::int64_t>* edges = nullptr;       // per place
  };

  BcBag() = default;
  BcBag(std::shared_ptr<Shared> sh, std::int64_t lo, std::int64_t hi)
      : shared_(std::move(sh)) {
    if (lo < hi) ranges_.emplace_back(lo, hi);
  }

  std::size_t process(std::size_t n) {
    std::size_t done = 0;
    const int p = apgas::here();
    while (done < n && !ranges_.empty()) {
      auto& [lo, hi] = ranges_.back();
      const std::int32_t src = (*shared_->sources)[static_cast<std::size_t>(lo)];
      (*shared_->edges)[static_cast<std::size_t>(p)] += brandes_source(
          *shared_->graph, src, (*shared_->acc)[static_cast<std::size_t>(p)]);
      if (++lo >= hi) ranges_.pop_back();
      ++done;
    }
    return done;
  }

  BcBag split() {
    BcBag stolen;
    stolen.shared_ = shared_;
    for (auto& [lo, hi] : ranges_) {
      const std::int64_t len = hi - lo;
      if (len < 2) continue;
      const std::int64_t take = len / 2;
      stolen.ranges_.emplace_back(hi - take, hi);
      hi -= take;
    }
    return stolen;
  }

  void merge(BcBag&& other) {
    if (!shared_) shared_ = other.shared_;
    ranges_.insert(ranges_.end(), other.ranges_.begin(), other.ranges_.end());
    other.ranges_.clear();
  }

  [[nodiscard]] bool empty() const { return ranges_.empty(); }
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& [lo, hi] : ranges_) total += static_cast<std::size_t>(hi - lo);
    return total;
  }

  // Ser hooks: only the interval list has a wire form. The Shared block is
  // pointers into bc_run's stack — the shared-memory accumulator model the
  // kernel is built on — so a deserialized bag re-attaches the process-local
  // block instead. That keeps in-process GLB frames working; BC-over-GLB
  // stays a single-process workload by design (docs/transport.md).
  inline static std::shared_ptr<Shared> process_shared;

  void ser_put(x10rt::ByteBuffer& b) const {
    x10rt::Ser<decltype(ranges_)>::put(b, ranges_);
  }
  static BcBag ser_get(x10rt::ByteBuffer& b) {
    BcBag bag;
    bag.ranges_ = x10rt::Ser<decltype(ranges_)>::get(b);
    bag.shared_ = process_shared;
    return bag;
  }

 private:
  std::shared_ptr<Shared> shared_;
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges_;
};

}  // namespace

BcResult bc_run(const BcParams& params) {
  using namespace apgas;
  const int places = num_places();

  // The paper replicates the graph in every place; sharing one read-only
  // copy in-process models that (DESIGN.md §2).
  const CsrGraph graph = rmat_generate(params.graph);
  const std::int64_t v = graph.num_vertices;
  const std::int64_t nsources = params.sources < 0 ? v : params.sources;

  // Random source permutation (the paper randomizes the partition to
  // mitigate per-vertex cost imbalance).
  std::vector<std::int32_t> sources(static_cast<std::size_t>(v));
  for (std::int64_t i = 0; i < v; ++i) sources[static_cast<std::size_t>(i)] =
      static_cast<std::int32_t>(i);
  std::mt19937_64 rng(params.perm_seed);
  std::shuffle(sources.begin(), sources.end(), rng);
  sources.resize(static_cast<std::size_t>(nsources));

  std::vector<std::vector<double>> acc(
      static_cast<std::size_t>(places),
      std::vector<double>(static_cast<std::size_t>(v), 0.0));
  std::vector<std::int64_t> edges(static_cast<std::size_t>(places), 0);

  const auto t0 = std::chrono::steady_clock::now();
  if (params.use_glb) {
    auto shared = std::make_shared<BcBag::Shared>();
    shared->graph = &graph;
    shared->sources = &sources;
    shared->acc = &acc;
    shared->edges = &edges;
    BcBag::process_shared = shared;  // re-attach point for deserialized bags
    glb::Glb<BcBag> balancer(params.glb);
    balancer.run(BcBag(shared, 0, nsources));
    BcBag::process_shared.reset();
  } else {
    // Static partition: place p owns an equal chunk of the permuted list.
    const std::int64_t chunk = (nsources + places - 1) / places;
    PlaceGroup::world().broadcast([&] {
      const int p = here();
      const std::int64_t lo = p * chunk;
      const std::int64_t hi = std::min<std::int64_t>(nsources, lo + chunk);
      for (std::int64_t i = lo; i < hi; ++i) {
        edges[static_cast<std::size_t>(p)] += brandes_source(
            graph, sources[static_cast<std::size_t>(i)],
            acc[static_cast<std::size_t>(p)]);
      }
    });
  }
  const auto t1 = std::chrono::steady_clock::now();

  BcResult result;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.centrality.assign(static_cast<std::size_t>(v), 0.0);
  for (int p = 0; p < places; ++p) {
    result.edges_traversed += edges[static_cast<std::size_t>(p)];
    for (std::int64_t i = 0; i < v; ++i) {
      result.centrality[static_cast<std::size_t>(i)] +=
          acc[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
    }
  }
  result.medges_per_sec =
      static_cast<double>(result.edges_traversed) / result.seconds / 1e6;
  result.medges_per_sec_per_place = result.medges_per_sec / places;
  result.verified = result.edges_traversed > 0;
  return result;
}

}  // namespace kernels
