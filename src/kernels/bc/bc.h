// Betweenness Centrality (paper §7): Brandes' algorithm on an undirected
// R-MAT graph, the graph replicated at every place and the source vertices
// randomly partitioned across places (per-source computations are local and
// independent). The paper later rebuilt this on GLB [43]; both variants are
// provided so the bench can compare static partitioning against dynamic
// balancing, including the imbalance the paper attributes to variable
// per-source cost.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "glb/glb.h"
#include "kernels/util/rmat.h"

namespace kernels {

struct BcParams {
  RmatParams graph;
  std::int64_t sources = -1;  ///< number of sources (-1 = all vertices)
  bool use_glb = false;       ///< dynamic (GLB [43]) vs static partitioning
  glb::GlbConfig glb;
  std::uint64_t perm_seed = 0xbcbcULL;  ///< source permutation (paper: random
                                        ///< partition mitigates imbalance)
};

struct BcResult {
  double seconds = 0;
  std::int64_t edges_traversed = 0;
  double medges_per_sec = 0;
  double medges_per_sec_per_place = 0;
  std::vector<double> centrality;  ///< summed over all places
  bool verified = false;
};

BcResult bc_run(const BcParams& params);

/// Brandes' dependency accumulation for one source; adds into `centrality`
/// and returns the number of edges traversed.
std::int64_t brandes_source(const CsrGraph& g, std::int32_t source,
                            std::vector<double>& centrality);

/// Reference O(V^3)-ish centrality via per-source BFS path counting, for
/// tiny graphs in tests.
std::vector<double> bc_reference(const CsrGraph& g);

}  // namespace kernels
