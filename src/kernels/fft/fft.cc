#include "kernels/fft/fft.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <numbers>

#include "runtime/api.h"
#include "runtime/dist_rail.h"
#include "runtime/place_group.h"
#include "runtime/team.h"

namespace kernels {

namespace {

using std::int64_t;

/// Distributed transpose of an R x C matrix held as row blocks: `in` is this
/// place's R/P rows (row-major), `out` receives its C/P rows of the
/// transpose. Local pack, All-To-All, local unpack (paper §5.1).
void dist_transpose(apgas::Team& team, const std::vector<Complex>& in,
                    int64_t rows, int64_t cols, std::vector<Complex>& out) {
  const int p = team.size();
  const int me = team.rank();
  const int64_t rs = rows / p;  // my source rows
  const int64_t rd = cols / p;  // my destination rows
  const int64_t block = rs * rd;
  std::vector<Complex> send(static_cast<std::size_t>(block) * p);
  std::vector<Complex> recv(static_cast<std::size_t>(block) * p);
  for (int q = 0; q < p; ++q) {
    Complex* dst = send.data() + static_cast<std::size_t>(q) * block;
    for (int64_t j = 0; j < rd; ++j) {
      const int64_t c = static_cast<int64_t>(q) * rd + j;
      for (int64_t i = 0; i < rs; ++i) {
        dst[j * rs + i] = in[static_cast<std::size_t>(i * cols + c)];
      }
    }
  }
  team.alltoall(send.data(), recv.data(), static_cast<std::size_t>(block));
  out.resize(static_cast<std::size_t>(rd) * rows);
  for (int s = 0; s < p; ++s) {
    const Complex* src = recv.data() + static_cast<std::size_t>(s) * block;
    for (int64_t j = 0; j < rd; ++j) {
      for (int64_t i = 0; i < rs; ++i) {
        out[static_cast<std::size_t>(j * rows + s * rs + i)] =
            src[j * rs + i];
      }
    }
  }
  (void)me;
}

/// Fused steps 2-4 of the transpose method with communication overlap:
/// FFT + twiddle each local row of the n2 x n1 matrix, and ship each row's
/// per-destination slices by one-sided RDMA *as soon as that row is done* —
/// the puts drain on the DMA engine while later rows compute. `stage` is a
/// congruent staging buffer of n/P elements per place.
void fused_fft_twiddle_transpose(apgas::Team& team, std::vector<Complex>& t1,
                                 int64_t n1, int64_t n2, int64_t n,
                                 const apgas::Congruent<Complex>& stage,
                                 std::vector<Complex>& t2) {
  using namespace apgas;
  const int p = team.size();
  const int me = team.rank();
  const int64_t rs = n2 / p;  // my rows of t1
  const int64_t rd = n1 / p;  // my rows of the transposed result
  const int64_t block = rs * rd;
  const int64_t row0 = static_cast<int64_t>(me) * rs;

  team.barrier();  // staging free from any previous pass
  finish([&] {
    for (int64_t j = 0; j < rs; ++j) {
      Complex* row = t1.data() + static_cast<std::size_t>(j) * n1;
      fft_forward(row, static_cast<std::size_t>(n1));
      const double c = static_cast<double>(row0 + j);
      for (int64_t k1 = 0; k1 < n1; ++k1) {
        const double ang = -2.0 * std::numbers::pi * c *
                           static_cast<double>(k1) / static_cast<double>(n);
        row[k1] *= Complex(std::cos(ang), std::sin(ang));
      }
      // Row j is final: overlap its transfer with the remaining rows.
      for (int q = 0; q < p; ++q) {
        async_copy(row + static_cast<std::size_t>(q) * rd,
                   global_rail(stage, team.place_of(q)),
                   static_cast<std::size_t>(me * block + j * rd),
                   static_cast<std::size_t>(rd));
      }
    }
  });
  team.barrier();  // all slices delivered everywhere
  t2.resize(static_cast<std::size_t>(rd) * n2);
  const Complex* recv =
      Runtime::get().congruent().at_place(here(), stage);
  for (int s = 0; s < p; ++s) {
    for (int64_t jd = 0; jd < rd; ++jd) {
      for (int64_t i = 0; i < rs; ++i) {
        t2[static_cast<std::size_t>(jd * n2 + s * rs + i)] =
            recv[static_cast<std::size_t>(s) * block + i * rd + jd];
      }
    }
  }
  team.barrier();  // everyone unpacked; staging reusable
}

/// One distributed forward DFT pass over this place's slice (rows of the
/// n1 x n2 view of the length-N array). Input and output are both the
/// contiguous natural-order block owned by this place.
void dist_fft_pass(apgas::Team& team, std::vector<Complex>& local, int64_t n1,
                   int64_t n2, bool overlap = false,
                   const apgas::Congruent<Complex>* stage = nullptr) {
  const int64_t n = n1 * n2;
  // Step 1: A1[c][r] = x[c + n2*r] — transpose of the n1 x n2 row-major view.
  std::vector<Complex> t1;
  dist_transpose(team, local, n1, n2, t1);
  std::vector<Complex> t2;
  if (overlap) {
    // Steps 2-4 fused: per-row FFT + twiddle with the transpose's RDMA
    // transfers in flight behind the compute (paper §5.2's missing
    // experiment).
    fused_fft_twiddle_transpose(team, t1, n1, n2, n, *stage, t2);
  } else {
    // Step 2: length-n1 FFT along each row of A1 (over r).
    const int64_t rows1 = n2 / team.size();
    for (int64_t j = 0; j < rows1; ++j) {
      fft_forward(t1.data() + static_cast<std::size_t>(j) * n1,
                  static_cast<std::size_t>(n1));
    }
    // Step 3: twiddle — B[c][k1] *= w_N^(c*k1), c the *global* row index.
    const int64_t row0 = team.rank() * rows1;
    for (int64_t j = 0; j < rows1; ++j) {
      const double c = static_cast<double>(row0 + j);
      for (int64_t k1 = 0; k1 < n1; ++k1) {
        const double ang = -2.0 * std::numbers::pi * c *
                           static_cast<double>(k1) / static_cast<double>(n);
        t1[static_cast<std::size_t>(j * n1 + k1)] *=
            Complex(std::cos(ang), std::sin(ang));
      }
    }
    // Step 4: transpose back to n1 x n2.
    dist_transpose(team, t1, n2, n1, t2);
  }
  // Step 5: length-n2 FFT along each row (over c) -> D[k1][k2].
  const int64_t rows2 = n1 / team.size();
  for (int64_t i = 0; i < rows2; ++i) {
    fft_forward(t2.data() + static_cast<std::size_t>(i) * n2,
                static_cast<std::size_t>(n2));
  }
  // Step 6: final transpose: E[k2][k1] row-major is X in natural order
  // (k = k1 + n1*k2 lands at linear index k2*n1 + k1).
  dist_transpose(team, t2, n1, n2, local);
}

void choose_dims(int log2_size, int64_t& n1, int64_t& n2) {
  const int e1 = (log2_size + 1) / 2;
  n1 = int64_t{1} << e1;
  n2 = int64_t{1} << (log2_size - e1);
}

}  // namespace

FftResult fft_run(const FftParams& params) {
  using namespace apgas;
  const int places = num_places();
  assert((places & (places - 1)) == 0 && "FFT requires power-of-two places");
  int64_t n1, n2;
  choose_dims(params.log2_size, n1, n2);
  const int64_t n = n1 * n2;
  assert(n2 >= places && n1 >= places && "too many places for this size");

  using TimePoint = std::chrono::steady_clock::time_point;
  // Staging arena for the overlapped transpose (one slice per place).
  apgas::Congruent<Complex> stage{};
  if (params.overlap) {
    stage = apgas::Runtime::get().congruent().alloc<Complex>(
        static_cast<std::size_t>(n / places));
  }

  std::vector<double> errors(static_cast<std::size_t>(places), 0.0);
  std::vector<TimePoint> starts(static_cast<std::size_t>(places));
  std::vector<TimePoint> stops(static_cast<std::size_t>(places));
  std::mutex mu;

  PlaceGroup::world().broadcast([&] {
    Team team = Team::world();
    const int64_t slice = n / places;
    const int64_t base = slice * here();
    std::vector<Complex> local(static_cast<std::size_t>(slice));
    auto fill = [&](int64_t g) {
      // Deterministic pseudo-random input.
      std::uint64_t h = static_cast<std::uint64_t>(g) * 0x9e3779b97f4a7c15ULL;
      h ^= h >> 29;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 32;
      const double re = static_cast<double>(h & 0xffffff) / 0x1000000 - 0.5;
      const double im =
          static_cast<double>((h >> 24) & 0xffffff) / 0x1000000 - 0.5;
      return Complex(re, im);
    };
    for (int64_t i = 0; i < slice; ++i) local[static_cast<std::size_t>(i)] = fill(base + i);

    team.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    dist_fft_pass(team, local, n1, n2, params.overlap, &stage);
    team.barrier();
    const auto t1 = std::chrono::steady_clock::now();

    // Verification: inverse via the conjugation identity, still distributed.
    for (auto& v : local) v = std::conj(v);
    dist_fft_pass(team, local, n1, n2, params.overlap, &stage);
    double err = 0;
    const double inv = 1.0 / static_cast<double>(n);
    for (int64_t i = 0; i < slice; ++i) {
      const Complex back =
          std::conj(local[static_cast<std::size_t>(i)]) * inv;
      err = std::max(err, std::abs(back - fill(base + i)));
    }
    {
      std::scoped_lock lock(mu);
      errors[static_cast<std::size_t>(here())] = err;
      starts[static_cast<std::size_t>(here())] = t0;
      stops[static_cast<std::size_t>(here())] = t1;
    }
  });

  FftResult result;
  TimePoint first = starts[0];
  TimePoint last = stops[0];
  for (int p = 0; p < places; ++p) {
    first = std::min(first, starts[static_cast<std::size_t>(p)]);
    last = std::max(last, stops[static_cast<std::size_t>(p)]);
    result.max_roundtrip_error =
        std::max(result.max_roundtrip_error, errors[static_cast<std::size_t>(p)]);
  }
  result.seconds = std::chrono::duration<double>(last - first).count();
  const double flops = 5.0 * static_cast<double>(n) * params.log2_size;
  result.gflops = flops / result.seconds / 1e9;
  result.gflops_per_place = result.gflops / places;
  result.verified = result.max_roundtrip_error < 1e-9;
  return result;
}

std::vector<Complex> fft_global(const std::vector<Complex>& x) {
  using namespace apgas;
  const int places = num_places();
  int64_t n = static_cast<int64_t>(x.size());
  int log2n = 0;
  while ((int64_t{1} << log2n) < n) ++log2n;
  assert((int64_t{1} << log2n) == n);
  int64_t n1, n2;
  choose_dims(log2n, n1, n2);

  std::vector<Complex> out(x.size());
  std::mutex mu;
  PlaceGroup::world().broadcast([&] {
    Team team = Team::world();
    const int64_t slice = n / places;
    const int64_t base = slice * here();
    std::vector<Complex> local(
        x.begin() + static_cast<std::ptrdiff_t>(base),
        x.begin() + static_cast<std::ptrdiff_t>(base + slice));
    dist_fft_pass(team, local, n1, n2);
    std::scoped_lock lock(mu);
    std::copy(local.begin(), local.end(),
              out.begin() + static_cast<std::ptrdiff_t>(base));
  });
  return out;
}

}  // namespace kernels
