// Global FFT — HPCC benchmark (paper §5.1): 1D discrete Fourier transform of
// a double-complex array evenly distributed across places, computed with the
// transpose method: global transpose, per-row FFTs, global transpose with
// twiddle multiplication, per-row FFTs, global transpose. Each global
// transpose is local data shuffling + an All-To-All collective + local
// shuffling, exactly the paper's decomposition.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/util/fft1d.h"

namespace kernels {

struct FftParams {
  int log2_size = 16;  ///< total N = 2^log2_size complex elements
  /// Overlap the second global transpose with the row FFTs + twiddles: each
  /// row's slice ships by RDMA as soon as that row is transformed, while
  /// later rows are still computing. The paper lists this overlap as the
  /// experiment they lacked machine time for (§5.2).
  bool overlap = false;
};

struct FftResult {
  double seconds = 0;
  double gflops = 0;  ///< 5 N log2(N) / t, the HPCC convention
  double gflops_per_place = 0;
  double max_roundtrip_error = 0;
  bool verified = false;
};

/// Runs the distributed FFT (forward, then an inverse round trip for
/// verification). Requires power-of-two places with P^2 <= N.
FftResult fft_run(const FftParams& params);

/// Distributed forward DFT of the flat array `x` (length 2^log2_size),
/// returned gathered in natural order — used by tests against dft_naive.
std::vector<Complex> fft_global(const std::vector<Complex>& x);

}  // namespace kernels
