// The 2D block-cyclic distribution used by Global HPL (paper §5.1): global
// block (I, J) of size nb x nb lives at process-grid position
// (I mod Pr, J mod Pc); each place packs its blocks densely in block order.
// Local row/column indices are monotone in their global counterparts, so
// trailing submatrices are contiguous tails of the local storage.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace kernels {

struct BlockCyclic {
  int n = 0, nb = 0, pr_grid = 1, pc_grid = 1, pr = 0, pc = 0;
  int my_rows = 0, my_cols = 0;
  std::vector<double> a;  // row-major my_rows x my_cols

  /// Sets up the local shape and fills entries from `gen(gi, gj)`.
  template <typename Gen>
  void init(int n_, int nb_, int prg, int pcg, int pr_, int pc_, Gen&& gen) {
    n = n_;
    nb = nb_;
    pr_grid = prg;
    pc_grid = pcg;
    pr = pr_;
    pc = pc_;
    my_rows = count_owned(n, nb, prg, pr);
    my_cols = count_owned(n, nb, pcg, pc);
    a.assign(static_cast<std::size_t>(my_rows) * my_cols, 0.0);
    for (int li = 0; li < my_rows; ++li) {
      const int gi = global_row(li);
      for (int lj = 0; lj < my_cols; ++lj) {
        at(li, lj) = gen(gi, global_col(lj));
      }
    }
  }

  /// Rows (or columns) of an n-vector owned by grid position `me` of `grid`.
  static int count_owned(int n, int nb, int grid, int me) {
    int count = 0;
    for (int blk = 0; blk * nb < n; ++blk) {
      if (blk % grid == me) count += std::min(nb, n - blk * nb);
    }
    return count;
  }

  [[nodiscard]] bool owns_row(int gi) const {
    return (gi / nb) % pr_grid == pr;
  }
  [[nodiscard]] bool owns_col(int gj) const {
    return (gj / nb) % pc_grid == pc;
  }
  [[nodiscard]] int local_row(int gi) const {
    return (gi / nb) / pr_grid * nb + gi % nb;
  }
  [[nodiscard]] int local_col(int gj) const {
    return (gj / nb) / pc_grid * nb + gj % nb;
  }
  [[nodiscard]] int global_row(int li) const {
    return ((li / nb) * pr_grid + pr) * nb + li % nb;
  }
  [[nodiscard]] int global_col(int lj) const {
    return ((lj / nb) * pc_grid + pc) * nb + lj % nb;
  }
  double& at(int li, int lj) {
    return a[static_cast<std::size_t>(li) * my_cols + lj];
  }
  [[nodiscard]] double get(int li, int lj) const {
    return a[static_cast<std::size_t>(li) * my_cols + lj];
  }

  /// First local row with global index >= gi (local rows are sorted by
  /// global index, so trailing submatrices are contiguous tails).
  [[nodiscard]] int first_local_row_ge(int gi) const {
    int li = 0;
    while (li < my_rows && global_row(li) < gi) ++li;
    return li;
  }
  [[nodiscard]] int first_local_col_ge(int gj) const {
    int lj = 0;
    while (lj < my_cols && global_col(lj) < gj) ++lj;
    return lj;
  }
};

/// Near-square process grid factorization: Pr <= Pc, Pr * Pc = places.
inline void choose_process_grid(int places, int& pr, int& pc) {
  pr = 1;
  for (int f = 1; f * f <= places; ++f) {
    if (places % f == 0) pr = f;
  }
  pc = places / pr;
}

}  // namespace kernels
