#include "kernels/hpl/hpl.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "kernels/hpl/block_cyclic.h"
#include "kernels/util/dgemm.h"
#include "runtime/api.h"
#include "runtime/place_group.h"
#include "runtime/team.h"

namespace kernels {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct PivotEntry {
  double absval = -1.0;
  int row = -1;
};

}  // namespace

double hpl_entry(std::uint64_t seed, int i, int j) {
  const std::uint64_t h = mix(seed ^ (static_cast<std::uint64_t>(i) << 24) ^
                              static_cast<std::uint64_t>(j));
  return static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53) - 0.5;
}

double hpl_rhs(std::uint64_t seed, int i) {
  return hpl_entry(seed * 31 + 17, i, 1 << 20);
}

HplResult hpl_run(const HplParams& params) {
  using namespace apgas;
  const int places = num_places();
  int prg, pcg;
  choose_process_grid(places, prg, pcg);
  const int n = params.n;
  const int nb = params.nb;

  auto locals = std::make_shared<std::vector<std::unique_ptr<BlockCyclic>>>();
  locals->resize(static_cast<std::size_t>(places));
  auto pivots = std::make_shared<std::vector<int>>(static_cast<std::size_t>(n));
  auto x_dist = std::make_shared<std::vector<double>>();
  using TimePoint = std::chrono::steady_clock::time_point;
  std::vector<TimePoint> starts(static_cast<std::size_t>(places));
  std::vector<TimePoint> stops(static_cast<std::size_t>(places));
  std::mutex mu;

  PlaceGroup::world().broadcast([&, locals, pivots, x_dist] {
    const int me = here();
    const int pr = me / pcg;  // row-major place grid
    const int pc = me % pcg;
    {
      auto local = std::make_unique<BlockCyclic>();
      local->init(n, nb, prg, pcg, pr, pc, [&params](int gi, int gj) {
        return hpl_entry(params.seed, gi, gj);
      });
      std::scoped_lock lock(mu);
      (*locals)[static_cast<std::size_t>(me)] = std::move(local);
    }
    Team world = Team::world();
    world.barrier();  // every place's Local exists
    BlockCyclic& mine = *(*locals)[static_cast<std::size_t>(me)];
    Team row_team = world.split(pr, pc);          // rank == pc
    Team col_team = world.split(1000 + pc, pr);   // rank == pr

    std::vector<int> my_pivots(static_cast<std::size_t>(n));
    const auto t0 = std::chrono::steady_clock::now();
    const int nblocks = (n + nb - 1) / nb;
    for (int kb = 0; kb < nblocks; ++kb) {
      const int col0 = kb * nb;
      const int w = std::min(nb, n - col0);
      const int panel_end = col0 + w;
      const int pc_own = kb % pcg;
      const int pr_own = kb % prg;

      // --- panel factorization with row-partial pivoting ------------------
      for (int j = col0; j < panel_end; ++j) {
        int piv_row = j;
        if (pc == pc_own) {
          // Pivot search down the column: local argmax, then a maxloc over
          // the column team (an allgather-based reduction).
          PivotEntry local_best;
          const int lj = mine.local_col(j);
          for (int li = mine.first_local_row_ge(j); li < mine.my_rows; ++li) {
            const double v = std::abs(mine.get(li, lj));
            if (v > local_best.absval) {
              local_best = PivotEntry{v, mine.global_row(li)};
            }
          }
          std::vector<PivotEntry> all(static_cast<std::size_t>(prg));
          col_team.allgather(&local_best, all.data(), 1);
          PivotEntry best;
          for (const auto& e : all) {
            if (e.absval > best.absval) best = e;
          }
          piv_row = best.row;
        }
        // Everyone in the process row learns the pivot from the pc_own
        // member (rank == pc in the row team).
        row_team.bcast(pc_own, &piv_row, 1);
        my_pivots[static_cast<std::size_t>(j)] = piv_row;
        if (me == 0) (*pivots)[static_cast<std::size_t>(j)] = piv_row;

        // Global row swap j <-> piv_row: each process column swaps its
        // segments; cross-place swaps fetch the peer segment, sync, write.
        if (piv_row != j) {
          const int pr_j = (j / nb) % prg;
          const int pr_p = (piv_row / nb) % prg;
          if (pr_j == pr_p) {
            if (pr == pr_j) {
              const int a_ = mine.local_row(j);
              const int b_ = mine.local_row(piv_row);
              for (int lj2 = 0; lj2 < mine.my_cols; ++lj2) {
                std::swap(mine.at(a_, lj2), mine.at(b_, lj2));
              }
            }
            col_team.barrier();
          } else if (pr == pr_j || pr == pr_p) {
            const int peer_pr = pr == pr_j ? pr_p : pr_j;
            const int peer_place = peer_pr * pcg + pc;
            const int peer_grow = pr == pr_j ? piv_row : j;
            const int my_grow = pr == pr_j ? j : piv_row;
            // Fetch the peer's segment of the other row (a "get", the
            // paper's FINISH_HERE idiom via the blocking at).
            std::vector<double> theirs =
                at(peer_place, [locals, peer_place, peer_grow] {
                  BlockCyclic& peer = *(*locals)[static_cast<std::size_t>(peer_place)];
                  const int li = peer.local_row(peer_grow);
                  std::vector<double> seg(static_cast<std::size_t>(peer.my_cols));
                  for (int lj2 = 0; lj2 < peer.my_cols; ++lj2) {
                    seg[static_cast<std::size_t>(lj2)] = peer.get(li, lj2);
                  }
                  return seg;
                });
            col_team.barrier();  // both fetches done before either write
            const int li = mine.local_row(my_grow);
            for (int lj2 = 0; lj2 < mine.my_cols; ++lj2) {
              mine.at(li, lj2) = theirs[static_cast<std::size_t>(lj2)];
            }
          } else {
            col_team.barrier();
          }
        } else {
          col_team.barrier();
        }

        // Scale the column below the diagonal and rank-1-update the rest of
        // the panel (column places only). The pivot row segment is broadcast
        // down the column first.
        if (pc == pc_own) {
          std::vector<double> rowbuf(static_cast<std::size_t>(panel_end - j));
          const int pr_diag = (j / nb) % prg;
          if (pr == pr_diag) {
            const int li = mine.local_row(j);
            for (int jj = j; jj < panel_end; ++jj) {
              rowbuf[static_cast<std::size_t>(jj - j)] =
                  mine.get(li, mine.local_col(jj));
            }
          }
          col_team.bcast(pr_diag, rowbuf.data(), rowbuf.size());
          const double pivot = rowbuf[0];
          const int lj = mine.local_col(j);
          for (int li = mine.first_local_row_ge(j + 1); li < mine.my_rows;
               ++li) {
            const double mult = mine.get(li, lj) / pivot;
            mine.at(li, lj) = mult;
            for (int jj = j + 1; jj < panel_end; ++jj) {
              mine.at(li, mine.local_col(jj)) -=
                  mult * rowbuf[static_cast<std::size_t>(jj - j)];
            }
          }
        }
      }

      // --- L panel broadcast along process rows ---------------------------
      std::vector<double> lbuf(
          static_cast<std::size_t>(mine.my_rows) * w, 0.0);
      if (pc == pc_own) {
        for (int li = 0; li < mine.my_rows; ++li) {
          for (int jj = 0; jj < w; ++jj) {
            lbuf[static_cast<std::size_t>(li) * w + jj] =
                mine.get(li, mine.local_col(col0 + jj));
          }
        }
      }
      row_team.bcast(pc_own, lbuf.data(), lbuf.size());

      // --- U block row: dtrsm at the owner process row, broadcast down ----
      const int tc0 = mine.first_local_col_ge(panel_end);
      const int tc = mine.my_cols - tc0;  // my trailing columns
      std::vector<double> ubuf(static_cast<std::size_t>(w) *
                               std::max(tc, 0));
      if (pr == pr_own && tc > 0) {
        // L11 lives in lbuf rows whose global row is in [col0, panel_end).
        std::vector<double> l11(static_cast<std::size_t>(w) * w);
        for (int i = 0; i < w; ++i) {
          const int li = mine.local_row(col0 + i);
          for (int jj = 0; jj < w; ++jj) {
            l11[static_cast<std::size_t>(i) * w + jj] =
                lbuf[static_cast<std::size_t>(li) * w + jj];
          }
        }
        for (int i = 0; i < w; ++i) {
          const int li = mine.local_row(col0 + i);
          for (int c = 0; c < tc; ++c) {
            ubuf[static_cast<std::size_t>(i) * tc + c] =
                mine.get(li, tc0 + c);
          }
        }
        dtrsm_lower_unit(static_cast<std::size_t>(w),
                         static_cast<std::size_t>(tc), l11.data(),
                         static_cast<std::size_t>(w), ubuf.data(),
                         static_cast<std::size_t>(tc));
        for (int i = 0; i < w; ++i) {
          const int li = mine.local_row(col0 + i);
          for (int c = 0; c < tc; ++c) {
            mine.at(li, tc0 + c) = ubuf[static_cast<std::size_t>(i) * tc + c];
          }
        }
      }
      if (tc > 0) {
        col_team.bcast(pr_own, ubuf.data(), ubuf.size());
      }

      // --- trailing Schur-complement update (local dgemm) -----------------
      const int tr0 = mine.first_local_row_ge(panel_end);
      const int tr = mine.my_rows - tr0;
      if (tr > 0 && tc > 0) {
        dgemm_sub(static_cast<std::size_t>(tr), static_cast<std::size_t>(tc),
                  static_cast<std::size_t>(w),
                  lbuf.data() + static_cast<std::size_t>(tr0) * w,
                  static_cast<std::size_t>(w), ubuf.data(),
                  static_cast<std::size_t>(tc),
                  mine.a.data() + static_cast<std::size_t>(tr0) * mine.my_cols +
                      tc0,
                  static_cast<std::size_t>(mine.my_cols));
      }
      world.barrier();
    }
    const auto t1 = std::chrono::steady_clock::now();
    {
      std::scoped_lock lock(mu);
      starts[static_cast<std::size_t>(me)] = t0;
      stops[static_cast<std::size_t>(me)] = t1;
    }

    // --- distributed triangular solves (L y = Pb, then U x = y) ----------
    // The RHS is replicated; per block, partial inner products from every
    // owner fan in through a small All-Reduce, the diagonal owner solves
    // the w x w block, and the solution block is broadcast — the standard
    // replicated-RHS substitution for block-cyclic factors.
    std::vector<double> pb(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      pb[static_cast<std::size_t>(i)] = hpl_rhs(params.seed, i);
    }
    for (int j = 0; j < n; ++j) {
      std::swap(pb[static_cast<std::size_t>(j)],
                pb[static_cast<std::size_t>(my_pivots[static_cast<std::size_t>(j)])]);
    }
    std::vector<double> y(static_cast<std::size_t>(n), 0.0);
    std::vector<double> acc(static_cast<std::size_t>(n), 0.0);
    for (int kb = 0; kb < nblocks; ++kb) {
      const int row0 = kb * nb;
      const int w = std::min(nb, n - row0);
      world.allreduce(acc.data() + row0, static_cast<std::size_t>(w),
                      ReduceOp::kSum);
      const int diag_place = (kb % prg) * pcg + kb % pcg;
      if (me == diag_place) {
        for (int i = row0; i < row0 + w; ++i) {
          double v = pb[static_cast<std::size_t>(i)] -
                     acc[static_cast<std::size_t>(i)];
          const int li = mine.local_row(i);
          for (int j = row0; j < i; ++j) {
            v -= mine.get(li, mine.local_col(j)) *
                 y[static_cast<std::size_t>(j)];
          }
          y[static_cast<std::size_t>(i)] = v;  // unit diagonal
        }
      }
      world.bcast(diag_place, y.data() + row0, static_cast<std::size_t>(w));
      if (pc == kb % pcg) {
        for (int li = mine.first_local_row_ge(row0 + w); li < mine.my_rows;
             ++li) {
          double sum = 0;
          for (int j = row0; j < row0 + w; ++j) {
            sum += mine.get(li, mine.local_col(j)) *
                   y[static_cast<std::size_t>(j)];
          }
          acc[static_cast<std::size_t>(mine.global_row(li))] += sum;
        }
      }
    }
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    std::fill(acc.begin(), acc.end(), 0.0);
    for (int kb = nblocks - 1; kb >= 0; --kb) {
      const int row0 = kb * nb;
      const int w = std::min(nb, n - row0);
      world.allreduce(acc.data() + row0, static_cast<std::size_t>(w),
                      ReduceOp::kSum);
      const int diag_place = (kb % prg) * pcg + kb % pcg;
      if (me == diag_place) {
        for (int i = row0 + w - 1; i >= row0; --i) {
          double v = y[static_cast<std::size_t>(i)] -
                     acc[static_cast<std::size_t>(i)];
          const int li = mine.local_row(i);
          for (int j = i + 1; j < row0 + w; ++j) {
            v -= mine.get(li, mine.local_col(j)) *
                 x[static_cast<std::size_t>(j)];
          }
          x[static_cast<std::size_t>(i)] =
              v / mine.get(li, mine.local_col(i));
        }
      }
      world.bcast(diag_place, x.data() + row0, static_cast<std::size_t>(w));
      if (pc == kb % pcg) {
        // Contributions of this solved block to the rows above it.
        const int limit = mine.first_local_row_ge(row0);
        for (int li = 0; li < limit; ++li) {
          double sum = 0;
          for (int j = row0; j < row0 + w; ++j) {
            sum += mine.get(li, mine.local_col(j)) *
                   x[static_cast<std::size_t>(j)];
          }
          acc[static_cast<std::size_t>(mine.global_row(li))] += sum;
        }
      }
    }
    if (me == 0) {
      std::scoped_lock lock(mu);
      *x_dist = x;
    }
  });

  HplResult result;
  result.pr = prg;
  result.pc = pcg;
  {
    // Global span: earliest start to latest finish across places.
    TimePoint first = starts[0];
    TimePoint last = stops[0];
    for (int p = 1; p < places; ++p) {
      first = std::min(first, starts[static_cast<std::size_t>(p)]);
      last = std::max(last, stops[static_cast<std::size_t>(p)]);
    }
    result.seconds = std::chrono::duration<double>(last - first).count();
  }
  const double dn = n;
  result.gflops = (2.0 / 3.0 * dn * dn * dn + 1.5 * dn * dn) /
                  result.seconds / 1e9;
  result.gflops_per_place = result.gflops / places;

  // --- verification (untimed): gather factors, solve, HPL residual --------
  auto factored = [&](int gi, int gj) {
    const int owner = ((gi / nb) % prg) * pcg + (gj / nb) % pcg;
    const BlockCyclic& l = *(*locals)[static_cast<std::size_t>(owner)];
    return l.get(l.local_row(gi), l.local_col(gj));
  };
  // Solve P A x = P b with L y = Pb, U x = y.
  std::vector<double> b(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) b[static_cast<std::size_t>(i)] = hpl_rhs(params.seed, i);
  std::vector<double> pb = b;
  for (int j = 0; j < n; ++j) {
    std::swap(pb[static_cast<std::size_t>(j)],
              pb[static_cast<std::size_t>((*pivots)[static_cast<std::size_t>(j)])]);
  }
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    double acc = pb[static_cast<std::size_t>(i)];
    for (int j = 0; j < i; ++j) acc -= factored(i, j) * y[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;  // unit diagonal
  }
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    double acc = y[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j) acc -= factored(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = acc / factored(i, i);
  }
  // The distributed solve must agree with this gathered reference solve.
  for (int i = 0; i < n; ++i) {
    result.solve_agreement = std::max(
        result.solve_agreement,
        std::abs(x[static_cast<std::size_t>(i)] -
                 (*x_dist)[static_cast<std::size_t>(i)]));
  }
  // Scaled residual against the *original* system, using the distributed x.
  x = *x_dist;
  double r_inf = 0, a_inf = 0, x_inf = 0, b_inf = 0;
  for (int i = 0; i < n; ++i) {
    double r = -b[static_cast<std::size_t>(i)];
    double row_sum = 0;
    for (int j = 0; j < n; ++j) {
      const double aij = hpl_entry(params.seed, i, j);
      r += aij * x[static_cast<std::size_t>(j)];
      row_sum += std::abs(aij);
    }
    r_inf = std::max(r_inf, std::abs(r));
    a_inf = std::max(a_inf, row_sum);
    x_inf = std::max(x_inf, std::abs(x[static_cast<std::size_t>(i)]));
    b_inf = std::max(b_inf, std::abs(b[static_cast<std::size_t>(i)]));
  }
  const double eps = 2.220446049250313e-16;
  result.residual = r_inf / (eps * (a_inf * x_inf + b_inf) * n);
  result.verified = result.residual < 16.0 && result.solve_agreement < 1e-8;
  return result;
}

}  // namespace kernels
