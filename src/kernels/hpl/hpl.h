// Global HPL — HPCC benchmark (paper §5.1): LU factorization with row
// partial pivoting of a dense linear system. Mirrors the paper's X10
// implementation: a two-dimensional block-cyclic data distribution over a
// Pr x Pc process grid, a right-looking factorization, row swaps as message
// exchanges (the FINISH_ASYNC/FINISH_HERE idioms), and teams for pivot
// search and row/column broadcasts. The local BLAS-3 kernel is our dgemm
// stand-in for ESSL (DESIGN.md §2).
#pragma once

#include <cstdint>

namespace kernels {

struct HplParams {
  int n = 256;    ///< global matrix order
  int nb = 32;    ///< block size (paper used 360 on Power 775)
  std::uint64_t seed = 0x4a11ULL;
};

struct HplResult {
  double seconds = 0;       ///< factorization time
  double gflops = 0;        ///< (2/3 n^3 + 3/2 n^2) / t
  double gflops_per_place = 0;
  double residual = 0;      ///< scaled HPL residual of the solved system
  /// max |x_distributed - x_reference|: the distributed block-fan-in solve
  /// cross-checked against a gathered sequential substitution.
  double solve_agreement = 0;
  bool verified = false;    ///< residual < 16 (HPL threshold) and solves agree
  int pr = 0, pc = 0;       ///< process grid actually used
};

/// Factorizes and solves a pseudo-random system; call from place 0.
HplResult hpl_run(const HplParams& params);

/// Deterministic matrix/vector entries (also used by verification).
double hpl_entry(std::uint64_t seed, int i, int j);
double hpl_rhs(std::uint64_t seed, int i);

}  // namespace kernels
