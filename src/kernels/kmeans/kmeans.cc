#include "kernels/kmeans/kmeans.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "runtime/api.h"
#include "runtime/place_group.h"
#include "runtime/team.h"

namespace kernels {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Initial centroids are the first `clusters` points (standard Forgy-like
/// deterministic choice so every place agrees without communication).
std::vector<double> initial_centroids(const KmeansParams& p) {
  std::vector<double> c(static_cast<std::size_t>(p.clusters) * p.dim);
  for (int k = 0; k < p.clusters; ++k) {
    for (int d = 0; d < p.dim; ++d) {
      c[static_cast<std::size_t>(k) * p.dim + d] =
          kmeans_point_coord(p.seed, k, d);
    }
  }
  return c;
}

/// One classification pass over [lo, hi): accumulates sums/counts/inertia.
void classify(const KmeansParams& p, std::int64_t lo, std::int64_t hi,
              const std::vector<double>& centroids, std::vector<double>& sums,
              std::vector<std::int64_t>& counts, double& inertia) {
  const int dim = p.dim;
  std::vector<double> pt(static_cast<std::size_t>(dim));
  for (std::int64_t g = lo; g < hi; ++g) {
    for (int d = 0; d < dim; ++d) pt[static_cast<std::size_t>(d)] =
        kmeans_point_coord(p.seed, g, d);
    double best = std::numeric_limits<double>::max();
    int best_k = 0;
    for (int k = 0; k < p.clusters; ++k) {
      const double* c = centroids.data() + static_cast<std::size_t>(k) * dim;
      double dist = 0;
      for (int d = 0; d < dim; ++d) {
        const double diff = pt[static_cast<std::size_t>(d)] - c[d];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_k = k;
      }
    }
    inertia += best;
    ++counts[static_cast<std::size_t>(best_k)];
    double* s = sums.data() + static_cast<std::size_t>(best_k) * dim;
    for (int d = 0; d < dim; ++d) s[d] += pt[static_cast<std::size_t>(d)];
  }
}

/// Averages sums/counts into new centroids (empty clusters keep position).
void update_centroids(const KmeansParams& p, const std::vector<double>& sums,
                      const std::vector<std::int64_t>& counts,
                      std::vector<double>& centroids) {
  for (int k = 0; k < p.clusters; ++k) {
    const auto n = counts[static_cast<std::size_t>(k)];
    if (n == 0) continue;
    for (int d = 0; d < p.dim; ++d) {
      centroids[static_cast<std::size_t>(k) * p.dim + d] =
          sums[static_cast<std::size_t>(k) * p.dim + d] /
          static_cast<double>(n);
    }
  }
}

bool inertia_monotone(const std::vector<double>& inertia) {
  for (std::size_t i = 1; i < inertia.size(); ++i) {
    if (inertia[i] > inertia[i - 1] * (1 + 1e-9)) return false;
  }
  return true;
}

}  // namespace

double kmeans_point_coord(std::uint64_t seed, std::int64_t global_id, int d) {
  const std::uint64_t h =
      mix(seed ^ mix(static_cast<std::uint64_t>(global_id) * 1315423911ULL +
                     static_cast<std::uint64_t>(d)));
  return static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
}

KmeansResult kmeans_run(const KmeansParams& params) {
  using namespace apgas;
  const int places = num_places();
  const std::int64_t per_place = params.points_per_place;

  auto centroids = std::make_shared<std::vector<double>>(
      initial_centroids(params));
  auto inertia_hist = std::make_shared<std::vector<double>>();
  std::mutex mu;

  const auto t0 = std::chrono::steady_clock::now();
  PlaceGroup::world().broadcast([&params, centroids, inertia_hist, &mu,
                                 per_place] {
    Team team = Team::world();
    // Every place keeps its own centroid copy; all copies stay identical
    // because the All-Reduces return identical sums everywhere.
    std::vector<double> local_centroids = *centroids;
    const std::int64_t lo = here() * per_place;
    const std::int64_t hi = lo + per_place;
    for (int it = 0; it < params.iterations; ++it) {
      std::vector<double> sums(
          static_cast<std::size_t>(params.clusters) * params.dim, 0.0);
      std::vector<std::int64_t> counts(
          static_cast<std::size_t>(params.clusters), 0);
      double inertia = 0;
      classify(params, lo, hi, local_centroids, sums, counts, inertia);
      // The paper's two All-Reduce collectives per iteration.
      team.allreduce(sums.data(), sums.size(), ReduceOp::kSum);
      team.allreduce(counts.data(), counts.size(), ReduceOp::kSum);
      team.allreduce(&inertia, 1, ReduceOp::kSum);
      update_centroids(params, sums, counts, local_centroids);
      if (here() == 0) {
        std::scoped_lock lock(mu);
        inertia_hist->push_back(inertia);
      }
    }
    if (here() == 0) {
      std::scoped_lock lock(mu);
      *centroids = local_centroids;
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  KmeansResult result;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.centroids = *centroids;
  result.inertia_per_iter = *inertia_hist;
  result.verified = inertia_monotone(result.inertia_per_iter);
  (void)places;
  return result;
}

KmeansResult kmeans_sequential(const KmeansParams& params, int total_points) {
  auto centroids = initial_centroids(params);
  KmeansResult result;
  const auto t0 = std::chrono::steady_clock::now();
  for (int it = 0; it < params.iterations; ++it) {
    std::vector<double> sums(
        static_cast<std::size_t>(params.clusters) * params.dim, 0.0);
    std::vector<std::int64_t> counts(static_cast<std::size_t>(params.clusters),
                                     0);
    double inertia = 0;
    classify(params, 0, total_points, centroids, sums, counts, inertia);
    update_centroids(params, sums, counts, centroids);
    result.inertia_per_iter.push_back(inertia);
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.centroids = std::move(centroids);
  result.verified = inertia_monotone(result.inertia_per_iter);
  return result;
}

}  // namespace kernels
