// K-Means clustering, Lloyd's algorithm (paper §7): points are partitioned
// across places; each iteration classifies locally by nearest centroid,
// computes per-place partial sums, and merges them with two All-Reduce
// collectives (sums and counts) to produce next-iteration centroids.
#pragma once

#include <cstdint>
#include <vector>

namespace kernels {

struct KmeansParams {
  int points_per_place = 4000;  // paper: 40000 per place
  int clusters = 64;            // paper: 4096
  int dim = 12;
  int iterations = 5;
  std::uint64_t seed = 42;
};

struct KmeansResult {
  double seconds = 0;
  std::vector<double> centroids;  // clusters x dim, final
  std::vector<double> inertia_per_iter;
  bool verified = false;  ///< inertia monotone non-increasing (Lloyd's)
};

KmeansResult kmeans_run(const KmeansParams& params);

/// Single-threaded reference (same deterministic point/centroid generation);
/// used by tests to check the distributed run is exact.
KmeansResult kmeans_sequential(const KmeansParams& params, int total_points);

/// Deterministic synthetic point cloud: point `global_id`, dimension d.
double kmeans_point_coord(std::uint64_t seed, std::int64_t global_id, int d);

}  // namespace kernels
