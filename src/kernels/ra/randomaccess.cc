#include "kernels/ra/randomaccess.h"

#include <cassert>
#include <chrono>

#include "kernels/util/hpcc_rng.h"
#include "runtime/dist_rail.h"
#include "runtime/place_group.h"
#include "runtime/team.h"

namespace kernels {

namespace {

struct Shared {
  apgas::Congruent<std::uint64_t> table;
  std::uint64_t per_place = 0;
  std::uint64_t total = 0;
  std::uint64_t updates_per_place = 0;
  int log2_per_place = 0;
};

void do_updates(const Shared& sh, bool verify_pass) {
  using namespace apgas;
  auto& space = Runtime::get().congruent();
  const int p = here();
  // Each place generates its slice of the global update stream via the
  // HPCC jump-ahead, then fires one-sided XORs at whoever owns the index.
  std::uint64_t ran = hpcc_starts(
      static_cast<std::int64_t>(sh.updates_per_place) * p);
  std::vector<GlobalRail<std::uint64_t>> rails(
      static_cast<std::size_t>(num_places()));
  for (int q = 0; q < num_places(); ++q) {
    rails[static_cast<std::size_t>(q)] = global_rail(sh.table, q);
  }
  (void)space;
  (void)verify_pass;
  for (std::uint64_t i = 0; i < sh.updates_per_place; ++i) {
    ran = hpcc_next(ran);
    const std::uint64_t idx = ran & (sh.total - 1);
    const int owner = static_cast<int>(idx >> sh.log2_per_place);
    const std::uint64_t offset = idx & (sh.per_place - 1);
    remote_xor(rails[static_cast<std::size_t>(owner)], offset, ran);
  }
}

}  // namespace

RaResult randomaccess_run(const RaParams& params) {
  using namespace apgas;
  const int places = num_places();
  assert((places & (places - 1)) == 0 &&
         "RandomAccess requires a power-of-two place count (paper §5.2)");

  Shared sh;
  sh.log2_per_place = params.log2_table_per_place;
  sh.per_place = std::uint64_t{1} << params.log2_table_per_place;
  sh.total = sh.per_place * static_cast<std::uint64_t>(places);
  sh.updates_per_place = sh.per_place *
                         static_cast<std::uint64_t>(params.updates_per_entry);
  sh.table = Runtime::get().congruent().alloc<std::uint64_t>(
      static_cast<std::size_t>(sh.per_place));

  // Initialize table[i] = global index i, everywhere.
  PlaceGroup::world().broadcast([&sh] {
    auto* mine = Runtime::get().congruent().at_place(here(), sh.table);
    const std::uint64_t base =
        static_cast<std::uint64_t>(here()) * sh.per_place;
    for (std::uint64_t i = 0; i < sh.per_place; ++i) mine[i] = base + i;
  });

  const auto t0 = std::chrono::steady_clock::now();
  PlaceGroup::world().broadcast([&sh] {
    Team team = Team::world();
    team.barrier();
    do_updates(sh, false);
    team.barrier();
  });
  const auto t1 = std::chrono::steady_clock::now();

  // HPCC verification: replay the identical update stream — XOR cancels —
  // and count entries that did not return to their initial value.
  PlaceGroup::world().broadcast([&sh] {
    Team team = Team::world();
    team.barrier();
    do_updates(sh, true);
    team.barrier();
  });
  std::uint64_t errors = 0;
  for (int q = 0; q < places; ++q) {
    const auto* t = Runtime::get().congruent().at_place(q, sh.table);
    const std::uint64_t base = static_cast<std::uint64_t>(q) * sh.per_place;
    for (std::uint64_t i = 0; i < sh.per_place; ++i) {
      if (t[i] != base + i) ++errors;
    }
  }

  RaResult result;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.updates = sh.updates_per_place * static_cast<std::uint64_t>(places);
  result.gups = static_cast<double>(result.updates) / result.seconds / 1e9;
  result.gups_per_place = result.gups / places;
  result.error_fraction =
      static_cast<double>(errors) / static_cast<double>(sh.total);
  result.verified = result.error_fraction < 0.01;
  return result;
}

}  // namespace kernels
