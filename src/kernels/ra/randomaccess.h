// Global RandomAccess (GUPS) — HPCC benchmark (paper §5.1): random remote
// XOR updates against a table distributed over all places. The X10
// implementation backs the table with congruent (registered, huge-page)
// memory and drives updates through the Torrent's GUPS RDMA feature; here
// the same path is Transport::remote_xor64 on the congruent arena.
#pragma once

#include <cstdint>

namespace kernels {

struct RaParams {
  int log2_table_per_place = 14;  ///< 2^k 64-bit words per place
  int updates_per_entry = 4;      ///< HPCC prescribes 4x the table size
};

struct RaResult {
  double seconds = 0;
  double gups = 0;          ///< giga-updates per second, all places
  double gups_per_place = 0;
  std::uint64_t updates = 0;
  double error_fraction = 0;  ///< HPCC tolerates < 1%; atomic GUPS gives 0
  bool verified = false;
};

/// Runs RandomAccess; requires a power-of-two number of places (as the
/// paper's runs do — the global index mask needs a power-of-two table).
RaResult randomaccess_run(const RaParams& params);

}  // namespace kernels
