#include "kernels/stream/stream.h"

#include <chrono>
#include <cmath>
#include <mutex>
#include <vector>

#include "runtime/api.h"
#include "runtime/place_group.h"
#include "runtime/team.h"

namespace kernels {

namespace {

using TimePoint = std::chrono::steady_clock::time_point;

/// Global span across places: earliest start to latest finish. Immune to
/// the late-thread-scheduling artifact when places oversubscribe cores.
double span_seconds(const std::vector<TimePoint>& starts,
                    const std::vector<TimePoint>& stops) {
  TimePoint first = starts[0];
  TimePoint last = stops[0];
  for (std::size_t p = 1; p < starts.size(); ++p) {
    first = std::min(first, starts[p]);
    last = std::max(last, stops[p]);
  }
  return std::chrono::duration<double>(last - first).count();
}

}  // namespace

StreamResult stream_run(const StreamParams& params) {
  using namespace apgas;
  const std::size_t n = params.elements_per_place;
  const double alpha = params.alpha;
  const int iters = params.iterations;
  const bool congruent = params.use_congruent;
  // Op order matches classic STREAM: Copy, Scale, Add, Triad.
  const int num_ops = params.full_suite ? 4 : 1;

  // Allocated before the SPMD region so every place sees the same offsets.
  Congruent<double> ca{}, cb{}, cc{};
  if (congruent) {
    auto& space = Runtime::get().congruent();
    ca = space.alloc<double>(n);
    cb = space.alloc<double>(n);
    cc = space.alloc<double>(n);
  }

  const auto places = static_cast<std::size_t>(num_places());
  std::vector<std::vector<TimePoint>> starts(4, std::vector<TimePoint>(places));
  std::vector<std::vector<TimePoint>> stops(4, std::vector<TimePoint>(places));
  std::vector<char> place_ok(places, 0);
  std::mutex mu;

  PlaceGroup::world().broadcast([&] {
    auto& space = Runtime::get().congruent();
    std::vector<double> heap_a, heap_b, heap_c;
    double* a;
    double* b;
    double* c;
    if (congruent) {
      a = space.at_place(here(), ca);
      b = space.at_place(here(), cb);
      c = space.at_place(here(), cc);
    } else {
      heap_a.resize(n);
      heap_b.resize(n);
      heap_c.resize(n);
      a = heap_a.data();
      b = heap_b.data();
      c = heap_c.data();
    }
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = 0.0;
      b[i] = 1.0 + static_cast<double>(i % 7);
      c[i] = 2.0 + static_cast<double>(i % 3);
    }

    Team team = Team::world();
    bool ok = true;
    for (int op = 0; op < num_ops; ++op) {
      // The paper runs Triad; full_suite adds the other three STREAM ops.
      const int which = params.full_suite ? op : 3;
      team.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      for (int it = 0; it < iters; ++it) {
        switch (which) {
          case 0:  // Copy: a = c
            for (std::size_t i = 0; i < n; ++i) a[i] = c[i];
            break;
          case 1:  // Scale: a = alpha * c
            for (std::size_t i = 0; i < n; ++i) a[i] = alpha * c[i];
            break;
          case 2:  // Add: a = b + c
            for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + c[i];
            break;
          default:  // Triad: a = b + alpha * c
            for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + alpha * c[i];
        }
      }
      const auto t1 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < n; i += n / 64 + 1) {
        double expect = 0;
        switch (which) {
          case 0: expect = c[i]; break;
          case 1: expect = alpha * c[i]; break;
          case 2: expect = b[i] + c[i]; break;
          default: expect = b[i] + alpha * c[i];
        }
        if (std::abs(a[i] - expect) > 1e-12) ok = false;
      }
      std::scoped_lock lock(mu);
      starts[static_cast<std::size_t>(op)][static_cast<std::size_t>(here())] = t0;
      stops[static_cast<std::size_t>(op)][static_cast<std::size_t>(here())] = t1;
    }
    std::scoped_lock lock(mu);
    place_ok[static_cast<std::size_t>(here())] = ok ? 1 : 0;
  });

  StreamResult result;
  result.verified = true;
  for (char ok : place_ok) {
    if (!ok) result.verified = false;
  }
  auto gbs = [&](int op, double bytes_per_elem) {
    const double secs = span_seconds(starts[static_cast<std::size_t>(op)],
                                     stops[static_cast<std::size_t>(op)]);
    return bytes_per_elem * static_cast<double>(n) * iters * num_places() /
           secs / 1e9;
  };
  if (params.full_suite) {
    result.copy_gbs = gbs(0, 2.0 * sizeof(double));
    result.scale_gbs = gbs(1, 2.0 * sizeof(double));
    result.add_gbs = gbs(2, 3.0 * sizeof(double));
    result.seconds = span_seconds(starts[3], stops[3]);
    result.gb_per_sec_total = gbs(3, 3.0 * sizeof(double));
  } else {
    result.seconds = span_seconds(starts[0], stops[0]);
    result.gb_per_sec_total = gbs(0, 3.0 * sizeof(double));
  }
  result.gb_per_sec_per_place = result.gb_per_sec_total / num_places();
  return result;
}

}  // namespace kernels
