// EP Stream (Triad) — HPCC benchmark (paper §5.1): a = b + alpha*c at every
// place; measures sustainable local memory bandwidth. The X10 implementation
// launches one activity per place with a PlaceGroup broadcast and backs the
// vectors with huge-page (congruent) storage.
#pragma once

#include <cstddef>

namespace kernels {

struct StreamParams {
  std::size_t elements_per_place = 1u << 20;
  int iterations = 10;
  bool use_congruent = true;  ///< huge-page arena vs plain heap vectors
  double alpha = 3.0;
  /// Run the full STREAM quartet (Copy/Scale/Add/Triad); the paper reports
  /// Triad only, which remains the headline number.
  bool full_suite = false;
};

struct StreamResult {
  double seconds = 0;
  double gb_per_sec_total = 0;      // Triad
  double gb_per_sec_per_place = 0;  // Triad
  // Populated when full_suite is set:
  double copy_gbs = 0;
  double scale_gbs = 0;
  double add_gbs = 0;
  bool verified = false;
};

/// Runs the triad at every place (call from place 0 inside a runtime).
StreamResult stream_run(const StreamParams& params);

}  // namespace kernels
