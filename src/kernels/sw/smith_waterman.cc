#include "kernels/sw/smith_waterman.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "runtime/api.h"
#include "runtime/place_group.h"
#include "runtime/team.h"

namespace kernels {

namespace {
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

char sw_long_base(std::uint64_t seed, std::int64_t i) {
  static const char bases[4] = {'A', 'C', 'G', 'T'};
  return bases[mix(seed ^ static_cast<std::uint64_t>(i)) & 3];
}

std::string sw_short_seq(const SwParams& params) {
  // The query is a copy of a slice of the long sequence with sprinkled
  // mutations, so strong partial matches exist and the best score is
  // non-trivial.
  std::string q;
  q.reserve(static_cast<std::size_t>(params.short_len));
  const std::int64_t origin = 3 * params.short_len;
  for (int i = 0; i < params.short_len; ++i) {
    char c = sw_long_base(params.seed, origin + i);
    if (mix(params.seed * 31 + static_cast<std::uint64_t>(i)) % 11 == 0) {
      c = c == 'A' ? 'G' : 'A';  // mutate ~9% of positions
    }
    q.push_back(c);
  }
  return q;
}

int sw_scan(const std::string& query, std::uint64_t seed, std::int64_t lo,
            std::int64_t hi, int match, int mismatch, int gap) {
  // Standard SW with linear gaps, O(m) rolling rows over the long sequence.
  const int m = static_cast<int>(query.size());
  std::vector<int> prev(static_cast<std::size_t>(m) + 1, 0);
  std::vector<int> cur(static_cast<std::size_t>(m) + 1, 0);
  int best = 0;
  for (std::int64_t j = lo; j < hi; ++j) {
    const char b = sw_long_base(seed, j);
    cur[0] = 0;
    for (int i = 1; i <= m; ++i) {
      const int sub =
          prev[static_cast<std::size_t>(i) - 1] +
          (query[static_cast<std::size_t>(i) - 1] == b ? match : mismatch);
      const int del = prev[static_cast<std::size_t>(i)] + gap;
      const int ins = cur[static_cast<std::size_t>(i) - 1] + gap;
      const int v = std::max({0, sub, del, ins});
      cur[static_cast<std::size_t>(i)] = v;
      best = std::max(best, v);
    }
    std::swap(prev, cur);
  }
  return best;
}

SwResult smith_waterman_run(const SwParams& params, bool verify) {
  using namespace apgas;
  const std::string query = sw_short_seq(params);
  const std::int64_t per_place = params.long_per_place;
  const std::int64_t total = per_place * num_places();
  // Fragments overlap by twice the query length: any local alignment of the
  // query spans at most 2*m long-sequence positions, so it is contained in
  // some fragment and the max-of-maxes is exact.
  const std::int64_t overlap = 2 * params.short_len;

  long best = 0;
  std::mutex mu;
  const auto t0 = std::chrono::steady_clock::now();
  PlaceGroup::world().broadcast([&] {
    Team team = Team::world();
    const std::int64_t lo = here() * per_place;
    const std::int64_t hi = std::min<std::int64_t>(total, lo + per_place + overlap);
    long local_best = 0;
    for (int it = 0; it < params.iterations; ++it) {
      local_best = sw_scan(query, params.seed, lo, hi, params.match,
                           params.mismatch, params.gap);
    }
    // The best overall match is the best of the best matches (§7).
    team.allreduce(&local_best, 1, ReduceOp::kMax);
    if (here() == 0) {
      std::scoped_lock lock(mu);
      best = local_best;
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  SwResult result;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.best_score = static_cast<int>(best);
  result.cells_per_sec = static_cast<double>(total) * params.short_len *
                         params.iterations / result.seconds;
  if (verify) {
    const int seq_best = sw_scan(query, params.seed, 0, total, params.match,
                                 params.mismatch, params.gap);
    result.verified = seq_best == result.best_score;
  } else {
    result.verified = true;
  }
  return result;
}

}  // namespace kernels
