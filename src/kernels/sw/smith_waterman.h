// Smith-Waterman local alignment (paper §7): the best partial match of a
// short DNA sequence against a long one. Parallelized exactly as the paper
// does — the long sequence is split into overlapping fragments, each place
// aligns the short sequence against its fragment, and the global best is the
// max of the per-fragment bests (an All-Reduce).
#pragma once

#include <cstdint>
#include <string>

namespace kernels {

struct SwParams {
  int short_len = 200;          // paper: 4000
  std::int64_t long_per_place = 20000;  // paper: 40000 per place
  int iterations = 1;           // paper reports 5-iteration times
  std::uint64_t seed = 7;
  int match = 2, mismatch = -1, gap = -1;
};

struct SwResult {
  double seconds = 0;
  int best_score = 0;
  double cells_per_sec = 0;
  bool verified = false;  ///< distributed max == sequential full-string max
};

SwResult smith_waterman_run(const SwParams& params, bool verify = false);

/// Deterministic DNA base of the long sequence at global position i.
char sw_long_base(std::uint64_t seed, std::int64_t i);

/// The short query sequence.
std::string sw_short_seq(const SwParams& params);

/// Reference: best SW score of `query` against long[lo, hi).
int sw_scan(const std::string& query, std::uint64_t seed, std::int64_t lo,
            std::int64_t hi, int match, int mismatch, int gap);

}  // namespace kernels
