#include "kernels/util/dgemm.h"

#include <algorithm>

namespace kernels {

namespace {

constexpr std::size_t kBlock = 64;

template <int Sign>
void dgemm_impl(std::size_t m, std::size_t n, std::size_t k, const double* a,
                std::size_t lda, const double* b, std::size_t ldb, double* c,
                std::size_t ldc) {
  // Blocked i-k-j: streams B rows, accumulates into C rows — cache-friendly
  // without requiring transposes.
  for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::size_t i1 = std::min(m, i0 + kBlock);
    for (std::size_t k0 = 0; k0 < k; k0 += kBlock) {
      const std::size_t k1 = std::min(k, k0 + kBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        double* ci = c + i * ldc;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const double aik = Sign > 0 ? a[i * lda + kk] : -a[i * lda + kk];
          const double* bk = b + kk * ldb;
          for (std::size_t j = 0; j < n; ++j) {
            ci[j] += aik * bk[j];
          }
        }
      }
    }
  }
}

}  // namespace

void dgemm_acc(std::size_t m, std::size_t n, std::size_t k, const double* a,
               std::size_t lda, const double* b, std::size_t ldb, double* c,
               std::size_t ldc) {
  dgemm_impl<1>(m, n, k, a, lda, b, ldb, c, ldc);
}

void dgemm_sub(std::size_t m, std::size_t n, std::size_t k, const double* a,
               std::size_t lda, const double* b, std::size_t ldb, double* c,
               std::size_t ldc) {
  dgemm_impl<-1>(m, n, k, a, lda, b, ldb, c, ldc);
}

void dtrsm_lower_unit(std::size_t k, std::size_t n, const double* l,
                      std::size_t lda, double* b, std::size_t ldb) {
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t p = 0; p < i; ++p) {
      const double lip = l[i * lda + p];
      if (lip == 0.0) continue;
      const double* bp = b + p * ldb;
      double* bi = b + i * ldb;
      for (std::size_t j = 0; j < n; ++j) bi[j] -= lip * bp[j];
    }
  }
}

}  // namespace kernels
