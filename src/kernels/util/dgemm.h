// Local BLAS-3 kernel used by HPL (the paper links IBM ESSL; this is our
// portable stand-in — see DESIGN.md §2). Row-major, C += A * B.
#pragma once

#include <cstddef>

namespace kernels {

/// C[m x n] += A[m x k] * B[k x n], row-major with leading dimensions.
void dgemm_acc(std::size_t m, std::size_t n, std::size_t k, const double* a,
               std::size_t lda, const double* b, std::size_t ldb, double* c,
               std::size_t ldc);

/// C[m x n] -= A[m x k] * B[k x n] (the Schur-complement update HPL needs).
void dgemm_sub(std::size_t m, std::size_t n, std::size_t k, const double* a,
               std::size_t lda, const double* b, std::size_t ldb, double* c,
               std::size_t ldc);

/// Triangular solve: B <- L^{-1} B with L unit lower triangular [k x k]
/// (row-major, leading dimension lda); B is [k x n] with leading dim ldb.
void dtrsm_lower_unit(std::size_t k, std::size_t n, const double* l,
                      std::size_t lda, double* b, std::size_t ldb);

}  // namespace kernels
