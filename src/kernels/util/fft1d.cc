#include "kernels/util/fft1d.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace kernels {

namespace {

void fft_radix2(Complex* a, std::size_t n, bool inverse) {
  assert((n & (n - 1)) == 0 && "fft size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const Complex wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) a[i] *= inv;
  }
}

}  // namespace

void fft_forward(Complex* data, std::size_t n) { fft_radix2(data, n, false); }

void fft_inverse(Complex* data, std::size_t n) { fft_radix2(data, n, true); }

std::vector<Complex> dft_naive(const Complex* data, std::size_t n) {
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2 * std::numbers::pi * static_cast<double>(k) *
                         static_cast<double>(j) / static_cast<double>(n);
      sum += data[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = sum;
  }
  return out;
}

}  // namespace kernels
