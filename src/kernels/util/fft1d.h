// Local 1D complex FFT used by the Global FFT kernel (the paper links FFTE;
// this portable radix-2 implementation is our stand-in — DESIGN.md §2).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace kernels {

using Complex = std::complex<double>;

/// In-place forward DFT of n = 2^k points.
void fft_forward(Complex* data, std::size_t n);

/// In-place inverse DFT (scaled by 1/n).
void fft_inverse(Complex* data, std::size_t n);

/// Reference O(n^2) DFT for verification.
std::vector<Complex> dft_naive(const Complex* data, std::size_t n);

}  // namespace kernels
