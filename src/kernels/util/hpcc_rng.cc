#include "kernels/util/hpcc_rng.h"

namespace kernels {

std::uint64_t hpcc_starts(std::int64_t n) {
  while (n < 0) n += kHpccPeriod;
  while (n > kHpccPeriod) n -= kHpccPeriod;
  if (n == 0) return 1;

  std::uint64_t m2[64];
  std::uint64_t temp = 1;
  for (int i = 0; i < 64; ++i) {
    m2[i] = temp;
    temp = hpcc_next(hpcc_next(temp));
  }

  int i = 62;
  while (i >= 0 && !((n >> i) & 1)) --i;

  std::uint64_t ran = 2;
  while (i > 0) {
    temp = 0;
    for (int j = 0; j < 64; ++j) {
      if ((ran >> j) & 1) temp ^= m2[j];
    }
    ran = temp;
    --i;
    if ((n >> i) & 1) ran = hpcc_next(ran);
  }
  return ran;
}

}  // namespace kernels
