// The HPCC RandomAccess pseudo-random stream: x_{n+1} = 2*x_n over GF(2)[x]
// modulo the primitive polynomial x^63 + x^2 + x + 1 (POLY = 7), with the
// standard starts() jump-ahead so every place can generate its slice of the
// global update stream independently.
#pragma once

#include <cstdint>

namespace kernels {

inline constexpr std::uint64_t kHpccPoly = 0x0000000000000007ULL;
inline constexpr std::uint64_t kHpccPeriod = 1317624576693539401LL;

/// Next element of the stream.
inline std::uint64_t hpcc_next(std::uint64_t x) {
  return (x << 1) ^ ((static_cast<std::int64_t>(x) < 0) ? kHpccPoly : 0);
}

/// Element number `n` of the stream (HPCC's HPCC_starts): O(log n) via
/// repeated squaring of the step map over GF(2).
std::uint64_t hpcc_starts(std::int64_t n);

}  // namespace kernels
