#include "kernels/util/rmat.h"

#include <random>

namespace kernels {

CsrGraph rmat_generate(const RmatParams& params) {
  const std::int64_t v = std::int64_t{1} << params.scale;
  const std::int64_t e = v * params.edge_factor;
  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);

  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(static_cast<std::size_t>(e));
  for (std::int64_t i = 0; i < e; ++i) {
    std::int64_t row = 0;
    std::int64_t col = 0;
    for (int bit = params.scale - 1; bit >= 0; --bit) {
      const double r = u(rng);
      if (r < params.a) {
        // top-left quadrant
      } else if (r < params.a + params.b) {
        col |= std::int64_t{1} << bit;
      } else if (r < params.a + params.b + params.c) {
        row |= std::int64_t{1} << bit;
      } else {
        row |= std::int64_t{1} << bit;
        col |= std::int64_t{1} << bit;
      }
    }
    if (row == col) continue;  // drop self-loops
    edges.emplace_back(static_cast<std::int32_t>(row),
                       static_cast<std::int32_t>(col));
  }

  CsrGraph g;
  g.num_vertices = v;
  g.offsets.assign(static_cast<std::size_t>(v) + 1, 0);
  for (const auto& [s, d] : edges) {
    ++g.offsets[static_cast<std::size_t>(s) + 1];
    ++g.offsets[static_cast<std::size_t>(d) + 1];
  }
  for (std::size_t i = 1; i < g.offsets.size(); ++i) {
    g.offsets[i] += g.offsets[i - 1];
  }
  g.adjacency.resize(static_cast<std::size_t>(g.offsets.back()));
  std::vector<std::int64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (const auto& [s, d] : edges) {
    g.adjacency[static_cast<std::size_t>(cursor[static_cast<std::size_t>(s)]++)] = d;
    g.adjacency[static_cast<std::size_t>(cursor[static_cast<std::size_t>(d)]++)] = s;
  }
  return g;
}

}  // namespace kernels
