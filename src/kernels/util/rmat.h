// R-MAT recursive graph generator (Chakrabarti et al. [6]) and a CSR graph,
// used by the Betweenness Centrality kernel (paper §7).
#pragma once

#include <cstdint>
#include <vector>

namespace kernels {

struct RmatParams {
  int scale = 10;        ///< 2^scale vertices
  int edge_factor = 8;   ///< edges = edge_factor * vertices
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  std::uint64_t seed = 0x5eedULL;
};

/// Compressed-sparse-row undirected graph (each edge stored both ways,
/// self-loops dropped, duplicates kept — harmless for Brandes).
struct CsrGraph {
  std::int64_t num_vertices = 0;
  std::vector<std::int64_t> offsets;  // size V+1
  std::vector<std::int32_t> adjacency;

  [[nodiscard]] std::int64_t num_edges() const {
    return static_cast<std::int64_t>(adjacency.size()) / 2;
  }
  [[nodiscard]] std::int64_t degree(std::int64_t v) const {
    return offsets[static_cast<std::size_t>(v) + 1] -
           offsets[static_cast<std::size_t>(v)];
  }
};

/// Generates an R-MAT graph.
CsrGraph rmat_generate(const RmatParams& params);

}  // namespace kernels
