#include "kernels/util/sha1.h"

#include <cstring>

namespace kernels {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

struct Sha1Ctx {
  std::uint32_t h[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                        0xC3D2E1F0u};

  void block(const std::uint8_t* p) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t(p[4 * i]) << 24) |
             (std::uint32_t(p[4 * i + 1]) << 16) |
             (std::uint32_t(p[4 * i + 2]) << 8) | std::uint32_t(p[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const std::uint32_t t = rotl(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = t;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
};

}  // namespace

Sha1Digest sha1(const void* data, std::size_t len) {
  Sha1Ctx ctx;
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t remaining = len;
  while (remaining >= 64) {
    ctx.block(p);
    p += 64;
    remaining -= 64;
  }
  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  std::uint8_t tail[128] = {};
  std::memcpy(tail, p, remaining);
  tail[remaining] = 0x80;
  const std::size_t tail_len = remaining + 1 <= 56 ? 64 : 128;
  const std::uint64_t bits = static_cast<std::uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 1 - i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  ctx.block(tail);
  if (tail_len == 128) ctx.block(tail + 64);

  Sha1Digest out;
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(ctx.h[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(ctx.h[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(ctx.h[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(ctx.h[i]);
  }
  return out;
}

std::string sha1_hex(const Sha1Digest& d) {
  static const char* hex = "0123456789abcdef";
  std::string s;
  s.reserve(40);
  for (std::uint8_t b : d) {
    s.push_back(hex[b >> 4]);
    s.push_back(hex[b & 0xf]);
  }
  return s;
}

}  // namespace kernels
