// SHA-1 (FIPS 180-1). UTS defines its splittable random stream in terms of
// SHA-1 over (parent state || child index); the paper's X10 code calls a
// native C routine for this, which we provide here from scratch.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace kernels {

using Sha1Digest = std::array<std::uint8_t, 20>;

/// One-shot SHA-1 of `len` bytes.
Sha1Digest sha1(const void* data, std::size_t len);

/// Hex string of a digest (tests against FIPS known-answer vectors).
std::string sha1_hex(const Sha1Digest& d);

}  // namespace kernels
