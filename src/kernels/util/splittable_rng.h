// The UTS splittable random stream (Olivier et al. [25], BRG SHA-1 variant):
// a tree node's state is a 20-byte SHA-1 digest; child i's state is
// SHA-1(parent state || i as big-endian u32). This makes the tree shape a
// pure function of the root seed, so any traversal order counts the same
// nodes — the property UTS verification relies on.
#pragma once

#include <cmath>
#include <cstdint>

#include "kernels/util/sha1.h"

namespace kernels {

struct UtsNodeState {
  Sha1Digest digest;

  /// Root state from an integer seed (matches uts.c rng_init: the seed is
  /// hashed as a 4-byte big-endian word... we hash the bytes of the seed).
  static UtsNodeState root(std::uint32_t seed) {
    std::uint8_t buf[4] = {
        static_cast<std::uint8_t>(seed >> 24),
        static_cast<std::uint8_t>(seed >> 16),
        static_cast<std::uint8_t>(seed >> 8),
        static_cast<std::uint8_t>(seed),
    };
    return UtsNodeState{sha1(buf, sizeof(buf))};
  }

  /// Child i's state; one SHA-1 evaluation (the unit the paper's "17 trillion
  /// hashes" counts).
  [[nodiscard]] UtsNodeState spawn(std::uint32_t i) const {
    std::uint8_t buf[24];
    for (int b = 0; b < 20; ++b) buf[b] = digest[static_cast<std::size_t>(b)];
    buf[20] = static_cast<std::uint8_t>(i >> 24);
    buf[21] = static_cast<std::uint8_t>(i >> 16);
    buf[22] = static_cast<std::uint8_t>(i >> 8);
    buf[23] = static_cast<std::uint8_t>(i);
    return UtsNodeState{sha1(buf, sizeof(buf))};
  }

  /// A positive 31-bit random value from the state (uts.c rng_rand).
  [[nodiscard]] std::uint32_t rand31() const {
    const std::uint32_t v = (std::uint32_t(digest[16]) << 24) |
                            (std::uint32_t(digest[17]) << 16) |
                            (std::uint32_t(digest[18]) << 8) |
                            std::uint32_t(digest[19]);
    return v & 0x7fffffffu;
  }

  /// Uniform in [0, 1) (uts.c rng_toProb).
  [[nodiscard]] double to_prob() const {
    return static_cast<double>(rand31()) / 2147483648.0;
  }
};

/// Number of children of a node in a *geometric* UTS tree with fixed
/// branching parameter b0 and depth cut-off d (uts.c GEO_FIXED): beyond the
/// cut-off the tree stops; otherwise the child count follows the geometric
/// distribution with mean ~b0 — the long tail is what makes the tree
/// unbalanced.
inline int uts_geo_children(const UtsNodeState& s, int depth, double b0,
                            int max_depth) {
  if (depth >= max_depth) return 0;
  const double p = 1.0 / (1.0 + b0);
  const double u = s.to_prob();
  return static_cast<int>(std::floor(std::log(1.0 - u) / std::log(1.0 - p)));
}

/// Number of children in a *binomial* UTS tree (uts.c BIN): the root has b0
/// children; every other node has m children with probability q and none
/// otherwise. With m*q < 1 the tree is finite with expected size
/// b0/(1 - m*q); the variance is enormous, making it the "deep and narrow"
/// shape the paper contrasts with shallow geometric trees (§6.1).
inline int uts_bin_children(const UtsNodeState& s, int depth, int root_b0,
                            int m, double q) {
  if (depth == 0) return root_b0;
  return s.to_prob() < q ? m : 0;
}

}  // namespace kernels
