#include "kernels/uts/uts.h"

#include <chrono>

#include "runtime/api.h"

namespace kernels {

int UtsBag::num_children(const UtsNodeState& s, int depth) const {
  if (tree_.shape == UtsShape::kGeometric) {
    return uts_geo_children(s, depth, tree_.b0, tree_.max_depth);
  }
  return uts_bin_children(s, depth, tree_.bin_root, tree_.bin_m, tree_.bin_q);
}

UtsBag::UtsBag(const UtsParams& params, bool with_root) {
  tree_.shape = params.shape;
  tree_.b0 = params.b0;
  tree_.max_depth = params.depth;
  tree_.bin_root = params.bin_root;
  tree_.bin_m = params.bin_m;
  tree_.bin_q = params.bin_q;
  legacy_lists = params.glb.legacy;
  if (with_root) {
    const UtsNodeState root = UtsNodeState::root(params.seed);
    nodes_ = 1;  // the root itself
    const int children = num_children(root, 0);
    if (children > 0) {
      frames_.push_back(Frame{root, 0, 0, static_cast<std::uint32_t>(children)});
    }
  }
}

std::size_t UtsBag::process(std::size_t n) {
  std::size_t done = 0;
  while (done < n && !frames_.empty()) {
    Frame& f = frames_.back();
    // Expand one child: one SHA-1 per node generated (the paper's hash
    // count), depth-first so the frame list stays short.
    const UtsNodeState child = f.state.spawn(f.lo);
    ++hashes_;
    ++nodes_;
    const int depth = f.depth + 1;
    if (++f.lo >= f.hi) frames_.pop_back();
    const int children = num_children(child, depth);
    if (children > 0) {
      frames_.push_back(
          Frame{child, depth, 0, static_cast<std::uint32_t>(children)});
    }
    ++done;
  }
  return done;
}

UtsBag UtsBag::split() {
  UtsBag stolen;
  stolen.tree_ = tree_;
  stolen.legacy_lists = legacy_lists;
  if (legacy_lists) {
    // [35]-style: take half the frames as whole entries from the cold end
    // (the shallow, early frames), no interval fragmentation.
    const std::size_t take = frames_.size() / 2;
    if (take == 0) return stolen;
    stolen.frames_.assign(frames_.begin(),
                          frames_.begin() + static_cast<std::ptrdiff_t>(take));
    frames_.erase(frames_.begin(),
                  frames_.begin() + static_cast<std::ptrdiff_t>(take));
    return stolen;
  }
  // Paper §6.1: steal a fragment of *every* interval. Depth-first traversal
  // keeps the frame list short, and fragmenting all levels counters the
  // bias the depth cut-off introduces (shallow siblings root bigger
  // subtrees).
  for (Frame& f : frames_) {
    const std::uint32_t len = f.hi - f.lo;
    if (len < 2) continue;
    const std::uint32_t take = len / 2;
    stolen.frames_.push_back(Frame{f.state, f.depth, f.hi - take, f.hi});
    f.hi -= take;
  }
  return stolen;
}

void UtsBag::merge(UtsBag&& other) {
  if (frames_.empty()) tree_ = other.tree_;
  frames_.insert(frames_.end(), other.frames_.begin(), other.frames_.end());
  // Counters are additive: the initial bag arrives by merge and already
  // accounts for the root node.
  nodes_ += other.nodes_;
  hashes_ += other.hashes_;
  other.frames_.clear();
  other.nodes_ = 0;
  other.hashes_ = 0;
}

std::size_t UtsBag::size() const {
  std::size_t total = 0;
  for (const Frame& f : frames_) total += f.hi - f.lo;
  return total;
}

UtsResult uts_sequential(const UtsParams& params) {
  UtsBag bag(params, /*with_root=*/true);
  const auto t0 = std::chrono::steady_clock::now();
  while (bag.process(1u << 16) > 0) {
  }
  const auto t1 = std::chrono::steady_clock::now();
  UtsResult r;
  r.nodes = bag.nodes();
  r.hashes = bag.hashes();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.mnodes_per_sec = static_cast<double>(r.nodes) / r.seconds / 1e6;
  r.mnodes_per_sec_per_place = r.mnodes_per_sec;
  r.verified = true;
  return r;
}

UtsResult uts_run(const UtsParams& params, bool verify_sequential) {
  using namespace apgas;
  glb::Glb<UtsBag> balancer(params.glb);
  const auto t0 = std::chrono::steady_clock::now();
  balancer.run(UtsBag(params, /*with_root=*/true));
  const auto t1 = std::chrono::steady_clock::now();

  UtsResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (int p = 0; p < num_places(); ++p) {
    r.nodes += balancer.bag_at(p).nodes();
    r.hashes += balancer.bag_at(p).hashes();
    r.steal_attempts += balancer.stats_at(p).steal_attempts;
    r.resuscitations += balancer.stats_at(p).resuscitations;
  }
  r.mnodes_per_sec = static_cast<double>(r.nodes) / r.seconds / 1e6;
  r.mnodes_per_sec_per_place = r.mnodes_per_sec / num_places();
  if (verify_sequential) {
    r.verified = uts_sequential(params).nodes == r.nodes;
  } else {
    r.verified = true;
  }
  return r;
}

}  // namespace kernels
