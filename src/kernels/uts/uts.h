// Unbalanced Tree Search over geometric trees (paper §6): counts the nodes
// of a tree generated on the fly from a SHA-1 splittable random stream,
// balanced across places by the lifeline GLB. The work-bag representation is
// the paper's §6.1 refinement: *intervals* of sibling indices rather than
// expanded node lists, with thieves taking fragments of every interval to
// counter the depth-cutoff bias.
#pragma once

#include <cstdint>
#include <vector>

#include "glb/glb.h"
#include "kernels/util/splittable_rng.h"

namespace kernels {

enum class UtsShape {
  kGeometric,  ///< the paper's workload: b0 = 4, depth cut-off d
  kBinomial,   ///< uts.c BIN: deep, narrow, extreme-variance trees (§6.1
               ///< mentions them as the shape interval stealing helps less)
};

struct UtsParams {
  UtsShape shape = UtsShape::kGeometric;
  double b0 = 4.0;        ///< geometric branching factor (paper: 4)
  std::uint32_t seed = 19;  ///< root seed (paper: r = 19)
  int depth = 10;         ///< cut-off d (paper: 14 at 1 place .. 22 at scale)
  int bin_root = 64;      ///< binomial: root child count
  int bin_m = 4;          ///< binomial: children on success
  double bin_q = 0.23;    ///< binomial: success probability (m*q < 1)
  glb::GlbConfig glb;
};

struct UtsResult {
  std::uint64_t nodes = 0;
  std::uint64_t hashes = 0;
  double seconds = 0;
  double mnodes_per_sec = 0;
  double mnodes_per_sec_per_place = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t resuscitations = 0;
  bool verified = false;  ///< optional check against the sequential count
};

/// The GLB work bag: a list of (parent state, depth, sibling interval).
class UtsBag {
 public:
  UtsBag() = default;
  UtsBag(const UtsParams& params, bool with_root);

  std::size_t process(std::size_t n);
  UtsBag split();
  void merge(UtsBag&& other);
  [[nodiscard]] bool empty() const { return frames_.empty(); }
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::uint64_t nodes() const { return nodes_; }
  [[nodiscard]] std::uint64_t hashes() const { return hashes_; }

  /// Legacy [35] representation: split() detaches expanded single-node
  /// frames from the tail instead of interval fragments.
  bool legacy_lists = false;

  // Ser hooks (x10rt::Ser): Frame and TreeShape are trivially copyable, so
  // the whole bag ships as flat vectors — this is what lets UTS-over-GLB run
  // across place processes.
  void ser_put(x10rt::ByteBuffer& b) const {
    b.put_vector(frames_);
    b.put(tree_);
    b.put(nodes_);
    b.put(hashes_);
    b.put(legacy_lists);
  }
  static UtsBag ser_get(x10rt::ByteBuffer& b) {
    UtsBag bag;
    bag.frames_ = b.get_vector<Frame>();
    bag.tree_ = b.get<TreeShape>();
    bag.nodes_ = b.get<std::uint64_t>();
    bag.hashes_ = b.get<std::uint64_t>();
    bag.legacy_lists = b.get<bool>();
    return bag;
  }

 private:
  struct Frame {
    UtsNodeState state;
    int depth = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
  };
  struct TreeShape {
    UtsShape shape = UtsShape::kGeometric;
    double b0 = 4.0;
    int max_depth = 0;
    int bin_root = 0;
    int bin_m = 0;
    double bin_q = 0.0;
  };
  [[nodiscard]] int num_children(const UtsNodeState& s, int depth) const;

  std::vector<Frame> frames_;
  TreeShape tree_;
  std::uint64_t nodes_ = 0;
  std::uint64_t hashes_ = 0;
};

/// Distributed UTS via GLB; call from place 0.
UtsResult uts_run(const UtsParams& params, bool verify_sequential = false);

/// Reference sequential traversal (no runtime involvement).
UtsResult uts_sequential(const UtsParams& params);

}  // namespace kernels
