#include "percs/bandwidth.h"

#include <algorithm>

namespace percs {

double BandwidthModel::intra_supernode_per_octant(int octants) const {
  if (octants <= 1) return injection_;
  // Each octant sprays (octants-1) peer flows over its direct L links; the
  // usable aggregate is the smaller of the injection ceiling and the summed
  // link capacity toward the partition.
  const int per_drawer = shape_.octants_per_drawer;
  const int ll_peers = std::min(octants - 1, per_drawer - 1);
  const int lr_peers = octants - 1 - ll_peers;
  const double link_sum = ll_peers * links_.ll + lr_peers * links_.lr;
  return std::min(injection_, link_sum);
}

double BandwidthModel::dlink_ceiling_per_octant(int supernodes) const {
  if (supernodes <= 1) return injection_;
  const double s = supernodes;
  const int h = shape_.octants_per_supernode();
  // Aggregate D capacity out of one supernode: 80 GB/s to each of the S-1
  // peers. In an all-to-all, each of its H octants sends a fraction
  // (S-1)/S of its traffic across those links.
  const double capacity = links_.d_combined * (s - 1.0);
  const double demand_share = (s - 1.0) / s;
  return capacity / (h * demand_share);  // = 80 * S / H
}

double BandwidthModel::alltoall_per_octant(int octants) const {
  const int per_sn = shape_.octants_per_supernode();
  if (octants <= per_sn) return intra_supernode_per_octant(octants);
  const int supernodes = (octants + per_sn - 1) / per_sn;
  return std::min(intra_supernode_per_octant(per_sn),
                  dlink_ceiling_per_octant(supernodes));
}

}  // namespace percs
