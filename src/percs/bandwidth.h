// Analytic cross-section bandwidth model of the PERCS interconnect
// (paper §4 and Tanase et al. [38]).
//
// For an All-To-All over a partition of the machine, the achievable
// per-octant bandwidth is governed by two ceilings:
//   * the per-octant interconnect injection bandwidth, and
//   * the aggregate D-link bandwidth leaving each supernode.
// With one supernode or less the first ceiling binds. Adding the second
// supernode makes (S-1)/S of all traffic cross the D links, whose capacity
// per supernode grows like 80*(S-1) GB/s while the demand grows with the 32
// resident octants — hence the paper's "sharp drop at two supernodes,
// followed by a slow recovery, followed by a plateau".
#pragma once

#include "percs/topology.h"

namespace percs {

class BandwidthModel {
 public:
  explicit BandwidthModel(MachineShape shape = {}, LinkBandwidth links = {},
                          double per_octant_injection_gbs = 192.0)
      : shape_(shape), links_(links), injection_(per_octant_injection_gbs) {}

  /// Achievable per-octant All-To-All bandwidth (GB/s) for a partition of
  /// `octants` octants filled supernode by supernode.
  [[nodiscard]] double alltoall_per_octant(int octants) const;

  /// The D-link ceiling alone (GB/s per octant) for a partition spanning
  /// `supernodes` full supernodes.
  [[nodiscard]] double dlink_ceiling_per_octant(int supernodes) const;

  /// Effective per-octant injection ceiling for all-to-all within up to one
  /// supernode (accounts for L-link mix; single-octant partitions are
  /// loopback, reported as the injection ceiling).
  [[nodiscard]] double intra_supernode_per_octant(int octants) const;

 private:
  MachineShape shape_;
  LinkBandwidth links_;
  double injection_;
};

}  // namespace percs
