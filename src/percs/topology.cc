#include "percs/topology.h"

namespace percs {

Coord Machine::coord_of_core(long core) const {
  assert(core >= 0 && core < shape_.total_cores());
  Coord c;
  c.core = static_cast<int>(core % shape_.cores_per_octant);
  long octant = core / shape_.cores_per_octant;
  c.octant = static_cast<int>(octant % shape_.octants_per_drawer);
  long drawer = octant / shape_.octants_per_drawer;
  c.drawer = static_cast<int>(drawer % shape_.drawers_per_supernode);
  c.supernode = static_cast<int>(drawer / shape_.drawers_per_supernode);
  return c;
}

LinkType Machine::link(int octant_a, int octant_b) const {
  if (octant_a == octant_b) return LinkType::kSameOctant;
  const int per_sn = shape_.octants_per_supernode();
  const int sn_a = octant_a / per_sn;
  const int sn_b = octant_b / per_sn;
  if (sn_a != sn_b) return LinkType::kD;
  const int drawer_a = octant_a / shape_.octants_per_drawer;
  const int drawer_b = octant_b / shape_.octants_per_drawer;
  return drawer_a == drawer_b ? LinkType::kLL : LinkType::kLR;
}

int Machine::hops(int octant_a, int octant_b) const {
  switch (link(octant_a, octant_b)) {
    case LinkType::kSameOctant:
      return 0;
    case LinkType::kLL:
    case LinkType::kLR:
      return 1;
    case LinkType::kD:
      return 3;  // direct-striped L-D-L route
  }
  return -1;
}

}  // namespace percs
