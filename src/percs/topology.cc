#include "percs/topology.h"

namespace percs {

Coord Machine::coord_of_core(long core) const {
  assert(core >= 0 && core < shape_.total_cores());
  Coord c;
  c.core = static_cast<int>(core % shape_.cores_per_octant);
  long octant = core / shape_.cores_per_octant;
  c.octant = static_cast<int>(octant % shape_.octants_per_drawer);
  long drawer = octant / shape_.octants_per_drawer;
  c.drawer = static_cast<int>(drawer % shape_.drawers_per_supernode);
  c.supernode = static_cast<int>(drawer / shape_.drawers_per_supernode);
  return c;
}

LinkType Machine::link(int octant_a, int octant_b) const {
  if (octant_a == octant_b) return LinkType::kSameOctant;
  const int per_sn = shape_.octants_per_supernode();
  const int sn_a = octant_a / per_sn;
  const int sn_b = octant_b / per_sn;
  if (sn_a != sn_b) return LinkType::kD;
  const int drawer_a = octant_a / shape_.octants_per_drawer;
  const int drawer_b = octant_b / shape_.octants_per_drawer;
  return drawer_a == drawer_b ? LinkType::kLL : LinkType::kLR;
}

int Machine::hops(int octant_a, int octant_b) const {
  switch (link(octant_a, octant_b)) {
    case LinkType::kSameOctant:
      return 0;
    case LinkType::kLL:
    case LinkType::kLR:
      return 1;
    case LinkType::kD:
      return 3;  // direct-striped L-D-L route
  }
  return -1;
}

int Machine::domain_of_core(long core, int level) const {
  assert(level >= 0 && level <= 2);
  const long octant = core / shape_.cores_per_octant;
  switch (level) {
    case 0: return static_cast<int>(octant);
    case 1: return static_cast<int>(octant / shape_.octants_per_drawer);
    default:
      return static_cast<int>(octant / shape_.octants_per_drawer /
                              shape_.drawers_per_supernode);
  }
}

int Machine::common_level(long core_a, long core_b) const {
  return percs::common_level(coord_of_core(core_a), coord_of_core(core_b));
}

int common_level(const Coord& a, const Coord& b) {
  if (a.supernode != b.supernode) return 3;
  if (a.drawer != b.drawer) return 2;
  if (a.octant != b.octant) return 1;
  return 0;
}

}  // namespace percs
