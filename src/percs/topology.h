// Machine model of the Power 775 (PERCS) two-level direct-connect topology
// (paper §4, [2]).
//
// Hierarchy: 32 cores per octant (host), 8 octants per drawer, 4 drawers per
// supernode. Links: "LL" between octants of one drawer (24 GB/s each way),
// "LR" between octants of different drawers in one supernode (5 GB/s), and
// eight parallel "D" links between every pair of supernodes (80 GB/s
// combined). Direct-striped routing: intra-supernode traffic takes one L
// link; inter-supernode traffic takes L-D-L (at most three hops).
#pragma once

#include <cassert>

namespace percs {

enum class LinkType {
  kSameOctant,  // no network traversal
  kLL,          // L-local: same drawer
  kLR,          // L-remote: same supernode, different drawer
  kD,           // inter-supernode
};

struct MachineShape {
  int cores_per_octant = 32;
  int octants_per_drawer = 8;
  int drawers_per_supernode = 4;
  int supernodes = 56;  // full Hurcules configuration

  [[nodiscard]] int octants_per_supernode() const {
    return octants_per_drawer * drawers_per_supernode;
  }
  [[nodiscard]] int total_octants() const {
    return octants_per_supernode() * supernodes;
  }
  [[nodiscard]] int total_cores() const {
    return total_octants() * cores_per_octant;
  }
};

struct Coord {
  int supernode = 0;
  int drawer = 0;           // within the supernode
  int octant = 0;           // within the drawer
  int core = 0;             // within the octant

  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Link peak bandwidths in GB/s per direction (paper §4).
struct LinkBandwidth {
  double ll = 24.0;
  double lr = 5.0;
  double d_combined = 80.0;  // eight parallel D links, spread traffic
};

class Machine {
 public:
  explicit Machine(MachineShape shape = {}) : shape_(shape) {}

  [[nodiscard]] const MachineShape& shape() const { return shape_; }

  /// Decomposes a global core (= place) index into machine coordinates,
  /// filling octants in core order as the paper's runs do (groups of 32).
  [[nodiscard]] Coord coord_of_core(long core) const;

  /// Global octant index of a core.
  [[nodiscard]] int octant_of_core(long core) const {
    return static_cast<int>(core / shape_.cores_per_octant);
  }

  /// Link class used between two octants under direct routing.
  [[nodiscard]] LinkType link(int octant_a, int octant_b) const;

  /// Number of network hops between two octants (0, 1, or 3: L-D-L).
  [[nodiscard]] int hops(int octant_a, int octant_b) const;

  /// Global index of the hierarchy domain containing `core` at `level`:
  /// level 0 = octant, 1 = drawer, 2 = supernode. Cores sharing the domain
  /// index at level L communicate without crossing a level-L+1 link (LL
  /// within a drawer, LR within a supernode, D across supernodes) — the
  /// grouping the hierarchical Team collectives build their leader trees on.
  [[nodiscard]] int domain_of_core(long core, int level) const;

  /// Smallest hierarchy level whose domain contains both cores: 0 = same
  /// octant (shared memory, no network), 1 = same drawer (LL), 2 = same
  /// supernode (LR), 3 = different supernodes (D links). The
  /// nearest-common-ancestor query of the two-level PERCS tree.
  [[nodiscard]] int common_level(long core_a, long core_b) const;

 private:
  MachineShape shape_;
};

/// Coord-level variant of Machine::common_level for already-decomposed
/// coordinates (0 octant / 1 drawer / 2 supernode / 3 machine).
[[nodiscard]] int common_level(const Coord& a, const Coord& b);

}  // namespace percs
