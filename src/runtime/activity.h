// Activities and their link to the governing finish (paper §2.1, §3.1).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>

namespace apgas {

class FinishHome;

/// Finish implementation selection (paper §3.1). `kAuto` is what plain
/// `finish` gives you: it starts as a place-local atomic counter and upgrades
/// to the general distributed (transit-matrix) protocol on the first remote
/// spawn. The other values correspond to the paper's pragmas.
enum class Pragma : std::uint8_t {
  kAuto,     // dynamic: local counter, upgrade to kDefault on first `at`
  kLocal,    // FINISH_LOCAL: asserts no remote spawns
  kAsync,    // FINISH_ASYNC: single (possibly remote) activity
  kHere,     // FINISH_HERE: credit-based round trips
  kSpmd,     // FINISH_SPMD: n remote activities, no stray sub-activities
  kDense,    // FINISH_DENSE: default counting + software-routed control msgs
  kDefault,  // force the general transit-matrix protocol from the start
};
inline constexpr int kNumPragmas = 7;

/// Stable lowercase protocol name, used for per-protocol histogram keys
/// (hist.finish.close_ns.<name>) and trace/watchdog output.
inline const char* pragma_name(Pragma p) {
  switch (p) {
    case Pragma::kAuto: return "auto";
    case Pragma::kLocal: return "local";
    case Pragma::kAsync: return "async";
    case Pragma::kHere: return "here";
    case Pragma::kSpmd: return "spmd";
    case Pragma::kDense: return "dense";
    case Pragma::kDefault: return "default";
  }
  return "?";
}

/// Globally unique identity of a finish: its home place plus a per-place
/// sequence number. Control messages carry keys; places resolve them against
/// their registries.
struct FinishKey {
  int home = -1;
  std::uint64_t seq = 0;

  [[nodiscard]] bool valid() const { return home >= 0; }
  friend bool operator==(const FinishKey&, const FinishKey&) = default;
};

struct FinishKeyHash {
  std::size_t operator()(const FinishKey& k) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(k.home) << 40) ^ k.seq);
  }
};

/// What an activity needs in order to account to its governing finish.
/// At the finish's home place we hold a direct pointer; elsewhere we carry
/// the key + protocol and resolve against the place's remote-block registry.
struct FinCtx {
  FinishHome* home = nullptr;  ///< non-null only at the finish's home place
  FinishKey key;
  Pragma mode = Pragma::kAuto;
};

/// FINISH_HERE credit weight minted per governed spawn from the finish body.
/// Weighted credits (Mattern-style) make the termination test reorder-safe:
/// a spawner gives each child a *share* of its own weight and returns the
/// remainder on completion, so the home place only ever sees decrements —
/// `outstanding == 0` then really means "no credit anywhere", and no
/// interleaving of control messages can show a transient zero. (The earlier
/// `spawn_count - 1` delta scheme could: a child's -1 could overtake its
/// parent's +k and release the finish early.)
inline constexpr std::uint64_t kCreditUnit = 1ull << 62;

/// A spawned task. `credit` is FINISH_HERE bookkeeping: the weight travels
/// with the task chain (split at each spawn) and returns to home (§3.1).
struct Activity {
  std::function<void()> body;
  FinCtx fin;                 // invalid key + null home = system activity
  std::uint64_t credit = 0;   // FINISH_HERE weight carried (0 = none)
  bool remote_origin = false;  // arrived via the transport (an `at ... async`)
  // Causal span ids (docs/observability.md): place bits | local counter,
  // minted at the spawn site when tracing is enabled (0 = untraced). The
  // pair links a kActivityBegin on the executing place back to the
  // kActivitySpawn that created it, across places.
  std::uint64_t span = 0;
  std::uint64_t parent_span = 0;
};

/// Takes a child's share (half) of a credit-carrying activity's remaining
/// weight. kCreditUnit supports spawn chains ~62 deep, far beyond any
/// round-trip pattern FINISH_HERE is meant for. Exhaustion aborts in release
/// builds too: a zero-weight child would be invisible to the termination
/// accounting (credit == 0 means "not a credit activity"), so the finish
/// could release while the child still runs — a silent wrong-answer failure
/// must not replace a detectable one.
inline std::uint64_t take_credit_share(Activity& parent) {
  const std::uint64_t share = parent.credit / 2;
  if (share == 0) {
    std::fprintf(stderr,
                 "[apgas] fatal: FINISH_HERE credit exhausted (spawn chain "
                 "split more than ~62 times); use the default finish "
                 "protocol for deep or branching spawn chains\n");
    std::abort();
  }
  parent.credit -= share;
  return share;
}

}  // namespace apgas
