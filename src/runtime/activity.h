// Activities and their link to the governing finish (paper §2.1, §3.1).
#pragma once

#include <cstdint>
#include <functional>

namespace apgas {

class FinishHome;

/// Finish implementation selection (paper §3.1). `kAuto` is what plain
/// `finish` gives you: it starts as a place-local atomic counter and upgrades
/// to the general distributed (transit-matrix) protocol on the first remote
/// spawn. The other values correspond to the paper's pragmas.
enum class Pragma : std::uint8_t {
  kAuto,     // dynamic: local counter, upgrade to kDefault on first `at`
  kLocal,    // FINISH_LOCAL: asserts no remote spawns
  kAsync,    // FINISH_ASYNC: single (possibly remote) activity
  kHere,     // FINISH_HERE: credit-based round trips
  kSpmd,     // FINISH_SPMD: n remote activities, no stray sub-activities
  kDense,    // FINISH_DENSE: default counting + software-routed control msgs
  kDefault,  // force the general transit-matrix protocol from the start
};

/// Globally unique identity of a finish: its home place plus a per-place
/// sequence number. Control messages carry keys; places resolve them against
/// their registries.
struct FinishKey {
  int home = -1;
  std::uint64_t seq = 0;

  [[nodiscard]] bool valid() const { return home >= 0; }
  friend bool operator==(const FinishKey&, const FinishKey&) = default;
};

struct FinishKeyHash {
  std::size_t operator()(const FinishKey& k) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(k.home) << 40) ^ k.seq);
  }
};

/// What an activity needs in order to account to its governing finish.
/// At the finish's home place we hold a direct pointer; elsewhere we carry
/// the key + protocol and resolve against the place's remote-block registry.
struct FinCtx {
  FinishHome* home = nullptr;  ///< non-null only at the finish's home place
  FinishKey key;
  Pragma mode = Pragma::kAuto;
};

/// A spawned task. `has_credit` is FINISH_HERE bookkeeping: the credit
/// travels with the task chain and returns to the home place (§3.1).
struct Activity {
  std::function<void()> body;
  FinCtx fin;                 // invalid key + null home = system activity
  bool has_credit = false;
  bool remote_origin = false;  // arrived via the transport (an `at ... async`)
  int spawn_count = 0;  // credit-carrying children (FINISH_HERE accounting)
};

}  // namespace apgas
