// The user-facing APGAS API (paper §2): finish / async / at, GlobalRef,
// PlaceLocal. These are free functions usable from inside any activity.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/congruent.h"
#include "runtime/finish.h"
#include "runtime/runtime.h"
#include "runtime/task_registry.h"
#include "runtime/trace.h"

namespace apgas {

/// `finish S` with an explicit implementation pragma (paper §3.1). The body
/// runs inline in the current activity; wait() blocks (cooperatively) until
/// every transitively spawned activity has terminated. Exceptions from the
/// body and from governed activities are rethrown here (body's first).
inline void finish(Pragma pragma, const std::function<void()>& body) {
  Runtime& rt = Runtime::get();
  FinishHome fh(rt, pragma);
  FinishHome* prev = detail::tl_open_finish;
  detail::tl_open_finish = &fh;
  std::exception_ptr body_ex;
  try {
    body();
  } catch (...) {
    body_ex = std::current_exception();
  }
  detail::tl_open_finish = prev;
  fh.wait();
  if (body_ex) std::rethrow_exception(body_ex);
}

/// Plain `finish S`: starts as a place-local counter and upgrades to the
/// distributed default protocol on the first remote spawn.
inline void finish(const std::function<void()>& body) {
  finish(Pragma::kAuto, body);
}

/// Runs `body` under a general finish and reports which specialized
/// implementation its observed pattern matches — the §3.1 implementation-
/// selection analysis as a profiling tool. Use it to decide which pragma to
/// annotate a hot finish with.
inline Pragma profile_finish(const std::function<void()>& body) {
  Runtime& rt = Runtime::get();
  FinishHome fh(rt, Pragma::kDefault);
  FinishHome* prev = detail::tl_open_finish;
  detail::tl_open_finish = &fh;
  std::exception_ptr body_ex;
  try {
    body();
  } catch (...) {
    body_ex = std::current_exception();
  }
  detail::tl_open_finish = prev;
  fh.wait();
  if (body_ex) std::rethrow_exception(body_ex);
  return fh.recommended_pragma();
}

/// `async S`: spawns a local activity under the innermost enclosing finish.
inline void async(std::function<void()> f) {
  Runtime& rt = Runtime::get();
  FinCtx ctx = current_spawn_ctx();
  Activity act;
  act.body = std::move(f);
  act.fin = ctx;
  if (trace::enabled()) {
    // Span ids are minted only when tracing is live; untraced runs keep
    // span 0 everywhere and pay nothing beyond the enabled() load.
    act.span = rt.new_span(here());
    act.parent_span = current_span();
    trace::emit(trace::Ev::kActivitySpawn, act.span,
                static_cast<std::uint64_t>(here()));  // remote bit 32 = 0
  }
  if (ctx.home != nullptr) {
    const bool parent_credit = detail::tl_open_finish == nullptr &&
                               detail::tl_activity != nullptr &&
                               detail::tl_activity->credit != 0 &&
                               ctx.home->mode() == Pragma::kHere;
    if (parent_credit) {
      // FINISH_HERE: children of credit-carrying activities take a share of
      // the parent's weight (see kCreditUnit in activity.h).
      act.credit = take_credit_share(*detail::tl_activity);
    } else {
      ctx.home->local_spawn();
    }
  } else {
    switch (ctx.mode) {
      case Pragma::kDefault:
      case Pragma::kDense:
        fin_remote_local_spawn(rt, ctx);
        break;
      case Pragma::kHere:
        act.credit = take_credit_share(*detail::tl_activity);
        break;
      default:
        assert(false &&
               "FINISH_ASYNC/FINISH_SPMD remote activities must not spawn "
               "under the governing finish");
    }
  }
  rt.sched(here()).push(std::move(act));
}

namespace detail {

/// What the remote-spawn bookkeeping produces: the wire finish context (home
/// pointer stripped — resolved at the destination), the FINISH_HERE credit
/// travelling with the task, and the causal span pair. Shared by asyncAt
/// (closure path) and asyncAtFrame (registered-function path).
struct RemoteSpawn {
  FinCtx wire;
  std::uint64_t credit = 0;
  std::uint64_t span = 0;
  std::uint64_t parent_span = 0;
};

inline RemoteSpawn prepare_remote_spawn(Runtime& rt, int p) {
  RemoteSpawn rs;
  if (trace::enabled()) {
    rs.span = rt.new_span(here());
    rs.parent_span = current_span();
    trace::emit(trace::Ev::kActivitySpawn, rs.span,
                (1ull << 32) | static_cast<std::uint32_t>(p));
  }
  FinCtx ctx = current_spawn_ctx();
  if (ctx.home != nullptr) {
    const bool parent_credit = detail::tl_open_finish == nullptr &&
                               detail::tl_activity != nullptr &&
                               detail::tl_activity->credit != 0;
    ctx.home->remote_spawn(p);
    ctx.mode = ctx.home->mode();  // may have upgraded kAuto -> kDefault
    if (ctx.mode == Pragma::kHere) {
      // Spawns from the finish body mint fresh weight; spawns from a
      // credit-carrying activity split the parent's weight.
      rs.credit = parent_credit ? take_credit_share(*detail::tl_activity)
                                : ctx.home->mint_credit();
    }
  } else {
    if (fin_before_remote_spawn(rt, ctx, p,
                                detail::tl_activity->credit != 0)) {
      rs.credit = take_credit_share(*detail::tl_activity);
    }
  }
  rs.wire = ctx;
  rs.wire.home = nullptr;  // resolved at the destination
  return rs;
}

}  // namespace detail

/// `at(p) async S`: active message — spawns an activity at place p under the
/// innermost enclosing finish. Non-blocking.
inline void asyncAt(int p, std::function<void()> f) {
  Runtime& rt = Runtime::get();
  if (p == here()) {
    async(std::move(f));
    return;
  }
  // Closures cannot cross a process boundary; fail *before*
  // prepare_remote_spawn mints credit / remote_spawn state so the abort
  // leaves the finish books untouched (diagnosable, recoverable-in-principle).
  rt.check_closure_can_reach(p);
  detail::RemoteSpawn rs = detail::prepare_remote_spawn(rt, p);
  rt.send_task(p, std::move(f), rs.wire, rs.credit, rs.span, rs.parent_span);
}

/// `at(p) async S` for a *registered* task function (task_registry.h) plus
/// serialized args — the only spawn form that crosses a process boundary
/// under the socket backend (a closure's environment has no wire form).
/// In-process it ships the same wire frame through the same handler, so code
/// written against frames behaves identically on both backends.
inline void asyncAtFrame(int p, int fn_id, x10rt::ByteBuffer args = {}) {
  Runtime& rt = Runtime::get();
  if (p == here()) {
    // The argument convention is "the task sees the unread suffix
    // [position(), size())" — identical to what send_task_frame ships — so
    // a caller that pre-read a prefix gets the same bytes locally as over
    // the wire.
    const TaskFn& fn = task_fn(fn_id);  // aborts on a bad id, like the wire
    const std::size_t pos = args.position();
    std::vector<std::byte> data = args.take_data();
    if (pos != 0) {
      data.erase(data.begin(),
                 data.begin() + static_cast<std::ptrdiff_t>(pos));
    }
    async([fn, data = std::move(data)]() mutable {
      x10rt::ByteBuffer b{std::move(data)};
      fn(b);
    });
    return;
  }
  detail::RemoteSpawn rs = detail::prepare_remote_spawn(rt, p);
  rt.send_task_frame(p, fn_id, std::move(args), rs.wire, rs.credit, rs.span,
                     rs.parent_span);
}

/// Blocking `at(p) e`: shifts to place p, evaluates f, and returns the
/// result. Implemented as its own FINISH_HERE round trip — exactly the
/// specialized protocol the paper says SPMD codes use for "gets".
template <typename F>
auto at(int p, F&& f) -> std::invoke_result_t<F> {
  using R = std::invoke_result_t<F>;
  if (p == here()) return std::forward<F>(f)();
  // Fail before the FINISH_HERE below opens (pre-bookkeeping diagnosable
  // abort); cross-process blocking gets use atArgs instead.
  Runtime::get().check_closure_can_reach(p);
  const int home = here();
  std::exception_ptr ex;
  if constexpr (std::is_void_v<R>) {
    finish(Pragma::kHere, [&] {
      asyncAt(p, [&ex, home, fn = std::forward<F>(f)] {
        std::exception_ptr thrown;
        try {
          fn();
        } catch (...) {
          thrown = std::current_exception();
        }
        asyncAt(home, [&ex, thrown] { ex = thrown; });
      });
    });
    if (ex) std::rethrow_exception(ex);
  } else {
    std::optional<R> slot;
    finish(Pragma::kHere, [&] {
      asyncAt(p, [&slot, &ex, home, fn = std::forward<F>(f)] {
        std::optional<R> value;
        std::exception_ptr thrown;
        try {
          value.emplace(fn());
        } catch (...) {
          thrown = std::current_exception();
        }
        // The value rides the returning async — this models the result
        // serialization X10 performs for `at` expressions.
        asyncAt(home, [&slot, &ex, v = std::move(value), thrown]() mutable {
          slot = std::move(v);
          ex = thrown;
        });
      });
    });
    if (ex) std::rethrow_exception(ex);
    return std::move(*slot);
  }
}

/// Fire-and-forget X10RT-level active message, *not* governed by any finish.
/// Library plumbing (e.g. GLB steal requests) uses this; user code should
/// prefer asyncAt.
inline void immediate_at(int p, std::function<void()> fn,
                         x10rt::MsgType type = x10rt::MsgType::kOther,
                         std::size_t bytes = 32) {
  trace::emit(trace::Ev::kMsgSend, static_cast<std::uint64_t>(type),
              static_cast<std::uint64_t>(p));
  x10rt::Message m;
  m.src = here();
  m.type = type;
  m.bytes = bytes;
  m.run = std::move(fn);
  Runtime::get().transport().send(p, std::move(m));
}

/// Fire-and-forget *frame* immediate: the wire twin of immediate_at for a
/// registered task function plus serialized args. Same accounting as
/// immediate_at (not finish-governed, no tasks_shipped, no ship-latency
/// sample) but crosses process boundaries. Always routed through the
/// transport, even to self, so both backends count it identically.
inline void immediateAtFrame(int p, int fn_id, x10rt::ByteBuffer args = {},
                             x10rt::MsgType type = x10rt::MsgType::kOther) {
  Runtime::get().send_immediate_frame(p, fn_id, std::move(args), type);
}

// --- typed remote tasks (ISSUE 10) ------------------------------------------
//
// The raw frame convention (fn id + hand-packed ByteBuffer) works but makes
// every call site a codec. These wrappers play the role of the X10 compiler's
// serialization pass: arguments travel through x10rt::Ser<T> in call order
// and are rebuilt as a tuple at the destination.
//
// Registration contract: construct RemoteFn/RemoteGet objects at namespace
// scope (pre-main, hence pre-fork) so every place process assigns the same
// ids — the same rule as register_task_fn.

/// Packs `args` through Ser and spawns the registered frame task `fn_id` at
/// place p under the innermost finish. The handler is expected to unpack the
/// same types in the same order (use RemoteFn to get that by construction).
template <typename... Ts>
void asyncAtArgs(int p, int fn_id, const Ts&... args) {
  x10rt::ByteBuffer b;
  x10rt::ser_put(b, args...);
  asyncAtFrame(p, fn_id, std::move(b));
}

/// A void remote function with typed arguments. Wraps `void fn(Args...)` in
/// an auto-registered frame task whose trampoline Ser-decodes
/// std::tuple<std::decay_t<Args>...> and applies `fn`.
template <typename... Args>
class RemoteFn {
 public:
  explicit RemoteFn(void (*fn)(Args...))
      : id_(register_task_fn([fn](x10rt::ByteBuffer& b) {
          auto tup = x10rt::ser_get<std::tuple<std::decay_t<Args>...>>(b);
          std::apply(fn, std::move(tup));
        })) {}

  [[nodiscard]] int id() const { return id_; }

 private:
  int id_;
};

/// Typed spawn: each actual is encoded with the *declared* parameter type
/// (Ser<std::decay_t<Args>>), so literals and convertibles ship in the
/// registered signature's wire form, not their own.
template <typename... Args, typename... Actuals>
void asyncAtArgs(int p, const RemoteFn<Args...>& fn, const Actuals&... args) {
  static_assert(sizeof...(Args) == sizeof...(Actuals),
                "asyncAtArgs: argument count must match the RemoteFn");
  x10rt::ByteBuffer b;
  (x10rt::Ser<std::decay_t<Args>>::put(b, args), ...);
  asyncAtFrame(p, fn.id(), std::move(b));
}

namespace detail {

/// Home-side landing slot of one blocking typed get, addressed by pointer
/// token inside the request frame. Lives on the caller's stack for the
/// duration of its FINISH_HERE, which the response spawn is governed by.
template <typename R>
struct GetState {
  std::optional<R> value;
  std::exception_ptr ex;
};

/// Response leg of the typed get, one registered task per result type.
/// Frame: [token u64][home i32][has_ex u8][Ser<R> | encoded exception].
/// The id is a static data member of a class template: its dynamic
/// initialization runs pre-main wherever the type is instantiated, and the
/// launcher forks after static init, so every place process agrees on it.
template <typename R>
struct GetRsp {
  static void handler(x10rt::ByteBuffer& b) {
    const auto token = b.get<std::uint64_t>();
    const auto home = b.get<std::int32_t>();
    if (home != here()) {
      assert(false && "typed-get response landed away from home");
      return;
    }
    auto* st = reinterpret_cast<GetState<R>*>(
        static_cast<std::uintptr_t>(token));
    if (b.get<std::uint8_t>() != 0) {
      st->ex = wire_decode_exception(b);
    } else {
      st->value.emplace(x10rt::ser_get<R>(b));
    }
  }
  static const int id;
};

template <typename R>
const int GetRsp<R>::id = register_task_fn(&GetRsp<R>::handler);

}  // namespace detail

/// A value-returning remote function with typed arguments: the wire form of
/// the blocking `at(p) e` get. The request trampoline applies `fn` and
/// frame-spawns the Ser-encoded result (or the encoded exception) back to
/// the caller.
template <typename R, typename... Args>
class RemoteGet {
 public:
  explicit RemoteGet(R (*fn)(Args...))
      : id_(register_task_fn([fn](x10rt::ByteBuffer& b) {
          const auto token = b.get<std::uint64_t>();
          const auto home = b.get<std::int32_t>();
          x10rt::ByteBuffer rsp;
          rsp.put(token);
          rsp.put(home);
          try {
            auto tup = x10rt::ser_get<std::tuple<std::decay_t<Args>...>>(b);
            R value = std::apply(fn, std::move(tup));
            rsp.put<std::uint8_t>(0);
            x10rt::Ser<R>::put(rsp, value);
          } catch (...) {
            rsp.put<std::uint8_t>(1);
            wire_encode_exception(rsp, std::current_exception());
          }
          asyncAtFrame(home, detail::GetRsp<R>::id, std::move(rsp));
        })) {}

  [[nodiscard]] int id() const { return id_; }

 private:
  int id_;
};

/// Blocking typed get: `atArgs(p, fn, args...)` shifts to place p, applies
/// the registered function, and returns the Ser-decoded result — the
/// cross-process form of `at(p, e)`, same FINISH_HERE round-trip shape.
/// Remote exceptions arrive through the wire codec (standard exception
/// types preserved, others degrade to std::runtime_error).
template <typename R, typename... Args, typename... Actuals>
R atArgs(int p, const RemoteGet<R, Args...>& fn, const Actuals&... args) {
  static_assert(sizeof...(Args) == sizeof...(Actuals),
                "atArgs: argument count must match the RemoteGet");
  detail::GetState<R> st;
  x10rt::ByteBuffer req;
  req.put(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(&st)));
  req.put<std::int32_t>(here());
  (x10rt::Ser<std::decay_t<Args>>::put(req, args), ...);
  finish(Pragma::kHere, [&] { asyncAtFrame(p, fn.id(), std::move(req)); });
  if (st.ex) std::rethrow_exception(st.ex);
  return std::move(*st.value);
}

/// A global reference: freely copyable between places, dereferenceable only
/// at its home place (checked, as X10's type system does statically).
template <typename T>
class GlobalRef {
 public:
  GlobalRef() = default;
  explicit GlobalRef(T* obj) : home_(here()), ptr_(obj) {}

  [[nodiscard]] int home() const { return home_; }
  [[nodiscard]] bool valid() const { return home_ >= 0; }

  T& operator*() const {
    assert(here() == home_ && "GlobalRef dereferenced away from home");
    return *ptr_;
  }
  T* operator->() const {
    assert(here() == home_ && "GlobalRef dereferenced away from home");
    return ptr_;
  }

 private:
  int home_ = -1;
  T* ptr_ = nullptr;
};

/// Per-place storage, X10's PlaceLocalHandle: one slot per place, each place
/// initializes and accesses only its own.
template <typename T>
class PlaceLocal {
 public:
  PlaceLocal() : slots_(static_cast<std::size_t>(num_places())) {}

  template <typename... Args>
  T& init_here(Args&&... args) {
    auto& slot = slots_[static_cast<std::size_t>(here())];
    slot = std::make_unique<T>(std::forward<Args>(args)...);
    return *slot;
  }

  [[nodiscard]] bool initialized_here() const {
    return slots_[static_cast<std::size_t>(here())] != nullptr;
  }

  T& local() {
    auto& slot = slots_[static_cast<std::size_t>(here())];
    assert(slot && "PlaceLocal accessed before init_here()");
    return *slot;
  }

 private:
  std::vector<std::unique_ptr<T>> slots_;
};

}  // namespace apgas
