// The user-facing APGAS API (paper §2): finish / async / at, GlobalRef,
// PlaceLocal. These are free functions usable from inside any activity.
#pragma once

#include <atomic>
#include <cassert>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/congruent.h"
#include "runtime/finish.h"
#include "runtime/runtime.h"
#include "runtime/task_registry.h"
#include "runtime/trace.h"

namespace apgas {

/// `finish S` with an explicit implementation pragma (paper §3.1). The body
/// runs inline in the current activity; wait() blocks (cooperatively) until
/// every transitively spawned activity has terminated. Exceptions from the
/// body and from governed activities are rethrown here (body's first).
inline void finish(Pragma pragma, const std::function<void()>& body) {
  Runtime& rt = Runtime::get();
  FinishHome fh(rt, pragma);
  FinishHome* prev = detail::tl_open_finish;
  detail::tl_open_finish = &fh;
  std::exception_ptr body_ex;
  try {
    body();
  } catch (...) {
    body_ex = std::current_exception();
  }
  detail::tl_open_finish = prev;
  fh.wait();
  if (body_ex) std::rethrow_exception(body_ex);
}

/// Plain `finish S`: starts as a place-local counter and upgrades to the
/// distributed default protocol on the first remote spawn.
inline void finish(const std::function<void()>& body) {
  finish(Pragma::kAuto, body);
}

/// Runs `body` under a general finish and reports which specialized
/// implementation its observed pattern matches — the §3.1 implementation-
/// selection analysis as a profiling tool. Use it to decide which pragma to
/// annotate a hot finish with.
inline Pragma profile_finish(const std::function<void()>& body) {
  Runtime& rt = Runtime::get();
  FinishHome fh(rt, Pragma::kDefault);
  FinishHome* prev = detail::tl_open_finish;
  detail::tl_open_finish = &fh;
  std::exception_ptr body_ex;
  try {
    body();
  } catch (...) {
    body_ex = std::current_exception();
  }
  detail::tl_open_finish = prev;
  fh.wait();
  if (body_ex) std::rethrow_exception(body_ex);
  return fh.recommended_pragma();
}

/// `async S`: spawns a local activity under the innermost enclosing finish.
inline void async(std::function<void()> f) {
  Runtime& rt = Runtime::get();
  FinCtx ctx = current_spawn_ctx();
  Activity act;
  act.body = std::move(f);
  act.fin = ctx;
  if (trace::enabled()) {
    // Span ids are minted only when tracing is live; untraced runs keep
    // span 0 everywhere and pay nothing beyond the enabled() load.
    act.span = rt.new_span(here());
    act.parent_span = current_span();
    trace::emit(trace::Ev::kActivitySpawn, act.span,
                static_cast<std::uint64_t>(here()));  // remote bit 32 = 0
  }
  if (ctx.home != nullptr) {
    const bool parent_credit = detail::tl_open_finish == nullptr &&
                               detail::tl_activity != nullptr &&
                               detail::tl_activity->credit != 0 &&
                               ctx.home->mode() == Pragma::kHere;
    if (parent_credit) {
      // FINISH_HERE: children of credit-carrying activities take a share of
      // the parent's weight (see kCreditUnit in activity.h).
      act.credit = take_credit_share(*detail::tl_activity);
    } else {
      ctx.home->local_spawn();
    }
  } else {
    switch (ctx.mode) {
      case Pragma::kDefault:
      case Pragma::kDense:
        fin_remote_local_spawn(rt, ctx);
        break;
      case Pragma::kHere:
        act.credit = take_credit_share(*detail::tl_activity);
        break;
      default:
        assert(false &&
               "FINISH_ASYNC/FINISH_SPMD remote activities must not spawn "
               "under the governing finish");
    }
  }
  rt.sched(here()).push(std::move(act));
}

namespace detail {

/// What the remote-spawn bookkeeping produces: the wire finish context (home
/// pointer stripped — resolved at the destination), the FINISH_HERE credit
/// travelling with the task, and the causal span pair. Shared by asyncAt
/// (closure path) and asyncAtFrame (registered-function path).
struct RemoteSpawn {
  FinCtx wire;
  std::uint64_t credit = 0;
  std::uint64_t span = 0;
  std::uint64_t parent_span = 0;
};

inline RemoteSpawn prepare_remote_spawn(Runtime& rt, int p) {
  RemoteSpawn rs;
  if (trace::enabled()) {
    rs.span = rt.new_span(here());
    rs.parent_span = current_span();
    trace::emit(trace::Ev::kActivitySpawn, rs.span,
                (1ull << 32) | static_cast<std::uint32_t>(p));
  }
  FinCtx ctx = current_spawn_ctx();
  if (ctx.home != nullptr) {
    const bool parent_credit = detail::tl_open_finish == nullptr &&
                               detail::tl_activity != nullptr &&
                               detail::tl_activity->credit != 0;
    ctx.home->remote_spawn(p);
    ctx.mode = ctx.home->mode();  // may have upgraded kAuto -> kDefault
    if (ctx.mode == Pragma::kHere) {
      // Spawns from the finish body mint fresh weight; spawns from a
      // credit-carrying activity split the parent's weight.
      rs.credit = parent_credit ? take_credit_share(*detail::tl_activity)
                                : ctx.home->mint_credit();
    }
  } else {
    if (fin_before_remote_spawn(rt, ctx, p,
                                detail::tl_activity->credit != 0)) {
      rs.credit = take_credit_share(*detail::tl_activity);
    }
  }
  rs.wire = ctx;
  rs.wire.home = nullptr;  // resolved at the destination
  return rs;
}

}  // namespace detail

/// `at(p) async S`: active message — spawns an activity at place p under the
/// innermost enclosing finish. Non-blocking.
inline void asyncAt(int p, std::function<void()> f) {
  Runtime& rt = Runtime::get();
  if (p == here()) {
    async(std::move(f));
    return;
  }
  detail::RemoteSpawn rs = detail::prepare_remote_spawn(rt, p);
  rt.send_task(p, std::move(f), rs.wire, rs.credit, rs.span, rs.parent_span);
}

/// `at(p) async S` for a *registered* task function (task_registry.h) plus
/// serialized args — the only spawn form that crosses a process boundary
/// under the socket backend (a closure's environment has no wire form).
/// In-process it ships the same wire frame through the same handler, so code
/// written against frames behaves identically on both backends.
inline void asyncAtFrame(int p, int fn_id, x10rt::ByteBuffer args = {}) {
  Runtime& rt = Runtime::get();
  if (p == here()) {
    TaskFn fn = task_fn(fn_id);  // aborts on a bad id, same as the wire path
    async([fn, data = args.take_data()]() mutable {
      x10rt::ByteBuffer b{std::move(data)};
      fn(b);
    });
    return;
  }
  detail::RemoteSpawn rs = detail::prepare_remote_spawn(rt, p);
  rt.send_task_frame(p, fn_id, std::move(args), rs.wire, rs.credit, rs.span,
                     rs.parent_span);
}

/// Blocking `at(p) e`: shifts to place p, evaluates f, and returns the
/// result. Implemented as its own FINISH_HERE round trip — exactly the
/// specialized protocol the paper says SPMD codes use for "gets".
template <typename F>
auto at(int p, F&& f) -> std::invoke_result_t<F> {
  using R = std::invoke_result_t<F>;
  if (p == here()) return std::forward<F>(f)();
  const int home = here();
  std::exception_ptr ex;
  if constexpr (std::is_void_v<R>) {
    finish(Pragma::kHere, [&] {
      asyncAt(p, [&ex, home, fn = std::forward<F>(f)] {
        std::exception_ptr thrown;
        try {
          fn();
        } catch (...) {
          thrown = std::current_exception();
        }
        asyncAt(home, [&ex, thrown] { ex = thrown; });
      });
    });
    if (ex) std::rethrow_exception(ex);
  } else {
    std::optional<R> slot;
    finish(Pragma::kHere, [&] {
      asyncAt(p, [&slot, &ex, home, fn = std::forward<F>(f)] {
        std::optional<R> value;
        std::exception_ptr thrown;
        try {
          value.emplace(fn());
        } catch (...) {
          thrown = std::current_exception();
        }
        // The value rides the returning async — this models the result
        // serialization X10 performs for `at` expressions.
        asyncAt(home, [&slot, &ex, v = std::move(value), thrown]() mutable {
          slot = std::move(v);
          ex = thrown;
        });
      });
    });
    if (ex) std::rethrow_exception(ex);
    return std::move(*slot);
  }
}

/// Fire-and-forget X10RT-level active message, *not* governed by any finish.
/// Library plumbing (e.g. GLB steal requests) uses this; user code should
/// prefer asyncAt.
inline void immediate_at(int p, std::function<void()> fn,
                         x10rt::MsgType type = x10rt::MsgType::kOther,
                         std::size_t bytes = 32) {
  trace::emit(trace::Ev::kMsgSend, static_cast<std::uint64_t>(type),
              static_cast<std::uint64_t>(p));
  x10rt::Message m;
  m.src = here();
  m.type = type;
  m.bytes = bytes;
  m.run = std::move(fn);
  Runtime::get().transport().send(p, std::move(m));
}

/// A global reference: freely copyable between places, dereferenceable only
/// at its home place (checked, as X10's type system does statically).
template <typename T>
class GlobalRef {
 public:
  GlobalRef() = default;
  explicit GlobalRef(T* obj) : home_(here()), ptr_(obj) {}

  [[nodiscard]] int home() const { return home_; }
  [[nodiscard]] bool valid() const { return home_ >= 0; }

  T& operator*() const {
    assert(here() == home_ && "GlobalRef dereferenced away from home");
    return *ptr_;
  }
  T* operator->() const {
    assert(here() == home_ && "GlobalRef dereferenced away from home");
    return ptr_;
  }

 private:
  int home_ = -1;
  T* ptr_ = nullptr;
};

/// Per-place storage, X10's PlaceLocalHandle: one slot per place, each place
/// initializes and accesses only its own.
template <typename T>
class PlaceLocal {
 public:
  PlaceLocal() : slots_(static_cast<std::size_t>(num_places())) {}

  template <typename... Args>
  T& init_here(Args&&... args) {
    auto& slot = slots_[static_cast<std::size_t>(here())];
    slot = std::make_unique<T>(std::forward<Args>(args)...);
    return *slot;
  }

  [[nodiscard]] bool initialized_here() const {
    return slots_[static_cast<std::size_t>(here())] != nullptr;
  }

  T& local() {
    auto& slot = slots_[static_cast<std::size_t>(here())];
    assert(slot && "PlaceLocal accessed before init_here()");
    return *slot;
  }

 private:
  std::vector<std::unique_ptr<T>> slots_;
};

}  // namespace apgas
