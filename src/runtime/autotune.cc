#include "runtime/autotune.h"

#include <algorithm>

#include "runtime/histogram.h"
#include "runtime/scheduler.h"

namespace apgas {

Autotune::Autotune(int places, Knobs knobs)
    : places_(places),
      knobs_(knobs),
      scheds_(static_cast<std::size_t>(places), nullptr) {
  if (knobs_.tick_interval_us == 0) knobs_.tick_interval_us = 1;
  if (knobs_.probe_period == 0) knobs_.probe_period = 1;
  state_.reserve(static_cast<std::size_t>(places));
  for (int p = 0; p < places; ++p) {
    auto ps = std::make_unique<PlaceState>();
    ps->pairs.resize(static_cast<std::size_t>(places));
    state_.push_back(std::move(ps));
  }
}

void Autotune::attach_transport(x10rt::Transport* tr) { tr_ = tr; }

void Autotune::attach_scheduler(int place, Scheduler* sched) {
  scheds_[static_cast<std::size_t>(place)] = sched;
}

void Autotune::set_adjust_hook(
    std::function<void(int, int, Knob, std::uint64_t)> hook) {
  adjust_hook_ = std::move(hook);
}

void Autotune::on_flush(int src, int dst, std::uint32_t records,
                        x10rt::FlushReason reason, std::uint64_t residency_ns) {
  if (src < 0 || src >= places_ || dst < 0 || dst >= places_) return;
  if (reason == x10rt::FlushReason::kQuiesce) return;
  auto& ps = *state_[static_cast<std::size_t>(src)];
  std::scoped_lock lock(ps.mu);
  auto& st = ps.pairs[static_cast<std::size_t>(dst)];
  st.residency.add(residency_ns);
  st.window.envelopes += 1;
  st.window.records += records;
  switch (reason) {
    case x10rt::FlushReason::kSize: st.window.size_flushes += 1; break;
    case x10rt::FlushReason::kCount: st.window.count_flushes += 1; break;
    case x10rt::FlushReason::kIdle: st.window.idle_flushes += 1; break;
    // A latency-forced cut for rendezvous traffic carries the same signal
    // as an idle flush: the envelope never earned its residency.
    case x10rt::FlushReason::kImmediate: st.window.idle_flushes += 1; break;
    case x10rt::FlushReason::kQuiesce: break;  // unreachable (early return)
  }
}

void Autotune::on_rtt_sample(int src, int dst, std::uint64_t rtt_ns) {
  if (src < 0 || src >= places_ || dst < 0 || dst >= places_) return;
  rtt_samples_.fetch_add(1, std::memory_order_relaxed);
  auto& ps = *state_[static_cast<std::size_t>(src)];
  std::scoped_lock lock(ps.mu);
  auto& st = ps.pairs[static_cast<std::size_t>(dst)];
  st.srtt.sample(rtt_ns);
  st.rtt_dirty = true;
}

void Autotune::maybe_tick(int place) {
  if (place < 0 || place >= places_) return;
  auto& next = state_[static_cast<std::size_t>(place)]->next_tick_ns;
  const std::uint64_t now = hist::now_ns();
  std::uint64_t prev = next.load(std::memory_order_relaxed);
  if (now < prev) return;
  // One caller wins the tick; the rest skip (same admission pattern as
  // Transport::retx_maybe_pump).
  if (!next.compare_exchange_strong(prev, now + knobs_.tick_interval_us * 1000,
                                    std::memory_order_relaxed)) {
    return;
  }
  tick(place);
}

void Autotune::tick(int place) {
  if (place < 0 || place >= places_) return;
  ticks_.fetch_add(1, std::memory_order_relaxed);
  auto& ps = *state_[static_cast<std::size_t>(place)];
  {
    std::scoped_lock lock(ps.mu);
    ps.tick_count += 1;
  }
  tick_coalesce(place, ps);
  tick_retx(place, ps);
  tick_park(place, ps);
}

void Autotune::tick_coalesce(int place, PlaceState& ps) {
  if (tr_ == nullptr || knobs_.coalesce_bytes_cap == 0) return;
  struct Apply {
    int dst;
    std::size_t threshold;
    bool up;
  };
  std::vector<Apply> apply;
  {
    std::scoped_lock lock(ps.mu);
    for (int d = 0; d < places_; ++d) {
      if (d == place) continue;
      auto& st = ps.pairs[static_cast<std::size_t>(d)];
      // Fold the transport's "diverted direct by the dynamic threshold"
      // counter into this window.
      const std::uint64_t byp = tr_->coalesce_dyn_bypass(place, d);
      st.window.bypasses = byp - st.last_dyn_bypass;
      st.last_dyn_bypass = byp;
      st.ticks_since_probe += 1;
      // Probe policy for bypass-only (collapsed) windows: rush when the
      // divert rate jumps past twice the primed baseline — a flood arriving
      // on a pair collapsed by a latency phase re-coalesces within one tick
      // — and otherwise only on the slow safety cadence, so a steady
      // latency phase is not re-parked every probe_period ticks.
      bool allow_probe = false;
      if (st.window.envelopes == 0 && st.window.bypasses > 0) {
        const std::uint64_t base = std::max(
            st.bypass_rate.primed ? st.bypass_rate.value : 0,
            tune::kProbeRushMinBypasses);
        const bool rush =
            st.bypass_rate.primed && st.window.bypasses > base * 2;
        const bool slow = st.ticks_since_probe >=
                          knobs_.probe_period * tune::kProbeSlowFactor;
        allow_probe = rush || slow;
        // The baseline tracks collapsed windows only, and only after the
        // probe decision so a jump is still visible against the old value.
        st.bypass_rate.add(st.window.bypasses);
      }
      const std::size_t cur =
          st.threshold != 0 ? st.threshold : knobs_.coalesce_bytes_cap;
      const std::size_t next = tune::coalesce_next_threshold(
          cur, knobs_.coalesce_bytes_cap, knobs_.residency_budget_us * 1000,
          st.residency, st.window, allow_probe);
      if (next != cur) {
        st.threshold = next;
        apply.push_back({d, next, next > cur});
        if (next > cur && st.window.envelopes == 0) {
          st.ticks_since_probe = 0;  // an upward probe just fired
        }
        if (next == tune::kCoalesceFloorBytes) {
          // New latency phase: re-prime the divert baseline and restart the
          // safety-probe clock from the collapse, not from long-past probes.
          st.bypass_rate = tune::Ewma{};
          st.ticks_since_probe = 0;
        }
      }
      st.window = tune::CoalesceWindow{};
    }
  }
  for (const auto& a : apply) {
    tr_->set_coalesce_threshold(place, a.dst, a.threshold);
    (a.up ? adjust_up_ : adjust_down_).fetch_add(1, std::memory_order_relaxed);
    if (adjust_hook_) {
      adjust_hook_(place, a.dst, Knob::kCoalesce, a.threshold);
    }
  }
}

void Autotune::tick_retx(int place, PlaceState& ps) {
  if (tr_ == nullptr || knobs_.retx_timeout_us == 0) return;
  const std::uint64_t floor_us =
      std::max<std::uint64_t>(1, knobs_.retx_timeout_us / 4);
  const std::uint64_t ceil_us =
      std::max(knobs_.retx_timeout_us, knobs_.retx_backoff_max_us);
  struct Apply {
    int dst;
    std::uint64_t rto_us;
  };
  std::vector<Apply> apply;
  {
    std::scoped_lock lock(ps.mu);
    for (int d = 0; d < places_; ++d) {
      if (d == place) continue;
      auto& st = ps.pairs[static_cast<std::size_t>(d)];
      if (!st.rtt_dirty) continue;
      st.rtt_dirty = false;
      const std::uint64_t rto = st.srtt.rto_us(floor_us, ceil_us);
      if (rto == 0) continue;
      // Apply only on a meaningful move (>= 1/8 of the current value) so
      // steady-state traffic doesn't hammer the retx shard lock.
      const std::uint64_t cur = st.applied_rto_us;
      const std::uint64_t diff = rto > cur ? rto - cur : cur - rto;
      if (cur != 0 && diff < cur / 8) continue;
      st.applied_rto_us = rto;
      apply.push_back({d, rto});
    }
  }
  for (const auto& a : apply) {
    tr_->set_retx_rto(place, a.dst, a.rto_us);
    rto_updates_.fetch_add(1, std::memory_order_relaxed);
    if (adjust_hook_) adjust_hook_(place, a.dst, Knob::kRetxRto, a.rto_us);
  }
}

void Autotune::tick_park(int place, PlaceState& ps) {
  Scheduler* sched = scheds_[static_cast<std::size_t>(place)];
  if (sched == nullptr) return;
  const std::uint64_t steals = sched->steals();
  const std::uint64_t overflow = sched->overflow_drained();
  const std::uint64_t idle = sched->idle_transitions();
  std::uint64_t next = 0;
  std::uint64_t cur = 0;
  {
    std::scoped_lock lock(ps.mu);
    const std::uint64_t work_delta =
        (steals - ps.last_steals) + (overflow - ps.last_overflow);
    const std::uint64_t idle_delta = idle - ps.last_idle;
    ps.last_steals = steals;
    ps.last_overflow = overflow;
    ps.last_idle = idle;
    cur = sched->park_ceiling_us();
    next = tune::park_next_ceiling(cur, knobs_.park_min_us, knobs_.park_max_us,
                                   work_delta, idle_delta);
  }
  if (next != cur) {
    sched->set_park_ceiling_us(next);
    park_adjusts_.fetch_add(1, std::memory_order_relaxed);
    if (adjust_hook_) adjust_hook_(place, -1, Knob::kPark, next);
  }
}

std::vector<Autotune::PairDiag> Autotune::pair_diag(int src) const {
  std::vector<PairDiag> out;
  if (src < 0 || src >= places_) return out;
  const auto& ps = *state_[static_cast<std::size_t>(src)];
  std::scoped_lock lock(ps.mu);
  for (int d = 0; d < places_; ++d) {
    const auto& st = ps.pairs[static_cast<std::size_t>(d)];
    if (st.threshold == 0 && !st.residency.primed && !st.srtt.primed) continue;
    PairDiag pd;
    pd.dst = d;
    pd.threshold =
        st.threshold != 0 ? st.threshold : knobs_.coalesce_bytes_cap;
    pd.residency_ewma_ns = st.residency.value;
    pd.srtt_us = st.srtt.srtt_ns / 1000;
    pd.rttvar_us = st.srtt.rttvar_ns / 1000;
    pd.rto_us = st.applied_rto_us;
    out.push_back(pd);
  }
  return out;
}

std::uint64_t Autotune::park_ceiling_us(int place) const {
  if (place < 0 || place >= places_) return 0;
  const Scheduler* sched = scheds_[static_cast<std::size_t>(place)];
  return sched != nullptr ? sched->park_ceiling_us() : 0;
}

}  // namespace apgas
