// Online self-tuning of transport and scheduler knobs (ROADMAP item 5;
// docs/transport.md "Adaptive tuning").
//
// The paper's petascale numbers depended on hand-tuning communication
// batching and polling per workload; the static knobs that make the flood
// probe fast (big coalescing envelopes, long retransmit timers, long parks)
// are exactly wrong for latency-sensitive finish-shaped traffic. The
// Autotune controller closes that gap online, per place, from signals the
// runtime already records:
//
//   * Coalescing — every (src,dst) pair carries a dynamic flush threshold.
//     It starts at the static `coalesce_bytes` cap, shrinks when a windowed
//     EWMA of envelope residency exceeds the configured latency budget (or
//     when envelopes degenerate to ~1 record flushed by idle — coalescing as
//     pure overhead), and grows back toward the cap when residency is
//     comfortable and size-flushes dominate. A threshold below the record
//     size diverts sends to the direct path entirely.
//   * Retransmit timers — per-(src,dst) Jacobson/Karels SRTT + RTTVAR from
//     first-transmission ack latencies (Karn's rule: retransmitted sequences
//     never contribute samples). RTO = SRTT + 4·RTTVAR, clamped between a
//     quarter of the static `retx_timeout_us` and `retx_backoff_max_us`.
//   * Worker parking — the park-backoff ceiling of each place's workers
//     shrinks toward `park_backoff_min_us` while steal/overflow work is
//     flowing (flood phases spin longer) and grows toward
//     `park_backoff_max_us` when idle transitions dominate (quiet phases
//     park sooner and longer).
//
// The controller is ticked (time-gated) from Transport::poll_batch and the
// scheduler idle hook. It exists only when `Config::autotune > 0`; when off,
// nothing ever installs a hook or a dynamic threshold and the runtime's
// behavior is bit-for-bit the static one.
//
// The decision rules live in the `tune` namespace as pure deterministic
// functions over plain structs so the unit suite exercises them without a
// runtime (tests/test_autotune.cc).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "x10rt/transport.h"

namespace apgas {

class Scheduler;

namespace tune {

/// Integer EWMA with alpha = 1/8 (the TCP SRTT gain): deterministic, no
/// floating point, first sample primes the average.
struct Ewma {
  std::uint64_t value = 0;
  bool primed = false;

  void add(std::uint64_t sample) {
    if (!primed) {
      value = sample;
      primed = true;
      return;
    }
    const std::int64_t err =
        static_cast<std::int64_t>(sample) - static_cast<std::int64_t>(value);
    value = static_cast<std::uint64_t>(static_cast<std::int64_t>(value) +
                                       err / 8);
  }
};

/// Jacobson/Karels round-trip estimator (RFC 6298 constants): SRTT gain 1/8,
/// RTTVAR gain 1/4, RTO = SRTT + 4·RTTVAR. All nanoseconds internally.
struct SrttEstimator {
  std::uint64_t srtt_ns = 0;
  std::uint64_t rttvar_ns = 0;
  bool primed = false;

  void sample(std::uint64_t rtt_ns) {
    if (!primed) {
      srtt_ns = rtt_ns;
      rttvar_ns = rtt_ns / 2;
      primed = true;
      return;
    }
    const std::int64_t err = static_cast<std::int64_t>(rtt_ns) -
                             static_cast<std::int64_t>(srtt_ns);
    const std::int64_t abs_err = err < 0 ? -err : err;
    rttvar_ns = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(rttvar_ns) +
        (abs_err - static_cast<std::int64_t>(rttvar_ns)) / 4);
    srtt_ns = static_cast<std::uint64_t>(static_cast<std::int64_t>(srtt_ns) +
                                         err / 8);
  }

  /// Retransmit timeout in microseconds, clamped into [floor_us, ceil_us].
  /// 0 while unprimed (caller keeps the static timeout).
  [[nodiscard]] std::uint64_t rto_us(std::uint64_t floor_us,
                                     std::uint64_t ceil_us) const {
    if (!primed) return 0;
    const std::uint64_t raw_us = (srtt_ns + 4 * rttvar_ns) / 1000 + 1;
    if (ceil_us < floor_us) ceil_us = floor_us;
    if (raw_us < floor_us) return floor_us;
    if (raw_us > ceil_us) return ceil_us;
    return raw_us;
  }
};

/// Per-window coalescing evidence for one (src,dst) pair. Quiescence flushes
/// are deliberately absent: teardown drains every open envelope regardless of
/// threshold, so they carry no information about the workload.
struct CoalesceWindow {
  std::uint64_t size_flushes = 0;
  std::uint64_t count_flushes = 0;
  std::uint64_t idle_flushes = 0;
  std::uint64_t envelopes = 0;  ///< size + count + idle flushes
  std::uint64_t records = 0;    ///< logical AMs inside those envelopes
  std::uint64_t bypasses = 0;   ///< sends diverted direct by the dyn threshold
};

/// Smallest dynamic threshold: below any record size, so the pair's small
/// sends take the direct path (coalescing effectively off for the pair).
inline constexpr std::size_t kCoalesceFloorBytes = 1;
/// Where an upward probe from the floor restarts: past the record header so
/// small AMs coalesce again and produce flush evidence.
inline constexpr std::size_t kCoalesceProbeBytes = 64;
/// Rush probes require the window's bypass count to at least double a primed
/// baseline of this many diverted sends — jitter on a trickle is not a phase
/// change.
inline constexpr std::uint64_t kProbeRushMinBypasses = 64;
/// Safety probes fire every `probe_period * kProbeSlowFactor` ticks: the
/// bound on how long a collapsed pair can ignore a flood whose direct-send
/// rate happens to match the latency phase that caused the collapse.
inline constexpr std::uint64_t kProbeSlowFactor = 16;

/// One deterministic threshold decision for a (src,dst) pair.
///
///   * shrink (÷2) when the residency EWMA exceeds the budget — records are
///     dwelling in open envelopes longer than the latency budget allows;
///   * collapse to the floor when flushes are idle/count-driven with under
///     two records per envelope — the layer is pure overhead, go direct;
///   * grow (×4, toward `cap`) when size-flushes dominate and residency sits
///     at half budget or below — batching is earning its keep;
///   * probe upward from a bypass-only window when `allow_probe` (the caller
///     rate-limits probes) so a flood following a latency phase can climb
///     back; otherwise hold.
inline std::size_t coalesce_next_threshold(std::size_t cur, std::size_t cap,
                                           std::uint64_t budget_ns,
                                           const Ewma& residency,
                                           const CoalesceWindow& w,
                                           bool allow_probe) {
  if (cap == 0) return 0;  // coalescing statically off: nothing to tune
  if (cur == 0 || cur > cap) cur = cap;
  const std::uint64_t flushes =
      w.size_flushes + w.count_flushes + w.idle_flushes;
  if (flushes == 0) {
    if (w.bypasses > 0 && allow_probe && cur < cap) {
      return std::min(cap, std::max(cur * 2, kCoalesceProbeBytes));
    }
    return cur;
  }
  if (residency.primed && residency.value > budget_ns) {
    return std::max(cur / 2, kCoalesceFloorBytes);
  }
  const bool size_dominates = w.size_flushes * 2 >= flushes;
  if (!size_dominates && w.records < w.envelopes * 2) {
    return kCoalesceFloorBytes;
  }
  const bool comfortable = !residency.primed || residency.value * 2 <= budget_ns;
  if (size_dominates && comfortable && cur < cap) {
    return std::min(cap, std::max(cur * 4, kCoalesceProbeBytes));
  }
  return cur;
}

/// One deterministic park-ceiling decision for a place's workers, from the
/// last window's successful steals + overflow drains (`work_delta`) versus
/// busy->idle transitions (`idle_delta`). Work-dominated windows halve the
/// ceiling (short parks ≈ spinning, stay responsive); idle-dominated windows
/// double it (save the CPU). Both clamped into [min_us, max_us].
inline std::uint64_t park_next_ceiling(std::uint64_t cur, std::uint64_t min_us,
                                       std::uint64_t max_us,
                                       std::uint64_t work_delta,
                                       std::uint64_t idle_delta) {
  if (min_us == 0) min_us = 1;
  if (max_us < min_us) max_us = min_us;
  if (cur < min_us) cur = min_us;
  if (cur > max_us) cur = max_us;
  if (work_delta == 0 && idle_delta == 0) return cur;
  if (work_delta >= idle_delta * 4) return std::max(min_us, cur / 2);
  if (idle_delta > work_delta) return std::min(max_us, cur * 2);
  return cur;
}

}  // namespace tune

/// The per-place online controller. One instance per Runtime (or per bench
/// harness: everything except the park leg works against a bare
/// x10rt::Transport, no Runtime required).
class Autotune {
 public:
  struct Knobs {
    std::uint64_t residency_budget_us = 50;  ///< coalesce latency budget
    std::size_t coalesce_bytes_cap = 0;      ///< static cap (0 = no coalescing)
    std::uint64_t retx_timeout_us = 0;       ///< static RTO anchor (0 = off)
    std::uint64_t retx_backoff_max_us = 50'000;  ///< adaptive RTO ceiling
    std::uint64_t park_min_us = 1;
    std::uint64_t park_max_us = 200;
    std::uint64_t tick_interval_us = 100;  ///< adjustment cadence per place
    /// Granularity of upward probes from a collapsed pair. A *rush* probe
    /// fires on any tick whose bypass count more than doubles the pair's
    /// primed bypass-rate EWMA (a flood arriving on a latency-bound pair); a
    /// *safety* probe fires after `probe_period * tune::kProbeSlowFactor`
    /// probe-free ticks so a steady latency phase pays at most one wrong
    /// tick per ~`kProbeSlowFactor * probe_period * tick_interval_us`.
    std::uint64_t probe_period = 4;
  };

  /// Which knob family a kAutotuneAdjust event (adjust hook) describes.
  enum class Knob : std::uint8_t { kCoalesce = 0, kRetxRto = 1, kPark = 2 };

  /// Controller state for one (src,dst) pair, as dumped by the watchdog.
  struct PairDiag {
    int dst = -1;
    std::size_t threshold = 0;          ///< current dynamic flush threshold
    std::uint64_t residency_ewma_ns = 0;
    std::uint64_t srtt_us = 0;
    std::uint64_t rttvar_us = 0;
    std::uint64_t rto_us = 0;           ///< last applied adaptive RTO
  };

  Autotune(int places, Knobs knobs);

  /// Where decisions land. The transport must outlive the controller; the
  /// schedulers are optional (bench harnesses tune a bare transport).
  void attach_transport(x10rt::Transport* tr);
  void attach_scheduler(int place, Scheduler* sched);

  /// Observability: invoked once per applied adjustment with the new value
  /// (threshold bytes, RTO µs, or park ceiling µs). `dst` is -1 for the
  /// place-wide park knob. The runtime wires this to the kAutotuneAdjust
  /// trace event.
  void set_adjust_hook(
      std::function<void(int place, int dst, Knob, std::uint64_t value)> hook);

  // --- signal sinks (wired into TransportConfig hooks) ----------------------

  /// Every shipped envelope: residency feeds the pair's EWMA, the reason the
  /// flush-cause window. kQuiesce flushes are ignored by design — teardown
  /// must drain envelopes whatever the thresholds say, so they are evidence
  /// of nothing (docs/transport.md "Adaptive tuning").
  void on_flush(int src, int dst, std::uint32_t records,
                x10rt::FlushReason reason, std::uint64_t residency_ns);

  /// First-transmission ack latency for (src,dst) (Karn-filtered upstream).
  void on_rtt_sample(int src, int dst, std::uint64_t rtt_ns);

  /// Time-gated tick from the poll path / idle hooks: at most one adjustment
  /// pass per place per tick_interval_us, one relaxed load + CAS to enter.
  void maybe_tick(int place);

  /// Unconditional adjustment pass (tests and bench drive phases with this).
  void tick(int place);

  // --- introspection --------------------------------------------------------

  /// Pairs with any controller state at `src` (watchdog diagnosis; locks).
  [[nodiscard]] std::vector<PairDiag> pair_diag(int src) const;

  /// Effective park ceiling chosen for `place` (µs); 0 when no scheduler is
  /// attached for it.
  [[nodiscard]] std::uint64_t park_ceiling_us(int place) const;

  [[nodiscard]] std::uint64_t adjust_up() const {
    return adjust_up_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t adjust_down() const {
    return adjust_down_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rto_updates() const {
    return rto_updates_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rtt_samples() const {
    return rtt_samples_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t park_adjusts() const {
    return park_adjusts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const Knobs& knobs() const { return knobs_; }

 private:
  struct PairState {
    tune::Ewma residency;
    tune::CoalesceWindow window;
    std::size_t threshold = 0;  ///< 0 = never adjusted (static cap in force)
    std::uint64_t last_dyn_bypass = 0;
    // Probe policy state: baseline of diverted sends per window while the
    // pair is collapsed (reset on collapse so each latency phase re-primes
    // it), and ticks since the last upward probe (safety-probe clock).
    tune::Ewma bypass_rate;
    std::uint64_t ticks_since_probe = 0;
    tune::SrttEstimator srtt;
    std::uint64_t applied_rto_us = 0;
    bool rtt_dirty = false;
  };

  struct PlaceState {
    mutable std::mutex mu;
    std::vector<PairState> pairs;  // indexed by dst
    std::atomic<std::uint64_t> next_tick_ns{0};
    std::uint64_t tick_count = 0;
    // Scheduler counter snapshots for the park delta window.
    std::uint64_t last_steals = 0;
    std::uint64_t last_overflow = 0;
    std::uint64_t last_idle = 0;
  };

  void tick_coalesce(int place, PlaceState& ps);
  void tick_retx(int place, PlaceState& ps);
  void tick_park(int place, PlaceState& ps);

  int places_;
  Knobs knobs_;
  x10rt::Transport* tr_ = nullptr;
  std::vector<Scheduler*> scheds_;
  std::vector<std::unique_ptr<PlaceState>> state_;
  std::function<void(int, int, Knob, std::uint64_t)> adjust_hook_;

  std::atomic<std::uint64_t> adjust_up_{0};
  std::atomic<std::uint64_t> adjust_down_{0};
  std::atomic<std::uint64_t> rto_updates_{0};
  std::atomic<std::uint64_t> rtt_samples_{0};
  std::atomic<std::uint64_t> park_adjusts_{0};
  std::atomic<std::uint64_t> ticks_{0};
};

}  // namespace apgas
