#include "runtime/clock.h"

#include <cassert>

#include "runtime/runtime.h"

namespace apgas {

std::shared_ptr<Clock> Clock::create(int participants) {
  return std::shared_ptr<Clock>(new Clock(participants));
}

void Clock::complete_phase_locked() {
  arrived_ = 0;
  phase_.fetch_add(1, std::memory_order_acq_rel);
  auto& rt = Runtime::get();
  for (int p = 0; p < rt.places(); ++p) rt.transport().notify(p);
}

void Clock::advance() {
  std::uint64_t my_phase;
  {
    std::scoped_lock lock(mu_);
    assert(registered_ > 0);
    my_phase = phase_.load(std::memory_order_acquire);
    if (++arrived_ == registered_) {
      complete_phase_locked();
      return;
    }
  }
  Runtime::get().sched(here()).run_until([this, my_phase] {
    return phase_.load(std::memory_order_acquire) != my_phase;
  });
}

void Clock::register_one() {
  std::scoped_lock lock(mu_);
  ++registered_;
}

void Clock::drop() {
  std::scoped_lock lock(mu_);
  assert(registered_ > 0);
  --registered_;
  if (registered_ > 0 && arrived_ == registered_) {
    // The leaver was the last hold-out: release the waiters.
    complete_phase_locked();
  }
}

}  // namespace apgas
