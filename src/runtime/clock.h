// Clocks: X10's dynamic barriers (paper §2.2). A Clock synchronizes a set of
// `clocked` activities, possibly across places: advance() blocks until every
// registered participant has advanced. Registration is dynamic, as in X10 —
// activities may register() to join and drop() to leave between phases;
// dropping while others wait can complete the current phase. Share the
// handle by capturing the shared_ptr in task closures.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

namespace apgas {

class Clock {
 public:
  /// Creates a clock with `participants` initially registered activities.
  static std::shared_ptr<Clock> create(int participants);

  /// X10's Clock.advanceAll(): blocks (cooperatively) until all registered
  /// participants have arrived at this phase.
  void advance();

  /// Joins the clock as an additional participant (X10: spawning a clocked
  /// async registers it). Call between this participant's phases.
  void register_one();

  /// Leaves the clock (X10's Clock.drop()). May complete the current phase
  /// if every remaining participant has already arrived.
  void drop();

  [[nodiscard]] std::uint64_t phase() const {
    return phase_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int participants() const {
    std::scoped_lock lock(mu_);
    return registered_;
  }

 private:
  explicit Clock(int participants) : registered_(participants) {}
  void complete_phase_locked();

  mutable std::mutex mu_;
  int registered_;
  int arrived_ = 0;
  std::atomic<std::uint64_t> phase_{0};
};

}  // namespace apgas
