#include "runtime/clocksync.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <utility>

namespace apgas::clocksync {

namespace {

// Offsets are written once (before workers start) and read from hot paths;
// a plain vector behind an acquire/release flag keeps the reads to one
// relaxed-ish load + an index.
std::vector<std::int64_t> g_offsets;                 // NOLINT
std::atomic<bool> g_armed{false};                    // NOLINT

}  // namespace

Estimate estimate(const std::vector<Sample>& samples) {
  Estimate best;
  for (const Sample& s : samples) {
    if (s.t1_ns < s.t0_ns) continue;  // torn read; unusable
    const std::uint64_t rtt = s.t1_ns - s.t0_ns;
    if (best.valid && rtt >= best.rtt_ns) continue;
    // Midpoint without overflow: t0 + rtt/2 stays in range for steady_clock
    // magnitudes, and the int64 cast is safe for the same reason.
    const std::uint64_t mid = s.t0_ns + rtt / 2;
    best.offset_ns =
        static_cast<std::int64_t>(mid) - static_cast<std::int64_t>(s.remote_ns);
    best.rtt_ns = rtt;
    best.remote_ref_ns = s.remote_ns;
    best.valid = true;
  }
  return best;
}

DriftModel drift_model(const Estimate& a, const Estimate& b) {
  DriftModel m;
  if (a.valid) {
    m.offset_ns = a.offset_ns;
    m.remote_ref_ns = a.remote_ref_ns;
  } else if (b.valid) {
    m.offset_ns = b.offset_ns;
    m.remote_ref_ns = b.remote_ref_ns;
    return m;
  } else {
    return m;  // identity: nothing measured
  }
  if (!b.valid || b.remote_ref_ns == a.remote_ref_ns) return m;
  const double dt = static_cast<double>(b.remote_ref_ns) -
                    static_cast<double>(a.remote_ref_ns);
  const double doff = static_cast<double>(b.offset_ns - a.offset_ns);
  const double drift = doff / dt;
  // > 1000 ppm between two estimates is jitter, not oscillator drift;
  // extrapolating it would warp the merged timeline worse than ignoring it.
  if (std::abs(drift) <= 1e-3) m.drift = drift;
  return m;
}

std::int64_t rebase_ns(const DriftModel& m, std::uint64_t remote_ns) {
  const double dt = static_cast<double>(remote_ns) -
                    static_cast<double>(m.remote_ref_ns);
  const auto correction =
      m.offset_ns + static_cast<std::int64_t>(m.drift * dt);
  return static_cast<std::int64_t>(remote_ns) + correction;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_offsets(std::vector<std::int64_t> offsets) {
  g_offsets = std::move(offsets);
  g_armed.store(true, std::memory_order_release);
}

void clear_offsets() {
  g_armed.store(false, std::memory_order_release);
  g_offsets.clear();
}

bool armed() { return g_armed.load(std::memory_order_acquire); }

std::int64_t offset_ns(int place) {
  if (!armed()) return 0;
  if (place < 0 || static_cast<std::size_t>(place) >= g_offsets.size())
    return 0;
  return g_offsets[static_cast<std::size_t>(place)];
}

std::uint64_t aligned_ship_ns(std::uint64_t recv_ns, int dst,
                              std::uint64_t send_ns, int src) {
  const std::int64_t lat =
      (static_cast<std::int64_t>(recv_ns) + offset_ns(dst)) -
      (static_cast<std::int64_t>(send_ns) + offset_ns(src));
  return lat < 1 ? 1u : static_cast<std::uint64_t>(lat);
}

}  // namespace apgas::clocksync
