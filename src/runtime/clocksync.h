// Cristian-style clock-offset estimation between the launcher supervisor and
// its place processes.
//
// Every process on the mesh stamps events with hist::now_ns() — absolute
// steady_clock nanoseconds. On a single host all places read the same
// physical clock, so offsets are near zero; the estimator still runs for
// real because (a) it is the piece that makes a future multi-host backend's
// traces mergeable and (b) it corrects the epoch skew that per-process trace
// recorders introduce (each child zeroes its trace clock at its own init).
//
// Protocol (driven by the launcher over the per-child ctrl socket):
//   supervisor                      child
//   t0 = now();  send 'C'  ───►
//                          ◄───    r = now()   (8-byte echo)
//   t1 = now()
//
// One round yields Sample{t0, t1, r}. The estimate from a set of rounds uses
// the minimum-RTT sample — the round least polluted by scheduling delay —
// and models the exchange as symmetric: the echo is assumed to have been
// taken at the midpoint m = (t0 + t1) / 2, so
//
//   offset = m - r        (supervisor_ns ≈ child_ns + offset)
//
// with worst-case error rtt/2 for the chosen sample. Two estimates taken at
// different times (attach and pre-quiescence) give a linear drift model used
// when rebasing child trace timestamps into the supervisor clock domain.
//
// Everything here is pure arithmetic over samples — unit-testable without
// sockets. The only process state is the child-side offset table armed by
// the launcher handshake and read by the scheduler's aligned-ship-latency
// path.
#pragma once

#include <cstdint>
#include <vector>

namespace apgas::clocksync {

/// One request/echo round, all in hist::now_ns() units: t0/t1 are the local
/// (supervisor) send/receive stamps, remote_ns is the child's clock echo.
struct Sample {
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::uint64_t remote_ns = 0;
};

/// Offset such that local_ns ≈ remote_ns + offset_ns, from the minimum-RTT
/// sample of a round set. remote_ref_ns anchors the drift model: it is the
/// remote clock reading at which offset_ns was measured.
struct Estimate {
  std::int64_t offset_ns = 0;
  std::uint64_t rtt_ns = 0;
  std::uint64_t remote_ref_ns = 0;
  bool valid = false;
};

/// Min-RTT estimate over `samples`. Rounds with t1 < t0 (a torn clock read
/// can in principle produce one) are ignored; no usable sample → !valid.
[[nodiscard]] Estimate estimate(const std::vector<Sample>& samples);

/// Linear clock-drift model between two estimates of the same child:
/// offset(t) = offset_ns + drift * (t - remote_ref_ns), t in remote ns.
struct DriftModel {
  std::int64_t offset_ns = 0;
  std::uint64_t remote_ref_ns = 0;
  double drift = 0.0;  // d(offset)/d(remote time), dimensionless
};

/// Model through estimates `a` (earlier) and `b` (later). If either estimate
/// is invalid or they share a reference instant, the model degrades to a
/// constant offset from whichever estimate is valid (identity when neither
/// is). Drift magnitudes above 1000 ppm are treated as measurement noise and
/// clamped to zero — real oscillators drift tens of ppm.
[[nodiscard]] DriftModel drift_model(const Estimate& a, const Estimate& b);

/// Maps a remote-clock instant into the local clock domain.
[[nodiscard]] std::int64_t rebase_ns(const DriftModel& m,
                                     std::uint64_t remote_ns);

/// The clock the protocol echoes: absolute steady_clock ns, identical to
/// hist::now_ns() (re-exposed here so the launcher does not need the
/// histogram header).
[[nodiscard]] std::uint64_t now_ns();

/// Child-side offset table: offsets[p] maps place p's clock into the
/// supervisor domain. Armed once by the launcher handshake before any worker
/// starts; read lock-free afterwards.
void set_offsets(std::vector<std::int64_t> offsets);
void clear_offsets();
[[nodiscard]] bool armed();

/// Offset for `place` (0 when unarmed or out of range).
[[nodiscard]] std::int64_t offset_ns(int place);

/// Cross-process ship latency with both endpoints rebased into the
/// supervisor domain: (recv + off[dst]) - (send + off[src]), clamped to >= 1
/// so the histogram never sees the wraparound values the unaligned clamp
/// workaround guarded against.
[[nodiscard]] std::uint64_t aligned_ship_ns(std::uint64_t recv_ns, int dst,
                                            std::uint64_t send_ns, int src);

}  // namespace apgas::clocksync
