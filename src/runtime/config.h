// Launch-time configuration for an APGAS "job" (the paper's §2.1: the number
// of places and the place→node mapping are fixed at launch, MPI-style).
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <type_traits>

#include "x10rt/transport.h"

namespace apgas {

/// Which wire carries inter-place traffic (docs/transport.md "Backends").
enum class BackendKind : std::uint8_t {
  kInProc,  ///< all places share the process (the default, zero-overhead)
  kSocket,  ///< one process per place over a Unix-domain socketpair mesh
};

struct Config {
  /// Number of places. The paper runs one place per core (X10_NTHREADS=1);
  /// we default the same way and oversubscribe OS threads when places exceed
  /// cores, which is fine for protocol-level studies.
  int places = 4;

  /// Worker threads per place (X10_NTHREADS). The paper's runs use 1.
  int workers_per_place = 1;

  /// Places per "node" (octant). On the Power 775 this is 32; FINISH_DENSE
  /// routes control traffic through one master place per node.
  int places_per_node = 8;

  /// Wire backend. kSocket forks one process per place (Runtime::run
  /// delegates to launcher::run_places before constructing anything); a
  /// 1-place job stays in-process regardless. Reliability is force-armed in
  /// socket mode (retx_timeout_us defaults to 1000 when unset) because
  /// cross-process teardown needs the all-acked fixpoint.
  BackendKind backend = BackendKind::kInProc;

  /// Network chaos injection (latency + reordering of queued messages).
  x10rt::ChaosConfig chaos;

  /// Track per-(src,dst) message counts — needed by out-degree benches.
  bool count_pairs = false;

  /// RDMA engine threads (0 = synchronous copies on the initiating thread).
  int dma_threads = 1;

  /// Messages a worker drains from its place's transport inbox per lock
  /// acquisition (the batched fast path; 1 reproduces per-message polling).
  int poll_batch = 32;

  /// Sender-side coalescing: envelope flush threshold in wire bytes
  /// (docs/transport.md). 0 disables the aggregation layer — the default,
  /// so every send_am ships its own message exactly as before ISSUE 3.
  std::size_t coalesce_bytes = 0;

  /// Max records parked per coalescing envelope before a forced flush.
  int coalesce_msgs = 64;

  /// Reliability sublayer: initial retransmit timeout in microseconds
  /// (docs/transport.md "Reliability"). 0 disables the layer — the default,
  /// so sends are zero-cost passthroughs with wire behavior bit-for-bit
  /// identical to pre-ISSUE-5. Must be > 0 whenever chaos drop_prob or
  /// dup_prob is (the transport aborts otherwise).
  std::uint64_t retx_timeout_us = 0;

  /// Cap on the per-entry exponential retransmit backoff (microseconds).
  std::uint64_t retx_backoff_max_us = 50'000;

  /// Standalone-ack idle threshold: a receiver owing an ack with no reverse
  /// traffic to piggyback on sends one after this many microseconds.
  std::uint64_t retx_ack_idle_us = 200;

  // --- online self-tuning (docs/transport.md "Adaptive tuning") ------------

  /// Arms the per-place autotune controller (runtime/autotune.h): dynamic
  /// per-(src,dst) coalescing flush thresholds, Jacobson/Karels adaptive
  /// retransmit timers, and an adaptive worker park-backoff ceiling. 0 — the
  /// default — never constructs the controller: no hook is installed and
  /// every knob behaves bit-for-bit as the static configuration.
  int autotune = 0;

  /// Latency budget for coalescing-envelope residency (microseconds): the
  /// controller shrinks a pair's flush threshold while the residency EWMA
  /// exceeds it and grows back toward `coalesce_bytes` when residency sits
  /// at half budget or below with size-flushes dominating.
  std::uint64_t autotune_residency_budget_us = 50;

  /// Idle worker park backoff (docs/scheduler.md): the first park lasts
  /// `park_backoff_min_us`, doubling per idle round up to
  /// `park_backoff_max_us`. The defaults reproduce the previously hardcoded
  /// 1µs -> 200µs ramp; the autotune controller moves the effective ceiling
  /// inside this same [min, max] band.
  std::uint64_t park_backoff_min_us = 1;
  std::uint64_t park_backoff_max_us = 200;

  // --- hierarchical Team collectives (docs/collectives.md) -----------------

  /// Places per octant for the PERCS topology model the hierarchical Team
  /// mode builds its leader tree from (the paper's 32 cores per shared-
  /// memory host). 0 — the default — means "no topology model": hierarchical
  /// teams then group `places_per_node` consecutive places per leaf group
  /// and hang all leaf leaders off one root group.
  int team_places_per_octant = 0;

  /// Octants per drawer / drawers per supernode of the modelled machine
  /// (only read when team_places_per_octant > 0; defaults match the
  /// Power 775).
  int team_octants_per_drawer = 8;
  int team_drawers_per_supernode = 4;

  /// Grouping levels the hierarchical mode uses above the leaf groups,
  /// clamped to [1, 3]: 1 = octants only, 2 = + drawers, 3 = + supernodes.
  /// Without a topology model the hierarchy always has one grouping level.
  int team_levels = 3;

  /// Fan-out of the tree each leader group arranges itself into. Low fan-out
  /// trades tree depth (cheap once fragments pipeline) for less sender-side
  /// serialization at any one leader.
  int team_fanout = 2;

  /// Pipelined-chunking fragment size for hierarchical bcast/reduce payloads
  /// in bytes; a leader forwards fragment k while receiving k+1. 0 ships the
  /// payload as a single fragment (no pipelining).
  std::size_t team_chunk_bytes = 64u << 10;

  /// Bytes reserved per place for the congruent (registered, symmetric)
  /// allocator arena.
  std::size_t congruent_bytes = 16u << 20;

  /// Simulated page size for the congruent allocator's TLB accounting:
  /// 4 KiB "small" vs 16 MiB "large" pages (paper §3.3).
  bool congruent_large_pages = true;

  // --- flight recorder (docs/observability.md) -----------------------------

  /// Record runtime events (activity/message/finish/steal/team) into the
  /// per-place ring buffers. Off by default: every event site then costs one
  /// relaxed atomic load.
  bool trace = false;

  /// Events retained per place (ring capacity; oldest overwritten).
  std::size_t trace_capacity = 1u << 16;

  /// If non-empty, Runtime::run writes a Chrome trace_event JSON here at
  /// teardown (and implies `trace = true`).
  std::string trace_path;

  /// If non-empty, Runtime::run dumps the MetricsRegistry here at teardown
  /// (".json" suffix selects JSON, anything else flat key=value lines).
  std::string metrics_path;

  /// Arm the latency histograms (hist.* metric keys: task ship->execute,
  /// finish open->close per protocol, envelope residency, activity duration,
  /// steal-to-work). Off by default: every recording site then costs one
  /// relaxed atomic load, matching the flight recorder's contract.
  bool histograms = false;

  // --- stall watchdog (docs/observability.md) ------------------------------

  /// Sampling interval of the stall watchdog thread in milliseconds; 0 (the
  /// default) never starts the thread. When no progress signal advances for
  /// `watchdog_stall_intervals` consecutive samples, one human-readable
  /// diagnosis (queue depths, oldest open finish, coalescer occupancy,
  /// recent trace events) is dumped to stderr; it re-arms only after
  /// progress resumes.
  int watchdog_interval_ms = 0;

  /// Consecutive no-progress samples before the watchdog diagnoses a stall.
  int watchdog_stall_intervals = 5;

  // --- live telemetry + clock sync (docs/observability.md) -----------------

  /// Sampling interval of the live telemetry stream in milliseconds; 0 (the
  /// default) never constructs the sampler — the disabled path is bit-for-bit
  /// inert. When armed, each place emits periodic delta frames of selected
  /// MetricsRegistry keys; in socket mode they stream over the ctrl socket
  /// into one supervisor-side JSONL (tail it with tools/apgas_top).
  int telemetry_interval_ms = 0;

  /// Where the telemetry JSONL goes. Empty (the default) resolves to
  /// "apgas_telemetry.jsonl" when the stream is armed.
  std::string telemetry_path;

  /// Comma-separated metric-name prefixes selecting which keys the telemetry
  /// frames carry. Empty selects the default set apgas_top renders
  /// (docs/observability.md "Distributed telemetry").
  std::string telemetry_keys;

  /// Request/echo rounds per child of the launcher's Cristian clock-offset
  /// handshake (minimum-RTT sample wins). Runs at attach and again before
  /// quiescence for drift re-estimation; only meaningful in socket mode.
  int clocksync_rounds = 8;

  /// Applies `APGAS_*` environment overrides for the perf knobs on top of
  /// whatever `cfg` already holds, so benches and CI sweep configurations
  /// without recompiling:
  ///
  ///   APGAS_BACKEND            "socket" or "inproc"
  ///   APGAS_CHAOS_DROP         chaos.drop_prob  (0.0 .. 1.0)
  ///   APGAS_CHAOS_DUP          chaos.dup_prob   (0.0 .. 1.0)
  ///   APGAS_CHAOS_DELAY        chaos.delay_prob (0.0 .. 1.0)
  ///   APGAS_CHAOS_SEED         chaos.seed
  ///   APGAS_PLACES             places
  ///   APGAS_PLACES_PER_NODE    places_per_node
  ///   APGAS_WORKERS_PER_PLACE  workers_per_place
  ///   APGAS_POLL_BATCH         poll_batch
  ///   APGAS_TEAM_PLACES_PER_OCTANT     team_places_per_octant (0 = no topology)
  ///   APGAS_TEAM_OCTANTS_PER_DRAWER    team_octants_per_drawer
  ///   APGAS_TEAM_DRAWERS_PER_SUPERNODE team_drawers_per_supernode
  ///   APGAS_TEAM_LEVELS        team_levels (1..3)
  ///   APGAS_TEAM_FANOUT        team_fanout
  ///   APGAS_TEAM_CHUNK_BYTES   team_chunk_bytes (0 = unpipelined)
  ///   APGAS_COALESCE_BYTES     coalesce_bytes (0 disables coalescing)
  ///   APGAS_COALESCE_MSGS      coalesce_msgs
  ///   APGAS_RETX_TIMEOUT_US    retx_timeout_us (0 disables reliability)
  ///   APGAS_RETX_BACKOFF_MAX_US retx_backoff_max_us
  ///   APGAS_RETX_ACK_IDLE_US   retx_ack_idle_us
  ///   APGAS_AUTOTUNE           autotune (nonzero arms the controller)
  ///   APGAS_AUTOTUNE_RESIDENCY_BUDGET_US autotune_residency_budget_us
  ///   APGAS_PARK_BACKOFF_MIN_US park_backoff_min_us
  ///   APGAS_PARK_BACKOFF_MAX_US park_backoff_max_us
  ///   APGAS_HIST               histograms (nonzero arms them)
  ///   APGAS_WATCHDOG_MS        watchdog_interval_ms (nonzero starts it)
  ///   APGAS_WATCHDOG_INTERVALS watchdog_stall_intervals
  ///   APGAS_TELEMETRY_MS       telemetry_interval_ms (nonzero arms the stream)
  ///   APGAS_TELEMETRY_PATH     telemetry_path
  ///   APGAS_TELEMETRY_KEYS     telemetry_keys (comma-separated prefixes)
  ///   APGAS_CLOCKSYNC_ROUNDS   clocksync_rounds
  ///
  /// Unset variables leave the knob untouched. A variable that is set but
  /// malformed — empty, non-numeric, trailing garbage, negative, or out of
  /// range — aborts naming the variable: a typo'd override silently running
  /// the default configuration is a miscalibrated experiment, not a
  /// fallback.
  static void apply_env(Config& cfg) {
    auto die = [](const char* name, const char* value, const char* expected) {
      std::fprintf(stderr,
                   "[apgas] fatal: invalid value \"%s\" for %s (expected %s)\n",
                   value, name, expected);
      std::abort();
    };
    auto read = [&die](const char* name, auto& knob) {
      const char* v = std::getenv(name);
      if (v == nullptr) return;
      char* end = nullptr;
      errno = 0;
      const long long parsed = std::strtoll(v, &end, 10);
      if (*v == '\0' || end == v || *end != '\0' || errno == ERANGE ||
          parsed < 0) {
        die(name, v, "a non-negative integer");
      }
      knob = static_cast<std::remove_reference_t<decltype(knob)>>(parsed);
    };
    auto read_prob = [&die](const char* name, double& knob) {
      const char* v = std::getenv(name);
      if (v == nullptr) return;
      char* end = nullptr;
      errno = 0;
      const double parsed = std::strtod(v, &end);
      if (*v == '\0' || end == v || *end != '\0' || errno == ERANGE ||
          parsed < 0.0 || parsed > 1.0) {
        die(name, v, "a probability in [0, 1]");
      }
      knob = parsed;
    };
    if (const char* b = std::getenv("APGAS_BACKEND"); b != nullptr) {
      if (std::string_view(b) == "socket") {
        cfg.backend = BackendKind::kSocket;
      } else if (std::string_view(b) == "inproc") {
        cfg.backend = BackendKind::kInProc;
      } else {
        die("APGAS_BACKEND", b, "\"socket\" or \"inproc\"");
      }
    }
    read_prob("APGAS_CHAOS_DROP", cfg.chaos.drop_prob);
    read_prob("APGAS_CHAOS_DUP", cfg.chaos.dup_prob);
    read_prob("APGAS_CHAOS_DELAY", cfg.chaos.delay_prob);
    read("APGAS_CHAOS_SEED", cfg.chaos.seed);
    read("APGAS_PLACES", cfg.places);
    read("APGAS_PLACES_PER_NODE", cfg.places_per_node);
    read("APGAS_WORKERS_PER_PLACE", cfg.workers_per_place);
    read("APGAS_POLL_BATCH", cfg.poll_batch);
    read("APGAS_TEAM_PLACES_PER_OCTANT", cfg.team_places_per_octant);
    read("APGAS_TEAM_OCTANTS_PER_DRAWER", cfg.team_octants_per_drawer);
    read("APGAS_TEAM_DRAWERS_PER_SUPERNODE", cfg.team_drawers_per_supernode);
    read("APGAS_TEAM_LEVELS", cfg.team_levels);
    read("APGAS_TEAM_FANOUT", cfg.team_fanout);
    read("APGAS_TEAM_CHUNK_BYTES", cfg.team_chunk_bytes);
    read("APGAS_COALESCE_BYTES", cfg.coalesce_bytes);
    read("APGAS_COALESCE_MSGS", cfg.coalesce_msgs);
    read("APGAS_RETX_TIMEOUT_US", cfg.retx_timeout_us);
    read("APGAS_RETX_BACKOFF_MAX_US", cfg.retx_backoff_max_us);
    read("APGAS_RETX_ACK_IDLE_US", cfg.retx_ack_idle_us);
    read("APGAS_AUTOTUNE", cfg.autotune);
    read("APGAS_AUTOTUNE_RESIDENCY_BUDGET_US",
         cfg.autotune_residency_budget_us);
    read("APGAS_PARK_BACKOFF_MIN_US", cfg.park_backoff_min_us);
    read("APGAS_PARK_BACKOFF_MAX_US", cfg.park_backoff_max_us);
    int hist = cfg.histograms ? 1 : 0;
    read("APGAS_HIST", hist);
    cfg.histograms = hist != 0;
    read("APGAS_WATCHDOG_MS", cfg.watchdog_interval_ms);
    read("APGAS_WATCHDOG_INTERVALS", cfg.watchdog_stall_intervals);
    read("APGAS_TELEMETRY_MS", cfg.telemetry_interval_ms);
    if (const char* p = std::getenv("APGAS_TELEMETRY_PATH"); p != nullptr) {
      cfg.telemetry_path = p;
    }
    if (const char* k = std::getenv("APGAS_TELEMETRY_KEYS"); k != nullptr) {
      cfg.telemetry_keys = k;
    }
    read("APGAS_CLOCKSYNC_ROUNDS", cfg.clocksync_rounds);
  }

  /// Defaults + apply_env().
  [[nodiscard]] static Config from_env() {
    Config cfg;
    apply_env(cfg);
    return cfg;
  }
};

}  // namespace apgas
