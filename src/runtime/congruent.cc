#include "runtime/congruent.h"

namespace apgas {

namespace {
constexpr std::size_t kSmallPage = 4u << 10;
constexpr std::size_t kLargePage = 16u << 20;
}  // namespace

CongruentSpace::CongruentSpace(x10rt::Transport& transport, int places,
                               std::size_t bytes_per_place, bool large_pages)
    : bytes_per_place_(bytes_per_place),
      page_size_(large_pages ? kLargePage : kSmallPage) {
  arenas_.reserve(static_cast<std::size_t>(places));
  for (int p = 0; p < places; ++p) {
    arenas_.push_back(std::make_unique<std::byte[]>(bytes_per_place));
    transport.register_range(p, arenas_.back().get(), bytes_per_place);
  }
}

std::size_t CongruentSpace::bump(std::size_t bytes, std::size_t align) {
  std::scoped_lock lock(mu_);
  const std::size_t aligned = (next_ + align - 1) / align * align;
  assert(aligned + bytes <= bytes_per_place_ &&
         "congruent arena exhausted; raise Config::congruent_bytes");
  next_ = aligned + bytes;
  return aligned;
}

std::size_t CongruentSpace::used() const {
  std::scoped_lock lock(mu_);
  return next_;
}

void CongruentSpace::reset() {
  std::scoped_lock lock(mu_);
  next_ = 0;
}

}  // namespace apgas
