// Congruent memory allocator (paper §3.3).
//
// RDMA and hardware collectives require registered memory, and the initiator
// must know the effective remote address. The congruent allocator carves
// arrays out of a per-place arena that is registered with the transport at
// startup and allocated *symmetrically*: one allocation yields the same
// offset in every place's arena, so a remote address is just
// base(place) + offset. The paper additionally backs these arenas with large
// pages to protect the Torrent's TLB; we model that as an accounting choice
// (4 KiB vs 16 MiB pages) surfaced through tlb_entries().
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "x10rt/transport.h"

namespace apgas {

class CongruentSpace;

/// Handle to a symmetric allocation: the same offset is valid in every
/// place's arena. Trivially copyable — capture it in task closures freely.
template <typename T>
struct Congruent {
  std::size_t offset = 0;
  std::size_t count = 0;

  [[nodiscard]] std::size_t bytes() const { return count * sizeof(T); }
};

class CongruentSpace {
 public:
  CongruentSpace(x10rt::Transport& transport, int places,
                 std::size_t bytes_per_place, bool large_pages);

  /// Allocates `count` elements of T at the same offset in every place.
  /// Thread-safe; typically called during SPMD initialization.
  template <typename T>
  Congruent<T> alloc(std::size_t count) {
    const std::size_t off = bump(count * sizeof(T), alignof(T));
    return Congruent<T>{off, count};
  }

  /// This place's copy (or any place's — the initiator-side address
  /// computation that symmetric allocation exists to enable).
  template <typename T>
  [[nodiscard]] T* at_place(int place, const Congruent<T>& c) const {
    return reinterpret_cast<T*>(arena(place) + c.offset);
  }

  [[nodiscard]] std::byte* arena(int place) const {
    return arenas_[static_cast<std::size_t>(place)].get();
  }

  [[nodiscard]] std::size_t capacity() const { return bytes_per_place_; }
  [[nodiscard]] std::size_t used() const;
  [[nodiscard]] std::size_t page_size() const { return page_size_; }

  /// Number of TLB entries needed to map the used portion of one arena —
  /// the metric large pages exist to minimize.
  [[nodiscard]] std::size_t tlb_entries() const {
    return (used() + page_size_ - 1) / page_size_;
  }

  /// Releases all allocations (arenas stay registered). For bench reuse;
  /// callers must ensure no live handles.
  void reset();

 private:
  std::size_t bump(std::size_t bytes, std::size_t align);

  std::size_t bytes_per_place_;
  std::size_t page_size_;
  std::vector<std::unique_ptr<std::byte[]>> arenas_;

  mutable std::mutex mu_;
  std::size_t next_ = 0;
};

}  // namespace apgas
