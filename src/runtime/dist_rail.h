// Distributed arrays and Array.asyncCopy (paper §2.2, §3.3).
//
// An asyncCopy is "treated exactly as if it were an async": its termination
// is tracked by the enclosing finish, which is how X10 programs overlap
// communication and computation. Two data paths mirror the paper's stack:
//   * RDMA  — both ends registered (congruent) memory: the DMA engine moves
//     the bytes with no destination-CPU involvement and posts a completion
//     event to the initiator.
//   * FIFO  — unregistered memory: the payload is serialized into a kData
//     active message and copied out by the destination scheduler.
#pragma once

#include <cassert>
#include <cstring>
#include <vector>

#include "runtime/api.h"

namespace apgas {

/// A reference to `size` elements of T living at `place`. Like a GlobalRef,
/// it may be copied anywhere but its memory only dereferenced at home —
/// except through async_copy / remote ops, which is the point.
template <typename T>
struct GlobalRail {
  int place = -1;
  T* data = nullptr;
  std::size_t size = 0;
};

/// Wraps local memory for export to other places.
template <typename T>
GlobalRail<T> make_global_rail(T* data, std::size_t n) {
  return GlobalRail<T>{here(), data, n};
}

/// View of a congruent allocation at a given place (registered memory, so
/// async_copy takes the RDMA path and remote_xor/add are legal).
template <typename T>
GlobalRail<T> global_rail(const Congruent<T>& c, int place) {
  auto& space = Runtime::get().congruent();
  return GlobalRail<T>{place, space.at_place(place, c), c.count};
}

namespace detail_rail {
// Finish accounting for an asyncCopy modeled as one local async at the
// initiator (defined in finish.cc).
void copy_spawn(const FinCtx& ctx);
void copy_complete(const FinCtx& ctx);
}  // namespace detail_rail

/// Put: copies n elements from local memory into `dst` at dst_off.
/// Non-blocking; completion is governed by the enclosing finish.
template <typename T>
void async_copy(const T* src, GlobalRail<T> dst, std::size_t dst_off,
                std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(dst_off + n <= dst.size);
  Runtime& rt = Runtime::get();
  auto& tr = rt.transport();
  FinCtx ctx = current_spawn_ctx();
  detail_rail::copy_spawn(ctx);
  T* dst_addr = dst.data + dst_off;
  const std::size_t bytes = n * sizeof(T);
  const int initiator = here();
  if (tr.is_registered(dst.place, dst_addr, bytes)) {
    tr.put(initiator, dst.place, dst_addr, src, bytes,
           [ctx] { detail_rail::copy_complete(ctx); });
    return;
  }
  // FIFO path: serialize through the destination's inbox.
  std::vector<std::byte> payload(bytes);
  std::memcpy(payload.data(), src, bytes);
  x10rt::Message m;
  m.src = initiator;
  m.type = x10rt::MsgType::kData;
  m.bytes = bytes;
  Runtime* rtp = &rt;
  m.run = [rtp, dst_addr, payload = std::move(payload), initiator, ctx] {
    std::memcpy(dst_addr, payload.data(), payload.size());
    rtp->send_ctrl(initiator, [ctx] { detail_rail::copy_complete(ctx); }, 8);
  };
  tr.send(dst.place, std::move(m));
}

/// Get: copies n elements from `src` at src_off into local memory.
template <typename T>
void async_copy(GlobalRail<T> src, std::size_t src_off, T* dst,
                std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(src_off + n <= src.size);
  Runtime& rt = Runtime::get();
  auto& tr = rt.transport();
  FinCtx ctx = current_spawn_ctx();
  detail_rail::copy_spawn(ctx);
  const T* src_addr = src.data + src_off;
  const std::size_t bytes = n * sizeof(T);
  const int initiator = here();
  if (tr.is_registered(src.place, src_addr, bytes)) {
    tr.get(initiator, src.place, dst, src_addr, bytes,
           [ctx] { detail_rail::copy_complete(ctx); });
    return;
  }
  // FIFO path: ask the owner to ship the bytes back.
  x10rt::Message m;
  m.src = initiator;
  m.type = x10rt::MsgType::kOther;
  m.bytes = 16;
  Runtime* rtp = &rt;
  m.run = [rtp, src_addr, dst, bytes, initiator, ctx] {
    std::vector<std::byte> payload(bytes);
    std::memcpy(payload.data(), src_addr, bytes);
    x10rt::Message back;
    back.src = here();
    back.type = x10rt::MsgType::kData;
    back.bytes = bytes;
    back.run = [dst, payload = std::move(payload), ctx] {
      std::memcpy(dst, payload.data(), payload.size());
      detail_rail::copy_complete(ctx);
    };
    rtp->transport().send(initiator, std::move(back));
  };
  tr.send(src.place, std::move(m));
}

/// The Torrent "GUPS" feature: remote atomic XOR on registered memory.
inline void remote_xor(const GlobalRail<std::uint64_t>& rail, std::size_t idx,
                       std::uint64_t value) {
  assert(idx < rail.size);
  Runtime::get().transport().remote_xor64(here(), rail.place,
                                          rail.data + idx, value);
}

inline void remote_add(const GlobalRail<std::uint64_t>& rail, std::size_t idx,
                       std::uint64_t value) {
  assert(idx < rail.size);
  Runtime::get().transport().remote_add64(here(), rail.place,
                                          rail.data + idx, value);
}

}  // namespace apgas
