#include "runtime/finish.h"

#include <cassert>
#include <utility>

#include "runtime/runtime.h"
#include "runtime/trace.h"

namespace apgas {

namespace {

/// Every finish control frame leaves through here: one place to keep the
/// MetricsRegistry tallies, the trace's kMsgSend events, and the actual
/// transport send_am in sync.
void send_ctrl_am(Runtime& rt, int src, int dst, int handler,
                  x10rt::ByteBuffer buf, MetricsRegistry::Counter* counter,
                  x10rt::MsgType type = x10rt::MsgType::kControl) {
  counter->fetch_add(1, std::memory_order_relaxed);
  trace::emit_at(src, trace::Ev::kMsgSend, static_cast<std::uint64_t>(type),
                 static_cast<std::uint64_t>(dst));
  rt.transport().send_am(src, dst, handler, std::move(buf), type);
}

}  // namespace

// --- snapshot codec ----------------------------------------------------------

void encode_snapshot(x10rt::ByteBuffer& buf, const Snapshot& s) {
  buf.put(s.key.home);
  buf.put(s.key.seq);
  buf.put(s.place);
  buf.put(s.seq);
  buf.put(s.received);
  buf.put(s.completed);
  buf.put(static_cast<std::uint32_t>(s.sent.size()));
  for (const auto& [dst, count] : s.sent) {
    buf.put(dst);
    buf.put(count);
  }
}

Snapshot decode_snapshot(x10rt::ByteBuffer& buf) {
  Snapshot s;
  s.key.home = buf.get<int>();
  s.key.seq = buf.get<std::uint64_t>();
  s.place = buf.get<int>();
  s.seq = buf.get<std::uint64_t>();
  s.received = buf.get<std::uint64_t>();
  s.completed = buf.get<std::uint64_t>();
  const auto n = buf.get<std::uint32_t>();
  s.sent.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const int dst = buf.get<int>();
    const auto count = buf.get<std::uint64_t>();
    s.sent.emplace_back(dst, count);
  }
  return s;
}

// --- FinishHome --------------------------------------------------------------

FinishHome::FinishHome(Runtime& rt, Pragma pragma) : rt_(rt), pragma_(pragma) {
  const int h = here();
  auto& ps = rt_.pstate(h);
  key_ = FinishKey{h, ps.next_finish_seq.fetch_add(1, std::memory_order_relaxed)};
  {
    std::scoped_lock lock(ps.fin_mu);
    ps.home_finishes.emplace(key_.seq, this);
  }
  rt_.fin_counters().opened->fetch_add(1, std::memory_order_relaxed);
  if (hist::enabled()) open_ns_ = hist::now_ns();
  trace::emit(trace::Ev::kFinishOpen, key_.seq,
              static_cast<std::uint64_t>(pragma_));
  if (pragma_ == Pragma::kDefault || pragma_ == Pragma::kDense) {
    std::scoped_lock lock(mu_);
    upgrade();
  }
}

FinishHome::~FinishHome() {
  auto& ps = rt_.pstate(key_.home);
  std::scoped_lock lock(ps.fin_mu);
  ps.home_finishes.erase(key_.seq);
}

Pragma FinishHome::mode() const {
  if (pragma_ == Pragma::kAuto) {
    return upgraded_ ? Pragma::kDefault : Pragma::kLocal;
  }
  return pragma_;
}

void FinishHome::upgrade() {
  if (matrix_active_) return;
  if (pragma_ == Pragma::kAuto) {
    // Count (and trace) only dynamic upgrades — the paper's "optimistic
    // local counter turned distributed" moment, not explicit matrix modes.
    rt_.fin_counters().upgrades->fetch_add(1, std::memory_order_relaxed);
    trace::emit(trace::Ev::kFinishUpgrade, key_.seq);
  }
  const int p = rt_.places();
  rows_.resize(static_cast<std::size_t>(p));
  col_sent_.assign(static_cast<std::size_t>(p), 0);
  balanced_.assign(static_cast<std::size_t>(p), 1);
  imbalance_ = 0;
  matrix_active_ = true;
  upgraded_ = true;
}

void FinishHome::local_spawn() {
  std::scoped_lock lock(mu_);
  ++local_live_;
}

void FinishHome::local_complete() {
  std::scoped_lock lock(mu_);
  --local_live_;
  assert(local_live_ >= 0);
}

void FinishHome::remote_spawn(int dst) {
  std::scoped_lock lock(mu_);
  switch (mode()) {
    case Pragma::kLocal:
      // The paper's dynamic optimization: a plain finish optimistically
      // assumes locality and switches protocols on the first remote spawn.
      // An explicit FINISH_LOCAL pragma promised no remote spawns.
      assert(pragma_ == Pragma::kAuto && "FINISH_LOCAL governs a remote spawn");
      upgrade();
      [[fallthrough]];
    case Pragma::kDefault:
    case Pragma::kDense: {
      auto& row = rows_[static_cast<std::size_t>(key_.home)];
      ++row.sent[dst];
      ++col_sent_[static_cast<std::size_t>(dst)];
      update_balance(dst);
      break;
    }
    case Pragma::kAsync:
    case Pragma::kSpmd:
      ++credits_;
      break;
    case Pragma::kHere:
      // Weight accounting happens at mint_credit()/credit_return(); the
      // spawner (api.h) mints or splits the weight before shipping the task.
      break;
    case Pragma::kAuto:
      assert(false);  // mode() never returns kAuto
  }
}

void FinishHome::home_task_received() {
  std::scoped_lock lock(mu_);
  if (!matrix_active_) return;  // kHere tasks at home: credit accounting only
  auto& row = rows_[static_cast<std::size_t>(key_.home)];
  ++row.received;
  update_balance(key_.home);
}

void FinishHome::home_task_completed() {
  std::scoped_lock lock(mu_);
  if (!matrix_active_) return;
  auto& row = rows_[static_cast<std::size_t>(key_.home)];
  ++row.completed;
  update_balance(key_.home);
}

std::uint64_t FinishHome::mint_credit() {
  std::scoped_lock lock(mu_);
  credit_out_ += kCreditUnit;
  return kCreditUnit;
}

void FinishHome::credit_return(std::uint64_t weight) {
  std::scoped_lock lock(mu_);
  assert(credit_out_ >= weight && "credit return exceeds outstanding weight");
  credit_out_ -= weight;
}

void FinishHome::on_completions(std::uint64_t n) {
  std::scoped_lock lock(mu_);
  credits_ -= static_cast<std::int64_t>(n);
  assert(credits_ >= 0);
}

void FinishHome::update_balance(int q) {
  const auto qi = static_cast<std::size_t>(q);
  const auto& row = rows_[qi];
  const bool bal = col_sent_[qi] == row.received && row.received == row.completed;
  if (bal != static_cast<bool>(balanced_[qi])) {
    balanced_[qi] = bal ? 1 : 0;
    imbalance_ += bal ? -1 : 1;
  }
}

void FinishHome::apply_row_delta(int place, const Snapshot& s) {
  auto& row = rows_[static_cast<std::size_t>(place)];
  for (const auto& [dst, cum] : s.sent) {
    auto& cell = row.sent[dst];
    if (cum != cell) {
      // Counters are cumulative, so the delta is exact even if intermediate
      // snapshots were lost to reordering and superseded.
      col_sent_[static_cast<std::size_t>(dst)] += cum - cell;
      cell = cum;
      update_balance(dst);
    }
  }
  row.received = s.received;
  row.completed = s.completed;
  row.seq = s.seq;
  update_balance(place);
}

void FinishHome::apply_snapshot(const Snapshot& s) {
  std::scoped_lock lock(mu_);
  assert(matrix_active_);
  if (s.seq <= rows_[static_cast<std::size_t>(s.place)].seq) {
    // Stale snapshot overtaken by a newer one (network reordering). The
    // sweep tests assert sent == applied + stale as exact accounting.
    rt_.fin_counters().snapshots_stale->fetch_add(1,
                                                  std::memory_order_relaxed);
    return;
  }
  rt_.fin_counters().snapshots_applied->fetch_add(1,
                                                  std::memory_order_relaxed);
  apply_row_delta(s.place, s);
}

void FinishHome::on_exception(std::exception_ptr ep) {
  std::scoped_lock lock(mu_);
  exceptions_.push_back(std::move(ep));
}

bool FinishHome::terminated() {
  std::scoped_lock lock(mu_);
  if (local_live_ != 0) return false;
  switch (mode()) {
    case Pragma::kLocal:
      return true;
    case Pragma::kAsync:
    case Pragma::kSpmd:
      return credits_ == 0;
    case Pragma::kHere:
      return credit_out_ == 0;
    case Pragma::kDefault:
    case Pragma::kDense:
      return imbalance_ == 0;
    case Pragma::kAuto:
      break;
  }
  assert(false);
  return true;
}

void FinishHome::wait() {
  rt_.sched(key_.home).run_until([this] { return terminated(); });

  // Tell every place that participated to release its counter block; at
  // termination all blocks are clean (balance implies every counter was
  // reported), so no snapshot for this key can still be in flight.
  if (matrix_active_) {
    for (int q = 0; q < rt_.places(); ++q) {
      if (q == key_.home || rows_[static_cast<std::size_t>(q)].seq == 0)
        continue;
      // Block release is bookkeeping, not termination detection: classify
      // it as kOther so control-traffic metrics measure the protocol itself.
      x10rt::ByteBuffer frame = rt_.transport().acquire_buffer();
      frame.put(key_.home);
      frame.put(key_.seq);
      send_ctrl_am(rt_, key_.home, q, rt_.am_release(), std::move(frame),
                   rt_.fin_counters().releases, x10rt::MsgType::kOther);
    }
  }
  trace::emit(trace::Ev::kFinishClose, key_.seq,
              static_cast<std::uint64_t>(pragma_));
  rt_.fin_counters().closed->fetch_add(1, std::memory_order_relaxed);
  // Keyed by the declared pragma (matching kFinishOpen/Close and the async
  // trace track), not mode(): an upgraded kAuto still closes under "auto".
  if (open_ns_ != 0) {
    rt_.fin_close_hist(pragma_).record(hist::now_ns() - open_ns_);
  }

  std::exception_ptr first;
  {
    std::scoped_lock lock(mu_);
    if (!exceptions_.empty()) first = exceptions_.front();
  }
  if (first) std::rethrow_exception(first);
}

Pragma FinishHome::recommended_pragma() const {
  std::scoped_lock lock(mu_);
  if (!matrix_active_) {
    // Never left the optimistic local protocol.
    return Pragma::kLocal;
  }
  const auto home = static_cast<std::size_t>(key_.home);
  std::uint64_t home_spawns = 0;
  for (const auto& [dst, count] : rows_[home].sent) {
    (void)dst;
    home_spawns += count;
  }
  if (home_spawns == 0) return Pragma::kLocal;

  bool remote_spawned = false;
  bool remote_targets_only_home_or_self = true;
  bool remote_sends_home = false;
  std::size_t active_pairs = rows_[home].sent.size();
  int active_places = 1;
  for (std::size_t q = 0; q < rows_.size(); ++q) {
    if (q == home) continue;
    const Row& row = rows_[q];
    if (row.received > 0 || !row.sent.empty()) ++active_places;
    if (row.sent.empty()) continue;
    remote_spawned = true;
    active_pairs += row.sent.size();
    for (const auto& [dst, count] : row.sent) {
      (void)count;
      if (dst == key_.home) {
        remote_sends_home = true;
      } else if (dst != static_cast<int>(q)) {
        remote_targets_only_home_or_self = false;
      }
    }
  }
  if (!remote_spawned) {
    // Only the home activity spawned: a single activity is FINISH_ASYNC,
    // one per destination with nothing nested is FINISH_SPMD.
    return home_spawns == 1 ? Pragma::kAsync : Pragma::kSpmd;
  }
  if (remote_targets_only_home_or_self && remote_sends_home) {
    // Every cross-place remote spawn points back home: round-trip chains
    // (the "gets" of SPMD codes).
    return Pragma::kHere;
  }
  if (remote_targets_only_home_or_self) {
    // Remote activities only spawned locally under the governing finish —
    // legal for the general protocol only (SPMD would require nesting).
    return Pragma::kDefault;
  }
  // Irregular remote-to-remote spawning: dense graphs benefit from the
  // software-routed protocol once the pair count outgrows the place count.
  return active_pairs > 2 * static_cast<std::size_t>(active_places)
             ? Pragma::kDense
             : Pragma::kDefault;
}

// --- place-side dispatchers --------------------------------------------------

namespace {

/// Block for (key, place), creating it with the given mode on first touch.
/// Caller must hold ps.fin_mu? No: this takes the lock itself and returns a
/// stable pointer (blocks are unique_ptr-held and only erased by release
/// messages, which cannot race with live activity for the same finish).
RemoteBlock* get_block(Runtime& rt, int place, FinishKey key, Pragma mode) {
  auto& ps = rt.pstate(place);
  std::scoped_lock lock(ps.fin_mu);
  auto& slot = ps.blocks[key];
  if (!slot) {
    slot = std::make_unique<RemoteBlock>();
    slot->mode = mode;
  }
  return slot.get();
}

/// Next hop of the FINISH_DENSE software route p -> master(p) ->
/// master(home) -> home (paper §3.1).
int dense_next_hop(Runtime& rt, int at, int final_home) {
  const int mh = rt.master_of(final_home);
  if (at != rt.master_of(at)) return rt.master_of(at);
  return at == mh ? final_home : mh;
}

void send_snapshot_home(Runtime& rt, const Snapshot& snap, Pragma mode) {
  // Counted at the origin, whether it travels directly or via dense relays;
  // the home side counts applied + stale, so the two must balance.
  rt.fin_counters().snapshots_sent->fetch_add(1, std::memory_order_relaxed);
  x10rt::ByteBuffer buf = rt.transport().acquire_buffer();
  encode_snapshot(buf, snap);
  const FinishKey key = snap.key;
  if (mode == Pragma::kDense && rt.config().places_per_node > 1) {
    std::vector<std::byte> frame(buf.bytes().begin(), buf.bytes().end());
    dense_relay_enqueue(rt, here(), key.home, std::move(frame));
    return;
  }
  trace::emit(trace::Ev::kMsgSend,
              static_cast<std::uint64_t>(x10rt::MsgType::kControl),
              static_cast<std::uint64_t>(key.home));
  rt.transport().send_am(here(), key.home, rt.am_snapshot(), std::move(buf));
}

}  // namespace

bool fin_before_remote_spawn(Runtime& rt, const FinCtx& ctx, int dst,
                             bool spawner_has_credit) {
  assert(ctx.home == nullptr);  // home-side spawns go through FinishHome
  switch (ctx.mode) {
    case Pragma::kDefault:
    case Pragma::kDense: {
      auto& ps = rt.pstate(here());
      RemoteBlock* b = get_block(rt, here(), ctx.key, ctx.mode);
      std::scoped_lock lock(ps.fin_mu);
      ++b->sent[dst];
      b->dirty = true;
      return false;
    }
    case Pragma::kHere:
      assert(spawner_has_credit &&
             "every remote activity under FINISH_HERE carries a credit");
      return true;
    case Pragma::kAsync:
    case Pragma::kSpmd:
      assert(false &&
             "FINISH_ASYNC/FINISH_SPMD: remote activities must not spawn "
             "under the governing finish (open a nested finish)");
      return false;
    default:
      assert(false);
      return false;
  }
}

FinCtx fin_task_received(Runtime& rt, FinishKey key, Pragma mode) {
  FinCtx ctx;
  ctx.key = key;
  ctx.mode = mode;
  if (here() == key.home) {
    rt.with_home_finish(key, [&ctx](FinishHome& fh) {
      ctx.home = &fh;
      fh.home_task_received();
    });
    assert(ctx.home && "task arrived for an already-terminated finish");
    return ctx;
  }
  if (mode == Pragma::kDefault || mode == Pragma::kDense) {
    auto& ps = rt.pstate(here());
    RemoteBlock* b = get_block(rt, here(), key, mode);
    std::scoped_lock lock(ps.fin_mu);
    ++b->received;
    b->dirty = true;
  }
  return ctx;
}

void fin_remote_local_spawn(Runtime& rt, const FinCtx& ctx) {
  assert(ctx.home == nullptr);
  assert(ctx.mode == Pragma::kDefault || ctx.mode == Pragma::kDense);
  auto& ps = rt.pstate(here());
  RemoteBlock* b = get_block(rt, here(), ctx.key, ctx.mode);
  std::scoped_lock lock(ps.fin_mu);
  // A local spawn is a send to self that arrives instantly.
  ++b->sent[here()];
  ++b->received;
  b->dirty = true;
}

void fin_activity_completed(Runtime& rt, const Activity& act) {
  const FinCtx& ctx = act.fin;
  if (ctx.home == nullptr && !ctx.key.valid()) return;  // system activity
  if (ctx.home != nullptr) {
    if (act.credit != 0) {
      ctx.home->credit_return(act.credit);
    } else if (act.remote_origin) {
      ctx.home->home_task_completed();
    } else {
      ctx.home->local_complete();
    }
    return;
  }
  switch (ctx.mode) {
    case Pragma::kDefault:
    case Pragma::kDense: {
      {
        auto& ps = rt.pstate(here());
        RemoteBlock* b = get_block(rt, here(), ctx.key, ctx.mode);
        std::scoped_lock lock(ps.fin_mu);
        ++b->completed;
        b->dirty = true;
      }
      // Flush at activity granularity: the snapshot carries this activity's
      // completion together with every send it performed (coalescing), which
      // is what makes the matrix condition reorder-safe.
      fin_flush_block(rt, ctx.key, ctx.mode);
      break;
    }
    case Pragma::kAsync:
    case Pragma::kSpmd: {
      x10rt::ByteBuffer frame = rt.transport().acquire_buffer();
      frame.put(ctx.key.seq);
      frame.put<std::uint64_t>(1);
      send_ctrl_am(rt, here(), ctx.key.home, rt.am_completions(),
                   std::move(frame), rt.fin_counters().completion_msgs);
      break;
    }
    case Pragma::kHere: {
      assert(act.credit != 0);
      // Return the remaining weight (what the children did not take). The
      // message is a pure decrement of the home's outstanding weight, so no
      // reordering of these can make the finish release early.
      x10rt::ByteBuffer frame = rt.transport().acquire_buffer();
      frame.put(ctx.key.seq);
      frame.put(act.credit);
      send_ctrl_am(rt, here(), ctx.key.home, rt.am_credit(),
                   std::move(frame), rt.fin_counters().credit_msgs);
      break;
    }
    default:
      assert(false);
  }
}

void fin_report_exception(Runtime& rt, const FinCtx& ctx,
                          std::exception_ptr ep) {
  if (ctx.home != nullptr) {
    ctx.home->on_exception(std::move(ep));
    return;
  }
  if (!ctx.key.valid()) std::rethrow_exception(ep);  // system activity
  const FinishKey key = ctx.key;
  if (rt.multi_process() && key.home != rt.local_place()) {
    // std::exception_ptr has no wire form: the typed codec
    // (wire_encode_exception, runtime.h) classifies standard exceptions so
    // the home place rebuilds the matching std type; unknown types degrade
    // to std::runtime_error with the original what().
    x10rt::ByteBuffer frame = rt.transport().acquire_buffer();
    frame.put<std::int32_t>(key.home);
    frame.put<std::uint64_t>(key.seq);
    wire_encode_exception(frame, ep);
    rt.transport().send_am(here(), key.home, rt.am_exception(),
                           std::move(frame), x10rt::MsgType::kControl);
    return;
  }
  // In-process, exceptions ride a closure instead — the original
  // exception_ptr reaches the waiter, preserving exact type identity.
  Runtime* rtp = &rt;
  rt.send_ctrl(
      key.home,
      [rtp, key, ep = std::move(ep)] {
        rtp->with_home_finish(
            key, [&ep](FinishHome& fh) { fh.on_exception(ep); });
      },
      64);
}

void fin_flush_block(Runtime& rt, FinishKey key, Pragma mode) {
  Snapshot snap;
  {
    auto& ps = rt.pstate(here());
    std::scoped_lock lock(ps.fin_mu);
    auto it = ps.blocks.find(key);
    if (it == ps.blocks.end() || !it->second->dirty) return;
    RemoteBlock& b = *it->second;
    snap.key = key;
    snap.place = here();
    snap.seq = ++b.flush_seq;
    snap.received = b.received;
    snap.completed = b.completed;
    snap.sent.assign(b.sent.begin(), b.sent.end());
    b.dirty = false;
  }
  send_snapshot_home(rt, snap, mode);
}

void fin_flush_all_dirty(Runtime& rt, int place) {
  std::vector<std::pair<FinishKey, Pragma>> to_flush;
  {
    auto& ps = rt.pstate(place);
    std::scoped_lock lock(ps.fin_mu);
    for (const auto& [key, block] : ps.blocks) {
      if (block->dirty) to_flush.emplace_back(key, block->mode);
    }
  }
  for (const auto& [key, mode] : to_flush) fin_flush_block(rt, key, mode);
}

void dense_relay_enqueue(Runtime& rt, int at_place, int final_home,
                         std::vector<std::byte> frame) {
  if (at_place == final_home) {
    x10rt::ByteBuffer buf{std::move(frame)};
    const Snapshot s = decode_snapshot(buf);
    if (!rt.with_home_finish(s.key,
                             [&s](FinishHome& fh) { fh.apply_snapshot(s); })) {
      // Arrived after release: termination was proven without it -> stale.
      rt.fin_counters().snapshots_stale->fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    return;
  }
  const int next = dense_next_hop(rt, at_place, final_home);
  auto& relay = rt.pstate(at_place).relay;
  bool need_flusher = false;
  {
    std::scoped_lock lock(relay.mu);
    relay.pending[next].emplace_back(final_home, std::move(frame));
    if (!relay.flusher_scheduled) {
      relay.flusher_scheduled = true;
      need_flusher = true;
    }
  }
  if (need_flusher) {
    // The flusher is a local task, and inbox messages are preferred over
    // local tasks — so by the time it runs, every control frame currently
    // queued at this hop has been accumulated, and one message per next-hop
    // carries them all (the paper's coalescing at node masters).
    Runtime* rtp = &rt;
    Activity flusher;
    flusher.body = [rtp, at_place] {
      std::unordered_map<int,
                         std::vector<std::pair<int, std::vector<std::byte>>>>
          pending;
      auto& r = rtp->pstate(at_place).relay;
      {
        std::scoped_lock lock(r.mu);
        pending.swap(r.pending);
        r.flusher_scheduled = false;
      }
      for (auto& [next_hop, frames] : pending) {
        x10rt::ByteBuffer batch = rtp->transport().acquire_buffer();
        batch.put(static_cast<std::uint32_t>(frames.size()));
        for (const auto& [final_home2, frame2] : frames) {
          batch.put(final_home2);
          batch.put(static_cast<std::uint32_t>(frame2.size()));
          batch.put_raw(frame2.data(), frame2.size());
        }
        send_ctrl_am(*rtp, at_place, next_hop, rtp->am_dense_relay(),
                     std::move(batch), rtp->fin_counters().dense_batches);
      }
    };
    rt.sched(at_place).push(std::move(flusher));
  }
}

// --- wire-protocol handlers --------------------------------------------------

void fin_am_snapshot(Runtime& rt, x10rt::ByteBuffer& buf) {
  const Snapshot s = decode_snapshot(buf);
  if (!rt.with_home_finish(s.key,
                           [&s](FinishHome& fh) { fh.apply_snapshot(s); })) {
    // Arrived after release: termination was proven without it -> stale.
    rt.fin_counters().snapshots_stale->fetch_add(1, std::memory_order_relaxed);
  }
}

void fin_am_dense_relay(Runtime& rt, x10rt::ByteBuffer& buf) {
  const auto count = buf.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) {
    const int final_home = buf.get<int>();
    const auto len = buf.get<std::uint32_t>();
    std::vector<std::byte> frame(len);
    buf.get_raw(frame.data(), len);
    dense_relay_enqueue(rt, here(), final_home, std::move(frame));
  }
}

void fin_am_release(Runtime& rt, x10rt::ByteBuffer& buf) {
  FinishKey key;
  key.home = buf.get<int>();
  key.seq = buf.get<std::uint64_t>();
  auto& ps = rt.pstate(here());
  std::scoped_lock lock(ps.fin_mu);
  ps.blocks.erase(key);
}

void fin_am_completions(Runtime& rt, x10rt::ByteBuffer& buf) {
  FinishKey key;
  key.home = here();  // completions always target the home place
  key.seq = buf.get<std::uint64_t>();
  const auto n = buf.get<std::uint64_t>();
  rt.with_home_finish(key, [n](FinishHome& fh) { fh.on_completions(n); });
}

void fin_am_credit(Runtime& rt, x10rt::ByteBuffer& buf) {
  FinishKey key;
  key.home = here();
  key.seq = buf.get<std::uint64_t>();
  const auto weight = buf.get<std::uint64_t>();
  // A credit return can never outlive its finish: the finish cannot
  // terminate while any weight is outstanding.
  rt.with_home_finish(key,
                      [weight](FinishHome& fh) { fh.credit_return(weight); });
}

namespace detail_rail {

// An asyncCopy is modeled as one local async at the initiating place:
// registered here, completed when the transfer's completion event arrives
// back at the initiator (see dist_rail.h).

void copy_spawn(const FinCtx& ctx) {
  if (ctx.home != nullptr) {
    ctx.home->local_spawn();
    return;
  }
  assert((ctx.mode == Pragma::kDefault || ctx.mode == Pragma::kDense) &&
         "asyncCopy from a remote activity requires a matrix-mode finish "
         "(wrap it in a nested finish otherwise)");
  fin_remote_local_spawn(Runtime::get(), ctx);
}

void copy_complete(const FinCtx& ctx) {
  if (ctx.home != nullptr) {
    ctx.home->local_complete();
    return;
  }
  Runtime& rt = Runtime::get();
  {
    auto& ps = rt.pstate(here());
    RemoteBlock* b = get_block(rt, here(), ctx.key, ctx.mode);
    std::scoped_lock lock(ps.fin_mu);
    ++b->completed;
    b->dirty = true;
  }
  fin_flush_block(rt, ctx.key, ctx.mode);
}

}  // namespace detail_rail

}  // namespace apgas
