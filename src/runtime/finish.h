// Distributed termination detection: the implementation of X10's `finish`
// (paper §3.1).
//
// The general ("default") protocol is the transit-matrix algorithm:
// every place keeps, per finish, a cumulative counter block
//   { sent[q], received, completed }
// and flushes the *whole block* to the finish's home place as one atomic,
// sequence-numbered snapshot (this is the coalescing + compression the paper
// describes; snapshots are sparse). The home place holds the O(P^2) matrix of
// latest rows and declares termination when, for every place q,
//     sum_p sent_p[q] == received_q == completed_q
// and no home-local activities remain. Snapshot atomicity — an activity's
// completion travels in the same snapshot as the sends it performed — makes
// this sound under arbitrary reordering of control messages, which is why it
// needs no message ordering guarantees from the network.
//
// The specialized protocols (ASYNC, HERE, LOCAL, SPMD) are cheap
// degenerations of this; DENSE keeps the default counting but routes
// snapshots through one master place per node, trading latency for traffic
// shaping (bounded out-degree, batched control messages).
#pragma once

#include <cstdint>
#include <exception>
#include <map>
#include <mutex>
#include <vector>

#include "runtime/activity.h"
#include "x10rt/serialization.h"

namespace apgas {

class Runtime;

/// Per-(finish, place) cumulative counters held at a non-home place under the
/// default/dense protocols. Single snapshot unit.
struct RemoteBlock {
  std::map<int, std::uint64_t> sent;  // destination place -> cumulative count
  std::uint64_t received = 0;
  std::uint64_t completed = 0;
  std::uint64_t flush_seq = 0;  // sequence number of the last flushed snapshot
  bool dirty = false;
  Pragma mode = Pragma::kDefault;  // kDefault or kDense (routing decision)
};

/// Wire form of one place's counter block.
struct Snapshot {
  FinishKey key;
  int place = -1;
  std::uint64_t seq = 0;
  std::uint64_t received = 0;
  std::uint64_t completed = 0;
  std::vector<std::pair<int, std::uint64_t>> sent;  // sparse row
};

void encode_snapshot(x10rt::ByteBuffer& buf, const Snapshot& s);
Snapshot decode_snapshot(x10rt::ByteBuffer& buf);

/// The home-place state of one `finish`. Stack-allocated by the `finish()`
/// API; registered in the place's home registry for the duration so control
/// messages can resolve it by key.
class FinishHome {
 public:
  FinishHome(Runtime& rt, Pragma pragma);
  ~FinishHome();

  FinishHome(const FinishHome&) = delete;
  FinishHome& operator=(const FinishHome&) = delete;

  [[nodiscard]] FinishKey key() const { return key_; }
  [[nodiscard]] Pragma mode() const;
  [[nodiscard]] bool upgraded() const { return upgraded_; }
  /// The pragma this finish was opened with (immutable after construction —
  /// unlike mode(), safe to read from the watchdog thread without mu_).
  [[nodiscard]] Pragma declared_pragma() const { return pragma_; }

  // --- home-place accounting (called on the home place only) --------------

  /// A purely local activity was spawned at the home place.
  void local_spawn();
  /// A non-credit home-place activity completed.
  void local_complete();

  /// Called before shipping a task to `dst` (credit weights for kHere are
  /// handled separately via mint_credit()/credit_return()).
  void remote_spawn(int dst);

  /// A task under this finish arrived at / completed at the home place
  /// (default/dense matrix row for the home place).
  void home_task_received();
  void home_task_completed();

  /// FINISH_HERE weighted credits (see kCreditUnit in activity.h): the
  /// finish body mints one unit per governed spawn; completing activities
  /// return their remaining weight (directly at home or via control msg).
  /// Only decrements ever arrive, so `outstanding == 0` is reorder-safe.
  [[nodiscard]] std::uint64_t mint_credit();
  void credit_return(std::uint64_t weight);

  // --- control-message entry points ----------------------------------------

  /// FINISH_ASYNC / FINISH_SPMD completion messages.
  void on_completions(std::uint64_t n);
  /// Default / dense snapshot arrival.
  void apply_snapshot(const Snapshot& s);
  /// An activity anywhere raised: recorded and rethrown at wait().
  void on_exception(std::exception_ptr ep);

  [[nodiscard]] bool terminated();

  /// Pumps the current place's scheduler until terminated; releases remote
  /// blocks afterwards; rethrows the first recorded exception.
  void wait();

  /// §3.1 "implementation selection": classifies the concurrency pattern
  /// this finish actually governed into the specialized protocol that would
  /// have handled it — the runtime analog of the paper's prototype compiler
  /// analysis (which classified the HPL finishes into FINISH_SPMD,
  /// FINISH_ASYNC, and FINISH_HERE). Meaningful after termination of a
  /// matrix-mode (kAuto/kDefault/kDense) finish.
  [[nodiscard]] Pragma recommended_pragma() const;

 private:
  void upgrade();  // kAuto local counter -> distributed default protocol
  void update_balance(int q);
  void apply_row_delta(int place, const Snapshot& s);

  Runtime& rt_;
  FinishKey key_;
  Pragma pragma_;
  bool upgraded_ = false;
  std::uint64_t open_ns_ = 0;  // hist stamp for open->close latency

  mutable std::mutex mu_;
  std::int64_t local_live_ = 0;
  std::int64_t credits_ = 0;  // kAsync/kSpmd expected completions
  // kHere outstanding credit weight. Every body-level spawn mints kCreditUnit
  // (2^62), so a 64-bit accumulator would wrap to exactly zero after four
  // simultaneous mints and falsely satisfy the `outstanding == 0` termination
  // test; 128 bits absorb ~2^66 concurrent mints, far beyond any job.
  unsigned __int128 credit_out_ = 0;

  // Default/dense matrix state (allocated lazily on upgrade / first use).
  struct Row {
    std::uint64_t seq = 0;
    std::uint64_t received = 0;
    std::uint64_t completed = 0;
    std::map<int, std::uint64_t> sent;
  };
  std::vector<Row> rows_;
  std::vector<std::uint64_t> col_sent_;
  std::vector<std::uint8_t> balanced_;
  int imbalance_ = 0;
  bool matrix_active_ = false;

  std::vector<std::exception_ptr> exceptions_;
};

// --- place-side dispatchers used by the runtime glue ------------------------
// These run at arbitrary places and resolve a FinishKey against either the
// home registry (at the home place) or the remote-block registry.

/// Accounting before shipping a task from the current place to `dst`.
/// Returns true if the shipped task carries a FINISH_HERE credit.
bool fin_before_remote_spawn(Runtime& rt, const FinCtx& ctx, int dst,
                             bool spawner_has_credit);

/// A task arrived at the current place. Returns the context the new activity
/// should run under (resolving home pointers when we happen to be home).
FinCtx fin_task_received(Runtime& rt, FinishKey key, Pragma mode);

/// Local async spawned at a non-home place under `ctx`.
void fin_remote_local_spawn(Runtime& rt, const FinCtx& ctx);

/// The given activity finished its body (normally or not) at current place.
void fin_activity_completed(Runtime& rt, const Activity& act);

/// Ship an exception to the finish home.
void fin_report_exception(Runtime& rt, const FinCtx& ctx,
                          std::exception_ptr ep);

/// Flush the current place's dirty block for `key` (default protocol sends
/// straight home; dense routes via node masters).
void fin_flush_block(Runtime& rt, FinishKey key, Pragma mode);

/// Idle hook body: flush every dirty block at `place`.
void fin_flush_all_dirty(Runtime& rt, int place);

/// Node-master relay for FINISH_DENSE: enqueue an encoded snapshot frame
/// destined for `final_home`, batching at this hop.
void dense_relay_enqueue(Runtime& rt, int at_place, int final_home,
                         std::vector<std::byte> frame);

// Wire-protocol handlers (registered with the transport at startup). Each
// decodes its frame and applies it at the executing place; frames for
// already-released finishes are dropped.
void fin_am_snapshot(Runtime& rt, x10rt::ByteBuffer& buf);
void fin_am_dense_relay(Runtime& rt, x10rt::ByteBuffer& buf);
void fin_am_release(Runtime& rt, x10rt::ByteBuffer& buf);
void fin_am_completions(Runtime& rt, x10rt::ByteBuffer& buf);
void fin_am_credit(Runtime& rt, x10rt::ByteBuffer& buf);

}  // namespace apgas
