// Lock-free log-linear latency histograms (the distribution half of the
// observability layer; docs/observability.md).
//
// The paper argues latency behaviour — finish latency vs. task count (§3.1,
// Fig. 2), steal/lifeline dynamics (§4) — but counters alone can only report
// means. A Histogram records a full distribution at hot-path cost comparable
// to a counter bump: HdrHistogram-style log-linear buckets (~2 significant
// digits of relative precision), fixed memory, every bucket a relaxed atomic.
// Writers never take a lock and never allocate; readers (snapshot) walk the
// bucket array at quiescence or accept a mid-run approximation.
//
// Recording sites are gated on hist::enabled() — one relaxed bool load per
// site when disabled, exactly the flight recorder's contract.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace apgas {

namespace hist {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// True when histogram recording is armed (Config::histograms). One relaxed
/// load — the whole cost of a disabled recording site.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic nanoseconds on a clock shared by every thread in the process —
/// send-time stamps and receive-side deltas must subtract coherently.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace hist

/// Log-linear bucket histogram for non-negative 64-bit values (nanoseconds,
/// by convention). Values below kSub land in exact unit-width buckets; above
/// that, each power-of-two range splits into kSub/2 linear sub-buckets, so
/// the relative bucket width is at most 2/kSub (~1.6%, i.e. ~2 significant
/// digits). Memory is fixed at construction: kNumBuckets relaxed atomics.
class Histogram {
 public:
  static constexpr int kSubBits = 7;
  static constexpr std::uint64_t kSub = 1ull << kSubBits;  // 128
  static constexpr int kGroups = 64 - kSubBits;            // log2 ranges
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kSub) +
      static_cast<std::size_t>(kGroups) * (kSub / 2);

  /// Point-in-time readout. Percentiles report the *lower bound* of the
  /// bucket holding the rank, so they are exact below kSub and undershoot by
  /// under 1.6% above; max is tracked exactly.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
  };

  Histogram() : buckets_(kNumBuckets) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// Bucket index of `v`. Exposed (with bucket_floor/bucket_width) for the
  /// precision unit tests.
  static constexpr std::size_t bucket_of(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBits + 1;
    const std::uint64_t mant = v >> shift;  // in [kSub/2, kSub)
    return static_cast<std::size_t>(kSub) +
           static_cast<std::size_t>(shift - 1) * (kSub / 2) +
           static_cast<std::size_t>(mant - kSub / 2);
  }

  /// Smallest value mapping to bucket `idx`.
  static constexpr std::uint64_t bucket_floor(std::size_t idx) {
    if (idx < kSub) return idx;
    const std::size_t g = (idx - kSub) / (kSub / 2);
    const std::uint64_t off = (idx - kSub) % (kSub / 2);
    return (kSub / 2 + off) << (g + 1);
  }

  /// Number of distinct values mapping to bucket `idx`.
  static constexpr std::uint64_t bucket_width(std::size_t idx) {
    return idx < kSub ? 1 : 1ull << ((idx - kSub) / (kSub / 2) + 1);
  }

  /// Value at quantile `q` in (0, 1]: the floor of the bucket containing the
  /// ceil(q * N)-th recorded value (by recorded order statistics). 0 when
  /// empty.
  [[nodiscard]] std::uint64_t percentile(double q) const {
    std::uint64_t total = 0;
    std::uint64_t counts[kNumBuckets];
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    return percentile_from(counts, total, q);
  }

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    std::uint64_t total = 0;
    std::uint64_t counts[kNumBuckets];
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    s.count = count();
    s.sum = sum();
    s.max = max();
    s.p50 = percentile_from(counts, total, 0.50);
    s.p90 = percentile_from(counts, total, 0.90);
    s.p99 = percentile_from(counts, total, 0.99);
    return s;
  }

 private:
  static std::uint64_t percentile_from(const std::uint64_t* counts,
                                       std::uint64_t total, double q) {
    if (total == 0) return 0;
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (static_cast<double>(target) < q * static_cast<double>(total)) ++target;
    if (target == 0) target = 1;
    if (target > total) target = total;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      cum += counts[i];
      if (cum >= target) return bucket_floor(i);
    }
    return 0;  // unreachable: cum reaches total
  }

  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace apgas
