// Fork/supervise engine for the socket backend (see launcher.h).
#include "runtime/launcher.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runtime/clocksync.h"
#include "runtime/metrics.h"
#include "runtime/runtime.h"
#include "runtime/telemetry.h"
#include "runtime/trace.h"

#if defined(__SANITIZE_THREAD__)
#define APGAS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define APGAS_TSAN 1
#endif
#endif

#ifdef APGAS_TSAN
// TSan aborts the child of a multi-threaded fork by default. run_places
// forks while still single-threaded (before any Runtime exists), which is
// the one pattern that is sound — tell TSan to allow it.
extern "C" const char* __tsan_default_options() { return "die_after_fork=0"; }
#endif

namespace apgas::launcher {

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "[apgas_launch] fatal: %s: %s\n", what,
               std::strerror(errno));
  std::exit(1);
}

/// Blocking full send over a socketpair; SIGPIPE suppressed.
bool send_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Blocking full receive; returns false on EOF or error.
bool recv_all(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Describes how a reaped child ended ("exit status 1", "signal 9 (Killed)").
std::string describe_status(int status) {
  char buf[64];
  if (WIFSIGNALED(status)) {
    std::snprintf(buf, sizeof(buf), "killed by signal %d", WTERMSIG(status));
  } else if (WIFEXITED(status)) {
    std::snprintf(buf, sizeof(buf), "exit status %d", WEXITSTATUS(status));
  } else {
    std::snprintf(buf, sizeof(buf), "status 0x%x", status);
  }
  return buf;
}

/// Failure path: report the first failed place, SIGKILL the survivors, reap
/// everything, exit nonzero. A crashed place never hangs the job.
[[noreturn]] void fail_and_reap(int place, const std::string& why,
                                std::vector<pid_t>& pids) {
  std::fprintf(stderr, "[apgas_launch] place %d failed (%s); terminating %zu "
               "remaining place process(es)\n",
               place, why.c_str(), pids.size() - 1);
  for (std::size_t q = 0; q < pids.size(); ++q) {
    if (pids[q] > 0 && static_cast<int>(q) != place) {
      ::kill(pids[q], SIGKILL);
    }
  }
  for (std::size_t q = 0; q < pids.size(); ++q) {
    if (pids[q] > 0) {
      int st = 0;
      (void)::waitpid(pids[q], &st, 0);
    }
  }
  std::exit(1);
}

/// Percentile/max exports aggregate by max; counts and counters sum.
bool aggregate_by_max(std::string_view key) {
  return key.ends_with(".p50") || key.ends_with(".p90") ||
         key.ends_with(".p99") || key.ends_with(".max");
}

/// A ctrl-socket operation on place `p` failed: the child is dead. Reap it
/// for its status and fail the job.
[[noreturn]] void fail_dead_child(int p, std::vector<pid_t>& pids) {
  int st = 0;
  (void)::waitpid(pids[static_cast<std::size_t>(p)], &st, 0);
  fail_and_reap(p, describe_status(st), pids);
}

/// One upstream child → supervisor message: [tag u8][len u32][payload].
struct Frame {
  char tag = 0;
  std::string payload;
};

bool recv_frame(int fd, Frame& f) {
  if (!recv_all(fd, &f.tag, 1)) return false;
  std::uint32_t len = 0;
  if (!recv_all(fd, &len, sizeof(len))) return false;
  f.payload.assign(len, '\0');
  return len == 0 || recv_all(fd, f.payload.data(), f.payload.size());
}

/// `rounds` Cristian probe rounds against one child; both probe phases run
/// while the child can produce no upstream frames, so the 8-byte echo is
/// unambiguous. Dies (via fail_dead_child) if the child is gone.
clocksync::Estimate probe_child(int fd, int p, int rounds,
                                std::vector<pid_t>& pids) {
  std::vector<clocksync::Sample> samples;
  samples.reserve(static_cast<std::size_t>(rounds));
  for (int i = 0; i < rounds; ++i) {
    clocksync::Sample s;
    const char c = 'C';
    s.t0_ns = clocksync::now_ns();
    if (!send_all(fd, &c, 1)) fail_dead_child(p, pids);
    if (!recv_all(fd, &s.remote_ns, sizeof(s.remote_ns))) {
      fail_dead_child(p, pids);
    }
    s.t1_ns = clocksync::now_ns();
    samples.push_back(s);
  }
  return clocksync::estimate(samples);
}

}  // namespace

std::string per_place_path(const std::string& path, int place) {
  if (path.empty()) return path;
  const std::string tag = ".p" + std::to_string(place);
  const std::size_t dot = path.find_last_of('.');
  const std::size_t slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + tag;
  }
  return path.substr(0, dot) + tag + path.substr(dot);
}

void CtrlChannel::send_frame(char tag, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto len = static_cast<std::uint32_t>(payload.size());
  if (!send_all(fd_, &tag, 1)) ::_exit(1);  // supervisor is gone
  if (!send_all(fd_, &len, sizeof(len))) ::_exit(1);
  if (len > 0 && !send_all(fd_, payload.data(), payload.size())) ::_exit(1);
}

std::vector<std::int64_t> child_clock_handshake(int ctrl_fd, int places) {
  for (;;) {
    char c = 0;
    if (!recv_all(ctrl_fd, &c, 1)) ::_exit(1);
    if (c == 'C') {
      const std::uint64_t echo = clocksync::now_ns();
      if (!send_all(ctrl_fd, &echo, sizeof(echo))) ::_exit(1);
    } else if (c == 'O') {
      std::vector<std::int64_t> offsets(static_cast<std::size_t>(places), 0);
      if (!recv_all(ctrl_fd, offsets.data(),
                    offsets.size() * sizeof(std::int64_t))) {
        ::_exit(1);
      }
      return offsets;
    } else {
      std::fprintf(stderr,
                   "[apgas_launch] child: unexpected ctrl byte 0x%02x during "
                   "clock handshake\n",
                   static_cast<unsigned char>(c));
      ::_exit(1);
    }
  }
}

bool child_poll_go(int ctrl_fd) {
  struct pollfd pfd{};
  pfd.fd = ctrl_fd;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, 1);
  if (rc <= 0) return false;  // timeout (or EINTR): keep pumping
  if ((pfd.revents & POLLIN) != 0) {
    char c = 0;
    const ssize_t r = ::recv(ctrl_fd, &c, 1, 0);
    if (r == 1 && c == 'G') return true;
    if (r == 1 && c == 'C') {
      // Drift re-estimation probe (the supervisor runs a second round of
      // clock sync between quiescence and go).
      const std::uint64_t echo = clocksync::now_ns();
      if (!send_all(ctrl_fd, &echo, sizeof(echo))) ::_exit(1);
      return false;
    }
    if (r <= 0) ::_exit(1);  // supervisor died mid-barrier
    return false;
  }
  if ((pfd.revents & (POLLHUP | POLLERR)) != 0) ::_exit(1);
  return false;
}

void run_places(const Config& cfg, std::function<void()> main) {
  const int P = cfg.places;

  // Full socketpair mesh: mesh[i][j] is place i's end of the i<->j link.
  std::vector<std::vector<int>> mesh(
      static_cast<std::size_t>(P), std::vector<int>(static_cast<std::size_t>(P), -1));
  for (int i = 0; i < P; ++i) {
    for (int j = i + 1; j < P; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        die("socketpair(mesh)");
      }
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = sv[0];
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = sv[1];
    }
  }
  // One control socketpair per child for the quiescence barrier, metrics
  // blob, and death detection (EOF).
  std::vector<int> ctrl_parent(static_cast<std::size_t>(P), -1);
  std::vector<int> ctrl_child(static_cast<std::size_t>(P), -1);
  for (int p = 0; p < P; ++p) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      die("socketpair(ctrl)");
    }
    ctrl_parent[static_cast<std::size_t>(p)] = sv[0];
    ctrl_child[static_cast<std::size_t>(p)] = sv[1];
  }

  std::vector<pid_t> pids(static_cast<std::size_t>(P), -1);
  for (int p = 0; p < P; ++p) {
    const pid_t pid = ::fork();
    if (pid < 0) die("fork");
    if (pid == 0) {
      // Child: keep only this place's mesh ends and control socket.
      for (int i = 0; i < P; ++i) {
        for (int j = 0; j < P; ++j) {
          if (i != p && mesh[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(j)] >= 0) {
            ::close(mesh[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(j)]);
          }
        }
      }
      for (int q = 0; q < P; ++q) {
        ::close(ctrl_parent[static_cast<std::size_t>(q)]);
        if (q != p) ::close(ctrl_child[static_cast<std::size_t>(q)]);
      }
      SocketWiring wiring;
      wiring.place = p;
      wiring.peer_fds = mesh[static_cast<std::size_t>(p)];
      wiring.ctrl_fd = ctrl_child[static_cast<std::size_t>(p)];
      int rc = 1;
      try {
        rc = Runtime::run_child(cfg, std::move(main), wiring);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[apgas_launch] place %d: uncaught %s\n", p,
                     e.what());
      }
      ::_exit(rc);
    }
    pids[static_cast<std::size_t>(p)] = pid;
  }

  // Parent: close every child-side fd — after this the only descriptors it
  // holds are the parent ends of the control sockets, so a child's death is
  // visible as EOF there.
  for (int i = 0; i < P; ++i) {
    for (int j = 0; j < P; ++j) {
      if (mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] >= 0) {
        ::close(mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
      }
    }
  }
  for (int p = 0; p < P; ++p) ::close(ctrl_child[static_cast<std::size_t>(p)]);

  // Attach clock sync: probe each child in turn, then broadcast the offset
  // table so every child can map any place's clock into the supervisor
  // domain. Children answer from run_child before starting workers, so the
  // probes see an otherwise idle process; min-RTT selection absorbs the
  // rounds that land while a child is still paging itself in.
  const int rounds = cfg.clocksync_rounds < 1 ? 1 : cfg.clocksync_rounds;
  std::vector<clocksync::Estimate> attach(static_cast<std::size_t>(P));
  std::vector<clocksync::Estimate> quiesce(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) {
    attach[static_cast<std::size_t>(p)] =
        probe_child(ctrl_parent[static_cast<std::size_t>(p)], p, rounds, pids);
  }
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(P), 0);
  for (int p = 0; p < P; ++p) {
    offsets[static_cast<std::size_t>(p)] =
        attach[static_cast<std::size_t>(p)].offset_ns;
  }
  for (int p = 0; p < P; ++p) {
    const int fd = ctrl_parent[static_cast<std::size_t>(p)];
    const char o = 'O';
    if (!send_all(fd, &o, 1) ||
        !send_all(fd, offsets.data(), offsets.size() * sizeof(std::int64_t))) {
      fail_dead_child(p, pids);
    }
  }

  // Live telemetry sink: one JSONL for the whole job, flushed per line so
  // apgas_top can tail it while the job runs.
  std::unique_ptr<telemetry::JsonlWriter> tlog;
  if (cfg.telemetry_interval_ms > 0) {
    tlog = std::make_unique<telemetry::JsonlWriter>(
        cfg.telemetry_path.empty() ? std::string("apgas_telemetry.jsonl")
                                   : cfg.telemetry_path);
  }

  // Crash-fault injection (test hook): SIGKILL one place after a delay. 'G'
  // is withheld until the kill has fired, so the victim is guaranteed to
  // still exist when it lands.
  int kill_place = -1;
  std::uint64_t kill_after_ms = 0;
  if (const char* v = std::getenv("APGAS_LAUNCH_KILL_PLACE");
      v != nullptr && *v != '\0') {
    kill_place = std::atoi(v);
    if (kill_place < 0 || kill_place >= P) kill_place = -1;
  }
  if (const char* v = std::getenv("APGAS_LAUNCH_KILL_AFTER_MS");
      v != nullptr && *v != '\0') {
    kill_after_ms = static_cast<std::uint64_t>(std::atoll(v));
  }
  const std::uint64_t t_start_ms = now_ms();
  bool kill_fired = false;

  // Quiescence barrier: collect one 'Q' per child. EOF before 'Q' means the
  // place died — fail fast instead of hanging on the barrier.
  std::vector<bool> quiescent(static_cast<std::size_t>(P), false);
  int n_quiescent = 0;
  while (n_quiescent < P || (kill_place >= 0 && !kill_fired)) {
    if (kill_place >= 0 && !kill_fired &&
        now_ms() - t_start_ms >= kill_after_ms) {
      ::kill(pids[static_cast<std::size_t>(kill_place)], SIGKILL);
      kill_fired = true;
    }
    std::vector<struct pollfd> pfds;
    pfds.reserve(static_cast<std::size_t>(P));
    std::vector<int> owner;
    for (int p = 0; p < P; ++p) {
      if (quiescent[static_cast<std::size_t>(p)]) continue;
      struct pollfd pfd{};
      pfd.fd = ctrl_parent[static_cast<std::size_t>(p)];
      pfd.events = POLLIN;
      pfds.push_back(pfd);
      owner.push_back(p);
    }
    int timeout_ms = 100;
    if (kill_place >= 0 && !kill_fired) {
      const std::uint64_t elapsed = now_ms() - t_start_ms;
      const std::uint64_t left =
          kill_after_ms > elapsed ? kill_after_ms - elapsed : 0;
      if (left < static_cast<std::uint64_t>(timeout_ms)) {
        timeout_ms = static_cast<int>(left) + 1;
      }
    }
    if (pfds.empty()) {
      // All Q's are in; we are only waiting for the kill deadline.
      ::poll(nullptr, 0, timeout_ms);
      continue;
    }
    const int rc =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      die("poll(ctrl)");
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int p = owner[k];
      Frame f;
      if (!recv_frame(pfds[k].fd, f)) {
        // EOF before 'Q': the place process is gone.
        int st = 0;
        (void)::waitpid(pids[static_cast<std::size_t>(p)], &st, 0);
        pids[static_cast<std::size_t>(p)] = -pids[static_cast<std::size_t>(p)];
        fail_and_reap(p, describe_status(st), pids);
      }
      switch (f.tag) {
        case 'Q':
          quiescent[static_cast<std::size_t>(p)] = true;
          ++n_quiescent;
          break;
        case 'T':
          if (tlog) tlog->append(f.payload);
          break;
        case 'W':
          // One consolidated, place-labelled report on the supervisor's
          // stderr instead of output scattered across child stderr streams;
          // the same report also lands in the telemetry JSONL.
          std::fprintf(stderr,
                       "[apgas_launch] watchdog report from place %d:\n%s", p,
                       f.payload.c_str());
          std::fflush(stderr);
          if (tlog) {
            tlog->append(telemetry::wrap_watchdog(
                p, clocksync::now_ns() / 1000000u, f.payload));
          }
          break;
        default:
          ::kill(pids[static_cast<std::size_t>(p)], SIGKILL);
          fail_dead_child(p, pids);
      }
    }
  }

  // Drift re-estimation: a second probe round per child while everyone sits
  // in the quiescence barrier (child_poll_go answers 'C'). Two estimates per
  // child give the linear drift model used to rebase its trace timestamps.
  for (int p = 0; p < P; ++p) {
    quiesce[static_cast<std::size_t>(p)] =
        probe_child(ctrl_parent[static_cast<std::size_t>(p)], p, rounds, pids);
  }

  // Everyone is quiescent (and any kill has landed — in which case the
  // victim's EOF above already failed the job): release the barrier.
  for (int p = 0; p < P; ++p) {
    const char g = 'G';
    if (!send_all(ctrl_parent[static_cast<std::size_t>(p)], &g, 1)) {
      int st = 0;
      (void)::waitpid(pids[static_cast<std::size_t>(p)], &st, 0);
      fail_and_reap(p, describe_status(st), pids);
    }
  }

  // Metrics + trace collection: each child sends its 'M' metrics blob (flat
  // "key value" lines; counters sum, percentile/max exports take the max
  // across places) followed by its 'R' trace blob (empty when not tracing).
  std::map<std::string, std::uint64_t> agg;
  std::vector<trace::ProcEvents> procs;
  for (int p = 0; p < P; ++p) {
    const int fd = ctrl_parent[static_cast<std::size_t>(p)];
    Frame mf;
    Frame rf;
    if (!recv_frame(fd, mf) || mf.tag != 'M' || !recv_frame(fd, rf) ||
        rf.tag != 'R') {
      fail_dead_child(p, pids);
    }
    const std::string& blob = mf.payload;
    std::size_t pos = 0;
    while (pos < blob.size()) {
      std::size_t eol = blob.find('\n', pos);
      if (eol == std::string::npos) eol = blob.size();
      const std::string_view line(blob.data() + pos, eol - pos);
      pos = eol + 1;
      const std::size_t sp = line.find(' ');
      if (sp == std::string_view::npos) continue;
      const std::string key(line.substr(0, sp));
      const std::uint64_t val = std::strtoull(line.data() + sp + 1, nullptr, 10);
      auto [it, inserted] = agg.try_emplace(key, val);
      if (!inserted) {
        it->second = aggregate_by_max(key) ? std::max(it->second, val)
                                           : it->second + val;
      }
    }
    if (!cfg.trace_path.empty() && !rf.payload.empty()) {
      // Rebase this child's events into the supervisor clock domain through
      // its drift model before handing them to the merged exporter.
      std::uint64_t epoch = 0;
      std::vector<trace::Event> events;
      if (!trace::decode_events(rf.payload, epoch, events)) {
        std::fprintf(stderr,
                     "[apgas_launch] place %d sent a malformed trace blob; "
                     "dropping its events from the merged trace\n",
                     p);
      } else {
        const clocksync::DriftModel model =
            clocksync::drift_model(attach[static_cast<std::size_t>(p)],
                                   quiesce[static_cast<std::size_t>(p)]);
        for (trace::Event& e : events) {
          const std::int64_t abs = clocksync::rebase_ns(model, epoch + e.t_ns);
          e.t_ns = abs < 0 ? 0u : static_cast<std::uint64_t>(abs);
        }
        trace::ProcEvents pe;
        pe.place = p;
        pe.events = std::move(events);
        procs.push_back(std::move(pe));
      }
    }
  }

  // Reap: any nonzero exit after a clean barrier still fails the job.
  for (int p = 0; p < P; ++p) {
    int st = 0;
    if (::waitpid(pids[static_cast<std::size_t>(p)], &st, 0) < 0) die("waitpid");
    pids[static_cast<std::size_t>(p)] = -1;
    if (st != 0) {
      std::fprintf(stderr, "[apgas_launch] place %d failed (%s)\n", p,
                   describe_status(st).c_str());
      std::exit(1);
    }
  }
  for (int p = 0; p < P; ++p) ::close(ctrl_parent[static_cast<std::size_t>(p)]);

  // Publish the aggregate exactly like an in-process run would.
  if (!cfg.metrics_path.empty()) {
    std::FILE* f = std::fopen(cfg.metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[apgas_launch] cannot write %s: %s\n",
                   cfg.metrics_path.c_str(), std::strerror(errno));
    } else {
      const bool json = std::string_view(cfg.metrics_path).ends_with(".json");
      if (json) std::fputs("{\n", f);
      std::size_t i = 0;
      for (const auto& [k, v] : agg) {
        if (json) {
          std::fprintf(f, "  \"%s\": %llu%s\n", k.c_str(),
                       static_cast<unsigned long long>(v),
                       ++i < agg.size() ? "," : "");
        } else {
          std::fprintf(f, "%s=%llu\n", k.c_str(),
                       static_cast<unsigned long long>(v));
        }
      }
      if (json) std::fputs("}\n", f);
      std::fclose(f);
    }
  }

  // Merged trace: ONE Perfetto JSON over every place process, per-place
  // process rows, cross-process flow arrows restored. Children additionally
  // wrote their own per-place files (".pN" inserted), but this is the file
  // that shows the whole job on one timeline.
  if (!cfg.trace_path.empty()) {
    std::uint64_t clamped = 0;
    const std::string json = trace::chrome_json_merged(procs, &clamped);
    std::FILE* f = std::fopen(cfg.trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[apgas_launch] cannot write %s: %s\n",
                   cfg.trace_path.c_str(), std::strerror(errno));
    } else {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
    if (clamped > 0) {
      std::fprintf(stderr,
                   "[apgas_launch] merged trace: %llu span(s) clamped onto "
                   "their remote spawn (residual clock-offset error)\n",
                   static_cast<unsigned long long>(clamped));
    }
  }
  detail::store_last_metrics(std::move(agg));
}

}  // namespace apgas::launcher
