// apgas_launch's engine: places as separate processes.
//
// run_places is called by Runtime::run *before* any Runtime (and therefore
// any thread) exists: it builds the full socketpair mesh plus one control
// socketpair per child, forks cfg.places processes, and each child
// constructs its own Runtime over a SocketBackend (Runtime::run_child). The
// parent never hosts a place — it supervises:
//
//   * quiescence barrier: each child drains to its local all-acked fixpoint
//     and reports 'Q' on its control socket; once every 'Q' is in (and any
//     configured kill injection has fired) the parent broadcasts 'G' and the
//     children finalize. Between Q and G a child keeps serving retransmits
//     and acks for slower peers, so the barrier cannot deadlock.
//   * metrics aggregation: after 'G' each child sends a length-prefixed
//     key/value metrics blob; the parent sums counters (max for percentile
//     keys), publishes the aggregate through last_run_metrics(), and writes
//     cfg.metrics_path (children write per-place files with ".pN" inserted).
//   * failure supervision: a control-socket EOF before 'Q', a child killed
//     by a signal, or a nonzero exit status makes the parent report the
//     failed place on stderr, SIGKILL the remaining children, reap
//     everything, and exit nonzero — a crashed place never hangs the job.
//
// Fault injection for the crash tests: APGAS_LAUNCH_KILL_PLACE=<p> (with
// optional APGAS_LAUNCH_KILL_AFTER_MS, default 0) SIGKILLs place p once the
// delay elapses. The parent withholds 'G' until the kill has fired, so the
// victim is guaranteed to still exist.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/config.h"

namespace apgas::launcher {

/// What a forked place process needs to join the mesh.
struct SocketWiring {
  int place = -1;
  std::vector<int> peer_fds;  ///< indexed by place; -1 for self
  int ctrl_fd = -1;           ///< status/quiescence channel to the supervisor
};

/// Forks the mesh and supervises it (see file comment). Returns normally
/// when every place exited cleanly; on any failure it reports and calls
/// exit(nonzero). Must be called while the process is single-threaded.
void run_places(const Config& cfg, std::function<void()> main);

/// Child-side barrier helpers (called from Runtime::run_child).
void child_report_quiescent(int ctrl_fd);
/// Non-blocking-ish poll for the go signal; waits at most ~1ms. Returns
/// true once 'G' arrived. A dead supervisor exits the child immediately.
bool child_poll_go(int ctrl_fd);
void child_send_metrics(int ctrl_fd, const std::string& blob);

/// Inserts ".pN" before the path's extension ("m.json" -> "m.p2.json") so
/// every place process writes its own metrics/trace files.
std::string per_place_path(const std::string& path, int place);

}  // namespace apgas::launcher
