// apgas_launch's engine: places as separate processes.
//
// run_places is called by Runtime::run *before* any Runtime (and therefore
// any thread) exists: it builds the full socketpair mesh plus one control
// socketpair per child, forks cfg.places processes, and each child
// constructs its own Runtime over a SocketBackend (Runtime::run_child). The
// parent never hosts a place — it supervises:
//
//   * clock handshake: at attach (and again between quiescence and go) the
//     parent runs cfg.clocksync_rounds Cristian probe rounds per child ('C'
//     request → 8-byte clock echo), estimates each child's offset from the
//     minimum-RTT sample (runtime/clocksync.h), and broadcasts the offset
//     table ('O') so children can record clock-aligned cross-process ship
//     latency.
//   * quiescence barrier: each child drains to its local all-acked fixpoint
//     and reports 'Q' on its control socket; once every 'Q' is in (and any
//     configured kill injection has fired) the parent broadcasts 'G' and the
//     children finalize. Between Q and G a child keeps serving retransmits
//     and acks for slower peers, so the barrier cannot deadlock.
//   * live telemetry: children stream 'T' frames (telemetry.h JSON lines)
//     and 'W' watchdog reports while running; the parent appends them to
//     cfg.telemetry_path (one JSONL for the whole job — tail it with
//     tools/apgas_top) and echoes watchdog reports, place-labelled, to
//     stderr.
//   * metrics + trace collection: after 'G' each child sends its metrics
//     blob ('M') and, when tracing, its flight-recorder drain ('R'). The
//     parent sums counters (max for percentile keys), publishes the
//     aggregate through last_run_metrics(), writes cfg.metrics_path
//     (children write per-place files with ".pN" inserted), and — when
//     cfg.trace_path is set — rebases every child's events into its own
//     clock domain via the per-child drift model and writes ONE merged
//     Perfetto JSON with per-place process rows and cross-process flow
//     arrows.
//   * failure supervision: a control-socket EOF before 'Q', a child killed
//     by a signal, or a nonzero exit status makes the parent report the
//     failed place on stderr, SIGKILL the remaining children, reap
//     everything, and exit nonzero — a crashed place never hangs the job.
//
// Control-socket protocol. Downstream (parent → child) commands are single
// bytes: 'C' (clock probe; child answers with a bare 8-byte clocksync echo),
// 'O' + places × i64 (offset table), 'G' (go). Upstream (child → parent)
// messages are uniform tagged frames [tag u8][len u32][payload]: 'Q'
// (quiescent, empty), 'T' (telemetry line), 'W' (watchdog report), 'M'
// (metrics blob), 'R' (trace blob; empty when not tracing). Probe echoes can
// stay bare because both probe phases run while no upstream frames are
// possible: attach probes complete before the child starts workers,
// telemetry, or its watchdog, and drift probes run after 'Q' (workers,
// telemetry, and watchdog all stopped).
//
// Fault injection for the crash tests: APGAS_LAUNCH_KILL_PLACE=<p> (with
// optional APGAS_LAUNCH_KILL_AFTER_MS, default 0) SIGKILLs place p once the
// delay elapses. The parent withholds 'G' until the kill has fired, so the
// victim is guaranteed to still exist.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/config.h"

namespace apgas::launcher {

/// What a forked place process needs to join the mesh.
struct SocketWiring {
  int place = -1;
  std::vector<int> peer_fds;  ///< indexed by place; -1 for self
  int ctrl_fd = -1;           ///< status/quiescence channel to the supervisor
};

/// Forks the mesh and supervises it (see file comment). Returns normally
/// when every place exited cleanly; on any failure it reports and calls
/// exit(nonzero). Must be called while the process is single-threaded.
void run_places(const Config& cfg, std::function<void()> main);

/// Serializes upstream ctrl-socket frames from a child's concurrent writers
/// (main thread, telemetry sampler, watchdog). A dead supervisor exits the
/// child immediately — there is nobody left to report to.
class CtrlChannel {
 public:
  explicit CtrlChannel(int fd) : fd_(fd) {}
  CtrlChannel(const CtrlChannel&) = delete;
  CtrlChannel& operator=(const CtrlChannel&) = delete;

  void send_frame(char tag, std::string_view payload);

 private:
  int fd_ = -1;
  std::mutex mu_;
};

/// Child side of the attach clock handshake: answers 'C' probes with clock
/// echoes until the supervisor's 'O' offset table arrives; returns the
/// table (offsets[p] maps place p's clock into the supervisor domain).
/// Called from Runtime::run_child before any worker starts.
std::vector<std::int64_t> child_clock_handshake(int ctrl_fd, int places);

/// Non-blocking-ish poll for the go signal; waits at most ~1ms, answering
/// any drift-phase 'C' probes it encounters. Returns true once 'G' arrived.
/// A dead supervisor exits the child immediately.
bool child_poll_go(int ctrl_fd);

/// Inserts ".pN" before the path's extension ("m.json" -> "m.p2.json") so
/// every place process writes its own metrics/trace files.
std::string per_place_path(const std::string& path, int place);

}  // namespace apgas::launcher
