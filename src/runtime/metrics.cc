#include "runtime/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

namespace apgas {

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(0);
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::add_gauge(const std::string& name, Gauge gauge) {
  std::scoped_lock lock(mu_);
  gauges_[name] = std::move(gauge);
}

std::uint64_t MetricsRegistry::value(const std::string& name) const {
  // Copy the gauge out so user callbacks never run under the registry lock.
  Gauge gauge;
  {
    std::scoped_lock lock(mu_);
    if (auto it = counters_.find(name); it != counters_.end()) {
      return it->second->load(std::memory_order_relaxed);
    }
    auto it = gauges_.find(name);
    if (it == gauges_.end()) return 0;
    gauge = it->second;
  }
  return gauge();
}

std::map<std::string, std::uint64_t> MetricsRegistry::snapshot() const {
  std::map<std::string, std::uint64_t> out;
  std::map<std::string, Gauge> gauges;
  std::vector<std::pair<std::string, const Histogram*>> hists;
  {
    std::scoped_lock lock(mu_);
    for (const auto& [name, c] : counters_) {
      out[name] = c->load(std::memory_order_relaxed);
    }
    for (const auto& [name, h] : histograms_) hists.emplace_back(name, h.get());
    gauges = gauges_;
  }
  // Histogram walks (a few thousand relaxed loads each) and gauge callbacks
  // run outside the lock; the Histogram objects live as long as the registry.
  for (const auto& [name, h] : hists) {
    const Histogram::Snapshot s = h->snapshot();
    const std::string base = "hist." + name;
    out[base + ".count"] = s.count;
    out[base + ".p50"] = s.p50;
    out[base + ".p90"] = s.p90;
    out[base + ".p99"] = s.p99;
    out[base + ".max"] = s.max;
  }
  for (const auto& [name, g] : gauges) out[name] = g();
  return out;
}

std::string MetricsRegistry::text() const {
  std::string out;
  char buf[32];
  for (const auto& [name, v] : snapshot()) {
    out += name;
    std::snprintf(buf, sizeof(buf), "=%" PRIu64 "\n", v);
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::json() const {
  std::string out = "{";
  char buf[32];
  bool first = true;
  for (const auto& [name, v] : snapshot()) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\"";  // metric names never need escaping
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, v);
    out += buf;
  }
  out += "}";
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names
// map onto that with '_' and an "apgas_" namespace prefix.
std::string prom_name(const std::string& name) {
  std::string out = "apgas_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, Gauge> gauges;
  std::vector<std::pair<std::string, const Histogram*>> hists;
  {
    std::scoped_lock lock(mu_);
    for (const auto& [name, c] : counters_) {
      counters[name] = c->load(std::memory_order_relaxed);
    }
    for (const auto& [name, h] : histograms_) hists.emplace_back(name, h.get());
    gauges = gauges_;
  }
  std::string out;
  char buf[96];
  auto sample = [&](const std::string& nm, const char* labels,
                    std::uint64_t v) {
    out += nm;
    out += labels;
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", v);
    out += buf;
  };
  for (const auto& [name, v] : counters) {
    const std::string nm = prom_name(name);
    out += "# TYPE " + nm + " counter\n";
    sample(nm, "", v);
  }
  // Gauge callbacks run outside the lock, like snapshot().
  for (const auto& [name, g] : gauges) {
    const std::string nm = prom_name(name);
    out += "# TYPE " + nm + " gauge\n";
    sample(nm, "", g());
  }
  for (const auto& [name, h] : hists) {
    const Histogram::Snapshot s = h->snapshot();
    const std::string nm = prom_name(name);
    out += "# TYPE " + nm + " summary\n";
    sample(nm, "{quantile=\"0.5\"}", s.p50);
    sample(nm, "{quantile=\"0.9\"}", s.p90);
    sample(nm, "{quantile=\"0.99\"}", s.p99);
    sample(nm + "_sum", "", s.sum);
    sample(nm + "_count", "", s.count);
    out += "# TYPE " + nm + "_max gauge\n";
    sample(nm + "_max", "", s.max);
  }
  return out;
}

bool MetricsRegistry::write(const std::string& path) const {
  const bool as_json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const bool as_prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  const std::string body = as_json ? json() : as_prom ? prometheus_text() : text();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[apgas] cannot write metrics to %s\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (n != body.size()) {
    std::fprintf(stderr, "[apgas] short write of metrics %s\n", path.c_str());
    return false;
  }
  return true;
}

namespace {
std::map<std::string, std::uint64_t> g_last_metrics;  // written at teardown
}  // namespace

const std::map<std::string, std::uint64_t>& last_run_metrics() {
  return g_last_metrics;
}

namespace detail {
void store_last_metrics(std::map<std::string, std::uint64_t> snapshot) {
  g_last_metrics = std::move(snapshot);
}
}  // namespace detail

}  // namespace apgas
