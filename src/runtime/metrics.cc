#include "runtime/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

namespace apgas {

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(0);
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::add_gauge(const std::string& name, Gauge gauge) {
  std::scoped_lock lock(mu_);
  gauges_[name] = std::move(gauge);
}

std::uint64_t MetricsRegistry::value(const std::string& name) const {
  // Copy the gauge out so user callbacks never run under the registry lock.
  Gauge gauge;
  {
    std::scoped_lock lock(mu_);
    if (auto it = counters_.find(name); it != counters_.end()) {
      return it->second->load(std::memory_order_relaxed);
    }
    auto it = gauges_.find(name);
    if (it == gauges_.end()) return 0;
    gauge = it->second;
  }
  return gauge();
}

std::map<std::string, std::uint64_t> MetricsRegistry::snapshot() const {
  std::map<std::string, std::uint64_t> out;
  std::map<std::string, Gauge> gauges;
  std::vector<std::pair<std::string, const Histogram*>> hists;
  {
    std::scoped_lock lock(mu_);
    for (const auto& [name, c] : counters_) {
      out[name] = c->load(std::memory_order_relaxed);
    }
    for (const auto& [name, h] : histograms_) hists.emplace_back(name, h.get());
    gauges = gauges_;
  }
  // Histogram walks (a few thousand relaxed loads each) and gauge callbacks
  // run outside the lock; the Histogram objects live as long as the registry.
  for (const auto& [name, h] : hists) {
    const Histogram::Snapshot s = h->snapshot();
    const std::string base = "hist." + name;
    out[base + ".count"] = s.count;
    out[base + ".p50"] = s.p50;
    out[base + ".p90"] = s.p90;
    out[base + ".p99"] = s.p99;
    out[base + ".max"] = s.max;
  }
  for (const auto& [name, g] : gauges) out[name] = g();
  return out;
}

std::string MetricsRegistry::text() const {
  std::string out;
  char buf[32];
  for (const auto& [name, v] : snapshot()) {
    out += name;
    std::snprintf(buf, sizeof(buf), "=%" PRIu64 "\n", v);
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::json() const {
  std::string out = "{";
  char buf[32];
  bool first = true;
  for (const auto& [name, v] : snapshot()) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\"";  // metric names never need escaping
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, v);
    out += buf;
  }
  out += "}";
  return out;
}

bool MetricsRegistry::write(const std::string& path) const {
  const bool as_json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body = as_json ? json() : text();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[apgas] cannot write metrics to %s\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (n != body.size()) {
    std::fprintf(stderr, "[apgas] short write of metrics %s\n", path.c_str());
    return false;
  }
  return true;
}

namespace {
std::map<std::string, std::uint64_t> g_last_metrics;  // written at teardown
}  // namespace

const std::map<std::string, std::uint64_t>& last_run_metrics() {
  return g_last_metrics;
}

namespace detail {
void store_last_metrics(std::map<std::string, std::uint64_t> snapshot) {
  g_last_metrics = std::move(snapshot);
}
}  // namespace detail

}  // namespace apgas
