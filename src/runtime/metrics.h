// MetricsRegistry: one named-counter API for every runtime-internal number.
//
// The paper's claims (§3.1 control-message volume, §5 out-degree, §6 steal
// traffic) used to be checked against ad-hoc getters scattered across
// Scheduler, Transport, and the finish protocols. The registry absorbs them:
//   * counters — atomic uint64s owned by the registry. Hot paths resolve a
//     counter once (by name, at startup) and keep the pointer; incrementing
//     costs exactly what the old member atomics cost.
//   * gauges — lazy callbacks evaluated at read time, for values another
//     layer already maintains (the x10rt transport's per-class tallies,
//     which must stay runtime-agnostic).
//   * histograms — lock-free log-linear latency distributions (histogram.h),
//     resolved once like counters; snapshots expand each one into
//     hist.<name>.{count,p50,p90,p99,max} keys.
//
// Naming convention (dots as separators, documented in
// docs/observability.md):
//   sched.pN.*        per-place scheduler counters
//   sched.msgs.CLASS  messages processed, by class, all places
//   runtime.*         task shipping
//   finish.*          finish-protocol control traffic
//   glb.*             global-load-balancer steal accounting
//   transport.*       x10rt transport stats (gauges)
//   trace.*           flight-recorder stats (gauges)
//   hist.*            histogram percentile exports (docs/observability.md)
//
// Runtime::run snapshots the registry at teardown; last_run_metrics() hands
// the snapshot to tests and benches after the job has quiesced.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "runtime/histogram.h"

namespace apgas {

class MetricsRegistry {
 public:
  using Counter = std::atomic<std::uint64_t>;
  using Gauge = std::function<std::uint64_t()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it (at zero) on
  /// first use. The reference stays valid for the registry's lifetime —
  /// resolve once, increment lock-free forever.
  Counter& counter(const std::string& name);

  /// Returns the histogram registered under `name` (without the `hist.`
  /// export prefix), creating it empty on first use. Same contract as
  /// counter(): resolve once, record lock-free forever.
  Histogram& histogram(const std::string& name);

  /// Registers a lazily-evaluated value. Re-registering a name replaces the
  /// previous gauge (used when a new Runtime wires fresh closures).
  void add_gauge(const std::string& name, Gauge gauge);

  /// Current value of a counter or gauge; 0 for unknown names.
  [[nodiscard]] std::uint64_t value(const std::string& name) const;

  /// Every counter, gauge, and histogram (expanded to five hist.<name>.*
  /// keys), by name, evaluated now.
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const;

  /// Flat `key=value` lines, sorted by key.
  [[nodiscard]] std::string text() const;

  /// Single JSON object {"key": value, ...}, sorted by key.
  [[nodiscard]] std::string json() const;

  /// Prometheus exposition format (text/plain version 0.0.4): counters and
  /// gauges as `apgas_<name> value` samples with # TYPE headers, histograms
  /// as summaries (quantile-labelled samples + _sum/_count) plus an
  /// `apgas_<name>_max` gauge. Dots and other non-identifier characters in
  /// metric names become underscores.
  [[nodiscard]] std::string prometheus_text() const;

  /// Writes json() if `path` ends in ".json", prometheus_text() for ".prom",
  /// text() otherwise. Returns false on I/O failure (logged to stderr, never
  /// throws).
  bool write(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, Gauge> gauges_;
};

/// Metrics snapshot of the most recently completed Runtime::run (empty
/// before the first run). Safe to read once run() has returned.
const std::map<std::string, std::uint64_t>& last_run_metrics();

namespace detail {
void store_last_metrics(std::map<std::string, std::uint64_t> snapshot);
}  // namespace detail

}  // namespace apgas
