#include "runtime/monitor.h"

#include <cassert>

#include "runtime/runtime.h"

namespace apgas {

namespace {
thread_local bool tl_in_atomic = false;
}

void atomic_do(const std::function<void()>& body) {
  assert(!tl_in_atomic && "nested atomic sections are illegal in X10");
  auto& ps = Runtime::get().pstate(here());
  {
    std::scoped_lock lock(ps.atomic_mu);
    tl_in_atomic = true;
    body();
    tl_in_atomic = false;
  }
  ps.atomic_gen.fetch_add(1, std::memory_order_release);
  // Wake `when` waiters parked on the inbox.
  Runtime::get().transport().notify(here());
}

void when(const std::function<bool()>& cond,
          const std::function<void()>& body) {
  assert(!tl_in_atomic && "when() may not run inside an atomic section");
  auto& ps = Runtime::get().pstate(here());
  for (;;) {
    std::uint64_t gen;
    {
      std::scoped_lock lock(ps.atomic_mu);
      tl_in_atomic = true;
      const bool ready = cond();
      if (ready) {
        body();
        tl_in_atomic = false;
      } else {
        tl_in_atomic = false;
      }
      if (ready) {
        ps.atomic_gen.fetch_add(1, std::memory_order_release);
        Runtime::get().transport().notify(here());
        return;
      }
      gen = ps.atomic_gen.load(std::memory_order_acquire);
    }
    // Pump until some atomic section ran (which may have changed the
    // condition), then re-test.
    Runtime::get().sched(here()).run_until([&ps, gen] {
      return ps.atomic_gen.load(std::memory_order_acquire) != gen;
    });
  }
}

}  // namespace apgas
