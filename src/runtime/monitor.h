// X10's `atomic S` and `when (c) S` (paper §2.1): place-local conditional
// atomic sections. One monitor per place; `when` waiters keep pumping the
// scheduler so the place stays live, and re-test after every atomic section.
#pragma once

#include <functional>

namespace apgas {

/// Executes `body` as an uninterrupted place-local atomic section.
/// Nested atomic sections are illegal (asserted), as in X10.
void atomic_do(const std::function<void()>& body);

/// Blocks (cooperatively) until `cond` holds, then executes `body` in the
/// same atomic step as the successful test.
void when(const std::function<bool()>& cond,
          const std::function<void()>& body);

}  // namespace apgas
