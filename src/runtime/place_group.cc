#include "runtime/place_group.h"

namespace apgas {

PlaceGroup PlaceGroup::world() {
  std::vector<int> all(static_cast<std::size_t>(num_places()));
  for (int p = 0; p < num_places(); ++p) all[static_cast<std::size_t>(p)] = p;
  return PlaceGroup(std::move(all));
}

void PlaceGroup::bcast_range(const std::shared_ptr<std::vector<int>>& places,
                             int lo, int hi, int fanout,
                             const std::function<void()>& fn) {
  // Executes at (*places)[lo]: run fn here, delegate [lo+1, hi) to up to
  // `fanout` subtrees spawned in parallel under one FINISH_SPMD.
  finish(Pragma::kSpmd, [&] {
    const int rest = hi - lo - 1;
    if (rest > 0) {
      const int branches = std::min(fanout, rest);
      const int chunk = (rest + branches - 1) / branches;
      for (int b = 0; b < branches; ++b) {
        const int sub_lo = lo + 1 + b * chunk;
        const int sub_hi = std::min(hi, sub_lo + chunk);
        if (sub_lo >= sub_hi) break;
        asyncAt((*places)[static_cast<std::size_t>(sub_lo)],
                [places, sub_lo, sub_hi, fanout, fn] {
                  bcast_range(places, sub_lo, sub_hi, fanout, fn);
                });
      }
    }
    fn();
  });
}

void PlaceGroup::broadcast(const std::function<void()>& fn, int fanout) const {
  if (places_.empty()) return;
  auto shared = std::make_shared<std::vector<int>>(places_);
  const int root = places_.front();
  if (root == here()) {
    bcast_range(shared, 0, size(), fanout, fn);
  } else {
    at(root, [shared, fanout, fn, n = size()] {
      bcast_range(shared, 0, n, fanout, fn);
    });
  }
}

void PlaceGroup::broadcast_flat(const std::function<void()>& fn) const {
  finish([&] {
    for (int p : places_) {
      asyncAt(p, [fn] { fn(); });
    }
  });
}

}  // namespace apgas
