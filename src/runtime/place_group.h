// PlaceGroup: efficient management of large groups of places (paper §3.2).
//
// Iterating sequentially over thousands of places to spawn startup activities
// floods the root's network interface; the PlaceGroup broadcast instead uses
// a spawning tree with nested FINISH_SPMD blocks, parallelizing and
// distributing both task creation and completion detection.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "runtime/api.h"

namespace apgas {

class PlaceGroup {
 public:
  /// The group of all places.
  static PlaceGroup world();

  explicit PlaceGroup(std::vector<int> places) : places_(std::move(places)) {}

  [[nodiscard]] int size() const { return static_cast<int>(places_.size()); }
  [[nodiscard]] const std::vector<int>& places() const { return places_; }

  /// Runs `fn` once at every place in the group using a spawning tree of
  /// fan-out `fanout`, each interior node governed by a nested FINISH_SPMD.
  /// Blocks until every invocation has completed.
  void broadcast(const std::function<void()>& fn, int fanout = 8) const;

  /// Baseline: the naive sequential spawn loop from §2.2 (one finish, root
  /// sends every task itself). Kept for the §3.2 comparison bench.
  void broadcast_flat(const std::function<void()>& fn) const;

 private:
  static void bcast_range(const std::shared_ptr<std::vector<int>>& places,
                          int lo, int hi, int fanout,
                          const std::function<void()>& fn);

  std::vector<int> places_;
};

}  // namespace apgas
