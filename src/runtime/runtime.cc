#include "runtime/runtime.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runtime/api.h"
#include "runtime/clocksync.h"
#include "runtime/congruent.h"
#include "runtime/launcher.h"
#include "runtime/task_registry.h"
#include "runtime/team.h"
#include "runtime/telemetry.h"
#include "runtime/trace.h"
#include "runtime/watchdog.h"
#include "x10rt/socket_backend.h"

namespace apgas {

Runtime* Runtime::current_ = nullptr;

namespace detail {
thread_local int tl_place = -1;
thread_local Activity* tl_activity = nullptr;
thread_local FinishHome* tl_open_finish = nullptr;
}  // namespace detail

// --- frame-task registry (task_registry.h) ----------------------------------

namespace {
std::vector<TaskFn>& task_registry() {
  static std::vector<TaskFn> fns;
  return fns;
}
}  // namespace

int register_task_fn(TaskFn fn) {
  auto& fns = task_registry();
  fns.push_back(std::move(fn));
  return static_cast<int>(fns.size()) - 1;
}

const TaskFn& task_fn(int id) {
  auto& fns = task_registry();
  if (id < 0 || id >= static_cast<int>(fns.size())) {
    std::fprintf(stderr,
                 "[apgas] fatal: task function id %d out of range (%d "
                 "registered) — every place process must register the same "
                 "task functions in the same order before Runtime::run\n",
                 id, static_cast<int>(fns.size()));
    std::abort();
  }
  return fns[static_cast<std::size_t>(id)];
}

int num_task_fns() { return static_cast<int>(task_registry().size()); }

// --- wire handlers for the cross-process spawn/exception paths --------------

namespace {

/// am_spawn frame: [home i32][seq u64][mode u8][credit u64][span u64]
/// [parent_span u64][src i32][t_send_ns u64][fn_id i32][args...]
void rt_am_spawn(Runtime& rt, x10rt::ByteBuffer& buf) {
  FinishKey key;
  key.home = buf.get<std::int32_t>();
  key.seq = buf.get<std::uint64_t>();
  const auto mode_raw = buf.get<std::uint8_t>();
  if (mode_raw >= static_cast<std::uint8_t>(kNumPragmas)) {
    std::fprintf(stderr, "[apgas] fatal: spawn frame with bad pragma %u\n",
                 static_cast<unsigned>(mode_raw));
    std::abort();
  }
  const auto mode = static_cast<Pragma>(mode_raw);
  const auto credit = buf.get<std::uint64_t>();
  const auto span = buf.get<std::uint64_t>();
  const auto parent_span = buf.get<std::uint64_t>();
  const auto src = buf.get<std::int32_t>();
  const auto t_send_ns = buf.get<std::uint64_t>();
  const auto fn_id = buf.get<std::int32_t>();
  const TaskFn& fn = task_fn(fn_id);  // aborts on an out-of-range wire id
  std::vector<std::byte> args(buf.remaining());
  if (!args.empty()) buf.get_raw(args.data(), args.size());
  if (t_send_ns != 0 && hist::enabled()) {
    rt.record_ship_latency(t_send_ns, src);
  }
  Activity act;
  act.fin = fin_task_received(rt, key, mode);
  act.credit = credit;
  act.remote_origin = true;
  act.span = span;
  act.parent_span = parent_span;
  act.body = [fn, args = std::move(args)]() mutable {
    x10rt::ByteBuffer b{std::move(args)};
    fn(b);
  };
  rt.sched(here()).run_activity(act);
}

/// am_exception frame: [home i32][seq u64][kind u8][what string] (the wire
/// codec below). Used only across processes — in-process,
/// fin_report_exception ships the original exception_ptr so tests keep exact
/// exception-type identity even for user-defined types.
void rt_am_exception(Runtime& rt, x10rt::ByteBuffer& buf) {
  FinishKey key;
  key.home = buf.get<std::int32_t>();
  key.seq = buf.get<std::uint64_t>();
  const std::exception_ptr ep = wire_decode_exception(buf);
  if (key.home != here()) {
    std::fprintf(stderr,
                 "[apgas] fatal: exception frame for place %d arrived at "
                 "place %d\n",
                 key.home, here());
    std::abort();
  }
  rt.with_home_finish(key, [&ep](FinishHome& fh) { fh.on_exception(ep); });
}

/// am_immediate frame: [fn_id i32][args...]. Runs inline on the poller, like
/// immediate_at's closure — no finish scope, no activity, no scheduler.
void rt_am_immediate(Runtime& /*rt*/, x10rt::ByteBuffer& buf) {
  const auto fn_id = buf.get<std::int32_t>();
  const TaskFn& fn = task_fn(fn_id);  // aborts on an out-of-range wire id
  fn(buf);
}

}  // namespace

// --- exception wire codec (runtime.h) ---------------------------------------

namespace {

/// Standard-exception table for the wire codec: most-derived types first so
/// the encoder's catch classification picks the tightest match. Kind 0 is
/// the degraded "unknown type, keep the what()" form.
enum class ExcKind : std::uint8_t {
  kUnknown = 0,
  kRuntimeError,
  kLogicError,
  kInvalidArgument,
  kOutOfRange,
  kLengthError,
  kDomainError,
  kOverflowError,
  kUnderflowError,
  kRangeError,
  kBadAlloc,
};

}  // namespace

void wire_encode_exception(x10rt::ByteBuffer& b, const std::exception_ptr& ep) {
  ExcKind kind = ExcKind::kUnknown;
  std::string what = "remote exception";
  try {
    std::rethrow_exception(ep);
  } catch (const std::invalid_argument& e) {
    kind = ExcKind::kInvalidArgument;
    what = e.what();
  } catch (const std::out_of_range& e) {
    kind = ExcKind::kOutOfRange;
    what = e.what();
  } catch (const std::length_error& e) {
    kind = ExcKind::kLengthError;
    what = e.what();
  } catch (const std::domain_error& e) {
    kind = ExcKind::kDomainError;
    what = e.what();
  } catch (const std::overflow_error& e) {
    kind = ExcKind::kOverflowError;
    what = e.what();
  } catch (const std::underflow_error& e) {
    kind = ExcKind::kUnderflowError;
    what = e.what();
  } catch (const std::range_error& e) {
    kind = ExcKind::kRangeError;
    what = e.what();
  } catch (const std::logic_error& e) {
    kind = ExcKind::kLogicError;
    what = e.what();
  } catch (const std::runtime_error& e) {
    kind = ExcKind::kRuntimeError;
    what = e.what();
  } catch (const std::bad_alloc& e) {
    kind = ExcKind::kBadAlloc;
    what = e.what();
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  b.put(static_cast<std::uint8_t>(kind));
  b.put_string(what);
}

std::exception_ptr wire_decode_exception(x10rt::ByteBuffer& b) {
  const auto kind = static_cast<ExcKind>(b.get<std::uint8_t>());
  const std::string what = b.get_string();
  switch (kind) {
    case ExcKind::kRuntimeError:
      return std::make_exception_ptr(std::runtime_error(what));
    case ExcKind::kLogicError:
      return std::make_exception_ptr(std::logic_error(what));
    case ExcKind::kInvalidArgument:
      return std::make_exception_ptr(std::invalid_argument(what));
    case ExcKind::kOutOfRange:
      return std::make_exception_ptr(std::out_of_range(what));
    case ExcKind::kLengthError:
      return std::make_exception_ptr(std::length_error(what));
    case ExcKind::kDomainError:
      return std::make_exception_ptr(std::domain_error(what));
    case ExcKind::kOverflowError:
      return std::make_exception_ptr(std::overflow_error(what));
    case ExcKind::kUnderflowError:
      return std::make_exception_ptr(std::underflow_error(what));
    case ExcKind::kRangeError:
      return std::make_exception_ptr(std::range_error(what));
    case ExcKind::kBadAlloc:
      // what() is implementation-defined for bad_alloc; keep the type.
      return std::make_exception_ptr(std::bad_alloc());
    case ExcKind::kUnknown:
      break;
  }
  return std::make_exception_ptr(std::runtime_error(what));
}

Runtime::Runtime(const Config& cfg, const launcher::SocketWiring* wiring)
    : cfg_(cfg) {
  metrics_ = std::make_unique<MetricsRegistry>();
  finc_.opened = &metrics_->counter("finish.opened");
  finc_.upgrades = &metrics_->counter("finish.upgrades");
  finc_.snapshots_sent = &metrics_->counter("finish.snapshots.sent");
  finc_.snapshots_applied = &metrics_->counter("finish.snapshots.applied");
  finc_.snapshots_stale = &metrics_->counter("finish.snapshots.stale");
  finc_.dense_batches = &metrics_->counter("finish.dense.batches");
  finc_.releases = &metrics_->counter("finish.releases");
  finc_.completion_msgs = &metrics_->counter("finish.completion_msgs");
  finc_.credit_msgs = &metrics_->counter("finish.credit_msgs");
  finc_.tasks_shipped = &metrics_->counter("runtime.tasks_shipped");
  finc_.closed = &metrics_->counter("finish.closed");
  for (int p = 0; p < kNumPragmas; ++p) {
    fin_close_hist_[static_cast<std::size_t>(p)] = &metrics_->histogram(
        std::string("finish.close_ns.") + pragma_name(static_cast<Pragma>(p)));
  }

  trace::init(cfg_.places, cfg_.trace_capacity,
              cfg_.trace || !cfg_.trace_path.empty());
  hist::set_enabled(cfg_.histograms);

  x10rt::TransportConfig tc;
  tc.places = cfg_.places;
  tc.chaos = cfg_.chaos;
  tc.count_pairs = cfg_.count_pairs;
  tc.dma_threads = cfg_.dma_threads;
  tc.coalesce_bytes = cfg_.coalesce_bytes;
  tc.coalesce_msgs = cfg_.coalesce_msgs;
  // Online tuning controller (docs/transport.md "Adaptive tuning"), built
  // before the transport so its signal sinks can ride the hooks below. With
  // APGAS_AUTOTUNE unset no controller exists: no tick/rtt hook is installed,
  // no dynamic threshold or timer is ever written, and the transport runs
  // its static configuration bit-for-bit.
  if (cfg_.autotune > 0) {
    Autotune::Knobs kn;
    kn.residency_budget_us = cfg_.autotune_residency_budget_us;
    kn.coalesce_bytes_cap = cfg_.coalesce_bytes;
    kn.retx_timeout_us = cfg_.retx_timeout_us;
    kn.retx_backoff_max_us = cfg_.retx_backoff_max_us;
    kn.park_min_us = cfg_.park_backoff_min_us;
    kn.park_max_us = cfg_.park_backoff_max_us;
    autotune_ = std::make_unique<Autotune>(cfg_.places, kn);
    autotune_->set_adjust_hook([](int place, int dst, Autotune::Knob knob,
                                  std::uint64_t value) {
      trace::emit_at(place, trace::Ev::kAutotuneAdjust, value,
                     (static_cast<std::uint64_t>(knob) << 32) |
                         static_cast<std::uint32_t>(dst));
    });
  }
  Autotune* at = autotune_.get();
  // The transport stays runtime-agnostic; it reports envelope flushes
  // through this hook and the runtime forwards them to the flight recorder,
  // the envelope-residency histogram, and (when armed) the controller.
  Histogram* env_hist = &metrics_->histogram("envelope.residency_ns");
  tc.flush_hook = [env_hist, at](int src, int dst, std::uint32_t records,
                                 x10rt::FlushReason reason,
                                 std::uint64_t residency_ns) {
    trace::emit_at(src, trace::Ev::kCoalesceFlush,
                   static_cast<std::uint64_t>(records),
                   (static_cast<std::uint64_t>(reason) << 32) |
                       static_cast<std::uint32_t>(dst));
    if (residency_ns != 0 && hist::enabled()) env_hist->record(residency_ns);
    if (at != nullptr) at->on_flush(src, dst, records, reason, residency_ns);
  };
  if (at != nullptr) {
    tc.tick_hook = [at](int place) { at->maybe_tick(place); };
  }
  // Reliability sublayer knobs + observability hooks (docs/transport.md
  // "Reliability"): timeouts land in the flight recorder, ack latencies of
  // retransmitted sequences in the retx.ack_latency_ns histogram.
  tc.retx_timeout_us = cfg_.retx_timeout_us;
  tc.retx_backoff_max_us = cfg_.retx_backoff_max_us;
  tc.retx_ack_idle_us = cfg_.retx_ack_idle_us;
  if (cfg_.retx_timeout_us > 0) {
    tc.retx_timeout_hook = [](int src, int dst, std::uint64_t seq,
                              std::uint32_t attempt) {
      trace::emit_at(src, trace::Ev::kRetxTimeout, seq,
                     (static_cast<std::uint64_t>(attempt) << 32) |
                         static_cast<std::uint32_t>(dst));
    };
    Histogram* retx_hist = &metrics_->histogram("retx.ack_latency_ns");
    tc.retx_acked_hook = [retx_hist](int /*src*/, int /*dst*/,
                                     std::uint64_t latency_ns,
                                     std::uint32_t /*attempts*/) {
      if (hist::enabled()) retx_hist->record(latency_ns);
    };
    if (at != nullptr) {
      // First-transmission ack latencies (Karn-filtered by the transport)
      // feed the per-pair SRTT estimators.
      tc.rtt_sample_hook = [at](int src, int dst, std::uint64_t rtt_ns) {
        at->on_rtt_sample(src, dst, rtt_ns);
      };
    }
  }
  transport_ = std::make_unique<x10rt::Transport>(tc);
  if (autotune_ != nullptr) autotune_->attach_transport(transport_.get());
  if (wiring != nullptr) local_place_ = wiring->place;
  hist_ship_frame_ = &metrics_->histogram("task.ship_ns");
  hist_ship_xproc_ = &metrics_->histogram("task.ship_xproc_ns");
  hist_ship_xproc_aligned_ = &metrics_->histogram("task.ship_xproc_aligned_ns");
  register_transport_gauges();

  pstates_.reserve(static_cast<std::size_t>(cfg_.places));
  for (int p = 0; p < cfg_.places; ++p) {
    auto ps = std::make_unique<PlaceState>();
    ps->sched = std::make_unique<Scheduler>(*this, p);
    ps->sched->add_idle_hook([this, p] { fin_flush_all_dirty(*this, p); });
    // Registered after the finish flusher on purpose: snapshots the finish
    // hook just encoded land in this same idle transition's envelopes, so a
    // place going idle never parks termination-detection traffic (the
    // no-deadlock half of the coalescing contract — docs/transport.md).
    ps->sched->add_idle_hook([this, p] {
      transport_->flush_coalesced(p, x10rt::FlushReason::kIdle);
    });
    if (cfg_.retx_timeout_us > 0) {
      // An idle place retransmits its timed-out traffic and settles owed
      // acks without waiting for the next poll tick.
      ps->sched->add_idle_hook([this, p] { transport_->retx_pump(p); });
    }
    if (autotune_ != nullptr) {
      // Idle transitions are a natural adjustment point (and the only one a
      // place that stopped sending would ever reach — poll ticks stop with
      // the traffic).
      autotune_->attach_scheduler(p, ps->sched.get());
      ps->sched->add_idle_hook([at, p] { at->maybe_tick(p); });
    }
    pstates_.push_back(std::move(ps));
  }

  congruent_ = std::make_unique<CongruentSpace>(
      *transport_, cfg_.places, cfg_.congruent_bytes,
      cfg_.congruent_large_pages);

  // Finish wire-protocol handlers: (handler id, serialized payload) frames,
  // the real X10RT active-message model. Implementations in finish.cc.
  Runtime* self = this;
  am_snapshot_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { fin_am_snapshot(*self, buf); });
  am_dense_relay_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { fin_am_dense_relay(*self, buf); });
  am_release_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { fin_am_release(*self, buf); });
  am_completions_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { fin_am_completions(*self, buf); });
  am_credit_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { fin_am_credit(*self, buf); });
  // Cross-process paths (frame spawns, serialized exceptions, shutdown
  // broadcast). Registered after the finish AMs so the finish wire protocol
  // keeps its ids; registration order is identical in every place process.
  am_spawn_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { rt_am_spawn(*self, buf); });
  am_exception_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { rt_am_exception(*self, buf); });
  am_shutdown_ = transport_->register_am([self](x10rt::ByteBuffer&) {
    self->shutdown_.store(true, std::memory_order_release);
    self->transport_->notify(here());
  });
  // Immediate frames (ISSUE 10): registered last so every pre-existing wire
  // id is unchanged.
  am_immediate_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { rt_am_immediate(*self, buf); });

  // Attach the wire backend only now that every AM is registered: the
  // backend's I/O thread starts delivering peer frames immediately, and a
  // fast peer must never race a frame past an incomplete handler table.
  if (wiring != nullptr) {
    transport_->attach_backend(std::make_unique<x10rt::SocketBackend>(
                                   wiring->place, wiring->peer_fds),
                               wiring->place);
  }
}

Runtime::~Runtime() = default;

void Runtime::register_transport_gauges() {
  // The x10rt transport keeps its own tallies (it must stay runtime-
  // agnostic); expose them as lazily-read gauges under one namespace.
  x10rt::Transport* tr = transport_.get();
  for (int t = 0; t < x10rt::kNumMsgTypes; ++t) {
    const auto type = static_cast<x10rt::MsgType>(t);
    const std::string cls = x10rt::msg_type_name(type);
    metrics_->add_gauge("transport.msgs." + cls,
                        [tr, type] { return tr->count(type); });
    metrics_->add_gauge("transport.bytes." + cls,
                        [tr, type] { return tr->bytes(type); });
  }
  metrics_->add_gauge("transport.msgs.total",
                      [tr] { return tr->total_messages(); });
  metrics_->add_gauge("transport.rdma.ops", [tr] { return tr->rdma_ops(); });
  metrics_->add_gauge("transport.rdma.bytes",
                      [tr] { return tr->rdma_bytes(); });
  if (cfg_.count_pairs) {
    metrics_->add_gauge("transport.out_degree.max", [tr] {
      return static_cast<std::uint64_t>(tr->max_out_degree());
    });
    metrics_->add_gauge("transport.out_degree.ctrl", [tr] {
      return static_cast<std::uint64_t>(tr->max_ctrl_out_degree());
    });
  }
  metrics_->add_gauge("trace.events", [] { return trace::total_events(); });

  // Sender-side coalescing layer + wire-buffer pool (docs/transport.md).
  metrics_->add_gauge("transport.coalesce.envelopes",
                      [tr] { return tr->coalesce_envelopes(); });
  metrics_->add_gauge("transport.coalesce.records",
                      [tr] { return tr->coalesce_records(); });
  metrics_->add_gauge("transport.coalesce.wire_bytes",
                      [tr] { return tr->coalesce_wire_bytes(); });
  metrics_->add_gauge("transport.coalesce.bypass",
                      [tr] { return tr->coalesce_bypass(); });
  for (int r = 0; r < x10rt::kNumFlushReasons; ++r) {
    const auto reason = static_cast<x10rt::FlushReason>(r);
    metrics_->add_gauge(
        std::string("transport.coalesce.flush.") +
            x10rt::flush_reason_name(reason),
        [tr, reason] { return tr->coalesce_flushes(reason); });
  }
  metrics_->add_gauge("transport.pool.hits",
                      [tr] { return tr->pool().hits(); });
  metrics_->add_gauge("transport.pool.misses",
                      [tr] { return tr->pool().misses(); });
  metrics_->add_gauge("transport.pool.recycled",
                      [tr] { return tr->pool().recycled(); });
  metrics_->add_gauge("transport.pool.dropped",
                      [tr] { return tr->pool().dropped(); });

  // Reliability sublayer + chaos injection (docs/transport.md "Reliability").
  metrics_->add_gauge("transport.retx.sent", [tr] { return tr->retx_sent(); });
  metrics_->add_gauge("transport.retx.acked",
                      [tr] { return tr->retx_acked(); });
  metrics_->add_gauge("transport.retx.retransmits",
                      [tr] { return tr->retx_retransmits(); });
  metrics_->add_gauge("transport.retx.dups_dropped",
                      [tr] { return tr->retx_dups_dropped(); });
  metrics_->add_gauge("transport.retx.standalone_acks",
                      [tr] { return tr->retx_standalone_acks(); });
  metrics_->add_gauge("transport.chaos.dropped",
                      [tr] { return tr->chaos_dropped(); });
  metrics_->add_gauge("transport.chaos.duped",
                      [tr] { return tr->chaos_duped(); });
  metrics_->add_gauge("transport.chaos.bypass",
                      [tr] { return tr->chaos_bypass(); });

  // Wire backend (docs/transport.md "Backends"): all zero for the in-process
  // backend, frame/byte tallies of the socket mesh otherwise.
  metrics_->add_gauge("transport.backend.frames_sent",
                      [tr] { return tr->backend_stats().frames_sent; });
  metrics_->add_gauge("transport.backend.frames_received",
                      [tr] { return tr->backend_stats().frames_received; });
  metrics_->add_gauge("transport.backend.bytes_sent",
                      [tr] { return tr->backend_stats().bytes_sent; });
  metrics_->add_gauge("transport.backend.bytes_received",
                      [tr] { return tr->backend_stats().bytes_received; });

  // Online tuning controller (docs/transport.md "Adaptive tuning"). Only
  // registered when armed so a static run's metrics dump is unchanged.
  if (autotune_ != nullptr) {
    Autotune* at = autotune_.get();
    metrics_->add_gauge("autotune.ticks", [at] { return at->ticks(); });
    metrics_->add_gauge("autotune.adjust.up", [at] { return at->adjust_up(); });
    metrics_->add_gauge("autotune.adjust.down",
                        [at] { return at->adjust_down(); });
    metrics_->add_gauge("autotune.rto_updates",
                        [at] { return at->rto_updates(); });
    metrics_->add_gauge("autotune.rtt_samples",
                        [at] { return at->rtt_samples(); });
    metrics_->add_gauge("autotune.park_adjusts",
                        [at] { return at->park_adjusts(); });
  }

  // Hierarchical Team collectives (docs/collectives.md): levels/leaders
  // describe the most recently built hierarchy, chunks/chunk_bytes tally
  // fragments forwarded along leader-tree edges.
  auto& hs = team_detail::hier_stats();
  metrics_->add_gauge("team.hier.levels", [&hs] {
    return hs.levels.load(std::memory_order_relaxed);
  });
  metrics_->add_gauge("team.hier.leaders", [&hs] {
    return hs.leaders.load(std::memory_order_relaxed);
  });
  metrics_->add_gauge("team.hier.chunks", [&hs] {
    return hs.chunks.load(std::memory_order_relaxed);
  });
  metrics_->add_gauge("team.hier.chunk_bytes", [&hs] {
    return hs.chunk_bytes.load(std::memory_order_relaxed);
  });
}

void Runtime::finalize_observability() {
  // Drain whatever the chaos queues still hold before taking the snapshot.
  // The job is quiescent (workers joined), but chaos can park control
  // messages — e.g. a superseded finish snapshot — past the moment the root
  // finish closes. Running their handlers here lets them be classified
  // (applied/stale) instead of vanishing with the inboxes, which is what
  // makes `snapshots.sent == applied + stale` an exact teardown invariant.
  const int saved_place = detail::tl_place;
  for (bool progressed = true; progressed;) {
    progressed = false;
    for (int p = 0; p < cfg_.places; ++p) {
      if (!place_is_local(p)) continue;
      detail::tl_place = p;
      // A handler run by step() may have parked small AMs in a coalescing
      // envelope; ship them so the drain reaches a true fixpoint.
      if (transport_->flush_coalesced(p, x10rt::FlushReason::kQuiesce) > 0) {
        progressed = true;
      }
      // Reliability fixpoint: force-retransmit every unacked entry and ship
      // every owed ack. The force pump reports > 0 while any entry is
      // unacked, so the drain cannot stop before the all-acked state — and
      // an ack-only message never creates new debt, so it does terminate.
      if (transport_->retx_pump(p, /*force=*/true) > 0) progressed = true;
      while (sched(p).step()) progressed = true;
    }
  }
  assert(transport_->retx_quiescent() &&
         "teardown drain must reach the all-acked fixpoint");
  detail::tl_place = saved_place;
  detail::store_last_metrics(metrics_->snapshot());
  hist::set_enabled(false);
  if (!cfg_.metrics_path.empty()) metrics_->write(cfg_.metrics_path);
  if (!cfg_.trace_path.empty()) trace::write_chrome_json(cfg_.trace_path);
  trace::shutdown();
}

void Runtime::worker_loop(int place, int wid) {
  detail::tl_place = place;
  sched(place).bind_worker(wid);
  sched(place).run_until(
      [this] { return shutdown_.load(std::memory_order_acquire); });
  // Unbinding also drains the worker's private message batch (chaos
  // stragglers delivered past the root finish) so teardown stays exact.
  sched(place).unbind_worker();
  detail::tl_place = -1;
}

void Runtime::run(const Config& cfg, std::function<void()> main) {
  assert(current_ == nullptr && "only one APGAS runtime may be live");
  if (cfg.backend == BackendKind::kSocket && cfg.places > 1) {
    // Places become separate processes. Fork the mesh *before* any Runtime
    // (and its transport/DMA threads) exists; each child constructs its own
    // Runtime in run_child and this process only supervises.
    launcher::run_places(cfg, std::move(main));
    return;
  }
  Runtime rt(cfg);
  current_ = &rt;

  // Bootstrap: `main` executes at place 0 under the root finish; all other
  // places start idle (paper §2.1). Shutdown is announced once the root
  // finish has terminated, at which point the whole job has quiesced.
  Activity boot;
  boot.body = [&rt, m = std::move(main)] {
    finish(Pragma::kAuto, m);
    rt.shutdown_.store(true, std::memory_order_release);
    for (int p = 0; p < rt.places(); ++p) rt.transport().notify(p);
  };
  rt.sched(0).push(std::move(boot));

  // Live telemetry (in-process flavour): one sampler over the shared
  // registry, place -1 ("whole job"), appended straight to the JSONL file —
  // there is no supervisor to stream through.
  std::unique_ptr<telemetry::JsonlWriter> tlog;
  std::unique_ptr<Telemetry> tele;
  if (cfg.telemetry_interval_ms > 0) {
    const std::string path = cfg.telemetry_path.empty()
                                 ? std::string("apgas_telemetry.jsonl")
                                 : cfg.telemetry_path;
    tlog = std::make_unique<telemetry::JsonlWriter>(path);
    telemetry::JsonlWriter* w = tlog.get();
    tele = std::make_unique<Telemetry>(
        rt.metrics(), /*place=*/-1, cfg.telemetry_interval_ms,
        cfg.telemetry_keys,
        [w](const std::string& line) { w->append(line); });
    tele->start();
  }

  // The stall watchdog samples progress counters from outside the worker
  // pool; it must stop before finalize_observability tears the trace down.
  std::unique_ptr<Watchdog> watchdog;
  if (cfg.watchdog_interval_ms > 0) {
    watchdog = std::make_unique<Watchdog>(
        rt, std::chrono::milliseconds(cfg.watchdog_interval_ms),
        cfg.watchdog_stall_intervals > 0 ? cfg.watchdog_stall_intervals : 1);
    if (tlog) {
      // Mirror diagnoses into the telemetry stream (apgas_top flags them)
      // while keeping the stderr report.
      telemetry::JsonlWriter* w = tlog.get();
      watchdog->set_report_sink([w](const std::string& r) {
        std::fwrite(r.data(), 1, r.size(), stderr);
        std::fflush(stderr);
        w->append(
            telemetry::wrap_watchdog(-1, clocksync::now_ns() / 1000000, r));
      });
    }
    watchdog->start();
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg.places) *
                  cfg.workers_per_place);
  for (int p = 0; p < cfg.places; ++p) {
    for (int w = 0; w < cfg.workers_per_place; ++w) {
      workers.emplace_back([&rt, p, w] { rt.worker_loop(p, w); });
    }
  }
  for (auto& t : workers) t.join();
  if (watchdog) watchdog->stop();
  if (tele) tele->stop();
  rt.finalize_observability();
  team_detail::registry_clear();
  current_ = nullptr;
}

bool Runtime::drain_local_pass() {
  const int p = local_place_;
  bool progressed = false;
  if (transport_->flush_coalesced(p, x10rt::FlushReason::kQuiesce) > 0) {
    progressed = true;
  }
  // Non-force pump: retransmits respect their timers and owed acks ship
  // once aged (retx_ack_idle_us), so two peers looping this cannot feed
  // each other a force-retransmit storm while they wait on the barrier.
  if (transport_->retx_pump(p, /*force=*/false) > 0) progressed = true;
  while (sched(p).step()) progressed = true;
  transport_->backend_flush();
  return progressed;
}

void Runtime::drain_local_fixpoint() {
  const int p = local_place_;
  for (;;) {
    if (drain_local_pass()) continue;
    if (transport_->retx_quiescent() && transport_->recv_all_acked(p) &&
        transport_->inbox_depth(p) == 0 && transport_->backend_tx_drained()) {
      return;
    }
    // Waiting on a peer's ack or retransmit; the backend I/O thread will
    // deliver it — don't burn the core.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

int Runtime::run_child(const Config& cfg, std::function<void()> main,
                       const launcher::SocketWiring& wiring) {
  assert(current_ == nullptr && "only one APGAS runtime may be live");
  Config c = cfg;
  // Socket mode always arms reliability: cross-process teardown is defined
  // as the all-acked fixpoint, which needs acks to exist. (Chaos drop/dup
  // would force this anyway; a clean wire just inherits the same contract.)
  if (c.retx_timeout_us == 0) c.retx_timeout_us = 1000;
  // Per-place metrics files so the place processes don't clobber one
  // another; the parent writes the aggregate under the original name. Traces
  // are different: the child keeps the flight recorder armed but writes no
  // file of its own — it ships the raw event blob over the control socket
  // and the supervisor writes the single clock-rebased merged trace.
  c.metrics_path = launcher::per_place_path(cfg.metrics_path, wiring.place);
  if (!cfg.trace_path.empty()) c.trace = true;
  c.trace_path.clear();

  Runtime rt(c, &wiring);
  current_ = &rt;
  const int p = wiring.place;
  detail::tl_place = p;

  // Attach clock handshake: answer the supervisor's Cristian probes and arm
  // the offset table before any worker starts, so the very first aligned
  // ship-latency sample already has offsets to use. (Inbound task frames can
  // queue during the handshake, but they only execute on workers.)
  clocksync::set_offsets(launcher::child_clock_handshake(wiring.ctrl_fd,
                                                         c.places));
  launcher::CtrlChannel ctrl(wiring.ctrl_fd);

  if (p == 0) {
    Activity boot;
    Runtime* rtp = &rt;
    boot.body = [rtp, m = std::move(main)] {
      finish(Pragma::kAuto, m);
      // The root finish closed: the job is over. Tell every other place
      // process, then stop locally.
      for (int q = 1; q < rtp->places(); ++q) {
        rtp->transport().send_am(0, q, rtp->am_shutdown_,
                                 rtp->transport().acquire_buffer(),
                                 x10rt::MsgType::kControl);
      }
      rtp->transport().flush_coalesced(0, x10rt::FlushReason::kQuiesce);
      rtp->shutdown_.store(true, std::memory_order_release);
      rtp->transport().notify(0);
    };
    rt.sched(0).push(std::move(boot));
  }

  std::unique_ptr<Watchdog> watchdog;
  if (c.watchdog_interval_ms > 0) {
    watchdog = std::make_unique<Watchdog>(
        rt, std::chrono::milliseconds(c.watchdog_interval_ms),
        c.watchdog_stall_intervals > 0 ? c.watchdog_stall_intervals : 1);
    // Under the socket backend a stderr diagnosis from one place interleaves
    // with three others'; ship it to the supervisor instead, which prints it
    // place-labelled and mirrors it into the telemetry JSONL.
    watchdog->set_report_sink(
        [&ctrl](const std::string& r) { ctrl.send_frame('W', r); });
    watchdog->start();
  }

  std::unique_ptr<Telemetry> tele;
  if (c.telemetry_interval_ms > 0) {
    tele = std::make_unique<Telemetry>(
        rt.metrics(), p, c.telemetry_interval_ms, c.telemetry_keys,
        [&ctrl](const std::string& line) { ctrl.send_frame('T', line); });
    tele->start();
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(c.workers_per_place));
  for (int w = 0; w < c.workers_per_place; ++w) {
    workers.emplace_back([&rt, p, w] { rt.worker_loop(p, w); });
  }
  for (auto& t : workers) t.join();
  if (watchdog) watchdog->stop();
  // Stop the sampler (it emits one final frame) before 'Q': after 'Q' the
  // only upstream traffic may be the drift-probe echoes and then 'M'/'R'.
  if (tele) tele->stop();

  // Quiescence barrier: drain to the local all-acked fixpoint, report 'Q',
  // then keep serving retransmits/acks for slower peers until the
  // supervisor releases everyone with 'G' (answering drift-phase clock
  // probes along the way).
  rt.drain_local_fixpoint();
  ctrl.send_frame('Q', {});
  while (!launcher::child_poll_go(wiring.ctrl_fd)) {
    rt.drain_local_pass();
  }

  // Capture the flight recorder *before* finalize_observability shuts it
  // down; the supervisor rebases these events into its own clock domain and
  // merges all places into one Perfetto file.
  std::string trace_blob;
  if (trace::enabled()) {
    trace_blob = trace::encode_events(trace::epoch_abs_ns(),
                                      trace::drain_all());
  }
  rt.finalize_observability();
  std::string blob;
  for (const auto& [k, v] : last_run_metrics()) {
    blob += k;
    blob += ' ';
    blob += std::to_string(v);
    blob += '\n';
  }
  ctrl.send_frame('M', blob);
  ctrl.send_frame('R', trace_blob);
  clocksync::clear_offsets();
  team_detail::registry_clear();
  current_ = nullptr;
  detail::tl_place = -1;
  return 0;
}

void Runtime::record_ship_latency(std::uint64_t t_send_ns, int src) {
  const std::uint64_t now = hist::now_ns();
  const std::uint64_t lat = ship_latency_ns(now, t_send_ns);
  if (multi_process()) {
    hist_ship_xproc_->record(lat);
    if (src >= 0 && clocksync::armed()) {
      hist_ship_xproc_aligned_->record(
          clocksync::aligned_ship_ns(now, local_place_, t_send_ns, src));
    }
  } else {
    hist_ship_frame_->record(lat);
  }
}

void Runtime::send_task_frame(int dst, int fn_id, x10rt::ByteBuffer args,
                              const FinCtx& ctx, std::uint64_t credit,
                              std::uint64_t span, std::uint64_t parent_span) {
  finc_.tasks_shipped->fetch_add(1, std::memory_order_relaxed);
  trace::emit(trace::Ev::kMsgSend,
              static_cast<std::uint64_t>(x10rt::MsgType::kTask),
              static_cast<std::uint64_t>(dst));
  x10rt::ByteBuffer frame = transport_->acquire_buffer();
  frame.put<std::int32_t>(ctx.key.home);
  frame.put<std::uint64_t>(ctx.key.seq);
  frame.put<std::uint8_t>(static_cast<std::uint8_t>(ctx.mode));
  frame.put<std::uint64_t>(credit);
  frame.put<std::uint64_t>(span);
  frame.put<std::uint64_t>(parent_span);
  // Ship-time stamp + sending place travel inside the frame (not on the
  // Message) so they survive coalescing into an envelope train; the source
  // place lets the receiver pick the right clock offset for the aligned
  // ship-latency sample.
  frame.put<std::int32_t>(here());
  frame.put<std::uint64_t>(hist::enabled() ? hist::now_ns() : 0);
  frame.put<std::int32_t>(fn_id);
  // Ship exactly the unread suffix [position(), size()): the argument
  // convention is "the task function sees the bytes the caller had not yet
  // consumed", and the local fast path in asyncAtFrame honors the same
  // slice, so a caller that pre-read a prefix gets identical bytes either
  // way (ISSUE 10 satellite).
  if (args.remaining() != 0) {
    frame.put_raw(args.bytes().data() + args.position(), args.remaining());
  }
  transport_->send_am(here(), dst, am_spawn_, std::move(frame),
                      x10rt::MsgType::kTask);
}

void Runtime::send_immediate_frame(int dst, int fn_id, x10rt::ByteBuffer args,
                                   x10rt::MsgType type) {
  // Mirrors immediate_at's accounting exactly: a trace event plus the
  // transport's own per-class tallies — no tasks_shipped bump, no
  // ship-latency stamp (run_diff relies on ship-histogram count ==
  // tasks_shipped).
  trace::emit(trace::Ev::kMsgSend, static_cast<std::uint64_t>(type),
              static_cast<std::uint64_t>(dst));
  x10rt::ByteBuffer frame = transport_->acquire_buffer();
  frame.put<std::int32_t>(fn_id);
  if (args.remaining() != 0) {
    frame.put_raw(args.bytes().data() + args.position(), args.remaining());
  }
  transport_->send_am(here(), dst, am_immediate_, std::move(frame), type);
  // Immediates are rendezvous traffic: the caller typically blocks for the
  // peer's reply *inside an activity* (Team barrier, a GLB steal wait), so
  // the scheduler's idle-hook flush may never run on this worker. Parking
  // the frame in a half-full envelope would deadlock the exchange — cut the
  // sender's envelopes now (the other half of the no-deadlock coalescing
  // contract; docs/transport.md).
  transport_->flush_coalesced(here(), x10rt::FlushReason::kImmediate);
}

void Runtime::check_closure_can_reach(int dst) const {
  if (multi_process() && dst != local_place_) {
    std::fprintf(stderr,
                 "[apgas] fatal: closure spawn (asyncAt/at) to place %d "
                 "cannot cross a process boundary under the socket backend; "
                 "register the body (register_task_fn) and spawn it with "
                 "asyncAtFrame\n",
                 dst);
    std::abort();
  }
}

void Runtime::send_task(int dst, std::function<void()> body, const FinCtx& ctx,
                        std::uint64_t credit, std::uint64_t span,
                        std::uint64_t parent_span) {
  // Backstop only: api.h's spawn sites call check_closure_can_reach before
  // any finish bookkeeping mutates, so this should be unreachable.
  check_closure_can_reach(dst);
  finc_.tasks_shipped->fetch_add(1, std::memory_order_relaxed);
  trace::emit(trace::Ev::kMsgSend,
              static_cast<std::uint64_t>(x10rt::MsgType::kTask),
              static_cast<std::uint64_t>(dst));
  x10rt::Message m;
  m.src = here();
  m.type = x10rt::MsgType::kTask;
  // Closure environments are not literally serialized in-process; account a
  // nominal envelope so message-volume stats stay meaningful.
  m.bytes = 64;
  if (hist::enabled()) m.t_send_ns = hist::now_ns();
  Runtime* rt = this;
  m.run = [rt, body = std::move(body), key = ctx.key, mode = ctx.mode, credit,
           span, parent_span]() mutable {
    Activity act;
    act.fin = fin_task_received(*rt, key, mode);
    act.body = std::move(body);
    act.credit = credit;
    act.remote_origin = true;
    act.span = span;
    act.parent_span = parent_span;
    rt->sched(here()).run_activity(act);
  };
  transport_->send(dst, std::move(m));
}

void Runtime::send_ctrl(int dst, std::function<void()> fn, std::size_t bytes) {
  trace::emit(trace::Ev::kMsgSend,
              static_cast<std::uint64_t>(x10rt::MsgType::kControl),
              static_cast<std::uint64_t>(dst));
  x10rt::Message m;
  m.src = detail::tl_place;  // may be -1 (DMA completion threads)
  m.type = x10rt::MsgType::kControl;
  m.bytes = bytes;
  m.run = std::move(fn);
  transport_->send(dst, std::move(m));
}

bool Runtime::with_home_finish(FinishKey key,
                               const std::function<void(FinishHome&)>& fn) {
  assert(here() == key.home && "home-registry lookups run at the home place");
  auto& ps = pstate(key.home);
  std::scoped_lock lock(ps.fin_mu);
  auto it = ps.home_finishes.find(key.seq);
  if (it == ps.home_finishes.end()) return false;  // late; finish released
  fn(*it->second);
  return true;
}

FinCtx current_spawn_ctx() {
  if (detail::tl_open_finish != nullptr) {
    FinCtx ctx;
    ctx.home = detail::tl_open_finish;
    ctx.key = detail::tl_open_finish->key();
    ctx.mode = detail::tl_open_finish->mode();
    return ctx;
  }
  assert(detail::tl_activity != nullptr &&
         (detail::tl_activity->fin.home != nullptr ||
          detail::tl_activity->fin.key.valid()) &&
         "spawn outside of any finish scope");
  return detail::tl_activity->fin;
}

}  // namespace apgas
