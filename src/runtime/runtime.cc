#include "runtime/runtime.h"

#include <utility>

#include "runtime/api.h"
#include "runtime/congruent.h"
#include "runtime/team.h"

namespace apgas {

Runtime* Runtime::current_ = nullptr;

namespace detail {
thread_local int tl_place = -1;
thread_local Activity* tl_activity = nullptr;
thread_local FinishHome* tl_open_finish = nullptr;
}  // namespace detail

Runtime::Runtime(const Config& cfg) : cfg_(cfg) {
  x10rt::TransportConfig tc;
  tc.places = cfg_.places;
  tc.chaos = cfg_.chaos;
  tc.count_pairs = cfg_.count_pairs;
  tc.dma_threads = cfg_.dma_threads;
  transport_ = std::make_unique<x10rt::Transport>(tc);

  pstates_.reserve(static_cast<std::size_t>(cfg_.places));
  for (int p = 0; p < cfg_.places; ++p) {
    auto ps = std::make_unique<PlaceState>();
    ps->sched = std::make_unique<Scheduler>(*this, p);
    ps->sched->add_idle_hook([this, p] { fin_flush_all_dirty(*this, p); });
    pstates_.push_back(std::move(ps));
  }

  congruent_ = std::make_unique<CongruentSpace>(
      *transport_, cfg_.places, cfg_.congruent_bytes,
      cfg_.congruent_large_pages);

  // Finish wire-protocol handlers: (handler id, serialized payload) frames,
  // the real X10RT active-message model. Implementations in finish.cc.
  Runtime* self = this;
  am_snapshot_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { fin_am_snapshot(*self, buf); });
  am_dense_relay_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { fin_am_dense_relay(*self, buf); });
  am_release_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { fin_am_release(*self, buf); });
  am_completions_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { fin_am_completions(*self, buf); });
  am_credit_ = transport_->register_am(
      [self](x10rt::ByteBuffer& buf) { fin_am_credit(*self, buf); });
}

Runtime::~Runtime() = default;

void Runtime::worker_loop(int place) {
  detail::tl_place = place;
  sched(place).run_until(
      [this] { return shutdown_.load(std::memory_order_acquire); });
  detail::tl_place = -1;
}

void Runtime::run(const Config& cfg, std::function<void()> main) {
  assert(current_ == nullptr && "only one APGAS runtime may be live");
  Runtime rt(cfg);
  current_ = &rt;

  // Bootstrap: `main` executes at place 0 under the root finish; all other
  // places start idle (paper §2.1). Shutdown is announced once the root
  // finish has terminated, at which point the whole job has quiesced.
  Activity boot;
  boot.body = [&rt, m = std::move(main)] {
    finish(Pragma::kAuto, m);
    rt.shutdown_.store(true, std::memory_order_release);
    for (int p = 0; p < rt.places(); ++p) rt.transport().notify(p);
  };
  rt.sched(0).push(std::move(boot));

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg.places) *
                  cfg.workers_per_place);
  for (int p = 0; p < cfg.places; ++p) {
    for (int w = 0; w < cfg.workers_per_place; ++w) {
      workers.emplace_back([&rt, p] { rt.worker_loop(p); });
    }
  }
  for (auto& t : workers) t.join();
  team_detail::registry_clear();
  current_ = nullptr;
}

void Runtime::send_task(int dst, std::function<void()> body, const FinCtx& ctx,
                        bool with_credit) {
  x10rt::Message m;
  m.src = here();
  m.type = x10rt::MsgType::kTask;
  // Closure environments are not literally serialized in-process; account a
  // nominal envelope so message-volume stats stay meaningful.
  m.bytes = 64;
  Runtime* rt = this;
  m.run = [rt, body = std::move(body), key = ctx.key, mode = ctx.mode,
           with_credit]() mutable {
    Activity act;
    act.fin = fin_task_received(*rt, key, mode);
    act.body = std::move(body);
    act.has_credit = with_credit;
    act.remote_origin = true;
    rt->sched(here()).run_activity(act);
  };
  transport_->send(dst, std::move(m));
}

void Runtime::send_ctrl(int dst, std::function<void()> fn, std::size_t bytes) {
  x10rt::Message m;
  m.src = detail::tl_place;  // may be -1 (DMA completion threads)
  m.type = x10rt::MsgType::kControl;
  m.bytes = bytes;
  m.run = std::move(fn);
  transport_->send(dst, std::move(m));
}

void Runtime::with_home_finish(FinishKey key,
                               const std::function<void(FinishHome&)>& fn) {
  assert(here() == key.home && "home-registry lookups run at the home place");
  auto& ps = pstate(key.home);
  std::scoped_lock lock(ps.fin_mu);
  auto it = ps.home_finishes.find(key.seq);
  if (it == ps.home_finishes.end()) return;  // late message, finish released
  fn(*it->second);
}

FinCtx current_spawn_ctx() {
  if (detail::tl_open_finish != nullptr) {
    FinCtx ctx;
    ctx.home = detail::tl_open_finish;
    ctx.key = detail::tl_open_finish->key();
    ctx.mode = detail::tl_open_finish->mode();
    return ctx;
  }
  assert(detail::tl_activity != nullptr &&
         (detail::tl_activity->fin.home != nullptr ||
          detail::tl_activity->fin.key.valid()) &&
         "spawn outside of any finish scope");
  return detail::tl_activity->fin;
}

}  // namespace apgas
