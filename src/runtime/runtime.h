// The APGAS runtime: places, workers, and the job lifecycle (paper §2, §4).
//
// A Runtime hosts P places inside one process. Each place is an isolated
// scheduler plus a share of the X10RT transport; the execution starts with
// `main` at place 0 under a root finish and ends when that finish terminates
// (all other places start idle, exactly as in X10).
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/activity.h"
#include "runtime/autotune.h"
#include "runtime/config.h"
#include "runtime/finish.h"
#include "runtime/metrics.h"
#include "runtime/scheduler.h"
#include "x10rt/transport.h"

namespace apgas {

class CongruentSpace;

namespace launcher {
struct SocketWiring;
}  // namespace launcher

/// Finish-protocol counters, resolved against the MetricsRegistry once at
/// startup so the wire-protocol hot paths increment plain atomics (metric
/// names in docs/observability.md).
struct FinishCounters {
  MetricsRegistry::Counter* opened = nullptr;
  MetricsRegistry::Counter* upgrades = nullptr;
  MetricsRegistry::Counter* snapshots_sent = nullptr;
  MetricsRegistry::Counter* snapshots_applied = nullptr;
  MetricsRegistry::Counter* snapshots_stale = nullptr;
  MetricsRegistry::Counter* dense_batches = nullptr;
  MetricsRegistry::Counter* releases = nullptr;
  MetricsRegistry::Counter* completion_msgs = nullptr;
  MetricsRegistry::Counter* credit_msgs = nullptr;
  MetricsRegistry::Counter* tasks_shipped = nullptr;
  MetricsRegistry::Counter* closed = nullptr;
};

/// FINISH_DENSE per-master pending control frames, keyed by next hop.
struct DenseRelay {
  std::mutex mu;
  // next hop -> (final home, frame bytes)
  std::unordered_map<int, std::vector<std::pair<int, std::vector<std::byte>>>>
      pending;
  bool flusher_scheduled = false;
};

/// Everything a place owns.
struct PlaceState {
  std::unique_ptr<Scheduler> sched;

  std::mutex fin_mu;
  std::unordered_map<std::uint64_t, FinishHome*> home_finishes;
  std::unordered_map<FinishKey, std::unique_ptr<RemoteBlock>, FinishKeyHash>
      blocks;
  std::atomic<std::uint64_t> next_finish_seq{1};

  DenseRelay relay;

  // Per-place monitor backing X10's `atomic` / `when` (one lock per place;
  // the generation counter wakes `when` waiters after each atomic section).
  std::mutex atomic_mu;
  std::atomic<std::uint64_t> atomic_gen{0};

  // Local half of the causal span ids minted at this place (starts at 1 so
  // span 0 always means "untraced").
  std::atomic<std::uint64_t> next_span{1};
};

class Runtime {
 public:
  /// Runs `main` at place 0 under a root finish; returns when the whole job
  /// has quiesced. Only one Runtime may be live at a time. With
  /// cfg.backend == kSocket (and > 1 place) this instead forks one process
  /// per place via launcher::run_places and supervises them — the calling
  /// process never hosts a place, and the aggregated metrics land in
  /// last_run_metrics() as usual.
  static void run(const Config& cfg, std::function<void()> main);

  /// Internal: entry point of one forked place process (launcher.cc calls
  /// this right after fork). Builds a Runtime over a SocketBackend, runs the
  /// place (place 0 additionally drives `main` and broadcasts shutdown),
  /// participates in the quiescence barrier, and ships the metrics blob.
  static int run_child(const Config& cfg, std::function<void()> main,
                       const launcher::SocketWiring& wiring);

  /// The live runtime (asserts one exists).
  static Runtime& get() {
    assert(current_ != nullptr && "no APGAS runtime is running");
    return *current_;
  }
  static bool active() { return current_ != nullptr; }

  [[nodiscard]] int places() const { return cfg_.places; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// True when every place is a separate process (socket backend).
  [[nodiscard]] bool multi_process() const { return local_place_ >= 0; }
  /// The place this process hosts; -1 when all places are in-process.
  [[nodiscard]] int local_place() const { return local_place_; }
  /// Whether place `p`'s state (scheduler counters, inboxes) lives in this
  /// process — drain loops and the watchdog only inspect local places.
  [[nodiscard]] bool place_is_local(int p) const {
    return local_place_ < 0 || local_place_ == p;
  }
  [[nodiscard]] x10rt::Transport& transport() { return *transport_; }
  [[nodiscard]] PlaceState& pstate(int place) {
    return *pstates_[static_cast<std::size_t>(place)];
  }
  [[nodiscard]] Scheduler& sched(int place) {
    return *pstates_[static_cast<std::size_t>(place)]->sched;
  }
  [[nodiscard]] CongruentSpace& congruent() { return *congruent_; }
  [[nodiscard]] MetricsRegistry& metrics() { return *metrics_; }
  /// The online tuning controller, or nullptr when Config::autotune == 0.
  [[nodiscard]] Autotune* autotune() { return autotune_.get(); }
  [[nodiscard]] const FinishCounters& fin_counters() const { return finc_; }

  /// Node master of `p` under the places-per-node mapping (FINISH_DENSE
  /// software routing: p - p % b).
  [[nodiscard]] int master_of(int p) const {
    return p - p % cfg_.places_per_node;
  }

  /// Mints a causal span id at `place`: place bits (high 16) | a per-place
  /// counter. Called only when tracing is enabled; 0 stays "untraced".
  [[nodiscard]] std::uint64_t new_span(int place) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(place))
            << 48) |
           pstate(place).next_span.fetch_add(1, std::memory_order_relaxed);
  }

  /// Finish open->close latency histogram for the declared protocol.
  [[nodiscard]] Histogram& fin_close_hist(Pragma p) {
    return *fin_close_hist_[static_cast<std::size_t>(p)];
  }

  /// Ships a task to place `dst` under the given finish context. `credit` is
  /// the FINISH_HERE weight travelling with the task (0 for other protocols).
  /// `span`/`parent_span` are the causal ids travelling with the task (0 =
  /// untraced).
  void send_task(int dst, std::function<void()> body, const FinCtx& ctx,
                 std::uint64_t credit, std::uint64_t span = 0,
                 std::uint64_t parent_span = 0);

  /// Ships a *frame* task — a registered task-function id (task_registry.h)
  /// plus serialized args — under the given finish context. The only spawn
  /// path that crosses process boundaries; in-process it behaves exactly
  /// like send_task. Ship-time is stamped inside the frame (the receiver's
  /// clock differs across processes, so the sample lands in
  /// task.ship_xproc_ns there — scheduler.h ship_latency_ns).
  void send_task_frame(int dst, int fn_id, x10rt::ByteBuffer args,
                       const FinCtx& ctx, std::uint64_t credit,
                       std::uint64_t span = 0, std::uint64_t parent_span = 0);

  /// Sends a control-message closure (finish protocol traffic).
  void send_ctrl(int dst, std::function<void()> fn, std::size_t bytes);

  /// Ships a fire-and-forget *frame* immediate — a registered task-function
  /// id plus serialized args, run inline by the receiver's poller outside
  /// any finish scope. The wire twin of immediate_at (api.h): same
  /// accounting (no tasks_shipped bump, no ship-latency sample), but the
  /// payload is bytes instead of a closure, so it crosses process
  /// boundaries. Always routes through the transport, even to self.
  void send_immediate_frame(int dst, int fn_id, x10rt::ByteBuffer args,
                            x10rt::MsgType type = x10rt::MsgType::kOther);

  /// Aborts with the closure-cannot-cross-processes diagnostic when `dst`
  /// lives in another process. Spawn sites call this *before* any finish
  /// bookkeeping mutates (credit minting, remote_spawn) so the failure is
  /// diagnosable pre-side-effect; send_task keeps the same check as a
  /// backstop.
  void check_closure_can_reach(int dst) const;

  /// Records a frame task's ship->execute latency: in-process samples join
  /// task.ship_ns; cross-process ones are clamped into task.ship_xproc_ns
  /// (the sender's clock is another process's domain) and — when the
  /// launcher's clock handshake has armed the offset table — additionally
  /// recorded clock-corrected into task.ship_xproc_aligned_ns. `src` is the
  /// sending place (-1 when unknown; skips the aligned sample).
  void record_ship_latency(std::uint64_t t_send_ns, int src);

  /// Runs a closure at the home registry entry for `key`, if still present.
  /// Used by control handlers; late messages for released finishes drop.
  /// Returns false on such a drop so callers can keep their books exact
  /// (e.g. a post-release snapshot is by definition stale).
  bool with_home_finish(FinishKey key,
                        const std::function<void(FinishHome&)>& fn);

  // Registered active-message handler ids for the finish wire protocol
  // (handlers are installed at startup; see finish.cc for the frame codecs).
  [[nodiscard]] int am_snapshot() const { return am_snapshot_; }
  [[nodiscard]] int am_dense_relay() const { return am_dense_relay_; }
  [[nodiscard]] int am_release() const { return am_release_; }
  [[nodiscard]] int am_completions() const { return am_completions_; }
  [[nodiscard]] int am_credit() const { return am_credit_; }
  [[nodiscard]] int am_spawn() const { return am_spawn_; }
  [[nodiscard]] int am_exception() const { return am_exception_; }
  [[nodiscard]] int am_immediate() const { return am_immediate_; }

 private:
  explicit Runtime(const Config& cfg,
                   const launcher::SocketWiring* wiring = nullptr);
  ~Runtime();
  void worker_loop(int place, int wid);
  void register_transport_gauges();
  /// Drives the local place to its all-acked fixpoint: no queued inbox
  /// messages, no unacked sends, no owed acks, backend tx drained. One
  /// `pass` is non-blocking; the child barrier loops it.
  bool drain_local_pass();
  void drain_local_fixpoint();
  /// After workers join: snapshot metrics for last_run_metrics(), write the
  /// configured trace/metrics files, tear down the flight recorder.
  void finalize_observability();

  static Runtime* current_;

  Config cfg_;
  // The registry is declared (and constructed) before everything that
  // resolves counters out of it — schedulers, transport gauges, finc_.
  std::unique_ptr<MetricsRegistry> metrics_;
  FinishCounters finc_;
  // Declared before transport_ so it is destroyed after it: transport
  // teardown (quiesce flushes, late acks) may still fire the autotune hooks.
  std::unique_ptr<Autotune> autotune_;
  std::unique_ptr<x10rt::Transport> transport_;
  int am_snapshot_ = -1;
  int am_dense_relay_ = -1;
  int am_release_ = -1;
  int am_completions_ = -1;
  int am_credit_ = -1;
  int am_spawn_ = -1;
  int am_exception_ = -1;
  int am_shutdown_ = -1;
  int am_immediate_ = -1;
  int local_place_ = -1;  // >= 0 iff this process hosts exactly one place
  // Ship-latency histograms for the frame-task path, resolved once (the
  // closure path's live in Scheduler).
  Histogram* hist_ship_frame_ = nullptr;
  Histogram* hist_ship_xproc_ = nullptr;
  Histogram* hist_ship_xproc_aligned_ = nullptr;
  std::vector<std::unique_ptr<PlaceState>> pstates_;
  std::unique_ptr<CongruentSpace> congruent_;
  // Per-protocol finish open->close latency histograms, resolved once.
  std::array<Histogram*, kNumPragmas> fin_close_hist_{};
  std::atomic<bool> shutdown_{false};
};

// --- thread-local execution context -----------------------------------------

namespace detail {
extern thread_local int tl_place;
extern thread_local Activity* tl_activity;
/// Innermost finish opened by the current activity at this place (if any);
/// spawns register here, falling back to the activity's inherited context.
extern thread_local FinishHome* tl_open_finish;
}  // namespace detail

/// Index of the current place (valid on runtime worker threads only).
inline int here() {
  assert(detail::tl_place >= 0 && "not on an APGAS worker thread");
  return detail::tl_place;
}

inline int num_places() { return Runtime::get().places(); }

/// Span id of the activity executing on this thread (0 when untraced or off
/// a worker thread). Spawn sites record it as the parent of the new span.
inline std::uint64_t current_span() {
  return detail::tl_activity != nullptr ? detail::tl_activity->span : 0;
}

/// The finish context new spawns should register under.
FinCtx current_spawn_ctx();

// --- exception wire codec ----------------------------------------------------
//
// Cross-process exception rides cannot ship an exception_ptr, so the wire
// form is [kind u8][what string]: the encoder classifies the thrown type into
// a small table of standard exceptions (most-derived first) and the decoder
// rebuilds the matching std type, preserving type identity for every standard
// exception. Anything unrecognized degrades to std::runtime_error with the
// original what() — the documented fidelity limit (docs/transport.md).

/// Appends [kind u8][what string] for the given in-flight exception.
void wire_encode_exception(x10rt::ByteBuffer& b, const std::exception_ptr& ep);

/// Reads [kind u8][what string]; returns a rebuilt exception_ptr.
std::exception_ptr wire_decode_exception(x10rt::ByteBuffer& b);

}  // namespace apgas
