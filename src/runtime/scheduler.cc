#include "runtime/scheduler.h"

#include <chrono>
#include <string>
#include <thread>

#include "runtime/clocksync.h"
#include "runtime/config.h"
#include "runtime/finish.h"
#include "runtime/runtime.h"
#include "runtime/trace.h"

namespace apgas {

namespace {

/// The worker the calling thread is bound to (nullptr on external threads:
/// the bootstrap caller, DMA engines, finalize_observability's drain).
thread_local Scheduler* tl_bound_sched = nullptr;
thread_local void* tl_bound_worker = nullptr;

/// splitmix64 step — cheap per-worker randomness for steal victim order.
inline std::uint64_t next_rand(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Scheduler::Scheduler(Runtime& rt, int place)
    : rt_(rt),
      place_(place),
      poll_batch_(rt.config().poll_batch < 1
                      ? 1
                      : static_cast<std::size_t>(rt.config().poll_batch)),
      park_min_us_(rt.config().park_backoff_min_us < 1
                       ? 1
                       : rt.config().park_backoff_min_us),
      park_ceiling_us_(rt.config().park_backoff_max_us < park_min_us_
                           ? park_min_us_
                           : rt.config().park_backoff_max_us),
      park_max_us_(rt.config().park_backoff_max_us < park_min_us_
                       ? park_min_us_
                       : rt.config().park_backoff_max_us),
      activities_executed_(rt.metrics().counter(
          "sched.p" + std::to_string(place) + ".activities_executed")),
      messages_processed_(rt.metrics().counter(
          "sched.p" + std::to_string(place) + ".messages_processed")),
      idle_transitions_(rt.metrics().counter(
          "sched.p" + std::to_string(place) + ".idle_transitions")),
      steals_(rt.metrics().counter("sched.p" + std::to_string(place) +
                                   ".steals")),
      overflow_drained_(rt.metrics().counter("sched.p" +
                                             std::to_string(place) +
                                             ".overflow")),
      hist_ship_(rt.metrics().histogram("task.ship_ns")),
      hist_ship_xproc_(rt.metrics().histogram("task.ship_xproc_ns")),
      hist_ship_xproc_aligned_(
          rt.metrics().histogram("task.ship_xproc_aligned_ns")),
      hist_exec_(rt.metrics().histogram("activity.exec_ns")) {
  for (int t = 0; t < x10rt::kNumMsgTypes; ++t) {
    msgs_by_type_[static_cast<std::size_t>(t)] = &rt.metrics().counter(
        std::string("sched.msgs.") +
        x10rt::msg_type_name(static_cast<x10rt::MsgType>(t)));
  }
  const int nworkers =
      rt.config().workers_per_place < 1 ? 1 : rt.config().workers_per_place;
  workers_.reserve(static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->sched = this;
    worker->id = w;
    worker->rng = 0x2545F4914F6CDD1DULL * static_cast<std::uint64_t>(w + 1) +
                  static_cast<std::uint64_t>(place + 1);
    workers_.push_back(std::move(worker));
  }
}

Scheduler::~Scheduler() = default;

Scheduler::Worker* Scheduler::local_worker() const {
  return tl_bound_sched == this ? static_cast<Worker*>(tl_bound_worker)
                                : nullptr;
}

void Scheduler::bind_worker(int wid) {
  assert(wid >= 0 && wid < workers());
  assert(tl_bound_sched == nullptr && "thread already bound to a scheduler");
  tl_bound_sched = this;
  tl_bound_worker = workers_[static_cast<std::size_t>(wid)].get();
}

void Scheduler::unbind_worker() {
  Worker* w = local_worker();
  if (w == nullptr) return;
  // The job has quiesced, but chaos can leave already-delivered messages
  // (e.g. superseded snapshots) in this worker's private batch. Run them so
  // teardown bookkeeping (sent == applied + stale) stays exact.
  while (!w->batch.empty()) {
    x10rt::Message m = std::move(w->batch.front());
    w->batch.pop_front();
    consume_message(m);
  }
  tl_bound_sched = nullptr;
  tl_bound_worker = nullptr;
}

void Scheduler::push(Activity a) {
  Worker* w = local_worker();
  if (w != nullptr) {
    w->deque.push(new Activity(std::move(a)));
    // Self-notify elision: with one worker per place the pusher is the only
    // possible consumer and is evidently awake — skip even the fence.
    if (workers_.size() > 1) rt_.transport().notify_if_sleeping(place_);
    return;
  }
  {
    std::scoped_lock lock(overflow_mu_);
    overflow_.push_back(std::move(a));
  }
  overflow_size_.fetch_add(1, std::memory_order_release);
  rt_.transport().notify_if_sleeping(place_);
}

bool Scheduler::try_steal(Activity& out, Worker* thief) {
  if (workers_.size() < 2) return false;
  std::uint64_t seed;
  if (thief != nullptr) {
    seed = next_rand(thief->rng);
  } else {
    thread_local std::uint64_t ext_rng = 0x9e3779b97f4a7c15ULL;
    seed = next_rand(ext_rng);
  }
  const std::size_t n = workers_.size();
  const std::size_t start = static_cast<std::size_t>(seed % n);
  for (std::size_t i = 0; i < n; ++i) {
    Worker* victim = workers_[(start + i) % n].get();
    if (victim == thief) continue;
    if (Activity* a = victim->deque.steal()) {
      out = std::move(*a);
      delete a;
      steals_.fetch_add(1, std::memory_order_relaxed);
      trace::emit_at(place_, trace::Ev::kSchedSteal,
                     static_cast<std::uint64_t>(
                         thief != nullptr ? thief->id : -1),
                     static_cast<std::uint64_t>(victim->id));
      return true;
    }
  }
  return false;
}

bool Scheduler::pop_local(Activity& out, Worker* w) {
  if (w != nullptr) {
    if (Activity* a = w->deque.pop()) {
      out = std::move(*a);
      delete a;
      return true;
    }
  }
  // Overflow inbox: external pushes. The atomic gate keeps the common empty
  // case lock-free.
  if (overflow_size_.load(std::memory_order_acquire) > 0) {
    std::scoped_lock lock(overflow_mu_);
    if (!overflow_.empty()) {
      out = std::move(overflow_.front());
      overflow_.pop_front();
      overflow_size_.fetch_sub(1, std::memory_order_relaxed);
      overflow_drained_.fetch_add(1, std::memory_order_relaxed);
      trace::emit_at(place_, trace::Ev::kSchedOverflow,
                     static_cast<std::uint64_t>(w != nullptr ? w->id : -1));
      return true;
    }
  }
  return try_steal(out, w);
}

void Scheduler::run_activity(Activity& act) {
  Activity* prev_act = detail::tl_activity;
  FinishHome* prev_open = detail::tl_open_finish;
  detail::tl_activity = &act;
  detail::tl_open_finish = nullptr;
  trace::emit_at(place_, trace::Ev::kActivityBegin, act.span,
                 act.parent_span);
  // Sample `timed` once so a mid-run toggle can never record an end without
  // a matching start.
  const bool timed = hist::enabled();
  const std::uint64_t t0 = timed ? hist::now_ns() : 0;
  try {
    act.body();
  } catch (...) {
    fin_report_exception(rt_, act.fin, std::current_exception());
  }
  if (timed) hist_exec_.record(hist::now_ns() - t0);
  trace::emit_at(place_, trace::Ev::kActivityEnd, act.span);
  detail::tl_activity = prev_act;
  detail::tl_open_finish = prev_open;
  activities_executed_.fetch_add(1, std::memory_order_relaxed);
  fin_activity_completed(rt_, act);
}

void Scheduler::consume_message(x10rt::Message& m) {
  trace::emit_at(place_, trace::Ev::kMsgRecv,
                 static_cast<std::uint64_t>(m.type),
                 static_cast<std::uint64_t>(m.src));
  msgs_by_type_[static_cast<std::size_t>(m.type)]->fetch_add(
      1, std::memory_order_relaxed);
  // Ship->execute latency: the sender stamped the message iff histograms
  // were armed, so an unstamped message costs only this field test. A stamp
  // minted in another process lands in task.ship_xproc_ns, clamped — its
  // clock read races ours within granularity and the raw subtraction would
  // wrap (ship_latency_ns in scheduler.h).
  if (m.t_send_ns != 0) {
    const std::uint64_t now = hist::now_ns();
    const std::uint64_t lat = ship_latency_ns(now, m.t_send_ns);
    if ((m.rflags & x10rt::kMsgXProc) != 0) {
      hist_ship_xproc_.record(lat);
      // With the launcher's clock offsets armed, also record the sample
      // clock-corrected: both stamps mapped into the supervisor domain.
      if (m.src >= 0 && clocksync::armed()) {
        hist_ship_xproc_aligned_.record(
            clocksync::aligned_ship_ns(now, place_, m.t_send_ns, m.src));
      }
    } else {
      hist_ship_.record(lat);
    }
  }
  m.run();
  messages_processed_.fetch_add(1, std::memory_order_relaxed);
}

bool Scheduler::step() {
  // Incoming messages first: this keeps control protocols prompt and lets
  // FINISH_DENSE relay flushers (local tasks) batch naturally. Workers pull
  // whole batches under one inbox lock and then consume them lock-free;
  // external threads (finalize drain) poll one message at a time so the
  // quiescence loop's "nothing progressed" reading stays exact.
  Worker* w = local_worker();
  if (w != nullptr) {
    if (w->batch.empty()) {
      rt_.transport().poll_batch(place_, w->batch, poll_batch_);
    }
    if (!w->batch.empty()) {
      x10rt::Message m = std::move(w->batch.front());
      w->batch.pop_front();
      consume_message(m);
      return true;
    }
  } else if (auto msg = rt_.transport().poll(place_)) {
    consume_message(*msg);
    return true;
  }
  Activity act;
  if (pop_local(act, w)) {
    run_activity(act);
    return true;
  }
  return false;
}

void Scheduler::run_idle_hooks() {
  const auto* hooks = hooks_.load(std::memory_order_acquire);
  if (hooks == nullptr) return;
  for (const auto& hook : *hooks) hook();
}

void Scheduler::run_until(const std::function<bool()>& done) {
  using namespace std::chrono_literals;
  // Spin-then-park: a worker that runs dry first yields the CPU a few times
  // (cheap; a sibling or the transport usually refills within microseconds),
  // then parks on the inbox CV with exponentially growing timeouts. The
  // enter_idle/step/wait sequence is the sleeper side of the Dekker
  // handshake: after announcing the park we re-check for work once, so a
  // producer that missed the announcement cannot strand us.
  // Yield-based spinning keeps workers out of the parked state (and thus
  // producers out of the notify path) through short work gaps; on an
  // oversubscribed machine yield() also donates the slice to the producer.
  constexpr int kSpinRounds = 6;
  int idle_rounds = 0;
  while (!done()) {
    if (step()) {
      idle_rounds = 0;
      continue;
    }
    idle_transitions_.fetch_add(1, std::memory_order_relaxed);
    // Transitioned to idle: give hooks (dirty finish-block flushers, dense
    // relays) a chance to produce the control traffic that unblocks others.
    run_idle_hooks();
    if (done()) return;
    if (step()) {
      idle_rounds = 0;
      continue;
    }
    ++idle_rounds;
    if (idle_rounds <= kSpinRounds) {
      std::this_thread::yield();
      continue;
    }
    int shift = idle_rounds - kSpinRounds - 1;
    if (shift > 8) shift = 8;
    // Exponential ramp from the configured minimum, capped by the ceiling —
    // which the autotune controller may move inside [park_backoff_min_us,
    // park_backoff_max_us]. The default 1µs -> 200µs band reproduces the
    // previously hardcoded constants exactly.
    auto park = std::chrono::microseconds(
        static_cast<std::int64_t>(park_min_us_) << shift);
    const auto ceiling = std::chrono::microseconds(
        park_ceiling_us_.load(std::memory_order_relaxed));
    if (park > ceiling) park = ceiling;
    rt_.transport().enter_idle(place_);
    if (done() || step()) {
      rt_.transport().exit_idle(place_);
      idle_rounds = 0;
      if (done()) return;
      continue;
    }
    rt_.transport().wait_nonempty(place_, park);
    rt_.transport().exit_idle(place_);
  }
}

void Scheduler::add_idle_hook(std::function<void()> hook) {
  std::scoped_lock lock(hooks_mu_);
  const auto* cur = hooks_.load(std::memory_order_relaxed);
  auto next = std::make_unique<std::vector<std::function<void()>>>(
      cur != nullptr ? *cur : std::vector<std::function<void()>>{});
  next->push_back(std::move(hook));
  const auto* raw = next.get();
  hook_snapshots_.emplace_back(std::move(next));
  hooks_.store(raw, std::memory_order_release);
}

void Scheduler::set_park_ceiling_us(std::uint64_t us) {
  if (us < park_min_us_) us = park_min_us_;
  if (us > park_max_us_) us = park_max_us_;
  park_ceiling_us_.store(us, std::memory_order_relaxed);
}

}  // namespace apgas
