#include "runtime/scheduler.h"

#include <chrono>
#include <string>

#include "runtime/finish.h"
#include "runtime/runtime.h"
#include "runtime/trace.h"

namespace apgas {

Scheduler::Scheduler(Runtime& rt, int place)
    : rt_(rt),
      place_(place),
      activities_executed_(rt.metrics().counter(
          "sched.p" + std::to_string(place) + ".activities_executed")),
      messages_processed_(rt.metrics().counter(
          "sched.p" + std::to_string(place) + ".messages_processed")),
      idle_transitions_(rt.metrics().counter(
          "sched.p" + std::to_string(place) + ".idle_transitions")) {
  for (int t = 0; t < x10rt::kNumMsgTypes; ++t) {
    msgs_by_type_[static_cast<std::size_t>(t)] = &rt.metrics().counter(
        std::string("sched.msgs.") +
        x10rt::msg_type_name(static_cast<x10rt::MsgType>(t)));
  }
}

void Scheduler::push(Activity a) {
  {
    std::scoped_lock lock(mu_);
    deque_.push_back(std::move(a));
  }
  rt_.transport().notify(place_);
}

bool Scheduler::pop_local(Activity& out) {
  std::scoped_lock lock(mu_);
  if (deque_.empty()) return false;
  out = std::move(deque_.front());
  deque_.pop_front();
  return true;
}

void Scheduler::run_activity(Activity& act) {
  Activity* prev_act = detail::tl_activity;
  FinishHome* prev_open = detail::tl_open_finish;
  detail::tl_activity = &act;
  detail::tl_open_finish = nullptr;
  trace::emit_at(place_, trace::Ev::kActivityBegin);
  try {
    act.body();
  } catch (...) {
    fin_report_exception(rt_, act.fin, std::current_exception());
  }
  trace::emit_at(place_, trace::Ev::kActivityEnd);
  detail::tl_activity = prev_act;
  detail::tl_open_finish = prev_open;
  activities_executed_.fetch_add(1, std::memory_order_relaxed);
  fin_activity_completed(rt_, act);
}

bool Scheduler::step() {
  // Incoming messages first: this keeps control protocols prompt and lets
  // FINISH_DENSE relay flushers (local tasks) batch naturally.
  if (auto msg = rt_.transport().poll(place_)) {
    trace::emit_at(place_, trace::Ev::kMsgRecv,
                   static_cast<std::uint64_t>(msg->type),
                   static_cast<std::uint64_t>(msg->src));
    msgs_by_type_[static_cast<std::size_t>(msg->type)]->fetch_add(
        1, std::memory_order_relaxed);
    msg->run();
    messages_processed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  Activity act;
  if (pop_local(act)) {
    run_activity(act);
    return true;
  }
  return false;
}

void Scheduler::run_until(const std::function<bool()>& done) {
  using namespace std::chrono_literals;
  while (!done()) {
    if (step()) continue;
    idle_transitions_.fetch_add(1, std::memory_order_relaxed);
    // Transitioned to idle: give hooks (dirty finish-block flushers, dense
    // relays) a chance to produce the control traffic that unblocks others.
    {
      std::scoped_lock lock(hooks_mu_);
      for (auto& hook : idle_hooks_) hook();
    }
    if (done()) return;
    if (step()) continue;
    rt_.transport().wait_nonempty(place_, 200us);
  }
}

void Scheduler::add_idle_hook(std::function<void()> hook) {
  std::scoped_lock lock(hooks_mu_);
  idle_hooks_.push_back(std::move(hook));
}

}  // namespace apgas
