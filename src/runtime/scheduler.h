// Per-place work-stealing scheduler (paper §3.1; docs/scheduler.md).
//
// Each place runs `workers_per_place` OS threads (the paper uses one). Every
// worker owns a lock-free Chase–Lev deque: spawns from a worker go to its own
// deque (owner push/pop at the bottom), idle siblings steal from the top in
// random victim order. Pushes from threads that are not workers of this place
// (the bootstrap, transport handlers running elsewhere, cross-place flushers)
// land in a small mutex-guarded overflow inbox that workers drain before
// stealing. Incoming transport messages are drained in batches (one lock
// acquisition per batch, zero per message) and are preferred over local
// tasks; this is what lets FINISH_DENSE masters batch control traffic
// naturally (the relay flusher is a local task and therefore only runs once
// the inbox has drained).
//
// Blocking constructs (finish wait, blocking `at`, team collectives, clock
// advance) never park the thread: they re-enter the scheduler loop and keep
// executing incoming work — including stealing from sibling workers — exactly
// like the X10 runtime's worker "help" protocol. Idle workers spin briefly,
// then park on the transport inbox with exponential backoff; producers skip
// the wakeup syscall entirely while no worker is parked (the sleeper-elision
// handshake in x10rt::Transport).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/activity.h"
#include "runtime/metrics.h"
#include "runtime/worker_deque.h"
#include "x10rt/message.h"

namespace apgas {

class Runtime;

/// Ship->execute latency from a sender-side timestamp, clamped to >= 1 ns.
/// Cross-process stamps come from another process's clock read; even on one
/// host the two reads can land within clock granularity of each other, and
/// the former unsigned subtraction turned that into a ~2^64 ns sample that
/// poisoned the histogram's max (and every percentile above it).
[[nodiscard]] constexpr std::uint64_t ship_latency_ns(std::uint64_t now_ns,
                                                      std::uint64_t send_ns) {
  return now_ns > send_ns ? now_ns - send_ns : 1;
}

class Scheduler {
 public:
  Scheduler(Runtime& rt, int place);
  ~Scheduler();

  /// Enqueues a local activity. Calls from a bound worker of this place go
  /// to that worker's own deque (lock-free); any other thread lands in the
  /// overflow inbox. Sleeping sibling workers are woken, the wakeup is
  /// elided when nobody sleeps.
  void push(Activity a);

  /// Processes one inbox message or one local activity (own deque, then
  /// overflow, then stealing). Returns false when there was nothing to do.
  bool step();

  /// Pumps until `done()` holds; spins then parks on the transport inbox
  /// with exponential backoff when idle. Re-entrant: blocked activities call
  /// this recursively and keep helping (and stealing).
  void run_until(const std::function<bool()>& done);

  /// Runs `act` to completion on the calling thread with correct
  /// thread-local context and completion accounting.
  void run_activity(Activity& act);

  /// Binds the calling thread as worker `wid` (0 <= wid < workers()) of this
  /// place. Runtime::worker_loop calls this once per worker thread before
  /// entering run_until.
  void bind_worker(int wid);

  /// Unbinds the calling thread, first processing any messages still parked
  /// in its private poll batch (chaos stragglers past the root finish) so no
  /// delivered message is ever lost to teardown.
  void unbind_worker();

  /// Registers a hook invoked when the place transitions to idle (e.g. the
  /// dirty-finish-block flusher). Hooks are append-only and must be
  /// registered before the first worker runs; the hot path reads the list
  /// through one atomic pointer load, no lock.
  void add_idle_hook(std::function<void()> hook);

  [[nodiscard]] int place() const { return place_; }
  [[nodiscard]] int workers() const { return static_cast<int>(workers_.size()); }

  // The counters live in the runtime's MetricsRegistry (under
  // "sched.pN.*"); these getters are thin views kept for existing callers.

  /// Activities run to completion on this place (user tasks + system).
  [[nodiscard]] std::uint64_t activities_executed() const {
    return activities_executed_.load(std::memory_order_relaxed);
  }
  /// Transport messages processed by this place's workers.
  [[nodiscard]] std::uint64_t messages_processed() const {
    return messages_processed_.load(std::memory_order_relaxed);
  }
  /// Busy->idle transitions (how often this place ran dry).
  [[nodiscard]] std::uint64_t idle_transitions() const {
    return idle_transitions_.load(std::memory_order_relaxed);
  }
  /// Successful intra-place steals between sibling workers.
  [[nodiscard]] std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  /// Activities drained from the overflow inbox (external pushes).
  [[nodiscard]] std::uint64_t overflow_drained() const {
    return overflow_drained_.load(std::memory_order_relaxed);
  }
  /// Activities currently parked in the overflow inbox (watchdog diagnosis).
  [[nodiscard]] std::size_t overflow_pending() const {
    return overflow_size_.load(std::memory_order_relaxed);
  }

  /// Current park-backoff ceiling in microseconds. Idle workers ramp their
  /// park interval exponentially from Config::park_backoff_min_us up to this
  /// ceiling; the autotune controller moves it inside the configured band.
  [[nodiscard]] std::uint64_t park_ceiling_us() const {
    return park_ceiling_us_.load(std::memory_order_relaxed);
  }
  /// Moves the park-backoff ceiling, clamped to
  /// [Config::park_backoff_min_us, Config::park_backoff_max_us]. Thread-safe;
  /// idle workers pick the new value up on their next park.
  void set_park_ceiling_us(std::uint64_t us);

 private:
  /// Everything one worker thread owns. Only the bound thread touches
  /// `batch` and the bottom end of `deque`; thieves use `deque.steal()`.
  struct Worker {
    Scheduler* sched = nullptr;
    int id = 0;
    WorkerDeque deque;
    std::deque<x10rt::Message> batch;  // private slice of the place inbox
    std::uint64_t rng = 0;             // steal victim order
  };

  /// The calling thread's Worker if it is bound to *this* scheduler.
  Worker* local_worker() const;

  bool pop_local(Activity& out, Worker* w);
  bool try_steal(Activity& out, Worker* thief);
  void consume_message(x10rt::Message& m);
  void run_idle_hooks();

  Runtime& rt_;
  int place_;
  std::size_t poll_batch_;

  // Park-backoff band (paper §3.1 idle protocol). The minimum seeds the
  // exponential ramp; the ceiling caps it and is the only adaptively moved
  // knob (relaxed atomic: stale reads just park a little longer/shorter).
  std::uint64_t park_min_us_;
  std::atomic<std::uint64_t> park_ceiling_us_;
  std::uint64_t park_max_us_;

  std::vector<std::unique_ptr<Worker>> workers_;

  // External pushes (non-worker threads / other places' workers).
  std::mutex overflow_mu_;
  std::deque<Activity> overflow_;
  std::atomic<std::size_t> overflow_size_{0};

  // Idle hooks: registration is rare and locked; readers follow one acquire
  // pointer load. Superseded snapshots are retained until destruction.
  std::mutex hooks_mu_;
  std::atomic<const std::vector<std::function<void()>>*> hooks_{nullptr};
  std::vector<std::unique_ptr<const std::vector<std::function<void()>>>>
      hook_snapshots_;

  // Registry-owned counters, resolved once at construction.
  MetricsRegistry::Counter& activities_executed_;
  MetricsRegistry::Counter& messages_processed_;
  MetricsRegistry::Counter& idle_transitions_;
  MetricsRegistry::Counter& steals_;
  MetricsRegistry::Counter& overflow_drained_;
  // Messages processed by class, shared across places ("sched.msgs.CLASS").
  std::array<MetricsRegistry::Counter*, x10rt::kNumMsgTypes> msgs_by_type_{};
  // Latency histograms (shared across places), resolved once: task
  // ship->execute (from Message::t_send_ns; cross-process samples routed to
  // their own histogram — see consume_message) and activity body duration.
  Histogram& hist_ship_;
  Histogram& hist_ship_xproc_;
  Histogram& hist_ship_xproc_aligned_;
  Histogram& hist_exec_;
};

}  // namespace apgas
