// Per-place cooperative scheduler.
//
// Each place runs `workers_per_place` OS threads (the paper uses one) that
// pump the place's transport inbox and local task deque. Blocking constructs
// (finish wait, blocking `at`, team collectives, clock advance) never park
// the thread: they re-enter the scheduler loop and keep executing incoming
// work, exactly like the X10 runtime's worker "help" protocol. Incoming
// messages are preferred over local tasks; this is what lets FINISH_DENSE
// masters batch control traffic naturally (the relay flusher is a local task
// and therefore only runs once the inbox has drained).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "runtime/activity.h"
#include "runtime/metrics.h"
#include "x10rt/message.h"

namespace apgas {

class Runtime;

class Scheduler {
 public:
  Scheduler(Runtime& rt, int place);

  /// Enqueues a local activity (thread-safe; wakes sleeping workers).
  void push(Activity a);

  /// Processes one inbox message or one local activity. Returns false when
  /// there was nothing to do.
  bool step();

  /// Pumps until `done()` holds; sleeps on the transport inbox when idle.
  /// Re-entrant: blocked activities call this recursively.
  void run_until(const std::function<bool()>& done);

  /// Runs `act` to completion on the calling thread with correct
  /// thread-local context and completion accounting.
  void run_activity(Activity& act);

  /// Registers a hook invoked when the place transitions to idle (e.g. the
  /// dirty-finish-block flusher).
  void add_idle_hook(std::function<void()> hook);

  [[nodiscard]] int place() const { return place_; }

  // The counters live in the runtime's MetricsRegistry (under
  // "sched.pN.*"); these getters are thin views kept for existing callers.

  /// Activities run to completion on this place (user tasks + system).
  [[nodiscard]] std::uint64_t activities_executed() const {
    return activities_executed_.load(std::memory_order_relaxed);
  }
  /// Transport messages processed by this place's workers.
  [[nodiscard]] std::uint64_t messages_processed() const {
    return messages_processed_.load(std::memory_order_relaxed);
  }
  /// Busy->idle transitions (how often this place ran dry).
  [[nodiscard]] std::uint64_t idle_transitions() const {
    return idle_transitions_.load(std::memory_order_relaxed);
  }

 private:
  bool pop_local(Activity& out);

  Runtime& rt_;
  int place_;

  std::mutex mu_;
  std::deque<Activity> deque_;

  std::mutex hooks_mu_;
  std::vector<std::function<void()>> idle_hooks_;

  // Registry-owned counters, resolved once at construction.
  MetricsRegistry::Counter& activities_executed_;
  MetricsRegistry::Counter& messages_processed_;
  MetricsRegistry::Counter& idle_transitions_;
  // Messages processed by class, shared across places ("sched.msgs.CLASS").
  std::array<MetricsRegistry::Counter*, x10rt::kNumMsgTypes> msgs_by_type_{};
};

}  // namespace apgas
