// Frame tasks: the spawn path that crosses process boundaries.
//
// A closure cannot leave its process, so the socket backend ships spawns as
// (function id, serialized args) instead — the X10 model, where the compiler
// assigns every `at` body a stable id and serializes its captured
// environment. Here the ids come from registration order: every place
// process must register the same functions in the same order *before*
// Runtime::run, which namespace-scope initializers guarantee (registration
// happens pre-main, hence pre-fork, so parent and children agree by
// construction).
#pragma once

#include <functional>

#include "x10rt/serialization.h"

namespace apgas {

using TaskFn = std::function<void(x10rt::ByteBuffer& args)>;

/// Registers a task function; returns its stable id (see file comment for
/// the cross-process ordering contract). Not thread-safe: call from
/// namespace-scope initializers or otherwise before Runtime::run.
int register_task_fn(TaskFn fn);

/// Resolves an id to its function. Ids arrive over the wire, so an
/// out-of-range value aborts with a message rather than indexing blindly.
const TaskFn& task_fn(int id);

[[nodiscard]] int num_task_fns();

}  // namespace apgas
