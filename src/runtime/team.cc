#include "runtime/team.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace apgas {

namespace team_detail {

TeamState::TeamState(std::uint64_t team_id, TeamMode m, std::vector<int> mem)
    : id(team_id), mode(m), members(std::move(mem)) {
  for (int r = 0; r < static_cast<int>(members.size()); ++r) {
    rank_of[members[static_cast<std::size_t>(r)]] = r;
  }
  per.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    per.push_back(std::make_unique<Member>());
  }
  src_ptrs.assign(members.size(), nullptr);
}

namespace {
std::mutex g_registry_mu;
std::unordered_map<std::uint64_t, std::shared_ptr<TeamState>> g_registry;
}  // namespace

std::shared_ptr<TeamState> get_or_create(std::uint64_t id, TeamMode mode,
                                         const std::vector<int>& members) {
  std::scoped_lock lock(g_registry_mu);
  auto& slot = g_registry[id];
  if (!slot) slot = std::make_shared<TeamState>(id, mode, members);
  assert(slot->members == members && slot->mode == mode &&
         "team id collision with different membership");
  return slot;
}

void registry_clear() {
  std::scoped_lock lock(g_registry_mu);
  g_registry.clear();
}

}  // namespace team_detail

Team Team::world(TeamMode mode) {
  std::vector<int> members(static_cast<std::size_t>(num_places()));
  for (int p = 0; p < num_places(); ++p) members[static_cast<std::size_t>(p)] = p;
  const std::uint64_t id = mode == TeamMode::kNative ? 1 : 0;
  return Team(team_detail::get_or_create(id, mode, members));
}

std::uint64_t Team::next_seq() {
  auto& member = *state_->per[static_cast<std::size_t>(rank())];
  std::scoped_lock lock(member.mu);
  return ++member.op_seq;
}

void Team::send_bytes(std::uint64_t seq, int tag, int dst_rank,
                      std::vector<std::byte> payload) {
  const int dst_place = place_of(dst_rank);
  const int src_rank = rank();
  auto state = state_;
  const std::size_t bytes = payload.size();
  immediate_at(
      dst_place,
      [state, seq, tag, src_rank, dst_rank,
       payload = std::move(payload)]() mutable {
        auto& member = *state->per[static_cast<std::size_t>(dst_rank)];
        std::scoped_lock lock(member.mu);
        member.mail.emplace(std::make_tuple(seq, tag, src_rank),
                            std::move(payload));
      },
      x10rt::MsgType::kCollective, bytes);
}

std::vector<std::byte> Team::recv_bytes(std::uint64_t seq, int tag,
                                        int src_rank) {
  auto& member = *state_->per[static_cast<std::size_t>(rank())];
  const auto key = std::make_tuple(seq, tag, src_rank);
  std::vector<std::byte> out;
  bool got = false;
  Runtime::get().sched(here()).run_until([&] {
    std::scoped_lock lock(member.mu);
    auto it = member.mail.find(key);
    if (it == member.mail.end()) return false;
    out = std::move(it->second);
    member.mail.erase(it);
    got = true;
    return true;
  });
  if (!got) {
    // Must never happen: run_until only returns once the predicate holds.
    // Under NDEBUG an assert would compile out and silently hand an empty
    // payload to the collective; abort loudly instead (same policy as
    // Activity::take_credit_share).
    std::fprintf(stderr,
                 "[apgas] fatal: Team::recv_bytes returned without a matching "
                 "mail entry (team=%llu seq=%llu tag=%d src_rank=%d)\n",
                 static_cast<unsigned long long>(state_->id),
                 static_cast<unsigned long long>(seq), tag, src_rank);
    std::abort();
  }
  return out;
}

void Team::barrier() {
  team_detail::PhaseScope phase(team_detail::kOpBarrier, state_->id);
  const int sz = size();
  if (sz == 1) return;
  if (state_->mode == TeamMode::kNative) {
    native_barrier();
    return;
  }
  // Dissemination barrier: ceil(log2(n)) rounds of partner signalling.
  const std::uint64_t seq = next_seq();
  const int me = rank();
  for (int round = 0, dist = 1; dist < sz; ++round, dist <<= 1) {
    send_bytes(seq, /*tag=*/100 + round, (me + dist) % sz, {});
    (void)recv_bytes(seq, /*tag=*/100 + round, (me + sz - dist) % sz);
  }
}

void Team::native_barrier() {
  auto& state = *state_;
  const int sz = size();
  const std::uint64_t gen = state.barrier_gen.load(std::memory_order_acquire);
  if (state.barrier_count.fetch_add(1, std::memory_order_acq_rel) + 1 == sz) {
    state.barrier_count.store(0, std::memory_order_relaxed);
    state.barrier_gen.fetch_add(1, std::memory_order_acq_rel);
    // Wake members parked on their transport inboxes.
    for (int p : state.members) Runtime::get().transport().notify(p);
    return;
  }
  Runtime::get().sched(here()).run_until([&state, gen] {
    return state.barrier_gen.load(std::memory_order_acquire) != gen;
  });
}

std::byte* Team::native_stage(std::size_t bytes) {
  auto& state = *state_;
  if (rank() == 0) {
    std::scoped_lock lock(state.shared_mu);
    if (state.shared_buf.size() < bytes) state.shared_buf.resize(bytes);
  }
  native_barrier();
  return state.shared_buf.data();
}

Team Team::split(int color, int key) {
  team_detail::PhaseScope phase(team_detail::kOpSplit, state_->id);
  struct Entry {
    int color;
    int key;
    int rank;
    int place;
    std::uint64_t seq;  // sender's op count entering the split
  };
  const int sz = size();
  const int me = rank();
  // The derived team id hangs off the parent's op count, so the count must
  // be read under the member lock (collectives on other worker threads bump
  // it via next_seq) and *before* the allgather below advances it — the
  // post-allgather value would race with whatever collective runs next.
  std::uint64_t my_seq;
  {
    auto& member = *state_->per[static_cast<std::size_t>(me)];
    std::scoped_lock lock(member.mu);
    my_seq = member.op_seq;
  }
  std::vector<Entry> entries(static_cast<std::size_t>(sz));
  const Entry mine{color, key, me, here(), my_seq};
  allgather(&mine, entries.data(), 1);

  std::vector<Entry> same;
  for (const auto& e : entries) {
    // Every member must enter the split at the same op count, or the
    // "identical derived id" assumption the registry rendezvous depends on
    // is already broken — fail here, not at the id-collision assert.
    assert(e.seq == my_seq &&
           "Team::split members entered at different op counts");
    if (e.color == color) same.push_back(e);
  }
  std::sort(same.begin(), same.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });
  std::vector<int> members;
  members.reserve(same.size());
  for (const auto& e : same) members.push_back(e.place);

  // Deterministic id every member computes identically: derived from the
  // parent team, the color, and the parent's op count entering the split.
  const std::uint64_t id = (state_->id * 1315423911ULL) ^
                           (static_cast<std::uint64_t>(color) << 32) ^ my_seq ^
                           0x51ed2701ULL;
  return Team(team_detail::get_or_create(id, state_->mode, members));
}

}  // namespace apgas
