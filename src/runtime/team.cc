#include "runtime/team.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "percs/topology.h"
#include "runtime/metrics.h"

namespace apgas {

namespace team_detail {

const char* op_name(TeamOp op) {
  switch (op) {
    case kOpBarrier: return "barrier";
    case kOpBcast: return "bcast";
    case kOpReduce: return "reduce";
    case kOpAllreduce: return "allreduce";
    case kOpScatter: return "scatter";
    case kOpGather: return "gather";
    case kOpAlltoall: return "alltoall";
    case kOpAllgather: return "allgather";
    case kOpSplit: return "split";
  }
  return "unknown";
}

void record_op_ns(TeamOp op, std::uint64_t ns) {
  // Name lookup takes the registry lock, but only when histograms are armed
  // (the caller gates on hist::enabled()) and only once per collective call.
  Runtime::get()
      .metrics()
      .histogram(std::string("team.op_ns.") + op_name(op))
      .record(ns);
}

HierStats& hier_stats() {
  static HierStats s;
  return s;
}

void note_chunk(std::uint64_t op, std::size_t chunk_idx, int dst_rank,
                std::size_t bytes) {
  auto& s = hier_stats();
  s.chunks.fetch_add(1, std::memory_order_relaxed);
  s.chunk_bytes.fetch_add(bytes, std::memory_order_relaxed);
  trace::emit(trace::Ev::kTeamChunk,
              (op << 32) | static_cast<std::uint64_t>(chunk_idx),
              (static_cast<std::uint64_t>(bytes) << 16) |
                  static_cast<std::uint64_t>(
                      static_cast<std::uint16_t>(dst_rank)));
}

Hierarchy& TeamState::hierarchy() {
  std::call_once(hier_once, [this] {
    auto h = std::make_unique<Hierarchy>();
    const Config& cfg = Runtime::get().config();
    h->fanout = cfg.team_fanout < 1 ? 1 : cfg.team_fanout;
    h->chunk_bytes = cfg.team_chunk_bytes;
    const int nranks = static_cast<int>(members.size());
    h->domain.assign(static_cast<std::size_t>(nranks),
                     std::vector<int>(3, 0));
    if (Runtime::get().multi_process()) {
      // Place processes share no memory, so the shared-memory leaf-group
      // fast path (GroupShared single-copy publish) cannot exist: collapse
      // every leaf group to a singleton. Each rank leads itself and all
      // payload movement rides mail frames up the leader tree — the
      // hierarchical algorithms then never touch a group counter (gsize==1)
      // and remain correct across processes.
      for (int r = 0; r < nranks; ++r) {
        h->domain[static_cast<std::size_t>(r)][0] = r;
      }
      h->levels = 1;
    } else if (cfg.team_places_per_octant > 0) {
      percs::MachineShape shape;
      shape.cores_per_octant = cfg.team_places_per_octant;
      shape.octants_per_drawer =
          cfg.team_octants_per_drawer < 1 ? 1 : cfg.team_octants_per_drawer;
      shape.drawers_per_supernode = cfg.team_drawers_per_supernode < 1
                                        ? 1
                                        : cfg.team_drawers_per_supernode;
      int max_place = 0;
      for (int p : members) max_place = std::max(max_place, p);
      const long per_sn = static_cast<long>(shape.cores_per_octant) *
                          shape.octants_per_drawer *
                          shape.drawers_per_supernode;
      shape.supernodes = static_cast<int>(max_place / per_sn) + 1;
      const percs::Machine machine(shape);
      for (int r = 0; r < nranks; ++r) {
        const long core = members[static_cast<std::size_t>(r)];
        for (int level = 0; level < 3; ++level) {
          h->domain[static_cast<std::size_t>(r)][static_cast<std::size_t>(
              level)] = machine.domain_of_core(core, level);
        }
      }
      h->levels = std::clamp(cfg.team_levels, 1, 3);
    } else {
      // No topology model: leaf-group consecutive places per "node" and
      // hang every leaf leader off one flat root tier.
      const int per = cfg.places_per_node < 1 ? 1 : cfg.places_per_node;
      for (int r = 0; r < nranks; ++r) {
        h->domain[static_cast<std::size_t>(r)][0] =
            members[static_cast<std::size_t>(r)] / per;
      }
      h->levels = 1;
    }
    std::map<int, std::vector<int>> by_octant;  // ordered -> stable group ids
    for (int r = 0; r < nranks; ++r) {
      by_octant[h->domain[static_cast<std::size_t>(r)][0]].push_back(r);
    }
    h->leaf_of.assign(static_cast<std::size_t>(nranks), 0);
    for (auto& [octant, ranks] : by_octant) {
      const int gi = static_cast<int>(h->leaf_members.size());
      for (int r : ranks) h->leaf_of[static_cast<std::size_t>(r)] = gi;
      h->leaf_members.push_back(ranks);  // ascending: map visit order
      h->groups.push_back(std::make_unique<GroupShared>());
    }
    auto& stats = hier_stats();
    stats.levels.store(static_cast<std::uint64_t>(h->levels),
                       std::memory_order_relaxed);
    stats.leaders.store(h->leaf_members.size(), std::memory_order_relaxed);
    hier = std::move(h);
  });
  return *hier;
}

const LeaderTree& Hierarchy::tree_for(int root) {
  std::scoped_lock lock(mu);
  auto& slot = trees[root];
  if (slot) return *slot;
  auto t = std::make_unique<LeaderTree>();
  const int n = static_cast<int>(leaf_of.size());
  t->parent.assign(static_cast<std::size_t>(n), -1);
  t->children.assign(static_cast<std::size_t>(n), {});
  t->is_leader.assign(static_cast<std::size_t>(n), 0);
  t->leaf_leader.assign(leaf_members.size(), -1);
  // Leaf leaders: the op root leads its own group (the promotion that makes
  // any rank a valid root without regrouping); every other group is led by
  // its minimum rank.
  for (std::size_t g = 0; g < leaf_members.size(); ++g) {
    const auto& ranks = leaf_members[g];
    int lead = ranks.front();  // ascending, so front() is the minimum
    for (int r : ranks) {
      if (r == root) {
        lead = root;
        break;
      }
    }
    t->leaf_leader[g] = lead;
    t->is_leader[static_cast<std::size_t>(lead)] = 1;
  }
  // Heap-attach `nodes` under `head`: ordered = [head, rest ascending],
  // parent of ordered[j] is ordered[(j-1)/fanout] — a complete fanout-ary
  // tree, so depth is logarithmic in the tier size.
  auto attach = [&](const std::vector<int>& nodes, int head) {
    std::vector<int> ordered;
    ordered.reserve(nodes.size());
    ordered.push_back(head);
    for (int r : nodes) {
      if (r != head) ordered.push_back(r);
    }
    for (std::size_t j = 1; j < ordered.size(); ++j) {
      const int p = ordered[(j - 1) / static_cast<std::size_t>(fanout)];
      t->parent[static_cast<std::size_t>(ordered[j])] = p;
      t->children[static_cast<std::size_t>(p)].push_back(ordered[j]);
    }
  };
  // Tier by tier: leaf leaders group by drawer, drawer heads by supernode,
  // and whatever tier remains hangs under the root. The root heads every
  // group it belongs to, so it survives to the top by construction.
  std::vector<int> cur = t->leaf_leader;
  std::sort(cur.begin(), cur.end());
  for (int level = 1; level < levels; ++level) {
    std::map<int, std::vector<int>> by;
    for (int r : cur) {
      by[domain[static_cast<std::size_t>(r)][static_cast<std::size_t>(level)]]
          .push_back(r);
    }
    std::vector<int> next;
    for (auto& [d, nodes] : by) {
      int head = nodes.front();
      for (int r : nodes) {
        if (r == root) {
          head = root;
          break;
        }
      }
      attach(nodes, head);
      next.push_back(head);
    }
    std::sort(next.begin(), next.end());
    cur = std::move(next);
  }
  attach(cur, root);
  int depth = 1;
  for (int r = 0; r < n; ++r) {
    if (t->is_leader[static_cast<std::size_t>(r)] == 0) continue;
    int d = 0;
    for (int p = r; t->parent[static_cast<std::size_t>(p)] != -1;
         p = t->parent[static_cast<std::size_t>(p)]) {
      ++d;
    }
    depth = std::max(depth, d);
  }
  t->depth = depth;
  slot = std::move(t);
  return *slot;
}

TeamState::TeamState(std::uint64_t team_id, TeamMode m, std::vector<int> mem)
    : id(team_id), mode(m), members(std::move(mem)) {
  for (int r = 0; r < static_cast<int>(members.size()); ++r) {
    rank_of[members[static_cast<std::size_t>(r)]] = r;
  }
  per.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    per.push_back(std::make_unique<Member>());
  }
  src_ptrs.assign(members.size(), nullptr);
}

namespace {
std::mutex g_registry_mu;
std::unordered_map<std::uint64_t, std::shared_ptr<TeamState>> g_registry;

/// Mail that arrived (as a frame task) before this process created the team
/// it addresses — possible only across processes, where each place builds
/// its registry independently and a fast sender can beat the receiver's
/// get_or_create. Drained, in arrival order, when the team appears.
struct PendingMail {
  std::uint64_t seq;
  int tag;
  int src_rank;
  int dst_rank;
  std::vector<std::byte> payload;
};
std::unordered_map<std::uint64_t, std::vector<PendingMail>> g_pending;

/// Files one payload into the destination member's mailbox. Lock order is
/// registry -> member everywhere (get_or_create drains pending mail while
/// holding the registry lock), never the reverse.
void file_mail(TeamState& team, std::uint64_t seq, int tag, int src_rank,
               int dst_rank, std::vector<std::byte> payload) {
  if (dst_rank < 0 || dst_rank >= static_cast<int>(team.per.size())) {
    std::fprintf(stderr,
                 "[apgas] fatal: team mail frame addresses rank %d of team "
                 "%llu (size %zu)\n",
                 dst_rank, static_cast<unsigned long long>(team.id),
                 team.per.size());
    std::abort();
  }
  auto& member = *team.per[static_cast<std::size_t>(dst_rank)];
  std::scoped_lock lock(member.mu);
  member.mail.emplace(std::make_tuple(seq, tag, src_rank),
                      std::move(payload));
}

/// The registered frame task carrying emulated/hierarchical Team mail:
/// [team_id u64][seq u64][tag i32][src_rank i32][dst_rank i32][payload raw].
/// Registered pre-main (pre-fork), so every place process of one binary
/// agrees on the id — the same contract as every other frame task.
void team_mail_task(x10rt::ByteBuffer& b) {
  const auto team_id = b.get<std::uint64_t>();
  const auto seq = b.get<std::uint64_t>();
  const int tag = b.get<std::int32_t>();
  const int src_rank = b.get<std::int32_t>();
  const int dst_rank = b.get<std::int32_t>();
  std::vector<std::byte> payload(b.remaining());
  if (!payload.empty()) b.get_raw(payload.data(), payload.size());
  std::shared_ptr<TeamState> team;
  {
    std::scoped_lock lock(g_registry_mu);
    auto it = g_registry.find(team_id);
    if (it == g_registry.end()) {
      g_pending[team_id].push_back(
          {seq, tag, src_rank, dst_rank, std::move(payload)});
      return;
    }
    team = it->second;
  }
  file_mail(*team, seq, tag, src_rank, dst_rank, std::move(payload));
}
}  // namespace

const int kTeamMailTask = apgas::register_task_fn(&team_mail_task);

std::shared_ptr<TeamState> get_or_create(std::uint64_t id, TeamMode mode,
                                         const std::vector<int>& members) {
  std::scoped_lock lock(g_registry_mu);
  auto& slot = g_registry[id];
  if (!slot) {
    slot = std::make_shared<TeamState>(id, mode, members);
    // Deliver mail frames that raced ahead of this process's create.
    if (auto it = g_pending.find(id); it != g_pending.end()) {
      for (auto& m : it->second) {
        file_mail(*slot, m.seq, m.tag, m.src_rank, m.dst_rank,
                  std::move(m.payload));
      }
      g_pending.erase(it);
    }
  }
  assert(slot->members == members && slot->mode == mode &&
         "team id collision with different membership");
  return slot;
}

void registry_clear() {
  std::scoped_lock lock(g_registry_mu);
  g_registry.clear();
  g_pending.clear();
  auto& s = hier_stats();
  s.levels.store(0, std::memory_order_relaxed);
  s.leaders.store(0, std::memory_order_relaxed);
  s.chunks.store(0, std::memory_order_relaxed);
  s.chunk_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace team_detail

Team Team::world(TeamMode mode) {
  std::vector<int> members(static_cast<std::size_t>(num_places()));
  for (int p = 0; p < num_places(); ++p) members[static_cast<std::size_t>(p)] = p;
  const std::uint64_t id = mode == TeamMode::kNative         ? 1
                           : mode == TeamMode::kHierarchical ? 2
                                                             : 0;
  return Team(team_detail::get_or_create(id, mode, members));
}

std::uint64_t Team::next_seq() {
  auto& member = *state_->per[static_cast<std::size_t>(rank())];
  std::scoped_lock lock(member.mu);
  return ++member.op_seq;
}

void Team::send_bytes(std::uint64_t seq, int tag, int dst_rank,
                      std::vector<std::byte> payload) {
  // Mail rides a registered frame task instead of a closure, so it crosses
  // process boundaries under the socket backend; the in-process backend runs
  // the identical frame path, keeping both backends' accounting equal.
  const int dst_place = place_of(dst_rank);
  auto frame = Runtime::get().transport().acquire_buffer();
  frame.put(state_->id);
  frame.put(seq);
  frame.put(static_cast<std::int32_t>(tag));
  frame.put(static_cast<std::int32_t>(rank()));
  frame.put(static_cast<std::int32_t>(dst_rank));
  if (!payload.empty()) frame.put_raw(payload.data(), payload.size());
  immediateAtFrame(dst_place, team_detail::kTeamMailTask, std::move(frame),
                   x10rt::MsgType::kCollective);
}

std::vector<std::byte> Team::recv_bytes(std::uint64_t seq, int tag,
                                        int src_rank) {
  auto& member = *state_->per[static_cast<std::size_t>(rank())];
  const auto key = std::make_tuple(seq, tag, src_rank);
  std::vector<std::byte> out;
  bool got = false;
  Runtime::get().sched(here()).run_until([&] {
    std::scoped_lock lock(member.mu);
    auto it = member.mail.find(key);
    if (it == member.mail.end()) return false;
    out = std::move(it->second);
    member.mail.erase(it);
    got = true;
    return true;
  });
  if (!got) {
    // Must never happen: run_until only returns once the predicate holds.
    // Under NDEBUG an assert would compile out and silently hand an empty
    // payload to the collective; abort loudly instead (same policy as
    // Activity::take_credit_share).
    std::fprintf(stderr,
                 "[apgas] fatal: Team::recv_bytes returned without a matching "
                 "mail entry (team=%llu seq=%llu tag=%d src_rank=%d)\n",
                 static_cast<unsigned long long>(state_->id),
                 static_cast<unsigned long long>(seq), tag, src_rank);
    std::abort();
  }
  return out;
}

void Team::barrier() {
  team_detail::PhaseScope phase(team_detail::kOpBarrier, state_->id);
  const int sz = size();
  if (sz == 1) return;
  const TeamMode m = effective_mode();
  if (m == TeamMode::kNative) {
    native_barrier();
    return;
  }
  if (m == TeamMode::kHierarchical) {
    hier_barrier();
    return;
  }
  // Dissemination barrier: ceil(log2(n)) rounds of partner signalling.
  const std::uint64_t seq = next_seq();
  const int me = rank();
  for (int round = 0, dist = 1; dist < sz; ++round, dist <<= 1) {
    send_bytes(seq, /*tag=*/100 + round, (me + dist) % sz, {});
    (void)recv_bytes(seq, /*tag=*/100 + round, (me + sz - dist) % sz);
  }
}

std::array<std::uint64_t, 4> Team::hier_claim(std::uint64_t pub_delta,
                                              std::uint64_t arrive_delta,
                                              std::uint64_t done_delta) {
  auto& member = *state_->per[static_cast<std::size_t>(rank())];
  std::scoped_lock lock(member.mu);
  const std::array<std::uint64_t, 4> out{++member.op_seq, member.g_pub,
                                         member.g_arrive, member.g_done};
  member.g_pub += pub_delta;
  member.g_arrive += arrive_delta;
  member.g_done += done_delta;
  return out;
}

void Team::notify_group(const team_detail::Hierarchy& h, int me) {
  const int gi = h.leaf_of[static_cast<std::size_t>(me)];
  for (int r : h.leaf_members[static_cast<std::size_t>(gi)]) {
    if (r != me) Runtime::get().transport().notify(place_of(r));
  }
}

/// Hierarchical barrier: members bump the group `arrive` counter and wait
/// for one `pub` release; leaf leaders gather (local arrivals, then mail
/// from tree children), signal up the per-root tree, wait for the release
/// wave coming back down, relay it to children, and finally publish to
/// their own group.
void Team::hier_barrier() {
  auto& h = state_->hierarchy();
  const auto& tree = h.tree_for(/*root=*/0);
  const int me = rank();
  const int gi = h.leaf_of[static_cast<std::size_t>(me)];
  auto& g = *h.groups[static_cast<std::size_t>(gi)];
  const std::size_t gsize = h.leaf_members[static_cast<std::size_t>(gi)].size();
  const auto [seq, pub_base, arrive_base, done_base] =
      hier_claim(/*pub=*/1, /*arrive=*/gsize - 1, /*done=*/0);
  (void)done_base;
  if (tree.is_leader[static_cast<std::size_t>(me)]) {
    if (gsize > 1) {
      const std::uint64_t want = arrive_base + (gsize - 1);
      Runtime::get().sched(here()).run_until([&g, want] {
        return g.arrive.load(std::memory_order_acquire) >= want;
      });
    }
    for (int c : tree.children[static_cast<std::size_t>(me)]) {
      (void)recv_bytes(seq, team_detail::kTagBarrierUp, c);
    }
    if (tree.parent[static_cast<std::size_t>(me)] != -1) {
      const int parent = tree.parent[static_cast<std::size_t>(me)];
      send_bytes(seq, team_detail::kTagBarrierUp, parent, {});
      (void)recv_bytes(seq, team_detail::kTagBarrierDown, parent);
    }
    for (int c : tree.children[static_cast<std::size_t>(me)]) {
      send_bytes(seq, team_detail::kTagBarrierDown, c, {});
    }
    if (gsize > 1) {
      g.pub.fetch_add(1, std::memory_order_release);
      notify_group(h, me);
    }
  } else {
    g.arrive.fetch_add(1, std::memory_order_release);
    const int leader = tree.leaf_leader[static_cast<std::size_t>(gi)];
    Runtime::get().transport().notify(place_of(leader));
    const std::uint64_t want = pub_base + 1;
    Runtime::get().sched(here()).run_until([&g, want] {
      return g.pub.load(std::memory_order_acquire) >= want;
    });
  }
}

void Team::native_barrier() {
  auto& state = *state_;
  const int sz = size();
  const std::uint64_t gen = state.barrier_gen.load(std::memory_order_acquire);
  if (state.barrier_count.fetch_add(1, std::memory_order_acq_rel) + 1 == sz) {
    state.barrier_count.store(0, std::memory_order_relaxed);
    state.barrier_gen.fetch_add(1, std::memory_order_acq_rel);
    // Wake members parked on their transport inboxes.
    for (int p : state.members) Runtime::get().transport().notify(p);
    return;
  }
  Runtime::get().sched(here()).run_until([&state, gen] {
    return state.barrier_gen.load(std::memory_order_acquire) != gen;
  });
}

std::byte* Team::native_stage(std::size_t bytes) {
  auto& state = *state_;
  if (rank() == 0) {
    std::scoped_lock lock(state.shared_mu);
    if (state.shared_buf.size() < bytes) state.shared_buf.resize(bytes);
  }
  native_barrier();
  return state.shared_buf.data();
}

Team Team::split(int color, int key) {
  team_detail::PhaseScope phase(team_detail::kOpSplit, state_->id);
  struct Entry {
    int color;
    int key;
    int rank;
    int place;
    std::uint64_t seq;  // sender's op count entering the split
  };
  const int sz = size();
  const int me = rank();
  // The derived team id hangs off the parent's op count, so the count must
  // be read under the member lock (collectives on other worker threads bump
  // it via next_seq) and *before* the allgather below advances it — the
  // post-allgather value would race with whatever collective runs next.
  std::uint64_t my_seq;
  {
    auto& member = *state_->per[static_cast<std::size_t>(me)];
    std::scoped_lock lock(member.mu);
    my_seq = member.op_seq;
  }
  std::vector<Entry> entries(static_cast<std::size_t>(sz));
  const Entry mine{color, key, me, here(), my_seq};
  allgather(&mine, entries.data(), 1);

  std::vector<Entry> same;
  for (const auto& e : entries) {
    // Every member must enter the split at the same op count, or the
    // "identical derived id" assumption the registry rendezvous depends on
    // is already broken — fail here, not at the id-collision assert.
    assert(e.seq == my_seq &&
           "Team::split members entered at different op counts");
    if (e.color == color) same.push_back(e);
  }
  std::sort(same.begin(), same.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });
  std::vector<int> members;
  members.reserve(same.size());
  for (const auto& e : same) members.push_back(e.place);

  // Deterministic id every member computes identically: derived from the
  // parent team, the color, and the parent's op count entering the split.
  const std::uint64_t id = (state_->id * 1315423911ULL) ^
                           (static_cast<std::uint64_t>(color) << 32) ^ my_seq ^
                           0x51ed2701ULL;
  return Team(team_detail::get_or_create(id, state_->mode, members));
}

}  // namespace apgas
