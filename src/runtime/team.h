// Teams: X10's x10.util.Team collectives (paper §3.3).
//
// Three interchangeable implementations mirror the paper's split between
// hardware collectives and the emulation layer:
//   * kEmulated — point-to-point algorithms over active messages (binomial
//     broadcast/reduce, dissemination barrier, direct alltoall). This is the
//     X10RT emulation layer that "kicks in" when the network has no native
//     support.
//   * kNative   — shared-memory implementations (central barrier, shared
//     staging buffers) standing in for PAMI/Torrent hardware collectives.
//   * kHierarchical — topology-aware leader trees over the PERCS machine
//     model (docs/collectives.md): places sharing an octant form a leaf
//     group that exchanges payloads single-copy through shared memory
//     (XHC-style); octant leaders relay fragments up/down a
//     drawer/supernode leader tree with pipelined chunking, so a leader
//     forwards fragment k while receiving k+1. Applies to
//     barrier/bcast/reduce/allreduce; the remaining ops fall back to the
//     emulated algorithms.
//
// All operations are collective and blocking: every member place must call
// them in the same program order (SPMD discipline); waiting members keep
// pumping their scheduler, so unrelated activities continue to run.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "runtime/api.h"
#include "runtime/histogram.h"

namespace apgas {

enum class TeamMode { kEmulated, kNative, kHierarchical };

enum class ReduceOp { kSum, kMin, kMax };

namespace team_detail {

/// Collective op ids used for trace kTeamBegin/kTeamEnd events (arg a).
enum TeamOp : std::uint64_t {
  kOpBarrier = 0,
  kOpBcast = 1,
  kOpReduce = 2,
  kOpAllreduce = 3,
  kOpScatter = 4,
  kOpGather = 5,
  kOpAlltoall = 6,
  kOpAllgather = 7,
  kOpSplit = 8,
};

/// Stable lowercase op name ("barrier", "bcast", ...; used for the
/// team.op_ns.<op> latency histograms and docs).
const char* op_name(TeamOp op);

/// Records one team.op_ns.<op> latency sample (hist:: layer; resolves the
/// histogram through the current Runtime's MetricsRegistry).
void record_op_ns(TeamOp op, std::uint64_t ns);

/// Brackets one collective call in the flight recorder (arg b = team id) and
/// records its wall-clock into the team.op_ns.<op> histogram when histograms
/// are armed. Nested pairs (allreduce = reduce + bcast) nest properly:
/// waiting members pump the scheduler, so any interleaved activity begins
/// and ends inside — and allreduce contributes reduce + bcast + allreduce
/// samples, one per scope.
struct PhaseScope {
  std::uint64_t op;
  std::uint64_t team;
  std::uint64_t t0 = 0;
  PhaseScope(std::uint64_t op_id, std::uint64_t team_id)
      : op(op_id), team(team_id) {
    trace::emit(trace::Ev::kTeamBegin, op, team);
    if (hist::enabled()) t0 = hist::now_ns();
  }
  ~PhaseScope() {
    trace::emit(trace::Ev::kTeamEnd, op, team);
    if (hist::enabled() && t0 != 0) {
      record_op_ns(static_cast<TeamOp>(op), hist::now_ns() - t0);
    }
  }
};

// --- hierarchical plan (docs/collectives.md) --------------------------------

/// Mail-tag bases for hierarchical fragments; disjoint from the flat-path
/// tags (0..5 and 100+round) and from each other by 2^20, far beyond any
/// realistic fragment count.
inline constexpr int kTagBcastChunk = 1 << 20;
inline constexpr int kTagReduceChunk = 2 << 20;
inline constexpr int kTagBarrierUp = 3 << 20;
inline constexpr int kTagBarrierDown = 4 << 20;

/// Shared-memory state of one leaf group (an "octant": places that would
/// share a host on the modelled machine). All counters are *cumulative*
/// across ops — members track their own expected bases (Member::g_*), so
/// nothing ever resets and back-to-back reuse cannot race a reset.
struct GroupShared {
  /// Leader's payload buffer for the current bcast; members copy from it
  /// directly — the XHC single-copy idea. Written (release) before the
  /// first pub of an op; the leader keeps the buffer alive until every
  /// member bumped `done`.
  std::atomic<const std::byte*> src{nullptr};
  std::atomic<std::uint64_t> pub{0};     // fragments published / releases
  std::atomic<std::uint64_t> arrive{0};  // member barrier arrivals
  std::atomic<std::uint64_t> done{0};    // member copy-out completions
};

/// The per-root spanning tree over leaf-group leaders. Rank-indexed arrays;
/// non-leader ranks keep parent = -1 and empty children.
struct LeaderTree {
  std::vector<int> parent;                 // leader rank -> parent leader
  std::vector<std::vector<int>> children;  // leader rank -> child leaders
  std::vector<char> is_leader;             // rank -> leads its leaf group
  std::vector<int> leaf_leader;            // leaf group -> leader rank
  int depth = 1;                           // root-to-deepest-leader edges
};

/// The plan object built once per team (and rebuilt by split-derived teams
/// from the surviving members' coordinates) and reused across ops. Leaf
/// grouping comes from the PERCS topology model when configured
/// (Config::team_places_per_octant > 0), else from places_per_node; leader
/// trees are cached per op root.
struct Hierarchy {
  int levels = 1;                    // grouping levels above the members
  int fanout = 2;                    // leader-group tree fan-out
  std::size_t chunk_bytes = 64u << 10;
  std::vector<int> leaf_of;                    // rank -> leaf group index
  std::vector<std::vector<int>> leaf_members;  // group -> ranks, ascending
  std::vector<std::vector<int>> domain;        // rank -> domain id per level
  std::vector<std::unique_ptr<GroupShared>> groups;

  /// Leader tree rooted at `root`'s chain (root leads its own octant,
  /// drawer, and supernode — the promotion that makes any rank a valid
  /// collective root without reshuffling the grouping). Built lazily,
  /// cached forever; the returned reference stays valid for the
  /// hierarchy's lifetime.
  const LeaderTree& tree_for(int root);

  std::mutex mu;  // guards trees
  std::unordered_map<int, std::unique_ptr<LeaderTree>> trees;
};

/// Fragment plan: nchunks fragments of `chunk` bytes (last may be short).
/// `chunk` is always a multiple of the element size so reduce can combine
/// fragment-wise.
struct ChunkPlan {
  std::size_t nchunks = 0;
  std::size_t chunk = 0;
};
inline ChunkPlan plan_chunks(std::size_t bytes, std::size_t chunk_bytes,
                             std::size_t elem_size) {
  ChunkPlan p;
  if (bytes == 0) return p;
  std::size_t chunk = chunk_bytes == 0 ? bytes : chunk_bytes;
  chunk -= chunk % elem_size;         // element-aligned fragments
  if (chunk < elem_size) chunk = elem_size;
  if (chunk > bytes) chunk = bytes;
  p.chunk = chunk;
  p.nchunks = (bytes + chunk - 1) / chunk;
  return p;
}

/// Tallies one forwarded fragment into the team.hier.* gauges and the
/// flight recorder (kTeamChunk).
void note_chunk(std::uint64_t op, std::size_t chunk_idx, int dst_rank,
                std::size_t bytes);

struct Member {
  std::mutex mu;
  // (op sequence, phase tag, source rank) -> payload
  std::map<std::tuple<std::uint64_t, int, int>, std::vector<std::byte>> mail;
  std::uint64_t op_seq = 0;  // collective calls in program order
  // Hierarchical-group counter mirrors: this member's expected base of the
  // cumulative GroupShared counters entering the next op. Every group
  // member executes the same collectives in the same order (SPMD), so all
  // mirrors agree; read/advanced under `mu` at op entry (the same lock that
  // hands out op_seq), giving cross-activity happens-before for free.
  std::uint64_t g_pub = 0;
  std::uint64_t g_arrive = 0;
  std::uint64_t g_done = 0;
};

struct TeamState {
  std::uint64_t id = 0;
  TeamMode mode = TeamMode::kEmulated;
  std::vector<int> members;                // rank -> place
  std::unordered_map<int, int> rank_of;    // place -> rank
  std::vector<std::unique_ptr<Member>> per;

  // Native-path shared structures (the "hardware").
  std::atomic<int> barrier_count{0};
  std::atomic<std::uint64_t> barrier_gen{0};
  std::mutex shared_mu;
  std::vector<std::byte> shared_buf;
  std::vector<const void*> src_ptrs;

  // Hierarchical-path plan, built from the current Config + this team's
  // member places on first use (so split-derived teams rebuild from the
  // surviving members' coordinates, never inherit the parent's grouping).
  std::once_flag hier_once;
  std::unique_ptr<Hierarchy> hier;
  Hierarchy& hierarchy();

  explicit TeamState(std::uint64_t team_id, TeamMode m, std::vector<int> mem);
};

std::shared_ptr<TeamState> get_or_create(std::uint64_t id, TeamMode mode,
                                         const std::vector<int>& members);
void registry_clear();  // called between runtimes

/// Cumulative team.hier.* tallies exported as MetricsRegistry gauges
/// (runtime.cc); levels/leaders describe the most recently built hierarchy.
struct HierStats {
  std::atomic<std::uint64_t> levels{0};
  std::atomic<std::uint64_t> leaders{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> chunk_bytes{0};
};
HierStats& hier_stats();

}  // namespace team_detail

class Team {
 public:
  /// The team of all places.
  static Team world(TeamMode mode = TeamMode::kEmulated);

  [[nodiscard]] int size() const {
    return static_cast<int>(state_->members.size());
  }
  [[nodiscard]] int rank() const {
    auto it = state_->rank_of.find(here());
    assert(it != state_->rank_of.end() && "place is not a team member");
    return it->second;
  }
  [[nodiscard]] int place_of(int r) const {
    return state_->members[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] TeamMode mode() const { return state_->mode; }

  /// The mode collectives actually dispatch on. kNative's shared atomics and
  /// staging buffers cannot cross a process boundary, so under the socket
  /// backend a team declared kNative runs the emulated point-to-point
  /// algorithms instead (mail rides registered frame tasks, which serialize).
  /// The declared mode() is unchanged — the downgrade is a per-call dispatch
  /// decision, mirroring X10RT falling back to the emulation layer when the
  /// network has no native collective support.
  [[nodiscard]] TeamMode effective_mode() const {
    if (state_->mode == TeamMode::kNative && Runtime::active() &&
        Runtime::get().multi_process()) {
      return TeamMode::kEmulated;
    }
    return state_->mode;
  }

  /// Collective barrier.
  void barrier();

  /// Broadcast `n` elements from `root` rank's buffer into every member's.
  template <typename T>
  void bcast(int root, T* buf, std::size_t n);

  /// Element-wise all-reduce in place.
  template <typename T>
  void allreduce(T* buf, std::size_t n, ReduceOp op);

  /// Element-wise reduce to `root` rank. On non-roots `buf` is scratch
  /// (clobbered with partial results), as in MPI_Reduce.
  template <typename T>
  void reduce(int root, T* buf, std::size_t n, ReduceOp op);

  /// Root's `send` holds size*n elements; every rank receives its n-block.
  template <typename T>
  void scatter(int root, const T* send, T* recv, std::size_t n);

  /// Every rank contributes n elements; root's `recv` gets size*n,
  /// rank-ordered. `recv` may be null on non-roots.
  template <typename T>
  void gather(int root, const T* send, T* recv, std::size_t n);

  /// Each rank contributes `n` elements per destination; recv gets size*n.
  template <typename T>
  void alltoall(const T* send, T* recv, std::size_t n);

  /// Each rank contributes `n` elements; recv gets size*n, rank-ordered.
  template <typename T>
  void allgather(const T* send, T* recv, std::size_t n);

  /// Collective split into sub-teams by color; ranks ordered by (key, rank).
  /// The child team inherits the parent's mode and — in hierarchical mode —
  /// rebuilds its own leader hierarchy from the surviving members' places.
  Team split(int color, int key);

  /// The lazily-built hierarchical plan (kHierarchical mode only; builds it
  /// on first call). Exposed for tests and benches that want to inspect the
  /// grouping; the runtime's own entry points are the collectives.
  team_detail::Hierarchy& hierarchy() { return state_->hierarchy(); }

 private:
  explicit Team(std::shared_ptr<team_detail::TeamState> s)
      : state_(std::move(s)) {}

  // --- emulated-path primitives ---------------------------------------------
  void send_bytes(std::uint64_t seq, int tag, int dst_rank,
                  std::vector<std::byte> payload);
  std::vector<std::byte> recv_bytes(std::uint64_t seq, int tag, int src_rank);
  std::uint64_t next_seq();

  // --- hierarchical-path primitives (docs/collectives.md) -------------------
  void hier_barrier();
  template <typename T>
  void hier_bcast(int root, T* buf, std::size_t n);
  template <typename T>
  void hier_reduce(int root, T* buf, std::size_t n, ReduceOp op);
  /// Claims the next op seq and advances this member's group-counter
  /// mirrors by the given deltas, all under the member lock; returns
  /// {seq, pub_base, arrive_base, done_base}.
  std::array<std::uint64_t, 4> hier_claim(std::uint64_t pub_delta,
                                          std::uint64_t arrive_delta,
                                          std::uint64_t done_delta);
  void notify_group(const team_detail::Hierarchy& h, int me);

  template <typename T>
  static void combine(ReduceOp op, T* acc, const T* in, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      switch (op) {
        case ReduceOp::kSum: acc[i] += in[i]; break;
        case ReduceOp::kMin: acc[i] = in[i] < acc[i] ? in[i] : acc[i]; break;
        case ReduceOp::kMax: acc[i] = in[i] > acc[i] ? in[i] : acc[i]; break;
      }
    }
  }

  void native_barrier();
  std::byte* native_stage(std::size_t bytes);  // rank-0 resizes, all get ptr

  std::shared_ptr<team_detail::TeamState> state_;
};

// --- template implementations ------------------------------------------------

template <typename T>
void Team::bcast(int root, T* buf, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpBcast, state_->id);
  const int sz = size();
  if (sz == 1) return;
  const std::size_t bytes = n * sizeof(T);
  const TeamMode m = effective_mode();
  if (m == TeamMode::kNative) {
    native_barrier();
    std::byte* stage = native_stage(bytes);
    if (rank() == root) std::memcpy(stage, buf, bytes);
    native_barrier();
    if (rank() != root) std::memcpy(buf, stage, bytes);
    native_barrier();
    return;
  }
  if (m == TeamMode::kHierarchical) {
    hier_bcast(root, buf, n);
    return;
  }
  // Binomial tree over active messages.
  const std::uint64_t seq = next_seq();
  const int me = rank();
  const int rel = (me - root + sz) % sz;
  int mask = 1;
  while (mask < sz) {
    if (rel & mask) {
      const int src = (rel - mask + root) % sz;
      auto payload = recv_bytes(seq, /*tag=*/0, src);
      assert(payload.size() == bytes);
      std::memcpy(buf, payload.data(), bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < sz) {
      const int dst = (rel + mask + root) % sz;
      std::vector<std::byte> payload(bytes);
      std::memcpy(payload.data(), buf, bytes);
      send_bytes(seq, /*tag=*/0, dst, std::move(payload));
    }
    mask >>= 1;
  }
}

template <typename T>
void Team::reduce(int root, T* buf, std::size_t n, ReduceOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpReduce, state_->id);
  const int sz = size();
  if (sz == 1) return;
  const std::size_t bytes = n * sizeof(T);
  const TeamMode m = effective_mode();
  if (m == TeamMode::kNative) {
    native_barrier();
    std::byte* stage = native_stage(bytes);
    T* acc = reinterpret_cast<T*>(stage);
    if (rank() == root) std::memcpy(acc, buf, bytes);
    native_barrier();
    if (rank() != root) {
      // Hardware-combine stand-in: serialized atomic accumulation.
      std::scoped_lock lock(state_->shared_mu);
      combine(op, acc, buf, n);
    }
    native_barrier();
    if (rank() == root) std::memcpy(buf, acc, bytes);
    native_barrier();
    return;
  }
  if (m == TeamMode::kHierarchical) {
    hier_reduce(root, buf, n, op);
    return;
  }
  // Binomial reduce toward the root over relative ranks.
  const std::uint64_t seq = next_seq();
  const int rel = (rank() - root + sz) % sz;
  int mask = 1;
  while (mask < sz) {
    if ((rel & mask) == 0) {
      const int peer_rel = rel + mask;
      if (peer_rel < sz) {
        auto payload = recv_bytes(seq, /*tag=*/1, (peer_rel + root) % sz);
        combine(op, buf, reinterpret_cast<const T*>(payload.data()), n);
      }
    } else {
      std::vector<std::byte> payload(bytes);
      std::memcpy(payload.data(), buf, bytes);
      send_bytes(seq, /*tag=*/1, (rel - mask + root) % sz,
                 std::move(payload));
      break;
    }
    mask <<= 1;
  }
}

template <typename T>
void Team::allreduce(T* buf, std::size_t n, ReduceOp op) {
  team_detail::PhaseScope phase(team_detail::kOpAllreduce, state_->id);
  const int sz = size();
  if (sz == 1) return;
  reduce(0, buf, n, op);
  bcast(0, buf, n);
}

template <typename T>
void Team::scatter(int root, const T* send, T* recv, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpScatter, state_->id);
  const int sz = size();
  const std::size_t bytes = n * sizeof(T);
  const int me = rank();
  if (sz == 1) {
    std::memcpy(recv, send, bytes);
    return;
  }
  if (effective_mode() == TeamMode::kNative) {
    native_barrier();
    std::byte* stage = native_stage(bytes * static_cast<std::size_t>(sz));
    if (me == root) {
      std::memcpy(stage, send, bytes * static_cast<std::size_t>(sz));
    }
    native_barrier();
    std::memcpy(recv, stage + static_cast<std::size_t>(me) * bytes, bytes);
    native_barrier();
    return;
  }
  const std::uint64_t seq = next_seq();
  if (me == root) {
    for (int r = 0; r < sz; ++r) {
      if (r == me) {
        std::memcpy(recv, send + static_cast<std::size_t>(r) * n, bytes);
        continue;
      }
      std::vector<std::byte> payload(bytes);
      std::memcpy(payload.data(), send + static_cast<std::size_t>(r) * n,
                  bytes);
      send_bytes(seq, /*tag=*/4, r, std::move(payload));
    }
  } else {
    auto payload = recv_bytes(seq, /*tag=*/4, root);
    std::memcpy(recv, payload.data(), bytes);
  }
}

template <typename T>
void Team::gather(int root, const T* send, T* recv, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpGather, state_->id);
  const int sz = size();
  const std::size_t bytes = n * sizeof(T);
  const int me = rank();
  if (sz == 1) {
    std::memcpy(recv, send, bytes);
    return;
  }
  if (effective_mode() == TeamMode::kNative) {
    native_barrier();
    std::byte* stage = native_stage(bytes * static_cast<std::size_t>(sz));
    std::memcpy(stage + static_cast<std::size_t>(me) * bytes, send, bytes);
    native_barrier();
    if (me == root) {
      std::memcpy(recv, stage, bytes * static_cast<std::size_t>(sz));
    }
    native_barrier();
    return;
  }
  const std::uint64_t seq = next_seq();
  if (me == root) {
    std::memcpy(recv + static_cast<std::size_t>(me) * n, send, bytes);
    for (int r = 0; r < sz; ++r) {
      if (r == me) continue;
      auto payload = recv_bytes(seq, /*tag=*/5, r);
      std::memcpy(recv + static_cast<std::size_t>(r) * n, payload.data(),
                  bytes);
    }
  } else {
    std::vector<std::byte> payload(bytes);
    std::memcpy(payload.data(), send, bytes);
    send_bytes(seq, /*tag=*/5, root, std::move(payload));
  }
}

template <typename T>
void Team::alltoall(const T* send, T* recv, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpAlltoall, state_->id);
  const int sz = size();
  const std::size_t bytes = n * sizeof(T);
  const int me = rank();
  if (effective_mode() == TeamMode::kNative) {
    // Publish our send buffer, then gather directly from every peer's —
    // the shared-memory stand-in for a hardware all-to-all.
    native_barrier();
    state_->src_ptrs[static_cast<std::size_t>(me)] = send;
    native_barrier();
    for (int s = 0; s < sz; ++s) {
      const T* src = static_cast<const T*>(state_->src_ptrs[s]);
      std::memcpy(recv + static_cast<std::size_t>(s) * n, src + me * n, bytes);
    }
    native_barrier();
    return;
  }
  const std::uint64_t seq = next_seq();
  std::memcpy(recv + static_cast<std::size_t>(me) * n, send + me * n, bytes);
  for (int d = 1; d < sz; ++d) {
    const int dst = (me + d) % sz;
    std::vector<std::byte> payload(bytes);
    std::memcpy(payload.data(), send + static_cast<std::size_t>(dst) * n,
                bytes);
    send_bytes(seq, /*tag=*/2, dst, std::move(payload));
  }
  for (int d = 1; d < sz; ++d) {
    const int src = (me + sz - d) % sz;
    auto payload = recv_bytes(seq, /*tag=*/2, src);
    std::memcpy(recv + static_cast<std::size_t>(src) * n, payload.data(),
                bytes);
  }
}

template <typename T>
void Team::allgather(const T* send, T* recv, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpAllgather, state_->id);
  const int sz = size();
  const std::size_t bytes = n * sizeof(T);
  const int me = rank();
  if (effective_mode() == TeamMode::kNative) {
    native_barrier();
    std::byte* stage =
        native_stage(bytes * static_cast<std::size_t>(sz));
    std::memcpy(stage + static_cast<std::size_t>(me) * bytes, send, bytes);
    native_barrier();
    std::memcpy(recv, stage, bytes * static_cast<std::size_t>(sz));
    native_barrier();
    return;
  }
  const std::uint64_t seq = next_seq();
  std::memcpy(recv + static_cast<std::size_t>(me) * n, send, bytes);
  std::vector<std::byte> mine(bytes);
  std::memcpy(mine.data(), send, bytes);
  for (int d = 1; d < sz; ++d) {
    send_bytes(seq, /*tag=*/3, (me + d) % sz, std::vector<std::byte>(mine));
  }
  for (int d = 1; d < sz; ++d) {
    const int src = (me + sz - d) % sz;
    auto payload = recv_bytes(seq, /*tag=*/3, src);
    std::memcpy(recv + static_cast<std::size_t>(src) * n, payload.data(),
                bytes);
  }
}

// --- hierarchical-path implementations (docs/collectives.md) ----------------

/// Pipelined hierarchical broadcast: the payload descends the per-root
/// leader tree fragment by fragment (a leader forwards fragment k to its
/// child leaders while fragment k+1 is still in flight to it), and inside
/// each leaf group members copy published fragments straight out of their
/// leader's buffer — one copy per member, no intermediate staging.
template <typename T>
void Team::hier_bcast(int root, T* buf, std::size_t n) {
  auto& h = state_->hierarchy();
  const auto& tree = h.tree_for(root);
  const int me = rank();
  const std::size_t bytes = n * sizeof(T);
  auto* data = reinterpret_cast<std::byte*>(buf);
  const auto plan = team_detail::plan_chunks(bytes, h.chunk_bytes, sizeof(T));
  const int gi = h.leaf_of[static_cast<std::size_t>(me)];
  auto& g = *h.groups[static_cast<std::size_t>(gi)];
  const std::size_t gsize = h.leaf_members[static_cast<std::size_t>(gi)].size();
  const auto [seq, pub_base, arrive_base, done_base] =
      hier_claim(/*pub=*/plan.nchunks, /*arrive=*/0, /*done=*/gsize - 1);
  (void)arrive_base;
  if (tree.is_leader[static_cast<std::size_t>(me)]) {
    if (gsize > 1 && plan.nchunks > 0) {
      // Roots rotate, so this op's leader may differ from the previous
      // bcast's — and that leader only waits for its *own* op's copy-outs.
      // Before overwriting the single src slot, wait until every member
      // finished copying from all prior bcasts (done reached this op's
      // base), or a straggler could latch the new pointer mid-copy.
      Runtime::get().sched(here()).run_until([&g, base = done_base] {
        return g.done.load(std::memory_order_acquire) >= base;
      });
      g.src.store(data, std::memory_order_release);
    }
    for (std::size_t k = 0; k < plan.nchunks; ++k) {
      const std::size_t off = k * plan.chunk;
      const std::size_t len = std::min(plan.chunk, bytes - off);
      if (me != root) {
        auto payload = recv_bytes(seq,
                                  team_detail::kTagBcastChunk +
                                      static_cast<int>(k),
                                  tree.parent[static_cast<std::size_t>(me)]);
        assert(payload.size() == len);
        std::memcpy(data + off, payload.data(), len);
      }
      for (int c : tree.children[static_cast<std::size_t>(me)]) {
        std::vector<std::byte> payload(len);
        std::memcpy(payload.data(), data + off, len);
        send_bytes(seq, team_detail::kTagBcastChunk + static_cast<int>(k), c,
                   std::move(payload));
        team_detail::note_chunk(team_detail::kOpBcast, k, c, len);
      }
      if (gsize > 1) {
        g.pub.fetch_add(1, std::memory_order_release);
        notify_group(h, me);
      }
    }
    if (gsize > 1) {
      const std::uint64_t want = done_base + (gsize - 1);
      Runtime::get().sched(here()).run_until([&g, want] {
        return g.done.load(std::memory_order_acquire) >= want;
      });
    }
  } else {
    // Plain member: copy fragments out of the leader's buffer as they
    // publish (the predicate has side effects on purpose — recv_bytes sets
    // the precedent), then hand the buffer back with one `done` bump.
    std::size_t k = 0;
    const std::byte* src = nullptr;
    Runtime::get().sched(here()).run_until([&] {
      const std::uint64_t avail = g.pub.load(std::memory_order_acquire);
      while (k < plan.nchunks && avail >= pub_base + k + 1) {
        if (src == nullptr) src = g.src.load(std::memory_order_relaxed);
        const std::size_t off = k * plan.chunk;
        const std::size_t len = std::min(plan.chunk, bytes - off);
        std::memcpy(data + off, src + off, len);
        ++k;
      }
      return k == plan.nchunks;
    });
    g.done.fetch_add(1, std::memory_order_release);
    const int leader = tree.leaf_leader[static_cast<std::size_t>(gi)];
    Runtime::get().transport().notify(place_of(leader));
  }
}

/// Hierarchical reduce: leaf members stream fragments to their leaf leader,
/// which combines them (fixed ascending order, then child leaders) and
/// forwards the per-level partial up the tree, fragment-pipelined. On
/// non-roots `buf` is scratch, as in the emulated path.
template <typename T>
void Team::hier_reduce(int root, T* buf, std::size_t n, ReduceOp op) {
  auto& h = state_->hierarchy();
  const auto& tree = h.tree_for(root);
  const int me = rank();
  const std::size_t bytes = n * sizeof(T);
  const auto plan = team_detail::plan_chunks(bytes, h.chunk_bytes, sizeof(T));
  const int gi = h.leaf_of[static_cast<std::size_t>(me)];
  const std::uint64_t seq = next_seq();
  auto chunk_of = [&](std::size_t k, std::size_t& off, std::size_t& len) {
    off = k * plan.chunk;
    len = std::min(plan.chunk, bytes - off);
  };
  if (tree.is_leader[static_cast<std::size_t>(me)]) {
    const auto& mates = h.leaf_members[static_cast<std::size_t>(gi)];
    for (std::size_t k = 0; k < plan.nchunks; ++k) {
      std::size_t off, len;
      chunk_of(k, off, len);
      T* acc = buf + off / sizeof(T);
      const std::size_t elems = len / sizeof(T);
      for (int m : mates) {
        if (m == me) continue;
        auto payload = recv_bytes(
            seq, team_detail::kTagReduceChunk + static_cast<int>(k), m);
        assert(payload.size() == len);
        combine(op, acc, reinterpret_cast<const T*>(payload.data()), elems);
      }
      for (int c : tree.children[static_cast<std::size_t>(me)]) {
        auto payload = recv_bytes(
            seq, team_detail::kTagReduceChunk + static_cast<int>(k), c);
        assert(payload.size() == len);
        combine(op, acc, reinterpret_cast<const T*>(payload.data()), elems);
      }
      if (me != root) {
        std::vector<std::byte> payload(len);
        std::memcpy(payload.data(), reinterpret_cast<std::byte*>(buf) + off,
                    len);
        const int parent = tree.parent[static_cast<std::size_t>(me)];
        send_bytes(seq, team_detail::kTagReduceChunk + static_cast<int>(k),
                   parent, std::move(payload));
        team_detail::note_chunk(team_detail::kOpReduce, k, parent, len);
      }
    }
  } else {
    const int leader = tree.leaf_leader[static_cast<std::size_t>(gi)];
    for (std::size_t k = 0; k < plan.nchunks; ++k) {
      std::size_t off, len;
      chunk_of(k, off, len);
      std::vector<std::byte> payload(len);
      std::memcpy(payload.data(), reinterpret_cast<std::byte*>(buf) + off,
                  len);
      send_bytes(seq, team_detail::kTagReduceChunk + static_cast<int>(k),
                 leader, std::move(payload));
      team_detail::note_chunk(team_detail::kOpReduce, k, leader, len);
    }
  }
}

}  // namespace apgas
