// Teams: X10's x10.util.Team collectives (paper §3.3).
//
// Two interchangeable implementations mirror the paper's split between
// hardware collectives and the emulation layer:
//   * kEmulated — point-to-point algorithms over active messages (binomial
//     broadcast/reduce, dissemination barrier, direct alltoall). This is the
//     X10RT emulation layer that "kicks in" when the network has no native
//     support.
//   * kNative   — shared-memory implementations (central barrier, shared
//     staging buffers) standing in for PAMI/Torrent hardware collectives.
//
// All operations are collective and blocking: every member place must call
// them in the same program order (SPMD discipline); waiting members keep
// pumping their scheduler, so unrelated activities continue to run.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "runtime/api.h"

namespace apgas {

enum class TeamMode { kEmulated, kNative };

enum class ReduceOp { kSum, kMin, kMax };

namespace team_detail {

/// Collective op ids used for trace kTeamBegin/kTeamEnd events (arg a).
enum TeamOp : std::uint64_t {
  kOpBarrier = 0,
  kOpBcast = 1,
  kOpReduce = 2,
  kOpAllreduce = 3,
  kOpScatter = 4,
  kOpGather = 5,
  kOpAlltoall = 6,
  kOpAllgather = 7,
  kOpSplit = 8,
};

/// Brackets one collective call in the flight recorder (arg b = team id).
/// Nested pairs (allreduce = reduce + bcast) nest properly: waiting members
/// pump the scheduler, so any interleaved activity begins and ends inside.
struct PhaseScope {
  std::uint64_t op;
  std::uint64_t team;
  PhaseScope(std::uint64_t op_id, std::uint64_t team_id)
      : op(op_id), team(team_id) {
    trace::emit(trace::Ev::kTeamBegin, op, team);
  }
  ~PhaseScope() { trace::emit(trace::Ev::kTeamEnd, op, team); }
};

struct Member {
  std::mutex mu;
  // (op sequence, phase tag, source rank) -> payload
  std::map<std::tuple<std::uint64_t, int, int>, std::vector<std::byte>> mail;
  std::uint64_t op_seq = 0;  // collective calls in program order
};

struct TeamState {
  std::uint64_t id = 0;
  TeamMode mode = TeamMode::kEmulated;
  std::vector<int> members;                // rank -> place
  std::unordered_map<int, int> rank_of;    // place -> rank
  std::vector<std::unique_ptr<Member>> per;

  // Native-path shared structures (the "hardware").
  std::atomic<int> barrier_count{0};
  std::atomic<std::uint64_t> barrier_gen{0};
  std::mutex shared_mu;
  std::vector<std::byte> shared_buf;
  std::vector<const void*> src_ptrs;

  explicit TeamState(std::uint64_t team_id, TeamMode m, std::vector<int> mem);
};

std::shared_ptr<TeamState> get_or_create(std::uint64_t id, TeamMode mode,
                                         const std::vector<int>& members);
void registry_clear();  // called between runtimes

}  // namespace team_detail

class Team {
 public:
  /// The team of all places.
  static Team world(TeamMode mode = TeamMode::kEmulated);

  [[nodiscard]] int size() const {
    return static_cast<int>(state_->members.size());
  }
  [[nodiscard]] int rank() const {
    auto it = state_->rank_of.find(here());
    assert(it != state_->rank_of.end() && "place is not a team member");
    return it->second;
  }
  [[nodiscard]] int place_of(int r) const {
    return state_->members[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] TeamMode mode() const { return state_->mode; }

  /// Collective barrier.
  void barrier();

  /// Broadcast `n` elements from `root` rank's buffer into every member's.
  template <typename T>
  void bcast(int root, T* buf, std::size_t n);

  /// Element-wise all-reduce in place.
  template <typename T>
  void allreduce(T* buf, std::size_t n, ReduceOp op);

  /// Element-wise reduce to `root` rank. On non-roots `buf` is scratch
  /// (clobbered with partial results), as in MPI_Reduce.
  template <typename T>
  void reduce(int root, T* buf, std::size_t n, ReduceOp op);

  /// Root's `send` holds size*n elements; every rank receives its n-block.
  template <typename T>
  void scatter(int root, const T* send, T* recv, std::size_t n);

  /// Every rank contributes n elements; root's `recv` gets size*n,
  /// rank-ordered. `recv` may be null on non-roots.
  template <typename T>
  void gather(int root, const T* send, T* recv, std::size_t n);

  /// Each rank contributes `n` elements per destination; recv gets size*n.
  template <typename T>
  void alltoall(const T* send, T* recv, std::size_t n);

  /// Each rank contributes `n` elements; recv gets size*n, rank-ordered.
  template <typename T>
  void allgather(const T* send, T* recv, std::size_t n);

  /// Collective split into sub-teams by color; ranks ordered by (key, rank).
  Team split(int color, int key);

 private:
  explicit Team(std::shared_ptr<team_detail::TeamState> s)
      : state_(std::move(s)) {}

  // --- emulated-path primitives ---------------------------------------------
  void send_bytes(std::uint64_t seq, int tag, int dst_rank,
                  std::vector<std::byte> payload);
  std::vector<std::byte> recv_bytes(std::uint64_t seq, int tag, int src_rank);
  std::uint64_t next_seq();

  template <typename T>
  static void combine(ReduceOp op, T* acc, const T* in, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      switch (op) {
        case ReduceOp::kSum: acc[i] += in[i]; break;
        case ReduceOp::kMin: acc[i] = in[i] < acc[i] ? in[i] : acc[i]; break;
        case ReduceOp::kMax: acc[i] = in[i] > acc[i] ? in[i] : acc[i]; break;
      }
    }
  }

  void native_barrier();
  std::byte* native_stage(std::size_t bytes);  // rank-0 resizes, all get ptr

  std::shared_ptr<team_detail::TeamState> state_;
};

// --- template implementations ------------------------------------------------

template <typename T>
void Team::bcast(int root, T* buf, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpBcast, state_->id);
  const int sz = size();
  if (sz == 1) return;
  const std::size_t bytes = n * sizeof(T);
  if (state_->mode == TeamMode::kNative) {
    native_barrier();
    std::byte* stage = native_stage(bytes);
    if (rank() == root) std::memcpy(stage, buf, bytes);
    native_barrier();
    if (rank() != root) std::memcpy(buf, stage, bytes);
    native_barrier();
    return;
  }
  // Binomial tree over active messages.
  const std::uint64_t seq = next_seq();
  const int me = rank();
  const int rel = (me - root + sz) % sz;
  int mask = 1;
  while (mask < sz) {
    if (rel & mask) {
      const int src = (rel - mask + root) % sz;
      auto payload = recv_bytes(seq, /*tag=*/0, src);
      assert(payload.size() == bytes);
      std::memcpy(buf, payload.data(), bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < sz) {
      const int dst = (rel + mask + root) % sz;
      std::vector<std::byte> payload(bytes);
      std::memcpy(payload.data(), buf, bytes);
      send_bytes(seq, /*tag=*/0, dst, std::move(payload));
    }
    mask >>= 1;
  }
}

template <typename T>
void Team::reduce(int root, T* buf, std::size_t n, ReduceOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpReduce, state_->id);
  const int sz = size();
  if (sz == 1) return;
  const std::size_t bytes = n * sizeof(T);
  if (state_->mode == TeamMode::kNative) {
    native_barrier();
    std::byte* stage = native_stage(bytes);
    T* acc = reinterpret_cast<T*>(stage);
    if (rank() == root) std::memcpy(acc, buf, bytes);
    native_barrier();
    if (rank() != root) {
      // Hardware-combine stand-in: serialized atomic accumulation.
      std::scoped_lock lock(state_->shared_mu);
      combine(op, acc, buf, n);
    }
    native_barrier();
    if (rank() == root) std::memcpy(buf, acc, bytes);
    native_barrier();
    return;
  }
  // Binomial reduce toward the root over relative ranks.
  const std::uint64_t seq = next_seq();
  const int rel = (rank() - root + sz) % sz;
  int mask = 1;
  while (mask < sz) {
    if ((rel & mask) == 0) {
      const int peer_rel = rel + mask;
      if (peer_rel < sz) {
        auto payload = recv_bytes(seq, /*tag=*/1, (peer_rel + root) % sz);
        combine(op, buf, reinterpret_cast<const T*>(payload.data()), n);
      }
    } else {
      std::vector<std::byte> payload(bytes);
      std::memcpy(payload.data(), buf, bytes);
      send_bytes(seq, /*tag=*/1, (rel - mask + root) % sz,
                 std::move(payload));
      break;
    }
    mask <<= 1;
  }
}

template <typename T>
void Team::allreduce(T* buf, std::size_t n, ReduceOp op) {
  team_detail::PhaseScope phase(team_detail::kOpAllreduce, state_->id);
  const int sz = size();
  if (sz == 1) return;
  reduce(0, buf, n, op);
  bcast(0, buf, n);
}

template <typename T>
void Team::scatter(int root, const T* send, T* recv, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpScatter, state_->id);
  const int sz = size();
  const std::size_t bytes = n * sizeof(T);
  const int me = rank();
  if (sz == 1) {
    std::memcpy(recv, send, bytes);
    return;
  }
  if (state_->mode == TeamMode::kNative) {
    native_barrier();
    std::byte* stage = native_stage(bytes * static_cast<std::size_t>(sz));
    if (me == root) {
      std::memcpy(stage, send, bytes * static_cast<std::size_t>(sz));
    }
    native_barrier();
    std::memcpy(recv, stage + static_cast<std::size_t>(me) * bytes, bytes);
    native_barrier();
    return;
  }
  const std::uint64_t seq = next_seq();
  if (me == root) {
    for (int r = 0; r < sz; ++r) {
      if (r == me) {
        std::memcpy(recv, send + static_cast<std::size_t>(r) * n, bytes);
        continue;
      }
      std::vector<std::byte> payload(bytes);
      std::memcpy(payload.data(), send + static_cast<std::size_t>(r) * n,
                  bytes);
      send_bytes(seq, /*tag=*/4, r, std::move(payload));
    }
  } else {
    auto payload = recv_bytes(seq, /*tag=*/4, root);
    std::memcpy(recv, payload.data(), bytes);
  }
}

template <typename T>
void Team::gather(int root, const T* send, T* recv, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpGather, state_->id);
  const int sz = size();
  const std::size_t bytes = n * sizeof(T);
  const int me = rank();
  if (sz == 1) {
    std::memcpy(recv, send, bytes);
    return;
  }
  if (state_->mode == TeamMode::kNative) {
    native_barrier();
    std::byte* stage = native_stage(bytes * static_cast<std::size_t>(sz));
    std::memcpy(stage + static_cast<std::size_t>(me) * bytes, send, bytes);
    native_barrier();
    if (me == root) {
      std::memcpy(recv, stage, bytes * static_cast<std::size_t>(sz));
    }
    native_barrier();
    return;
  }
  const std::uint64_t seq = next_seq();
  if (me == root) {
    std::memcpy(recv + static_cast<std::size_t>(me) * n, send, bytes);
    for (int r = 0; r < sz; ++r) {
      if (r == me) continue;
      auto payload = recv_bytes(seq, /*tag=*/5, r);
      std::memcpy(recv + static_cast<std::size_t>(r) * n, payload.data(),
                  bytes);
    }
  } else {
    std::vector<std::byte> payload(bytes);
    std::memcpy(payload.data(), send, bytes);
    send_bytes(seq, /*tag=*/5, root, std::move(payload));
  }
}

template <typename T>
void Team::alltoall(const T* send, T* recv, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpAlltoall, state_->id);
  const int sz = size();
  const std::size_t bytes = n * sizeof(T);
  const int me = rank();
  if (state_->mode == TeamMode::kNative) {
    // Publish our send buffer, then gather directly from every peer's —
    // the shared-memory stand-in for a hardware all-to-all.
    native_barrier();
    state_->src_ptrs[static_cast<std::size_t>(me)] = send;
    native_barrier();
    for (int s = 0; s < sz; ++s) {
      const T* src = static_cast<const T*>(state_->src_ptrs[s]);
      std::memcpy(recv + static_cast<std::size_t>(s) * n, src + me * n, bytes);
    }
    native_barrier();
    return;
  }
  const std::uint64_t seq = next_seq();
  std::memcpy(recv + static_cast<std::size_t>(me) * n, send + me * n, bytes);
  for (int d = 1; d < sz; ++d) {
    const int dst = (me + d) % sz;
    std::vector<std::byte> payload(bytes);
    std::memcpy(payload.data(), send + static_cast<std::size_t>(dst) * n,
                bytes);
    send_bytes(seq, /*tag=*/2, dst, std::move(payload));
  }
  for (int d = 1; d < sz; ++d) {
    const int src = (me + sz - d) % sz;
    auto payload = recv_bytes(seq, /*tag=*/2, src);
    std::memcpy(recv + static_cast<std::size_t>(src) * n, payload.data(),
                bytes);
  }
}

template <typename T>
void Team::allgather(const T* send, T* recv, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  team_detail::PhaseScope phase(team_detail::kOpAllgather, state_->id);
  const int sz = size();
  const std::size_t bytes = n * sizeof(T);
  const int me = rank();
  if (state_->mode == TeamMode::kNative) {
    native_barrier();
    std::byte* stage =
        native_stage(bytes * static_cast<std::size_t>(sz));
    std::memcpy(stage + static_cast<std::size_t>(me) * bytes, send, bytes);
    native_barrier();
    std::memcpy(recv, stage, bytes * static_cast<std::size_t>(sz));
    native_barrier();
    return;
  }
  const std::uint64_t seq = next_seq();
  std::memcpy(recv + static_cast<std::size_t>(me) * n, send, bytes);
  std::vector<std::byte> mine(bytes);
  std::memcpy(mine.data(), send, bytes);
  for (int d = 1; d < sz; ++d) {
    send_bytes(seq, /*tag=*/3, (me + d) % sz, std::vector<std::byte>(mine));
  }
  for (int d = 1; d < sz; ++d) {
    const int src = (me + sz - d) % sz;
    auto payload = recv_bytes(seq, /*tag=*/3, src);
    std::memcpy(recv + static_cast<std::size_t>(src) * n, payload.data(),
                bytes);
  }
}

}  // namespace apgas
