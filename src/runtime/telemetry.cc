#include "runtime/telemetry.h"

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstring>

#include "runtime/clocksync.h"
#include "runtime/metrics.h"

namespace apgas {
namespace telemetry {

namespace {

// Everything apgas_top's columns need: task/steal/park rates from the
// per-place scheduler counters, ship counts, retransmit and coalescing
// traffic, GLB steals, and the task latency histograms.
const char* const kDefaultPrefixes[] = {
    "sched.",          "runtime.",  "finish.opened", "finish.closed",
    "transport.retx.", "transport.coalesce.", "glb.", "hist.task.",
    "hist.activity.",
};

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Histogram exports are point-in-time statistics; everything else in a
// snapshot is a monotone counter or gauge worth differencing.
bool is_absolute_key(std::string_view key) {
  if (key.substr(0, 5) != "hist.") return false;
  return key.ends_with(".p50") || key.ends_with(".p90") ||
         key.ends_with(".p99") || key.ends_with(".max");
}

}  // namespace

std::vector<std::string> parse_key_prefixes(const std::string& csv) {
  std::vector<std::string> out;
  if (csv.empty()) {
    for (const char* p : kDefaultPrefixes) out.emplace_back(p);
    return out;
  }
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool key_selected(std::string_view key,
                  const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (key.substr(0, p.size()) == p) return true;
  }
  return false;
}

std::string make_frame(int place, std::uint64_t seq, std::uint64_t t_ms,
                       const std::map<std::string, std::uint64_t>& snap,
                       const std::vector<std::string>& prefixes,
                       std::map<std::string, std::uint64_t>& prev) {
  std::string out;
  out.reserve(256);
  char buf[64];
  std::snprintf(buf, sizeof buf,
                "{\"place\":%d,\"seq\":%" PRIu64 ",\"t_ms\":%" PRIu64
                ",\"d\":{",
                place, seq, t_ms);
  out += buf;
  bool first = true;
  for (const auto& [key, val] : snap) {
    if (is_absolute_key(key) || !key_selected(key, prefixes)) continue;
    std::uint64_t& last = prev[key];
    // Gauges can legitimately move down (e.g. retx.unacked); emit signed.
    const auto delta =
        static_cast<std::int64_t>(val) - static_cast<std::int64_t>(last);
    last = val;
    if (delta == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    std::snprintf(buf, sizeof buf, "\":%" PRId64, delta);
    out += buf;
  }
  out += "},\"a\":{";
  first = true;
  for (const auto& [key, val] : snap) {
    if (!is_absolute_key(key) || !key_selected(key, prefixes)) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    std::snprintf(buf, sizeof buf, "\":%" PRIu64, val);
    out += buf;
  }
  out += "}}";
  return out;
}

std::string wrap_watchdog(int place, std::uint64_t t_ms,
                          std::string_view report) {
  std::string out;
  out.reserve(report.size() + 64);
  char buf[64];
  std::snprintf(buf, sizeof buf, "{\"place\":%d,\"t_ms\":%" PRIu64
                                 ",\"watchdog\":\"",
                place, t_ms);
  out += buf;
  append_json_escaped(out, report);
  out += "\"}";
  return out;
}

JsonlWriter::JsonlWriter(const std::string& path) {
  f_ = std::fopen(path.c_str(), "w");
  if (f_ == nullptr) {
    std::fprintf(stderr, "apgas: cannot open telemetry log %s: %s\n",
                 path.c_str(), std::strerror(errno));
  }
}

JsonlWriter::~JsonlWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void JsonlWriter::append(std::string_view line) {
  if (f_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fputc('\n', f_);
  std::fflush(f_);
}

}  // namespace telemetry

Telemetry::Telemetry(MetricsRegistry& reg, int place, int interval_ms,
                     const std::string& keys_csv, Sink sink)
    : reg_(reg),
      place_(place),
      interval_ms_(interval_ms < 1 ? 1 : interval_ms),
      prefixes_(telemetry::parse_key_prefixes(keys_csv)),
      sink_(std::move(sink)) {}

Telemetry::~Telemetry() { stop(); }

void Telemetry::start() {
  if (running_) return;
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { loop(); });
}

void Telemetry::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
}

void Telemetry::emit_frame() {
  const std::uint64_t t_ms = clocksync::now_ns() / 1000000u;
  sink_(telemetry::make_frame(place_, seq_++, t_ms, reg_.snapshot(),
                              prefixes_, prev_));
}

void Telemetry::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                     [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    emit_frame();
    lock.lock();
  }
  lock.unlock();
  // Final frame: the deltas accumulated since the last tick, so short jobs
  // still produce one line per emitter.
  emit_frame();
}

}  // namespace apgas
