// Periodic live telemetry: a sampler thread turns MetricsRegistry snapshots
// into newline-delimited JSON frames every APGAS_TELEMETRY_MS.
//
// Frame format (one JSON object per line, documented in
// docs/observability.md):
//
//   {"place":1,"seq":4,"t_ms":81234,
//    "d":{"sched.p1.activities_executed":503,...},
//    "a":{"hist.task.exec_ns.p99":41216,...}}
//
//   place  emitting place (-1 = whole in-process job)
//   seq    frame counter, per emitter, from 0
//   t_ms   clocksync::now_ns()/1e6 — absolute steady-clock milliseconds, so
//          frames from different places line up to within the clock offset
//   d      counter DELTAS since the previous frame; zero deltas are omitted,
//          so an idle place costs a few bytes per frame
//   a      ABSOLUTE values: histogram percentile/max keys, which are not
//          meaningfully differentiable
//
// Key selection is by comma-separated name-prefix list (APGAS_TELEMETRY_KEYS);
// the default set covers what apgas_top renders. The pure helpers
// (parse_key_prefixes / key_selected / make_frame / wrap_watchdog) have no
// thread or socket dependencies and are unit-tested directly.
//
// Sinks: in socket mode each child streams frames over its ctrl socket and
// the supervisor appends them to one JSONL file; an in-process run appends
// directly via JsonlWriter. Interval 0 (the default) constructs nothing —
// the disabled path is bit-for-bit inert.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace apgas {

class MetricsRegistry;

namespace telemetry {

/// Splits a comma-separated prefix list; empty input yields the default
/// prefix set (the keys apgas_top renders).
[[nodiscard]] std::vector<std::string> parse_key_prefixes(
    const std::string& csv);

/// True when `key` starts with any of `prefixes`.
[[nodiscard]] bool key_selected(std::string_view key,
                                const std::vector<std::string>& prefixes);

/// Builds one frame from `snap`, emitting selected counters as deltas
/// against `prev` (updated in place; zero deltas omitted) and selected
/// hist.* percentile/max keys as absolutes. Returns the JSON line without
/// trailing newline.
[[nodiscard]] std::string make_frame(
    int place, std::uint64_t seq, std::uint64_t t_ms,
    const std::map<std::string, std::uint64_t>& snap,
    const std::vector<std::string>& prefixes,
    std::map<std::string, std::uint64_t>& prev);

/// Wraps a watchdog report as a telemetry line:
/// {"place":N,"t_ms":T,"watchdog":"<escaped report>"}.
[[nodiscard]] std::string wrap_watchdog(int place, std::uint64_t t_ms,
                                        std::string_view report);

/// Append-only JSONL file shared by the telemetry sampler and the watchdog
/// sink (two threads); each append writes line + '\n' and flushes so
/// apgas_top can tail the file live.
class JsonlWriter {
 public:
  /// Opens `path` for writing (truncates). Failure is logged and leaves the
  /// writer inert.
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter();
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  void append(std::string_view line);
  [[nodiscard]] bool ok() const { return f_ != nullptr; }

 private:
  std::FILE* f_ = nullptr;
  std::mutex mu_;
};

}  // namespace telemetry

/// The sampler thread. Construct + start() once the registry is live; stop()
/// joins after emitting one final frame, so even jobs shorter than the
/// interval produce at least one line per emitter.
class Telemetry {
 public:
  using Sink = std::function<void(const std::string& json_line)>;

  Telemetry(MetricsRegistry& reg, int place, int interval_ms,
            const std::string& keys_csv, Sink sink);
  ~Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  void start();
  void stop();

 private:
  void loop();
  void emit_frame();

  MetricsRegistry& reg_;
  int place_;
  int interval_ms_;
  std::vector<std::string> prefixes_;
  Sink sink_;
  std::map<std::string, std::uint64_t> prev_;
  std::uint64_t seq_ = 0;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
};

}  // namespace apgas
