#include "runtime/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <unordered_set>

#include "runtime/runtime.h"
#include "x10rt/message.h"

namespace apgas::trace {

namespace {

// Indexed by Ev; order must mirror the enum. Aggregate initialization zero-
// fills any tail entry a new Ev kind would leave behind, and the
// static_assert below turns that nullptr into a compile error — an event
// kind can no longer ship without a name.
constexpr std::array<const char*, kNumEv> kEvNames = {
    "activity.spawn",  // kActivitySpawn
    "activity",        // kActivityBegin
    "activity",        // kActivityEnd
    "send",            // kMsgSend
    "recv",            // kMsgRecv
    "finish.open",     // kFinishOpen
    "finish.close",    // kFinishClose
    "finish.upgrade",  // kFinishUpgrade
    "glb.steal",       // kStealAttempt
    "glb.loot",        // kStealSuccess
    "team",            // kTeamBegin
    "team",            // kTeamEnd
    "team.chunk",      // kTeamChunk
    "sched.steal",     // kSchedSteal
    "sched.overflow",  // kSchedOverflow
    "coalesce.flush",  // kCoalesceFlush
    "retx.timeout",    // kRetxTimeout
    "autotune.adjust",  // kAutotuneAdjust
};

constexpr bool all_events_named() {
  for (const char* n : kEvNames) {
    if (n == nullptr) return false;
  }
  return true;
}
static_assert(all_events_named(),
              "trace::Ev grew without a name — extend kEvNames in trace.cc");

}  // namespace

const char* name(Ev e) {
  const auto i = static_cast<std::size_t>(e);
  return i < kEvNames.size() ? kEvNames[i] : "?";
}

// --- Ring --------------------------------------------------------------------

void Ring::reset(std::size_t capacity) {
  slots_ = std::vector<Slot>(capacity == 0 ? 1 : capacity);
  cursor_.store(0, std::memory_order_relaxed);
}

void Ring::push(const Event& e) {
  const std::uint64_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t cap = slots_.size();
  Slot& s = slots_[i % cap];
  const std::uint64_t lap = i / cap;
  // Seqlock write: claim (odd) -> fields -> publish (even). The stamps are
  // derived from the lap so two writers a full lap apart can collide on the
  // slot without ever producing a stamp that validates a torn read.
  s.gen.store(2 * lap + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.t.store(e.t_ns, std::memory_order_relaxed);
  s.meta.store((static_cast<std::uint64_t>(e.kind) << 32) |
                   static_cast<std::uint32_t>(e.place),
               std::memory_order_relaxed);
  s.a.store(e.a, std::memory_order_relaxed);
  s.b.store(e.b, std::memory_order_relaxed);
  s.gen.store(2 * lap + 2, std::memory_order_release);
}

std::vector<Event> Ring::drain() const {
  const std::uint64_t n = cursor_.load(std::memory_order_relaxed);
  const std::size_t cap = slots_.size();
  const std::size_t stored = n < cap ? static_cast<std::size_t>(n) : cap;
  const std::uint64_t first = n - stored;  // index of the oldest retained
  std::vector<Event> out;
  out.reserve(stored);
  for (std::uint64_t i = first; i < n; ++i) {
    const Slot& s = slots_[i % cap];
    // Accept the slot only if the publish stamp for *this* lap is observed
    // both before and after the field reads — otherwise the slot is still
    // in flight (claim stamp) or was overwritten by a later lap; drop it.
    const std::uint64_t want = 2 * (i / cap) + 2;
    if (s.gen.load(std::memory_order_acquire) != want) continue;
    Event e;
    e.t_ns = s.t.load(std::memory_order_relaxed);
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    e.kind = static_cast<Ev>(meta >> 32);
    e.place = static_cast<std::int32_t>(meta & 0xffffffffu);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.gen.load(std::memory_order_relaxed) != want) continue;
    out.push_back(e);
  }
  return out;
}

// --- global recorder ---------------------------------------------------------

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

struct Recorder {
  std::vector<std::unique_ptr<Ring>> rings;  // [places] + 1 external ring
  std::chrono::steady_clock::time_point epoch;
};

std::atomic<Recorder*> g_recorder{nullptr};

std::uint64_t now_ns(const Recorder& r) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - r.epoch)
          .count());
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
}

}  // namespace

namespace detail {

void record(int place, Ev kind, std::uint64_t a, std::uint64_t b) {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  if (r == nullptr) return;
  if (place == kHere) place = apgas::detail::tl_place;
  const int nrings = static_cast<int>(r->rings.size());
  // Non-worker threads (and out-of-range places) share the external ring.
  const int idx = (place >= 0 && place < nrings - 1) ? place : nrings - 1;
  Event e;
  e.t_ns = now_ns(*r);
  e.kind = kind;
  e.place = place;
  e.a = a;
  e.b = b;
  r->rings[static_cast<std::size_t>(idx)]->push(e);
}

}  // namespace detail

void init(int places, std::size_t capacity_per_place, bool enable) {
  shutdown();
  auto* r = new Recorder;
  // Disabled runs keep the recorder live (active() stays true, exporters
  // emit empty traces) but must not pay the ring memory — "near-zero cost
  // when disabled" covers the 2 MiB/place of slots, not just the emit sites.
  // Ring clamps capacity 0 to one slot, so each ring costs ~32 bytes.
  const std::size_t cap = enable ? capacity_per_place : 0;
  r->rings.reserve(static_cast<std::size_t>(places) + 1);
  for (int p = 0; p < places + 1; ++p) {
    r->rings.push_back(std::make_unique<Ring>(cap));
  }
  r->epoch = std::chrono::steady_clock::now();
  g_recorder.store(r, std::memory_order_release);
  detail::g_enabled.store(enable, std::memory_order_release);
}

void shutdown() {
  detail::g_enabled.store(false, std::memory_order_release);
  Recorder* r = g_recorder.exchange(nullptr, std::memory_order_acq_rel);
  delete r;
}

bool active() { return g_recorder.load(std::memory_order_acquire) != nullptr; }

std::uint64_t total_events() {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  if (r == nullptr) return 0;
  std::uint64_t total = 0;
  for (const auto& ring : r->rings) total += ring->written();
  return total;
}

std::vector<Event> recent(std::size_t k) {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  std::vector<Event> all;
  if (r == nullptr) return all;
  for (const auto& ring : r->rings) {
    for (const Event& e : ring->drain()) all.push_back(e);
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& x, const Event& y) { return x.t_ns < y.t_ns; });
  if (all.size() > k) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(k));
  return all;
}

std::string chrome_json() {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  if (r != nullptr) {
    std::vector<std::vector<Event>> drained;
    drained.reserve(r->rings.size());
    for (const auto& ring : r->rings) drained.push_back(ring->drain());
    // Pass 1: span ids whose spawn was remote. Only those get flow events —
    // a local spawn/begin pair sits on one track already, and emitting a
    // flow "f" with no matching "s" (spawn fell off the ring) would be
    // rejected by the importer anyway.
    std::unordered_set<std::uint64_t> remote_spawns;
    for (const auto& evs : drained) {
      for (const Event& e : evs) {
        if (e.kind == Ev::kActivitySpawn && ((e.b >> 32) & 1u) != 0 &&
            e.a != 0) {
          remote_spawns.insert(e.a);
        }
      }
    }
    char buf[320];
    // Shared "...,{"name":NM,"ph":PH,"ts":...,"pid":0,"tid":place" prefix;
    // ts is microseconds (Chrome's unit) with ns precision as decimals.
    auto header = [&](const char* nm, const char* ph, const Event& e) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"name\":\"";
      json_escape_into(out, nm);
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"%s\",\"ts\":%" PRIu64 ".%03u,\"pid\":0,"
                    "\"tid\":%d",
                    ph, e.t_ns / 1000, static_cast<unsigned>(e.t_ns % 1000),
                    e.place);
      out += buf;
    };
    auto append = [&](const char* fmt, auto... vals) {
      std::snprintf(buf, sizeof(buf), fmt, vals...);
      out += buf;
    };
    for (const auto& evs : drained) {
      for (const Event& e : evs) {
        switch (e.kind) {
          case Ev::kActivitySpawn: {
            const auto dst = static_cast<std::uint64_t>(e.b & 0xffffffffu);
            const auto remote = static_cast<unsigned>((e.b >> 32) & 1u);
            header(name(e.kind), "i", e);
            // Span ids exceed JSON's double-exact integer range; hex strings
            // keep them grep-able against the begin event and the flow id.
            append(",\"args\":{\"span\":\"0x%" PRIx64 "\",\"dst\":%" PRIu64
                   ",\"remote\":%u},\"s\":\"t\"}",
                   e.a, dst, remote);
            if (remote != 0 && e.a != 0) {
              // Flow start: binds to the enclosing slice (the spawning
              // activity) on this track; the arrow lands on the matching
              // activity.begin on the destination place.
              header("activity.spawn", "s", e);
              append(",\"cat\":\"flow\",\"id\":\"0x%" PRIx64 "\"}", e.a);
            }
            break;
          }
          case Ev::kActivityBegin: {
            header(name(e.kind), "B", e);
            append(",\"args\":{\"span\":\"0x%" PRIx64 "\",\"parent\":\"0x%"
                   PRIx64 "\"}}",
                   e.a, e.b);
            if (e.a != 0 && remote_spawns.count(e.a) != 0) {
              header("activity.spawn", "f", e);
              append(",\"cat\":\"flow\",\"bp\":\"e\",\"id\":\"0x%" PRIx64
                     "\"}",
                     e.a);
            }
            break;
          }
          case Ev::kActivityEnd:
          case Ev::kTeamEnd:
            header(name(e.kind), "E", e);  // "E" needs no args; keeps pairs
            out += "}";                    // balanced
            break;
          case Ev::kTeamBegin:
            header(name(e.kind), "B", e);
            append(",\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}", e.a,
                   e.b);
            break;
          case Ev::kFinishOpen:
          case Ev::kFinishClose: {
            // Async ("b"/"e") slice per finish: one track per id, paired by
            // cat+id+name. The id folds home place and seq exactly like
            // FinishKeyHash; the name carries the declared protocol.
            const bool open = e.kind == Ev::kFinishOpen;
            const std::string nm =
                std::string("finish.") +
                pragma_name(static_cast<Pragma>(e.b));
            const std::uint64_t gid =
                (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                     e.place))
                 << 40) |
                e.a;
            header(nm.c_str(), open ? "b" : "e", e);
            append(",\"cat\":\"finish\",\"id\":\"0x%" PRIx64 "\"", gid);
            if (open) {
              append(",\"args\":{\"seq\":%" PRIu64 ",\"pragma\":%" PRIu64 "}",
                     e.a, e.b);
            }
            out += "}";
            break;
          }
          case Ev::kMsgSend:
          case Ev::kMsgRecv: {
            // Message events get their class folded into the name so tracks
            // are readable without expanding args.
            const std::string nm =
                std::string(name(e.kind)) + "." +
                x10rt::msg_type_name(static_cast<x10rt::MsgType>(e.a));
            header(nm.c_str(), "i", e);
            append(",\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64
                   "},\"s\":\"t\"}",
                   e.a, e.b);
            break;
          }
          default:
            header(name(e.kind), "i", e);
            append(",\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64
                   "},\"s\":\"t\"}",
                   e.a, e.b);
            break;
        }
      }
    }
  }
  out += "]}";
  return out;
}

bool write_chrome_json(const std::string& path) {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[apgas] cannot write trace to %s\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) {
    std::fprintf(stderr, "[apgas] short write of trace %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace apgas::trace
