#include "runtime/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "runtime/runtime.h"
#include "x10rt/message.h"

namespace apgas::trace {

namespace {

// Indexed by Ev; order must mirror the enum. Aggregate initialization zero-
// fills any tail entry a new Ev kind would leave behind, and the
// static_assert below turns that nullptr into a compile error — an event
// kind can no longer ship without a name.
constexpr std::array<const char*, kNumEv> kEvNames = {
    "activity.spawn",  // kActivitySpawn
    "activity",        // kActivityBegin
    "activity",        // kActivityEnd
    "send",            // kMsgSend
    "recv",            // kMsgRecv
    "finish.open",     // kFinishOpen
    "finish.close",    // kFinishClose
    "finish.upgrade",  // kFinishUpgrade
    "glb.steal",       // kStealAttempt
    "glb.loot",        // kStealSuccess
    "team",            // kTeamBegin
    "team",            // kTeamEnd
    "team.chunk",      // kTeamChunk
    "sched.steal",     // kSchedSteal
    "sched.overflow",  // kSchedOverflow
    "coalesce.flush",  // kCoalesceFlush
    "retx.timeout",    // kRetxTimeout
    "autotune.adjust",  // kAutotuneAdjust
};

constexpr bool all_events_named() {
  for (const char* n : kEvNames) {
    if (n == nullptr) return false;
  }
  return true;
}
static_assert(all_events_named(),
              "trace::Ev grew without a name — extend kEvNames in trace.cc");

}  // namespace

const char* name(Ev e) {
  const auto i = static_cast<std::size_t>(e);
  return i < kEvNames.size() ? kEvNames[i] : "?";
}

// --- Ring --------------------------------------------------------------------

void Ring::reset(std::size_t capacity) {
  slots_ = std::vector<Slot>(capacity == 0 ? 1 : capacity);
  cursor_.store(0, std::memory_order_relaxed);
}

void Ring::push(const Event& e) {
  const std::uint64_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t cap = slots_.size();
  Slot& s = slots_[i % cap];
  const std::uint64_t lap = i / cap;
  // Seqlock write: claim (odd) -> fields -> publish (even). The stamps are
  // derived from the lap so two writers a full lap apart can collide on the
  // slot without ever producing a stamp that validates a torn read.
  s.gen.store(2 * lap + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.t.store(e.t_ns, std::memory_order_relaxed);
  s.meta.store((static_cast<std::uint64_t>(e.kind) << 32) |
                   static_cast<std::uint32_t>(e.place),
               std::memory_order_relaxed);
  s.a.store(e.a, std::memory_order_relaxed);
  s.b.store(e.b, std::memory_order_relaxed);
  s.gen.store(2 * lap + 2, std::memory_order_release);
}

std::vector<Event> Ring::drain() const {
  const std::uint64_t n = cursor_.load(std::memory_order_relaxed);
  const std::size_t cap = slots_.size();
  const std::size_t stored = n < cap ? static_cast<std::size_t>(n) : cap;
  const std::uint64_t first = n - stored;  // index of the oldest retained
  std::vector<Event> out;
  out.reserve(stored);
  for (std::uint64_t i = first; i < n; ++i) {
    const Slot& s = slots_[i % cap];
    // Accept the slot only if the publish stamp for *this* lap is observed
    // both before and after the field reads — otherwise the slot is still
    // in flight (claim stamp) or was overwritten by a later lap; drop it.
    const std::uint64_t want = 2 * (i / cap) + 2;
    if (s.gen.load(std::memory_order_acquire) != want) continue;
    Event e;
    e.t_ns = s.t.load(std::memory_order_relaxed);
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    e.kind = static_cast<Ev>(meta >> 32);
    e.place = static_cast<std::int32_t>(meta & 0xffffffffu);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.gen.load(std::memory_order_relaxed) != want) continue;
    out.push_back(e);
  }
  return out;
}

// --- global recorder ---------------------------------------------------------

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

struct Recorder {
  std::vector<std::unique_ptr<Ring>> rings;  // [places] + 1 external ring
  std::chrono::steady_clock::time_point epoch;
};

std::atomic<Recorder*> g_recorder{nullptr};

std::uint64_t now_ns(const Recorder& r) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - r.epoch)
          .count());
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
}

}  // namespace

namespace detail {

void record(int place, Ev kind, std::uint64_t a, std::uint64_t b) {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  if (r == nullptr) return;
  if (place == kHere) place = apgas::detail::tl_place;
  const int nrings = static_cast<int>(r->rings.size());
  // Non-worker threads (and out-of-range places) share the external ring.
  const int idx = (place >= 0 && place < nrings - 1) ? place : nrings - 1;
  Event e;
  e.t_ns = now_ns(*r);
  e.kind = kind;
  e.place = place;
  e.a = a;
  e.b = b;
  r->rings[static_cast<std::size_t>(idx)]->push(e);
}

}  // namespace detail

void init(int places, std::size_t capacity_per_place, bool enable) {
  shutdown();
  auto* r = new Recorder;
  // Disabled runs keep the recorder live (active() stays true, exporters
  // emit empty traces) but must not pay the ring memory — "near-zero cost
  // when disabled" covers the 2 MiB/place of slots, not just the emit sites.
  // Ring clamps capacity 0 to one slot, so each ring costs ~32 bytes.
  const std::size_t cap = enable ? capacity_per_place : 0;
  r->rings.reserve(static_cast<std::size_t>(places) + 1);
  for (int p = 0; p < places + 1; ++p) {
    r->rings.push_back(std::make_unique<Ring>(cap));
  }
  r->epoch = std::chrono::steady_clock::now();
  g_recorder.store(r, std::memory_order_release);
  detail::g_enabled.store(enable, std::memory_order_release);
}

void shutdown() {
  detail::g_enabled.store(false, std::memory_order_release);
  Recorder* r = g_recorder.exchange(nullptr, std::memory_order_acq_rel);
  delete r;
}

bool active() { return g_recorder.load(std::memory_order_acquire) != nullptr; }

std::uint64_t total_events() {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  if (r == nullptr) return 0;
  std::uint64_t total = 0;
  for (const auto& ring : r->rings) total += ring->written();
  return total;
}

std::vector<Event> recent(std::size_t k) {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  std::vector<Event> all;
  if (r == nullptr) return all;
  for (const auto& ring : r->rings) {
    for (const Event& e : ring->drain()) all.push_back(e);
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& x, const Event& y) { return x.t_ns < y.t_ns; });
  if (all.size() > k) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(k));
  return all;
}

std::vector<Event> drain_all() {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  std::vector<Event> all;
  if (r == nullptr) return all;
  for (const auto& ring : r->rings) {
    for (const Event& e : ring->drain()) all.push_back(e);
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& x, const Event& y) { return x.t_ns < y.t_ns; });
  return all;
}

std::uint64_t epoch_abs_ns() {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  if (r == nullptr) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          r->epoch.time_since_epoch())
          .count());
}

namespace {

constexpr std::uint32_t kBlobMagic = 0x41504754u;  // "APGT"
constexpr std::uint32_t kBlobVersion = 1;

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
bool get(const std::string& in, std::size_t& pos, T& v) {
  if (in.size() - pos < sizeof(T)) return false;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

std::string encode_events(std::uint64_t epoch_abs_ns,
                          const std::vector<Event>& events) {
  std::string out;
  out.reserve(24 + events.size() * 29);
  put(out, kBlobMagic);
  put(out, kBlobVersion);
  put(out, epoch_abs_ns);
  put(out, static_cast<std::uint64_t>(events.size()));
  for (const Event& e : events) {
    put(out, e.t_ns);
    put(out, static_cast<std::uint8_t>(e.kind));
    put(out, e.place);
    put(out, e.a);
    put(out, e.b);
  }
  return out;
}

bool decode_events(const std::string& blob, std::uint64_t& epoch_abs_ns_out,
                   std::vector<Event>& events_out) {
  std::size_t pos = 0;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t epoch = 0;
  std::uint64_t count = 0;
  if (!get(blob, pos, magic) || magic != kBlobMagic) return false;
  if (!get(blob, pos, version) || version != kBlobVersion) return false;
  if (!get(blob, pos, epoch) || !get(blob, pos, count)) return false;
  constexpr std::size_t kRecord = 8 + 1 + 4 + 8 + 8;
  if (count > (blob.size() - pos) / kRecord) return false;
  if (blob.size() - pos != count * kRecord) return false;
  std::vector<Event> events;
  events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Event e;
    std::uint8_t kind = 0;
    if (!get(blob, pos, e.t_ns) || !get(blob, pos, kind) ||
        !get(blob, pos, e.place) || !get(blob, pos, e.a) ||
        !get(blob, pos, e.b)) {
      return false;
    }
    if (kind >= static_cast<std::uint8_t>(Ev::kCount_)) return false;
    e.kind = static_cast<Ev>(kind);
    events.push_back(e);
  }
  epoch_abs_ns_out = epoch;
  events_out = std::move(events);
  return true;
}

namespace {

// Span ids whose spawn was remote. Only those get flow events — a local
// spawn/begin pair sits on one track already, and emitting a flow "f" with
// no matching "s" (spawn fell off the ring) would be rejected by the
// importer anyway.
void collect_remote_spawns(const std::vector<Event>& evs,
                           std::unordered_set<std::uint64_t>& remote_spawns) {
  for (const Event& e : evs) {
    if (e.kind == Ev::kActivitySpawn && ((e.b >> 32) & 1u) != 0 && e.a != 0) {
      remote_spawns.insert(e.a);
    }
  }
}

// Serializes one event (plus its flow companion where applicable) as Chrome
// trace_event objects. Shared by the single-process and merged exporters;
// `pid` is 0 in-process and the owning place in a merged trace.
void emit_event_json(std::string& out, bool& first, const Event& e, int pid,
                     const std::unordered_set<std::uint64_t>& remote_spawns) {
  char buf[320];
  // Shared "...,{"name":NM,"ph":PH,"ts":...,"pid":P,"tid":place" prefix;
  // ts is microseconds (Chrome's unit) with ns precision as decimals.
  auto header = [&](const char* nm, const char* ph) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    json_escape_into(out, nm);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"%s\",\"ts\":%" PRIu64 ".%03u,\"pid\":%d,"
                  "\"tid\":%d",
                  ph, e.t_ns / 1000, static_cast<unsigned>(e.t_ns % 1000), pid,
                  e.place);
    out += buf;
  };
  auto append = [&](const char* fmt, auto... vals) {
    std::snprintf(buf, sizeof(buf), fmt, vals...);
    out += buf;
  };
  switch (e.kind) {
    case Ev::kActivitySpawn: {
      const auto dst = static_cast<std::uint64_t>(e.b & 0xffffffffu);
      const auto remote = static_cast<unsigned>((e.b >> 32) & 1u);
      header(name(e.kind), "i");
      // Span ids exceed JSON's double-exact integer range; hex strings
      // keep them grep-able against the begin event and the flow id.
      append(",\"args\":{\"span\":\"0x%" PRIx64 "\",\"dst\":%" PRIu64
             ",\"remote\":%u},\"s\":\"t\"}",
             e.a, dst, remote);
      if (remote != 0 && e.a != 0) {
        // Flow start: binds to the enclosing slice (the spawning
        // activity) on this track; the arrow lands on the matching
        // activity.begin on the destination place.
        header("activity.spawn", "s");
        append(",\"cat\":\"flow\",\"id\":\"0x%" PRIx64 "\"}", e.a);
      }
      break;
    }
    case Ev::kActivityBegin: {
      header(name(e.kind), "B");
      append(",\"args\":{\"span\":\"0x%" PRIx64 "\",\"parent\":\"0x%" PRIx64
             "\"}}",
             e.a, e.b);
      if (e.a != 0 && remote_spawns.count(e.a) != 0) {
        header("activity.spawn", "f");
        append(",\"cat\":\"flow\",\"bp\":\"e\",\"id\":\"0x%" PRIx64 "\"}",
               e.a);
      }
      break;
    }
    case Ev::kActivityEnd:
    case Ev::kTeamEnd:
      header(name(e.kind), "E");  // "E" needs no args; keeps pairs
      out += "}";                 // balanced
      break;
    case Ev::kTeamBegin:
      header(name(e.kind), "B");
      append(",\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}", e.a, e.b);
      break;
    case Ev::kFinishOpen:
    case Ev::kFinishClose: {
      // Async ("b"/"e") slice per finish: one track per id, paired by
      // cat+id+name. The id folds home place and seq exactly like
      // FinishKeyHash; the name carries the declared protocol.
      const bool open = e.kind == Ev::kFinishOpen;
      const std::string nm =
          std::string("finish.") + pragma_name(static_cast<Pragma>(e.b));
      const std::uint64_t gid =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.place))
           << 40) |
          e.a;
      header(nm.c_str(), open ? "b" : "e");
      append(",\"cat\":\"finish\",\"id\":\"0x%" PRIx64 "\"", gid);
      if (open) {
        append(",\"args\":{\"seq\":%" PRIu64 ",\"pragma\":%" PRIu64 "}", e.a,
               e.b);
      }
      out += "}";
      break;
    }
    case Ev::kMsgSend:
    case Ev::kMsgRecv: {
      // Message events get their class folded into the name so tracks
      // are readable without expanding args.
      const std::string nm =
          std::string(name(e.kind)) + "." +
          x10rt::msg_type_name(static_cast<x10rt::MsgType>(e.a));
      header(nm.c_str(), "i");
      append(",\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "},\"s\":\"t\"}",
             e.a, e.b);
      break;
    }
    default:
      header(name(e.kind), "i");
      append(",\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "},\"s\":\"t\"}",
             e.a, e.b);
      break;
  }
}

}  // namespace

std::string chrome_json() {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  if (r != nullptr) {
    std::vector<std::vector<Event>> drained;
    drained.reserve(r->rings.size());
    for (const auto& ring : r->rings) drained.push_back(ring->drain());
    std::unordered_set<std::uint64_t> remote_spawns;
    for (const auto& evs : drained) collect_remote_spawns(evs, remote_spawns);
    for (const auto& evs : drained) {
      for (const Event& e : evs) {
        emit_event_json(out, first, e, 0, remote_spawns);
      }
    }
  }
  out += "]}";
  return out;
}

std::string chrome_json_merged(const std::vector<ProcEvents>& procs,
                               std::uint64_t* clamped_spans) {
  // Inputs arrive rebased into one clock domain but with an arbitrary origin;
  // shift everything so the merged trace starts near ts 0.
  std::uint64_t base = UINT64_MAX;
  for (const ProcEvents& p : procs) {
    for (const Event& e : p.events) base = std::min(base, e.t_ns);
  }
  if (base == UINT64_MAX) base = 0;

  std::unordered_set<std::uint64_t> remote_spawns;
  std::unordered_map<std::uint64_t, std::uint64_t> spawn_ts;
  for (const ProcEvents& p : procs) {
    collect_remote_spawns(p.events, remote_spawns);
    for (const Event& e : p.events) {
      if (e.kind == Ev::kActivitySpawn && remote_spawns.count(e.a) != 0) {
        auto [it, fresh] = spawn_ts.try_emplace(e.a, e.t_ns);
        if (!fresh && e.t_ns < it->second) it->second = e.t_ns;
      }
    }
  }

  std::uint64_t clamped = 0;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const ProcEvents& p : procs) {
    // Per-place process row: Perfetto names the pid track from this
    // metadata event.
    if (!first) out.push_back(',');
    first = false;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":0,\"args\":{\"name\":\"place %d\"}}",
                  p.place, p.place);
    out += buf;

    // Happened-before clamping: residual offset-estimation error (bounded by
    // the handshake's min RTT / 2) can land a begin a hair before its remote
    // spawn. Shift such spans — begin and end together — forward onto the
    // spawn instant so cause always precedes effect in the merged view.
    std::unordered_map<std::uint64_t, std::uint64_t> shift;
    for (const Event& e : p.events) {
      if (e.kind != Ev::kActivityBegin || e.a == 0) continue;
      const auto it = spawn_ts.find(e.a);
      if (it != spawn_ts.end() && e.t_ns < it->second) {
        shift[e.a] = it->second - e.t_ns;
      }
    }
    clamped += shift.size();

    std::vector<Event> evs = p.events;
    for (Event& e : evs) {
      if ((e.kind == Ev::kActivityBegin || e.kind == Ev::kActivityEnd) &&
          shift.count(e.a) != 0) {
        e.t_ns += shift[e.a];
      }
      e.t_ns -= std::min(base, e.t_ns);
    }
    // Shifts may reorder neighbours; B/E pairing in the trace format follows
    // timestamp order per (pid, tid), so restore it.
    std::stable_sort(evs.begin(), evs.end(), [](const Event& x, const Event& y) {
      return x.t_ns < y.t_ns;
    });
    for (const Event& e : evs) {
      emit_event_json(out, first, e, p.place, remote_spawns);
    }
  }
  out += "]}";
  if (clamped_spans != nullptr) *clamped_spans = clamped;
  return out;
}

bool write_chrome_json(const std::string& path) {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[apgas] cannot write trace to %s\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) {
    std::fprintf(stderr, "[apgas] short write of trace %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace apgas::trace
