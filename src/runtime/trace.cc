#include "runtime/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "runtime/runtime.h"
#include "x10rt/message.h"

namespace apgas::trace {

const char* name(Ev e) {
  switch (e) {
    case Ev::kActivitySpawn: return "spawn";
    case Ev::kActivityBegin: return "activity";
    case Ev::kActivityEnd: return "activity";
    case Ev::kFinishOpen: return "finish.open";
    case Ev::kFinishClose: return "finish.close";
    case Ev::kFinishUpgrade: return "finish.upgrade";
    case Ev::kStealAttempt: return "glb.steal";
    case Ev::kStealSuccess: return "glb.loot";
    case Ev::kTeamBegin: return "team";
    case Ev::kTeamEnd: return "team";
    case Ev::kMsgSend: return "send";
    case Ev::kMsgRecv: return "recv";
    case Ev::kSchedSteal: return "sched.steal";
    case Ev::kSchedOverflow: return "sched.overflow";
    case Ev::kCoalesceFlush: return "coalesce.flush";
  }
  return "?";
}

// --- Ring --------------------------------------------------------------------

void Ring::reset(std::size_t capacity) {
  slots_ = std::vector<Slot>(capacity == 0 ? 1 : capacity);
  cursor_.store(0, std::memory_order_relaxed);
}

void Ring::push(const Event& e) {
  const std::uint64_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[i % slots_.size()];
  s.t.store(e.t_ns, std::memory_order_relaxed);
  s.meta.store((static_cast<std::uint64_t>(e.kind) << 32) |
                   static_cast<std::uint32_t>(e.place),
               std::memory_order_relaxed);
  s.a.store(e.a, std::memory_order_relaxed);
  s.b.store(e.b, std::memory_order_relaxed);
}

std::vector<Event> Ring::drain() const {
  const std::uint64_t n = cursor_.load(std::memory_order_relaxed);
  const std::size_t cap = slots_.size();
  const std::size_t stored = n < cap ? static_cast<std::size_t>(n) : cap;
  const std::uint64_t first = n - stored;  // index of the oldest retained
  std::vector<Event> out;
  out.reserve(stored);
  for (std::uint64_t i = first; i < n; ++i) {
    const Slot& s = slots_[i % cap];
    Event e;
    e.t_ns = s.t.load(std::memory_order_relaxed);
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    e.kind = static_cast<Ev>(meta >> 32);
    e.place = static_cast<std::int32_t>(meta & 0xffffffffu);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    out.push_back(e);
  }
  return out;
}

// --- global recorder ---------------------------------------------------------

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

struct Recorder {
  std::vector<std::unique_ptr<Ring>> rings;  // [places] + 1 external ring
  std::chrono::steady_clock::time_point epoch;
};

std::atomic<Recorder*> g_recorder{nullptr};

std::uint64_t now_ns(const Recorder& r) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - r.epoch)
          .count());
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
}

}  // namespace

namespace detail {

void record(int place, Ev kind, std::uint64_t a, std::uint64_t b) {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  if (r == nullptr) return;
  if (place == kHere) place = apgas::detail::tl_place;
  const int nrings = static_cast<int>(r->rings.size());
  // Non-worker threads (and out-of-range places) share the external ring.
  const int idx = (place >= 0 && place < nrings - 1) ? place : nrings - 1;
  Event e;
  e.t_ns = now_ns(*r);
  e.kind = kind;
  e.place = place;
  e.a = a;
  e.b = b;
  r->rings[static_cast<std::size_t>(idx)]->push(e);
}

}  // namespace detail

void init(int places, std::size_t capacity_per_place, bool enable) {
  shutdown();
  auto* r = new Recorder;
  // Disabled runs keep the recorder live (active() stays true, exporters
  // emit empty traces) but must not pay the ring memory — "near-zero cost
  // when disabled" covers the 2 MiB/place of slots, not just the emit sites.
  // Ring clamps capacity 0 to one slot, so each ring costs ~32 bytes.
  const std::size_t cap = enable ? capacity_per_place : 0;
  r->rings.reserve(static_cast<std::size_t>(places) + 1);
  for (int p = 0; p < places + 1; ++p) {
    r->rings.push_back(std::make_unique<Ring>(cap));
  }
  r->epoch = std::chrono::steady_clock::now();
  g_recorder.store(r, std::memory_order_release);
  detail::g_enabled.store(enable, std::memory_order_release);
}

void shutdown() {
  detail::g_enabled.store(false, std::memory_order_release);
  Recorder* r = g_recorder.exchange(nullptr, std::memory_order_acq_rel);
  delete r;
}

bool active() { return g_recorder.load(std::memory_order_acquire) != nullptr; }

std::uint64_t total_events() {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  if (r == nullptr) return 0;
  std::uint64_t total = 0;
  for (const auto& ring : r->rings) total += ring->written();
  return total;
}

std::string chrome_json() {
  Recorder* r = g_recorder.load(std::memory_order_acquire);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  if (r != nullptr) {
    char buf[256];
    for (const auto& ring : r->rings) {
      for (const Event& e : ring->drain()) {
        const char* ph = "i";
        if (e.kind == Ev::kActivityBegin || e.kind == Ev::kTeamBegin) ph = "B";
        if (e.kind == Ev::kActivityEnd || e.kind == Ev::kTeamEnd) ph = "E";
        std::string nm;
        // Message events get their class folded into the name so tracks are
        // readable without expanding args.
        if (e.kind == Ev::kMsgSend || e.kind == Ev::kMsgRecv) {
          nm = std::string(name(e.kind)) + "." +
               x10rt::msg_type_name(static_cast<x10rt::MsgType>(e.a));
        } else {
          nm = name(e.kind);
        }
        if (!first) out.push_back(',');
        first = false;
        out += "{\"name\":\"";
        json_escape_into(out, nm.c_str());
        // ts is microseconds (Chrome's unit); keep ns precision as decimals.
        std::snprintf(buf, sizeof(buf),
                      "\",\"ph\":\"%s\",\"ts\":%" PRIu64 ".%03u,\"pid\":0,"
                      "\"tid\":%d",
                      ph, e.t_ns / 1000,
                      static_cast<unsigned>(e.t_ns % 1000), e.place);
        out += buf;
        if (ph[0] != 'E') {  // "E" events need no args; keeps pairs balanced
          std::snprintf(buf, sizeof(buf),
                        ",\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}", e.a,
                        e.b);
          out += buf;
        }
        if (ph[0] == 'i') out += ",\"s\":\"t\"";
        out += "}";
      }
    }
  }
  out += "]}";
  return out;
}

bool write_chrome_json(const std::string& path) {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[apgas] cannot write trace to %s\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) {
    std::fprintf(stderr, "[apgas] short write of trace %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace apgas::trace
