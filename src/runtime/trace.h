// Flight recorder: per-place, lock-free ring-buffer event tracing.
//
// The paper argues its scaling story (§3.1, §5) through runtime-internal
// signals — control-message volume, out-degree, steal traffic. The tracer
// records those signals as timestamped events so a single run can be
// inspected after the fact (chrome://tracing / Perfetto) instead of argued
// about from aggregate counters alone.
//
// Design constraints:
//   * Bounded memory: one fixed-capacity ring per place (plus one shared
//     "external" ring for non-worker threads). When a ring wraps, the oldest
//     events are overwritten — a flight recorder keeps the recent past.
//   * Lock-free writers: a slot index is claimed with one relaxed fetch_add;
//     slot fields are relaxed 64-bit atomics, so concurrent writers are
//     data-race-free even when a lapped writer lands on a slot being read.
//     (A full-lap collision can interleave fields of two events; exporters
//     tolerate that. It cannot corrupt memory.)
//   * Near-zero cost when disabled: every emit site is an inline check of
//     one relaxed atomic bool; no arguments are evaluated beyond the enum.
//
// Lifecycle: Runtime::run initializes the recorder before workers start and
// tears it down (optionally exporting Chrome trace JSON) after they join.
// Tests may also drive init()/emit_at()/shutdown() standalone.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace apgas::trace {

/// Event kinds recorded by the runtime. Schema (the meaning of args a/b) is
/// documented per-kind in docs/observability.md and in name().
enum class Ev : std::uint8_t {
  kActivitySpawn,    // a = destination place, b = 1 if remote (asyncAt)
  kActivityBegin,    // activity body starts on a worker
  kActivityEnd,      // activity body finished (completion accounting follows)
  kMsgSend,          // a = x10rt::MsgType, b = destination place
  kMsgRecv,          // a = x10rt::MsgType, b = source place
  kFinishOpen,       // a = finish seq, b = pragma
  kFinishClose,      // a = finish seq, b = pragma
  kFinishUpgrade,    // a = finish seq (kAuto local counter -> matrix)
  kStealAttempt,     // a = victim place (GLB random steal)
  kStealSuccess,     // a = victim place
  kTeamBegin,        // a = collective op id (see docs), b = team id
  kTeamEnd,          // a = collective op id, b = team id
  kSchedSteal,       // intra-place deque steal; a = thief worker, b = victim
  kSchedOverflow,    // overflow-inbox drain; a = draining worker (-1 = ext)
  kCoalesceFlush,    // envelope shipped; a = records, b = reason<<32 | dst
};
inline constexpr int kNumEv = 15;

/// Stable lowercase event name (used by the exporters and docs).
const char* name(Ev e);

/// One recorded event, as read back out of a ring.
struct Event {
  std::uint64_t t_ns = 0;  // monotonic ns since trace::init()
  Ev kind = Ev::kActivitySpawn;
  std::int32_t place = -1;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Fixed-capacity MPMC overwrite ring. Writers claim slots with fetch_add;
/// readers (drain) run at quiescence. Exposed for unit testing.
class Ring {
 public:
  Ring() = default;
  explicit Ring(std::size_t capacity) { reset(capacity); }

  void reset(std::size_t capacity);
  void push(const Event& e);

  /// Total events ever pushed (>= stored once the ring has wrapped).
  [[nodiscard]] std::uint64_t written() const {
    return cursor_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Snapshot of retained events, oldest first. Intended for quiescent
  /// export; concurrent pushes cannot crash it but may tear an event.
  [[nodiscard]] std::vector<Event> drain() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> t{0};
    std::atomic<std::uint64_t> meta{0};  // kind << 32 | uint32(place)
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> cursor_{0};
};

namespace detail {
extern std::atomic<bool> g_enabled;
void record(int place, Ev kind, std::uint64_t a, std::uint64_t b);
inline constexpr int kHere = -2;  // resolve place from the worker TLS
}  // namespace detail

/// True when tracing is live. One relaxed load — this is the whole cost of a
/// disabled event site.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Records an event attributed to an explicit place ring.
inline void emit_at(int place, Ev kind, std::uint64_t a = 0,
                    std::uint64_t b = 0) {
  if (enabled()) detail::record(place, kind, a, b);
}

/// Records an event attributed to the calling worker's place (events from
/// non-worker threads land in the shared external ring).
inline void emit(Ev kind, std::uint64_t a = 0, std::uint64_t b = 0) {
  if (enabled()) detail::record(detail::kHere, kind, a, b);
}

/// Allocates `places + 1` rings (the extra one catches non-worker threads)
/// and arms/disarms event sites. When `enable` is false the rings are
/// allocated at minimal (one-slot) capacity, so a disabled run pays neither
/// CPU nor ring memory. Must not race emit(); Runtime calls it before
/// workers start.
void init(int places, std::size_t capacity_per_place, bool enable);

/// Disarms event sites and frees the rings.
void shutdown();

/// True between init() and shutdown() (even if recording is disabled).
bool active();

/// Sum of written() across rings (0 when inactive or disabled).
std::uint64_t total_events();

/// Serializes every retained event as Chrome trace_event JSON (the format
/// chrome://tracing, Perfetto, and speedscope load). pid 0, tid = place;
/// activity begin/end become "B"/"E" duration events, the rest instants.
std::string chrome_json();

/// Writes chrome_json() to `path`. Returns false (and keeps quiet beyond a
/// stderr note) on I/O failure — teardown must not throw.
bool write_chrome_json(const std::string& path);

}  // namespace apgas::trace
