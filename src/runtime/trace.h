// Flight recorder: per-place, lock-free ring-buffer event tracing.
//
// The paper argues its scaling story (§3.1, §5) through runtime-internal
// signals — control-message volume, out-degree, steal traffic. The tracer
// records those signals as timestamped events so a single run can be
// inspected after the fact (chrome://tracing / Perfetto) instead of argued
// about from aggregate counters alone.
//
// Design constraints:
//   * Bounded memory: one fixed-capacity ring per place (plus one shared
//     "external" ring for non-worker threads). When a ring wraps, the oldest
//     events are overwritten — a flight recorder keeps the recent past.
//   * Lock-free writers: a slot index is claimed with one relaxed fetch_add;
//     slot fields are 64-bit atomics guarded by a per-slot seqlock-style
//     generation stamp (claim = odd, publish = even), so readers detect a
//     slot that is mid-write or has been lapped and drop it instead of
//     exporting interleaved fields of two events.
//   * Near-zero cost when disabled: every emit site is an inline check of
//     one relaxed atomic bool; no arguments are evaluated beyond the enum.
//
// Lifecycle: Runtime::run initializes the recorder before workers start and
// tears it down (optionally exporting Chrome trace JSON) after they join.
// Tests may also drive init()/emit_at()/shutdown() standalone.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace apgas::trace {

/// Event kinds recorded by the runtime. Schema (the meaning of args a/b) is
/// documented per-kind in docs/observability.md and in name().
enum class Ev : std::uint8_t {
  kActivitySpawn,    // a = span id, b = remote<<32 | destination place
  kActivityBegin,    // body starts; a = span id, b = parent span id
  kActivityEnd,      // body finished; a = span id
  kMsgSend,          // a = x10rt::MsgType, b = destination place
  kMsgRecv,          // a = x10rt::MsgType, b = source place
  kFinishOpen,       // a = finish seq, b = pragma
  kFinishClose,      // a = finish seq, b = pragma
  kFinishUpgrade,    // a = finish seq (kAuto local counter -> matrix)
  kStealAttempt,     // a = victim place (GLB random steal)
  kStealSuccess,     // a = victim place
  kTeamBegin,        // a = collective op id (see docs), b = team id
  kTeamEnd,          // a = collective op id, b = team id
  kTeamChunk,        // hierarchical fragment forwarded;
                     // a = op id<<32 | chunk index, b = bytes<<16 | dst rank
  kSchedSteal,       // intra-place deque steal; a = thief worker, b = victim
  kSchedOverflow,    // overflow-inbox drain; a = draining worker (-1 = ext)
  kCoalesceFlush,    // envelope shipped; a = records, b = reason<<32 | dst
  kRetxTimeout,      // retransmit fired; a = seq, b = attempt<<32 | dst
  kAutotuneAdjust,   // controller moved a knob; a = new value,
                     // b = knob<<32 | uint32(dst) (dst = -1 for park)
  kCount_,           // sentinel — keep last; name() is static_asserted to it
};
inline constexpr int kNumEv = static_cast<int>(Ev::kCount_);

/// Stable lowercase event name (used by the exporters and docs).
const char* name(Ev e);

/// One recorded event, as read back out of a ring.
struct Event {
  std::uint64_t t_ns = 0;  // monotonic ns since trace::init()
  Ev kind = Ev::kActivitySpawn;
  std::int32_t place = -1;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Fixed-capacity MPMC overwrite ring. Writers claim slots with fetch_add;
/// readers (drain) run at quiescence. Exposed for unit testing.
class Ring {
 public:
  Ring() = default;
  explicit Ring(std::size_t capacity) { reset(capacity); }

  void reset(std::size_t capacity);
  void push(const Event& e);

  /// Total events ever pushed (>= stored once the ring has wrapped).
  [[nodiscard]] std::uint64_t written() const {
    return cursor_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Snapshot of retained events, oldest first. Safe against concurrent
  /// pushes: each slot's generation stamp is checked before and after the
  /// field reads, so an event that is mid-write (or lapped during the read)
  /// is dropped rather than returned torn.
  [[nodiscard]] std::vector<Event> drain() const;

 private:
  struct Slot {
    // Seqlock stamp: a writer on lap L stores 2L+1 (claim) before the fields
    // and 2L+2 (publish) after. Readers expecting lap L accept the slot only
    // if they observe 2L+2 both before and after reading the fields —
    // deriving the stamp from the lap (rather than ++) keeps it well-formed
    // even when two lapped writers collide on the slot.
    std::atomic<std::uint64_t> gen{0};
    std::atomic<std::uint64_t> t{0};
    std::atomic<std::uint64_t> meta{0};  // kind << 32 | uint32(place)
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> cursor_{0};
};

namespace detail {
extern std::atomic<bool> g_enabled;
void record(int place, Ev kind, std::uint64_t a, std::uint64_t b);
inline constexpr int kHere = -2;  // resolve place from the worker TLS
}  // namespace detail

/// True when tracing is live. One relaxed load — this is the whole cost of a
/// disabled event site.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Records an event attributed to an explicit place ring.
inline void emit_at(int place, Ev kind, std::uint64_t a = 0,
                    std::uint64_t b = 0) {
  if (enabled()) detail::record(place, kind, a, b);
}

/// Records an event attributed to the calling worker's place (events from
/// non-worker threads land in the shared external ring).
inline void emit(Ev kind, std::uint64_t a = 0, std::uint64_t b = 0) {
  if (enabled()) detail::record(detail::kHere, kind, a, b);
}

/// Allocates `places + 1` rings (the extra one catches non-worker threads)
/// and arms/disarms event sites. When `enable` is false the rings are
/// allocated at minimal (one-slot) capacity, so a disabled run pays neither
/// CPU nor ring memory. Must not race emit(); Runtime calls it before
/// workers start.
void init(int places, std::size_t capacity_per_place, bool enable);

/// Disarms event sites and frees the rings.
void shutdown();

/// True between init() and shutdown() (even if recording is disabled).
bool active();

/// Sum of written() across rings (0 when inactive or disabled).
std::uint64_t total_events();

/// The `k` most recent retained events across all rings, oldest first
/// (merged by timestamp). Used by the stall watchdog's diagnosis dump.
std::vector<Event> recent(std::size_t k);

/// Every retained event across all rings, merged oldest first. Used by place
/// processes to ship their ring contents to the launcher supervisor before
/// shutdown() tears the recorder down.
std::vector<Event> drain_all();

/// The recorder's epoch (the instant t_ns counts from) as absolute
/// steady_clock nanoseconds — the same clock hist::now_ns()/clocksync echo.
/// A child's event happened at absolute time epoch_abs_ns() + e.t_ns. 0 when
/// inactive.
std::uint64_t epoch_abs_ns();

/// Compact binary codec for shipping a ring drain across the ctrl socket:
/// [magic u32]["APGT" version u32][epoch_abs u64][count u64] then one fixed-
/// width record per event. decode_events returns false (leaving the outputs
/// untouched) on a malformed blob.
std::string encode_events(std::uint64_t epoch_abs_ns,
                          const std::vector<Event>& events);
bool decode_events(const std::string& blob, std::uint64_t& epoch_abs_ns_out,
                   std::vector<Event>& events_out);

/// One place process's events, rebased into a common clock domain, for the
/// merged exporter.
struct ProcEvents {
  int place = 0;
  std::vector<Event> events;
};

/// Serializes every retained event as Chrome trace_event JSON (the format
/// chrome://tracing, Perfetto, and speedscope load). pid 0, tid = place;
/// activity begin/end become "B"/"E" duration events; remote spawns add
/// "s"/"f" flow events (arrows from activity.spawn on the source place to
/// the matching activity.begin, keyed by span id); finish open/close become
/// "b"/"e" async slices on a per-finish track (id = home<<40 | seq); the
/// rest are instants.
std::string chrome_json();

/// Multi-process variant used by the launcher supervisor: one Perfetto JSON
/// over every place process's (already clock-rebased) events, with pid =
/// owning place so each process renders as its own named row, plus the same
/// flow arrows as chrome_json() — remote spawns are matched to begins across
/// process boundaries. Residual offset-estimation error can leave a begin a
/// few ns before its spawn; such spans are shifted forward onto the spawn
/// (happened-before clamping) so the merged timeline never shows an effect
/// preceding its cause. `clamped_spans`, when non-null, receives the number
/// of spans so corrected.
std::string chrome_json_merged(const std::vector<ProcEvents>& procs,
                               std::uint64_t* clamped_spans = nullptr);

/// Writes chrome_json() to `path`. Returns false (and keeps quiet beyond a
/// stderr note) on I/O failure — teardown must not throw.
bool write_chrome_json(const std::string& path);

}  // namespace apgas::trace
