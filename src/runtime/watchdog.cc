#include "runtime/watchdog.h"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/finish.h"
#include "runtime/runtime.h"
#include "runtime/trace.h"

namespace apgas {

namespace {
constexpr std::size_t kRecentEvents = 16;  // trace tail shown per diagnosis
}  // namespace

Watchdog::Watchdog(Runtime& rt, std::chrono::milliseconds interval,
                   int stall_intervals)
    : rt_(rt),
      interval_(interval),
      stall_intervals_(stall_intervals < 1 ? 1 : stall_intervals),
      diagnoses_(&rt.metrics().counter("watchdog.diagnoses")) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  thread_ = std::thread([this] { loop(); });
}

void Watchdog::stop() {
  {
    std::scoped_lock lock(mu_);
    if (stop_requested_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Watchdog::Progress Watchdog::sample() const {
  Progress p;
  for (int q = 0; q < rt_.places(); ++q) {
    p.activities += rt_.sched(q).activities_executed();
    p.messages += rt_.sched(q).messages_processed();
  }
  const FinishCounters& fc = rt_.fin_counters();
  p.finishes_opened = fc.opened->load(std::memory_order_relaxed);
  p.finishes_closed = fc.closed->load(std::memory_order_relaxed);
  p.transport_msgs = rt_.transport().total_messages();
  p.envelopes = rt_.transport().coalesce_envelopes();
  return p;
}

void Watchdog::diagnose(int stalled_intervals) const {
  // Build the whole report in one string so concurrent stderr writers can't
  // shred it line by line.
  std::string out;
  char buf[256];
  auto append = [&](const char* fmt, auto... vals) {
    std::snprintf(buf, sizeof(buf), fmt, vals...);
    out += buf;
  };

  const Progress p = sample();
  append("[apgas watchdog] no progress for %d intervals (%lld ms); "
         "diagnosis:\n",
         stalled_intervals,
         static_cast<long long>(interval_.count()) * stalled_intervals);
  append("  totals: activities=%" PRIu64 " sched_msgs=%" PRIu64
         " finishes=%" PRIu64 "/%" PRIu64 " (closed/opened) transport_msgs=%"
         PRIu64 " envelopes=%" PRIu64 "\n",
         p.activities, p.messages, p.finishes_closed, p.finishes_opened,
         p.transport_msgs, p.envelopes);

  x10rt::Transport& tr = rt_.transport();
  for (int q = 0; q < rt_.places(); ++q) {
    // Under the socket backend this process hosts exactly one place; the
    // other places' schedulers/inboxes exist but never run, so reporting
    // their zeros would only bury the signal.
    if (!rt_.place_is_local(q)) continue;
    Scheduler& s = rt_.sched(q);
    append("  place %d: inbox=%zu overflow=%zu sleepers=%d coalesce_open=%zu "
           "executed=%" PRIu64 " msgs=%" PRIu64 "\n",
           q, tr.inbox_depth(q), s.overflow_pending(), tr.sleepers(q),
           tr.coalesce_open_envelopes(q), s.activities_executed(),
           s.messages_processed());
    // Reliability sublayer: a stall with unacked retransmit queues usually
    // means the loss/ack loop, not the protocols, is the thing to look at.
    for (const auto& d : tr.retx_unacked(q)) {
      append("    retx %d->%d: oldest_unacked_seq=%" PRIu64 " age=%" PRIu64
             "us depth=%zu\n",
             q, d.dst, d.oldest_seq, d.age_ns / 1000, d.depth);
    }
    // Adaptive controller: a stall with a collapsed threshold or a wildly
    // wrong RTO points at the tuner, not the workload.
    if (Autotune* at = rt_.autotune()) {
      for (const auto& d : at->pair_diag(q)) {
        append("    autotune %d->%d: threshold=%zuB residency_ewma=%" PRIu64
               "ns srtt=%" PRIu64 "us rttvar=%" PRIu64 "us rto=%" PRIu64
               "us\n",
               q, d.dst, d.threshold, d.residency_ewma_ns, d.srtt_us,
               d.rttvar_us, d.rto_us);
      }
      append("    autotune place %d: park_ceiling=%" PRIu64 "us\n", q,
             at->park_ceiling_us(q));
    }
  }
  // Socket backend: per-peer queue depths. Bytes stuck in tx_pending mean
  // the peer stopped reading (or died); a fat rx buffer means we are the
  // slow consumer.
  for (const auto& d : tr.backend_diag()) {
    append("  socket peer %d: tx_pending=%zu rx_buffered=%zu\n", d.peer,
           static_cast<std::size_t>(d.tx_pending_bytes),
           static_cast<std::size_t>(d.rx_buffered_bytes));
  }

  // Open finishes: count them and name the oldest (lowest seq; ties broken
  // by place). declared_pragma() is immutable, so this is safe without the
  // finish's own lock; the per-place registry lock guards the map walk.
  std::size_t open_finishes = 0;
  int oldest_place = -1;
  std::uint64_t oldest_seq = 0;
  Pragma oldest_pragma = Pragma::kAuto;
  for (int q = 0; q < rt_.places(); ++q) {
    PlaceState& ps = rt_.pstate(q);
    std::scoped_lock lock(ps.fin_mu);
    for (const auto& [seq, fh] : ps.home_finishes) {
      ++open_finishes;
      if (oldest_place < 0 || seq < oldest_seq) {
        oldest_place = q;
        oldest_seq = seq;
        oldest_pragma = fh->declared_pragma();
      }
    }
  }
  if (open_finishes == 0) {
    out += "  open finishes: none\n";
  } else {
    append("  open finishes: %zu (oldest: place %d seq %" PRIu64
           " pragma %s)\n",
           open_finishes, oldest_place, oldest_seq,
           pragma_name(oldest_pragma));
  }

  const std::vector<trace::Event> tail = trace::recent(kRecentEvents);
  if (tail.empty()) {
    out += "  recent events: none (tracing disabled?)\n";
  } else {
    append("  last %zu trace events (oldest first):\n", tail.size());
    for (const trace::Event& e : tail) {
      append("    %10" PRIu64 ".%03uus p%-3d %-16s a=%" PRIu64 " b=%" PRIu64
             "\n",
             e.t_ns / 1000, static_cast<unsigned>(e.t_ns % 1000), e.place,
             trace::name(e.kind), e.a, e.b);
    }
  }

  if (report_sink_) {
    report_sink_(out);
  } else {
    std::fwrite(out.data(), 1, out.size(), stderr);
    std::fflush(stderr);
  }
}

void Watchdog::loop() {
  Progress last = sample();
  int stalled = 0;
  bool fired = false;  // one diagnosis per stall, re-armed by progress
  std::unique_lock lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    const Progress now = sample();
    if (now == last) {
      ++stalled;
      if (!fired && stalled >= stall_intervals_) {
        diagnose(stalled);
        diagnoses_->fetch_add(1, std::memory_order_relaxed);
        fired = true;
      }
    } else {
      last = now;
      stalled = 0;
      fired = false;
    }
    lock.lock();
  }
}

}  // namespace apgas
