// Stall watchdog: turns a silent hang into an actionable report.
//
// Distributed termination detection fails ugly: when a finish protocol loses
// an account (or chaos parks the wrong control message), the job simply stops
// making progress and a CI run times out with no evidence. The watchdog is a
// sampler thread (off by default; Config::watchdog_interval_ms /
// APGAS_WATCHDOG_MS) that snapshots the runtime's monotone progress counters
// every interval. When *none* of them advances for N consecutive intervals it
// dumps one human-readable diagnosis to stderr — per-place queue depths and
// scheduler totals, the oldest open finish (seq + protocol), coalescer shard
// occupancy, and the last few flight-recorder events — then stays quiet until
// progress resumes (one report per distinct stall, not one per interval).
//
// Only monotone counters participate in stall detection: oscillating signals
// (parked workers, inbox depth) would read as "progress" while the job spins
// in place, so they appear in the diagnosis but never reset the stall clock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "runtime/metrics.h"

namespace apgas {

class Runtime;

class Watchdog {
 public:
  /// `interval` between progress samples; a diagnosis fires after
  /// `stall_intervals` consecutive samples with no progress (>= 1).
  Watchdog(Runtime& rt, std::chrono::milliseconds interval,
           int stall_intervals);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts the sampler thread. Call once, before the workers can stall.
  void start();

  /// Stops and joins the sampler thread. Idempotent; the destructor calls it.
  void stop();

  /// Diagnoses fired so far (also the "watchdog.diagnoses" counter).
  [[nodiscard]] std::uint64_t diagnoses() const {
    return diagnoses_->load(std::memory_order_relaxed);
  }

  /// Redirects diagnosis reports into `sink` instead of stderr. Socket-mode
  /// children forward reports to the launcher supervisor this way, so a
  /// multi-process stall produces one consolidated, place-labelled report
  /// rather than interleaved child stderr. Set before start().
  void set_report_sink(std::function<void(const std::string&)> sink) {
    report_sink_ = std::move(sink);
  }

 private:
  /// The monotone progress vector; any component advancing counts as
  /// progress.
  struct Progress {
    std::uint64_t activities = 0;        // sum sched.pN.activities_executed
    std::uint64_t messages = 0;          // sum sched.pN.messages_processed
    std::uint64_t finishes_opened = 0;   // finish.opened
    std::uint64_t finishes_closed = 0;   // finish.closed
    std::uint64_t transport_msgs = 0;    // transport.msgs.total
    std::uint64_t envelopes = 0;         // transport.coalesce.envelopes
    friend bool operator==(const Progress&, const Progress&) = default;
  };

  [[nodiscard]] Progress sample() const;
  void diagnose(int stalled_intervals) const;
  void loop();

  Runtime& rt_;
  std::chrono::milliseconds interval_;
  int stall_intervals_;
  MetricsRegistry::Counter* diagnoses_;
  std::function<void(const std::string&)> report_sink_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace apgas
