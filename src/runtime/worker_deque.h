// Per-worker Chase–Lev work-stealing deque (ISSUE 2 tentpole; paper §3.1).
//
// Each worker owns one deque: the owner pushes and pops activities at the
// bottom (LIFO, the Cilk/X10 work-first discipline), thieves steal from the
// top (FIFO — oldest task first, which tends to hand thieves the largest
// remaining subtree). The algorithm is the Chase–Lev dynamic circular deque
// in the Lê/Pop/Cocchini/Zappa Nardelli C11 formulation, with one deliberate
// deviation documented below: the two standalone seq_cst fences are folded
// into the adjacent atomic operations. ThreadSanitizer does not model
// standalone fences (it would report false races on the handoff), while
// seq_cst loads/stores/RMWs are modeled precisely — and strengthening a
// fence-protected access into a seq_cst access preserves every ordering the
// fence provided (both orders embed into the single seq_cst total order S).
// docs/scheduler.md carries the full memory-order argument.
//
// Elements are owned `Activity*` (the std::function payload is not an atomic
// type). The buffer grows geometrically; retired buffers are kept alive until
// the deque is destroyed so a thief holding a stale buffer pointer can still
// read its claimed slot (the standard Chase–Lev reclamation strategy —
// bounded, since capacities double).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/activity.h"

namespace apgas {

class WorkerDeque {
 public:
  explicit WorkerDeque(std::size_t initial_capacity = 256)
      : buffer_(new Buffer(round_up(initial_capacity))) {}

  WorkerDeque(const WorkerDeque&) = delete;
  WorkerDeque& operator=(const WorkerDeque&) = delete;

  ~WorkerDeque() {
    Activity* a = nullptr;
    while ((a = pop()) != nullptr) delete a;
    delete buffer_.load(std::memory_order_relaxed);
  }

  /// Owner-only: pushes a (heap-owned) activity at the bottom.
  void push(Activity* a) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, a);
    // Publish the slot before the new bottom: a thief acquiring bottom_ and
    // seeing index b then also sees the slot contents.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner-only: pops the most recently pushed activity; nullptr when empty.
  Activity* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    // seq_cst store (in place of store-relaxed + seq_cst fence): the claim of
    // slot b must be ordered before the read of top_ in S, or a concurrent
    // thief and the owner could both take the last element.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    Activity* a = nullptr;
    if (t <= b) {
      a = buf->get(b);
      if (t == b) {
        // Single element: race the thieves for it via top_.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          a = nullptr;  // a thief got it first
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);  // deque was empty
    }
    return a;
  }

  /// Any thread: steals the oldest activity; nullptr when empty or when the
  /// steal raced (callers treat both as "try elsewhere").
  Activity* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    // seq_cst load pair (in place of the seq_cst fence between them): the
    // read of bottom_ must not be satisfied before the read of top_, or a
    // stale bottom could hide the element a racing pop() left behind.
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    // The buffer load is ordered after the bottom_ acquire; a stale buffer
    // pointer is still safe to read (retired buffers stay allocated) and
    // slot t is identical in every buffer generation that contains it.
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    Activity* a = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race for slot t
    }
    return a;
  }

  /// Racy size estimate (monitoring / idle heuristics only).
  [[nodiscard]] std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_estimate() const { return size_estimate() == 0; }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<Activity*>[cap]) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<Activity*>[]> slots;

    void put(std::int64_t i, Activity* a) {
      slots[static_cast<std::size_t>(i) & mask].store(
          a, std::memory_order_relaxed);
    }
    [[nodiscard]] Activity* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t c = 8;
    while (c < n) c <<= 1;
    return c;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    retired_.emplace_back(old);
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  // Owner end and thief end of the live window [top_, bottom_).
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  // Owner-only: buffers replaced by grow(), freed with the deque.
  std::vector<std::unique_ptr<Buffer>> retired_;
};

}  // namespace apgas
