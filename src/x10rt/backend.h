// Backend: the wire under the Transport.
//
// Transport owns everything protocol-shaped — sequencing, ack/retransmit,
// dedup, coalescing, chaos injection — and a Backend only moves opaque byte
// frames between places. Two implementations exist:
//
//   * InProcBackend (default): all places share the process, messages hop
//     between inboxes as closures and no frame is ever encoded. send_frame
//     is unreachable by construction (Transport only encodes frames when the
//     backend is multi_process), so the in-process fast path keeps its
//     zero-overhead shape from before the interface existed.
//   * SocketBackend (socket_backend.h): one process per place, frames over
//     non-blocking Unix-domain sockets.
//
// Delivery is push-based: start() hands the backend a sink, and the backend
// invokes it (from its own I/O thread) once per complete frame. The sink —
// Transport::deliver_frame — validates, reconstructs a Message, and enqueues
// it into the local inbox, so chaos injection and sleeper wakeups apply
// identically on both backends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

namespace x10rt {

struct BackendStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Per-peer queue depths for the watchdog's stall diagnosis.
struct BackendPeerDiag {
  int peer = -1;
  std::size_t tx_pending_bytes = 0;  ///< encoded bytes waiting for POLLOUT
  std::size_t rx_buffered_bytes = 0; ///< received bytes not yet a full frame
};

class Backend {
 public:
  /// Receives one complete frame (length prefix stripped) from `peer`.
  using FrameSink =
      std::function<void(int peer, const std::uint8_t* data, std::size_t len)>;

  virtual ~Backend() = default;

  /// True when places live in separate processes (closures cannot cross).
  [[nodiscard]] virtual bool multi_process() const = 0;
  /// The one place this process hosts; -1 when all places are local.
  [[nodiscard]] virtual int local_place() const = 0;

  /// Begins delivering inbound frames to `sink`. Called once, before any
  /// traffic; the sink must stay callable until stop() returns.
  virtual void start(FrameSink sink) = 0;
  /// Stops the I/O thread; no sink invocation is in flight afterwards.
  virtual void stop() = 0;

  /// Ships one encoded frame (length prefix included; see frame::encode) to
  /// place `dst`. Thread-safe; never blocks on a slow peer — undeliverable
  /// bytes queue until the socket drains.
  virtual void send_frame(int dst, std::vector<std::uint8_t> frame) = 0;
  /// Opportunistically pushes queued tx bytes without waiting for POLLOUT.
  virtual void flush() = 0;

  [[nodiscard]] virtual BackendStats stats() const = 0;
  [[nodiscard]] virtual std::vector<BackendPeerDiag> diag() const = 0;
};

/// The default single-process backend: delivery happens inside
/// Transport::wire_deliver, so every hook is a no-op and send_frame is a
/// logic error loud enough to catch a mis-routed message immediately.
class InProcBackend final : public Backend {
 public:
  [[nodiscard]] bool multi_process() const override { return false; }
  [[nodiscard]] int local_place() const override { return -1; }
  void start(FrameSink) override {}
  void stop() override {}
  void send_frame(int dst, std::vector<std::uint8_t>) override {
    std::fprintf(stderr,
                 "[x10rt] fatal: send_frame(dst=%d) on the in-process "
                 "backend; wire frames exist only between processes\n",
                 dst);
    std::abort();
  }
  void flush() override {}
  [[nodiscard]] BackendStats stats() const override { return {}; }
  [[nodiscard]] std::vector<BackendPeerDiag> diag() const override { return {}; }
};

}  // namespace x10rt
