// Pooled wire-buffer storage for X10RT (ISSUE 3).
//
// Every active message used to heap-allocate a fresh std::vector<std::byte>
// on the send side and free it on the receive side — pure allocator churn on
// the control-plane hot path. The pool is a bounded freelist of cleared
// vectors that keep their capacity: after warm-up, frame encoding and
// envelope assembly run allocation-free. Buffers whose capacity outgrew
// `max_capacity` are dropped rather than retained so one jumbo payload
// cannot pin memory forever.
//
// Thread-safe: senders acquire on their own threads, receivers release on
// theirs. The critical section is a vector push/pop — far cheaper than the
// malloc/free pair it replaces.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace x10rt {

class BufferPool {
 public:
  explicit BufferPool(std::size_t max_retained = 64,
                      std::size_t max_capacity = 1u << 16)
      : max_retained_(max_retained), max_capacity_(max_capacity) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty vector, with capacity retained from a previous release() when
  /// the freelist has one (hit) and freshly default-constructed otherwise
  /// (miss — the first write sizes it).
  [[nodiscard]] std::vector<std::byte> acquire() {
    {
      std::scoped_lock lock(mu_);
      if (!free_.empty()) {
        std::vector<std::byte> out = std::move(free_.back());
        free_.pop_back();
        hits_.fetch_add(1, std::memory_order_relaxed);
        return out;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }

  /// Returns storage to the freelist (cleared, capacity kept). Oversize or
  /// surplus buffers are simply freed.
  void release(std::vector<std::byte>&& v) {
    if (v.capacity() == 0 || v.capacity() > max_capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    v.clear();
    {
      std::scoped_lock lock(mu_);
      if (free_.size() < max_retained_) {
        free_.push_back(std::move(v));
        recycled_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Returns many buffers under one lock acquisition — the coalescing layer
  /// stashes per-record payload storage shard-locally and recycles it in
  /// envelope-sized batches, so the freelist mutex is paid per envelope
  /// rather than per message.
  void release_batch(std::vector<std::vector<std::byte>>&& batch) {
    std::size_t recycled = 0;
    std::size_t dropped = 0;
    {
      std::scoped_lock lock(mu_);
      for (auto& v : batch) {
        if (v.capacity() == 0 || v.capacity() > max_capacity_ ||
            free_.size() >= max_retained_) {
          ++dropped;
          continue;
        }
        v.clear();
        free_.push_back(std::move(v));
        ++recycled;
      }
    }
    batch.clear();
    if (recycled > 0) recycled_.fetch_add(recycled, std::memory_order_relaxed);
    if (dropped > 0) dropped_.fetch_add(dropped, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t recycled() const {
    return recycled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t max_retained_;
  std::size_t max_capacity_;
  std::mutex mu_;
  std::vector<std::vector<std::byte>> free_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace x10rt
