// Envelope wire format for sender-side message coalescing (ISSUE 3).
//
// The paper's scalable-finish story (§3.1) rests on coalescing control
// messages; AM++ and Conveyor-style aggregation layers do the same for
// general active messages. An *envelope* is the wire unit of that layer:
// one length-prefixed train of (handler, payload) records packed by the
// sender and unpacked record-by-record at the destination:
//
//   uint32  record_count
//   repeat record_count times:
//     int32   handler        registered AM handler id
//     uint32  payload_bytes
//     byte[payload_bytes]    the AM payload, cursor-at-0 for the handler
//
// The count prefix is reserved at open() and patched at close(), so records
// append with no re-copy. Decoding brackets every record with
// position()/seek(): a handler reads its payload sequentially and cannot
// overrun into the next record even if it under-reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "x10rt/serialization.h"

namespace x10rt::envelope {

/// Fixed cost of the envelope itself (the record-count prefix).
inline constexpr std::size_t kHeaderBytes = sizeof(std::uint32_t);
/// Fixed per-record cost on top of the payload.
inline constexpr std::size_t kRecordHeaderBytes =
    sizeof(std::int32_t) + sizeof(std::uint32_t);

/// Accumulates records into one envelope. One Writer per (source,
/// destination) pair lives inside the transport's coalescing layer; tests
/// drive it standalone.
class Writer {
 public:
  /// Starts an envelope in `storage` (typically BufferPool-acquired; must be
  /// logically empty). The writer is "open" until close().
  void open(std::vector<std::byte> storage) {
    buf_ = ByteBuffer{std::move(storage)};
    buf_.put(static_cast<std::uint32_t>(0));  // patched by close()
    records_ = 0;
    open_ = true;
  }

  [[nodiscard]] bool is_open() const { return open_; }
  [[nodiscard]] std::uint32_t records() const { return records_; }
  /// Current wire size of the envelope, headers included.
  [[nodiscard]] std::size_t bytes() const { return open_ ? buf_.size() : 0; }

  void append(int handler, const ByteBuffer& payload) {
    buf_.put(static_cast<std::int32_t>(handler));
    buf_.put(static_cast<std::uint32_t>(payload.size()));
    buf_.put_raw(payload.bytes().data(), payload.size());
    ++records_;
  }

  /// Seals the envelope (patches the record count) and hands it over; the
  /// writer is closed afterwards and can be re-open()ed.
  [[nodiscard]] ByteBuffer close() {
    buf_.overwrite(0, records_);
    open_ = false;
    records_ = 0;
    return std::move(buf_);
  }

 private:
  ByteBuffer buf_;
  std::uint32_t records_ = 0;
  bool open_ = false;
};

/// Decodes an envelope in place: `fn(handler, buf, len)` runs once per
/// record with the read cursor at the record's payload start; the cursor is
/// forced to the record end afterwards regardless of how much `fn` consumed.
/// Throws std::out_of_range on a truncated or corrupt train *before*
/// invoking the handler on bad bounds.
template <typename Fn>
void for_each_record(ByteBuffer& buf, Fn&& fn) {
  buf.rewind();
  const auto count = buf.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto handler = buf.get<std::int32_t>();
    const auto len = buf.get<std::uint32_t>();
    if (len > buf.remaining()) {
      throw std::out_of_range("envelope record overruns the train");
    }
    const std::size_t start = buf.position();
    fn(static_cast<int>(handler), buf, len);
    buf.seek(start + len);
  }
}

/// Copying decode for tests and tooling: the full record list, payloads
/// duplicated out of the train.
struct Record {
  int handler = -1;
  std::vector<std::byte> payload;
};

inline std::vector<Record> decode_copy(ByteBuffer& buf) {
  std::vector<Record> out;
  for_each_record(buf, [&out](int handler, ByteBuffer& b, std::uint32_t len) {
    Record r;
    r.handler = handler;
    r.payload.resize(len);
    b.get_raw(r.payload.data(), len);
    out.push_back(std::move(r));
  });
  return out;
}

}  // namespace x10rt::envelope
