// Wire frame codec for multi-process backends.
//
// A frame is the unit a Backend ships between place processes: a 4-byte
// length prefix, a fixed 44-byte header, and an opaque payload. The header
// carries exactly the Message fields that must survive a process boundary
// (classification, reliability sequence/ack, the ship-time stamp) plus the
// dispatch key: a registered AM handler id for single messages, or the
// kEnvelope kind whose payload is a coalesced envelope train in the existing
// envelope.h format. Closures never cross the wire.
//
// Both ends of a socketpair mesh run on the same host, so fields are
// native-endian; the magic word doubles as an endianness/garbage check.
//
// The receive path treats frames as genuinely untrusted: validate() is a
// non-aborting checker (also the fuzz-test entry point) that rejects any
// frame whose header could drive an out-of-bounds read, and the transport
// aborts with its message rather than dispatching.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "x10rt/message.h"

namespace x10rt::frame {

enum class Kind : std::uint8_t {
  kAm = 0,        ///< payload = serialized args for header.handler
  kEnvelope = 1,  ///< payload = coalesced envelope train (envelope.h)
  kAckOnly = 2,   ///< no payload; header.ack is the cumulative ack
};
inline constexpr int kNumKinds = 3;

inline constexpr std::uint32_t kMagic = 0x46475041u;  // "APGF"
inline constexpr std::uint8_t kVersion = 1;

/// Header byte layout (after the u32 length prefix, offsets in bytes):
///   0  u32 magic        8  i32 src        16 u64 seq   32 u64 t_send_ns
///   4  u8  kind         12 i32 handler    24 u64 ack   40 u32 payload_len
///   5  u8  rflags
///   6  u8  type (MsgType)
///   7  u8  version
inline constexpr std::size_t kHeaderBytes = 44;
inline constexpr std::size_t kLengthPrefixBytes = 4;

/// Hard ceiling on (header + payload). Nothing legitimate approaches this —
/// envelope trains seal at coalesce_bytes (KBs) — so a larger length prefix
/// is corruption, not load, and must not size a buffer.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

struct Header {
  Kind kind = Kind::kAm;
  std::uint8_t rflags = 0;
  MsgType type = MsgType::kOther;
  std::int32_t src = -1;
  std::int32_t handler = -1;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint64_t t_send_ns = 0;
  std::uint32_t payload_len = 0;
};

namespace detail {
template <typename T>
inline void store(std::uint8_t* base, std::size_t off, T v) {
  std::memcpy(base + off, &v, sizeof(T));
}
template <typename T>
inline T load(const std::uint8_t* base, std::size_t off) {
  T v;
  std::memcpy(&v, base + off, sizeof(T));
  return v;
}
}  // namespace detail

/// Encodes length prefix + header + payload into one contiguous buffer,
/// ready for Backend::send_frame.
inline std::vector<std::uint8_t> encode(const Header& h, const std::byte* payload,
                                        std::size_t payload_len) {
  std::vector<std::uint8_t> out(kLengthPrefixBytes + kHeaderBytes + payload_len);
  std::uint8_t* p = out.data();
  detail::store<std::uint32_t>(
      p, 0, static_cast<std::uint32_t>(kHeaderBytes + payload_len));
  p += kLengthPrefixBytes;
  detail::store<std::uint32_t>(p, 0, kMagic);
  p[4] = static_cast<std::uint8_t>(h.kind);
  p[5] = h.rflags;
  p[6] = static_cast<std::uint8_t>(h.type);
  p[7] = kVersion;
  detail::store<std::int32_t>(p, 8, h.src);
  detail::store<std::int32_t>(p, 12, h.handler);
  detail::store<std::uint64_t>(p, 16, h.seq);
  detail::store<std::uint64_t>(p, 24, h.ack);
  detail::store<std::uint64_t>(p, 32, h.t_send_ns);
  detail::store<std::uint32_t>(p, 40, static_cast<std::uint32_t>(payload_len));
  if (payload_len != 0) std::memcpy(p + kHeaderBytes, payload, payload_len);
  return out;
}

/// Decodes the fixed header. Call only on a frame validate() accepted.
inline Header decode_header(const std::uint8_t* data) {
  Header h;
  h.kind = static_cast<Kind>(data[4]);
  h.rflags = data[5];
  h.type = static_cast<MsgType>(data[6]);
  h.src = detail::load<std::int32_t>(data, 8);
  h.handler = detail::load<std::int32_t>(data, 12);
  h.seq = detail::load<std::uint64_t>(data, 16);
  h.ack = detail::load<std::uint64_t>(data, 24);
  h.t_send_ns = detail::load<std::uint64_t>(data, 32);
  h.payload_len = detail::load<std::uint32_t>(data, 40);
  return h;
}

/// Validates a frame (header + payload, the length prefix already stripped
/// and consistent with `len`). Returns nullptr when the frame is safe to
/// decode and dispatch, else a static description of the first defect.
/// `places` bounds src; `num_handlers` bounds handler for kAm frames.
/// Never reads past `data + len` and never aborts — the caller decides
/// (the transport aborts; the fuzz suite asserts).
inline const char* validate(const std::uint8_t* data, std::size_t len, int places,
                            int num_handlers) {
  if (len < kHeaderBytes) return "frame shorter than the fixed header";
  if (len > kMaxFrameBytes) return "frame exceeds kMaxFrameBytes";
  if (detail::load<std::uint32_t>(data, 0) != kMagic) return "bad magic word";
  if (data[7] != kVersion) return "unsupported frame version";
  if (data[4] >= static_cast<std::uint8_t>(kNumKinds)) return "unknown frame kind";
  if (data[6] >= static_cast<std::uint8_t>(kNumMsgTypes)) {
    return "unknown message type";
  }
  const auto src = detail::load<std::int32_t>(data, 8);
  if (src < 0 || src >= places) return "src place out of range";
  const auto payload_len = detail::load<std::uint32_t>(data, 40);
  if (static_cast<std::size_t>(payload_len) != len - kHeaderBytes) {
    return "payload_len disagrees with frame length";
  }
  const auto kind = static_cast<Kind>(data[4]);
  const auto handler = detail::load<std::int32_t>(data, 12);
  if (kind == Kind::kAm) {
    if (handler < 0 || handler >= num_handlers) {
      return "AM handler id out of range";
    }
  }
  if (kind == Kind::kAckOnly) {
    if (payload_len != 0) return "ack-only frame carries a payload";
    if ((data[5] & kMsgAckOnly) == 0) return "ack-only frame missing kMsgAckOnly";
  }
  if ((data[5] & kMsgAckOnly) != 0 && kind != Kind::kAckOnly) {
    return "kMsgAckOnly set on a non-ack frame";
  }
  return nullptr;
}

}  // namespace x10rt::frame
