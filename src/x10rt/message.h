// Message envelope types for the X10RT transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace x10rt {

/// Classification of messages for statistics and for chaos injection. The
/// paper's scalability story is largely about who sends how many kControl
/// messages; the transport counts every class separately so benches can
/// report the same breakdowns.
enum class MsgType : std::uint8_t {
  kTask,        // a spawned activity (async / at ... async)
  kControl,     // finish termination-detection traffic
  kCollective,  // team barrier/bcast/reduce/alltoall traffic
  kData,        // serialized (non-RDMA) array payloads
  kRdma,        // RDMA completion notifications
  kSteal,       // work-stealing requests/replies (GLB)
  kOther,
};
inline constexpr int kNumMsgTypes = 7;

/// Stable lowercase class name (metric keys, trace-event names).
inline const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kTask: return "task";
    case MsgType::kControl: return "control";
    case MsgType::kCollective: return "collective";
    case MsgType::kData: return "data";
    case MsgType::kRdma: return "rdma";
    case MsgType::kSteal: return "steal";
    case MsgType::kOther: return "other";
  }
  return "?";
}

/// Reliability-header flags on a Message (the `rflags` field). Only the
/// transport's reliability sublayer reads them; they are all zero when the
/// layer is disabled.
inline constexpr std::uint8_t kMsgHasAck = 1;  ///< `ack` field is valid
inline constexpr std::uint8_t kMsgAckOnly = 2; ///< standalone ack, no body
/// Wire payload is a coalesced envelope train (multi-process backends).
inline constexpr std::uint8_t kMsgEnvelope = 4;
/// Crossed a process boundary: t_send_ns is from another clock domain, so
/// latency consumers must clamp or bucket it separately (task.ship_xproc_ns).
inline constexpr std::uint8_t kMsgXProc = 8;

/// A message is a closure executed at the destination place by its scheduler,
/// plus bookkeeping used by the transport layer (type, approximate payload
/// size in wire bytes). Closures must capture by value only: once enqueued,
/// the sender's stack is gone. Closures must also be *copyable* (which
/// std::function already requires): the reliability sublayer retains a copy
/// of every sequenced message for retransmission, and chaos duplication
/// injects independent copies onto the wire.
struct Message {
  std::function<void()> run;
  MsgType type = MsgType::kOther;
  std::size_t bytes = 0;
  int src = -1;
  // Monotonic send-time stamp (0 = unstamped). The runtime stamps task
  // shipments when latency histograms are armed and the receiving scheduler
  // turns the delta into ship->execute latency; the transport itself never
  // reads it.
  std::uint64_t t_send_ns = 0;
  // --- reliability header (docs/transport.md "Reliability") ----------------
  // Per-(src,dst) monotone sequence number, stamped by the transport when the
  // reliability sublayer is armed. 0 = unsequenced: the message bypasses
  // ack/retransmit/dedup entirely (the layer off, standalone acks, or an
  // anonymous source) and chaos never drops or duplicates it.
  std::uint64_t seq = 0;
  // Cumulative ack piggybacked for the reverse direction: "src has delivered
  // every sequence <= ack of dst's traffic". Valid iff rflags & kMsgHasAck.
  std::uint64_t ack = 0;
  std::uint8_t rflags = 0;  // kMsgHasAck | kMsgAckOnly | kMsgEnvelope | kMsgXProc
  // --- wire form (multi-process backends) ----------------------------------
  // A message can only leave the process if it has one: a registered AM
  // (handler >= 0, `wire` = serialized args) or an envelope train
  // (rflags & kMsgEnvelope, `wire` = the train). Closure-only messages abort
  // loudly if routed to a remote place. Shared so the reliability layer's
  // retained retransmit copy does not duplicate the payload bytes.
  int handler = -1;
  std::shared_ptr<const std::vector<std::byte>> wire;
};

}  // namespace x10rt
