// Message envelope types for the X10RT transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace x10rt {

/// Classification of messages for statistics and for chaos injection. The
/// paper's scalability story is largely about who sends how many kControl
/// messages; the transport counts every class separately so benches can
/// report the same breakdowns.
enum class MsgType : std::uint8_t {
  kTask,        // a spawned activity (async / at ... async)
  kControl,     // finish termination-detection traffic
  kCollective,  // team barrier/bcast/reduce/alltoall traffic
  kData,        // serialized (non-RDMA) array payloads
  kRdma,        // RDMA completion notifications
  kSteal,       // work-stealing requests/replies (GLB)
  kOther,
};
inline constexpr int kNumMsgTypes = 7;

/// Stable lowercase class name (metric keys, trace-event names).
inline const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kTask: return "task";
    case MsgType::kControl: return "control";
    case MsgType::kCollective: return "collective";
    case MsgType::kData: return "data";
    case MsgType::kRdma: return "rdma";
    case MsgType::kSteal: return "steal";
    case MsgType::kOther: return "other";
  }
  return "?";
}

/// A message is a closure executed at the destination place by its scheduler,
/// plus bookkeeping used by the transport layer (type, approximate payload
/// size in wire bytes). Closures must capture by value only: once enqueued,
/// the sender's stack is gone.
struct Message {
  std::function<void()> run;
  MsgType type = MsgType::kOther;
  std::size_t bytes = 0;
  int src = -1;
  // Monotonic send-time stamp (0 = unstamped). The runtime stamps task
  // shipments when latency histograms are armed and the receiving scheduler
  // turns the delta into ship->execute latency; the transport itself never
  // reads it.
  std::uint64_t t_send_ns = 0;
};

}  // namespace x10rt
