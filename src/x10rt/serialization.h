// Byte-buffer serialization for X10RT control and data messages.
//
// The X10 compiler serializes the captured environment of an `at` body into a
// wire buffer; here the same role is played by an explicit ByteBuffer used by
// the runtime's control protocols (finish snapshots, team collectives) and by
// the non-RDMA data path. Keeping control messages in real wire format lets
// the benches measure coalescing/compression factors the way the paper does.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <tuple>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace x10rt {

/// Growable little-endian-native byte buffer with sequential read cursor.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::byte> data) : data_(std::move(data)) {}

  /// Appends the raw bytes of a trivially copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const auto* src = reinterpret_cast<const std::byte*>(&value);
    data_.insert(data_.end(), src, src + sizeof(T));
  }

  /// Appends a length-prefixed string.
  void put_string(const std::string& s) {
    put(static_cast<std::uint32_t>(s.size()));
    const auto* src = reinterpret_cast<const std::byte*>(s.data());
    data_.insert(data_.end(), src, src + s.size());
  }

  /// Appends a length-prefixed vector of trivially copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put(static_cast<std::uint32_t>(v.size()));
    put_raw(v.data(), v.size() * sizeof(T));
  }

  /// Appends `n` raw bytes.
  void put_raw(const void* src, std::size_t n) {
    const auto* p = reinterpret_cast<const std::byte*>(src);
    data_.insert(data_.end(), p, p + n);
  }

  /// Overwrites sizeof(T) already-written bytes at `pos` (length-prefix
  /// patching: envelope writers reserve the record count up front and fill
  /// it in at flush time).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void overwrite(std::size_t pos, const T& value) {
    if (pos > data_.size() || sizeof(T) > data_.size() - pos) {
      throw std::out_of_range("ByteBuffer overwrite past end");
    }
    std::memcpy(data_.data() + pos, &value, sizeof(T));
  }

  /// Reads back a trivially copyable value; throws on underflow.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T out;
    check_remaining(sizeof(T));
    std::memcpy(&out, data_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return out;
  }

  std::string get_string() {
    const auto n = get<std::uint32_t>();
    check_remaining(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + cursor_), n);
    cursor_ += n;
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint32_t>();
    // Validate the length prefix *before* sizing the vector: a truncated or
    // corrupt message must fail with the clean out_of_range below, not a
    // multi-gigabyte allocation driven by attacker-controlled bytes.
    check_remaining(static_cast<std::size_t>(n) * sizeof(T));
    std::vector<T> v(n);
    get_raw(v.data(), static_cast<std::size_t>(n) * sizeof(T));
    return v;
  }

  void get_raw(void* dst, std::size_t n) {
    check_remaining(n);
    std::memcpy(dst, data_.data() + cursor_, n);
    cursor_ += n;
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - cursor_; }
  [[nodiscard]] std::span<const std::byte> bytes() const { return data_; }
  void rewind() { cursor_ = 0; }

  /// Read-cursor position (envelope readers bracket each record with
  /// position()/seek() so a handler cannot overread into its successor).
  [[nodiscard]] std::size_t position() const { return cursor_; }
  void seek(std::size_t pos) {
    if (pos > data_.size()) throw std::out_of_range("ByteBuffer seek past end");
    cursor_ = pos;
  }

  /// Surrenders the underlying storage (for freelist recycling); the buffer
  /// is empty afterwards.
  [[nodiscard]] std::vector<std::byte> take_data() {
    cursor_ = 0;
    return std::exchange(data_, {});
  }

 private:
  void check_remaining(std::size_t n) const {
    // Phrased as a subtraction against the guaranteed cursor_ <= size()
    // invariant: `cursor_ + n` would wrap for adversarial n near SIZE_MAX
    // and let the read through.
    if (n > data_.size() - cursor_) {
      throw std::out_of_range("ByteBuffer underflow");
    }
  }

  std::vector<std::byte> data_;
  std::size_t cursor_ = 0;
};

// ---------------------------------------------------------------------------
// Ser<T>: the typed wire convention for remote-task arguments (ISSUE 10).
//
// The X10 compiler emits a serializer per captured type; here the trait plays
// that role. Resolution order:
//   1. a type with member hooks `void ser_put(ByteBuffer&) const` and
//      `static T ser_get(ByteBuffer&)` uses them (user-extensible path);
//   2. trivially copyable types take the raw-bytes fast path;
//   3. std::string / std::vector / std::pair / std::tuple compose
//      element-wise through Ser.
// Anything else fails to compile with a pointed static_assert instead of
// silently shipping padding bytes or pointers across a process boundary.
// ---------------------------------------------------------------------------

template <typename T>
concept HasSerHooks = requires(const T& ct, T& t, ByteBuffer& b) {
  { ct.ser_put(b) } -> std::same_as<void>;
  { T::ser_get(b) } -> std::same_as<T>;
};

template <typename T>
struct Ser {
  static void put(ByteBuffer& b, const T& v) {
    if constexpr (HasSerHooks<T>) {
      v.ser_put(b);
    } else if constexpr (std::is_trivially_copyable_v<T>) {
      b.put(v);
    } else {
      static_assert(HasSerHooks<T> || std::is_trivially_copyable_v<T>,
                    "Ser<T>: type is neither trivially copyable nor provides "
                    "ser_put/ser_get hooks; specialize x10rt::Ser<T> or add "
                    "member hooks to ship it across a process boundary");
    }
  }
  static T get(ByteBuffer& b) {
    if constexpr (HasSerHooks<T>) {
      return T::ser_get(b);
    } else if constexpr (std::is_trivially_copyable_v<T>) {
      return b.get<T>();
    } else {
      static_assert(HasSerHooks<T> || std::is_trivially_copyable_v<T>,
                    "Ser<T>: type is neither trivially copyable nor provides "
                    "ser_put/ser_get hooks; specialize x10rt::Ser<T> or add "
                    "member hooks to ship it across a process boundary");
    }
  }
};

template <>
struct Ser<std::string> {
  static void put(ByteBuffer& b, const std::string& s) { b.put_string(s); }
  static std::string get(ByteBuffer& b) { return b.get_string(); }
};

template <typename T>
struct Ser<std::vector<T>> {
  static void put(ByteBuffer& b, const std::vector<T>& v) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      b.put_vector(v);
    } else {
      b.put(static_cast<std::uint32_t>(v.size()));
      for (const T& e : v) Ser<T>::put(b, e);
    }
  }
  static std::vector<T> get(ByteBuffer& b) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      return b.get_vector<T>();
    } else {
      const auto n = b.get<std::uint32_t>();
      std::vector<T> v;
      v.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) v.push_back(Ser<T>::get(b));
      return v;
    }
  }
};

template <typename A, typename B>
struct Ser<std::pair<A, B>> {
  static void put(ByteBuffer& b, const std::pair<A, B>& p) {
    Ser<A>::put(b, p.first);
    Ser<B>::put(b, p.second);
  }
  static std::pair<A, B> get(ByteBuffer& b) {
    // Braced init guarantees left-to-right evaluation of the two gets.
    return std::pair<A, B>{Ser<A>::get(b), Ser<B>::get(b)};
  }
};

template <typename... Ts>
struct Ser<std::tuple<Ts...>> {
  static void put(ByteBuffer& b, const std::tuple<Ts...>& t) {
    std::apply([&b](const Ts&... es) { (Ser<Ts>::put(b, es), ...); }, t);
  }
  static std::tuple<Ts...> get(ByteBuffer& b) {
    // Braced init guarantees left-to-right evaluation, matching put order.
    return std::tuple<Ts...>{Ser<Ts>::get(b)...};
  }
};

/// Packs a sequence of values through Ser in argument order.
template <typename... Ts>
void ser_put(ByteBuffer& b, const Ts&... vs) {
  (Ser<std::decay_t<Ts>>::put(b, vs), ...);
}

/// Reads one value through Ser.
template <typename T>
T ser_get(ByteBuffer& b) {
  return Ser<T>::get(b);
}

}  // namespace x10rt
