#include "x10rt/socket_backend.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "x10rt/frame.h"

namespace x10rt {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    std::perror("[x10rt] fcntl(O_NONBLOCK)");
    std::abort();
  }
}

/// EPIPE/ECONNRESET mid-run means a peer process died; its supervisor will
/// notice and kill us, so the sender just drops bytes instead of racing the
/// SIGKILL with its own abort.
bool peer_gone(int err) { return err == EPIPE || err == ECONNRESET; }

}  // namespace

SocketBackend::SocketBackend(int local_place, std::vector<int> peer_fds)
    : local_(local_place) {
  peers_.reserve(peer_fds.size());
  for (std::size_t i = 0; i < peer_fds.size(); ++i) {
    auto p = std::make_unique<Peer>();
    p->fd = peer_fds[i];
    if (p->fd >= 0) set_nonblocking(p->fd);
    peers_.push_back(std::move(p));
  }
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    std::perror("[x10rt] pipe");
    std::abort();
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];
  set_nonblocking(wake_r_);
  set_nonblocking(wake_w_);
}

SocketBackend::~SocketBackend() {
  stop();
  for (auto& p : peers_) {
    if (p->fd >= 0) ::close(p->fd);
  }
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
}

void SocketBackend::start(FrameSink sink) {
  sink_ = std::move(sink);
  stop_.store(false, std::memory_order_release);
  io_ = std::thread([this] { io_loop(); });
}

void SocketBackend::stop() {
  if (!io_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  wake();
  io_.join();
}

void SocketBackend::wake() {
  const std::uint8_t b = 1;
  // A full pipe already guarantees a pending wakeup; any other error only
  // matters during teardown, where the poll timeout bounds the delay.
  (void)!::write(wake_w_, &b, 1);
}

void SocketBackend::send_frame(int dst, std::vector<std::uint8_t> frame) {
  if (dst < 0 || dst >= static_cast<int>(peers_.size()) ||
      peers_[dst]->fd < 0) {
    std::fprintf(stderr, "[x10rt] fatal: no socket to place %d\n", dst);
    std::abort();
  }
  Peer& p = *peers_[dst];
  const std::size_t n = frame.size();
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(n, std::memory_order_relaxed);
  std::scoped_lock lk(p.tx_mu);
  if (p.tx_pending.empty()) {
    // Fast path: the socket buffer usually has room for the whole frame.
    const ssize_t w =
        ::send(p.fd, frame.data(), n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w == static_cast<ssize_t>(n)) return;
    if (w < 0 && peer_gone(errno)) return;
    if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      std::perror("[x10rt] send");
      std::abort();
    }
    p.tx_offset = w > 0 ? static_cast<std::size_t>(w) : 0;
    p.tx_pending_bytes.store(n - p.tx_offset, std::memory_order_relaxed);
    p.tx_pending.push_back(std::move(frame));
  } else {
    p.tx_pending_bytes.fetch_add(n, std::memory_order_relaxed);
    p.tx_pending.push_back(std::move(frame));
  }
  // Re-arm POLLOUT. Always, not just on the first queued frame: the I/O
  // thread may be rebuilding its pollfd set concurrently and a skipped wake
  // would strand the backlog until the 50ms poll timeout.
  wake();
}

void SocketBackend::flush() {
  for (auto& p : peers_) {
    if (p->fd < 0) continue;
    std::scoped_lock lk(p->tx_mu);
    drain_tx(*p);
  }
}

void SocketBackend::drain_tx(Peer& p) {
  while (!p.tx_pending.empty()) {
    auto& front = p.tx_pending.front();
    const std::size_t rem = front.size() - p.tx_offset;
    const ssize_t w = ::send(p.fd, front.data() + p.tx_offset, rem,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (peer_gone(errno)) {
        p.tx_pending.clear();
        p.tx_offset = 0;
        p.tx_pending_bytes.store(0, std::memory_order_relaxed);
        return;
      }
      std::perror("[x10rt] send");
      std::abort();
    }
    p.tx_offset += static_cast<std::size_t>(w);
    p.tx_pending_bytes.fetch_sub(static_cast<std::size_t>(w),
                                 std::memory_order_relaxed);
    if (p.tx_offset == front.size()) {
      p.tx_pending.pop_front();
      p.tx_offset = 0;
    }
  }
}

void SocketBackend::read_ready(int peer, Peer& p) {
  for (;;) {
    std::uint8_t tmp[65536];
    const ssize_t r = ::recv(p.fd, tmp, sizeof tmp, 0);
    if (r > 0) {
      bytes_recv_.fetch_add(static_cast<std::uint64_t>(r),
                            std::memory_order_relaxed);
      p.rx.insert(p.rx.end(), tmp, tmp + r);
      if (r == static_cast<ssize_t>(sizeof tmp)) continue;
      break;
    }
    if (r == 0 || (r < 0 && errno == ECONNRESET)) {
      // Peer closed. Either clean teardown or a crash; the launcher's ctrl
      // channel distinguishes the two. Stop watching this fd.
      p.open = false;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    std::perror("[x10rt] recv");
    std::abort();
  }
  // Deliver every complete frame in the reassembly buffer.
  std::size_t pos = 0;
  while (p.rx.size() - pos >= frame::kLengthPrefixBytes) {
    std::uint32_t len;
    std::memcpy(&len, p.rx.data() + pos, sizeof len);
    if (len < frame::kHeaderBytes || len > frame::kMaxFrameBytes) {
      std::fprintf(stderr,
                   "[x10rt] fatal: malformed frame from place %d: length "
                   "prefix %u outside [%zu, %zu]\n",
                   peer, len, frame::kHeaderBytes, frame::kMaxFrameBytes);
      std::abort();
    }
    if (p.rx.size() - pos - frame::kLengthPrefixBytes < len) break;
    frames_recv_.fetch_add(1, std::memory_order_relaxed);
    sink_(peer, p.rx.data() + pos + frame::kLengthPrefixBytes, len);
    pos += frame::kLengthPrefixBytes + len;
  }
  p.rx.erase(p.rx.begin(), p.rx.begin() + static_cast<std::ptrdiff_t>(pos));
  p.rx_buffered.store(p.rx.size(), std::memory_order_relaxed);
}

void SocketBackend::io_loop() {
  std::vector<pollfd> pfds;
  std::vector<int> idx;
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    idx.clear();
    pfds.push_back({wake_r_, POLLIN, 0});
    idx.push_back(-1);
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      Peer& p = *peers_[i];
      if (p.fd < 0 || !p.open) continue;
      short ev = POLLIN;
      if (p.tx_pending_bytes.load(std::memory_order_relaxed) > 0) {
        ev |= POLLOUT;
      }
      pfds.push_back({p.fd, ev, 0});
      idx.push_back(static_cast<int>(i));
    }
    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);
    if (rc < 0) {
      if (errno == EINTR) continue;
      std::perror("[x10rt] poll");
      std::abort();
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if (pfds[k].revents == 0) continue;
      if (idx[k] < 0) {
        std::uint8_t buf[256];
        while (::read(wake_r_, buf, sizeof buf) > 0) {
        }
        continue;
      }
      Peer& p = *peers_[static_cast<std::size_t>(idx[k])];
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        read_ready(idx[k], p);
      }
      if ((pfds[k].revents & POLLOUT) != 0) {
        std::scoped_lock lk(p.tx_mu);
        drain_tx(p);
      }
    }
  }
}

BackendStats SocketBackend::stats() const {
  BackendStats s;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_received = frames_recv_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_recv_.load(std::memory_order_relaxed);
  return s;
}

std::vector<BackendPeerDiag> SocketBackend::diag() const {
  std::vector<BackendPeerDiag> out;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const Peer& p = *peers_[i];
    if (p.fd < 0) continue;
    out.push_back({static_cast<int>(i),
                   p.tx_pending_bytes.load(std::memory_order_relaxed),
                   p.rx_buffered.load(std::memory_order_relaxed)});
  }
  return out;
}

}  // namespace x10rt
