// SocketBackend: places as separate processes over Unix-domain sockets.
//
// One connected SOCK_STREAM fd per peer place (a socketpair mesh wired by
// the launcher before fork, or by a test directly). A single I/O thread
// poll(2)s every peer plus a wakeup pipe: POLLIN bytes accumulate in a
// per-peer reassembly buffer and complete length-prefixed frames are pushed
// to the sink; POLLOUT drains the per-peer tx backlog that non-blocking
// sends could not write inline.
//
// The backend is a dumb pipe on purpose: loss, duplication, reordering and
// retransmission are the Transport's business (and its chaos layer still
// injects faults at the *receiving* inbox, identically to the in-process
// backend). The one check the backend does make is framing sanity — a
// length prefix outside [header, kMaxFrameBytes] means the stream is
// corrupt beyond recovery and aborts immediately rather than resynchronize
// on attacker-controlled bytes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "x10rt/backend.h"

namespace x10rt {

class SocketBackend final : public Backend {
 public:
  /// `peer_fds[p]` is a connected stream socket to place p, or -1 for self
  /// (and for places this backend will never talk to, e.g. test harnesses
  /// wiring only two transports). Takes ownership of the fds.
  SocketBackend(int local_place, std::vector<int> peer_fds);
  ~SocketBackend() override;

  [[nodiscard]] bool multi_process() const override { return true; }
  [[nodiscard]] int local_place() const override { return local_; }
  void start(FrameSink sink) override;
  void stop() override;
  void send_frame(int dst, std::vector<std::uint8_t> frame) override;
  void flush() override;
  [[nodiscard]] BackendStats stats() const override;
  [[nodiscard]] std::vector<BackendPeerDiag> diag() const override;

 private:
  struct Peer {
    int fd = -1;
    std::mutex tx_mu;
    std::deque<std::vector<std::uint8_t>> tx_pending;  // guarded by tx_mu
    std::size_t tx_offset = 0;  // bytes of tx_pending.front() already sent
    std::atomic<std::size_t> tx_pending_bytes{0};
    std::vector<std::uint8_t> rx;  // I/O thread only
    std::atomic<std::size_t> rx_buffered{0};  // mirror of rx.size() for diag
    bool open = true;  // I/O thread only: false after EOF/reset
  };

  void io_loop();
  void drain_tx(Peer& p);            // tx_mu held
  void read_ready(int peer, Peer& p);  // I/O thread only
  void wake();

  int local_;
  std::vector<std::unique_ptr<Peer>> peers_;
  FrameSink sink_;
  int wake_r_ = -1;
  int wake_w_ = -1;
  std::atomic<bool> stop_{false};
  std::thread io_;
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_recv_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_recv_{0};
};

}  // namespace x10rt
