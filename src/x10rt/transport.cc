#include "x10rt/transport.h"

#include <algorithm>

#include "x10rt/frame.h"
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <tuple>
#include <utility>

namespace x10rt {

namespace {
std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Transport::Transport(TransportConfig cfg)
    : cfg_(cfg),
      backend_(std::make_unique<InProcBackend>()),
      ranges_(static_cast<std::size_t>(cfg.places)) {
  assert(cfg_.places >= 1);
  if (cfg_.chaos.lossy() && !reliability_enabled()) {
    // A lost message with no retransmit layer wedges every finish protocol
    // forever; refuse the configuration loudly instead of hanging silently.
    std::fprintf(stderr,
                 "[x10rt] fatal: chaos drop/dup injection requires the "
                 "reliability sublayer (set retx_timeout_us > 0 / "
                 "APGAS_RETX_TIMEOUT_US)\n");
    std::abort();
  }
  inboxes_.reserve(static_cast<std::size_t>(cfg_.places));
  coalesce_.reserve(static_cast<std::size_t>(cfg_.places));
  for (int p = 0; p < cfg_.places; ++p) {
    auto box = std::make_unique<Inbox>();
    box->rng.seed(cfg_.chaos.seed + static_cast<std::uint64_t>(p) * 0x2545F4914F6CDD1DULL);
    inboxes_.push_back(std::move(box));
    auto shard = std::make_unique<CoalesceShard>();
    shard->per_dst.resize(static_cast<std::size_t>(cfg_.places));
    shard->open_ns.resize(static_cast<std::size_t>(cfg_.places), 0);
    shard->dyn_bytes =
        std::vector<std::atomic<std::size_t>>(static_cast<std::size_t>(cfg_.places));
    shard->dyn_bypass = std::vector<std::atomic<std::uint64_t>>(
        static_cast<std::size_t>(cfg_.places));
    coalesce_.push_back(std::move(shard));
  }
  if (reliability_enabled()) {
    retx_.reserve(static_cast<std::size_t>(cfg_.places));
    recv_.reserve(static_cast<std::size_t>(cfg_.places));
    retx_next_pump_.reserve(static_cast<std::size_t>(cfg_.places));
    for (int p = 0; p < cfg_.places; ++p) {
      auto rs = std::make_unique<RetxShard>();
      rs->per_dst.resize(static_cast<std::size_t>(cfg_.places));
      retx_.push_back(std::move(rs));
      auto rv = std::make_unique<RecvShard>();
      rv->per_src.resize(static_cast<std::size_t>(cfg_.places));
      recv_.push_back(std::move(rv));
      retx_next_pump_.push_back(
          std::make_unique<std::atomic<std::uint64_t>>(0));
    }
    // Pump from the poll hot path often enough that neither a retransmit
    // timer nor an ack-idle deadline slips by a whole interval.
    const std::uint64_t tick_us =
        std::min(cfg_.retx_timeout_us, std::max<std::uint64_t>(
                                           cfg_.retx_ack_idle_us, 1)) /
        2;
    retx_pump_interval_ns_ = std::max<std::uint64_t>(tick_us, 1) * 1000;
  }
  if (cfg_.count_pairs) {
    pair_counts_ = std::vector<std::atomic<std::uint64_t>>(
        static_cast<std::size_t>(cfg_.places) * cfg_.places);
    ctrl_pair_counts_ = std::vector<std::atomic<std::uint64_t>>(
        static_cast<std::size_t>(cfg_.places) * cfg_.places);
  }
  for (int i = 0; i < cfg_.dma_threads; ++i) {
    dma_workers_.emplace_back([this] { dma_loop(); });
  }
}

Transport::~Transport() {
  // Stop the backend's I/O thread first: no deliver_frame may run while the
  // inboxes and shards below it are being torn down.
  backend_->stop();
  {
    std::scoped_lock lock(dma_mu_);
    dma_stop_ = true;
  }
  dma_cv_.notify_all();
  for (auto& t : dma_workers_) t.join();
}

void Transport::count_logical(int src, int dst, MsgType type,
                              std::size_t wire_bytes) {
  const auto idx = static_cast<std::size_t>(type);
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  bytes_[idx].fetch_add(wire_bytes, std::memory_order_relaxed);
  if (cfg_.count_pairs && src >= 0) {
    pair_counts_[static_cast<std::size_t>(src) * cfg_.places + dst]
        .fetch_add(1, std::memory_order_relaxed);
    if (type == MsgType::kControl) {
      ctrl_pair_counts_[static_cast<std::size_t>(src) * cfg_.places + dst]
          .fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Transport::record(const Message& m, int dst) {
  count_logical(m.src, dst, m.type, m.bytes);
}

void Transport::enqueue_locked(Inbox& box, Message&& m) {
  // Chaos dup injection: only sequenced messages (the reliability layer is
  // armed, so the receiver dedups one of the copies). The injected copy goes
  // through the same drop/delay gauntlet as the original, independently.
  if (m.seq != 0 && cfg_.chaos.dup_prob > 0.0) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(box.rng) < cfg_.chaos.dup_prob) {
      chaos_duped_.fetch_add(1, std::memory_order_relaxed);
      Message copy = m;
      enqueue_copy_locked(box, std::move(copy));
    }
  }
  enqueue_copy_locked(box, std::move(m));
}

void Transport::enqueue_copy_locked(Inbox& box, Message&& m) {
  // Chaos drop injection: discard sequenced messages at the wire; the
  // sender's retransmit queue still holds a copy, so delivery is delayed,
  // not lost. Unsequenced messages (layer off, standalone acks) never drop.
  if (m.seq != 0 && cfg_.chaos.drop_prob > 0.0) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(box.rng) < cfg_.chaos.drop_prob) {
      chaos_dropped_.fetch_add(1, std::memory_order_relaxed);
      maybe_release_delayed_locked(box);
      return;
    }
  }
  if (cfg_.chaos.delay_prob > 0.0) {
    if (box.delayed.size() < cfg_.chaos.max_delayed) {
      std::uniform_real_distribution<double> u(0.0, 1.0);
      if (u(box.rng) < cfg_.chaos.delay_prob) {
        // Park the message; it will be released later in randomized order.
        box.delayed.push_back(std::move(m));
        maybe_release_delayed_locked(box);
        return;
      }
    } else {
      // Delay shaping is saturated off: the message skips the roll entirely.
      // Counted so "passed under chaos" can't silently mean this.
      chaos_bypass_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  box.queue.push_back(std::move(m));
  maybe_release_delayed_locked(box);
}

void Transport::maybe_release_delayed_locked(Inbox& box) {
  if (box.delayed.empty()) return;
  std::uniform_real_distribution<double> u(0.0, 1.0);
  // Each enqueue/poll event gives every parked message an independent chance
  // to be delivered, from a random position — this is what reorders traffic.
  std::size_t i = 0;
  while (i < box.delayed.size()) {
    if (u(box.rng) < 0.5) {
      std::uniform_int_distribution<std::size_t> pick(0, box.delayed.size() - 1);
      const std::size_t j = pick(box.rng);
      box.queue.push_back(std::move(box.delayed[j]));
      box.delayed.erase(box.delayed.begin() + static_cast<std::ptrdiff_t>(j));
    } else {
      ++i;
    }
  }
}

void Transport::send(int dst, Message m) {
  record(m, dst);
  send_unrecorded(dst, std::move(m));
}

void Transport::send_unrecorded(int dst, Message m) {
  assert(dst >= 0 && dst < cfg_.places);
  // Reliability stamping: one branch when the layer is off (zero-cost
  // passthrough). Anonymous sources (src < 0) cannot own a retransmit queue
  // and ship unsequenced, exactly as before.
  if (reliability_enabled() && m.src >= 0 && m.src < cfg_.places &&
      !(m.rflags & kMsgAckOnly)) {
    retx_stamp(dst, m);
  }
  wire_or_remote(dst, std::move(m));
}

void Transport::wire_or_remote(int dst, Message&& m) {
  if (multi_proc_ && dst != local_place_) {
    ship_remote(dst, std::move(m));
    return;
  }
  wire_deliver(dst, std::move(m));
}

void Transport::attach_backend(std::unique_ptr<Backend> backend,
                               int local_place) {
  assert(backend && local_place >= 0 && local_place < cfg_.places);
  if (backend->multi_process() && !reliability_enabled()) {
    std::fprintf(stderr,
                 "[x10rt] fatal: a multi-process backend requires the "
                 "reliability sublayer (set retx_timeout_us > 0 / "
                 "APGAS_RETX_TIMEOUT_US): cross-process teardown drives "
                 "the retransmit queues to the all-acked fixpoint\n");
    std::abort();
  }
  backend_ = std::move(backend);
  multi_proc_ = backend_->multi_process();
  local_place_ = backend_->local_place();
  assert(!multi_proc_ || local_place_ == local_place);
  backend_->start([this](int peer, const std::uint8_t* data, std::size_t len) {
    deliver_frame(peer, data, len);
  });
}

void Transport::ship_remote(int dst, Message&& m) {
  frame::Header h;
  if ((m.rflags & kMsgAckOnly) != 0) {
    h.kind = frame::Kind::kAckOnly;
  } else if ((m.rflags & kMsgEnvelope) != 0) {
    h.kind = frame::Kind::kEnvelope;
  } else if (m.handler >= 0) {
    h.kind = frame::Kind::kAm;
  } else {
    std::fprintf(stderr,
                 "[x10rt] fatal: %s message to remote place %d has no wire "
                 "form — closures cannot cross a process boundary (use "
                 "registered AMs / asyncAtFrame)\n",
                 msg_type_name(m.type), dst);
    std::abort();
  }
  h.rflags = m.rflags;
  h.type = m.type;
  h.src = m.src;
  h.handler = m.handler;
  h.seq = m.seq;
  h.ack = m.ack;
  h.t_send_ns = m.t_send_ns;
  const std::byte* payload = nullptr;
  std::size_t n = 0;
  if (m.wire) {
    payload = m.wire->data();
    n = m.wire->size();
  }
  backend_->send_frame(dst, frame::encode(h, payload, n));
}

void Transport::deliver_frame(int peer, const std::uint8_t* data,
                              std::size_t len) {
  const char* err = frame::validate(data, len, cfg_.places,
                                    static_cast<int>(am_handlers_.size()));
  frame::Header h;
  if (err == nullptr) {
    h = frame::decode_header(data);
    if (h.src != peer) err = "src place does not match the arrival socket";
  }
  if (err != nullptr) {
    std::fprintf(stderr, "[x10rt] fatal: malformed frame from place %d: %s\n",
                 peer, err);
    std::abort();
  }
  Message m;
  m.type = h.type;
  m.src = h.src;
  m.seq = h.seq;
  m.ack = h.ack;
  m.t_send_ns = h.t_send_ns;
  m.bytes = h.payload_len;
  m.rflags = h.rflags | kMsgXProc;
  switch (h.kind) {
    case frame::Kind::kAckOnly:
      m.run = [] {};
      break;
    case frame::Kind::kAm: {
      std::vector<std::byte> payload(h.payload_len);
      std::memcpy(payload.data(), data + frame::kHeaderBytes, h.payload_len);
      const AmHandler* fn = &am_handlers_[static_cast<std::size_t>(h.handler)];
      m.handler = h.handler;
      // mutable + move: each chaos-dup copy of the Message deep-copies the
      // closure (and its payload), so a single run consuming the storage
      // is safe.
      m.run = [this, fn, payload = std::move(payload)]() mutable {
        ByteBuffer buf{std::move(payload)};
        (*fn)(buf);
        pool_.release(buf.take_data());
      };
      break;
    }
    case frame::Kind::kEnvelope: {
      std::vector<std::byte> train(h.payload_len);
      std::memcpy(train.data(), data + frame::kHeaderBytes, h.payload_len);
      const int env_src = h.src;
      const int env_dst = local_place_;
      m.run = [this, env_src, env_dst, train = std::move(train)]() mutable {
        deliver_envelope(env_src, env_dst, ByteBuffer{std::move(train)});
      };
      break;
    }
  }
  // Into the *local* inbox: chaos injection, dedup at poll, and sleeper
  // wakeup all apply exactly as for an in-process arrival.
  wire_deliver(local_place_, std::move(m));
}

bool Transport::recv_all_acked(int place) const {
  if (!reliability_enabled() || place < 0 || place >= cfg_.places) return true;
  auto& shard = *recv_[static_cast<std::size_t>(place)];
  std::scoped_lock lock(shard.mu);
  for (const auto& rp : shard.per_src) {
    if (rp.cum > rp.acked_sent) return false;
  }
  return true;
}

void Transport::wire_deliver(int dst, Message m) {
  auto& box = *inboxes_[static_cast<std::size_t>(dst)];
  {
    std::scoped_lock lock(box.mu);
    enqueue_locked(box, std::move(m));
  }
  // Sleeper-elided signal: the mutex release above is not a full barrier, so
  // the fence orders the enqueue before the sleeper read (Dekker with the
  // enter_idle RMW on the consumer side — docs/scheduler.md).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (box.sleepers.load(std::memory_order_relaxed) > 0) box.cv.notify_one();
}

void Transport::retx_stamp(int dst, Message& m) {
  const int src = m.src;
  const std::uint64_t now = mono_ns();
  {
    auto& shard = *retx_[static_cast<std::size_t>(src)];
    std::scoped_lock lock(shard.mu);
    auto& pair = shard.per_dst[static_cast<std::size_t>(dst)];
    m.seq = ++pair.next_seq;
    RetxEntry e;
    e.first_send_ns = now;
    // Adaptive per-pair initial timeout when a controller has estimated one
    // (autotune.h); the static knob otherwise. Backoff doubling and its cap
    // are unchanged either way.
    e.backoff_us = pair.rto_us != 0 ? pair.rto_us : cfg_.retx_timeout_us;
    e.next_retx_ns = now + e.backoff_us * 1000;
    e.attempts = 1;
    // Retained after the seq is stamped; the piggybacked ack below is *not*
    // part of the retained copy — retransmits refresh it at pump time.
    e.copy = m;
    pair.unacked.emplace(m.seq, std::move(e));
  }
  retx_sent_.fetch_add(1, std::memory_order_relaxed);
  // Piggyback the cumulative ack for the reverse direction (dst -> src
  // traffic delivered at src). Separate critical section: sender-shard and
  // receiver-shard locks are never nested.
  {
    auto& shard = *recv_[static_cast<std::size_t>(src)];
    std::scoped_lock lock(shard.mu);
    auto& rp = shard.per_src[static_cast<std::size_t>(dst)];
    m.ack = rp.cum;
    m.rflags |= kMsgHasAck;
    rp.acked_sent = rp.cum;
    rp.owed_since_ns = 0;
  }
}

bool Transport::retx_admit(int place, Message& m) {
  const int peer = m.src;
  if ((m.rflags & kMsgHasAck) != 0 && peer >= 0 && peer < cfg_.places) {
    retx_process_ack(place, peer, m.ack);
  }
  if ((m.rflags & kMsgAckOnly) != 0) return false;  // consumed at admission
  if (m.seq == 0) return true;                      // unsequenced passthrough
  bool fresh = false;
  {
    auto& shard = *recv_[static_cast<std::size_t>(place)];
    std::scoped_lock lock(shard.mu);
    auto& rp = shard.per_src[static_cast<std::size_t>(peer)];
    if (m.seq <= rp.cum || rp.above.count(m.seq) != 0) {
      // Duplicate. Its arrival proves the sender has not seen our
      // cumulative ack (a piggybacked ack can ride a dropped message), so
      // roll the communicated mark back to force a re-ack — standalone acks
      // are unsequenced and can never be dropped, so this guarantees the
      // sender's retransmit queue eventually drains.
      if (m.seq <= rp.cum && rp.acked_sent >= m.seq) {
        rp.acked_sent = m.seq - 1;
      }
      if (rp.owed_since_ns == 0) rp.owed_since_ns = mono_ns();
    } else {
      fresh = true;
      if (m.seq == rp.cum + 1) {
        rp.cum = m.seq;
        while (!rp.above.empty() && *rp.above.begin() == rp.cum + 1) {
          rp.above.erase(rp.above.begin());
          ++rp.cum;
        }
      } else {
        rp.above.insert(m.seq);
      }
      if (rp.cum > rp.acked_sent && rp.owed_since_ns == 0) {
        rp.owed_since_ns = mono_ns();
      }
    }
  }
  if (!fresh) {
    retx_dups_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Transport::retx_process_ack(int place, int peer, std::uint64_t ack) {
  struct AckedHook {
    std::uint64_t latency_ns;
    std::uint32_t attempts;
  };
  std::vector<AckedHook> hooked;
  std::uint64_t n = 0;
  std::uint64_t rtt_sample = 0;
  {
    auto& shard = *retx_[static_cast<std::size_t>(place)];
    std::scoped_lock lock(shard.mu);
    auto& pair = shard.per_dst[static_cast<std::size_t>(peer)];
    if (ack <= pair.cum_acked) return;
    pair.cum_acked = ack;
    const std::uint64_t now =
        ((cfg_.retx_acked_hook || cfg_.rtt_sample_hook) &&
         !pair.unacked.empty())
            ? mono_ns()
            : 0;
    auto it = pair.unacked.begin();
    while (it != pair.unacked.end() && it->first <= ack) {
      ++n;
      if (it->second.attempts > 1 && cfg_.retx_acked_hook) {
        const std::uint64_t lat =
            now > it->second.first_send_ns ? now - it->second.first_send_ns : 1;
        hooked.push_back({lat, it->second.attempts});
      } else if (it->second.attempts == 1 && cfg_.rtt_sample_hook) {
        // Karn's rule: only never-retransmitted sequences produce RTT
        // samples. Keep the newest (highest seq = latest first send) so one
        // cumulative ack contributes at most one sample.
        rtt_sample =
            now > it->second.first_send_ns ? now - it->second.first_send_ns : 1;
      }
      it = pair.unacked.erase(it);
    }
  }
  if (n > 0) retx_acked_.fetch_add(n, std::memory_order_relaxed);
  for (const auto& h : hooked) {
    cfg_.retx_acked_hook(place, peer, h.latency_ns, h.attempts);
  }
  if (rtt_sample != 0) cfg_.rtt_sample_hook(place, peer, rtt_sample);
}

void Transport::retx_maybe_pump(int place) {
  auto& next = *retx_next_pump_[static_cast<std::size_t>(place)];
  const std::uint64_t now = mono_ns();
  std::uint64_t prev = next.load(std::memory_order_relaxed);
  if (now < prev) return;
  // One poller wins the tick; everyone else skips — the pump itself takes
  // the shard locks, so admission control here keeps the hot path cheap.
  if (!next.compare_exchange_strong(prev, now + retx_pump_interval_ns_,
                                    std::memory_order_relaxed)) {
    return;
  }
  retx_pump(place, /*force=*/false);
}

std::size_t Transport::retx_pump(int place, bool force) {
  if (!reliability_enabled() || place < 0 || place >= cfg_.places) return 0;
  const std::uint64_t now = mono_ns();
  // Phase 1: timed-out retransmits. Collect copies under the sender shard
  // lock, refresh their piggybacked acks under the receiver shard lock, then
  // put them on the wire with no shard lock held.
  std::vector<std::pair<int, Message>> resend;
  struct TimeoutHook {
    int dst;
    std::uint64_t seq;
    std::uint32_t attempt;
  };
  std::vector<TimeoutHook> hooks;
  {
    auto& shard = *retx_[static_cast<std::size_t>(place)];
    std::scoped_lock lock(shard.mu);
    for (int d = 0; d < cfg_.places; ++d) {
      auto& pair = shard.per_dst[static_cast<std::size_t>(d)];
      for (auto& [seq, e] : pair.unacked) {
        if (!force && e.next_retx_ns > now) continue;
        if (cfg_.retx_timeout_hook) hooks.push_back({d, seq, e.attempts});
        ++e.attempts;
        e.backoff_us = std::min(e.backoff_us * 2, cfg_.retx_backoff_max_us);
        e.next_retx_ns = now + e.backoff_us * 1000;
        resend.emplace_back(d, e.copy);
      }
    }
  }
  // Phase 2: standalone acks for aged (or force-drained) ack debt. Only owed
  // when cum > acked_sent, so the teardown force loop cannot ping-pong acks
  // forever — an ack-only message never creates new debt at its receiver.
  std::vector<std::pair<int, Message>> acks;
  {
    auto& shard = *recv_[static_cast<std::size_t>(place)];
    std::scoped_lock lock(shard.mu);
    for (int s = 0; s < cfg_.places; ++s) {
      auto& rp = shard.per_src[static_cast<std::size_t>(s)];
      if (rp.cum <= rp.acked_sent) continue;
      const bool aged = rp.owed_since_ns != 0 &&
                        now - rp.owed_since_ns >=
                            cfg_.retx_ack_idle_us * 1000;
      if (!force && !aged) continue;
      Message a;
      a.run = [] {};
      a.type = MsgType::kControl;
      a.src = place;
      a.ack = rp.cum;
      a.rflags = kMsgHasAck | kMsgAckOnly;
      acks.emplace_back(s, std::move(a));
      rp.acked_sent = rp.cum;
      rp.owed_since_ns = 0;
    }
    // Refresh the retransmits' piggybacked acks while the lock is held.
    for (auto& [d, m] : resend) {
      auto& rp = shard.per_src[static_cast<std::size_t>(d)];
      m.ack = rp.cum;
      m.rflags |= kMsgHasAck;
      rp.acked_sent = std::max(rp.acked_sent, rp.cum);
      if (rp.acked_sent == rp.cum) rp.owed_since_ns = 0;
    }
  }
  for (const auto& h : hooks) {
    cfg_.retx_timeout_hook(place, h.dst, h.seq, h.attempt);
  }
  if (!resend.empty()) {
    retx_retransmits_.fetch_add(resend.size(), std::memory_order_relaxed);
  }
  if (!acks.empty()) {
    retx_standalone_acks_.fetch_add(acks.size(), std::memory_order_relaxed);
  }
  const std::size_t produced = resend.size() + acks.size();
  for (auto& [d, m] : resend) wire_or_remote(d, std::move(m));
  for (auto& [s, a] : acks) wire_or_remote(s, std::move(a));
  return produced;
}

bool Transport::retx_quiescent() const {
  if (!reliability_enabled()) return true;
  for (int p = 0; p < cfg_.places; ++p) {
    auto& shard = *retx_[static_cast<std::size_t>(p)];
    std::scoped_lock lock(shard.mu);
    for (const auto& pair : shard.per_dst) {
      if (!pair.unacked.empty()) return false;
    }
  }
  return true;
}

std::vector<Transport::RetxDiag> Transport::retx_unacked(int src) const {
  std::vector<RetxDiag> out;
  if (!reliability_enabled() || src < 0 || src >= cfg_.places) return out;
  const std::uint64_t now = mono_ns();
  auto& shard = *retx_[static_cast<std::size_t>(src)];
  std::scoped_lock lock(shard.mu);
  for (int d = 0; d < cfg_.places; ++d) {
    const auto& pair = shard.per_dst[static_cast<std::size_t>(d)];
    if (pair.unacked.empty()) continue;
    const auto& oldest = *pair.unacked.begin();
    RetxDiag diag;
    diag.dst = d;
    diag.oldest_seq = oldest.first;
    diag.age_ns = now > oldest.second.first_send_ns
                      ? now - oldest.second.first_send_ns
                      : 0;
    diag.depth = pair.unacked.size();
    out.push_back(diag);
  }
  return out;
}

std::optional<Message> Transport::poll(int place) {
  auto& box = *inboxes_[static_cast<std::size_t>(place)];
  if (!reliability_enabled()) {
    std::scoped_lock lock(box.mu);
    if (box.queue.empty() && !box.delayed.empty()) {
      // Chaos must not withhold the last messages forever: drain one now.
      std::uniform_int_distribution<std::size_t> pick(0,
                                                      box.delayed.size() - 1);
      const std::size_t j = pick(box.rng);
      box.queue.push_back(std::move(box.delayed[j]));
      box.delayed.erase(box.delayed.begin() + static_cast<std::ptrdiff_t>(j));
    }
    if (box.queue.empty()) return std::nullopt;
    Message m = std::move(box.queue.front());
    box.queue.pop_front();
    return m;
  }
  // Reliability path. Admission (ack processing / dedup / ack-only
  // consumption) runs *outside* the inbox lock: it takes the retx/recv shard
  // locks, and a self-send from retx_pump otherwise forms an inbox <-> shard
  // ordering cycle. The time-gated pump is also lock-free to enter.
  retx_maybe_pump(place);
  for (;;) {
    std::optional<Message> m;
    {
      std::scoped_lock lock(box.mu);
      if (box.queue.empty() && !box.delayed.empty()) {
        std::uniform_int_distribution<std::size_t> pick(
            0, box.delayed.size() - 1);
        const std::size_t j = pick(box.rng);
        box.queue.push_back(std::move(box.delayed[j]));
        box.delayed.erase(box.delayed.begin() +
                          static_cast<std::ptrdiff_t>(j));
      }
      if (!box.queue.empty()) {
        m = std::move(box.queue.front());
        box.queue.pop_front();
      }
    }
    if (!m) return std::nullopt;
    if (retx_admit(place, *m)) return m;
    // Duplicate or standalone ack: consumed here, try the next message.
  }
}

std::size_t Transport::poll_batch(int place, std::deque<Message>& out,
                                  std::size_t max) {
  auto& box = *inboxes_[static_cast<std::size_t>(place)];
  // Adaptive-tuning tick point on the poll hot path, decimated 1-in-64 so a
  // tight poll loop pays a load+store, not a clock read, per call. The
  // controller time-gates the actual tick; one branch when no controller.
  if (cfg_.tick_hook) {
    const std::uint64_t n = box.tick_polls.load(std::memory_order_relaxed);
    box.tick_polls.store(n + 1, std::memory_order_relaxed);
    if ((n & 63) == 0) cfg_.tick_hook(place);
  }
  if (!reliability_enabled()) {
    std::scoped_lock lock(box.mu);
    if (box.queue.empty() && !box.delayed.empty()) {
      // Chaos must not withhold the last messages forever: drain one now.
      // (Release check before the batch is taken — identical to poll().)
      std::uniform_int_distribution<std::size_t> pick(0,
                                                      box.delayed.size() - 1);
      const std::size_t j = pick(box.rng);
      box.queue.push_back(std::move(box.delayed[j]));
      box.delayed.erase(box.delayed.begin() + static_cast<std::ptrdiff_t>(j));
    }
    std::size_t n = 0;
    while (n < max && !box.queue.empty()) {
      out.push_back(std::move(box.queue.front()));
      box.queue.pop_front();
      ++n;
    }
    return n;
  }
  // Reliability path: take a raw batch under the lock, filter through
  // admission outside it (same lock-ordering argument as poll()). Callers
  // treat a zero return as "inbox empty", so a batch that admits nothing —
  // a retransmit storm of duplicates, or standalone acks — must not end
  // the call while raw messages remain queued: keep taking batches until
  // something is admitted or the queue is actually drained.
  retx_maybe_pump(place);
  std::size_t n = 0;
  for (;;) {
    std::deque<Message> raw;
    {
      std::scoped_lock lock(box.mu);
      if (box.queue.empty() && !box.delayed.empty()) {
        std::uniform_int_distribution<std::size_t> pick(0,
                                                        box.delayed.size() - 1);
        const std::size_t j = pick(box.rng);
        box.queue.push_back(std::move(box.delayed[j]));
        box.delayed.erase(box.delayed.begin() + static_cast<std::ptrdiff_t>(j));
      }
      std::size_t taken = 0;
      while (taken < max && !box.queue.empty()) {
        raw.push_back(std::move(box.queue.front()));
        box.queue.pop_front();
        ++taken;
      }
    }
    if (raw.empty()) return n;
    for (auto& m : raw) {
      if (retx_admit(place, m)) {
        out.push_back(std::move(m));
        ++n;
      }
    }
    if (n > 0) return n;
  }
}

bool Transport::wait_nonempty(int place, std::chrono::microseconds timeout) {
  auto& box = *inboxes_[static_cast<std::size_t>(place)];
  std::unique_lock lock(box.mu);
  box.cv.wait_for(lock, timeout, [&box] {
    return !box.queue.empty() || !box.delayed.empty() || box.notified;
  });
  box.notified = false;
  return !box.queue.empty() || !box.delayed.empty();
}

void Transport::enter_idle(int place) {
  auto& box = *inboxes_[static_cast<std::size_t>(place)];
  box.sleepers.fetch_add(1, std::memory_order_seq_cst);
  // Order the sleeper announcement before the caller's subsequent work
  // re-check (the other half of the Dekker handshake with producers).
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void Transport::exit_idle(int place) {
  auto& box = *inboxes_[static_cast<std::size_t>(place)];
  box.sleepers.fetch_sub(1, std::memory_order_relaxed);
}

int Transport::sleepers(int place) const {
  return inboxes_[static_cast<std::size_t>(place)]->sleepers.load(
      std::memory_order_relaxed);
}

void Transport::notify(int place) {
  auto& box = *inboxes_[static_cast<std::size_t>(place)];
  {
    std::scoped_lock lock(box.mu);
    box.notified = true;
  }
  box.cv.notify_all();
}

void Transport::notify_if_sleeping(int place) {
  auto& box = *inboxes_[static_cast<std::size_t>(place)];
  // The producer published its work (deque bottom_ release-store or overflow
  // push) before calling; the fence orders that store before the sleeper
  // read so producer and sleeper cannot both take their fast paths.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (box.sleepers.load(std::memory_order_relaxed) == 0) return;
  {
    std::scoped_lock lock(box.mu);
    box.notified = true;
  }
  box.cv.notify_one();
}

void Transport::register_range(int place, const void* base, std::size_t len) {
  std::unique_lock lock(reg_mu_);
  ranges_[static_cast<std::size_t>(place)].emplace_back(
      static_cast<const std::byte*>(base), len);
}

bool Transport::is_registered(int place, const void* addr,
                              std::size_t len) const {
  std::shared_lock lock(reg_mu_);
  const auto* a = static_cast<const std::byte*>(addr);
  for (const auto& [base, n] : ranges_[static_cast<std::size_t>(place)]) {
    if (a >= base && a + len <= base + n) return true;
  }
  return false;
}

void Transport::submit_dma(DmaOp op, MsgType completion_type) {
  rdma_ops_.fetch_add(1, std::memory_order_relaxed);
  rdma_bytes_.fetch_add(op.n, std::memory_order_relaxed);
  if (dma_workers_.empty()) {
    // Synchronous fallback (dma_threads = 0).
    std::memcpy(op.dst, op.src, op.n);
    if (op.on_complete) {
      send(op.initiator, Message{std::move(op.on_complete), completion_type,
                                 0, op.initiator});
    }
    return;
  }
  {
    std::scoped_lock lock(dma_mu_);
    dma_queue_.emplace_back(std::move(op), completion_type);
  }
  dma_cv_.notify_one();
}

void Transport::dma_loop() {
  for (;;) {
    std::pair<DmaOp, MsgType> item;
    {
      std::unique_lock lock(dma_mu_);
      dma_cv_.wait(lock, [this] { return dma_stop_ || !dma_queue_.empty(); });
      if (dma_queue_.empty()) return;  // stop requested and drained
      item = std::move(dma_queue_.front());
      dma_queue_.pop_front();
    }
    auto& [op, type] = item;
    std::memcpy(op.dst, op.src, op.n);
    if (op.on_complete) {
      send(op.initiator, Message{std::move(op.on_complete), type, 0,
                                 op.initiator});
    }
  }
}

namespace {
/// Shared-memory one-sided ops dereference the target address directly, so
/// under a multi-process backend a remote put/get/atomic would silently hit
/// this process's copy of the page — abort instead of corrupting.
void require_local(bool multi_proc, int local_place, int dst,
                   const char* what) {
  if (multi_proc && dst != local_place) {
    std::fprintf(stderr,
                 "[x10rt] fatal: %s to remote place %d is not supported by "
                 "the socket backend (one-sided ops are shared-memory only)\n",
                 what, dst);
    std::abort();
  }
}
}  // namespace

void Transport::put(int src, int dst, void* dst_addr, const void* src_addr,
                    std::size_t n, std::function<void()> on_complete) {
  require_local(multi_proc_, local_place_, dst, "RDMA put");
  assert(is_registered(dst, dst_addr, n) &&
         "RDMA put target must be registered memory");
  submit_dma(DmaOp{dst_addr, src_addr, n, src, std::move(on_complete)},
             MsgType::kRdma);
}

void Transport::get(int src, int dst, void* local_addr,
                    const void* remote_addr, std::size_t n,
                    std::function<void()> on_complete) {
  require_local(multi_proc_, local_place_, dst, "RDMA get");
  assert(is_registered(dst, remote_addr, n) &&
         "RDMA get source must be registered memory");
  submit_dma(DmaOp{local_addr, remote_addr, n, src, std::move(on_complete)},
             MsgType::kRdma);
}

void Transport::remote_xor64(int src, int dst, std::uint64_t* dst_addr,
                             std::uint64_t val) {
  (void)src;
  require_local(multi_proc_, local_place_, dst, "remote_xor64");
  assert(is_registered(dst, dst_addr, sizeof(std::uint64_t)));
  rdma_ops_.fetch_add(1, std::memory_order_relaxed);
  rdma_bytes_.fetch_add(sizeof(std::uint64_t), std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t>(*dst_addr)
      .fetch_xor(val, std::memory_order_relaxed);
}

void Transport::remote_add64(int src, int dst, std::uint64_t* dst_addr,
                             std::uint64_t val) {
  (void)src;
  require_local(multi_proc_, local_place_, dst, "remote_add64");
  assert(is_registered(dst, dst_addr, sizeof(std::uint64_t)));
  rdma_ops_.fetch_add(1, std::memory_order_relaxed);
  rdma_bytes_.fetch_add(sizeof(std::uint64_t), std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t>(*dst_addr)
      .fetch_add(val, std::memory_order_relaxed);
}

int Transport::register_am(AmHandler handler) {
  am_handlers_.push_back(std::move(handler));
  return static_cast<int>(am_handlers_.size()) - 1;
}

void Transport::send_am(int src, int dst, int handler, ByteBuffer payload,
                        MsgType type) {
  assert(handler >= 0 &&
         handler < static_cast<int>(am_handlers_.size()) &&
         "send_am with unregistered handler");
  const std::size_t wire = payload.size() + sizeof(int);
  // The flush threshold is the per-pair dynamic one when a controller has
  // set it, the static cap otherwise (dyn 0 = untouched, so the disabled
  // path costs exactly one relaxed load here). Admission and the size-flush
  // decision below use the same captured value: a threshold below the
  // record size diverts the pair's sends to the direct path.
  std::size_t cap = 0;
  std::size_t dyn = 0;
  if (coalescing_enabled() && src >= 0 && src < cfg_.places) {
    dyn = coalesce_[static_cast<std::size_t>(src)]
              ->dyn_bytes[static_cast<std::size_t>(dst)]
              .load(std::memory_order_relaxed);
    cap = dyn != 0 ? dyn : cfg_.coalesce_bytes;
  }
  if (cap != 0 && envelope::kRecordHeaderBytes + payload.size() < cap) {
    // Coalesced path. The logical message is accounted *now* (per record,
    // per class) so protocol metrics don't depend on when the wire flushes.
    count_logical(src, dst, type, wire);
    ByteBuffer ready;
    std::uint32_t ready_records = 0;
    std::uint64_t ready_open_ns = 0;
    FlushReason reason = FlushReason::kSize;
    bool ship = false;
    std::vector<std::vector<std::byte>> recycle;
    {
      auto& shard = *coalesce_[static_cast<std::size_t>(src)];
      std::scoped_lock lock(shard.mu);
      shard.dirty.store(true, std::memory_order_relaxed);
      auto& w = shard.per_dst[static_cast<std::size_t>(dst)];
      if (!w.is_open()) {
        // Envelope storage comes from the shard's spare stash when it has
        // one (no pool lock), from the pool otherwise.
        if (!shard.spare.empty()) {
          std::vector<std::byte> s = std::move(shard.spare.back());
          shard.spare.pop_back();
          s.clear();
          w.open(std::move(s));
        } else {
          w.open(pool_.acquire());
        }
        shard.active.push_back(dst);
        shard.open_ns[static_cast<std::size_t>(dst)] = mono_ns();
      }
      w.append(handler, payload);
      // The payload was copied into the envelope; park its storage in the
      // shard (lock already held) and recycle per envelope, not per record.
      shard.spare.push_back(payload.take_data());
      if (w.bytes() >= cap) {
        ship = true;
        reason = FlushReason::kSize;
      } else if (w.records() >=
                 static_cast<std::uint32_t>(cfg_.coalesce_msgs)) {
        ship = true;
        reason = FlushReason::kCount;
      }
      constexpr std::size_t kSpareCap = 128;
      if (ship || shard.spare.size() >= kSpareCap) {
        recycle.swap(shard.spare);
      }
      if (ship) {
        ready_records = w.records();
        ready = w.close();
        ready_open_ns = shard.open_ns[static_cast<std::size_t>(dst)];
        shard.open_ns[static_cast<std::size_t>(dst)] = 0;
        shard.active.erase(
            std::find(shard.active.begin(), shard.active.end(), dst));
      }
    }
    if (!recycle.empty()) pool_.release_batch(std::move(recycle));
    if (ship) {
      ship_envelope(src, dst, std::move(ready), ready_records, reason,
                    ready_open_ns);
    }
    return;
  }
  if (coalescing_enabled()) {
    if (dyn != 0 &&
        envelope::kRecordHeaderBytes + payload.size() < cfg_.coalesce_bytes) {
      // Small enough for the static cap — the dynamic threshold diverted it.
      // Counted per pair only (the controller's probe-up signal); the global
      // bypass counter keeps meaning "record too large to coalesce". The
      // bump is a load+store pair, not an RMW: this is a rate estimate, not
      // protocol books, and increments lost to concurrent senders only dull
      // the estimate while keeping the collapsed path near the disabled
      // path's cost.
      auto& byp = coalesce_[static_cast<std::size_t>(src)]
                      ->dyn_bypass[static_cast<std::size_t>(dst)];
      byp.store(byp.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    } else {
      coalesce_bypass_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Message m;
  m.src = src;
  m.type = type;
  m.bytes = wire;
  if (multi_proc_ && dst != local_place_) {
    // Wire form instead of a closure: handler id + serialized payload. The
    // retained retransmit copy shares the payload through m.wire.
    m.handler = handler;
    m.wire = std::make_shared<const std::vector<std::byte>>(payload.take_data());
    send(dst, std::move(m));
    return;
  }
  const AmHandler* fn = &am_handlers_[static_cast<std::size_t>(handler)];
  m.run = [this, fn, payload = std::move(payload)]() mutable {
    payload.rewind();
    (*fn)(payload);
    pool_.release(payload.take_data());
  };
  send(dst, std::move(m));
}

void Transport::ship_envelope(int src, int dst, ByteBuffer env,
                              std::uint32_t records, FlushReason reason,
                              std::uint64_t open_ns) {
  coalesce_envelopes_.fetch_add(1, std::memory_order_relaxed);
  coalesce_records_.fetch_add(records, std::memory_order_relaxed);
  coalesce_wire_bytes_.fetch_add(env.size(), std::memory_order_relaxed);
  coalesce_flush_counts_[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  if (cfg_.flush_hook) {
    // Clamp a stamped residency to >= 1ns so "envelope count by nonzero
    // residency" holds even if the clock did not tick between open and ship.
    std::uint64_t residency = 0;
    if (open_ns != 0) {
      const std::uint64_t now = mono_ns();
      residency = now > open_ns ? now - open_ns : 1;
    }
    cfg_.flush_hook(src, dst, records, reason, residency);
  }
  Message m;
  m.src = src;
  m.type = MsgType::kControl;
  m.bytes = env.size();
  if (multi_proc_ && dst != local_place_) {
    m.rflags |= kMsgEnvelope;
    m.wire = std::make_shared<const std::vector<std::byte>>(env.take_data());
  } else {
    m.run = [this, src, dst, env = std::move(env)]() mutable {
      deliver_envelope(src, dst, std::move(env));
    };
  }
  // The records were counted at send_am time; the envelope itself must not
  // inflate the per-class statistics.
  send_unrecorded(dst, std::move(m));
}

void Transport::deliver_envelope(int src, int dst, ByteBuffer env) {
  // Each record becomes its own inbox message — running handlers inline
  // here would deadlock: a spawn record's activity body runs synchronously
  // (rt_am_spawn -> run_activity) and may block on a rendezvous whose reply
  // rides a LATER record of this same train. The blocked activity's nested
  // inbox pump drains the inbox, not this stack frame, so the trapped
  // records would never deliver. Re-enqueued one by one, coalesced delivery
  // is behaviourally identical to the uncoalesced path. The records carry
  // no reliability sequence (the envelope itself was the sequenced wire
  // unit), so chaos drop/dup — which would be un-retransmittable here —
  // never applies to them.
  envelope::for_each_record(
      env, [this, src, dst](int handler, ByteBuffer& buf, std::uint32_t len) {
        assert(handler >= 0 &&
               handler < static_cast<int>(am_handlers_.size()) &&
               "envelope record names an unregistered handler");
        // Copy the record out so the handler sees the exact contract of the
        // direct path: a standalone ByteBuffer with cursor 0,
        // size() == payload size.
        std::vector<std::byte> storage = pool_.acquire();
        storage.clear();
        storage.resize(len);
        buf.get_raw(storage.data(), len);
        const AmHandler* fn = &am_handlers_[static_cast<std::size_t>(handler)];
        Message m;
        m.src = src;
        m.type = MsgType::kControl;
        m.bytes = len + sizeof(int);
        m.run = [this, fn,
                 payload = ByteBuffer{std::move(storage)}]() mutable {
          (*fn)(payload);
          pool_.release(payload.take_data());
        };
        wire_deliver(dst, std::move(m));
      });
  pool_.release(env.take_data());
}

std::size_t Transport::flush_coalesced(int src, FlushReason reason) {
  if (!coalescing_enabled() || src < 0 || src >= cfg_.places) return 0;
  auto& shard = *coalesce_[static_cast<std::size_t>(src)];
  // Nothing parked and nothing to recycle: return without the shard lock.
  // Idle-hook flushes hit this constantly on pairs the dynamic threshold
  // collapsed (every send went direct), and the flush must cost one load
  // there. A racing sender that sets `dirty` after this load loses nothing:
  // its record is caught by the next flush attempt or by its own size/count
  // trigger.
  if (!shard.dirty.load(std::memory_order_relaxed)) return 0;
  // Seal everything under the shard lock, ship outside it: ship_envelope
  // takes the destination inbox mutex and runs the flush hook, neither of
  // which belongs in the shard critical section.
  std::vector<std::tuple<int, ByteBuffer, std::uint32_t, std::uint64_t>> ready;
  std::vector<std::vector<std::byte>> recycle;
  {
    std::scoped_lock lock(shard.mu);
    shard.dirty.store(false, std::memory_order_relaxed);
    recycle.swap(shard.spare);
    if (shard.active.empty()) {
      if (recycle.empty()) return 0;
    } else {
      ready.reserve(shard.active.size());
      for (int dst : shard.active) {
        auto& w = shard.per_dst[static_cast<std::size_t>(dst)];
        assert(w.is_open() && w.records() > 0);
        const std::uint32_t n = w.records();
        ready.emplace_back(dst, w.close(), n,
                           shard.open_ns[static_cast<std::size_t>(dst)]);
        shard.open_ns[static_cast<std::size_t>(dst)] = 0;
      }
      shard.active.clear();
    }
  }
  if (!recycle.empty()) pool_.release_batch(std::move(recycle));
  for (auto& [dst, env, n, opened] : ready) {
    ship_envelope(src, dst, std::move(env), n, reason, opened);
  }
  return ready.size();
}

void Transport::set_coalesce_threshold(int src, int dst, std::size_t bytes) {
  if (!coalescing_enabled() || src < 0 || src >= cfg_.places || dst < 0 ||
      dst >= cfg_.places) {
    return;
  }
  if (bytes > cfg_.coalesce_bytes) bytes = cfg_.coalesce_bytes;
  coalesce_[static_cast<std::size_t>(src)]
      ->dyn_bytes[static_cast<std::size_t>(dst)]
      .store(bytes, std::memory_order_relaxed);
}

std::size_t Transport::coalesce_threshold(int src, int dst) const {
  if (!coalescing_enabled() || src < 0 || src >= cfg_.places || dst < 0 ||
      dst >= cfg_.places) {
    return 0;
  }
  const std::size_t dyn = coalesce_[static_cast<std::size_t>(src)]
                              ->dyn_bytes[static_cast<std::size_t>(dst)]
                              .load(std::memory_order_relaxed);
  return dyn != 0 ? dyn : cfg_.coalesce_bytes;
}

std::uint64_t Transport::coalesce_dyn_bypass(int src, int dst) const {
  if (!coalescing_enabled() || src < 0 || src >= cfg_.places || dst < 0 ||
      dst >= cfg_.places) {
    return 0;
  }
  return coalesce_[static_cast<std::size_t>(src)]
      ->dyn_bypass[static_cast<std::size_t>(dst)]
      .load(std::memory_order_relaxed);
}

void Transport::set_retx_rto(int src, int dst, std::uint64_t rto_us) {
  if (!reliability_enabled() || src < 0 || src >= cfg_.places || dst < 0 ||
      dst >= cfg_.places) {
    return;
  }
  auto& shard = *retx_[static_cast<std::size_t>(src)];
  std::scoped_lock lock(shard.mu);
  shard.per_dst[static_cast<std::size_t>(dst)].rto_us = rto_us;
}

std::uint64_t Transport::retx_rto_us(int src, int dst) const {
  if (!reliability_enabled() || src < 0 || src >= cfg_.places || dst < 0 ||
      dst >= cfg_.places) {
    return 0;
  }
  auto& shard = *retx_[static_cast<std::size_t>(src)];
  std::scoped_lock lock(shard.mu);
  const std::uint64_t dyn =
      shard.per_dst[static_cast<std::size_t>(dst)].rto_us;
  return dyn != 0 ? dyn : cfg_.retx_timeout_us;
}

std::uint64_t Transport::count(MsgType t) const {
  return counts_[static_cast<std::size_t>(t)].load(std::memory_order_relaxed);
}

std::uint64_t Transport::bytes(MsgType t) const {
  return bytes_[static_cast<std::size_t>(t)].load(std::memory_order_relaxed);
}

std::uint64_t Transport::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Transport::pair_count(int src, int dst) const {
  assert(cfg_.count_pairs);
  return pair_counts_[static_cast<std::size_t>(src) * cfg_.places + dst].load(
      std::memory_order_relaxed);
}

int Transport::max_out_degree() const {
  assert(cfg_.count_pairs);
  int max_deg = 0;
  for (int s = 0; s < cfg_.places; ++s) {
    int deg = 0;
    for (int d = 0; d < cfg_.places; ++d) {
      if (pair_count(s, d) > 0) ++deg;
    }
    max_deg = std::max(max_deg, deg);
  }
  return max_deg;
}

std::uint64_t Transport::ctrl_pair_count(int src, int dst) const {
  assert(cfg_.count_pairs);
  return ctrl_pair_counts_[static_cast<std::size_t>(src) * cfg_.places + dst]
      .load(std::memory_order_relaxed);
}

int Transport::max_ctrl_out_degree() const {
  assert(cfg_.count_pairs);
  int max_deg = 0;
  for (int s = 0; s < cfg_.places; ++s) {
    int deg = 0;
    for (int d = 0; d < cfg_.places; ++d) {
      if (ctrl_pair_count(s, d) > 0) ++deg;
    }
    max_deg = std::max(max_deg, deg);
  }
  return max_deg;
}

std::size_t Transport::inbox_depth(int place) const {
  if (place < 0 || place >= cfg_.places) return 0;
  Inbox& box = *inboxes_[static_cast<std::size_t>(place)];
  std::scoped_lock lock(box.mu);
  return box.queue.size() + box.delayed.size();
}

std::size_t Transport::coalesce_open_envelopes(int src) const {
  if (!coalescing_enabled() || src < 0 || src >= cfg_.places) return 0;
  CoalesceShard& shard = *coalesce_[static_cast<std::size_t>(src)];
  std::scoped_lock lock(shard.mu);
  return shard.active.size();
}

void Transport::reset_stats() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (auto& b : bytes_) b.store(0, std::memory_order_relaxed);
  rdma_ops_.store(0);
  rdma_bytes_.store(0);
  coalesce_envelopes_.store(0, std::memory_order_relaxed);
  coalesce_records_.store(0, std::memory_order_relaxed);
  coalesce_wire_bytes_.store(0, std::memory_order_relaxed);
  coalesce_bypass_.store(0, std::memory_order_relaxed);
  for (auto& f : coalesce_flush_counts_) f.store(0, std::memory_order_relaxed);
  retx_sent_.store(0, std::memory_order_relaxed);
  retx_acked_.store(0, std::memory_order_relaxed);
  retx_retransmits_.store(0, std::memory_order_relaxed);
  retx_dups_dropped_.store(0, std::memory_order_relaxed);
  retx_standalone_acks_.store(0, std::memory_order_relaxed);
  chaos_dropped_.store(0, std::memory_order_relaxed);
  chaos_duped_.store(0, std::memory_order_relaxed);
  chaos_bypass_.store(0, std::memory_order_relaxed);
  for (auto& pc : pair_counts_) pc.store(0, std::memory_order_relaxed);
  for (auto& pc : ctrl_pair_counts_) pc.store(0, std::memory_order_relaxed);
}

}  // namespace x10rt
