// X10RT: the transport layer of the X10 runtime stack (paper §3.3).
//
// The real X10RT is a thin API over PAMI / MPI / TCP sockets. This
// implementation realizes the same API surface over shared memory: every
// place owns a FIFO inbox of messages, and the only sanctioned way for places
// to interact is
//   * send()            — active messages (tasks, control, collectives, data)
//   * put()/get()       — one-sided RDMA on *registered* memory, executed by a
//                         DMA engine thread, completion delivered to the
//                         initiator's inbox (models Torrent RDMA)
//   * remote_*64()      — remote atomic update ops (models the Torrent "GUPS"
//                         feature used by RandomAccess)
//
// A chaos mode delays and reorders queued messages. The paper's finish
// protocols must tolerate network reordering of control messages; the chaos
// decorator provides exactly that adversity under test.
//
// The transport counts every message by class and, optionally, by
// (source, destination) pair so benches can report control-message volume and
// communication-graph out-degree — the metrics §3.1 argues about.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "x10rt/backend.h"
#include "x10rt/buffer_pool.h"
#include "x10rt/envelope.h"
#include "x10rt/message.h"
#include "x10rt/serialization.h"

namespace x10rt {

/// Feature gate for callers (benches) whose sources must also compile
/// against the pre-batching transport.
#define APGAS_HAVE_POLL_BATCH 1

/// Feature gate for the sender-side coalescing layer (ISSUE 3).
#define APGAS_HAVE_COALESCE 1

/// Why a coalescing envelope left the sender (the flush-reason histogram in
/// transport.coalesce.flush.*).
enum class FlushReason : std::uint8_t {
  kSize,       // envelope reached coalesce_bytes
  kCount,      // envelope reached coalesce_msgs records
  kIdle,       // scheduler idle hook flushed the place's partial envelopes
  kQuiesce,    // explicit quiescence/teardown flush
  kImmediate,  // an immediate frame was appended: rendezvous traffic (Team
               // mail, GLB steals) must ship before the sender can block on
               // the reply, so the envelope is cut right away
};
inline constexpr int kNumFlushReasons = 5;

inline const char* flush_reason_name(FlushReason r) {
  switch (r) {
    case FlushReason::kSize: return "size";
    case FlushReason::kCount: return "count";
    case FlushReason::kIdle: return "idle";
    case FlushReason::kQuiesce: return "quiesce";
    case FlushReason::kImmediate: return "immediate";
  }
  return "?";
}

/// Feature gate for the reliability sublayer (ISSUE 5).
#define APGAS_HAVE_RELIABILITY 1

/// Feature gate for the adaptive-tuning mechanism (dynamic per-pair flush
/// thresholds + adaptive retransmit timers; ISSUE 8).
#define APGAS_HAVE_ADAPTIVE_TUNING 1

/// Chaos injection: with probability `delay_prob` a message is parked in a
/// side pool and released later in randomized order (delivery remains
/// guaranteed: pollers drain the pool once the main queue is empty). With
/// probability `drop_prob` a *sequenced* message is discarded at the wire and
/// with `dup_prob` an independent duplicate is injected — both require the
/// reliability sublayer (TransportConfig::retx_timeout_us > 0), which
/// retransmits the loss and dedups the copy; unsequenced messages are never
/// dropped or duplicated. All decisions come from the same deterministic
/// per-destination-place RNG stream as the delay decision (seed + place *
/// constant), so a (seed, probabilities) tuple names one adversary.
struct ChaosConfig {
  double delay_prob = 0.0;
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  std::size_t max_delayed = 64;

  [[nodiscard]] bool enabled() const {
    return delay_prob > 0.0 || drop_prob > 0.0 || dup_prob > 0.0;
  }
  [[nodiscard]] bool lossy() const { return drop_prob > 0.0 || dup_prob > 0.0; }
};

struct TransportConfig {
  int places = 1;
  ChaosConfig chaos;
  bool count_pairs = false;  ///< track per-(src,dst) message counts (O(P^2))
  int dma_threads = 1;       ///< RDMA engine threads (0 = synchronous RDMA)

  /// Sender-side coalescing: envelope flush threshold in wire bytes. 0
  /// disables the aggregation layer entirely (every send_am ships its own
  /// message, exactly the pre-ISSUE-3 behavior). See docs/transport.md.
  std::size_t coalesce_bytes = 0;
  /// Max records per envelope when coalescing is on.
  int coalesce_msgs = 64;
  /// Observability callback invoked once per shipped envelope (the runtime
  /// wires this to the flight recorder's coalesce.flush event and the
  /// envelope-residency histogram; the transport itself must stay
  /// runtime-agnostic). `residency_ns` is the open->flush dwell time of the
  /// envelope, clamped to >= 1 so hooked consumers can count envelopes by
  /// counting nonzero residencies.
  std::function<void(int src, int dst, std::uint32_t records, FlushReason,
                     std::uint64_t residency_ns)>
      flush_hook;

  // --- adaptive tuning hooks (docs/transport.md "Adaptive tuning") ---------
  // All unset by default; the transport never adapts on its own. An online
  // controller (runtime/autotune.h) installs them and drives
  // set_coalesce_threshold()/set_retx_rto() from what they report.

  /// Invoked from poll_batch() before the batch is taken — the controller's
  /// time-gated tick point on the poll hot path. Costs one branch when unset.
  std::function<void(int place)> tick_hook;

  /// First-transmission ack latency sample for a (src,dst) pair: fired from
  /// ack processing for the newest acked sequence that was never
  /// retransmitted (Karn's rule — a retransmitted sequence's latency is
  /// ambiguous and never sampled). At most one sample per processed ack.
  std::function<void(int src, int dst, std::uint64_t rtt_ns)> rtt_sample_hook;

  // --- reliability sublayer (docs/transport.md "Reliability") --------------

  /// Initial retransmit timeout in microseconds; 0 disables the reliability
  /// sublayer entirely — every send is a zero-cost passthrough with wire
  /// behavior bit-for-bit identical to the pre-reliability transport. When
  /// > 0, every message from a real source place is stamped with a
  /// per-(src,dst) sequence number, retained for retransmission until
  /// cumulatively acked, and deduplicated at the receiver.
  std::uint64_t retx_timeout_us = 0;
  /// Retransmit backoff cap: the per-entry timeout doubles after each
  /// retransmission up to this many microseconds.
  std::uint64_t retx_backoff_max_us = 50'000;
  /// A receiver owing an ack (delivered sequences not yet communicated) with
  /// no reverse traffic to piggyback on sends a standalone ack once the debt
  /// is this many microseconds old.
  std::uint64_t retx_ack_idle_us = 200;
  /// Observability callback fired when a retransmit timer expires (before the
  /// copy is re-sent). `attempt` counts sends of this sequence so far (1 =
  /// the original). The runtime wires this to the retx.timeout trace event.
  std::function<void(int src, int dst, std::uint64_t seq,
                     std::uint32_t attempt)>
      retx_timeout_hook;
  /// Observability callback fired when a sequence that needed at least one
  /// retransmission is finally acked; `latency_ns` spans first send -> ack.
  /// The runtime records it into the retx.ack_latency_ns histogram.
  std::function<void(int src, int dst, std::uint64_t latency_ns,
                     std::uint32_t attempts)>
      retx_acked_hook;
};

/// Shared-memory X10RT transport. Thread-safe; one instance per "job".
class Transport {
 public:
  explicit Transport(TransportConfig cfg);
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] int places() const { return cfg_.places; }

  // --- wire backend (docs/transport.md "Backends") -------------------------

  /// Replaces the default InProcBackend with a multi-process wire (the
  /// socket backend). Must happen before any traffic, from the thread that
  /// constructed the transport. `local_place` is the one place this process
  /// hosts: sends to it keep the in-process fast path, sends to every other
  /// place are encoded into frames and shipped through the backend, and
  /// inbound frames are delivered into the local inbox (so chaos injection
  /// and sleeper wakeups behave identically on both backends). Requires the
  /// reliability sublayer: teardown across processes is driven to the
  /// all-acked fixpoint, which needs acks to exist.
  void attach_backend(std::unique_ptr<Backend> backend, int local_place);

  /// True when places live in separate processes.
  [[nodiscard]] bool multi_process() const { return multi_proc_; }
  /// The place this process hosts; -1 when every place is in-process.
  [[nodiscard]] int local_place() const { return local_place_; }

  [[nodiscard]] BackendStats backend_stats() const { return backend_->stats(); }
  [[nodiscard]] std::vector<BackendPeerDiag> backend_diag() const {
    return backend_->diag();
  }
  /// Opportunistic push of backend tx backlogs (teardown drain loops).
  void backend_flush() { backend_->flush(); }
  /// True when the backend holds no undelivered outbound bytes for any peer.
  [[nodiscard]] bool backend_tx_drained() const {
    for (const auto& d : backend_->diag()) {
      if (d.tx_pending_bytes != 0) return false;
    }
    return true;
  }

  /// Receiver-side half of the all-acked fixpoint: true when every sequence
  /// delivered at `place` has been acked back to its sender (no owed ack
  /// debt). Trivially true when the reliability layer is off.
  [[nodiscard]] bool recv_all_acked(int place) const;

  /// Enqueues an active message for place `dst`. `m.src` must be the sending
  /// place (used for stats and chaos determinism).
  void send(int dst, Message m);

  // --- registered active-message handlers ----------------------------------
  // The real X10RT model: a handler id plus a serialized payload, rather
  // than a shipped closure. The runtime's control protocols (finish
  // snapshots/completions/credits, team transfers) ride these, so their
  // traffic is genuinely in wire form; a distributed port only has to
  // re-implement send()/send_am(), not the protocols.

  using AmHandler = std::function<void(ByteBuffer&)>;

  /// Registers a handler; returns its id. Registration happens during
  /// runtime startup, before any traffic. Not thread-safe against send_am.
  int register_am(AmHandler handler);

  /// Sends (handler id, payload) to `dst`; the destination scheduler invokes
  /// the handler with the payload's read cursor at 0.
  ///
  /// With coalescing enabled (cfg.coalesce_bytes > 0) small payloads from a
  /// real place (src >= 0) are *parked* in the per-(src,dst) envelope and
  /// only hit the destination inbox when the envelope flushes — by size,
  /// record count, or an explicit flush_coalesced() (the scheduler's idle
  /// hook / quiescence points). Per-class count/byte statistics always tally
  /// the *logical* message here, so control-volume metrics stay comparable
  /// whether or not the wire batches them.
  void send_am(int src, int dst, int handler, ByteBuffer payload,
               MsgType type = MsgType::kControl);

  /// Ships every pending envelope whose source place is `src`. Returns the
  /// number of envelopes sent. Cheap no-op when coalescing is off. Callers:
  /// the per-place scheduler idle hook (reason kIdle) and teardown
  /// quiescence (reason kQuiesce).
  std::size_t flush_coalesced(int src, FlushReason reason = FlushReason::kIdle);

  /// A ByteBuffer backed by pooled storage — frame encoders use this instead
  /// of a fresh vector so the control plane recycles wire buffers.
  [[nodiscard]] ByteBuffer acquire_buffer() {
    return ByteBuffer{pool_.acquire()};
  }
  /// Returns a buffer's storage to the pool.
  void recycle_buffer(ByteBuffer&& buf) { pool_.release(buf.take_data()); }

  [[nodiscard]] const BufferPool& pool() const { return pool_; }

  /// Non-blocking pop of the next deliverable message for `place`.
  std::optional<Message> poll(int place);

  /// Drains up to `max` deliverable messages for `place` into `out` under a
  /// single lock acquisition; returns the number appended. The chaos release
  /// check (delayed pool feeds the queue once it runs dry) happens *before*
  /// the batch is taken, exactly as in poll(), so reorder coverage under
  /// chaos is unchanged — batching only amortizes the lock.
  std::size_t poll_batch(int place, std::deque<Message>& out, std::size_t max);

  /// Blocks until the inbox for `place` is (probably) non-empty, it is woken
  /// via notify()/notify_if_sleeping(), or the timeout expires. Returns true
  /// if non-empty. Callers must bracket the call with enter_idle()/
  /// exit_idle() for the sleeper-elision handshake to be sound.
  bool wait_nonempty(int place, std::chrono::microseconds timeout);

  /// Marks the calling worker as (about to be) parked on `place`'s inbox.
  /// seq_cst so it forms a Dekker handshake with notify_if_sleeping(): the
  /// caller must re-check for work *after* enter_idle and only then call
  /// wait_nonempty (see docs/scheduler.md).
  void enter_idle(int place);
  void exit_idle(int place);

  /// Workers currently inside an enter_idle/exit_idle bracket.
  [[nodiscard]] int sleepers(int place) const;

  /// Wakes a scheduler blocked in wait_nonempty (used at shutdown). Always
  /// signals, regardless of the sleeper count.
  void notify(int place);

  /// Fast-path wakeup: signals only when a worker is actually parked (one
  /// seq_cst fence + one relaxed load when nobody is — no mutex, no CV).
  /// Producers of scheduler-local work (deque pushes, overflow pushes) call
  /// this; the common self-push case costs no syscall at all.
  void notify_if_sleeping(int place);

  // --- Registered memory + one-sided operations (paper §3.3) --------------

  /// Registers [base, base+len) at `place` as RDMA-eligible. Congruent
  /// allocator arenas are registered wholesale at startup.
  void register_range(int place, const void* base, std::size_t len);

  [[nodiscard]] bool is_registered(int place, const void* addr,
                                   std::size_t len) const;

  /// One-sided put: copies local memory into `dst_addr` at place `dst`
  /// without involving the destination scheduler. `on_complete` is delivered
  /// to the *initiator's* inbox once the transfer finishes. Both ends must be
  /// registered (asserted), mirroring real RDMA constraints.
  void put(int src, int dst, void* dst_addr, const void* src_addr,
           std::size_t n, std::function<void()> on_complete);

  /// One-sided get: copies remote memory into a local buffer.
  void get(int src, int dst, void* local_addr, const void* remote_addr,
           std::size_t n, std::function<void()> on_complete);

  /// Remote atomic XOR of a 64-bit word at place `dst` (the Torrent "GUPS"
  /// feature). Fire-and-forget, executed immediately on the caller thread —
  /// no destination CPU involvement, no completion event.
  void remote_xor64(int src, int dst, std::uint64_t* dst_addr,
                    std::uint64_t val);

  /// Remote atomic add, same contract as remote_xor64.
  void remote_add64(int src, int dst, std::uint64_t* dst_addr,
                    std::uint64_t val);

  // --- Statistics ----------------------------------------------------------

  [[nodiscard]] std::uint64_t count(MsgType t) const;
  [[nodiscard]] std::uint64_t bytes(MsgType t) const;
  [[nodiscard]] std::uint64_t total_messages() const;
  [[nodiscard]] std::uint64_t rdma_ops() const { return rdma_ops_.load(); }
  [[nodiscard]] std::uint64_t rdma_bytes() const { return rdma_bytes_.load(); }

  /// Per-pair message count; requires cfg.count_pairs.
  [[nodiscard]] std::uint64_t pair_count(int src, int dst) const;

  /// Largest number of distinct destinations any single place sent to;
  /// requires cfg.count_pairs. This is the out-degree metric FINISH_DENSE
  /// exists to bound.
  [[nodiscard]] int max_out_degree() const;

  /// Same, restricted to kControl messages (finish protocol traffic) —
  /// the graph FINISH_DENSE software routing reshapes.
  [[nodiscard]] std::uint64_t ctrl_pair_count(int src, int dst) const;
  [[nodiscard]] int max_ctrl_out_degree() const;

  // --- Coalescing statistics ----------------------------------------------

  [[nodiscard]] bool coalescing_enabled() const {
    return cfg_.coalesce_bytes > 0;
  }
  /// Envelopes shipped (wire messages carrying >= 1 coalesced record).
  [[nodiscard]] std::uint64_t coalesce_envelopes() const {
    return coalesce_envelopes_.load(std::memory_order_relaxed);
  }
  /// Logical AMs that traveled inside envelopes.
  [[nodiscard]] std::uint64_t coalesce_records() const {
    return coalesce_records_.load(std::memory_order_relaxed);
  }
  /// Total wire bytes of shipped envelopes (headers included).
  [[nodiscard]] std::uint64_t coalesce_wire_bytes() const {
    return coalesce_wire_bytes_.load(std::memory_order_relaxed);
  }
  /// send_am calls that skipped the aggregation layer (oversize payload or
  /// anonymous source) while coalescing was on.
  [[nodiscard]] std::uint64_t coalesce_bypass() const {
    return coalesce_bypass_.load(std::memory_order_relaxed);
  }
  /// Flush-reason histogram: envelopes shipped for `reason`.
  [[nodiscard]] std::uint64_t coalesce_flushes(FlushReason reason) const {
    return coalesce_flush_counts_[static_cast<std::size_t>(reason)].load(
        std::memory_order_relaxed);
  }

  // --- adaptive knobs (driven by an online controller; see autotune.h) -----

  /// Sets the dynamic flush threshold for the (src,dst) envelope writer,
  /// clamped to the static cap. Both the admission check (record small
  /// enough to coalesce) and the size-flush decision use it, so a value
  /// below the record size diverts the pair's sends to the direct path.
  /// 0 restores the static `coalesce_bytes`. No-op when coalescing is off.
  void set_coalesce_threshold(int src, int dst, std::size_t bytes);

  /// Effective flush threshold for the pair (the dynamic value if one is
  /// set, the static cap otherwise; 0 when coalescing is off).
  [[nodiscard]] std::size_t coalesce_threshold(int src, int dst) const;

  /// Sends small enough for the static cap that the *dynamic* threshold
  /// diverted to the direct path — the controller's probe-upward signal.
  [[nodiscard]] std::uint64_t coalesce_dyn_bypass(int src, int dst) const;

  /// Sets the adaptive initial retransmit timeout for the (src,dst) pair;
  /// newly stamped entries start from it instead of the static
  /// `retx_timeout_us` (per-entry exponential backoff and its cap are
  /// unchanged). 0 restores the static timeout. No-op when reliability is
  /// off.
  void set_retx_rto(int src, int dst, std::uint64_t rto_us);

  /// Effective initial retransmit timeout for the pair (µs).
  [[nodiscard]] std::uint64_t retx_rto_us(int src, int dst) const;

  // --- Reliability sublayer (ack/retransmit/dedup) -------------------------

  [[nodiscard]] bool reliability_enabled() const {
    return cfg_.retx_timeout_us > 0;
  }

  /// Drives `place`'s share of the reliability protocol: retransmits every
  /// timed-out unacked entry whose source is `place`, and sends standalone
  /// acks for delivered-but-uncommunicated sequences whose ack debt has aged
  /// past the idle threshold. With `force`, every unacked entry retransmits
  /// immediately and every owed ack ships regardless of age — the teardown
  /// quiescence driver uses this to reach the all-acked fixpoint. Returns
  /// the number of wire messages produced (0 = nothing to do). Cheap no-op
  /// when the layer is off. Poll paths call this on a time gate; the
  /// scheduler idle hook and teardown call it directly.
  std::size_t retx_pump(int place, bool force = false);

  /// True when every sequenced message ever sent has been cumulatively
  /// acked (no retransmit queue holds an entry). Trivially true when off.
  [[nodiscard]] bool retx_quiescent() const;

  /// Sequenced messages sent (originals only; retransmissions excluded).
  [[nodiscard]] std::uint64_t retx_sent() const {
    return retx_sent_.load(std::memory_order_relaxed);
  }
  /// Sequenced messages confirmed delivered by a cumulative ack.
  [[nodiscard]] std::uint64_t retx_acked() const {
    return retx_acked_.load(std::memory_order_relaxed);
  }
  /// Retransmitted copies put on the wire (timeout- or force-driven).
  [[nodiscard]] std::uint64_t retx_retransmits() const {
    return retx_retransmits_.load(std::memory_order_relaxed);
  }
  /// Duplicate deliveries suppressed by the receiver dedup window.
  [[nodiscard]] std::uint64_t retx_dups_dropped() const {
    return retx_dups_dropped_.load(std::memory_order_relaxed);
  }
  /// Standalone (non-piggybacked) ack messages sent.
  [[nodiscard]] std::uint64_t retx_standalone_acks() const {
    return retx_standalone_acks_.load(std::memory_order_relaxed);
  }

  // --- Chaos statistics ----------------------------------------------------

  /// Sequenced messages discarded at the wire by chaos drop injection.
  [[nodiscard]] std::uint64_t chaos_dropped() const {
    return chaos_dropped_.load(std::memory_order_relaxed);
  }
  /// Duplicate copies injected by chaos dup injection.
  [[nodiscard]] std::uint64_t chaos_duped() const {
    return chaos_duped_.load(std::memory_order_relaxed);
  }
  /// Messages that bypassed delay shaping because the delayed pool was
  /// saturated at max_delayed — "passed under chaos" with this nonzero may
  /// mean "chaos was saturated off" (ISSUE 5 satellite).
  [[nodiscard]] std::uint64_t chaos_bypass() const {
    return chaos_bypass_.load(std::memory_order_relaxed);
  }

  // --- Introspection (stall watchdog diagnosis) ----------------------------

  /// One unacked retransmit queue, as reported to the stall watchdog.
  struct RetxDiag {
    int dst = -1;
    std::uint64_t oldest_seq = 0;  ///< lowest unacked sequence for the pair
    std::uint64_t age_ns = 0;      ///< time since that sequence's first send
    std::size_t depth = 0;         ///< unacked entries for the pair
  };

  /// Non-empty retransmit queues whose source is `src` (empty when the layer
  /// is off). Takes the shard lock; diagnosis-path only.
  [[nodiscard]] std::vector<RetxDiag> retx_unacked(int src) const;

  /// Messages currently parked in `place`'s inbox (queued + chaos-delayed).
  /// Takes the inbox lock; diagnosis-path only, not for hot paths.
  [[nodiscard]] std::size_t inbox_depth(int place) const;

  /// Destinations with an open (partial, unshipped) envelope at source
  /// `src`. 0 when coalescing is off. Takes the shard lock.
  [[nodiscard]] std::size_t coalesce_open_envelopes(int src) const;

  void reset_stats();

 private:
  struct Inbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
    std::deque<Message> delayed;  // chaos pool
    std::mt19937_64 rng;
    bool notified = false;
    // Poll counter decimating the adaptive-tuning tick hook (1 in 64 polls).
    // Deliberately bumped with a load+store pair, not an RMW: the controller
    // is time-gated anyway, so increments lost to concurrent pollers only
    // shift when the clock gets consulted, never whether ticks happen.
    std::atomic<std::uint64_t> tick_polls{0};
    // Workers parked (or about to park) in wait_nonempty. Written with
    // seq_cst RMWs, read behind a seq_cst fence — the Dekker handshake that
    // lets producers skip the mutex+CV signal when nobody is sleeping.
    std::atomic<int> sleepers{0};
  };

  struct DmaOp {
    void* dst;
    const void* src;
    std::size_t n;
    int initiator;
    std::function<void()> on_complete;
  };

  /// TTAS spin-then-yield lock for the coalescing shard. The critical
  /// section is a bounded small memcpy (no user code, no allocation on the
  /// steady path), so a futex round-trip per record costs more than the
  /// work it guards; spinning briefly and then yielding degrades gracefully
  /// when the core is oversubscribed.
  class SpinLock {
   public:
    void lock() noexcept {
      int spins = 0;
      while (flag_.test_and_set(std::memory_order_acquire)) {
        if (++spins >= 128) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
    void unlock() noexcept { flag_.clear(std::memory_order_release); }

   private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  };

  /// Per-source-place coalescing state: one envelope Writer per destination,
  /// plus the list of destinations with an open (partial) envelope so a
  /// flush never scans all P writers. Guarded by `mu`; the lock order is
  /// shard -> inbox (ship_envelope runs outside the shard lock), and no
  /// inbox-holding path ever takes a shard lock, so the order is acyclic.
  struct CoalesceShard {
    SpinLock mu;
    std::vector<envelope::Writer> per_dst;
    std::vector<int> active;
    // Monotonic stamp of when the open envelope for each destination was
    // opened (0 = no open envelope); ship_envelope turns it into the
    // residency reported through flush_hook.
    std::vector<std::uint64_t> open_ns;
    // Payload storage taken back after a record is copied into an envelope,
    // parked here (we already hold `mu`) and recycled to the BufferPool in
    // one batch per shipped envelope — per-envelope freelist locking instead
    // of per-message.
    std::vector<std::vector<std::byte>> spare;
    // Per-destination dynamic flush threshold (0 = use the static cap) and
    // the count of sends it diverted to the direct path. Written only by
    // set_coalesce_threshold; read with relaxed loads on the send path so
    // the disabled state costs one load.
    std::vector<std::atomic<std::size_t>> dyn_bytes;
    std::vector<std::atomic<std::uint64_t>> dyn_bypass;
    // True while any envelope is open or spare storage is parked. Lets
    // flush_coalesced return without the shard lock when there is nothing
    // to do — idle-hook flushes hammer empty shards on latency-bound pairs
    // whose sends the dynamic threshold diverted direct.
    std::atomic<bool> dirty{false};
  };

  // --- reliability state ----------------------------------------------------
  // Lock discipline: the sender shard lock, the receiver shard lock, and an
  // inbox lock are never nested with one another — every reliability path
  // takes them strictly sequentially — so no ordering cycle can form with
  // the coalescing shard -> inbox order.

  /// One unacked sequenced message retained by the sender.
  struct RetxEntry {
    Message copy;                   // independent copy; re-sent on timeout
    std::uint64_t first_send_ns = 0;
    std::uint64_t next_retx_ns = 0;
    std::uint64_t backoff_us = 0;   // current timeout (doubles, capped)
    std::uint32_t attempts = 1;     // sends so far (1 = original only)
  };

  /// Sender-side books for one (src, dst) direction, held at src.
  struct RetxPair {
    std::map<std::uint64_t, RetxEntry> unacked;  // seq -> entry
    std::uint64_t next_seq = 0;                  // last assigned (first is 1)
    std::uint64_t cum_acked = 0;                 // highest cumulative ack seen
    std::uint64_t rto_us = 0;  // adaptive initial timeout (0 = static)
  };

  /// All sender-side pairs originating at one place.
  struct RetxShard {
    mutable std::mutex mu;
    std::vector<RetxPair> per_dst;
  };

  /// Receiver-side dedup window for one (src -> me) direction, held at me.
  struct RecvPair {
    std::uint64_t cum = 0;             // every seq <= cum delivered
    std::set<std::uint64_t> above;     // delivered seqs > cum (gap survivors)
    std::uint64_t acked_sent = 0;      // last cum communicated back to src
    std::uint64_t owed_since_ns = 0;   // when the ack debt began (0 = none)
  };

  struct RecvShard {
    mutable std::mutex mu;
    std::vector<RecvPair> per_src;
  };

  /// Stamps seq (and the piggybacked cumulative ack) into `m` and retains a
  /// retransmit copy. Reliability-armed sends only.
  void retx_stamp(int dst, Message& m);
  /// Receiver-side admission: processes the piggybacked ack, consumes
  /// ack-only messages, and dedups sequenced ones. Returns false when the
  /// message must not be delivered to the scheduler.
  bool retx_admit(int place, Message& m);
  /// Removes entries with seq <= ack for the (place -> peer) direction and
  /// fires the acked hook for retransmitted ones.
  void retx_process_ack(int place, int peer, std::uint64_t ack);
  /// Time-gated retx_pump from the poll hot path.
  void retx_maybe_pump(int place);

  void enqueue_locked(Inbox& box, Message&& m);
  /// The per-copy half of enqueue_locked: chaos drop + delay for one wire
  /// copy (dup injection happens in enqueue_locked before this).
  void enqueue_copy_locked(Inbox& box, Message&& m);
  void maybe_release_delayed_locked(Inbox& box);
  void record(const Message& m, int dst);
  /// The per-class / per-pair statistics bump shared by the direct path
  /// (via record()) and the coalesced path (per logical record, at send_am
  /// time) — so control-volume metrics are comparable across modes.
  void count_logical(int src, int dst, MsgType type, std::size_t wire_bytes);
  /// send() minus the statistics: envelopes ride this so their records are
  /// not double-counted. Runs the reliability stamping before the wire.
  void send_unrecorded(int dst, Message m);
  /// The wire itself: chaos injection + inbox enqueue + sleeper-elided
  /// notify. Retransmissions and standalone acks enter here directly (they
  /// are wire artifacts, never re-stamped and never re-counted).
  void wire_deliver(int dst, Message m);
  /// Routes a post-stamping message: local places go through wire_deliver,
  /// remote places (multi-process backend) are encoded and shipped.
  void wire_or_remote(int dst, Message&& m);
  /// Encodes `m` into a frame and hands it to the backend. Aborts loudly on
  /// a message with no wire form (a closure cannot cross processes).
  void ship_remote(int dst, Message&& m);
  /// Backend sink: validates an inbound frame (abort on malformed input —
  /// the wire is untrusted), reconstructs the Message, and enqueues it into
  /// the local inbox. Runs on the backend's I/O thread.
  void deliver_frame(int peer, const std::uint8_t* data, std::size_t len);
  /// Accounts a sealed envelope, fires cfg_.flush_hook, and enqueues it.
  /// `open_ns` is the CoalesceShard::open_ns stamp taken when the envelope
  /// was opened (0 = unknown, reports residency 0).
  void ship_envelope(int src, int dst, ByteBuffer env, std::uint32_t records,
                     FlushReason reason, std::uint64_t open_ns);
  /// Receiver side: unpack an envelope into one inbox message per record.
  /// Records are NOT run inline: a spawn record's activity may block (a
  /// Team rendezvous, a GLB steal wait) with later records of the same
  /// train still unread — trapped on the delivering thread's stack where
  /// the blocked activity's nested inbox pump can never reach them.
  void deliver_envelope(int src, int dst, ByteBuffer env);
  void submit_dma(DmaOp op, MsgType completion_type);
  void dma_loop();

  TransportConfig cfg_;
  std::unique_ptr<Backend> backend_;
  bool multi_proc_ = false;  // cached backend_->multi_process()
  int local_place_ = -1;     // cached backend_->local_place()
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::vector<AmHandler> am_handlers_;
  std::vector<std::unique_ptr<CoalesceShard>> coalesce_;
  BufferPool pool_;

  // Reliability sublayer state (empty vectors when the layer is off).
  std::vector<std::unique_ptr<RetxShard>> retx_;
  std::vector<std::unique_ptr<RecvShard>> recv_;
  /// Per-place next allowed pump time (monotone ns) for the poll-path gate.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> retx_next_pump_;
  std::uint64_t retx_pump_interval_ns_ = 0;

  // Registered memory ranges per place (read-mostly: every one-sided op
  // validates against them, so reads take a shared lock).
  mutable std::shared_mutex reg_mu_;
  std::vector<std::vector<std::pair<const std::byte*, std::size_t>>> ranges_;

  // Stats.
  std::atomic<std::uint64_t> counts_[kNumMsgTypes] = {};
  std::atomic<std::uint64_t> bytes_[kNumMsgTypes] = {};
  std::atomic<std::uint64_t> rdma_ops_{0};
  std::atomic<std::uint64_t> rdma_bytes_{0};
  std::atomic<std::uint64_t> coalesce_envelopes_{0};
  std::atomic<std::uint64_t> coalesce_records_{0};
  std::atomic<std::uint64_t> coalesce_wire_bytes_{0};
  std::atomic<std::uint64_t> coalesce_bypass_{0};
  std::atomic<std::uint64_t> coalesce_flush_counts_[kNumFlushReasons] = {};
  std::atomic<std::uint64_t> retx_sent_{0};
  std::atomic<std::uint64_t> retx_acked_{0};
  std::atomic<std::uint64_t> retx_retransmits_{0};
  std::atomic<std::uint64_t> retx_dups_dropped_{0};
  std::atomic<std::uint64_t> retx_standalone_acks_{0};
  std::atomic<std::uint64_t> chaos_dropped_{0};
  std::atomic<std::uint64_t> chaos_duped_{0};
  std::atomic<std::uint64_t> chaos_bypass_{0};
  std::vector<std::atomic<std::uint64_t>> pair_counts_;  // P*P when enabled
  std::vector<std::atomic<std::uint64_t>> ctrl_pair_counts_;

  // DMA engine.
  std::mutex dma_mu_;
  std::condition_variable dma_cv_;
  std::deque<std::pair<DmaOp, MsgType>> dma_queue_;
  bool dma_stop_ = false;
  std::vector<std::thread> dma_workers_;
};

}  // namespace x10rt
