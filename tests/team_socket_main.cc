// team_socket_probe: end-to-end Team collectives across place processes.
//
// Driven by test_launcher under apgas_launch (which arms APGAS_BACKEND=socket
// and APGAS_PLACES before exec); also runs standalone on the in-process
// backend. Every place runs the same frame task: one
// barrier -> allreduce -> bcast round on the world team of each of the three
// modes, bumping the "team_probe.ok" counter per verified round. kNative
// downgrades to the emulated algorithms across processes (effective_mode);
// kHierarchical rebuilds its plan with singleton leaf groups. The supervisor
// checks the aggregated counter equals places * 3 and prints "verified".
#include <cinttypes>
#include <cstdio>

#include "runtime/api.h"
#include "runtime/metrics.h"
#include "runtime/task_registry.h"
#include "runtime/team.h"

namespace {

using namespace apgas;

void probe_task(x10rt::ByteBuffer&) {
  for (TeamMode mode : {TeamMode::kEmulated, TeamMode::kNative,
                        TeamMode::kHierarchical}) {
    Team t = Team::world(mode);
    t.barrier();
    double v = 1.0 + t.rank();
    t.allreduce(&v, 1, ReduceOp::kSum);
    const double want = t.size() * (t.size() + 1) / 2.0;
    std::uint64_t word = t.rank() == 0 ? 77u : 0u;
    t.bcast(0, &word, 1);
    if (v == want && word == 77u) {
      Runtime::get().metrics().counter("team_probe.ok").fetch_add(
          1, std::memory_order_relaxed);
    }
  }
}
// Pre-main registration: every place process agrees on the id.
const int kProbeTask = register_task_fn(&probe_task);

}  // namespace

int main() {
  using namespace apgas;
  const Config cfg = Config::from_env();
  Runtime::run(cfg, [] {
    finish(Pragma::kSpmd, [] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAtFrame(p, kProbeTask);
      }
    });
  });

  const auto& m = last_run_metrics();
  const auto it = m.find("team_probe.ok");
  const std::uint64_t ok = it == m.end() ? 0 : it->second;
  const auto want = static_cast<std::uint64_t>(cfg.places) * 3;
  std::printf("team_socket_probe: %" PRIu64 "/%" PRIu64
              " mode-rounds ok across %d place(s)\n",
              ok, want, cfg.places);
  if (ok != want) {
    std::fprintf(stderr, "team_socket_probe: FAILED (%" PRIu64 " != %" PRIu64
                         ")\n",
                 ok, want);
    return 1;
  }
  std::printf("verified\n");
  return 0;
}
