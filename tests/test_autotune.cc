// Online tuning controller (docs/transport.md "Adaptive tuning").
//
// The decision rules are pure functions in the `tune` namespace, so the bulk
// of this suite is deterministic arithmetic with no runtime at all. The
// integration half drives an Autotune against a bare x10rt::Transport with
// forced ticks — exactly the harness bench_transport uses — and one
// end-to-end test runs a real Runtime with APGAS_AUTOTUNE semantics armed.
#include "runtime/autotune.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/api.h"
#include "runtime/runtime.h"

namespace {

using namespace apgas;

// --- tune::Ewma --------------------------------------------------------------

TEST(TuneEwma, FirstSamplePrimes) {
  tune::Ewma e;
  EXPECT_FALSE(e.primed);
  e.add(800);
  EXPECT_TRUE(e.primed);
  EXPECT_EQ(e.value, 800u);
}

TEST(TuneEwma, ConvergesWithGainOneEighth) {
  tune::Ewma e;
  e.add(0);
  e.add(800);  // 0 + 800/8
  EXPECT_EQ(e.value, 100u);
  for (int i = 0; i < 100; ++i) e.add(800);
  // Integer EWMA converges to within rounding of the plateau.
  EXPECT_GE(e.value, 790u);
  EXPECT_LE(e.value, 800u);
}

// --- tune::SrttEstimator -----------------------------------------------------

TEST(TuneSrtt, UnprimedReportsZeroRto) {
  tune::SrttEstimator s;
  EXPECT_EQ(s.rto_us(10, 1000), 0u);
}

TEST(TuneSrtt, FirstSampleSeedsSrttAndHalfVariance) {
  tune::SrttEstimator s;
  s.sample(8000);
  EXPECT_EQ(s.srtt_ns, 8000u);
  EXPECT_EQ(s.rttvar_ns, 4000u);
  // RTO = (8000 + 4*4000)/1000 + 1 = 25us, inside a wide clamp.
  EXPECT_EQ(s.rto_us(1, 1'000'000), 25u);
}

TEST(TuneSrtt, JacobsonKarelsUpdate) {
  tune::SrttEstimator s;
  s.sample(8000);
  s.sample(16000);
  // err = 8000: rttvar = 4000 + (8000-4000)/4 = 5000; srtt = 8000 + 1000.
  EXPECT_EQ(s.srtt_ns, 9000u);
  EXPECT_EQ(s.rttvar_ns, 5000u);
}

TEST(TuneSrtt, SteadySamplesShrinkVariance) {
  tune::SrttEstimator s;
  for (int i = 0; i < 200; ++i) s.sample(10000);
  EXPECT_EQ(s.srtt_ns, 10000u);
  // Integer gain truncation floors the variance decay just above zero.
  EXPECT_LE(s.rttvar_ns, 3u);
  EXPECT_EQ(s.rto_us(1, 1'000'000), 11u);  // (10000 + 4*3)/1000 + 1
}

TEST(TuneSrtt, RtoClampsToFloorAndCeiling) {
  tune::SrttEstimator s;
  s.sample(1000);  // raw RTO ~ 5us
  EXPECT_EQ(s.rto_us(250, 100'000), 250u);
  s.sample(900'000'000);  // raw RTO in the hundreds of ms
  EXPECT_EQ(s.rto_us(250, 100'000), 100'000u);
}

TEST(TuneSrtt, DegenerateCeilingBelowFloorCollapsesToFloor) {
  tune::SrttEstimator s;
  s.sample(50'000'000);
  EXPECT_EQ(s.rto_us(1000, 10), 1000u);
}

// --- tune::coalesce_next_threshold -------------------------------------------

tune::CoalesceWindow window(std::uint64_t size, std::uint64_t count,
                            std::uint64_t idle, std::uint64_t records,
                            std::uint64_t bypasses = 0) {
  tune::CoalesceWindow w;
  w.size_flushes = size;
  w.count_flushes = count;
  w.idle_flushes = idle;
  w.envelopes = size + count + idle;
  w.records = records;
  w.bypasses = bypasses;
  return w;
}

TEST(TuneCoalesce, StaticallyOffStaysOff) {
  tune::Ewma r;
  EXPECT_EQ(tune::coalesce_next_threshold(0, 0, 50'000, r,
                                          window(10, 0, 0, 1000), true),
            0u);
}

TEST(TuneCoalesce, EmptyWindowHolds) {
  tune::Ewma r;
  EXPECT_EQ(tune::coalesce_next_threshold(4096, 4096, 50'000, r,
                                          window(0, 0, 0, 0), true),
            4096u);
}

TEST(TuneCoalesce, ShrinksWhenResidencyExceedsBudget) {
  tune::Ewma r;
  r.add(200'000);  // 200us residency vs 50us budget
  EXPECT_EQ(tune::coalesce_next_threshold(4096, 4096, 50'000, r,
                                          window(10, 0, 0, 1000), true),
            2048u);
  // Shrinking saturates at the floor, never 0 (0 means "static cap").
  EXPECT_EQ(tune::coalesce_next_threshold(1, 4096, 50'000, r,
                                          window(10, 0, 0, 1000), true),
            1u);
}

TEST(TuneCoalesce, CollapsesDegenerateEnvelopesToFloor) {
  tune::Ewma r;
  r.add(1000);  // residency fine
  // Idle-driven flushes, ~1 record per envelope: pure overhead.
  EXPECT_EQ(tune::coalesce_next_threshold(4096, 4096, 50'000, r,
                                          window(0, 0, 10, 10), true),
            tune::kCoalesceFloorBytes);
}

TEST(TuneCoalesce, GrowsWhenSizeFlushesDominateAndResidencyComfortable) {
  tune::Ewma r;
  r.add(10'000);  // 10us <= half of the 50us budget
  EXPECT_EQ(tune::coalesce_next_threshold(64, 4096, 50'000, r,
                                          window(10, 0, 2, 1000), true),
            256u);
  // Growth clamps at the cap.
  EXPECT_EQ(tune::coalesce_next_threshold(2048, 4096, 50'000, r,
                                          window(10, 0, 2, 1000), true),
            4096u);
  // At the cap there is nothing to grow into.
  EXPECT_EQ(tune::coalesce_next_threshold(4096, 4096, 50'000, r,
                                          window(10, 0, 2, 1000), true),
            4096u);
}

TEST(TuneCoalesce, HalfBudgetResidencyBlocksGrowth) {
  tune::Ewma r;
  r.add(40'000);  // 40us: above budget/2, below budget — hold
  EXPECT_EQ(tune::coalesce_next_threshold(64, 4096, 50'000, r,
                                          window(10, 0, 2, 1000), true),
            64u);
}

TEST(TuneCoalesce, ProbesUpFromBypassOnlyWindowOnlyWhenAllowed) {
  tune::Ewma r;
  const auto w = window(0, 0, 0, 0, /*bypasses=*/50);
  EXPECT_EQ(tune::coalesce_next_threshold(1, 4096, 50'000, r, w, false), 1u);
  EXPECT_EQ(tune::coalesce_next_threshold(1, 4096, 50'000, r, w, true),
            tune::kCoalesceProbeBytes);
  // Subsequent probes double; still capped.
  EXPECT_EQ(tune::coalesce_next_threshold(64, 4096, 50'000, r, w, true), 128u);
  EXPECT_EQ(tune::coalesce_next_threshold(4096, 4096, 50'000, r, w, true),
            4096u);
}

TEST(TuneCoalesce, OutOfRangeCurrentSnapsToCap) {
  tune::Ewma r;
  EXPECT_EQ(tune::coalesce_next_threshold(1 << 20, 4096, 50'000, r,
                                          window(0, 0, 0, 0), true),
            4096u);
}

// --- tune::park_next_ceiling -------------------------------------------------

TEST(TunePark, QuietWindowHolds) {
  EXPECT_EQ(tune::park_next_ceiling(100, 1, 200, 0, 0), 100u);
}

TEST(TunePark, WorkDominatedHalves) {
  EXPECT_EQ(tune::park_next_ceiling(200, 1, 200, 40, 10), 100u);
  EXPECT_EQ(tune::park_next_ceiling(1, 1, 200, 40, 0), 1u);  // floor
}

TEST(TunePark, IdleDominatedDoubles) {
  EXPECT_EQ(tune::park_next_ceiling(50, 1, 200, 3, 10), 100u);
  EXPECT_EQ(tune::park_next_ceiling(200, 1, 200, 0, 10), 200u);  // ceiling
}

TEST(TunePark, MixedWindowHolds) {
  // work >= idle but < 4x idle: neither rule fires.
  EXPECT_EQ(tune::park_next_ceiling(100, 1, 200, 20, 10), 100u);
}

TEST(TunePark, ClampsCurrentIntoBand) {
  EXPECT_EQ(tune::park_next_ceiling(1000, 1, 200, 0, 0), 200u);
  EXPECT_EQ(tune::park_next_ceiling(0, 5, 200, 0, 0), 5u);
}

// --- Autotune against a bare transport ---------------------------------------

struct BareHarness {
  x10rt::TransportConfig tc;
  std::unique_ptr<Autotune> at;
  std::unique_ptr<x10rt::Transport> tr;
  int am_nop = -1;

  explicit BareHarness(Autotune::Knobs kn, std::size_t coalesce_bytes,
                       std::uint64_t retx_timeout_us = 0) {
    tc.places = 2;
    tc.coalesce_bytes = coalesce_bytes;
    tc.retx_timeout_us = retx_timeout_us;
    at = std::make_unique<Autotune>(tc.places, kn);
    Autotune* a = at.get();
    tc.flush_hook = [a](int src, int dst, std::uint32_t records,
                        x10rt::FlushReason reason, std::uint64_t residency) {
      a->on_flush(src, dst, records, reason, residency);
    };
    tc.rtt_sample_hook = [a](int src, int dst, std::uint64_t rtt_ns) {
      a->on_rtt_sample(src, dst, rtt_ns);
    };
    tr = std::make_unique<x10rt::Transport>(tc);
    at->attach_transport(tr.get());
    am_nop = tr->register_am([](x10rt::ByteBuffer&) {});
  }

  void send_small(int n = 1) {
    for (int i = 0; i < n; ++i) {
      x10rt::ByteBuffer buf;
      buf.put<std::uint64_t>(0xabcdef);
      tr->send_am(0, 1, am_nop, std::move(buf));
    }
  }

  std::size_t drain(int place) {
    std::size_t n = 0;
    while (auto m = tr->poll(place)) {
      m->run();
      ++n;
    }
    return n;
  }
};

Autotune::Knobs coalesce_knobs(std::uint64_t budget_us,
                               std::uint64_t probe_period = 1u << 30) {
  Autotune::Knobs kn;
  kn.residency_budget_us = budget_us;
  kn.coalesce_bytes_cap = 4096;
  kn.probe_period = probe_period;  // default: probes effectively off
  return kn;
}

TEST(AutotuneTransport, ShrinksThresholdWhenResidencyOverBudget) {
  // Budget 0: any measured residency is over budget -> halve per window.
  BareHarness h(coalesce_knobs(0), 4096);
  EXPECT_EQ(h.tr->coalesce_threshold(0, 1), 4096u);
  h.send_small();
  EXPECT_EQ(h.tr->flush_coalesced(0), 1u);
  h.at->tick(0);
  EXPECT_EQ(h.tr->coalesce_threshold(0, 1), 2048u);
  EXPECT_EQ(h.at->adjust_down(), 1u);
  // No new evidence: the next tick holds.
  h.at->tick(0);
  EXPECT_EQ(h.tr->coalesce_threshold(0, 1), 2048u);
  EXPECT_EQ(h.at->adjust_down(), 1u);
  h.drain(1);
}

TEST(AutotuneTransport, CollapsesDegenerateCoalescingAndDivertsDirect) {
  // Comfortable budget, but every envelope is one idle-flushed record:
  // coalescing is pure overhead and collapses to the floor in one tick.
  BareHarness h(coalesce_knobs(1'000'000), 4096);
  h.send_small();
  EXPECT_EQ(h.tr->flush_coalesced(0), 1u);
  h.at->tick(0);
  EXPECT_EQ(h.tr->coalesce_threshold(0, 1), tune::kCoalesceFloorBytes);
  // The pair now sends direct: delivery without any flush, and the bypass
  // tally (the controller's probe-up signal) advances.
  const std::uint64_t bypass_before = h.tr->coalesce_dyn_bypass(0, 1);
  h.send_small();
  // 3 inbox messages: the first envelope's delivery, the record it
  // re-enqueues (records run from the inbox, never inline), the divert.
  EXPECT_EQ(h.drain(1), 3u);
  EXPECT_GT(h.tr->coalesce_dyn_bypass(0, 1), bypass_before);
}

TEST(AutotuneTransport, RushProbesOnBypassRateJumpAndGrowsBack) {
  // Collapse first, prime the divert baseline with steady collapsed windows,
  // then more than double the rate: the rush probe must fire on that tick
  // (no waiting for the safety cadence) and growth climbs back to the cap.
  BareHarness h(coalesce_knobs(1'000'000, 1), 4096);
  h.send_small();
  h.tr->flush_coalesced(0);
  h.at->tick(0);
  ASSERT_EQ(h.tr->coalesce_threshold(0, 1), tune::kCoalesceFloorBytes);
  for (int round = 0; round < 3; ++round) {
    h.send_small(100);
    h.drain(1);
    h.at->tick(0);
    EXPECT_EQ(h.tr->coalesce_threshold(0, 1), tune::kCoalesceFloorBytes);
  }
  // 300 diverts > 2 * max(baseline=100, kProbeRushMinBypasses) -> rush.
  h.send_small(300);
  h.drain(1);
  h.at->tick(0);
  EXPECT_EQ(h.tr->coalesce_threshold(0, 1), tune::kCoalesceProbeBytes);
  // Now small records coalesce again; size-flushes dominate -> x4 per window
  // until the static cap.
  for (int round = 0; round < 4; ++round) {
    h.send_small(64);
    h.tr->flush_coalesced(0);
    h.drain(1);
    h.at->tick(0);
  }
  EXPECT_EQ(h.tr->coalesce_threshold(0, 1), 4096u);
  EXPECT_GT(h.at->adjust_up(), 0u);
}

TEST(AutotuneTransport, SafetyProbeFiresOnlyAfterSlowCadence) {
  // A steady trickle of diverts (no rate jump) must hold the floor until
  // probe_period * kProbeSlowFactor ticks have passed since the collapse,
  // then probe once — the bound on ignoring a flood that matches the old
  // latency phase's send rate.
  BareHarness h(coalesce_knobs(1'000'000, 1), 4096);
  h.send_small();
  h.tr->flush_coalesced(0);
  h.at->tick(0);
  ASSERT_EQ(h.tr->coalesce_threshold(0, 1), tune::kCoalesceFloorBytes);
  int probe_tick = -1;
  for (int t = 1; t <= 2 * static_cast<int>(tune::kProbeSlowFactor); ++t) {
    h.send_small(8);
    h.drain(1);
    h.at->tick(0);
    if (h.tr->coalesce_threshold(0, 1) != tune::kCoalesceFloorBytes) {
      probe_tick = t;
      break;
    }
  }
  EXPECT_EQ(probe_tick, static_cast<int>(tune::kProbeSlowFactor));
  EXPECT_EQ(h.tr->coalesce_threshold(0, 1), tune::kCoalesceProbeBytes);
}

TEST(AutotuneTransport, AdaptiveRtoReachesFloorOnFastAcks) {
  Autotune::Knobs kn;
  kn.coalesce_bytes_cap = 0;
  kn.retx_timeout_us = 100'000;      // static anchor
  kn.retx_backoff_max_us = 50'000;   // ceil = max(100ms, 50ms) = 100ms
  BareHarness h(kn, /*coalesce_bytes=*/0, /*retx_timeout_us=*/100'000);
  ASSERT_TRUE(h.tr->reliability_enabled());
  EXPECT_EQ(h.tr->retx_rto_us(0, 1), 100'000u);  // static until adjusted
  h.send_small(4);
  EXPECT_EQ(h.drain(1), 4u);
  h.tr->retx_pump(1, /*force=*/true);  // standalone ack back to 0
  h.drain(0);                          // admission processes the ack
  EXPECT_GE(h.at->rtt_samples(), 1u);
  h.at->tick(0);
  EXPECT_EQ(h.at->rto_updates(), 1u);
  // In-process acks return in microseconds; RTO clamps to the floor
  // (retx_timeout_us / 4).
  EXPECT_EQ(h.tr->retx_rto_us(0, 1), 25'000u);
  EXPECT_TRUE(h.tr->retx_quiescent());
}

TEST(AutotuneTransport, PairDiagReportsAdjustedPairs) {
  BareHarness h(coalesce_knobs(0), 4096);
  EXPECT_TRUE(h.at->pair_diag(0).empty());
  h.send_small();
  h.tr->flush_coalesced(0);
  h.at->tick(0);
  const auto diag = h.at->pair_diag(0);
  ASSERT_EQ(diag.size(), 1u);
  EXPECT_EQ(diag[0].dst, 1);
  EXPECT_EQ(diag[0].threshold, 2048u);
  EXPECT_GT(diag[0].residency_ewma_ns, 0u);
  h.drain(1);
}

TEST(AutotuneTransport, AdjustHookSeesEveryAdjustment) {
  BareHarness h(coalesce_knobs(0), 4096);
  std::vector<std::uint64_t> values;
  h.at->set_adjust_hook([&](int place, int dst, Autotune::Knob knob,
                            std::uint64_t value) {
    EXPECT_EQ(place, 0);
    EXPECT_EQ(dst, 1);
    EXPECT_EQ(knob, Autotune::Knob::kCoalesce);
    values.push_back(value);
  });
  for (int i = 0; i < 3; ++i) {
    h.send_small();
    h.tr->flush_coalesced(0);
    h.at->tick(0);
  }
  EXPECT_EQ(values, (std::vector<std::uint64_t>{2048, 1024, 512}));
  h.drain(1);
}

TEST(AutotuneTransport, MaybeTickIsTimeGated) {
  BareHarness h(coalesce_knobs(0), 4096);
  // A burst of maybe_tick calls inside one interval coalesces to one tick.
  for (int i = 0; i < 100; ++i) h.at->maybe_tick(0);
  EXPECT_LE(h.at->ticks(), 2u);
}

// --- end-to-end: a Runtime with the controller armed -------------------------

TEST(AutotuneRuntime, ArmedRunCompletesAndExportsGauges) {
  Config cfg;
  cfg.places = 4;
  cfg.autotune = 1;
  cfg.coalesce_bytes = 4096;
  cfg.retx_timeout_us = 1000;
  Runtime::run(cfg, [] {
    for (int round = 0; round < 50; ++round) {
      finish([&] {
        for (int p = 0; p < num_places(); ++p) {
          asyncAt(p, [] {});
        }
      });
    }
  });
  const auto& m = last_run_metrics();
  ASSERT_TRUE(m.count("autotune.ticks"));
  EXPECT_GT(m.at("autotune.ticks"), 0u);
  ASSERT_TRUE(m.count("autotune.rtt_samples"));
  // Retx acks flow constantly under finish traffic; the estimators must have
  // been fed.
  EXPECT_GT(m.at("autotune.rtt_samples"), 0u);
}

TEST(AutotuneRuntime, DisabledRunExportsNoAutotuneMetrics) {
  Config cfg;
  cfg.places = 2;
  cfg.autotune = 0;
  Runtime::run(cfg, [] {
    finish([&] { asyncAt(1, [] {}); });
  });
  for (const auto& [k, v] : last_run_metrics()) {
    EXPECT_EQ(k.rfind("autotune.", 0), std::string::npos)
        << k << " exported by a run with the controller off";
  }
}

}  // namespace
