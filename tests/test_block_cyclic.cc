// Unit and property tests for the 2D block-cyclic distribution under HPL
// (paper §5.1) — the mapping invariants the distributed factorization
// depends on.
#include "kernels/hpl/block_cyclic.h"

#include <gtest/gtest.h>

#include <set>

namespace {

using kernels::BlockCyclic;
using kernels::choose_process_grid;

struct GridCase {
  int n, nb, pr_grid, pc_grid;
};

class BlockCyclicSweep : public ::testing::TestWithParam<GridCase> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockCyclicSweep,
    ::testing::Values(GridCase{64, 16, 1, 1}, GridCase{64, 16, 2, 2},
                      GridCase{100, 16, 2, 2},   // ragged final block
                      GridCase{96, 8, 2, 4},     // non-square grid
                      GridCase{50, 7, 3, 2},     // nothing divides anything
                      GridCase{16, 32, 2, 2}),   // block bigger than matrix
    [](const auto& info) {
      const auto& c = info.param;
      return "n" + std::to_string(c.n) + "_nb" + std::to_string(c.nb) + "_" +
             std::to_string(c.pr_grid) + "x" + std::to_string(c.pc_grid);
    });

TEST_P(BlockCyclicSweep, OwnershipPartitionsEveryEntry) {
  const auto c = GetParam();
  // Every global (i, j) must be owned by exactly one grid position.
  for (int gi = 0; gi < c.n; ++gi) {
    int row_owners = 0;
    for (int pr = 0; pr < c.pr_grid; ++pr) {
      BlockCyclic local;
      local.init(c.n, c.nb, c.pr_grid, c.pc_grid, pr, 0,
                 [](int, int) { return 0.0; });
      if (local.owns_row(gi)) ++row_owners;
    }
    ASSERT_EQ(row_owners, 1) << "row " << gi;
  }
}

TEST_P(BlockCyclicSweep, LocalGlobalRoundTrip) {
  const auto c = GetParam();
  for (int pr = 0; pr < c.pr_grid; ++pr) {
    for (int pc = 0; pc < c.pc_grid; ++pc) {
      BlockCyclic local;
      local.init(c.n, c.nb, c.pr_grid, c.pc_grid, pr, pc,
                 [](int, int) { return 0.0; });
      for (int li = 0; li < local.my_rows; ++li) {
        const int gi = local.global_row(li);
        ASSERT_GE(gi, 0);
        ASSERT_LT(gi, c.n);
        ASSERT_TRUE(local.owns_row(gi));
        ASSERT_EQ(local.local_row(gi), li);
      }
      for (int lj = 0; lj < local.my_cols; ++lj) {
        const int gj = local.global_col(lj);
        ASSERT_TRUE(local.owns_col(gj));
        ASSERT_EQ(local.local_col(gj), lj);
      }
    }
  }
}

TEST_P(BlockCyclicSweep, CountsSumToMatrixOrder) {
  const auto c = GetParam();
  int total_rows = 0;
  for (int pr = 0; pr < c.pr_grid; ++pr) {
    total_rows += BlockCyclic::count_owned(c.n, c.nb, c.pr_grid, pr);
  }
  EXPECT_EQ(total_rows, c.n);
  int total_cols = 0;
  for (int pc = 0; pc < c.pc_grid; ++pc) {
    total_cols += BlockCyclic::count_owned(c.n, c.nb, c.pc_grid, pc);
  }
  EXPECT_EQ(total_cols, c.n);
}

TEST_P(BlockCyclicSweep, LocalRowsMonotoneInGlobalIndex) {
  const auto c = GetParam();
  for (int pr = 0; pr < c.pr_grid; ++pr) {
    BlockCyclic local;
    local.init(c.n, c.nb, c.pr_grid, c.pc_grid, pr, 0,
               [](int, int) { return 0.0; });
    for (int li = 1; li < local.my_rows; ++li) {
      ASSERT_GT(local.global_row(li), local.global_row(li - 1));
    }
  }
}

TEST_P(BlockCyclicSweep, TrailingTailIsContiguous) {
  const auto c = GetParam();
  BlockCyclic local;
  local.init(c.n, c.nb, c.pr_grid, c.pc_grid, c.pr_grid - 1, 0,
             [](int, int) { return 0.0; });
  for (int cutoff = 0; cutoff <= c.n; cutoff += c.nb / 2 + 1) {
    const int first = local.first_local_row_ge(cutoff);
    for (int li = 0; li < local.my_rows; ++li) {
      const bool trailing = local.global_row(li) >= cutoff;
      ASSERT_EQ(trailing, li >= first) << "cutoff " << cutoff;
    }
  }
}

TEST_P(BlockCyclicSweep, InitFillsFromGenerator) {
  const auto c = GetParam();
  BlockCyclic local;
  local.init(c.n, c.nb, c.pr_grid, c.pc_grid, 0, 0, [](int gi, int gj) {
    return gi * 1000.0 + gj;
  });
  for (int li = 0; li < local.my_rows; ++li) {
    for (int lj = 0; lj < local.my_cols; ++lj) {
      ASSERT_DOUBLE_EQ(local.get(li, lj),
                       local.global_row(li) * 1000.0 + local.global_col(lj));
    }
  }
}

TEST(ProcessGrid, NearSquareFactorizations) {
  int pr = 0, pc = 0;
  choose_process_grid(1, pr, pc);
  EXPECT_EQ(std::make_pair(pr, pc), std::make_pair(1, 1));
  choose_process_grid(4, pr, pc);
  EXPECT_EQ(std::make_pair(pr, pc), std::make_pair(2, 2));
  choose_process_grid(8, pr, pc);
  EXPECT_EQ(std::make_pair(pr, pc), std::make_pair(2, 4));
  choose_process_grid(12, pr, pc);
  EXPECT_EQ(std::make_pair(pr, pc), std::make_pair(3, 4));
  choose_process_grid(7, pr, pc);  // prime: degenerates to 1 x P
  EXPECT_EQ(std::make_pair(pr, pc), std::make_pair(1, 7));
  for (int p = 1; p <= 64; ++p) {
    choose_process_grid(p, pr, pc);
    EXPECT_EQ(pr * pc, p);
    EXPECT_LE(pr, pc);
  }
}

}  // namespace
