// Chaos sweep (ISSUE satellite a): every finish protocol plus Team
// collectives, each run under message-chaos (random delay + reordering in
// the transport) with >= 8 distinct seeds, asserting
//   1. completion — the job finishes and every activity ran exactly once;
//   2. exact accounting — the MetricsRegistry counters that describe
//      protocol *structure* (tasks shipped, completions, credits, snapshot
//      conservation) are identical across seeds: chaos may reshuffle timing
//      arbitrarily, but never the books.
// ISSUE 5 extends the matrix with a *lossy* dimension: the same jobs run
// again with chaos actively dropping (5%) and duplicating (2%) sequenced
// messages while the reliability sublayer retransmits and dedups — and the
// structural counters must still be exactly equal to the lossless runs.
// ISSUE 6 adds the *cross-backend differential* dimension (the Diff* tests
// at the bottom): the same frame-task jobs run on the in-process backend and
// again as one OS process per place over the socket backend, under the same
// lossy chaos, and the structural counters must be exactly equal cell by
// cell — the headline proof that the Backend abstraction does not leak into
// protocol behavior.
// Registered in CMake with TEST_PREFIX "chaos_sweep/" so
// `ctest -R chaos_sweep` selects the whole sweep.
#include "glb/glb.h"
#include "runtime/api.h"
#include "runtime/metrics.h"
#include "runtime/task_registry.h"
#include "runtime/team.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

using namespace apgas;

constexpr std::uint64_t kSeeds[] = {0x1ULL,
                                    0x5eedULL,
                                    0xdeadbeefULL,
                                    0x9e3779b97f4a7c15ULL,
                                    0x2545f4914f6cdd1dULL,
                                    0xa076bc9f00ULL,
                                    0x13371337ULL,
                                    0xfeedfacecafeULL};
constexpr int kNumSeeds = 8;
static_assert(sizeof(kSeeds) / sizeof(kSeeds[0]) == kNumSeeds);

Config chaos_cfg(int places, std::uint64_t seed, int places_per_node = 8) {
  Config cfg;
  cfg.places = places;
  cfg.places_per_node = places_per_node;
  cfg.chaos.delay_prob = 0.3;
  cfg.chaos.seed = seed;
  // Histograms stay armed for the whole sweep: the structural invariants
  // below tie histogram *counts* to the protocol counters.
  cfg.histograms = true;
  // CI's traced iteration points these at artifact paths; locally they are
  // unset and the sweep runs silent. Each run overwrites the files — the
  // artifact is "one representative chaos run", not the full sweep.
  if (const char* p = std::getenv("APGAS_TRACE")) {
    cfg.trace = true;
    cfg.trace_path = p;
  }
  if (const char* p = std::getenv("APGAS_METRICS")) cfg.metrics_path = p;
  return cfg;
}

/// Arms the lossy chaos dimension: drop/dup injection plus the reliability
/// sublayer that makes it survivable. The retransmit knobs honour the
/// APGAS_RETX_* environment (the CI lossy job sweeps them) with defaults
/// aggressive enough that an 8-seed sweep exercises real retransmissions.
void arm_lossy(Config& cfg) {
  cfg.chaos.drop_prob = 0.05;
  cfg.chaos.dup_prob = 0.02;
  cfg.retx_timeout_us = 300;
  auto read = [](const char* name, std::uint64_t& knob) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') return;
    knob = parsed;
  };
  read("APGAS_RETX_TIMEOUT_US", cfg.retx_timeout_us);
  read("APGAS_RETX_BACKOFF_MAX_US", cfg.retx_backoff_max_us);
  read("APGAS_RETX_ACK_IDLE_US", cfg.retx_ack_idle_us);
  if (cfg.retx_timeout_us == 0) cfg.retx_timeout_us = 300;  // env can't disarm
}

/// Sum of one key across the finish protocols ("hist.finish.close_ns.auto.
/// count" + ... for every pragma name).
std::uint64_t sum_close_counts(const std::map<std::string, std::uint64_t>& m) {
  std::uint64_t total = 0;
  for (int p = 0; p < kNumPragmas; ++p) {
    const std::string key = std::string("hist.finish.close_ns.") +
                            pragma_name(static_cast<Pragma>(p)) + ".count";
    auto it = m.find(key);
    if (it != m.end()) total += it->second;
  }
  return total;
}

/// Sum of sched.pN.activities_executed over all places.
std::uint64_t sum_activities(const std::map<std::string, std::uint64_t>& m,
                             int places) {
  std::uint64_t total = 0;
  for (int p = 0; p < places; ++p) {
    total += m.at("sched.p" + std::to_string(p) + ".activities_executed");
  }
  return total;
}

/// The protocol-structure counters that chaos must not change. Timing-driven
/// counters are deliberately absent: idle transitions, dense relay batch
/// counts, and the applied/stale *split* of snapshots (a snapshot racing the
/// release lands stale on some schedules) — though their *sum* is pinned via
/// "finish.snapshots.sent" and the per-run conservation law in sweep().
const char* const kStructuralKeys[] = {
    "finish.opened",         "finish.upgrades",
    "runtime.tasks_shipped", "finish.completion_msgs",
    "finish.credit_msgs",    "finish.snapshots.sent",
    "finish.releases",       "sched.msgs.task",
};

std::map<std::string, std::uint64_t> structural(
    const std::map<std::string, std::uint64_t>& snap) {
  std::map<std::string, std::uint64_t> out;
  for (const char* key : kStructuralKeys) {
    auto it = snap.find(key);
    out[key] = it == snap.end() ? 0 : it->second;
  }
  return out;
}

/// Runs `job` once per seed — with the sender-side coalescing layer off and
/// again with it on, then both again with lossy chaos (drop/dup + the
/// reliability sublayer), and the tunable cells once more with the online
/// autotune controller armed — asserting per-run invariants and equality of
/// the structural counters across *all* runs: neither chaos scheduling, wire
/// batching, message loss, duplication, nor adaptive thresholds/timers may
/// change the protocol books.
template <typename Job>
void sweep(int places, Job job, int places_per_node = 8) {
  std::map<std::string, std::uint64_t> reference;
  bool have_reference = false;
  std::uint64_t total_dropped = 0;
  std::uint64_t total_duped = 0;
  std::uint64_t total_retransmits = 0;
  std::uint64_t total_dups_dropped = 0;
  std::uint64_t total_bypass = 0;
  for (const bool autotune : {false, true}) {
  for (const bool lossy : {false, true}) {
  for (const bool coalesce : {false, true}) {
    // With neither coalescing nor reliability armed the controller has no
    // knob to move (park tuning alone is covered by the armed cells); skip
    // the cell rather than re-run the plain matrix a second time.
    if (autotune && !coalesce && !lossy) continue;
    for (int s = 0; s < kNumSeeds; ++s) {
      SCOPED_TRACE(std::string(lossy ? "lossy " : "lossless ") +
                   (coalesce ? "coalesce-on" : "coalesce-off") +
                   (autotune ? " autotune" : "") + " seed index " +
                   std::to_string(s));
      Config cfg = chaos_cfg(places, kSeeds[s], places_per_node);
      if (lossy) arm_lossy(cfg);
      if (coalesce) {
        // Small thresholds so envelopes actually mix records *and* partial
        // envelopes actually park — exercising every flush reason under
        // chaos, including the idle/quiescence paths termination relies on.
        cfg.coalesce_bytes = 512;
        cfg.coalesce_msgs = 8;
      }
      if (autotune) cfg.autotune = 1;
      Runtime::run(cfg, job);
      const auto& m = last_run_metrics();
      // Conservation: every snapshot sent is either applied or provably
      // stale.
      EXPECT_EQ(m.at("finish.snapshots.sent"),
                m.at("finish.snapshots.applied") +
                    m.at("finish.snapshots.stale"));
      // Every shipped task crossed the transport and was dequeued exactly
      // once (tasks are never coalesced, so this holds in both modes).
      EXPECT_EQ(m.at("runtime.tasks_shipped"), m.at("sched.msgs.task"));
      EXPECT_EQ(m.at("runtime.tasks_shipped"), m.at("transport.msgs.task"));
      // Histogram counts are structural too: with histograms armed for the
      // whole run, every protocol event must have produced exactly one
      // latency sample — a count mismatch means a recording site is gated
      // differently from its counter twin.
      EXPECT_EQ(m.at("finish.closed"), m.at("finish.opened"));
      EXPECT_EQ(sum_close_counts(m), m.at("finish.opened"));
      EXPECT_EQ(m.at("hist.task.ship_ns.count"),
                m.at("runtime.tasks_shipped"));
      EXPECT_EQ(m.at("hist.activity.exec_ns.count"),
                sum_activities(m, places));
      if (coalesce) {
        EXPECT_EQ(m.at("hist.envelope.residency_ns.count"),
                  m.at("transport.coalesce.envelopes"));
        // Envelope conservation: the flush-reason histogram accounts for
        // every envelope, and no envelope ships empty. (The per-reason
        // split itself is timing-dependent — not asserted.)
        const std::uint64_t envelopes = m.at("transport.coalesce.envelopes");
        EXPECT_EQ(envelopes, m.at("transport.coalesce.flush.size") +
                                 m.at("transport.coalesce.flush.count") +
                                 m.at("transport.coalesce.flush.idle") +
                                 m.at("transport.coalesce.flush.immediate") +
                                 m.at("transport.coalesce.flush.quiesce"));
        EXPECT_GE(m.at("transport.coalesce.records"), envelopes);
      }
      if (lossy) {
        // Teardown drained to the all-acked fixpoint: every sequenced
        // message was confirmed delivered before the books were read.
        EXPECT_EQ(m.at("transport.retx.sent"), m.at("transport.retx.acked"));
        total_dropped += m.at("transport.chaos.dropped");
        total_duped += m.at("transport.chaos.duped");
        total_retransmits += m.at("transport.retx.retransmits");
        total_dups_dropped += m.at("transport.retx.dups_dropped");
      }
      // Delay-shaping saturation is survivable but must be *visible*
      // (ISSUE 5 satellite): tally it so "passed under chaos" can be
      // qualified by how much chaos actually applied.
      total_bypass += m.at("transport.chaos.bypass");
      const auto strut = structural(m);
      if (!have_reference) {
        reference = strut;
        have_reference = true;
      } else {
        EXPECT_EQ(strut, reference)
            << "accounting drifted with the chaos seed / coalescing / lossy "
               "/ autotune mode";
      }
    }
  }
  }
  }
  // A drop can only be survived by a retransmit; if chaos dropped anything
  // across the lossy half of the matrix, the reliability layer must show the
  // matching work. (Jobs with no inter-place traffic legitimately drop 0.)
  if (total_dropped > 0) {
    EXPECT_GT(total_retransmits, 0u);
  }
  // A duplicate only reaches the dedup window if its copy survives the drop
  // roll, so require a handful before insisting the counter moved.
  if (total_duped > 4) {
    EXPECT_GT(total_dups_dropped, 0u);
  }
  std::printf(
      "[chaos-sweep] lossy totals: dropped=%llu duped=%llu retransmits=%llu "
      "dups_dropped=%llu delay_bypass=%llu\n",
      static_cast<unsigned long long>(total_dropped),
      static_cast<unsigned long long>(total_duped),
      static_cast<unsigned long long>(total_retransmits),
      static_cast<unsigned long long>(total_dups_dropped),
      static_cast<unsigned long long>(total_bypass));
}

// --- the six finish protocols ----------------------------------------------

TEST(ChaosSweepDefault, FanoutWithNestedChildren) {
  static constexpr int kPlaces = 4;
  sweep(kPlaces, [] {
    std::atomic<int> ran{0};
    finish(Pragma::kDefault, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [&ran] {
          ran.fetch_add(1);
          async([&ran] { ran.fetch_add(1); });
        });
      }
    });
    ASSERT_EQ(ran.load(), 2 * kPlaces);
  });
}

TEST(ChaosSweepAuto, UpgradesThenCompletes) {
  static constexpr int kPlaces = 4;
  sweep(kPlaces, [] {
    std::atomic<int> ran{0};
    finish([&] {  // kAuto: starts local, upgrades on the first asyncAt
      async([&ran] { ran.fetch_add(1); });
      for (int p = 1; p < num_places(); ++p) {
        asyncAt(p, [&ran] { ran.fetch_add(1); });
      }
    });
    ASSERT_EQ(ran.load(), kPlaces);
    ASSERT_EQ(Runtime::get().metrics().value("finish.upgrades"), 1u);
  });
}

TEST(ChaosSweepAsync, SingleRemoteActivity) {
  sweep(4, [] {
    std::atomic<int> ran{0};
    for (int i = 0; i < 4; ++i) {
      finish(Pragma::kAsync, [&] {
        asyncAt(2, [&ran] { ran.fetch_add(1); });
      });
    }
    ASSERT_EQ(ran.load(), 4);
    // FINISH_ASYNC: one completion message per (remote) activity, exactly.
    ASSERT_EQ(Runtime::get().metrics().value("finish.completion_msgs"), 4u);
  });
}

TEST(ChaosSweepHere, CreditChainsAndBranches) {
  sweep(4, [] {
    std::atomic<int> hops{0};
    finish(Pragma::kHere, [&] {
      asyncAt(1, [&hops] {
        hops.fetch_add(1);
        asyncAt(2, [&hops] {
          hops.fetch_add(1);
          asyncAt(0, [&hops] { hops.fetch_add(1); });
        });
      });
    });
    finish(Pragma::kHere, [&] {  // branching chain: k children mint credits
      asyncAt(1, [&hops] {
        asyncAt(2, [&hops] { hops.fetch_add(1); });
        asyncAt(3, [&hops] { hops.fetch_add(1); });
      });
    });
    ASSERT_EQ(hops.load(), 5);
  });
}

TEST(ChaosSweepHere, ManyBodyMintsDoNotWrapCredit) {
  static constexpr int kPlaces = 4;
  static constexpr int kSpawns = 8;
  sweep(kPlaces, [] {
    std::atomic<int> ran{0};
    finish(Pragma::kHere, [&] {
      // Each body-level spawn mints kCreditUnit = 2^62 of outstanding
      // weight. A 64-bit accumulator wraps to exactly zero after the fourth
      // concurrent mint and releases the finish while tasks still run;
      // the 128-bit accumulator must hold all eight plus their splits.
      for (int i = 0; i < kSpawns; ++i) {
        const int p = 1 + i % (kPlaces - 1);
        asyncAt(p, [&ran] {
          asyncAt(0, [&ran] { ran.fetch_add(1); });  // round trip home
        });
      }
    });
    ASSERT_EQ(ran.load(), kSpawns);
    // Every remote activity returned its weight in one control message.
    ASSERT_EQ(Runtime::get().metrics().value("finish.credit_msgs"),
              static_cast<std::uint64_t>(kSpawns));
  });
}

TEST(ChaosSweepLocal, PurelyLocalStaysSilent) {
  sweep(2, [] {
    std::atomic<int> n{0};
    finish(Pragma::kLocal, [&] {
      for (int i = 0; i < 32; ++i) async([&n] { n.fetch_add(1); });
    });
    ASSERT_EQ(n.load(), 32);
    // FINISH_LOCAL never touches the control plane, chaos or not.
    auto& m = Runtime::get().metrics();
    ASSERT_EQ(m.value("finish.snapshots.sent"), 0u);
    ASSERT_EQ(m.value("finish.completion_msgs"), 0u);
    ASSERT_EQ(m.value("finish.releases"), 0u);
  });
}

TEST(ChaosSweepSpmd, OneActivityPerPlace) {
  static constexpr int kPlaces = 5;
  sweep(kPlaces, [] {
    std::atomic<int> n{0};
    finish(Pragma::kSpmd, [&] {
      for (int p = 1; p < num_places(); ++p) {
        asyncAt(p, [&n] {
          finish(Pragma::kLocal, [&] {
            for (int i = 0; i < 4; ++i) async([&n] { n.fetch_add(1); });
          });
        });
      }
    });
    ASSERT_EQ(n.load(), 4 * (kPlaces - 1));
    // One completion control message per remote place, exactly.
    ASSERT_EQ(Runtime::get().metrics().value("finish.completion_msgs"),
              static_cast<std::uint64_t>(kPlaces - 1));
  });
}

TEST(ChaosSweepDense, RoutedFanout) {
  static constexpr int kPlaces = 6;
  // places_per_node = 2 so dense routing actually relays through masters.
  sweep(
      kPlaces,
      [] {
        std::atomic<int> ran{0};
        finish(Pragma::kDense, [&] {
          for (int p = 0; p < num_places(); ++p) {
            asyncAt(p, [&ran] {
              ran.fetch_add(1);
              async([&ran] { ran.fetch_add(1); });
            });
          }
        });
        ASSERT_EQ(ran.load(), 2 * kPlaces);
      },
      /*places_per_node=*/2);
}

// --- team collectives under chaos ------------------------------------------

TEST(ChaosSweepTeam, BarrierOrdersPhases) {
  static constexpr int kPlaces = 4;
  sweep(kPlaces, [] {
    std::atomic<int> before{0};
    std::atomic<bool> violated{false};
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [&] {
          Team world = Team::world();
          before.fetch_add(1);
          world.barrier();
          // After the barrier every place must have checked in.
          if (before.load() != kPlaces) violated.store(true);
          world.barrier();  // second barrier: reusable under chaos
        });
      }
    });
    ASSERT_FALSE(violated.load());
  });
}

TEST(ChaosSweepTeam, NativeBarrierBackToBackReuse) {
  // Back-to-back native barriers from every rank (ISSUE 5 satellite): the
  // sense-reversal reset must zero barrier_count *before* publishing the new
  // generation, or a fast rank re-entering the next barrier would add its
  // arrival to the previous epoch's count and release it early. Each round
  // checks the happens-before edge the barrier promises, then immediately
  // reuses the same team state.
  static constexpr int kPlaces = 4;
  static constexpr int kRounds = 16;
  sweep(kPlaces, [] {
    std::atomic<int> arrived{0};
    std::atomic<bool> violated{false};
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [&] {
          Team world = Team::world(TeamMode::kNative);
          for (int r = 0; r < kRounds; ++r) {
            arrived.fetch_add(1);
            world.barrier();
            // After barrier r, all kPlaces ranks of round r have arrived.
            if (arrived.load() < (r + 1) * kPlaces) violated.store(true);
          }
        });
      }
    });
    ASSERT_FALSE(violated.load());
  });
}

// --- cross-backend differential sweep (ISSUE 6 headline) -------------------
//
// The same job runs on the in-process inbox backend and again as one OS
// process per place over the socket backend, with lossy chaos + coalescing
// armed in both, and the protocol-structure counters must be *exactly* equal.
// Jobs are built from registered frame tasks (asyncAtFrame), the only spawn
// form that can cross a process boundary; registration happens at namespace
// scope (pre-main, hence pre-fork) so every place process agrees on the ids.
// Verification goes through the metrics registry, not captured locals: in
// socket mode the job body runs in forked children whose writes to parent
// stack variables are invisible (copy-on-write), while counters flow back
// through the launcher's aggregation.

void bump_ran() {
  Runtime::get().metrics().counter("test.ran").fetch_add(
      1, std::memory_order_relaxed);
}

void fn_bump(x10rt::ByteBuffer&) { bump_ran(); }
const int kFnBump = register_task_fn(&fn_bump);

void fn_bump_nest(x10rt::ByteBuffer&) {
  bump_ran();
  async([] { bump_ran(); });  // local closure children are still fine
}
const int kFnBumpNest = register_task_fn(&fn_bump_nest);

// Ring chain: bump, then forward to the next place with one hop fewer.
// Frame: [hops i32]
void fn_chain(x10rt::ByteBuffer&);
const int kFnChain = register_task_fn(&fn_chain);
void fn_chain(x10rt::ByteBuffer& args) {
  const auto hops = args.get<std::int32_t>();
  bump_ran();
  if (hops > 0) {
    x10rt::ByteBuffer next;
    next.put<std::int32_t>(hops - 1);
    asyncAtFrame((here() + 1) % num_places(), kFnChain, std::move(next));
  }
}

void fn_local_fanout(x10rt::ByteBuffer&) {
  bump_ran();
  finish(Pragma::kLocal, [] {
    for (int i = 0; i < 4; ++i) async([] { bump_ran(); });
  });
}
const int kFnLocalFanout = register_task_fn(&fn_local_fanout);

/// The structural keys compared across backends. Same spirit as
/// kStructuralKeys minus "sched.msgs.task": frame tasks ride coalesced
/// envelopes, so the per-message dequeue split differs between an in-process
/// inbox and a socket stream while the task count itself ("runtime.
/// tasks_shipped") stays pinned. "finish.closed" joins the set because in
/// socket mode it proves the sum over *independent processes* still balances.
const char* const kDiffKeys[] = {
    "finish.opened",          "finish.closed",
    "finish.upgrades",        "runtime.tasks_shipped",
    "finish.completion_msgs", "finish.credit_msgs",
    "finish.snapshots.sent",  "finish.releases",
};

std::map<std::string, std::uint64_t> diff_structural(
    const std::map<std::string, std::uint64_t>& snap) {
  std::map<std::string, std::uint64_t> out;
  for (const char* key : kDiffKeys) {
    auto it = snap.find(key);
    out[key] = it == snap.end() ? 0 : it->second;
  }
  return out;
}

/// Runs `job` per seed on both backends — lossy chaos and small coalescing
/// thresholds armed in both — and asserts (a) the job's own activity count
/// via the "test.ran" counter, (b) the all-acked teardown fixpoint, (c) exact
/// equality of the structural counters between backends.
template <typename Job>
void run_diff(int places, Job job, std::uint64_t expect_ran,
              int places_per_node = 8) {
  for (int s = 0; s < kNumSeeds; ++s) {
    std::map<std::string, std::uint64_t> reference;
    bool have_reference = false;
    // The autotune leg re-runs both backends with the online controller
    // adapting thresholds and retransmit timers under the same lossy chaos:
    // the all-acked fixpoint and the structural books must be unmoved by
    // adaptive timing on either backend.
    for (const bool autotune : {false, true}) {
    for (const bool socket : {false, true}) {
      SCOPED_TRACE(std::string(socket ? "socket" : "inproc") +
                   (autotune ? " autotune" : "") + " seed index " +
                   std::to_string(s));
      Config cfg = chaos_cfg(places, kSeeds[s], places_per_node);
      arm_lossy(cfg);
      cfg.coalesce_bytes = 512;
      cfg.coalesce_msgs = 8;
      if (autotune) cfg.autotune = 1;
      // The differential matrix reuses one metrics/trace path many times per
      // test; keep these runs silent so CI artifacts stay one-run-per-file.
      cfg.trace = false;
      cfg.trace_path.clear();
      cfg.metrics_path.clear();
      if (socket) cfg.backend = BackendKind::kSocket;
      Runtime::run(cfg, job);
      const auto& m = last_run_metrics();
      const auto ran_it = m.find("test.ran");
      ASSERT_EQ(ran_it == m.end() ? 0 : ran_it->second, expect_ran)
          << "job lost or duplicated activities";
      // Teardown drained to the all-acked fixpoint on this backend too.
      EXPECT_EQ(m.at("transport.retx.sent"), m.at("transport.retx.acked"));
      EXPECT_EQ(m.at("finish.snapshots.sent"),
                m.at("finish.snapshots.applied") +
                    m.at("finish.snapshots.stale"));
      // Ship-latency routing (clock-domain bugfix): with histograms armed,
      // every shipped frame task records exactly one sample — in-process
      // into task.ship_ns, cross-process into task.ship_xproc_ns — and the
      // clamp keeps a skewed clock from poisoning the max with ~2^64 ns.
      auto val = [&m](const char* k) {
        auto it = m.find(k);
        return it == m.end() ? std::uint64_t{0} : it->second;
      };
      if (socket) {
        EXPECT_EQ(val("hist.task.ship_xproc_ns.count"),
                  m.at("runtime.tasks_shipped"));
        EXPECT_LT(val("hist.task.ship_xproc_ns.max"), std::uint64_t{1} << 62);
        // Clock-aligned twin (launcher clock handshake): offsets are armed
        // before any worker starts, so every cross-process sample also
        // records corrected — and the correction must keep the max far from
        // the 2^63 wraparound regime a mis-signed offset would produce.
        EXPECT_EQ(val("hist.task.ship_xproc_aligned_ns.count"),
                  m.at("runtime.tasks_shipped"));
        EXPECT_LT(val("hist.task.ship_xproc_aligned_ns.max"),
                  std::uint64_t{1} << 62);
      } else {
        EXPECT_EQ(val("hist.task.ship_ns.count"),
                  m.at("runtime.tasks_shipped"));
        EXPECT_EQ(val("hist.task.ship_xproc_ns.count"), 0u);
        // No clock handshake ever runs in-process; the aligned histogram
        // must stay untouched (telemetry-off inertness).
        EXPECT_EQ(val("hist.task.ship_xproc_aligned_ns.count"), 0u);
      }
      const auto strut = diff_structural(m);
      if (!have_reference) {
        reference = strut;
        have_reference = true;
      } else {
        EXPECT_EQ(strut, reference)
            << "structural counters diverged between the in-process and "
               "socket backends (or with the autotune controller armed)";
      }
    }
    }
  }
}

TEST(DiffBackendDefault, FanoutWithNestedChildren) {
  static constexpr int kPlaces = 4;
  run_diff(
      kPlaces,
      [] {
        finish(Pragma::kDefault, [] {
          for (int p = 0; p < num_places(); ++p) {
            asyncAtFrame(p, kFnBumpNest);
          }
        });
      },
      /*expect_ran=*/2 * kPlaces);
}

TEST(DiffBackendAuto, UpgradesThenCompletes) {
  static constexpr int kPlaces = 4;
  run_diff(
      kPlaces,
      [] {
        finish([] {  // kAuto: starts local, upgrades on the first frame spawn
          async([] { bump_ran(); });
          for (int p = 1; p < num_places(); ++p) {
            asyncAtFrame(p, kFnBump);
          }
        });
      },
      /*expect_ran=*/kPlaces);
}

TEST(DiffBackendAsync, SingleRemoteActivityRepeated) {
  run_diff(
      4,
      [] {
        for (int i = 0; i < 4; ++i) {
          finish(Pragma::kAsync, [] { asyncAtFrame(2, kFnBump); });
        }
      },
      /*expect_ran=*/4);
}

TEST(DiffBackendHere, CreditChainWrapsTheRing) {
  // hops=5 from place 1 visits 1,2,3,0,1,2 — including a spawn that lands
  // back on the finish home, exercising the mint-or-split credit path from a
  // remote process.
  run_diff(
      4,
      [] {
        finish(Pragma::kHere, [] {
          x10rt::ByteBuffer args;
          args.put<std::int32_t>(5);
          asyncAtFrame(1, kFnChain, std::move(args));
        });
      },
      /*expect_ran=*/6);
}

TEST(DiffBackendSpmd, LocalFanoutPerPlace) {
  static constexpr int kPlaces = 4;
  run_diff(
      kPlaces,
      [] {
        finish(Pragma::kSpmd, [] {
          for (int p = 1; p < num_places(); ++p) {
            asyncAtFrame(p, kFnLocalFanout);
          }
        });
      },
      /*expect_ran=*/5 * (kPlaces - 1));
}

TEST(DiffBackendDense, RoutedFanout) {
  static constexpr int kPlaces = 6;
  // places_per_node = 2 so dense routing actually relays through masters.
  run_diff(
      kPlaces,
      [] {
        finish(Pragma::kDense, [] {
          for (int p = 0; p < num_places(); ++p) {
            asyncAtFrame(p, kFnBumpNest);
          }
        });
      },
      /*expect_ran=*/2 * kPlaces,
      /*places_per_node=*/2);
}

// --- hierarchical teams under chaos (ISSUE 7) ------------------------------
//
// Each finish protocol hosts the same collective round on the hierarchical
// *and* emulated world teams with identical integer-valued inputs.
// Integer-valued doubles make floating-point addition exact in every combine
// order, so the two paths must agree bit for bit — any mismatch means a
// fragment was lost, duplicated, or mis-offset, not a rounding artifact.

void hier_vs_emulated_round(std::atomic<int>& ok, int salt) {
  Team hier = Team::world(TeamMode::kHierarchical);
  Team emu = Team::world(TeamMode::kEmulated);
  hier.barrier();
  constexpr std::size_t kN = 65;
  std::vector<double> a(kN), b(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    a[i] = b[i] =
        static_cast<double>((hier.rank() + 1) * (static_cast<int>(i) + salt));
  }
  bool good = true;
  hier.allreduce(a.data(), kN, ReduceOp::kSum);
  emu.allreduce(b.data(), kN, ReduceOp::kSum);
  good = good && std::memcmp(a.data(), b.data(), kN * sizeof(double)) == 0;
  // Reduce to a non-zero root (exercises the reroot promotion); non-root
  // buffers are scratch, so only the root's bits are comparable.
  const int root = 1 % hier.size();
  for (std::size_t i = 0; i < kN; ++i) {
    a[i] = b[i] =
        static_cast<double>((hier.rank() + 2) * (static_cast<int>(i) + salt));
  }
  hier.reduce(root, a.data(), kN, ReduceOp::kSum);
  emu.reduce(root, b.data(), kN, ReduceOp::kSum);
  if (hier.rank() == root) {
    good = good && std::memcmp(a.data(), b.data(), kN * sizeof(double)) == 0;
  }
  if (good) ok.fetch_add(1);
}

TEST(ChaosSweepTeamHier, FanoutProtocolsBitExactVsEmulated) {
  static constexpr int kPlaces = 6;
  sweep(
      kPlaces,
      [] {
        int salt = 1;
        for (Pragma pr : {Pragma::kDefault, Pragma::kAuto, Pragma::kSpmd,
                          Pragma::kDense}) {
          std::atomic<int> ok{0};
          finish(pr, [&] {
            for (int p = 0; p < num_places(); ++p) {
              asyncAt(p, [&ok, salt] { hier_vs_emulated_round(ok, salt); });
            }
          });
          ASSERT_EQ(ok.load(), kPlaces) << "pragma " << pragma_name(pr);
          ++salt;
        }
      },
      /*places_per_node=*/4);  // uneven leaf groups: {0..3} and {4,5}
}

TEST(ChaosSweepTeamHier, AsyncHereLocalProtocolsBitExactVsEmulated) {
  static constexpr int kPlaces = 4;
  sweep(
      kPlaces,
      [] {
        // kAsync / kHere allow one remote child per finish; open one finish
        // per place concurrently (as local asyncs) so the collective rounds
        // can rendezvous — blocked finishes pump the scheduler.
        int salt = 10;
        for (Pragma pr : {Pragma::kAsync, Pragma::kHere}) {
          std::atomic<int> ok{0};
          finish(Pragma::kDefault, [&] {
            for (int p = 0; p < num_places(); ++p) {
              async([&ok, p, pr, salt] {
                finish(pr, [&ok, p, salt] {
                  asyncAt(p,
                          [&ok, salt] { hier_vs_emulated_round(ok, salt); });
                });
              });
            }
          });
          ASSERT_EQ(ok.load(), kPlaces) << "pragma " << pragma_name(pr);
          ++salt;
        }
        // kLocal cannot spawn remotely; run it around purely local fan-out
        // at every place, then the collective round after it closes.
        std::atomic<int> ok{0};
        finish(Pragma::kSpmd, [&] {
          for (int p = 0; p < num_places(); ++p) {
            asyncAt(p, [&ok] {
              std::atomic<int> n{0};
              finish(Pragma::kLocal, [&] {
                for (int i = 0; i < 4; ++i) async([&n] { n.fetch_add(1); });
              });
              if (n.load() == 4) hier_vs_emulated_round(ok, 20);
            });
          }
        });
        ASSERT_EQ(ok.load(), kPlaces);
      },
      /*places_per_node=*/2);  // two places per leaf group: depth-2 tree
}

// --- Team and GLB over the socket backend (ISSUE 10) ------------------------
//
// Team mail now rides registered frame tasks and GLB's steal/lifeline/loot
// protocol ships bags through their Ser hooks, so both run under the socket
// backend. The legs below are the structural-equality proof: the same
// collective rounds and the same balancing job on both backends, lossy chaos
// and coalescing armed, books compared cell by cell.

/// One collective round as a frame task: [mode u8]. Every place runs
/// barrier -> allreduce(sum) -> bcast-from-0 on the world team of that mode,
/// checks the values, and bumps "test.ran" on success. In socket mode a
/// kNative team downgrades to the emulated algorithms (effective_mode), and
/// the kDiffKeys books must not notice: mail rides immediates, which are
/// outside every structural counter.
void fn_team_round(x10rt::ByteBuffer& args) {
  const auto mode = static_cast<TeamMode>(args.get<std::uint8_t>());
  Team t = Team::world(mode);
  t.barrier();
  double v = 1.0 + t.rank();
  t.allreduce(&v, 1, ReduceOp::kSum);
  const double want = t.size() * (t.size() + 1) / 2.0;
  std::uint64_t word = t.rank() == 0 ? 0x5eedULL : 0;
  t.bcast(0, &word, 1);
  if (v == want && word == 0x5eedULL) bump_ran();
}
const int kFnTeamRound = register_task_fn(&fn_team_round);

void team_diff_job(TeamMode mode) {
  finish(Pragma::kSpmd, [mode] {
    for (int p = 0; p < num_places(); ++p) {
      x10rt::ByteBuffer args;
      args.put<std::uint8_t>(static_cast<std::uint8_t>(mode));
      asyncAtFrame(p, kFnTeamRound, std::move(args));
    }
  });
}

TEST(DiffBackendTeam, EmulatedCollectivesMatchAcrossBackends) {
  static constexpr int kPlaces = 4;
  run_diff(
      kPlaces, [] { team_diff_job(TeamMode::kEmulated); },
      /*expect_ran=*/kPlaces);
}

TEST(DiffBackendTeam, NativeDowngradesToEmulatedOverSockets) {
  static constexpr int kPlaces = 4;
  run_diff(
      kPlaces, [] { team_diff_job(TeamMode::kNative); },
      /*expect_ran=*/kPlaces);
}

TEST(DiffBackendTeam, HierarchicalCollectivesMatchAcrossBackends) {
  static constexpr int kPlaces = 4;
  // places_per_node = 2: in-process the leaf groups are {0,1},{2,3} with
  // shared-memory publish; over sockets the hierarchy collapses to singleton
  // leaves and everything rides mail frames. Same books either way.
  run_diff(
      kPlaces, [] { team_diff_job(TeamMode::kHierarchical); },
      /*expect_ran=*/kPlaces, /*places_per_node=*/2);
}

TEST(DiffBackendGlb, CounterBagProcessedTotalsMatchAcrossBackends) {
  // GLB's full structural books are NOT backend-comparable: steal timing and
  // lifeline resuscitations vary with the schedule, and each resuscitation
  // ships a task ("runtime.tasks_shipped" moves). What must hold on *every*
  // backend and seed: each work unit processed exactly once (the summed
  // "glb.processed" counter), the job's own verification, and the all-acked
  // teardown fixpoint.
  static constexpr int kPlaces = 4;
  static constexpr std::uint64_t kUnits = 3000;
  for (int s = 0; s < kNumSeeds; ++s) {
    for (const bool socket : {false, true}) {
      SCOPED_TRACE(std::string(socket ? "socket" : "inproc") +
                   " seed index " + std::to_string(s));
      Config cfg = chaos_cfg(kPlaces, kSeeds[s]);
      arm_lossy(cfg);
      cfg.coalesce_bytes = 512;
      cfg.coalesce_msgs = 8;
      cfg.trace = false;
      cfg.trace_path.clear();
      cfg.metrics_path.clear();
      if (socket) cfg.backend = BackendKind::kSocket;
      Runtime::run(cfg, [] {
        glb::Glb<glb::CounterBag> balancer{glb::GlbConfig{}};
        balancer.run(glb::CounterBag(0, kUnits));
        std::uint64_t total = 0;
        for (int p = 0; p < num_places(); ++p) {
          total += balancer.stats_at(p).processed;
        }
        if (total == kUnits) bump_ran();
      });
      const auto& m = last_run_metrics();
      const auto ran_it = m.find("test.ran");
      ASSERT_EQ(ran_it == m.end() ? 0 : ran_it->second, 1u)
          << "gathered per-place stats did not sum to the seeded work";
      EXPECT_EQ(m.at("glb.processed"), kUnits)
          << "a work unit was lost or processed twice";
      EXPECT_EQ(m.at("transport.retx.sent"), m.at("transport.retx.acked"));
      EXPECT_EQ(m.at("finish.snapshots.sent"),
                m.at("finish.snapshots.applied") +
                    m.at("finish.snapshots.stale"));
    }
  }
}

TEST(ChaosSweepTeam, AllreduceSumsEveryRank) {
  static constexpr int kPlaces = 4;
  sweep(kPlaces, [] {
    std::atomic<int> correct{0};
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [&correct] {
          Team world = Team::world();
          double v = 1.0 + world.rank();
          world.allreduce(&v, 1, ReduceOp::kSum);
          // 1 + 2 + ... + n.
          const double want = world.size() * (world.size() + 1) / 2.0;
          if (v == want) correct.fetch_add(1);
        });
      }
    });
    ASSERT_EQ(correct.load(), kPlaces);
  });
}

}  // namespace
