// Chaos sweep (ISSUE satellite a): every finish protocol plus Team
// collectives, each run under message-chaos (random delay + reordering in
// the transport) with >= 8 distinct seeds, asserting
//   1. completion — the job finishes and every activity ran exactly once;
//   2. exact accounting — the MetricsRegistry counters that describe
//      protocol *structure* (tasks shipped, completions, credits, snapshot
//      conservation) are identical across seeds: chaos may reshuffle timing
//      arbitrarily, but never the books.
// Registered in CMake with TEST_PREFIX "chaos_sweep/" so
// `ctest -R chaos_sweep` selects the whole sweep.
#include "runtime/api.h"
#include "runtime/metrics.h"
#include "runtime/team.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace {

using namespace apgas;

constexpr std::uint64_t kSeeds[] = {0x1ULL,
                                    0x5eedULL,
                                    0xdeadbeefULL,
                                    0x9e3779b97f4a7c15ULL,
                                    0x2545f4914f6cdd1dULL,
                                    0xa076bc9f00ULL,
                                    0x13371337ULL,
                                    0xfeedfacecafeULL};
constexpr int kNumSeeds = 8;
static_assert(sizeof(kSeeds) / sizeof(kSeeds[0]) == kNumSeeds);

Config chaos_cfg(int places, std::uint64_t seed, int places_per_node = 8) {
  Config cfg;
  cfg.places = places;
  cfg.places_per_node = places_per_node;
  cfg.chaos.delay_prob = 0.3;
  cfg.chaos.seed = seed;
  // Histograms stay armed for the whole sweep: the structural invariants
  // below tie histogram *counts* to the protocol counters.
  cfg.histograms = true;
  // CI's traced iteration points these at artifact paths; locally they are
  // unset and the sweep runs silent. Each run overwrites the files — the
  // artifact is "one representative chaos run", not the full sweep.
  if (const char* p = std::getenv("APGAS_TRACE")) {
    cfg.trace = true;
    cfg.trace_path = p;
  }
  if (const char* p = std::getenv("APGAS_METRICS")) cfg.metrics_path = p;
  return cfg;
}

/// Sum of one key across the finish protocols ("hist.finish.close_ns.auto.
/// count" + ... for every pragma name).
std::uint64_t sum_close_counts(const std::map<std::string, std::uint64_t>& m) {
  std::uint64_t total = 0;
  for (int p = 0; p < kNumPragmas; ++p) {
    const std::string key = std::string("hist.finish.close_ns.") +
                            pragma_name(static_cast<Pragma>(p)) + ".count";
    auto it = m.find(key);
    if (it != m.end()) total += it->second;
  }
  return total;
}

/// Sum of sched.pN.activities_executed over all places.
std::uint64_t sum_activities(const std::map<std::string, std::uint64_t>& m,
                             int places) {
  std::uint64_t total = 0;
  for (int p = 0; p < places; ++p) {
    total += m.at("sched.p" + std::to_string(p) + ".activities_executed");
  }
  return total;
}

/// The protocol-structure counters that chaos must not change. Timing-driven
/// counters are deliberately absent: idle transitions, dense relay batch
/// counts, and the applied/stale *split* of snapshots (a snapshot racing the
/// release lands stale on some schedules) — though their *sum* is pinned via
/// "finish.snapshots.sent" and the per-run conservation law in sweep().
const char* const kStructuralKeys[] = {
    "finish.opened",         "finish.upgrades",
    "runtime.tasks_shipped", "finish.completion_msgs",
    "finish.credit_msgs",    "finish.snapshots.sent",
    "finish.releases",       "sched.msgs.task",
};

std::map<std::string, std::uint64_t> structural(
    const std::map<std::string, std::uint64_t>& snap) {
  std::map<std::string, std::uint64_t> out;
  for (const char* key : kStructuralKeys) {
    auto it = snap.find(key);
    out[key] = it == snap.end() ? 0 : it->second;
  }
  return out;
}

/// Runs `job` once per seed — with the sender-side coalescing layer off and
/// again with it on — asserting per-run invariants and equality of the
/// structural counters across *all* runs: neither chaos scheduling nor wire
/// batching may change the protocol books.
template <typename Job>
void sweep(int places, Job job, int places_per_node = 8) {
  std::map<std::string, std::uint64_t> reference;
  bool have_reference = false;
  for (const bool coalesce : {false, true}) {
    for (int s = 0; s < kNumSeeds; ++s) {
      SCOPED_TRACE(std::string(coalesce ? "coalesce-on" : "coalesce-off") +
                   " seed index " + std::to_string(s));
      Config cfg = chaos_cfg(places, kSeeds[s], places_per_node);
      if (coalesce) {
        // Small thresholds so envelopes actually mix records *and* partial
        // envelopes actually park — exercising every flush reason under
        // chaos, including the idle/quiescence paths termination relies on.
        cfg.coalesce_bytes = 512;
        cfg.coalesce_msgs = 8;
      }
      Runtime::run(cfg, job);
      const auto& m = last_run_metrics();
      // Conservation: every snapshot sent is either applied or provably
      // stale.
      EXPECT_EQ(m.at("finish.snapshots.sent"),
                m.at("finish.snapshots.applied") +
                    m.at("finish.snapshots.stale"));
      // Every shipped task crossed the transport and was dequeued exactly
      // once (tasks are never coalesced, so this holds in both modes).
      EXPECT_EQ(m.at("runtime.tasks_shipped"), m.at("sched.msgs.task"));
      EXPECT_EQ(m.at("runtime.tasks_shipped"), m.at("transport.msgs.task"));
      // Histogram counts are structural too: with histograms armed for the
      // whole run, every protocol event must have produced exactly one
      // latency sample — a count mismatch means a recording site is gated
      // differently from its counter twin.
      EXPECT_EQ(m.at("finish.closed"), m.at("finish.opened"));
      EXPECT_EQ(sum_close_counts(m), m.at("finish.opened"));
      EXPECT_EQ(m.at("hist.task.ship_ns.count"),
                m.at("runtime.tasks_shipped"));
      EXPECT_EQ(m.at("hist.activity.exec_ns.count"),
                sum_activities(m, places));
      if (coalesce) {
        EXPECT_EQ(m.at("hist.envelope.residency_ns.count"),
                  m.at("transport.coalesce.envelopes"));
        // Envelope conservation: the flush-reason histogram accounts for
        // every envelope, and no envelope ships empty. (The per-reason
        // split itself is timing-dependent — not asserted.)
        const std::uint64_t envelopes = m.at("transport.coalesce.envelopes");
        EXPECT_EQ(envelopes, m.at("transport.coalesce.flush.size") +
                                 m.at("transport.coalesce.flush.count") +
                                 m.at("transport.coalesce.flush.idle") +
                                 m.at("transport.coalesce.flush.quiesce"));
        EXPECT_GE(m.at("transport.coalesce.records"), envelopes);
      }
      const auto strut = structural(m);
      if (!have_reference) {
        reference = strut;
        have_reference = true;
      } else {
        EXPECT_EQ(strut, reference)
            << "accounting drifted with the chaos seed / coalescing mode";
      }
    }
  }
}

// --- the six finish protocols ----------------------------------------------

TEST(ChaosSweepDefault, FanoutWithNestedChildren) {
  static constexpr int kPlaces = 4;
  sweep(kPlaces, [] {
    std::atomic<int> ran{0};
    finish(Pragma::kDefault, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [&ran] {
          ran.fetch_add(1);
          async([&ran] { ran.fetch_add(1); });
        });
      }
    });
    ASSERT_EQ(ran.load(), 2 * kPlaces);
  });
}

TEST(ChaosSweepAuto, UpgradesThenCompletes) {
  static constexpr int kPlaces = 4;
  sweep(kPlaces, [] {
    std::atomic<int> ran{0};
    finish([&] {  // kAuto: starts local, upgrades on the first asyncAt
      async([&ran] { ran.fetch_add(1); });
      for (int p = 1; p < num_places(); ++p) {
        asyncAt(p, [&ran] { ran.fetch_add(1); });
      }
    });
    ASSERT_EQ(ran.load(), kPlaces);
    ASSERT_EQ(Runtime::get().metrics().value("finish.upgrades"), 1u);
  });
}

TEST(ChaosSweepAsync, SingleRemoteActivity) {
  sweep(4, [] {
    std::atomic<int> ran{0};
    for (int i = 0; i < 4; ++i) {
      finish(Pragma::kAsync, [&] {
        asyncAt(2, [&ran] { ran.fetch_add(1); });
      });
    }
    ASSERT_EQ(ran.load(), 4);
    // FINISH_ASYNC: one completion message per (remote) activity, exactly.
    ASSERT_EQ(Runtime::get().metrics().value("finish.completion_msgs"), 4u);
  });
}

TEST(ChaosSweepHere, CreditChainsAndBranches) {
  sweep(4, [] {
    std::atomic<int> hops{0};
    finish(Pragma::kHere, [&] {
      asyncAt(1, [&hops] {
        hops.fetch_add(1);
        asyncAt(2, [&hops] {
          hops.fetch_add(1);
          asyncAt(0, [&hops] { hops.fetch_add(1); });
        });
      });
    });
    finish(Pragma::kHere, [&] {  // branching chain: k children mint credits
      asyncAt(1, [&hops] {
        asyncAt(2, [&hops] { hops.fetch_add(1); });
        asyncAt(3, [&hops] { hops.fetch_add(1); });
      });
    });
    ASSERT_EQ(hops.load(), 5);
  });
}

TEST(ChaosSweepHere, ManyBodyMintsDoNotWrapCredit) {
  static constexpr int kPlaces = 4;
  static constexpr int kSpawns = 8;
  sweep(kPlaces, [] {
    std::atomic<int> ran{0};
    finish(Pragma::kHere, [&] {
      // Each body-level spawn mints kCreditUnit = 2^62 of outstanding
      // weight. A 64-bit accumulator wraps to exactly zero after the fourth
      // concurrent mint and releases the finish while tasks still run;
      // the 128-bit accumulator must hold all eight plus their splits.
      for (int i = 0; i < kSpawns; ++i) {
        const int p = 1 + i % (kPlaces - 1);
        asyncAt(p, [&ran] {
          asyncAt(0, [&ran] { ran.fetch_add(1); });  // round trip home
        });
      }
    });
    ASSERT_EQ(ran.load(), kSpawns);
    // Every remote activity returned its weight in one control message.
    ASSERT_EQ(Runtime::get().metrics().value("finish.credit_msgs"),
              static_cast<std::uint64_t>(kSpawns));
  });
}

TEST(ChaosSweepLocal, PurelyLocalStaysSilent) {
  sweep(2, [] {
    std::atomic<int> n{0};
    finish(Pragma::kLocal, [&] {
      for (int i = 0; i < 32; ++i) async([&n] { n.fetch_add(1); });
    });
    ASSERT_EQ(n.load(), 32);
    // FINISH_LOCAL never touches the control plane, chaos or not.
    auto& m = Runtime::get().metrics();
    ASSERT_EQ(m.value("finish.snapshots.sent"), 0u);
    ASSERT_EQ(m.value("finish.completion_msgs"), 0u);
    ASSERT_EQ(m.value("finish.releases"), 0u);
  });
}

TEST(ChaosSweepSpmd, OneActivityPerPlace) {
  static constexpr int kPlaces = 5;
  sweep(kPlaces, [] {
    std::atomic<int> n{0};
    finish(Pragma::kSpmd, [&] {
      for (int p = 1; p < num_places(); ++p) {
        asyncAt(p, [&n] {
          finish(Pragma::kLocal, [&] {
            for (int i = 0; i < 4; ++i) async([&n] { n.fetch_add(1); });
          });
        });
      }
    });
    ASSERT_EQ(n.load(), 4 * (kPlaces - 1));
    // One completion control message per remote place, exactly.
    ASSERT_EQ(Runtime::get().metrics().value("finish.completion_msgs"),
              static_cast<std::uint64_t>(kPlaces - 1));
  });
}

TEST(ChaosSweepDense, RoutedFanout) {
  static constexpr int kPlaces = 6;
  // places_per_node = 2 so dense routing actually relays through masters.
  sweep(
      kPlaces,
      [] {
        std::atomic<int> ran{0};
        finish(Pragma::kDense, [&] {
          for (int p = 0; p < num_places(); ++p) {
            asyncAt(p, [&ran] {
              ran.fetch_add(1);
              async([&ran] { ran.fetch_add(1); });
            });
          }
        });
        ASSERT_EQ(ran.load(), 2 * kPlaces);
      },
      /*places_per_node=*/2);
}

// --- team collectives under chaos ------------------------------------------

TEST(ChaosSweepTeam, BarrierOrdersPhases) {
  static constexpr int kPlaces = 4;
  sweep(kPlaces, [] {
    std::atomic<int> before{0};
    std::atomic<bool> violated{false};
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [&] {
          Team world = Team::world();
          before.fetch_add(1);
          world.barrier();
          // After the barrier every place must have checked in.
          if (before.load() != kPlaces) violated.store(true);
          world.barrier();  // second barrier: reusable under chaos
        });
      }
    });
    ASSERT_FALSE(violated.load());
  });
}

TEST(ChaosSweepTeam, AllreduceSumsEveryRank) {
  static constexpr int kPlaces = 4;
  sweep(kPlaces, [] {
    std::atomic<int> correct{0};
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [&correct] {
          Team world = Team::world();
          double v = 1.0 + world.rank();
          world.allreduce(&v, 1, ReduceOp::kSum);
          // 1 + 2 + ... + n.
          const double want = world.size() * (world.size() + 1) / 2.0;
          if (v == want) correct.fetch_add(1);
        });
      }
    });
    ASSERT_EQ(correct.load(), kPlaces);
  });
}

}  // namespace
