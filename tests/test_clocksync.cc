// Unit tests for the distributed-telemetry building blocks: the Cristian
// clock-offset estimator and drift model (clocksync.h), the telemetry frame
// helpers (telemetry.h), the trace blob codec, and the merged Perfetto
// exporter's happened-before clamping (trace.h). All pure functions — no
// sockets, no forks.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "runtime/clocksync.h"
#include "runtime/telemetry.h"
#include "runtime/trace.h"

namespace apgas {
namespace {

using clocksync::DriftModel;
using clocksync::Estimate;
using clocksync::Sample;

// --- offset estimation -------------------------------------------------------

TEST(ClockSync, SymmetricRoundRecoversExactOffset) {
  // Child clock runs 500ns behind the supervisor; wire delay 100ns each way.
  // t0=1000 (sup), child reads remote = (1100 - 500) = 600, t1=1200.
  const Estimate e = clocksync::estimate({{1000, 1200, 600}});
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(e.offset_ns, 500);  // sup = child + 500
  EXPECT_EQ(e.rtt_ns, 200u);
  EXPECT_EQ(e.remote_ref_ns, 600u);
}

TEST(ClockSync, MinRttSampleWins) {
  // Three rounds; the middle one has the tightest RTT and a distinct echo,
  // so its midpoint must be the one used.
  const std::vector<Sample> rounds = {
      {1000, 3000, 1500},  // rtt 2000
      {5000, 5100, 5050},  // rtt 100  <- chosen: offset = 5050-5050 = 0
      {9000, 9900, 9000},  // rtt 900
  };
  const Estimate e = clocksync::estimate(rounds);
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(e.rtt_ns, 100u);
  EXPECT_EQ(e.offset_ns, 0);
  EXPECT_EQ(e.remote_ref_ns, 5050u);
}

TEST(ClockSync, AsymmetricJitterErrorBoundedByHalfRtt) {
  // True offset 0, but the reply leg is slower than the request leg: the
  // echo was taken at sup-time 1010 while the midpoint assumption says 1200.
  // The estimator's error must stay within rtt/2.
  const Estimate e = clocksync::estimate({{1000, 1400, 1010}});
  ASSERT_TRUE(e.valid);
  EXPECT_LE(std::abs(e.offset_ns - 0), static_cast<std::int64_t>(e.rtt_ns / 2));
}

TEST(ClockSync, TornAndEmptySamplesAreRejected) {
  EXPECT_FALSE(clocksync::estimate({}).valid);
  // t1 < t0: a torn read; the only sample, so the estimate is invalid.
  EXPECT_FALSE(clocksync::estimate({{2000, 1000, 1500}}).valid);
  // ...but a torn sample next to a good one is just skipped.
  const Estimate e = clocksync::estimate({{2000, 1000, 1500}, {1000, 1200, 600}});
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(e.offset_ns, 500);
}

// --- drift model -------------------------------------------------------------

TEST(ClockSync, DriftModelInterpolatesBetweenEstimates) {
  // Offset grows 1000ns over 1e9ns of child time => drift 1e-6 (1 ppm).
  Estimate a{1000, 100, 1'000'000'000, true};
  Estimate b{2000, 100, 2'000'000'000, true};
  const DriftModel m = clocksync::drift_model(a, b);
  EXPECT_EQ(m.offset_ns, 1000);
  EXPECT_EQ(m.remote_ref_ns, 1'000'000'000u);
  EXPECT_NEAR(m.drift, 1e-6, 1e-12);
  // Rebase at the second reference instant lands on offset b exactly.
  EXPECT_EQ(clocksync::rebase_ns(m, 2'000'000'000u),
            static_cast<std::int64_t>(2'000'000'000) + 2000);
  // Halfway: offset 1500.
  EXPECT_EQ(clocksync::rebase_ns(m, 1'500'000'000u),
            static_cast<std::int64_t>(1'500'000'000) + 1500);
}

TEST(ClockSync, ImplausibleDriftClampsToZero) {
  // 1ms of offset change over 100us of elapsed child time: 1e4 ppm — noise.
  Estimate a{0, 100, 1'000'000, true};
  Estimate b{1'000'000, 100, 1'100'000, true};
  const DriftModel m = clocksync::drift_model(a, b);
  EXPECT_EQ(m.drift, 0.0);
  EXPECT_EQ(m.offset_ns, 0);  // falls back to the earlier estimate
}

TEST(ClockSync, DriftModelDegradesWhenAnEstimateIsInvalid) {
  Estimate good{750, 100, 5000, true};
  Estimate bad;  // !valid
  DriftModel m = clocksync::drift_model(good, bad);
  EXPECT_EQ(m.drift, 0.0);
  EXPECT_EQ(m.offset_ns, 750);
  m = clocksync::drift_model(bad, good);
  EXPECT_EQ(m.offset_ns, 750);
  m = clocksync::drift_model(bad, bad);
  EXPECT_EQ(m.offset_ns, 0);  // identity
  EXPECT_EQ(clocksync::rebase_ns(m, 1234u), 1234);
}

// --- offset table + aligned latency -----------------------------------------

TEST(ClockSync, OffsetTableArmsAndAligns) {
  clocksync::clear_offsets();
  EXPECT_FALSE(clocksync::armed());
  EXPECT_EQ(clocksync::offset_ns(0), 0);

  // Place 0 runs 100ns ahead of the supervisor, place 1 runs 300ns behind.
  clocksync::set_offsets({-100, 300});
  EXPECT_TRUE(clocksync::armed());
  EXPECT_EQ(clocksync::offset_ns(0), -100);
  EXPECT_EQ(clocksync::offset_ns(1), 300);
  EXPECT_EQ(clocksync::offset_ns(7), 0);  // out of range

  // send at place 0's 1000 (sup 900), recv at place 1's 800 (sup 1100):
  // true latency 200ns. The raw difference would be 800-1000 (wraparound).
  EXPECT_EQ(clocksync::aligned_ship_ns(800, 1, 1000, 0), 200u);
  // Residual error can push the difference negative; clamp to 1.
  EXPECT_EQ(clocksync::aligned_ship_ns(500, 1, 1000, 0), 1u);
  clocksync::clear_offsets();
  EXPECT_FALSE(clocksync::armed());
}

// --- telemetry frames --------------------------------------------------------

TEST(Telemetry, PrefixParsingAndSelection) {
  const auto defaults = telemetry::parse_key_prefixes("");
  EXPECT_FALSE(defaults.empty());
  EXPECT_TRUE(telemetry::key_selected("sched.p0.steals", defaults));
  EXPECT_TRUE(telemetry::key_selected("hist.task.exec_ns.p99", defaults));
  EXPECT_FALSE(telemetry::key_selected("team.hier.chunks", defaults));

  const auto custom = telemetry::parse_key_prefixes("glb.,team.");
  ASSERT_EQ(custom.size(), 2u);
  EXPECT_TRUE(telemetry::key_selected("team.hier.chunks", custom));
  EXPECT_FALSE(telemetry::key_selected("sched.p0.steals", custom));
}

TEST(Telemetry, FrameEmitsDeltasAndAbsolutes) {
  const std::vector<std::string> prefixes = {"sched.", "hist.task."};
  std::map<std::string, std::uint64_t> prev;
  const std::map<std::string, std::uint64_t> snap1 = {
      {"sched.p0.steals", 5},
      {"sched.p0.idle", 0},              // zero delta -> omitted
      {"hist.task.exec_ns.p99", 4200},   // absolute
      {"team.hier.chunks", 9},           // not selected
  };
  const std::string f1 = telemetry::make_frame(2, 0, 1234, snap1, prefixes,
                                               prev);
  EXPECT_NE(f1.find("\"place\":2"), std::string::npos);
  EXPECT_NE(f1.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(f1.find("\"t_ms\":1234"), std::string::npos);
  EXPECT_NE(f1.find("\"sched.p0.steals\":5"), std::string::npos);
  EXPECT_EQ(f1.find("sched.p0.idle"), std::string::npos);
  EXPECT_EQ(f1.find("team.hier.chunks"), std::string::npos);
  EXPECT_NE(f1.find("\"hist.task.exec_ns.p99\":4200"), std::string::npos);

  // Second frame: steals moved 5 -> 3 (a gauge going down) => delta -2;
  // the percentile stays absolute, not differenced.
  const std::map<std::string, std::uint64_t> snap2 = {
      {"sched.p0.steals", 3},
      {"hist.task.exec_ns.p99", 4100},
  };
  const std::string f2 = telemetry::make_frame(2, 1, 2234, snap2, prefixes,
                                               prev);
  EXPECT_NE(f2.find("\"sched.p0.steals\":-2"), std::string::npos);
  EXPECT_NE(f2.find("\"hist.task.exec_ns.p99\":4100"), std::string::npos);
}

TEST(Telemetry, WatchdogWrapEscapesReport) {
  const std::string line =
      telemetry::wrap_watchdog(1, 99, "stall:\n  \"inbox\"=3\t\\x");
  EXPECT_NE(line.find("\"place\":1"), std::string::npos);
  EXPECT_NE(line.find("\"watchdog\":\"stall:\\n  \\\"inbox\\\"=3\\t\\\\x\""),
            std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // stays one JSONL line
}

// --- trace blob codec --------------------------------------------------------

TEST(TraceCodec, RoundTrips) {
  std::vector<trace::Event> evs;
  evs.push_back({100, trace::Ev::kActivitySpawn, 0, 0xabcdef, (1ull << 32) | 1});
  evs.push_back({250, trace::Ev::kActivityBegin, 1, 0xabcdef, 7});
  evs.push_back({900, trace::Ev::kActivityEnd, 1, 0xabcdef, 0});

  const std::string blob = trace::encode_events(5'000'000'000ull, evs);
  std::uint64_t epoch = 0;
  std::vector<trace::Event> back;
  ASSERT_TRUE(trace::decode_events(blob, epoch, back));
  EXPECT_EQ(epoch, 5'000'000'000ull);
  ASSERT_EQ(back.size(), evs.size());
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(back[i].t_ns, evs[i].t_ns);
    EXPECT_EQ(back[i].kind, evs[i].kind);
    EXPECT_EQ(back[i].place, evs[i].place);
    EXPECT_EQ(back[i].a, evs[i].a);
    EXPECT_EQ(back[i].b, evs[i].b);
  }
}

TEST(TraceCodec, RejectsMalformedBlobs) {
  std::uint64_t epoch = 77;
  std::vector<trace::Event> out;
  EXPECT_FALSE(trace::decode_events("", epoch, out));
  EXPECT_FALSE(trace::decode_events("garbage-not-a-blob", epoch, out));
  // Truncated valid blob.
  const std::string blob = trace::encode_events(
      1, {{100, trace::Ev::kMsgSend, 0, 1, 2}});
  EXPECT_FALSE(
      trace::decode_events(blob.substr(0, blob.size() - 3), epoch, out));
  // Outputs untouched on failure.
  EXPECT_EQ(epoch, 77u);
  EXPECT_TRUE(out.empty());
}

// --- merged exporter ---------------------------------------------------------

TEST(MergedTrace, ClampsBeginsOntoRemoteSpawnAndEmitsProcessRows) {
  // Place 0 spawns span 0x42 at t=1000 destined for place 1 (remote bit
  // set); place 1's begin lands at t=400 — before the spawn, as residual
  // clock error can produce. The exporter must shift the begin/end pair
  // onto the spawn instant so the flow arrow points forward.
  trace::ProcEvents p0;
  p0.place = 0;
  p0.events.push_back(
      {1000, trace::Ev::kActivitySpawn, 0, 0x42, (1ull << 32) | 1});
  trace::ProcEvents p1;
  p1.place = 1;
  p1.events.push_back({400, trace::Ev::kActivityBegin, 1, 0x42, 0});
  p1.events.push_back({600, trace::Ev::kActivityEnd, 1, 0x42, 0});

  std::uint64_t clamped = 0;
  const std::string json = trace::chrome_json_merged({p0, p1}, &clamped);
  EXPECT_EQ(clamped, 1u);
  // Per-place process rows.
  EXPECT_NE(json.find("\"args\":{\"name\":\"place 0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"place 1\"}"), std::string::npos);
  // Flow pair present, both halves keyed by the span id.
  EXPECT_NE(json.find("\"ph\":\"s\",\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x42\""), std::string::npos);
  // The begin was shifted onto the spawn instant. The global base is the
  // pre-clamp minimum (the begin's raw 400), so spawn and begin both land
  // at 1000 - 400 = 600ns => ts 0.600us, and the arrow has zero extent
  // instead of pointing backwards.
  EXPECT_NE(json.find("\"ph\":\"s\",\"ts\":0.600"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"ts\":0.600"), std::string::npos);
}

TEST(MergedTrace, WellOrderedInputNeedsNoClamping) {
  trace::ProcEvents p0;
  p0.place = 0;
  p0.events.push_back(
      {1000, trace::Ev::kActivitySpawn, 0, 0x7, (1ull << 32) | 1});
  trace::ProcEvents p1;
  p1.place = 1;
  p1.events.push_back({1500, trace::Ev::kActivityBegin, 1, 0x7, 0});
  p1.events.push_back({2000, trace::Ev::kActivityEnd, 1, 0x7, 0});

  std::uint64_t clamped = 99;
  const std::string json = trace::chrome_json_merged({p0, p1}, &clamped);
  EXPECT_EQ(clamped, 0u);
  EXPECT_NE(json.find("\"id\":\"0x7\""), std::string::npos);
}

}  // namespace
}  // namespace apgas
