// Extension features: the §3.1 implementation-selection analyzer
// (profile_finish / recommended_pragma), reduce/scatter/gather collectives,
// dynamic clock registration, and binomial UTS trees.
#include "kernels/uts/uts.h"
#include "runtime/api.h"
#include "runtime/clock.h"
#include "runtime/team.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace {

using namespace apgas;

Config cfg_n(int places) {
  Config cfg;
  cfg.places = places;
  cfg.places_per_node = 4;
  return cfg;
}

// --- finish pattern analyzer ---------------------------------------------------

TEST(FinishAdvisor, ClassifiesLocalOnly) {
  Runtime::run(cfg_n(3), [&] {
    const Pragma rec = profile_finish([] {
      for (int i = 0; i < 5; ++i) async([] {});
    });
    EXPECT_EQ(rec, Pragma::kLocal);
  });
}

TEST(FinishAdvisor, ClassifiesSingleRemoteAsAsync) {
  Runtime::run(cfg_n(3), [&] {
    // The paper's FINISH_ASYNC example: finish at(p) async S.
    const Pragma rec = profile_finish([] { asyncAt(2, [] {}); });
    EXPECT_EQ(rec, Pragma::kAsync);
  });
}

TEST(FinishAdvisor, ClassifiesRoundTripAsHere) {
  Runtime::run(cfg_n(3), [&] {
    // The paper's FINISH_HERE example: h=here; finish at(p) async {at(h)
    // async S2;}.
    const int h = here();
    const Pragma rec = profile_finish([h] {
      asyncAt(1, [h] { asyncAt(h, [] {}); });
    });
    EXPECT_EQ(rec, Pragma::kHere);
  });
}

TEST(FinishAdvisor, ClassifiesFanoutAsSpmd) {
  Runtime::run(cfg_n(5), [&] {
    // The paper's FINISH_SPMD example: one remote activity per place whose
    // nested work hides under nested finishes.
    const Pragma rec = profile_finish([] {
      for (int p = 1; p < num_places(); ++p) {
        asyncAt(p, [] {
          finish(Pragma::kLocal, [] { async([] {}); });
        });
      }
    });
    EXPECT_EQ(rec, Pragma::kSpmd);
  });
}

TEST(FinishAdvisor, ClassifiesAllToAllAsDense) {
  Runtime::run(cfg_n(6), [&] {
    // The paper's FINISH_DENSE example: direct communication between any
    // two places under the governing finish.
    const Pragma rec = profile_finish([] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [] {
          for (int q = 0; q < num_places(); ++q) {
            asyncAt(q, [] {});
          }
        });
      }
    });
    EXPECT_EQ(rec, Pragma::kDense);
  });
}

TEST(FinishAdvisor, SparseIrregularStaysDefault) {
  Runtime::run(cfg_n(6), [&] {
    // One forwarding chain: remote-to-remote but nowhere near dense.
    const Pragma rec = profile_finish([] {
      asyncAt(1, [] { asyncAt(2, [] {}); });
    });
    EXPECT_EQ(rec, Pragma::kDefault);
  });
}

TEST(FinishAdvisor, MatchesHplClassification) {
  // §3.1: "it correctly classifies the various occurrences of finish in our
  // HPL code into instances of FINISH_SPMD, FINISH_ASYNC, and FINISH_HERE."
  Runtime::run(cfg_n(4), [&] {
    // Root SPMD launch.
    EXPECT_EQ(profile_finish([] {
                for (int p = 1; p < num_places(); ++p) asyncAt(p, [] {});
              }),
              Pragma::kSpmd);
    // A "put" (one-way row shipment).
    EXPECT_EQ(profile_finish([] { asyncAt(3, [] {}); }), Pragma::kAsync);
    // A "get" (fetch a remote row).
    const int h = here();
    EXPECT_EQ(profile_finish([h] {
                asyncAt(2, [h] { asyncAt(h, [] {}); });
              }),
              Pragma::kHere);
  });
}

// --- reduce / scatter / gather ---------------------------------------------------

class TeamExtModes : public ::testing::TestWithParam<TeamMode> {};
INSTANTIATE_TEST_SUITE_P(EmulatedAndNative, TeamExtModes,
                         ::testing::Values(TeamMode::kEmulated,
                                           TeamMode::kNative),
                         [](const auto& info) {
                           return info.param == TeamMode::kEmulated
                                      ? "Emulated"
                                      : "Native";
                         });

TEST_P(TeamExtModes, ReduceToEveryRoot) {
  const TeamMode mode = GetParam();
  Runtime::run(cfg_n(5), [&] {
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [mode] {
          Team t = Team::world(mode);
          for (int root = 0; root < t.size(); ++root) {
            long v = t.rank() + 1;
            t.reduce(root, &v, 1, ReduceOp::kSum);
            if (t.rank() == root) {
              EXPECT_EQ(v, static_cast<long>(t.size()) * (t.size() + 1) / 2);
            }
          }
        });
      }
    });
  });
}

TEST_P(TeamExtModes, ScatterDistributesRootBlocks) {
  const TeamMode mode = GetParam();
  Runtime::run(cfg_n(4), [&] {
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [mode] {
          Team t = Team::world(mode);
          constexpr int kRoot = 1;
          std::vector<int> send;
          if (t.rank() == kRoot) {
            send.resize(static_cast<std::size_t>(t.size()) * 3);
            std::iota(send.begin(), send.end(), 100);
          }
          int recv[3] = {-1, -1, -1};
          t.scatter(kRoot, send.data(), recv, 3);
          for (int i = 0; i < 3; ++i) {
            EXPECT_EQ(recv[i], 100 + t.rank() * 3 + i);
          }
        });
      }
    });
  });
}

TEST_P(TeamExtModes, GatherCollectsAtRoot) {
  const TeamMode mode = GetParam();
  Runtime::run(cfg_n(4), [&] {
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [mode] {
          Team t = Team::world(mode);
          constexpr int kRoot = 2;
          const int mine[2] = {t.rank() * 10, t.rank() * 10 + 1};
          std::vector<int> recv(static_cast<std::size_t>(t.size()) * 2, -1);
          t.gather(kRoot, mine, recv.data(), 2);
          if (t.rank() == kRoot) {
            for (int r = 0; r < t.size(); ++r) {
              EXPECT_EQ(recv[r * 2], r * 10);
              EXPECT_EQ(recv[r * 2 + 1], r * 10 + 1);
            }
          }
        });
      }
    });
  });
}

TEST_P(TeamExtModes, GatherThenScatterRoundTrip) {
  const TeamMode mode = GetParam();
  Runtime::run(cfg_n(4), [&] {
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [mode] {
          Team t = Team::world(mode);
          const double mine = 1.5 * t.rank();
          std::vector<double> all(static_cast<std::size_t>(t.size()));
          t.gather(0, &mine, all.data(), 1);
          double back = -1;
          t.scatter(0, all.data(), &back, 1);
          EXPECT_DOUBLE_EQ(back, mine);
        });
      }
    });
  });
}

// --- dynamic clocks --------------------------------------------------------------

TEST(ClockDynamic, RegisteredJoinerParticipates) {
  Runtime::run(cfg_n(2), [&] {
    auto clock = Clock::create(1);  // the main activity
    // Register the clocked async before spawning it (X10's clocked async
    // registers on the clock at spawn time).
    clock->register_one();
    finish([&] {
      asyncAt(1, [clock] {
        clock->advance();  // phase 0 together with main
        clock->drop();
      });
      clock->advance();
    });
    EXPECT_EQ(clock->phase(), 1u);
    EXPECT_EQ(clock->participants(), 1);
  });
}

TEST(ClockDynamic, DropReleasesWaiters) {
  Runtime::run(cfg_n(1), [&] {
    auto clock = Clock::create(2);
    bool first_done = false;
    finish([&] {
      async([&, clock] {
        clock->advance();  // waits for the second participant
        first_done = true;
      });
      async([&, clock] {
        // Never advances; dropping must complete the phase for the waiter.
        clock->drop();
      });
    });
    EXPECT_TRUE(first_done);
    EXPECT_EQ(clock->participants(), 1);
  });
}

// --- binomial UTS ------------------------------------------------------------------

TEST(UtsBinomial, DeterministicAndNontrivial) {
  kernels::UtsParams p;
  p.shape = kernels::UtsShape::kBinomial;
  p.bin_root = 64;
  p.bin_m = 4;
  p.bin_q = 0.2;
  const auto a = kernels::uts_sequential(p);
  const auto b = kernels::uts_sequential(p);
  EXPECT_EQ(a.nodes, b.nodes);
  // Expected size ~ root/(1 - m q) = 64 / 0.2 = 320; any finite tree >= 65.
  EXPECT_GT(a.nodes, 64u);
}

TEST(UtsBinomial, DistributedMatchesSequential) {
  Runtime::run(cfg_n(4), [&] {
    kernels::UtsParams p;
    p.shape = kernels::UtsShape::kBinomial;
    p.bin_root = 512;
    p.bin_m = 4;
    p.bin_q = 0.22;
    auto r = kernels::uts_run(p, /*verify_sequential=*/true);
    EXPECT_TRUE(r.verified);
  });
}

TEST(UtsBinomial, DeeperThanGeometric) {
  // Binomial trees are the "deep and narrow" shape: same-order node count
  // needs no depth cut-off at all.
  kernels::UtsParams geo;
  geo.depth = 8;
  kernels::UtsParams bin;
  bin.shape = kernels::UtsShape::kBinomial;
  bin.bin_root = 4096;
  bin.bin_m = 5;
  bin.bin_q = 0.19;
  const auto g = kernels::uts_sequential(geo);
  const auto b = kernels::uts_sequential(bin);
  EXPECT_GT(g.nodes, 0u);
  EXPECT_GT(b.nodes, 4096u);
}

}  // namespace
