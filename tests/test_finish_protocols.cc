// Tests of the paper's §3.1 finish implementations: each specialized
// protocol's behaviour, the dynamic local->distributed upgrade, correctness
// under message reordering (chaos), and the control-traffic properties
// (coalescing, DENSE software routing) that motivate them.
#include "runtime/api.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace {

using namespace apgas;

Config cfg_n(int places, int per_node = 4) {
  Config cfg;
  cfg.places = places;
  cfg.places_per_node = per_node;
  return cfg;
}

// --- specialized protocols ---------------------------------------------------

TEST(FinishProtocols, FinishAsyncSingleRemoteActivity) {
  std::atomic<int> ran{0};
  Runtime::run(cfg_n(3), [&] {
    finish(Pragma::kAsync, [&] {
      asyncAt(2, [&ran] { ran.fetch_add(1); });
    });
    EXPECT_EQ(ran.load(), 1);
  });
}

TEST(FinishProtocols, FinishAsyncWithSequentialTail) {
  // Paper: `finish { async S1; S2 }` with S2 sequential.
  std::vector<int> order;
  Runtime::run(cfg_n(1), [&] {
    finish(Pragma::kAsync, [&] {
      async([&order] { order.push_back(1); });
      order.push_back(0);
    });
  });
  EXPECT_EQ(order.size(), 2u);
}

TEST(FinishProtocols, FinishHereRoundTrip) {
  // Paper: h=here; finish at(p) async { S1; at(h) async S2; }
  std::atomic<int> steps{0};
  Runtime::run(cfg_n(4), [&] {
    const int h = here();
    finish(Pragma::kHere, [&] {
      asyncAt(3, [&steps, h] {
        steps.fetch_add(1);
        asyncAt(h, [&steps] { steps.fetch_add(1); });
      });
    });
    EXPECT_EQ(steps.load(), 2);
  });
}

TEST(FinishProtocols, FinishHereLongerChain) {
  // The credit mechanism supports multi-hop chains, as UTS steal round trips
  // need.
  std::atomic<int> hops{0};
  Runtime::run(cfg_n(4), [&] {
    finish(Pragma::kHere, [&] {
      asyncAt(1, [&hops] {
        hops.fetch_add(1);
        asyncAt(2, [&hops] {
          hops.fetch_add(1);
          asyncAt(3, [&hops] {
            hops.fetch_add(1);
            asyncAt(0, [&hops] { hops.fetch_add(1); });
          });
        });
      });
    });
    EXPECT_EQ(hops.load(), 4);
  });
}

TEST(FinishProtocols, FinishHereBranchingChains) {
  // An activity that spawns k>1 children mints k-1 extra credits.
  std::atomic<int> leaves{0};
  Runtime::run(cfg_n(4), [&] {
    finish(Pragma::kHere, [&] {
      asyncAt(1, [&leaves] {
        asyncAt(2, [&leaves] { leaves.fetch_add(1); });
        asyncAt(3, [&leaves] { leaves.fetch_add(1); });
      });
    });
    EXPECT_EQ(leaves.load(), 2);
  });
}

TEST(FinishProtocols, FinishLocalGovernsLocalActivities) {
  std::atomic<int> n{0};
  Runtime::run(cfg_n(2), [&] {
    finish(Pragma::kLocal, [&] {
      for (int i = 0; i < 25; ++i) async([&n] { n.fetch_add(1); });
    });
    EXPECT_EQ(n.load(), 25);
  });
}

TEST(FinishProtocols, FinishLocalSendsNoControlMessages) {
  Runtime::run(cfg_n(2), [&] {
    auto& tr = Runtime::get().transport();
    tr.reset_stats();
    finish(Pragma::kLocal, [&] {
      for (int i = 0; i < 25; ++i) async([] {});
    });
    EXPECT_EQ(tr.count(x10rt::MsgType::kControl), 0u);
  });
}

TEST(FinishProtocols, FinishSpmdOneActivityPerPlace) {
  std::atomic<int> n{0};
  Runtime::run(cfg_n(6), [&] {
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [&n] {
          // Nested local work goes under a nested finish, as the paper's
          // FINISH_SPMD pattern requires.
          finish(Pragma::kLocal, [&] {
            for (int i = 0; i < 4; ++i) async([&n] { n.fetch_add(1); });
          });
        });
      }
    });
    EXPECT_EQ(n.load(), 24);
  });
}

TEST(FinishProtocols, FinishSpmdExpectsExactlyNCompletions) {
  Runtime::run(cfg_n(5), [&] {
    auto& tr = Runtime::get().transport();
    tr.reset_stats();
    finish(Pragma::kSpmd, [&] {
      for (int p = 1; p < num_places(); ++p) {
        asyncAt(p, [] {});
      }
    });
    // One completion control message per remote activity, nothing more.
    EXPECT_EQ(tr.count(x10rt::MsgType::kControl), 4u);
  });
}

TEST(FinishProtocols, ForcedDefaultMatchesAuto) {
  for (Pragma pragma : {Pragma::kDefault, Pragma::kDense, Pragma::kAuto}) {
    std::atomic<int> n{0};
    Runtime::run(cfg_n(4), [&] {
      finish(pragma, [&] {
        for (int p = 0; p < num_places(); ++p) {
          asyncAt(p, [&n] {
            asyncAt((here() + 1) % num_places(), [&n] { n.fetch_add(1); });
          });
        }
      });
    });
    EXPECT_EQ(n.load(), 4) << "pragma " << static_cast<int>(pragma);
  }
}

// --- dynamic upgrade ---------------------------------------------------------

TEST(FinishProtocols, AutoFinishStaysLocalWithoutRemoteSpawns) {
  Runtime::run(cfg_n(2), [&] {
    auto& tr = Runtime::get().transport();
    tr.reset_stats();
    finish([&] {
      for (int i = 0; i < 10; ++i) async([] {});
    });
    // The optimistic local protocol: zero network traffic.
    EXPECT_EQ(tr.total_messages(), 0u);
  });
}

TEST(FinishProtocols, AutoFinishUpgradesOnFirstRemoteSpawn) {
  std::atomic<int> n{0};
  Runtime::run(cfg_n(3), [&] {
    finish([&] {
      async([&n] { n.fetch_add(1); });       // still local
      asyncAt(1, [&n] { n.fetch_add(1); });  // triggers upgrade
      async([&n] { n.fetch_add(1); });       // local after upgrade
    });
    EXPECT_EQ(n.load(), 3);
  });
}

// --- reordering robustness ---------------------------------------------------

TEST(FinishProtocols, DefaultFinishSurvivesChaos) {
  // The transit-matrix protocol must be correct under arbitrary control
  // message reordering (paper: "networks can reorder control messages").
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    Config cfg = cfg_n(6);
    cfg.chaos.delay_prob = 0.5;
    cfg.chaos.seed = seed;
    std::atomic<int> n{0};
    Runtime::run(cfg, [&] {
      finish(Pragma::kDefault, [&] {
        for (int p = 0; p < num_places(); ++p) {
          asyncAt(p, [&n] {
            asyncAt((here() + 3) % num_places(),
                    [&n] { n.fetch_add(1); });
          });
        }
      });
      EXPECT_EQ(n.load(), 6);
    });
  }
}

TEST(FinishProtocols, DenseFinishSurvivesChaos) {
  Config cfg = cfg_n(8, 4);
  cfg.chaos.delay_prob = 0.4;
  std::atomic<int> n{0};
  Runtime::run(cfg, [&] {
    finish(Pragma::kDense, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [&n] {
          for (int q = 0; q < num_places(); ++q) {
            asyncAt(q, [&n] { n.fetch_add(1); });
          }
        });
      }
    });
    EXPECT_EQ(n.load(), 64);
  });
}

TEST(FinishProtocols, SpecializedProtocolsSurviveChaos) {
  Config cfg = cfg_n(4);
  cfg.chaos.delay_prob = 0.5;
  std::atomic<int> n{0};
  Runtime::run(cfg, [&] {
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) asyncAt(p, [&n] { ++n; });
    });
    const int h = here();
    finish(Pragma::kHere, [&] {
      asyncAt(2, [&n, h] { asyncAt(h, [&n] { ++n; }); });
    });
    EXPECT_EQ(n.load(), 5);
  });
}

// --- control-traffic properties ---------------------------------------------

TEST(FinishProtocols, SpmdUsesFewerControlMessagesThanDefault) {
  auto run_with = [&](Pragma pragma) {
    std::uint64_t ctrl = 0;
    Runtime::run(cfg_n(8), [&] {
      auto& tr = Runtime::get().transport();
      tr.reset_stats();
      finish(pragma, [&] {
        for (int p = 1; p < num_places(); ++p) asyncAt(p, [] {});
      });
      ctrl = tr.count(x10rt::MsgType::kControl) +
             tr.bytes(x10rt::MsgType::kControl);
    });
    return ctrl;
  };
  // Compare weighted control traffic (count + bytes): the SPMD protocol
  // sends n tiny completions; the matrix protocol ships whole snapshots.
  EXPECT_LT(run_with(Pragma::kSpmd), run_with(Pragma::kDefault));
}

TEST(FinishProtocols, DenseRoutingBoundsOutDegree) {
  // With an all-to-all spawn pattern under FINISH_DENSE, control messages
  // from non-master places only ever target their node master.
  constexpr int kPlaces = 16;
  constexpr int kPerNode = 4;
  Config cfg = cfg_n(kPlaces, kPerNode);
  cfg.count_pairs = true;
  std::atomic<int> n{0};
  std::vector<std::uint64_t> ctrl_to_nonmaster(2, 0);
  int idx = 0;
  for (Pragma pragma : {Pragma::kDense, Pragma::kDefault}) {
    Runtime::run(cfg, [&] {
      auto& tr = Runtime::get().transport();
      tr.reset_stats();
      finish(pragma, [&] {
        for (int p = 0; p < num_places(); ++p) {
          asyncAt(p, [&n] {
            for (int q = 0; q < num_places(); ++q) {
              asyncAt(q, [&n] { n.fetch_add(1); });
            }
          });
        }
      });
      // Count control messages from non-master places to places other than
      // their own master and other than home place 0's master chain.
      std::uint64_t bad = 0;
      for (int s = 0; s < kPlaces; ++s) {
        if (s % kPerNode == 0) continue;  // masters may fan out
        const int master = s - s % kPerNode;
        for (int d = 0; d < kPlaces; ++d) {
          if (d == master || d == s) continue;
          // Only control traffic matters; approximate by pair counts of the
          // finish's snapshot flow. Release messages flow home->q as tasks
          // from place 0, so exclude destination counting from place 0.
          if (s != 0) bad += tr.pair_count(s, d);
        }
      }
      ctrl_to_nonmaster[idx] = bad;
    });
    ++idx;
  }
  // Pair counts include task traffic (all-to-all, unavoidable); the dense
  // run must still send strictly less point-to-point traffic than default.
  EXPECT_LT(ctrl_to_nonmaster[0], ctrl_to_nonmaster[1]);
}

TEST(FinishProtocols, DenseCoalescesSnapshots) {
  // Under DENSE, many snapshots from one node leave as fewer, bigger
  // messages than under DEFAULT.
  auto ctrl_count = [&](Pragma pragma) {
    std::uint64_t count = 0;
    Runtime::run(cfg_n(16, 4), [&] {
      auto& tr = Runtime::get().transport();
      tr.reset_stats();
      finish(pragma, [&] {
        for (int p = 0; p < num_places(); ++p) {
          asyncAt(p, [] {
            finish(Pragma::kLocal, [] {
              for (int i = 0; i < 8; ++i) async([] {});
            });
          });
        }
      });
      count = tr.count(x10rt::MsgType::kControl);
    });
    return count;
  };
  EXPECT_LE(ctrl_count(Pragma::kDense), ctrl_count(Pragma::kDefault) * 2);
}

TEST(FinishProtocols, NestedFinishesAcrossPlaces) {
  std::atomic<int> n{0};
  Runtime::run(cfg_n(4), [&] {
    finish(Pragma::kSpmd, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [&n] {
          finish([&] {
            asyncAt((here() + 1) % num_places(), [&n] {
              finish(Pragma::kLocal, [&] {
                async([&n] { n.fetch_add(1); });
              });
            });
          });
        });
      }
    });
    EXPECT_EQ(n.load(), 4);
  });
}

TEST(FinishProtocols, ManySmallFinishesStress) {
  std::atomic<int> n{0};
  Runtime::run(cfg_n(4), [&] {
    for (int i = 0; i < 200; ++i) {
      finish(Pragma::kAsync, [&] {
        asyncAt(i % num_places(), [&n] { n.fetch_add(1); });
      });
    }
    EXPECT_EQ(n.load(), 200);
  });
}

}  // namespace
