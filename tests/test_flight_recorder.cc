// Flight-recorder unit tests (ISSUE satellite b): ring wraparound,
// concurrent writers, the disabled-mode zero-event guarantee, and a
// validity check on the Chrome trace_event exporter — including a full
// Runtime::run integration pass that writes a trace file to disk.
#include "runtime/trace.h"

#include "runtime/api.h"
#include "runtime/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace {

using apgas::trace::Ev;
using apgas::trace::Event;
using apgas::trace::Ring;

Event ev(std::uint64_t t, Ev kind, int place, std::uint64_t a = 0,
         std::uint64_t b = 0) {
  Event e;
  e.t_ns = t;
  e.kind = kind;
  e.place = place;
  e.a = a;
  e.b = b;
  return e;
}

// --- Ring ------------------------------------------------------------------

TEST(FlightRecorderRing, StoresInOrderBelowCapacity) {
  Ring ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.push(ev(100 + i, Ev::kMsgSend, 2, i, i * 10));
  }
  EXPECT_EQ(ring.written(), 5u);
  EXPECT_EQ(ring.capacity(), 8u);
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].t_ns, 100 + i);
    EXPECT_EQ(events[i].kind, Ev::kMsgSend);
    EXPECT_EQ(events[i].place, 2);
    EXPECT_EQ(events[i].a, i);
    EXPECT_EQ(events[i].b, i * 10);
  }
}

TEST(FlightRecorderRing, WraparoundKeepsNewestOldestFirst) {
  Ring ring(4);
  for (std::uint64_t i = 0; i < 11; ++i) {
    ring.push(ev(i, Ev::kActivitySpawn, 0, i));
  }
  EXPECT_EQ(ring.written(), 11u);
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 4u);  // bounded memory: only the recent past
  // Retained events are the last capacity() pushes, oldest first: 7..10.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].t_ns, 7 + i);
    EXPECT_EQ(events[i].a, 7 + i);
  }
}

TEST(FlightRecorderRing, ResetClearsHistory) {
  Ring ring(4);
  ring.push(ev(1, Ev::kMsgSend, 0));
  ring.reset(16);
  EXPECT_EQ(ring.written(), 0u);
  EXPECT_EQ(ring.capacity(), 16u);
  EXPECT_TRUE(ring.drain().empty());
}

TEST(FlightRecorderRing, ConcurrentWritersLoseNothingBelowCapacity) {
  // With capacity >= total pushes no slot is ever contended twice, so every
  // event must come back intact — this is the lock-free-correctness check.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;
  Ring ring(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Encode (thread, i) so the reader can verify integrity per event.
        ring.push(ev(/*t=*/i, Ev::kMsgRecv, t, /*a=*/t * kPerThread + i,
                     /*b=*/~(t * kPerThread + i)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ring.written(), kThreads * kPerThread);
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  std::vector<char> seen(kThreads * kPerThread, 0);
  for (const auto& e : events) {
    ASSERT_LT(e.a, kThreads * kPerThread);
    EXPECT_EQ(e.b, ~e.a);  // fields of one event stayed together
    EXPECT_EQ(e.place, static_cast<int>(e.a / kPerThread));
    EXPECT_FALSE(seen[e.a]) << "duplicate event " << e.a;
    seen[e.a] = 1;
  }
}

TEST(FlightRecorderRing, ConcurrentWrappingWritersStayBounded) {
  // Deliberately overflow a tiny ring from many threads: the contract is
  // bounded memory and no crashes, not lossless capture.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  Ring ring(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ring.push(ev(i, Ev::kStealAttempt, t, i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ring.written(), kThreads * kPerThread);
  const auto events = ring.drain();
  EXPECT_LE(events.size(), 64u);
  // The per-slot generation stamp guarantees drained events are never torn:
  // every event we wrote had t_ns == a, so any mix of fields from two
  // different pushes would fail this check.
  for (const auto& e : events) {
    EXPECT_EQ(e.t_ns, e.a);
    EXPECT_EQ(e.kind, Ev::kStealAttempt);
    ASSERT_GE(e.place, 0);
    ASSERT_LT(e.place, kThreads);
  }
}

TEST(FlightRecorderRing, DrainUnderConcurrentWritesYieldsOnlyIntactEvents) {
  // Readers racing writers on a wrapping ring: the seqlock stamp must make
  // drain() drop in-flight slots rather than return torn field mixes.
  Ring ring(32);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.push(ev(/*t=*/i, Ev::kMsgSend, /*place=*/1, /*a=*/i, /*b=*/~i));
      ++i;
    }
  });
  for (int round = 0; round < 200; ++round) {
    for (const auto& e : ring.drain()) {
      ASSERT_EQ(e.t_ns, e.a);
      ASSERT_EQ(e.b, ~e.a);  // fields of one event stayed together
      ASSERT_EQ(e.kind, Ev::kMsgSend);
      ASSERT_EQ(e.place, 1);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// --- enable/disable gating -------------------------------------------------

TEST(FlightRecorder, DisabledModeRecordsNothing) {
  apgas::trace::init(/*places=*/2, /*capacity_per_place=*/128,
                     /*enable=*/false);
  EXPECT_TRUE(apgas::trace::active());
  EXPECT_FALSE(apgas::trace::enabled());
  apgas::trace::emit_at(0, Ev::kMsgSend, 1, 2);
  apgas::trace::emit(Ev::kActivitySpawn);
  EXPECT_EQ(apgas::trace::total_events(), 0u);
  apgas::trace::shutdown();
  EXPECT_FALSE(apgas::trace::active());
}

TEST(FlightRecorder, ShutdownDisarmsEmit) {
  apgas::trace::init(1, 16, true);
  apgas::trace::emit_at(0, Ev::kMsgSend);
  EXPECT_EQ(apgas::trace::total_events(), 1u);
  apgas::trace::shutdown();
  // After shutdown emit() must be a safe no-op (no rings exist any more).
  apgas::trace::emit_at(0, Ev::kMsgSend);
  EXPECT_FALSE(apgas::trace::enabled());
  EXPECT_EQ(apgas::trace::total_events(), 0u);
}

TEST(FlightRecorder, OutOfRangePlacesLandInExternalRing) {
  apgas::trace::init(/*places=*/2, 16, true);
  apgas::trace::emit_at(7, Ev::kMsgSend);   // beyond the place count
  apgas::trace::emit_at(-1, Ev::kMsgSend);  // negative
  EXPECT_EQ(apgas::trace::total_events(), 2u);
  apgas::trace::shutdown();
}

// --- Chrome exporter -------------------------------------------------------

// Minimal JSON validator (objects/arrays/strings/numbers/bools/null): enough
// to prove the exporter emits well-formed JSON without external libraries.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& s) : s_(s) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(FlightRecorderExport, ChromeJsonIsValidAndComplete) {
  apgas::trace::init(/*places=*/2, 64, true);
  apgas::trace::emit_at(0, Ev::kActivityBegin);
  apgas::trace::emit_at(0, Ev::kActivityEnd);
  apgas::trace::emit_at(1, Ev::kMsgSend,
                        static_cast<std::uint64_t>(x10rt::MsgType::kTask), 0);
  apgas::trace::emit_at(1, Ev::kTeamBegin, 3, 42);
  apgas::trace::emit_at(1, Ev::kTeamEnd, 3, 42);
  const std::string json = apgas::trace::chrome_json();
  apgas::trace::shutdown();

  EXPECT_TRUE(JsonCursor(json).parse()) << json;
  // Spot-check the trace_event shape.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("send.task"), std::string::npos);
  EXPECT_NE(json.find("\"team\""), std::string::npos);
}

TEST(FlightRecorderExport, RemoteSpawnEmitsFlowArrow) {
  apgas::trace::init(/*places=*/2, 64, true);
  const std::uint64_t span = (0ull << 48) | 7;  // place 0, counter 7
  const std::uint64_t parent = 0;
  // Remote spawn at place 0 targeting place 1 (bit 32 marks remote)...
  apgas::trace::emit_at(0, Ev::kActivitySpawn, span, (1ull << 32) | 1u);
  // ...and the matching execution at place 1.
  apgas::trace::emit_at(1, Ev::kActivityBegin, span, parent);
  apgas::trace::emit_at(1, Ev::kActivityEnd, span);
  // A local spawn (no bit 32) must NOT produce flow events.
  apgas::trace::emit_at(1, Ev::kActivitySpawn, span + 1, 1u);
  const std::string json = apgas::trace::chrome_json();
  apgas::trace::shutdown();

  EXPECT_TRUE(JsonCursor(json).parse()) << json;
  // Flow start on the spawning place, flow finish bound to the begin slice.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"0x7\""), std::string::npos);  // span id as hex string
  // Exactly one s/f pair: the local spawn contributed none.
  auto count = [&json](const char* needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"s\""), 1u);
  EXPECT_EQ(count("\"ph\":\"f\""), 1u);
}

TEST(FlightRecorderExport, FinishOpenCloseBecomeAsyncSlices) {
  apgas::trace::init(/*places=*/1, 64, true);
  using apgas::Pragma;
  apgas::trace::emit_at(0, Ev::kFinishOpen, /*seq=*/5,
                        static_cast<std::uint64_t>(Pragma::kDefault));
  apgas::trace::emit_at(0, Ev::kFinishClose, /*seq=*/5,
                        static_cast<std::uint64_t>(Pragma::kDefault));
  const std::string json = apgas::trace::chrome_json();
  apgas::trace::shutdown();

  EXPECT_TRUE(JsonCursor(json).parse()) << json;
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos) << json;
  EXPECT_NE(json.find("finish.default"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"finish\""), std::string::npos);
}

TEST(FlightRecorderExport, EmptyTraceIsStillValidJson) {
  apgas::trace::init(1, 16, true);
  const std::string json = apgas::trace::chrome_json();
  apgas::trace::shutdown();
  EXPECT_TRUE(JsonCursor(json).parse()) << json;
}

TEST(FlightRecorderExport, RuntimeRunWritesValidTraceFile) {
  const std::string path = "flight_recorder_itest.trace.json";
  std::remove(path.c_str());
  apgas::Config cfg;
  cfg.places = 3;
  cfg.trace = true;
  cfg.trace_path = path;
  apgas::Runtime::run(cfg, [&] {
    apgas::finish([&] {
      for (int p = 0; p < apgas::num_places(); ++p) {
        apgas::asyncAt(p, [] {});
      }
    });
  });
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file not written";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_TRUE(JsonCursor(json).parse());
  // Finish open/close export as async duration slices named by protocol.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("finish."), std::string::npos);
  EXPECT_NE(json.find("activity"), std::string::npos);
  // Cross-place asyncs produce Perfetto flow arrows (spawn -> begin).
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // The registry mirrored the recorder's volume before teardown.
  const auto& metrics = apgas::last_run_metrics();
  auto it = metrics.find("trace.events");
  ASSERT_NE(it, metrics.end());
  EXPECT_GT(it->second, 0u);
  std::remove(path.c_str());
}

TEST(FlightRecorderExport, DisabledRuntimeRunRecordsZeroEvents) {
  apgas::Config cfg;
  cfg.places = 3;  // default: cfg.trace == false, no paths
  apgas::Runtime::run(cfg, [&] {
    apgas::finish([&] {
      for (int p = 0; p < apgas::num_places(); ++p) {
        apgas::asyncAt(p, [] {});
      }
    });
  });
  const auto& metrics = apgas::last_run_metrics();
  auto it = metrics.find("trace.events");
  ASSERT_NE(it, metrics.end());
  EXPECT_EQ(it->second, 0u);  // every emit site saw enabled() == false
}

}  // namespace
