// Lifeline-based global load balancer (paper §3.4, §6.1).
#include "glb/glb.h"

#include <gtest/gtest.h>

#include <numeric>

namespace {

using namespace apgas;
using glb::CounterBag;
using glb::Glb;
using glb::GlbConfig;
using glb::LifelineKind;

Config cfg_n(int places) {
  Config cfg;
  cfg.places = places;
  cfg.places_per_node = 4;
  return cfg;
}

// --- lifeline graphs ---------------------------------------------------------

TEST(LifelineGraph, HypercubeDegreeAndSymmetry) {
  const int p = 16;
  for (int v = 0; v < p; ++v) {
    auto out = glb::lifelines_of(v, p, LifelineKind::kHypercube);
    EXPECT_EQ(out.size(), 4u);  // log2(16)
    for (int peer : out) {
      auto back = glb::lifelines_of(peer, p, LifelineKind::kHypercube);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end())
          << "hypercube lifelines are symmetric";
    }
  }
}

TEST(LifelineGraph, CyclicWorksForAnyPlaceCount) {
  for (int p : {2, 3, 5, 7, 12, 100}) {
    for (int v = 0; v < p; ++v) {
      auto out = glb::lifelines_of(v, p, LifelineKind::kCyclic);
      EXPECT_GE(static_cast<int>(out.size()), 1);
      EXPECT_LE(static_cast<int>(out.size()), glb::lifeline_diameter(p));
      for (int peer : out) {
        EXPECT_NE(peer, v);
        EXPECT_GE(peer, 0);
        EXPECT_LT(peer, p);
      }
    }
  }
}

TEST(LifelineGraph, DiameterIsLogarithmic) {
  EXPECT_EQ(glb::lifeline_diameter(1), 0);
  EXPECT_EQ(glb::lifeline_diameter(2), 1);
  EXPECT_EQ(glb::lifeline_diameter(1024), 10);
  EXPECT_EQ(glb::lifeline_diameter(1000), 10);
}

// --- CounterBag ----------------------------------------------------------------

TEST(CounterBag, ProcessCountsDown) {
  CounterBag bag(0, 100);
  EXPECT_EQ(bag.size(), 100u);
  EXPECT_EQ(bag.process(30), 30u);
  EXPECT_EQ(bag.size(), 70u);
  EXPECT_EQ(bag.process(1000), 70u);
  EXPECT_TRUE(bag.empty());
  EXPECT_EQ(bag.process(10), 0u);
}

TEST(CounterBag, SplitTakesHalfOfEveryInterval) {
  CounterBag bag(0, 100);
  CounterBag stolen = bag.split();
  EXPECT_EQ(bag.size(), 50u);
  EXPECT_EQ(stolen.size(), 50u);
  bag.merge(std::move(stolen));
  EXPECT_EQ(bag.size(), 100u);
  // With two interval fragments, split touches both.
  CounterBag again = bag.split();
  EXPECT_EQ(again.size(), 50u);
}

TEST(CounterBag, SplitOfTinyBagIsEmpty) {
  CounterBag bag(5, 6);
  EXPECT_TRUE(bag.split().empty());
  EXPECT_EQ(bag.size(), 1u);
}

// --- GLB end-to-end ------------------------------------------------------------

void expect_total(int places, GlbConfig gcfg, std::uint64_t units,
                  int spin = 0) {
  Runtime::run(cfg_n(places), [&] {
    Glb<CounterBag> balancer(gcfg);
    balancer.run(CounterBag(0, units, spin));
    std::uint64_t total = 0;
    std::uint64_t resus = 0;
    for (int p = 0; p < num_places(); ++p) {
      total += balancer.stats_at(p).processed;
      resus += balancer.stats_at(p).resuscitations;
      EXPECT_TRUE(balancer.bag_at(p).empty());
    }
    EXPECT_EQ(total, units);
    (void)resus;
  });
}

TEST(Glb, ProcessesEverythingSinglePlace) { expect_total(1, {}, 5000); }

TEST(Glb, ProcessesEverythingFourPlaces) { expect_total(4, {}, 20000); }

TEST(Glb, ProcessesEverythingManyPlaces) {
  GlbConfig g;
  g.chunk = 64;
  expect_total(12, g, 30000, /*spin=*/8);
}

TEST(Glb, HypercubeLifelinesPowerOfTwoPlaces) {
  GlbConfig g;
  g.lifelines = LifelineKind::kHypercube;
  expect_total(8, g, 16000, /*spin=*/4);
}

TEST(Glb, LegacyModeStillCorrect) {
  GlbConfig g;
  g.legacy = true;
  expect_total(6, g, 12000, /*spin=*/4);
}

TEST(Glb, WorkStartingAtOnePlaceGetsBalanced) {
  // All work at place 0 (splits of a 1-element initial wave are empty), so
  // everything other places process must have been stolen or lifelined.
  Runtime::run(cfg_n(6), [&] {
    GlbConfig g;
    g.chunk = 32;
    Glb<CounterBag> balancer(g);
    balancer.run(CounterBag(0, 20000, /*spin=*/16));
    std::uint64_t total = 0;
    std::uint64_t moved = 0;
    for (int p = 0; p < num_places(); ++p) {
      total += balancer.stats_at(p).processed;
      if (p != 0) moved += balancer.stats_at(p).processed;
    }
    EXPECT_EQ(total, 20000u);
    EXPECT_GT(moved, 0u) << "no work was ever balanced away from place 0";
  });
}

TEST(Glb, StealTrafficInvisibleToRootFinish) {
  // Paper §6.1: the root finish only accounts for the initial distribution
  // and lifeline work; random steals ride X10RT-level messages.
  Runtime::run(cfg_n(4), [&] {
    auto& tr = Runtime::get().transport();
    GlbConfig g;
    g.chunk = 16;
    Glb<CounterBag> balancer(g);
    tr.reset_stats();
    balancer.run(CounterBag(0, 8000, /*spin=*/8));
    EXPECT_GT(tr.count(x10rt::MsgType::kSteal), 0u);
  });
}

TEST(Glb, LegacyGeneratesMoreFinishTraffic) {
  // The §6.2 claim in miniature: per steal, the legacy scheduler pays with
  // root-finish control traffic; the new one does not.
  std::uint64_t ctrl_new = 0;
  std::uint64_t ctrl_legacy = 0;
  for (bool legacy : {false, true}) {
    Runtime::run(cfg_n(6), [&] {
      auto& tr = Runtime::get().transport();
      GlbConfig g;
      g.legacy = legacy;
      g.chunk = 16;
      Glb<CounterBag> balancer(g);
      tr.reset_stats();
      balancer.run(CounterBag(0, 6000, /*spin=*/8));
      (legacy ? ctrl_legacy : ctrl_new) =
          tr.count(x10rt::MsgType::kControl) +
          tr.count(x10rt::MsgType::kTask);
    });
  }
  EXPECT_LT(ctrl_new, ctrl_legacy);
}

TEST(Glb, StatsAccountForAttempts) {
  Runtime::run(cfg_n(4), [&] {
    Glb<CounterBag> balancer{GlbConfig{}};
    balancer.run(CounterBag(0, 4000, /*spin=*/4));
    std::uint64_t attempts = 0;
    for (int p = 0; p < num_places(); ++p) {
      attempts += balancer.stats_at(p).steal_attempts;
    }
    EXPECT_GT(attempts, 0u);
  });
}

TEST(Glb, RepeatedRunsOnOneRuntime) {
  Runtime::run(cfg_n(4), [&] {
    for (int round = 0; round < 3; ++round) {
      Glb<CounterBag> balancer{GlbConfig{}};
      balancer.run(CounterBag(0, 3000));
      std::uint64_t total = 0;
      for (int p = 0; p < num_places(); ++p) {
        total += balancer.stats_at(p).processed;
      }
      ASSERT_EQ(total, 3000u) << "round " << round;
    }
  });
}

TEST(Glb, SurvivesChaoticNetwork) {
  Config cfg = cfg_n(5);
  cfg.chaos.delay_prob = 0.3;
  Runtime::run(cfg, [&] {
    GlbConfig g;
    g.chunk = 32;
    Glb<CounterBag> balancer(g);
    balancer.run(CounterBag(0, 10000, /*spin=*/4));
    std::uint64_t total = 0;
    for (int p = 0; p < num_places(); ++p) {
      total += balancer.stats_at(p).processed;
    }
    EXPECT_EQ(total, 10000u);
  });
}

}  // namespace
