// Hardening: failure injection (exceptions from every spawn context),
// transport determinism and scale edges, scheduler reentrancy limits, and
// misuse guards the runtime promises to catch.
#include "runtime/api.h"
#include "runtime/dist_rail.h"
#include "runtime/monitor.h"
#include "runtime/place_group.h"
#include "runtime/team.h"
#include "x10rt/transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace {

using namespace apgas;

Config cfg_n(int places, double chaos = 0.0) {
  Config cfg;
  cfg.places = places;
  cfg.places_per_node = 4;
  cfg.chaos.delay_prob = chaos;
  return cfg;
}

// --- exception propagation from every context -----------------------------------

TEST(Hardening, ExceptionFromNestedRemoteActivity) {
  bool caught = false;
  Runtime::run(cfg_n(4), [&] {
    try {
      finish([&] {
        asyncAt(1, [] {
          asyncAt(2, [] {
            asyncAt(3, [] { throw std::runtime_error("deep"); });
          });
        });
      });
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "deep";
    }
  });
  EXPECT_TRUE(caught);
}

TEST(Hardening, SiblingsCompleteWhenOneThrows) {
  // finish waits for ALL activities even when one throws (X10 semantics).
  std::atomic<int> completed{0};
  bool caught = false;
  Runtime::run(cfg_n(3), [&] {
    try {
      finish([&] {
        for (int p = 0; p < num_places(); ++p) {
          asyncAt(p, [&completed] { completed.fetch_add(1); });
        }
        asyncAt(1, [] { throw std::logic_error("one bad apple"); });
      });
    } catch (const std::logic_error&) {
      caught = true;
    }
  });
  EXPECT_TRUE(caught);
  EXPECT_EQ(completed.load(), 3);
}

TEST(Hardening, BodyExceptionStillWaitsForChildren) {
  std::atomic<bool> child_ran{false};
  bool caught = false;
  Runtime::run(cfg_n(2), [&] {
    try {
      finish([&] {
        asyncAt(1, [&child_ran] { child_ran.store(true); });
        throw std::runtime_error("body threw");
      });
    } catch (const std::runtime_error&) {
      caught = true;
    }
  });
  EXPECT_TRUE(caught);
  EXPECT_TRUE(child_ran.load()) << "finish must quiesce before rethrowing";
}

TEST(Hardening, ExceptionUnderEveryProtocol) {
  for (Pragma pragma :
       {Pragma::kAsync, Pragma::kSpmd, Pragma::kDefault, Pragma::kDense}) {
    bool caught = false;
    Runtime::run(cfg_n(3), [&] {
      try {
        finish(pragma, [&] {
          asyncAt(2, [] { throw std::runtime_error("proto"); });
        });
      } catch (const std::runtime_error&) {
        caught = true;
      }
    });
    EXPECT_TRUE(caught) << "pragma " << static_cast<int>(pragma);
  }
}

TEST(Hardening, ExceptionUnderHereProtocolChains) {
  bool caught = false;
  Runtime::run(cfg_n(3), [&] {
    const int h = here();
    try {
      finish(Pragma::kHere, [&] {
        asyncAt(1, [h] {
          asyncAt(h, [] { throw std::runtime_error("on the way home"); });
        });
      });
    } catch (const std::runtime_error&) {
      caught = true;
    }
  });
  EXPECT_TRUE(caught);
}

TEST(Hardening, ExceptionsWithChaosStillDeliver) {
  bool caught = false;
  std::atomic<int> survivors{0};
  Runtime::run(cfg_n(5, 0.4), [&] {
    try {
      finish([&] {
        for (int p = 0; p < num_places(); ++p) {
          asyncAt(p, [&survivors, p] {
            if (p == 3) throw std::runtime_error("chaotic");
            survivors.fetch_add(1);
          });
        }
      });
    } catch (const std::runtime_error&) {
      caught = true;
    }
  });
  EXPECT_TRUE(caught);
  EXPECT_EQ(survivors.load(), 4);
}

// --- transport determinism and edges ---------------------------------------------

TEST(Hardening, ChaosIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    x10rt::TransportConfig cfg;
    cfg.places = 2;
    cfg.chaos.delay_prob = 0.6;
    cfg.chaos.seed = seed;
    x10rt::Transport tr(cfg);
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      x10rt::Message m;
      m.src = 0;
      m.run = [&order, i] { order.push_back(i); };
      tr.send(1, std::move(m));
    }
    while (order.size() < 50) {
      if (auto m = tr.poll(1)) m->run();
    }
    return order;
  };
  EXPECT_EQ(run_once(7), run_once(7)) << "same seed, same delivery order";
  EXPECT_NE(run_once(7), run_once(8)) << "different seed, different order";
}

TEST(Hardening, SixtyFourPlacesQuiesce) {
  std::atomic<int> n{0};
  Config cfg = cfg_n(64);
  cfg.places_per_node = 8;
  Runtime::run(cfg, [&] {
    finish(Pragma::kDense, [&] {
      for (int p = 0; p < num_places(); ++p) {
        asyncAt(p, [&n] { n.fetch_add(1); });
      }
    });
  });
  EXPECT_EQ(n.load(), 64);
}

TEST(Hardening, ZeroByteAndHugeCopies) {
  Config cfg = cfg_n(2);
  cfg.congruent_bytes = 64u << 20;
  Runtime::run(cfg, [&] {
    auto& space = Runtime::get().congruent();
    auto arr = space.alloc<std::uint64_t>(4u << 20 >> 3);
    auto* src = space.at_place(0, arr);
    const std::size_t n = arr.count;
    for (std::size_t i = 0; i < n; ++i) src[i] = i;
    finish([&] {
      async_copy(src, global_rail(arr, 1), 0, n);  // 4 MiB in one put
    });
    EXPECT_EQ(space.at_place(1, arr)[n - 1], n - 1);
  });
}

// --- scheduler reentrancy ---------------------------------------------------------

TEST(Hardening, BlockingAtInsideBlockingAt) {
  Runtime::run(cfg_n(3), [&] {
    const int v = at(1, [] {
      return at(2, [] {
        return at(0, [] { return 7; });
      });
    });
    EXPECT_EQ(v, 7);
  });
}

TEST(Hardening, MutualBlockingAtsDoNotDeadlock) {
  // Both places simultaneously evaluate at() targeting each other; the
  // cooperative scheduler must service the peer's request while waiting.
  std::atomic<int> sum{0};
  Runtime::run(cfg_n(2), [&] {
    finish([&] {
      asyncAt(0, [&sum] { sum.fetch_add(at(1, [] { return 10; })); });
      asyncAt(1, [&sum] { sum.fetch_add(at(0, [] { return 3; })); });
    });
  });
  EXPECT_EQ(sum.load(), 13);
}

TEST(Hardening, CollectiveWhileFinishTrafficFlows) {
  // Teams and finish protocols share the scheduler; interleave both.
  Runtime::run(cfg_n(4), [&] {
    std::atomic<int> n{0};
    finish([&] {
      // Background task storm.
      for (int i = 0; i < 200; ++i) {
        asyncAt(i % num_places(), [&n] { n.fetch_add(1); });
      }
      // Simultaneously, a full SPMD collective round.
      finish(Pragma::kSpmd, [&] {
        for (int p = 0; p < num_places(); ++p) {
          asyncAt(p, [] {
            Team t = Team::world();
            long v = 1;
            t.allreduce(&v, 1, ReduceOp::kSum);
            EXPECT_EQ(v, t.size());
          });
        }
      });
    });
    EXPECT_EQ(n.load(), 200);
  });
}

// --- monitor edge cases -------------------------------------------------------------

TEST(Hardening, WhenConditionSeesOnlyAtomicWrites) {
  // The condition is evaluated under the place lock, so it can never
  // observe a torn multi-field update made inside atomic_do.
  Runtime::run(cfg_n(1), [&] {
    struct Pair {
      int a = 0;
      int b = 0;
    } pair;
    bool consistent = true;
    finish([&] {
      async([&] {
        for (int i = 1; i <= 50; ++i) {
          atomic_do([&, i] {
            pair.a = i;
            pair.b = i;
          });
        }
      });
      async([&] {
        when([&] { return pair.a >= 50; },
             [&] { consistent = pair.a == pair.b; });
      });
    });
    EXPECT_TRUE(consistent);
  });
}

TEST(Hardening, AtomicDoFromRemoteActivities) {
  Runtime::run(cfg_n(4), [&] {
    int counter = 0;
    GlobalRef<int> ref(&counter);
    finish([&] {
      for (int i = 0; i < 100; ++i) {
        asyncAt(i % num_places(), [ref] {
          asyncAt(ref.home(), [ref] { atomic_do([&] { ++*ref; }); });
        });
      }
    });
    EXPECT_EQ(counter, 100);
  });
}

}  // namespace
