// Histogram unit tests (ISSUE satellite d): log-linear bucket boundary
// exactness, percentile monotonicity, and concurrent recording summing — the
// properties the chaos sweep's structural invariants lean on.
#include "runtime/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace {

using apgas::Histogram;

// --- bucket geometry -------------------------------------------------------

TEST(HistogramBuckets, ValuesBelowSubAreExact) {
  // Unit buckets: every value below kSub (128) has its own bucket, so the
  // floor of its bucket IS the value — percentiles down there are exact.
  for (std::uint64_t v = 0; v < Histogram::kSub; ++v) {
    const std::size_t idx = Histogram::bucket_of(v);
    EXPECT_EQ(idx, v);
    EXPECT_EQ(Histogram::bucket_floor(idx), v);
    EXPECT_EQ(Histogram::bucket_width(idx), 1u);
  }
}

TEST(HistogramBuckets, FloorAndWidthTileTheRange) {
  // Every bucket's [floor, floor + width) half-open range must butt exactly
  // against its successor's floor: no value falls between buckets and none is
  // claimed twice.
  for (std::size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_floor(i) + Histogram::bucket_width(i),
              Histogram::bucket_floor(i + 1))
        << "gap/overlap at bucket " << i;
  }
}

TEST(HistogramBuckets, BucketOfIsInverseOfFloor) {
  // For each bucket: its floor, and its last value (floor + width - 1), both
  // map back to it — the boundaries are exact, not approximate.
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    const std::uint64_t lo = Histogram::bucket_floor(i);
    const std::uint64_t hi = lo + Histogram::bucket_width(i) - 1;
    EXPECT_EQ(Histogram::bucket_of(lo), i);
    EXPECT_EQ(Histogram::bucket_of(hi), i);
    if (i + 1 < Histogram::kNumBuckets) {
      EXPECT_EQ(Histogram::bucket_of(hi + 1), i + 1);
    }
  }
}

TEST(HistogramBuckets, PowerOfTwoBoundariesAreBucketFloors) {
  // Powers of two are where log-linear grouping changes resolution; each must
  // start its own bucket exactly.
  for (int p = Histogram::kSubBits; p < 63; ++p) {
    const std::uint64_t v = 1ull << p;
    EXPECT_EQ(Histogram::bucket_floor(Histogram::bucket_of(v)), v);
  }
}

TEST(HistogramBuckets, RelativeErrorStaysUnderTwoPercent) {
  // The design contract: ~2 significant digits, i.e. bucket width / floor
  // bounded by 2/kSub everywhere above the exact range.
  for (std::size_t i = Histogram::kSub; i < Histogram::kNumBuckets; ++i) {
    const double err = static_cast<double>(Histogram::bucket_width(i)) /
                       static_cast<double>(Histogram::bucket_floor(i));
    EXPECT_LE(err, 2.0 / static_cast<double>(Histogram::kSub))
        << "bucket " << i;
  }
}

TEST(HistogramBuckets, MaxValueMapsInRange) {
  EXPECT_LT(Histogram::bucket_of(~0ull), Histogram::kNumBuckets);
}

// --- recording and percentiles ---------------------------------------------

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99, 0u);
}

TEST(Histogram, ExactPercentilesBelowSub) {
  // 1..100 recorded once each: percentiles are exact order statistics.
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.percentile(0.50), 50u);
  EXPECT_EQ(h.percentile(0.90), 90u);
  EXPECT_EQ(h.percentile(0.99), 99u);
  EXPECT_EQ(h.percentile(1.00), 100u);
}

TEST(Histogram, PercentileMonotonicity) {
  // p(q) must be non-decreasing in q for any recorded distribution — here a
  // spread crossing several log-linear groups.
  Histogram h;
  std::uint64_t v = 3;
  for (int i = 0; i < 5000; ++i) {
    h.record(v % 2'000'000);
    v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG
  }
  std::uint64_t prev = 0;
  for (double q = 0.01; q <= 1.0; q += 0.01) {
    const std::uint64_t p = h.percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
  EXPECT_LE(prev, h.max());
}

TEST(Histogram, PercentileUndershootBounded) {
  // A single large value: every percentile reports its bucket floor, which
  // undershoots the true value by under 1.6%.
  Histogram h;
  const std::uint64_t v = 123'456'789;
  h.record(v);
  const std::uint64_t p = h.percentile(0.5);
  EXPECT_LE(p, v);
  EXPECT_GE(p, v - v / 64);  // 2/kSub = 1/64 relative width
  EXPECT_EQ(h.max(), v);     // max is exact regardless of bucketing
}

TEST(Histogram, ConcurrentRecordingSums) {
  // N threads record disjoint value sets; afterwards count and sum must be
  // exact and every per-bucket tally intact (relaxed atomics, no locks).
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(h.count(), n);
  EXPECT_EQ(h.sum(), n * (n - 1) / 2);
  EXPECT_EQ(h.max(), n - 1);
  // The percentile walk sees the same total as the count.
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, n);
  EXPECT_GT(s.p50, 0u);
  EXPECT_GE(s.p90, s.p50);
  EXPECT_GE(s.p99, s.p90);
  EXPECT_GE(s.max, s.p99);
}

TEST(HistogramGate, EnabledFlagTogglesAndReads) {
  apgas::hist::set_enabled(true);
  EXPECT_TRUE(apgas::hist::enabled());
  apgas::hist::set_enabled(false);
  EXPECT_FALSE(apgas::hist::enabled());
  const std::uint64_t a = apgas::hist::now_ns();
  const std::uint64_t b = apgas::hist::now_ns();
  EXPECT_GE(b, a);  // monotone clock
}

}  // namespace
